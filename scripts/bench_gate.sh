#!/bin/sh
# Benchmark regression gate for the attack hot path: run the snapshotting
# stage benchmarks (profile -> segment -> classify -> attack), emit one
# BENCH_<name>.json per benchmark, and compare each against its committed
# bench_snapshots/baseline_BENCH_<name>.json with `revealctl compare`.
#
# Tolerances are direction-aware: quality metrics (value-acc-%, sign-acc-%)
# gate at BENCH_TOL in either artifact kind, wall-clock metrics (ns_per_op,
# *_seconds, items_per_second) gate at the looser BENCH_PERF_TOL and only
# fail when they move the wrong way. A metric that vanished from the new
# run also fails: results silently disappearing is a regression.
#
# Usage: scripts/bench_gate.sh [snapshot-dir] [baseline-dir]
#   BENCH_PATTERN  benchmarks to run      (default: the snapshotted stages)
#   BENCH_TIME     -benchtime             (default: 1x)
#   BENCH_COUNT    -count                 (default: 3)
#   BENCH_TOL      quality tolerance      (default: 0.05)
#   BENCH_PERF_TOL wall-clock tolerance   (default: 0.5 — fails a 2x slowdown,
#                                          absorbs scheduler noise)
set -eu

snap_dir="${1:-bench_snapshots/current}"
base_dir="${2:-bench_snapshots}"
pattern="${BENCH_PATTERN:-BenchmarkTable1TemplateAttack|BenchmarkClassifyStage|BenchmarkSegmentStage|BenchmarkDeviceCapture|BenchmarkParallelClassification|BenchmarkHistoryAppend|BenchmarkHistoryQuery|BenchmarkLoadgen|BenchmarkNTT\$|BenchmarkNTTReference\$|BenchmarkRNSMul\$|BenchmarkTracegen\$|BenchmarkStream\$}"
bench_time="${BENCH_TIME:-1x}"
bench_count="${BENCH_COUNT:-3}"
tol="${BENCH_TOL:-0.05}"
perf_tol="${BENCH_PERF_TOL:-0.5}"
# Sub-millisecond stage percentiles are timer-quantized — one scheduler
# tick swings them 50%+ — so the per-stage aggregates gate loosely while
# the headline ns_per_op and the quality metrics stay tight. The streaming
# time-to-first-hint is microsecond-scale (one chunk + one classification)
# and equally scheduler-bound, so it shares the loose bound.
stage_tol="${BENCH_STAGE_TOL:-2}"
ttfh_tol="${BENCH_TTFH_TOL:-2}"

mkdir -p "$snap_dir"

echo "== running benchmarks ($pattern, -benchtime $bench_time -count $bench_count)"
BENCH_SNAPSHOT_DIR="$snap_dir" go test -run '^$' -bench "$pattern" \
    -benchtime "$bench_time" -count "$bench_count" .

revealctl="$snap_dir/revealctl-gate"
go build -o "$revealctl" ./cmd/revealctl

status=0
compared=0
for new in "$snap_dir"/BENCH_*.json; do
    [ -e "$new" ] || continue
    name=$(basename "$new")
    base="$base_dir/baseline_$name"
    if [ ! -f "$base" ]; then
        echo "skip  $name: no committed baseline at $base"
        continue
    fi
    compared=$((compared + 1))
    echo "== $name vs $base (tol $tol, perf-tol $perf_tol)"
    if "$revealctl" compare -gate-perf -tol "$tol" -perf-tol "$perf_tol" \
        -metric-tol "stage.*=$stage_tol" \
        -metric-tol "metrics.time_to_first_hint_ns=$ttfh_tol" \
        "$base" "$new"; then
        echo "ok    $name"
    else
        echo "FAIL  $name regressed"
        status=1
    fi
done

if [ "$compared" = 0 ]; then
    echo "FAIL  no benchmark snapshots were compared (pattern or baselines wrong?)"
    status=1
fi

exit $status
