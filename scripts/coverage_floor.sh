#!/bin/sh
# Coverage floor gate for the arithmetic core: each package listed in
# scripts/coverage_floor.txt must keep its statement coverage at or above
# the committed floor. Raise a floor when coverage improves; lowering one
# is a reviewed decision, not a silent CI edit.
#
# Usage: scripts/coverage_floor.sh [floor-file]
set -eu

floor_file="${1:-scripts/coverage_floor.txt}"
status=0

while read -r pkg floor; do
    case "$pkg" in ''|'#'*) continue ;; esac
    line=$(go test -cover -count=1 "$pkg" | grep "^ok" || true)
    if [ -z "$line" ]; then
        echo "FAIL  $pkg: tests failed or no coverage line"
        status=1
        continue
    fi
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "FAIL  $pkg: could not parse coverage from: $line"
        status=1
        continue
    fi
    ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "ok    $pkg: ${pct}% >= floor ${floor}%"
    else
        echo "FAIL  $pkg: ${pct}% < floor ${floor}%"
        status=1
    fi
done < "$floor_file"

exit $status
