// Command figures emits the data series behind Fig. 3 of the paper as CSV:
// (a) a full power-trace portion covering three coefficient samplings with
// their visible start peaks, and (b) the three per-branch sub-traces.
//
// Usage:
//
//	figures -fig 3a -o fig3a.csv
//	figures -fig 3b -o fig3b.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/experiments"
	"reveal/internal/obs"
	"reveal/internal/trace"
)

func main() {
	fig := flag.String("fig", "3a", "which figure to emit: 3a, 3b, or timing")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 77, "capture seed")
	logLevel := flag.String("log-level", "", "enable structured logging and stage timing (debug, info, warn, error)")
	flag.Parse()

	if *logLevel != "" {
		obs.SetGlobal(obs.New(obs.Options{Logger: obs.NewLogger(obs.LogOptions{
			Level: obs.ParseLevel(*logLevel), Output: os.Stderr,
		})}))
	}

	r, err := experiments.RunFig3(*seed)
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	switch *fig {
	case "3a":
		if err := trace.WriteCSV(w, r.Full); err != nil {
			fail(err)
		}
	case "3b":
		err := trace.WriteMultiCSV(w,
			[]string{"noise_positive", "noise_negative", "noise_zero"},
			[]trace.Trace{r.Positive, r.Negative, r.Zero})
		if err != nil {
			fail(err)
		}
	case "timing":
		// Per-coefficient segment lengths (§III-C's time variance).
		tr, err := experiments.RunTimingVariance(256, *seed)
		if err != nil {
			fail(err)
		}
		series := make(trace.Trace, len(tr.Lengths))
		for i, l := range tr.Lengths {
			series[i] = float64(l)
		}
		if err := trace.WriteCSV(w, series); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "segment lengths: min %d, max %d, mean %.1f, %d distinct values\n",
			tr.Min, tr.Max, tr.Mean, tr.DistinctN)
	default:
		fail(fmt.Errorf("unknown figure %q (use 3a, 3b, or timing)", *fig))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
