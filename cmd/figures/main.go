// Command figures emits the data series behind Fig. 3 of the paper as CSV:
// (a) a full power-trace portion covering three coefficient samplings with
// their visible start peaks, and (b) the three per-branch sub-traces.
//
// Usage:
//
//	figures -fig 3a -o fig3a.csv
//	figures -fig 3b -o fig3b.csv
//	figures -fig timing -run-dir out/fig-timing
//
// With -run-dir the capture is archived like a revealctl campaign:
// manifest.json, metrics.txt, run.log and trace.json in DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/experiments"
	"reveal/internal/obs"
	"reveal/internal/trace"
)

func main() {
	fig := flag.String("fig", "3a", "which figure to emit: 3a, 3b, or timing")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 77, "capture seed")
	runDir := flag.String("run-dir", "", "archive the capture: manifest.json, metrics.txt, run.log, trace.json")
	logLevel := flag.String("log-level", "", "enable structured logging and stage timing (debug, info, warn, error)")
	flag.Parse()

	var archived *obs.Run
	if *runDir != "" {
		var err error
		archived, err = obs.StartRun(*runDir, obs.RunOptions{
			Tool: "figures", Command: *fig, Args: os.Args[1:], Seed: *seed,
			LogLevel: obs.ParseLevel(*logLevel),
		})
		if err != nil {
			fail(nil, err)
		}
	} else if *logLevel != "" {
		obs.SetGlobal(obs.New(obs.Options{Logger: obs.NewLogger(obs.LogOptions{
			Level: obs.ParseLevel(*logLevel), Output: os.Stderr,
		})}))
	}

	r, err := experiments.RunFig3(*seed)
	if err != nil {
		fail(archived, err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(archived, err)
		}
		defer f.Close()
		w = f
	}

	switch *fig {
	case "3a":
		if err := trace.WriteCSV(w, r.Full); err != nil {
			fail(archived, err)
		}
		archived.SetResult("samples", len(r.Full))
	case "3b":
		err := trace.WriteMultiCSV(w,
			[]string{"noise_positive", "noise_negative", "noise_zero"},
			[]trace.Trace{r.Positive, r.Negative, r.Zero})
		if err != nil {
			fail(archived, err)
		}
		archived.SetResult("peak_count", r.PeakCount)
	case "timing":
		// Per-coefficient segment lengths (§III-C's time variance).
		tr, err := experiments.RunTimingVariance(256, *seed)
		if err != nil {
			fail(archived, err)
		}
		series := make(trace.Trace, len(tr.Lengths))
		for i, l := range tr.Lengths {
			series[i] = float64(l)
		}
		if err := trace.WriteCSV(w, series); err != nil {
			fail(archived, err)
		}
		fmt.Fprintf(os.Stderr, "segment lengths: min %d, max %d, mean %.1f, %d distinct values\n",
			tr.Min, tr.Max, tr.Mean, tr.DistinctN)
		archived.SetResult("segments", len(tr.Lengths))
		archived.SetResult("distinct_lengths", tr.DistinctN)
	default:
		fail(archived, fmt.Errorf("unknown figure %q (use 3a, 3b, or timing)", *fig))
	}
	if err := archived.Finish(); err != nil {
		fail(nil, err)
	}
}

// fail seals the run archive (os.Exit skips defers) and exits non-zero.
func fail(archived *obs.Run, err error) {
	_ = archived.Finish()
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
