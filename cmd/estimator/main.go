// Command estimator is a standalone "LWE with side information" (DBDD)
// security estimator reproducing Tables III and IV of the paper without
// running the device: hints are simulated at the quality the paper's
// measurements achieved.
//
// Usage:
//
//	estimator -table 3            # full hints (Table III)
//	estimator -table 4            # branch-only hints (Table IV)
//	estimator -n 1024 -q 132120577 -sigma 3.2 -hints none|sign|full
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/dbdd"
	"reveal/internal/experiments"
	"reveal/internal/obs"
	"reveal/internal/sampler"
)

func main() {
	table := flag.Int("table", 0, "reproduce paper table 3 or 4 (overrides -hints)")
	n := flag.Int("n", 1024, "LWE secret dimension (= #samples)")
	q := flag.Float64("q", 132120577, "modulus")
	sigma := flag.Float64("sigma", 3.2, "error standard deviation")
	hints := flag.String("hints", "none", "hint model: none, sign, full")
	seed := flag.Uint64("seed", 1, "seed for the simulated error vector")
	sweep := flag.Bool("sweep", false, "estimate the attack across all SEAL default degrees")
	runDir := flag.String("run-dir", "", "write manifest.json, metrics.txt and run.log into this directory")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	if *runDir != "" {
		run, err := obs.StartRun(*runDir, obs.RunOptions{
			Tool: "estimator", Args: os.Args[1:], Seed: *seed,
			Config: map[string]any{
				"table": *table, "n": *n, "q": *q, "sigma": *sigma,
				"hints": *hints, "sweep": *sweep,
			},
			LogLevel: obs.ParseLevel(*logLevel),
		})
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := run.Finish(); err != nil {
				fmt.Fprintln(os.Stderr, "estimator: finishing run:", err)
			}
		}()
	}

	if *sweep {
		rows, err := experiments.RunSecuritySweep([]int{1024, 2048, 4096, 8192, 16384, 32768}, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatSweep(rows))
		return
	}

	switch *table {
	case 3:
		if err := runTable3(*n, *q, *sigma, *seed); err != nil {
			fail(err)
		}
	case 4:
		if err := runTable4(*n, *q, *sigma, *seed); err != nil {
			fail(err)
		}
	case 0:
		if err := runCustom(*n, *q, *sigma, *hints, *seed); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown table %d (use 3 or 4)", *table))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "estimator:", err)
	os.Exit(1)
}

// simulatedErrors draws an error vector from the paper's clipped Gaussian.
func simulatedErrors(n int, sigma float64, seed uint64) ([]int64, error) {
	cn, err := sampler.NewClippedNormal(sigma, 12.8*sigma)
	if err != nil {
		return nil, err
	}
	vals, _ := cn.SamplePoly(sampler.NewXoshiro256(seed), n)
	return vals, nil
}

func baseInstance(n int, q, sigma float64) (*dbdd.Instance, error) {
	return dbdd.NewLWEInstance(n, n, q, 2.0/3.0, sigma*sigma)
}

func runTable3(n int, q, sigma float64, seed uint64) error {
	in, err := baseInstance(n, q, sigma)
	if err != nil {
		return err
	}
	base, err := in.EstimateBikz()
	if err != nil {
		return err
	}
	errs, err := simulatedErrors(n, sigma, seed)
	if err != nil {
		return err
	}
	hinted := in.Clone()
	for i, e := range errs {
		if err := hinted.PerfectHint(n+i, float64(e)); err != nil {
			return err
		}
	}
	after, err := hinted.EstimateBikz()
	if err != nil {
		return err
	}
	fmt.Println("Table III — cost of attack with/without hints (SEAL-128)")
	fmt.Printf("%-32s %10s %14s\n", "", "measured", "paper")
	fmt.Printf("%-32s %10.2f %14s\n", "attack without hints (bikz)", base, "382.25")
	fmt.Printf("%-32s %10.2f %14s\n", "attack with hints (bikz)", after, "12.2")
	fmt.Printf("%-32s %10.1f %14s\n", "security without hints (bits)", dbdd.BikzToBits(base), "128")
	fmt.Printf("%-32s %10.1f %14s\n", "security with hints (bits)", dbdd.BikzToBits(after), "4.4")
	return nil
}

func runTable4(n int, q, sigma float64, seed uint64) error {
	in, err := baseInstance(n, q, sigma)
	if err != nil {
		return err
	}
	base, err := in.EstimateBikz()
	if err != nil {
		return err
	}
	errs, err := simulatedErrors(n, sigma, seed)
	if err != nil {
		return err
	}
	hinted := in.Clone()
	for i, e := range errs {
		sign := 0
		if e > 0 {
			sign = 1
		} else if e < 0 {
			sign = -1
		}
		if err := hinted.SignHint(n+i, sign); err != nil {
			return err
		}
	}
	withHints, err := hinted.EstimateBikz()
	if err != nil {
		return err
	}
	guess, err := hinted.GuessBestCoordinateIn(n, 2*n)
	if err != nil {
		return err
	}
	withGuess, err := hinted.EstimateBikz()
	if err != nil {
		return err
	}
	fmt.Println("Table IV — branch-only adversary (SEAL-128)")
	fmt.Printf("%-36s %10s %14s\n", "", "measured", "paper")
	fmt.Printf("%-36s %10.2f %14s\n", "attack without hints (bikz)", base, "382.25")
	fmt.Printf("%-36s %10.2f %14s\n", "attack with hints (bikz)", withHints, "253.29")
	fmt.Printf("%-36s %10.2f %14s\n", "attack with hints & guesses (bikz)", withGuess, "252.83")
	fmt.Printf("%-36s %10d %14s\n", "number of guesses", 1, "1")
	fmt.Printf("%-36s %9.0f%% %14s\n", "success probability", 100*guess.SuccessProb, "20%")
	return nil
}

func runCustom(n int, q, sigma float64, hints string, seed uint64) error {
	in, err := baseInstance(n, q, sigma)
	if err != nil {
		return err
	}
	switch hints {
	case "none":
	case "sign", "full":
		errs, err := simulatedErrors(n, sigma, seed)
		if err != nil {
			return err
		}
		for i, e := range errs {
			if hints == "full" {
				err = in.PerfectHint(n+i, float64(e))
			} else {
				sign := 0
				if e > 0 {
					sign = 1
				} else if e < 0 {
					sign = -1
				}
				err = in.SignHint(n+i, sign)
			}
			if err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown hint model %q", hints)
	}
	bikz, err := in.EstimateBikz()
	if err != nil {
		return err
	}
	fmt.Printf("n=%d q=%.0f sigma=%.2f hints=%s\n", n, q, sigma, hints)
	fmt.Printf("bikz: %.2f  (≈ %.1f bits)\n", bikz, dbdd.BikzToBits(bikz))
	return nil
}
