// Command reveald is the attack-campaign daemon: it serves the HTTP/JSON
// campaign API (submit a campaign spec, poll status, fetch results) next to
// the live observability endpoints, executes campaigns on a job queue with
// retries and deadlines, parallelizes classification on a sharded worker
// pool, and caches trained templates so repeated campaigns against the same
// device configuration skip profiling.
//
// Campaign kinds: "attack" (batch single-trace attacks), "stream" (the
// streaming engine: each trace replayed chunk by chunk through the RVTS
// wire format, coefficients classified as their segments close, optional
// early exit on a target bikz, optional batch digest cross-check),
// "diagnose" (leakage assessment), and "sleep" (testing aid).
//
// Usage:
//
//	reveald [-role all|coordinator|worker] [-addr :9090] [-workers N]
//	        [-classify-workers N] [-queue N] [-cache N] [-retries N]
//	        [-backoff DUR] [-data-dir DIR] [-tenant-quota N]
//	        [-lease-ttl DUR] [-snapshot-interval DUR]
//	        [-coordinator URL] [-worker-id ID]
//	        [-drift-window N] [-drift-min-runs N] [-drift-tol F]
//	        [-profile-interval DUR] [-profile-cpu DUR]
//	        [-drain-timeout DUR] [-log-level LEVEL] [-log-json] [-selftest]
//
// Roles (the distributed campaign fabric):
//
//	all          single process: API, queue, and in-process execution
//	             (the default — identical to the pre-fabric daemon)
//	coordinator  serve the API and the fabric endpoints but execute
//	             nothing locally; jobs wait for workers to lease them
//	worker       no API: lease jobs from -coordinator over HTTP, execute
//	             them on -workers slots, heartbeat each lease at a third
//	             of -lease-ttl, and report results back. Templates resolve
//	             through the coordinator's content-addressed registry
//	             (local LRU first), so one node trains per configuration.
//
// With -data-dir, coordinator roles journal every job-lifecycle transition
// to an append-only WAL under <data-dir>/wal and snapshot it every
// -snapshot-interval; on restart the queue replays the journal, keeps
// finished jobs for status queries, and re-enqueues everything accepted
// but unfinished — a crash loses no accepted job. -tenant-quota bounds
// queued+running jobs per tenant (rejections are HTTP 429 + Retry-After).
//
// With -selftest the daemon first runs the replay-determinism gate
// (internal/core.Selftest) and refuses to serve if the serial and parallel
// attack paths are not byte-identical.
//
// Endpoints (all on -addr):
//
//	POST   /api/v1/campaigns             submit a campaign spec
//	GET    /api/v1/campaigns             list jobs
//	GET    /api/v1/campaigns/{id}        job status
//	GET    /api/v1/campaigns/{id}/result result of a finished job
//	DELETE /api/v1/campaigns/{id}        cancel a job
//	GET    /api/v1/stats                 queue/worker stats, per-kind latency
//	GET    /api/v1/history               quality-history records (paginated)
//	GET    /api/v1/history/aggregate     per-kind quality rollups + baselines
//	POST   /api/v1/fabric/lease          lease one job (worker long-poll)
//	POST   /api/v1/fabric/jobs/{id}/renew     heartbeat a held lease
//	POST   /api/v1/fabric/jobs/{id}/complete  report a leased attempt
//	GET/PUT /api/v1/fabric/templates/{key}    template registry blobs
//	POST/DELETE /api/v1/fabric/templates/{key}/claim  training claims
//	/metrics /progress /healthz /readyz /events /debug/pprof  (observability)
//
// Every request carries a trace identity: an X-Reveal-Trace-Id header is
// adopted (or minted) by the HTTP layer, echoed on the response, and
// propagated through the queue into the worker — the same ID appears in
// log lines, the /events journal, the per-job manifest, run.log, and the
// trace.json flow events.
//
// On SIGTERM/SIGINT the daemon flips /readyz to 503 (load balancers stop
// routing), stops accepting submissions, lets running jobs finish for up
// to -drain-timeout, then cancels them and exits. With -data-dir the
// service journal is additionally appended to <data-dir>/events.jsonl
// (flushed and fsynced on drain), every finished campaign appends one
// quality record to the <data-dir>/history store watched by the drift
// watchdog, and -profile-interval > 0 captures periodic CPU/heap pprof
// profiles under <data-dir>/profiles with a retention cap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/jobs/wal"
	"reveal/internal/obs"
	"reveal/internal/obs/history"
	"reveal/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reveald:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reveald", flag.ExitOnError)
	role := fs.String("role", "all", "process role: all (single process), coordinator (API only, jobs execute on workers), worker (lease jobs from -coordinator)")
	addr := fs.String("addr", ":9090", "listen address for the API and observability endpoints (empty on a worker = no listener)")
	coordinator := fs.String("coordinator", "http://127.0.0.1:9090", "coordinator base URL (worker role)")
	workerID := fs.String("worker-id", "", "worker identity recorded on leases (default hostname-pid)")
	workers := fs.Int("workers", 2, "concurrent campaign jobs (execution slots on a worker)")
	classifyWorkers := fs.Int("classify-workers", 0, "classification goroutines per campaign (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 64, "maximum queued+running jobs (0 = unbounded)")
	tenantQuota := fs.Int("tenant-quota", 0, "maximum queued+running jobs per tenant (0 = unlimited; rejections are HTTP 429)")
	cacheCap := fs.Int("cache", 4, "template cache capacity (trained classifiers)")
	retries := fs.Int("retries", 3, "default attempts per job")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "base retry backoff (doubles per attempt)")
	leaseTTL := fs.Duration("lease-ttl", jobs.DefaultLeaseTTL, "fabric lease duration: a dead worker's jobs requeue after this long without a heartbeat")
	snapshotInterval := fs.Duration("snapshot-interval", 30*time.Second, "WAL snapshot+compaction period (0 = only at shutdown; needs -data-dir)")
	dataDir := fs.String("data-dir", "", "write the WAL, per-job run directories, events journal, and quality history here")
	driftWindow := fs.Int("drift-window", 8, "rolling window (runs) for the quality-drift watchdog")
	driftMinRuns := fs.Int("drift-min-runs", 4, "healthy runs required before a drift baseline is pinned")
	driftTol := fs.Float64("drift-tol", 0.05, "relative quality degradation tolerated before a drift alert")
	profileInterval := fs.Duration("profile-interval", 0, "capture CPU/heap pprof profiles this often (0 = disabled; needs -data-dir)")
	profileCPU := fs.Duration("profile-cpu", time.Second, "CPU profile duration per capture cycle")
	profileKeep := fs.Int("profile-keep", 8, "profiles retained per type before the oldest are pruned")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to let running jobs finish on shutdown")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := fs.Bool("log-json", false, "emit JSON log records")
	selftest := fs.Bool("selftest", false, "run the replay-determinism gate before serving; exit nonzero on failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "all", "coordinator", "worker":
	default:
		return fmt.Errorf("unknown -role %q (want all, coordinator, or worker)", *role)
	}
	isWorker := *role == "worker"

	rec := obs.New(obs.Options{
		Logger: obs.NewLogger(obs.LogOptions{
			Level: obs.ParseLevel(*logLevel), JSON: *logJSON, Output: os.Stderr,
		}),
		// A daemon traces indefinitely: the ring overwrites the oldest span
		// events so per-job trace.json exports always cover recent jobs.
		TraceCapacity: obs.DefaultTraceCapacity,
		TraceRing:     true,
		EventCapacity: 4096,
	})
	obs.SetGlobal(rec)

	var eventsFile *os.File
	var hist *history.Store
	var watchdog *history.Watchdog
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			return fmt.Errorf("creating data dir: %w", err)
		}
		f, err := os.OpenFile(filepath.Join(*dataDir, "events.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("creating events.jsonl: %w", err)
		}
		eventsFile = f
		rec.Events().AttachSink(f)
		defer func() {
			// Flush + fsync the buffered journal tail before the process
			// exits; a SIGTERM drain must not lose the final events.
			if dropped := rec.Events().CloseSink(); dropped > 0 {
				obs.Log().Warn("event journal dropped events", "dropped", dropped)
			}
			_ = eventsFile.Close()
		}()

		// Quality history lives with the queue: workers report results to
		// the coordinator, which records them, so a worker's data-dir only
		// holds run directories and the events journal.
		if !isWorker {
			histDir := filepath.Join(*dataDir, "history")
			if err := os.MkdirAll(histDir, 0o755); err != nil {
				return fmt.Errorf("creating history dir: %w", err)
			}
			hist, err = history.Open(history.Options{Dir: histDir})
			if err != nil {
				return fmt.Errorf("opening history store: %w", err)
			}
			defer hist.Close()
			if hist.Skipped() > 0 {
				obs.Log().Warn("history store skipped torn records on replay",
					"skipped", hist.Skipped())
			}
			watchdog, err = history.NewWatchdog(history.DriftConfig{
				Window:       *driftWindow,
				MinRuns:      *driftMinRuns,
				Tolerance:    *driftTol,
				BaselinePath: filepath.Join(histDir, "baselines.json"),
				Registry:     rec.Registry(),
				Emit:         obs.Emit,
			})
			if err != nil {
				return fmt.Errorf("starting drift watchdog: %w", err)
			}
			obs.Log().Info("quality history enabled",
				"dir", histDir, "records", hist.Len(),
				"drift_window", *driftWindow, "drift_tol", *driftTol,
				"baseline_kinds", watchdog.Kinds())
		}

		if *profileInterval > 0 {
			prof, err := obs.NewProfiler(obs.ProfilerOptions{
				Dir:         filepath.Join(*dataDir, "profiles"),
				Interval:    *profileInterval,
				CPUDuration: *profileCPU,
				MaxProfiles: *profileKeep,
				Registry:    rec.Registry(),
			})
			if err != nil {
				return fmt.Errorf("starting profiler: %w", err)
			}
			prof.Start()
			defer prof.Close()
			obs.Log().Info("continuous profiling enabled",
				"dir", filepath.Join(*dataDir, "profiles"),
				"interval", profileInterval.String(), "cpu", profileCPU.String(),
				"keep", *profileKeep)
		}
	} else if *profileInterval > 0 {
		return errors.New("-profile-interval requires -data-dir")
	}

	if *selftest {
		report, err := core.Selftest(context.Background(), 1, *classifyWorkers)
		if err != nil {
			return fmt.Errorf("startup selftest: %w", err)
		}
		obs.Log().Info("startup selftest passed",
			"digest", report.Digest(),
			"value_accuracy", report.ValueAccuracy,
			"hinted_bikz", report.HintedBikz)
	}

	if isWorker {
		return runWorker(rec, workerConfig{
			Addr:            *addr,
			Coordinator:     *coordinator,
			WorkerID:        *workerID,
			Slots:           *workers,
			ClassifyWorkers: *classifyWorkers,
			CacheCapacity:   *cacheCap,
			DataDir:         *dataDir,
			LeaseTTL:        *leaseTTL,
		})
	}

	// Coordinator roles: open the WAL before the queue exists so every
	// accepted job is journaled, and replay the previous process's tail
	// before serving.
	var walLog *wal.Log
	var replay *wal.Replay
	if *dataDir != "" {
		var err error
		walLog, replay, err = wal.Open(wal.Options{
			Dir:         filepath.Join(*dataDir, "wal"),
			SyncSubmits: true,
		})
		if err != nil {
			return fmt.Errorf("opening WAL: %w", err)
		}
		defer walLog.Close()
	}

	poolWorkers := *workers
	if *role == "coordinator" {
		poolWorkers = -1 // pure coordinator: jobs execute only on fabric workers
	}
	svc := service.New(service.Config{
		QueueOptions: jobs.Options{
			MaxAttempts: *retries,
			BackoffBase: *backoff,
			BackoffMax:  60 * time.Second,
			Capacity:    *queueCap,
			TenantQuota: *tenantQuota,
			WAL:         walLog,
		},
		PoolWorkers:     poolWorkers,
		ClassifyWorkers: *classifyWorkers,
		CacheCapacity:   *cacheCap,
		DataDir:         *dataDir,
		History:         hist,
		Watchdog:        watchdog,
		LeaseTTL:        *leaseTTL,
	})
	if replay != nil {
		requeued, terminal := svc.Queue().Restore(replay, service.DecodeCampaignPayload)
		if requeued+terminal > 0 {
			obs.Log().Info("WAL replay complete", "requeued", requeued, "terminal", terminal)
		}
	}
	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	if walLog != nil && *snapshotInterval > 0 {
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(*snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-ticker.C:
					if err := svc.Queue().SnapshotWAL(); err != nil {
						obs.Log().Warn("WAL snapshot failed", "error", err)
					}
				}
			}
		}()
	} else {
		close(snapDone)
	}

	// draining flips before the pool drains so load balancers watching
	// /readyz stop routing while running jobs are still finishing.
	var draining atomic.Bool
	srv, err := obs.ServeMetricsCfg(rec, *addr, obs.ServeConfig{
		API:        svc.Handler(),
		APIRoute:   service.RouteLabel,
		Instrument: true,
		Ready: func(context.Context) error {
			if draining.Load() {
				return errors.New("draining")
			}
			return nil
		},
	})
	if err != nil {
		return fmt.Errorf("binding %s: %w", *addr, err)
	}
	svc.Start()
	obs.Log().Info("reveald listening",
		"addr", srv.Addr(), "role", *role, "workers", poolWorkers,
		"classify_workers", *classifyWorkers, "cache", *cacheCap,
		"lease_ttl", leaseTTL.String(), "tenant_quota", *tenantQuota,
		"wal", walLog != nil, "data_dir", *dataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	draining.Store(true)
	obs.Emit(obs.ServiceEvent{Type: obs.EventDrainStarted, Detail: s.String()})
	obs.Log().Info("shutting down", "signal", s.String(), "drain_timeout", *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Shutdown(ctx)
	detail := "clean"
	if drainErr != nil {
		detail = drainErr.Error()
	}
	obs.Emit(obs.ServiceEvent{Type: obs.EventDrainDone, Detail: detail})
	close(snapStop)
	<-snapDone
	if walLog != nil {
		// A final snapshot compacts the journal so the next start replays a
		// single image instead of the full segment tail.
		if err := svc.Queue().SnapshotWAL(); err != nil {
			obs.Log().Warn("final WAL snapshot failed", "error", err)
		}
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil {
		obs.Log().Warn("http server drain timed out", "error", err)
	}
	if drainErr != nil {
		return drainErr
	}
	obs.Log().Info("reveald stopped cleanly")
	return nil
}

// workerConfig is the parsed flag set of a -role worker process.
type workerConfig struct {
	Addr            string
	Coordinator     string
	WorkerID        string
	Slots           int
	ClassifyWorkers int
	CacheCapacity   int
	DataDir         string
	LeaseTTL        time.Duration
}

// runWorker runs the worker role: lease campaigns from the coordinator,
// execute them locally, and report results back. The observability
// endpoints (no campaign API) are served on cfg.Addr unless it is empty.
func runWorker(rec *obs.Recorder, cfg workerConfig) error {
	id := cfg.WorkerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := service.NewClient(cfg.Coordinator)
	// Ride out coordinator restarts: dial failures retry with backoff
	// before the slot loop's own idle backoff takes over.
	client.RetryAttempts = 4
	cache := core.NewTemplateCache(max(cfg.CacheCapacity, 1))
	runner := &service.Runner{
		Cache: &service.RemoteTemplateCache{
			Local:  cache,
			Client: client,
			Worker: id,
		},
		Workers: cfg.ClassifyWorkers,
		DataDir: cfg.DataDir,
	}
	worker := &service.FabricWorker{
		ID:       id,
		Client:   client,
		Runner:   runner,
		Slots:    cfg.Slots,
		LeaseTTL: cfg.LeaseTTL,
	}

	var srv *obs.MetricsServer
	if cfg.Addr != "" {
		var err error
		srv, err = obs.ServeMetricsCfg(rec, cfg.Addr, obs.ServeConfig{Instrument: true})
		if err != nil {
			return fmt.Errorf("binding %s: %w", cfg.Addr, err)
		}
		obs.Log().Info("worker observability listening", "addr", srv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	err := worker.Run(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	if srv != nil {
		httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(httpCtx)
	}
	if err != nil {
		return err
	}
	obs.Log().Info("worker stopped cleanly", "id", id)
	return nil
}
