// Command tracegen generates labeled side-channel trace sets from the
// simulated device for offline analysis: each trace is one per-coefficient
// sub-trace (tail-aligned), labeled with the true coefficient value, in
// the package trace binary format.
//
// Usage:
//
//	tracegen -o traces.rvts -count 1000 [-q 132120577] [-seed S] [-len L]
//	         [-run-dir DIR] [-log-level LEVEL]
//
// With -run-dir the generation is archived like a revealctl campaign:
// manifest.json, metrics.txt, run.log and trace.json in DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/core"
	"reveal/internal/obs"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

func main() {
	out := flag.String("o", "traces.rvts", "output file")
	count := flag.Int("count", 1000, "number of labeled sub-traces")
	q := flag.Uint64("q", 132120577, "coefficient modulus")
	seed := flag.Uint64("seed", 1, "device + sampler seed")
	length := flag.Int("len", 40, "sub-trace length (tail-aligned samples)")
	lowNoise := flag.Bool("lownoise", false, "use the low-noise device profile")
	runDir := flag.String("run-dir", "", "archive the generation: manifest.json, metrics.txt, run.log, trace.json")
	logLevel := flag.String("log-level", "", "enable structured logging and stage timing (debug, info, warn, error)")
	flag.Parse()

	var archived *obs.Run
	if *runDir != "" {
		var err error
		archived, err = obs.StartRun(*runDir, obs.RunOptions{
			Tool: "tracegen", Command: "generate", Args: os.Args[1:], Seed: *seed,
			Config: map[string]any{
				"count": *count, "q": *q, "len": *length, "lownoise": *lowNoise,
			},
			LogLevel: obs.ParseLevel(*logLevel),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	} else if *logLevel != "" {
		obs.SetGlobal(obs.New(obs.Options{Logger: obs.NewLogger(obs.LogOptions{
			Level: obs.ParseLevel(*logLevel), Output: os.Stderr,
		})}))
		defer logStageSummary()
	}

	err := run(*out, *count, *q, *seed, *length, *lowNoise)
	if err == nil && archived != nil {
		archived.SetResult("traces", *count)
		archived.SetResult("trace_length", *length)
		archived.SetResult("output", *out)
	}
	// Finish explicitly: os.Exit skips defers, and the manifest must be
	// sealed on the failure path too.
	if ferr := archived.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// logStageSummary reports the per-stage timing aggregates at exit when
// -log-level enabled the recorder.
func logStageSummary() {
	rec := obs.Global()
	for _, st := range rec.StageStats() {
		rec.Logger().Info("stage summary", "stage", st.Name,
			"runs", st.Runs, "items", st.Items,
			"total_seconds", st.TotalSeconds, "p95_seconds", st.P95Seconds,
			"items_per_second", st.ItemsPerSecond)
	}
}

func run(out string, count int, q, seed uint64, length int, lowNoise bool) error {
	if count <= 0 {
		return fmt.Errorf("count must be positive")
	}
	var dev *core.Device
	if lowNoise {
		dev = core.NewLowNoiseDevice(seed)
	} else {
		dev = core.NewDevice(seed)
	}
	const coeffsPerRun = 18
	src, err := core.FirmwareSource(coeffsPerRun, core.FirmwareModulus(q))
	if err != nil {
		return err
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		return err
	}
	cn := sampler.DefaultClippedNormal()
	prng := sampler.NewXoshiro256(seed ^ 0x7777)

	set := &trace.Set{}
	for set.Len() < count {
		values, metas := cn.SamplePoly(prng, coeffsPerRun)
		_, segs, err := dev.SegmentCapture(fw, values, metas)
		if err != nil {
			return err
		}
		for i := 1; i < len(segs)-1 && set.Len() < count; i++ {
			sub := segs[i].Samples
			var aligned trace.Trace
			if len(sub) >= length {
				aligned = sub[len(sub)-length:].Clone()
			} else {
				aligned = sub.Resample(length)
			}
			set.Append(aligned, int(values[i]))
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteSet(f, set); err != nil {
		return err
	}
	fmt.Printf("wrote %d labeled sub-traces (%d samples each) to %s\n", set.Len(), length, out)
	return nil
}
