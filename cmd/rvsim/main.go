// Command rvsim is a standalone driver for the RV32IM simulator: it
// assembles a source file, optionally prints the disassembly listing, runs
// the program, dumps the final register file, and can render the power
// trace of the execution to CSV — the developer loop for writing new
// attack kernels.
//
// Usage:
//
//	rvsim -s kernel.s [-disasm] [-trace power.csv] [-max 100000]
//	      [-run-dir DIR] [-log-level LEVEL]
//
// With -run-dir the simulation is archived like a revealctl campaign:
// manifest.json, metrics.txt, run.log and trace.json in DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/obs"
	"reveal/internal/power"
	"reveal/internal/rv32"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

func main() {
	src := flag.String("s", "", "assembly source file (required)")
	disasm := flag.Bool("disasm", false, "print the disassembly listing before running")
	traceOut := flag.String("trace", "", "write the power trace of the run to this CSV file")
	maxInstrs := flag.Int("max", 1000000, "instruction budget")
	memSize := flag.Int("mem", 1<<17, "RAM size in bytes")
	seed := flag.Uint64("seed", 1, "measurement-noise seed for the power trace")
	runDir := flag.String("run-dir", "", "archive the simulation: manifest.json, metrics.txt, run.log, trace.json")
	logLevel := flag.String("log-level", "", "enable structured logging of the run (debug, info, warn, error)")
	flag.Parse()

	var archived *obs.Run
	if *runDir != "" {
		var err error
		archived, err = obs.StartRun(*runDir, obs.RunOptions{
			Tool: "rvsim", Command: "simulate", Args: os.Args[1:], Seed: *seed,
			Config:   map[string]any{"source": *src, "max": *maxInstrs, "mem": *memSize},
			LogLevel: obs.ParseLevel(*logLevel),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvsim:", err)
			os.Exit(1)
		}
	} else if *logLevel != "" {
		obs.SetGlobal(obs.New(obs.Options{Logger: obs.NewLogger(obs.LogOptions{
			Level: obs.ParseLevel(*logLevel), Output: os.Stderr,
		})}))
	}

	err := run(archived, *src, *disasm, *traceOut, *maxInstrs, *memSize, *seed)
	// Finish explicitly: os.Exit skips defers, and the manifest must be
	// sealed on the failure path too.
	if ferr := archived.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvsim:", err)
		os.Exit(1)
	}
}

func run(archived *obs.Run, srcPath string, disasm bool, traceOut string, maxInstrs, memSize int, seed uint64) error {
	if srcPath == "" {
		return fmt.Errorf("missing -s <source.s>")
	}
	source, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	img, labels, err := rv32.Assemble(string(source), 0)
	if err != nil {
		return err
	}
	if disasm {
		fmt.Print(rv32.DisasmImage(img, 0))
		if len(labels) > 0 {
			fmt.Println("labels:")
			for name, addr := range labels {
				fmt.Printf("  %-20s %#x\n", name, addr)
			}
		}
	}

	cpu := rv32.NewCPU(memSize)
	if err := cpu.Load(img, 0); err != nil {
		return err
	}

	var syn *power.Synthesizer
	if traceOut != "" {
		syn, err = power.NewSynthesizer(power.DefaultModel(), sampler.NewXoshiro256(seed))
		if err != nil {
			return err
		}
		cpu.OnEvent = syn.HandleEvent
	}

	sp := obs.StartSpan("simulate")
	executed, err := cpu.Run(maxInstrs)
	sp.AddItems(executed)
	simTime := sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("halted after %d instructions, %d cycles\n", executed, cpu.Cycle)
	obs.Log().Info("simulation done", "instructions", executed,
		"cycles", cpu.Cycle, "duration", simTime)
	archived.SetResult("instructions", executed)
	archived.SetResult("cycles", cpu.Cycle)

	abi := []string{"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
		"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
		"t3", "t4", "t5", "t6"}
	for i := 0; i < 32; i += 4 {
		for j := i; j < i+4; j++ {
			fmt.Printf("%-5s %08x   ", abi[j], cpu.Regs[j])
		}
		fmt.Println()
	}

	if syn != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, trace.Trace(syn.Samples())); err != nil {
			return err
		}
		fmt.Printf("power trace (%d samples) written to %s\n", len(syn.Samples()), traceOut)
	}
	return nil
}
