package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reveal/internal/obs/history"
	"reveal/internal/service"
)

// fakeHistoryDaemon serves canned /api/v1/history and /aggregate payloads,
// honoring the after cursor so pagination is exercised for real.
func fakeHistoryDaemon(t *testing.T, records []history.RunRecord,
	agg service.HistoryAggregateResponse) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/history", func(w http.ResponseWriter, r *http.Request) {
		var after int64
		if s := r.URL.Query().Get("after"); s != "" {
			if err := json.Unmarshal([]byte(s), &after); err != nil {
				http.Error(w, "bad cursor", http.StatusBadRequest)
				return
			}
		}
		resp := service.HistoryResponse{Records: []history.RunRecord{}, Total: len(records)}
		// One record per page forces the client to walk the cursor.
		for _, rec := range records {
			if rec.Seq > after {
				resp.Records = append(resp.Records, rec)
				if rec.Seq < records[len(records)-1].Seq {
					resp.NextAfter = rec.Seq
				}
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /api/v1/history/aggregate", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(agg)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func testReportFixture() ([]history.RunRecord, service.HistoryAggregateResponse) {
	t0 := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	records := []history.RunRecord{
		{Seq: 1, Time: t0, Kind: "attack", Tenant: "ci", JobID: "job-1",
			ElapsedSeconds: 2.0,
			Stages:         map[string]float64{"attack_seconds": 1.5},
			Metrics:        map[string]float64{"value_accuracy": 0.99, "mean_margin": 0.9}},
		{Seq: 2, Time: t0.Add(time.Minute), Kind: "attack", Tenant: "ci", JobID: "job-2",
			ElapsedSeconds: 2.1,
			Stages:         map[string]float64{"attack_seconds": 1.6},
			Metrics:        map[string]float64{"value_accuracy": 0.70, "mean_margin": 0.5}},
	}
	agg := service.HistoryAggregateResponse{
		Aggregates: []history.KindAggregate{{
			Kind: "attack", Runs: 2,
			Metrics: []history.MetricAggregate{
				{Metric: "elapsed_seconds", Count: 2, Mean: 2.05, P50: 2.0,
					P95: 2.1, Last: 2.1, EWMA: 2.03},
				{Metric: "mean_margin", Count: 2, Mean: 0.7, P50: 0.5,
					P95: 0.9, Last: 0.5, EWMA: 0.78},
				{Metric: "stage.attack_seconds", Count: 2, Mean: 1.55, P50: 1.5,
					P95: 1.6, Last: 1.6, EWMA: 1.53},
				{Metric: "value_accuracy", Count: 2, Mean: 0.845, P50: 0.70,
					P95: 0.99, Last: 0.70, EWMA: 0.903},
			},
		}},
		Baselines: map[string]map[string]float64{
			"attack": {"value_accuracy": 0.99},
		},
	}
	return records, agg
}

// TestWriteReportMarkdown checks the rendered trajectory report: aggregate
// table with baseline deltas, and one trajectory row per run.
func TestWriteReportMarkdown(t *testing.T) {
	records, agg := testReportFixture()
	var buf bytes.Buffer
	if err := writeReportMarkdown(&buf, "http://x", records, agg, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Campaign quality report",
		"## attack (2 runs)",
		"| value_accuracy | 2 | 0.8450 |",
		"0.9900 |",   // baseline column
		"| -14.6% |", // (0.845-0.99)/0.99
		"Trajectory (newest 2 runs):",
		"| 1 | 08-07 10:00:00 | ci |",
		"| 2 |",
		"stage.attack_seconds",
		"elapsed_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Empty history renders the placeholder, not an empty table.
	buf.Reset()
	if err := writeReportMarkdown(&buf, "http://x", nil,
		service.HistoryAggregateResponse{}, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No finished campaigns") {
		t.Errorf("empty report = %q", buf.String())
	}
}

// TestWriteReportCSV checks the long-form CSV: header plus one row per
// record and metric, parseable by encoding/csv.
func TestWriteReportCSV(t *testing.T) {
	records, _ := testReportFixture()
	var buf bytes.Buffer
	if err := writeReportCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 2 records × 4 values (2 metrics + 1 stage + elapsed) + header.
	if len(rows) != 9 {
		t.Fatalf("csv rows = %d, want 9: %v", len(rows), rows)
	}
	if got := strings.Join(rows[0], ","); got != "seq,time,kind,tenant,job_id,metric,value" {
		t.Fatalf("csv header = %s", got)
	}
	found := false
	for _, row := range rows[1:] {
		if row[0] == "2" && row[5] == "value_accuracy" && row[6] == "0.7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("csv missing value row: %v", rows)
	}
}

// TestFetchAllHistoryPaginates walks a daemon that serves one record per
// page and checks the client reassembles the full trajectory.
func TestFetchAllHistoryPaginates(t *testing.T) {
	records, agg := testReportFixture()
	ts := fakeHistoryDaemon(t, records, agg)
	got, err := fetchAllHistory(context.Background(), service.NewClient(ts.URL), "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("paginated fetch = %+v", got)
	}
}
