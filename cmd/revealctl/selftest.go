package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"reveal/internal/core"
	"reveal/internal/experiments"
)

// runSelftest implements `revealctl selftest`: the replay-determinism gate
// of internal/core run from the command line. The printed digest line is
// stable across processes for a given seed/worker count, so CI (and
// operators) can run the command twice and diff the output to prove
// fresh-process determinism on top of the in-process serial/parallel check.
func runSelftest(args []string) error {
	fs := flag.NewFlagSet("selftest", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "selftest pipeline seed")
	workers := fs.Int("workers", 4, "worker count for the parallel pass (minimum 2)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	quiet := fs.Bool("q", false, "print only the digest line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := core.Selftest(context.Background(), *seed, *workers)
	if err != nil {
		if report != nil && !report.Match {
			fmt.Fprintf(os.Stderr, "serial digest:   %s\nparallel digest: %s\n",
				report.SerialDigest, report.ParallelDigest)
		}
		return err
	}
	if *jsonOut {
		return experiments.WriteJSON(os.Stdout, report)
	}
	if !*quiet {
		fmt.Printf("selftest PASS (seed=%d, workers=%d)\n", report.Seed, report.Workers)
		fmt.Printf("  serial == parallel: %v\n", report.Match)
		fmt.Printf("  e2 value accuracy:  %.2f%%, sign accuracy %.2f%%\n",
			100*report.ValueAccuracy, 100*report.SignAccuracy)
		fmt.Printf("  security estimate:  %.2f bikz baseline -> %.2f bikz with hints\n",
			report.BaselineBikz, report.HintedBikz)
	}
	fmt.Printf("selftest digest: %s\n", report.Digest())
	return nil
}
