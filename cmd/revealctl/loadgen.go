package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"reveal/internal/service"
)

// runLoadgen implements `revealctl loadgen`: drive a synthetic campaign
// load (N tenants, mixed kinds) against a running reveald and report the
// sustained jobs/sec and the submit→done latency quantiles, optionally as
// a BENCH_Loadgen.json snapshot for the `revealctl compare` gate.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "reveald base URL")
	tenants := fs.Int("tenants", 4, "synthetic tenant identities to spread jobs over")
	jobsN := fs.Int("jobs", 64, "total campaigns to submit")
	concurrency := fs.Int("concurrency", 8, "concurrent submitters")
	kinds := fs.String("kinds", "sleep", "comma-separated campaign kind mix (sleep, attack, diagnose)")
	sleepMS := fs.Int("sleep-ms", 20, "duration of each sleep campaign")
	seed := fs.Uint64("seed", 1, "campaign seed (shared, so attack kinds reuse one template)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	retry := fs.Int("retry", 3, "transient connection-error retries per request")
	out := fs.String("o", "", "also write a BENCH_Loadgen.json snapshot here")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var kindList []string
	for _, k := range strings.Split(*kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kindList = append(kindList, k)
		}
	}
	client := service.NewClient(*addr)
	client.RetryAttempts = *retry

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if !*jsonOut {
		fmt.Printf("loadgen: %d jobs (%s) across %d tenants, %d submitters -> %s\n",
			*jobsN, strings.Join(kindList, ","), *tenants, *concurrency, *addr)
	}
	rep, err := service.RunLoadgen(ctx, client, service.LoadgenOptions{
		Tenants:     *tenants,
		Jobs:        *jobsN,
		Concurrency: *concurrency,
		Kinds:       kindList,
		SleepMS:     *sleepMS,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	if *out != "" {
		if err := rep.WriteBenchSnapshot(*out, "Loadgen"); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
	}
	if *jsonOut {
		return printJSON(rep)
	}
	fmt.Printf("%d done, %d failed in %.2fs: %.1f jobs/sec (%d backpressure retries)\n",
		rep.Done, rep.Failed, rep.ElapsedSeconds, rep.JobsPerSecond, rep.Rejections)
	fmt.Printf("latency p50 %.3fs  p95 %.3fs  max %.3fs\n",
		rep.LatencyP50Seconds, rep.LatencyP95Seconds, rep.LatencyMaxSeconds)
	if *out != "" {
		fmt.Printf("snapshot written to %s\n", *out)
	}
	return nil
}
