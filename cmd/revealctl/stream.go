package main

import (
	"fmt"

	"reveal/internal/core"
	"reveal/internal/experiments"
	"reveal/internal/trace"
)

// runAttackStream is the -stream variant of 'revealctl attack': each e2
// trace is fed to the streaming engine in fixed-size chunks, every
// coefficient is classified the moment its segment closes, and — unless
// the attack early-exited on -target-bikz — the streamed result's digest
// is cross-checked against the batch Segment+AttackSegments path over the
// same trace (the determinism contract, verified on real output).
func runAttackStream(camp *campaign, s *experiments.Session, messages int, targetBikz float64, chunk int) error {
	if chunk < 1 {
		return fmt.Errorf("chunk must be at least 1 sample, got %d", chunk)
	}
	classifiedTotal, earlyExits, mismatches := 0, 0, 0
	var sumVAcc, sumSAcc float64
	for msg := 0; msg < messages; msg++ {
		pt := s.Params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64((i*31 + msg*7) % int(s.Params.T))
		}
		cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
		if err != nil {
			return err
		}
		sa, err := core.NewStreamAttack(s.Classifier, core.StreamAttackOptions{
			Coefficients: s.Params.N,
			TargetBikz:   targetBikz,
			Params:       s.Params,
		})
		if err != nil {
			return err
		}
		tr := cap.TraceE2
		for off := 0; off < len(tr) && !sa.EarlyExited(); off += chunk {
			end := off + chunk
			if end > len(tr) {
				end = len(tr)
			}
			if err := sa.Feed(tr[off:end]); err != nil {
				sa.Close()
				return err
			}
		}
		res, verdict, err := sa.Finish()
		if err != nil {
			return err
		}
		classifiedTotal += verdict.Classified
		if verdict.EarlyExit {
			earlyExits++
		}
		vAcc, sAcc, err := res.Accuracy(cap.Truth.E2[:verdict.Classified])
		if err != nil {
			return err
		}
		sumVAcc += vAcc
		sumSAcc += sAcc
		fmt.Printf("message %d: streamed %d/%d coefficients (%d-sample chunks): value %.2f%%, sign %.2f%%, ttfh %.3fms, ttv %.3fms\n",
			msg, verdict.Classified, s.Params.N, chunk, 100*vAcc, 100*sAcc,
			verdict.TimeToFirstHint.Seconds()*1e3, verdict.TimeToVerdict.Seconds()*1e3)
		if verdict.EarlyExit {
			fmt.Printf("message %d: early exit after %d samples: %.2f bikz <= target %.2f (baseline %.2f)\n",
				msg, verdict.SamplesIngested, verdict.HintedBikz, targetBikz, verdict.BaselineBikz)
			continue
		}
		match, err := streamDigestMatchesBatch(s, tr, res, verdict.Classified)
		if err != nil {
			return err
		}
		if !match {
			mismatches++
		}
		fmt.Printf("message %d: stream digest matches batch: %v\n", msg, match)
	}
	camp.setResult("messages", messages)
	camp.setResult("stream_classified", classifiedTotal)
	camp.setResult("stream_early_exits", earlyExits)
	camp.setResult("stream_digest_mismatches", mismatches)
	if messages > 0 {
		camp.setResult("mean_value_accuracy", sumVAcc/float64(messages))
		camp.setResult("mean_sign_accuracy", sumSAcc/float64(messages))
	}
	if mismatches > 0 {
		return fmt.Errorf("%d of %d streamed messages diverged from the batch attack", mismatches, messages)
	}
	return nil
}

// streamDigestMatchesBatch reruns the batch path over the complete trace
// and compares canonical digests against the streamed prefix.
func streamDigestMatchesBatch(s *experiments.Session, tr trace.Trace, streamRes *core.AttackResult, classified int) (bool, error) {
	sg := trace.NewSegmenter(s.Params.N + 1)
	segs, err := sg.Segment(tr, s.Params.N+1, 8)
	if err != nil {
		return false, err
	}
	batchRes, err := s.Classifier.AttackSegments(segs[:s.Params.N])
	if err != nil {
		return false, err
	}
	sd, err := streamRes.Digest()
	if err != nil {
		return false, err
	}
	bd, err := batchRes.Prefix(classified).Digest()
	if err != nil {
		return false, err
	}
	return sd == bd, nil
}
