package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/service"
)

// submitConfig is the fully parsed input of one submit invocation: the
// normalized campaign spec plus the delivery options.
type submitConfig struct {
	Addr      string
	Spec      service.CampaignSpec
	Wait      bool
	Poll      time.Duration
	Retry     int
	RetryBase time.Duration
}

// parseSubmitArgs turns the submit argument list into a normalized
// submitConfig. -spec FILE (or "-" for stdin) replaces the inline flags;
// either path ends with spec.Normalize so an invalid kind or bound fails
// here, before any network traffic. stdin is injected for testability.
func parseSubmitArgs(args []string, stdin io.Reader, stderr io.Writer) (*submitConfig, error) {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &submitConfig{}
	fs.StringVar(&cfg.Addr, "addr", "http://127.0.0.1:9090", "reveald base URL")
	specPath := fs.String("spec", "", "campaign spec JSON file (- for stdin); inline flags below are ignored when set")
	kind := fs.String("kind", "attack", "campaign kind: attack, diagnose, sleep, stream")
	seed := fs.Uint64("seed", 1, "campaign seed")
	lowNoise := fs.Bool("lownoise", false, "use the low-noise measurement setup")
	paramSet := fs.String("param-set", "", "SEAL parameter set: paper/n1024 (default), n2048, n4096, n8192")
	traces := fs.Int("traces", 0, "profiling traces per coefficient value (0 = preset default)")
	encryptions := fs.Int("encryptions", 1, "single-trace attacks to run (attack kind)")
	workers := fs.Int("workers", 0, "classification goroutines (0 = daemon default)")
	attempts := fs.Int("attempts", 0, "job attempt budget (0 = daemon default)")
	timeout := fs.Duration("timeout", 0, "job deadline covering queue wait and retries (0 = none)")
	tenant := fs.String("tenant", "", "tenant identity recorded on the job (per-tenant metrics)")
	targetBikz := fs.Float64("target-bikz", 0, "stream kind: stop each trace once the banked hints reach this block size (0 = full trace)")
	chunkSamples := fs.Int("chunk-samples", 0, "stream kind: RVTS replay chunk size in samples (0 = daemon default)")
	verifyBatch := fs.Bool("verify-batch", false, "stream kind: also run the batch attack and record digest equality")
	fs.BoolVar(&cfg.Wait, "wait", false, "poll until the campaign finishes and print its result")
	fs.DurationVar(&cfg.Poll, "poll", 500*time.Millisecond, "poll interval with -wait")
	fs.IntVar(&cfg.Retry, "retry", 3, "transient connection-error retries with exponential backoff (0 = fail fast)")
	fs.DurationVar(&cfg.RetryBase, "retry-base", 200*time.Millisecond, "first retry delay (doubles per attempt, capped at 5s)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	if *specPath != "" {
		var data []byte
		var err error
		if *specPath == "-" {
			data, err = io.ReadAll(stdin)
		} else {
			data, err = os.ReadFile(*specPath)
		}
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &cfg.Spec); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	} else {
		cfg.Spec = service.CampaignSpec{
			Kind:                  *kind,
			Seed:                  *seed,
			LowNoise:              *lowNoise,
			ParamSet:              *paramSet,
			ProfileTracesPerValue: *traces,
			Encryptions:           *encryptions,
			Workers:               *workers,
			MaxAttempts:           *attempts,
			TimeoutMS:             int(timeout.Milliseconds()),
			Tenant:                *tenant,
			TargetBikz:            *targetBikz,
			ChunkSamples:          *chunkSamples,
			VerifyBatch:           *verifyBatch,
		}
	}
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// runSubmit implements `revealctl submit`: post a campaign spec to a
// running reveald and optionally wait for the result.
func runSubmit(args []string) error {
	cfg, err := parseSubmitArgs(args, os.Stdin, os.Stderr)
	if err != nil {
		return err
	}
	spec := cfg.Spec

	ctx := context.Background()
	client := service.NewClient(cfg.Addr)
	client.RetryAttempts = cfg.Retry
	client.RetryBase = cfg.RetryBase
	st, err := client.Submit(ctx, &spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s, seed %d): %s\n", st.ID, st.Kind, spec.Seed, st.State)
	if st.TraceID != "" {
		// The same ID appears in the daemon's log lines, /events journal,
		// per-job manifest/run.log/trace.json, and the X-Reveal-Trace-Id
		// response header — grep any of them with it.
		fmt.Printf("trace %s\n", st.TraceID)
	}
	if !cfg.Wait {
		fmt.Printf("poll with: revealctl status -addr %s -id %s\n", cfg.Addr, st.ID)
		return nil
	}
	st, err = client.WaitDone(ctx, st.ID, cfg.Poll)
	if err != nil {
		return err
	}
	printStatus(st)
	if st.State == jobs.StateFailed {
		return fmt.Errorf("campaign %s failed: %s", st.ID, st.Error)
	}
	var result json.RawMessage
	if err := client.Result(ctx, st.ID, &result); err != nil {
		return err
	}
	fmt.Println(string(result))
	return nil
}

// runStatus implements `revealctl status`: list jobs or show one, with an
// optional result fetch.
func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "reveald base URL")
	id := fs.String("id", "", "campaign id (empty = list all jobs)")
	result := fs.Bool("result", false, "also fetch and print the result (requires -id)")
	jsonOut := fs.Bool("json", false, "print raw JSON")
	retry := fs.Int("retry", 3, "transient connection-error retries with exponential backoff (0 = fail fast)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	client := service.NewClient(*addr)
	client.RetryAttempts = *retry

	if *id == "" {
		list, err := client.List(ctx)
		if err != nil {
			return err
		}
		if *jsonOut {
			return printJSON(list)
		}
		queued, running, cached, err := client.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%d jobs (%d queued, %d running), %d cached template sets\n",
			len(list), queued, running, cached)
		for _, st := range list {
			printStatus(st)
		}
		return nil
	}

	st, err := client.Campaign(ctx, *id)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := printJSON(st); err != nil {
			return err
		}
	} else {
		printStatus(st)
	}
	if *result {
		var raw json.RawMessage
		if err := client.Result(ctx, *id, &raw); err != nil {
			return err
		}
		fmt.Println(string(raw))
	}
	return nil
}

// printStatus renders one job line.
func printStatus(st jobs.Status) {
	line := fmt.Sprintf("%s  %-8s %-8s attempt %d/%d", st.ID, st.Kind, st.State, st.Attempts, st.MaxAttempts)
	if st.TraceID != "" {
		line += "  trace " + st.TraceID
	}
	if st.QueueWaitSeconds > 0 || st.RunSeconds > 0 {
		line += fmt.Sprintf("  wait %.3fs run %.3fs", st.QueueWaitSeconds, st.RunSeconds)
	}
	if st.FinishedAt != nil {
		line += fmt.Sprintf("  finished %s", st.FinishedAt.Format(time.RFC3339))
	}
	if st.Error != "" {
		line += "  error: " + st.Error
	}
	fmt.Println(line)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
