package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"reveal/internal/obs/history"
	"reveal/internal/service"
)

// runReport implements `revealctl report`: it pulls the quality history and
// rollups from a running reveald and renders a trajectory report — one
// section per campaign kind with the aggregate statistics (count, mean,
// quantiles, EWMA), the delta against the drift watchdog's pinned baseline,
// and the most recent runs metric by metric. -format csv emits the raw
// trajectory in long form (one row per record and metric) for spreadsheets.
func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "reveald base URL")
	kind := fs.String("kind", "", "restrict to one campaign kind")
	tenant := fs.String("tenant", "", "restrict to one tenant")
	window := fs.Int("window", 0, "aggregate only the newest N runs per kind (0 = all)")
	rows := fs.Int("rows", 10, "trajectory rows per kind in the markdown report")
	format := fs.String("format", "markdown", "output format: markdown or csv")
	out := fs.String("o", "", "write the report to a file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "markdown" && *format != "csv" {
		return fmt.Errorf("unknown report format %q (markdown or csv)", *format)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := service.NewClient(*addr)
	records, err := fetchAllHistory(ctx, client, *kind, *tenant)
	if err != nil {
		return fmt.Errorf("fetching history from %s: %w", *addr, err)
	}
	agg, err := client.HistoryAggregate(ctx, *kind, *tenant, *window)
	if err != nil {
		return fmt.Errorf("fetching aggregates from %s: %w", *addr, err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "csv" {
		return writeReportCSV(w, records)
	}
	return writeReportMarkdown(w, *addr, records, agg, *rows)
}

// fetchAllHistory pages through GET /api/v1/history until the cursor is
// exhausted.
func fetchAllHistory(ctx context.Context, client *service.Client, kind, tenant string) ([]history.RunRecord, error) {
	var records []history.RunRecord
	var after int64
	for {
		page, err := client.History(ctx, kind, tenant, after, 0)
		if err != nil {
			return nil, err
		}
		records = append(records, page.Records...)
		if page.NextAfter == 0 {
			return records, nil
		}
		after = page.NextAfter
	}
}

// writeReportMarkdown renders the per-kind aggregate and trajectory tables.
func writeReportMarkdown(w io.Writer, addr string, records []history.RunRecord,
	agg service.HistoryAggregateResponse, rows int) error {
	fmt.Fprintf(w, "# Campaign quality report\n\n")
	fmt.Fprintf(w, "- daemon: %s\n- generated: %s\n- records: %d\n\n",
		addr, time.Now().UTC().Format(time.RFC3339), len(records))
	if len(agg.Aggregates) == 0 {
		fmt.Fprintln(w, "No finished campaigns recorded yet.")
		return nil
	}
	for _, ka := range agg.Aggregates {
		title := ka.Kind
		if ka.Tenant != "" {
			title += " / " + ka.Tenant
		}
		fmt.Fprintf(w, "## %s (%d runs)\n\n", title, ka.Runs)

		baseline := agg.Baselines[ka.Kind]
		fmt.Fprintln(w, "| metric | count | mean | p50 | p95 | last | ewma | baseline | Δ vs baseline |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|")
		for _, m := range ka.Metrics {
			base, delta := "-", "-"
			if b, ok := baseline[m.Metric]; ok && b != 0 {
				base = fmtMetric(b)
				delta = fmt.Sprintf("%+.1f%%", 100*(m.Mean-b)/math.Abs(b))
			}
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s | %s | %s | %s |\n",
				m.Metric, m.Count, fmtMetric(m.Mean), fmtMetric(m.P50),
				fmtMetric(m.P95), fmtMetric(m.Last), fmtMetric(m.EWMA), base, delta)
		}
		fmt.Fprintln(w)

		writeTrajectory(w, ka, recordsForKind(records, ka.Kind), rows)
	}
	return nil
}

// recordsForKind filters the fetched records down to one kind, preserving
// the oldest-first order.
func recordsForKind(records []history.RunRecord, kind string) []history.RunRecord {
	var out []history.RunRecord
	for _, r := range records {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// writeTrajectory renders the newest runs of one kind, one row per run with
// the kind's aggregate metrics as columns.
func writeTrajectory(w io.Writer, ka history.KindAggregate, records []history.RunRecord, rows int) {
	if len(records) == 0 || rows <= 0 {
		return
	}
	if len(records) > rows {
		records = records[len(records)-rows:]
	}
	cols := make([]string, 0, len(ka.Metrics))
	for _, m := range ka.Metrics {
		cols = append(cols, m.Metric)
	}
	fmt.Fprintf(w, "Trajectory (newest %d runs):\n\n", len(records))
	fmt.Fprint(w, "| seq | time | tenant |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprint(w, "\n|---:|---|---|")
	for range cols {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, r := range records {
		vals := r.Values()
		fmt.Fprintf(w, "| %d | %s | %s |", r.Seq, r.Time.UTC().Format("01-02 15:04:05"), r.Tenant)
		for _, c := range cols {
			if v, ok := vals[c]; ok {
				fmt.Fprintf(w, " %s |", fmtMetric(v))
			} else {
				fmt.Fprint(w, " - |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// writeReportCSV emits the trajectory in long form: one row per record and
// metric, stable for spreadsheets and ad-hoc plotting.
func writeReportCSV(w io.Writer, records []history.RunRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time", "kind", "tenant", "job_id", "metric", "value"}); err != nil {
		return err
	}
	for _, r := range records {
		vals := r.Values()
		names := make([]string, 0, len(vals))
		for name := range vals {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			err := cw.Write([]string{
				strconv.FormatInt(r.Seq, 10),
				r.Time.UTC().Format(time.RFC3339),
				r.Kind, r.Tenant, r.JobID, name,
				strconv.FormatFloat(vals[name], 'g', -1, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtMetric renders a metric value compactly: quality ratios keep four
// decimals, large magnitudes switch to scientific-free fixed point.
func fmtMetric(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case math.Abs(v) >= 1:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}
