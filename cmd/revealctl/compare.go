package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"reveal/internal/experiments"
	"reveal/internal/obs"
)

// metricTolFlag collects repeatable -metric-tol name=tolerance overrides.
type metricTolFlag map[string]float64

func (m metricTolFlag) String() string {
	var parts []string
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (m metricTolFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=tolerance, got %q", s)
	}
	t, err := strconv.ParseFloat(val, 64)
	if err != nil || t < 0 {
		return fmt.Errorf("invalid tolerance %q", val)
	}
	m[name] = t
	return nil
}

// runCompare implements `revealctl compare OLD NEW`: the regression gate.
// Both arguments are manifest.json or BENCH_*.json files; quality metrics
// (accuracy, recovery counts) regressing beyond tolerance fail the command
// with a non-zero exit, which is what CI hangs the gate on.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.05, "default relative tolerance for gated metrics")
	gatePerf := fs.Bool("gate-perf", false, "also gate wall-clock metrics (ns_per_op, *_seconds); off by default because they are machine-dependent")
	jsonOut := fs.Bool("json", false, "print the per-metric deltas as JSON")
	metricTol := metricTolFlag{}
	fs.Var(metricTol, "metric-tol", "per-metric tolerance override, name=tolerance (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: revealctl compare [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("compare needs exactly two files, got %d", fs.NArg())
	}
	prev, err := obs.LoadRunMetrics(fs.Arg(0))
	if err != nil {
		return err
	}
	curr, err := obs.LoadRunMetrics(fs.Arg(1))
	if err != nil {
		return err
	}
	if prev.Kind != curr.Kind {
		fmt.Fprintf(os.Stderr, "revealctl: warning: comparing a %s against a %s\n", prev.Kind, curr.Kind)
	}
	deltas, regressed := obs.CompareMetrics(prev, curr, obs.CompareOptions{
		Tolerance:       *tol,
		MetricTolerance: metricTol,
		GatePerf:        *gatePerf,
	})
	if *jsonOut {
		if err := experiments.WriteJSON(os.Stdout, struct {
			Old       string            `json:"old"`
			New       string            `json:"new"`
			Regressed bool              `json:"regressed"`
			Deltas    []obs.MetricDelta `json:"deltas"`
		}{prev.Path, curr.Path, regressed, deltas}); err != nil {
			return err
		}
	} else {
		fmt.Printf("comparing %s (%s)\n       vs %s (%s)\n\n", prev.Path, prev.Kind, curr.Path, curr.Kind)
		fmt.Print(obs.FormatDeltas(deltas))
	}
	if regressed {
		return fmt.Errorf("regression detected (%s vs %s)", fs.Arg(0), fs.Arg(1))
	}
	if !*jsonOut {
		fmt.Println("\nno regressions")
	}
	return nil
}
