package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reveal/internal/experiments"
	"reveal/internal/obs"
)

// metricTolFlag collects repeatable -metric-tol name=tolerance overrides.
type metricTolFlag map[string]float64

func (m metricTolFlag) String() string {
	var parts []string
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (m metricTolFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=tolerance, got %q", s)
	}
	t, err := strconv.ParseFloat(val, 64)
	if err != nil || t < 0 {
		return fmt.Errorf("invalid tolerance %q", val)
	}
	m[name] = t
	return nil
}

// compareConfig is the fully parsed input of one compare invocation.
type compareConfig struct {
	Tol       float64
	PerfTol   float64
	GatePerf  bool
	JSONOut   bool
	MetricTol metricTolFlag
	OldPath   string
	NewPath   string
}

// parseCompareArgs turns the compare argument list into a compareConfig.
// Flag errors and usage go to stderr; parsing never exits the process, so
// the flag plumbing is testable end to end.
func parseCompareArgs(args []string, stderr io.Writer) (*compareConfig, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &compareConfig{MetricTol: metricTolFlag{}}
	fs.Float64Var(&cfg.Tol, "tol", 0.05, "default relative tolerance for gated metrics")
	fs.BoolVar(&cfg.GatePerf, "gate-perf", false, "also gate wall-clock metrics (ns_per_op, *_seconds); off by default because they are machine-dependent")
	fs.Float64Var(&cfg.PerfTol, "perf-tol", 0, "relative tolerance for wall-clock metrics under -gate-perf (0 means use -tol); direction-aware, so only slowdowns fail")
	fs.BoolVar(&cfg.JSONOut, "json", false, "print the per-metric deltas as JSON")
	fs.Var(cfg.MetricTol, "metric-tol", "per-metric tolerance override, name=tolerance (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: revealctl compare [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return nil, fmt.Errorf("compare needs exactly two files, got %d", fs.NArg())
	}
	cfg.OldPath, cfg.NewPath = fs.Arg(0), fs.Arg(1)
	return cfg, nil
}

// executeCompare loads both artifacts, diffs them, renders the report to
// stdout and returns a non-nil error when a gated metric regressed — the
// exit-1 CI hangs the gate on.
func executeCompare(cfg *compareConfig, stdout, stderr io.Writer) error {
	prev, err := obs.LoadRunMetrics(cfg.OldPath)
	if err != nil {
		return err
	}
	curr, err := obs.LoadRunMetrics(cfg.NewPath)
	if err != nil {
		return err
	}
	if prev.Kind != curr.Kind {
		fmt.Fprintf(stderr, "revealctl: warning: comparing a %s against a %s\n", prev.Kind, curr.Kind)
	}
	deltas, regressed := obs.CompareMetrics(prev, curr, obs.CompareOptions{
		Tolerance:       cfg.Tol,
		PerfTolerance:   cfg.PerfTol,
		MetricTolerance: cfg.MetricTol,
		GatePerf:        cfg.GatePerf,
	})
	if cfg.JSONOut {
		if err := experiments.WriteJSON(stdout, struct {
			Old       string            `json:"old"`
			New       string            `json:"new"`
			Regressed bool              `json:"regressed"`
			Deltas    []obs.MetricDelta `json:"deltas"`
		}{prev.Path, curr.Path, regressed, deltas}); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "comparing %s (%s)\n       vs %s (%s)\n\n", prev.Path, prev.Kind, curr.Path, curr.Kind)
		fmt.Fprint(stdout, obs.FormatDeltas(deltas))
	}
	if regressed {
		return fmt.Errorf("regression detected (%s vs %s)", cfg.OldPath, cfg.NewPath)
	}
	if !cfg.JSONOut {
		fmt.Fprintln(stdout, "\nno regressions")
	}
	return nil
}

// runCompare implements `revealctl compare OLD NEW`: the regression gate.
// Both arguments are manifest.json or BENCH_*.json files; quality metrics
// (accuracy, recovery counts) regressing beyond tolerance fail the command
// with a non-zero exit, which is what CI hangs the gate on.
func runCompare(args []string) error {
	cfg, err := parseCompareArgs(args, os.Stderr)
	if err != nil {
		return err
	}
	return executeCompare(cfg, os.Stdout, os.Stderr)
}
