package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/obs/history"
	"reveal/internal/service"
)

// TestRenderTop renders one dashboard frame from a fabricated stats
// payload and checks the load-bearing content: the summary line, the
// per-kind table with latency quantiles, the queue-wait sub-row, and the
// event tail with its trace annotation.
func TestRenderTop(t *testing.T) {
	stats := service.StatsResponse{
		Queued: 3, Running: 1, CachedTemplates: 2,
		Workers: 4, WorkersBusy: 1, UptimeSeconds: 125,
		Kinds: []jobs.KindStats{
			{Kind: "attack", Submitted: 7, Done: 5, Failed: 1, Retried: 2, Queued: 1, Running: 1},
			{Kind: "sleep", Submitted: 2, Done: 2},
		},
		AttemptLatency: map[string]obs.HistogramSnapshot{
			"attack": {Count: 6, P50: 0.25, P95: 1.2, P99: 75},
		},
		QueueWait: map[string]obs.HistogramSnapshot{
			"attack": {Count: 6, P50: 0.002, P95: 0.01, P99: 0.05},
		},
	}
	events := []obs.ServiceEvent{
		{Seq: 9, Time: time.Date(2026, 8, 7, 12, 0, 1, 0, time.UTC), Type: obs.EventJobFinished,
			JobID: "job-000007", Kind: "attack", Tenant: "acme", TraceID: "trace-abc", State: "done"},
		{Seq: 10, Time: time.Date(2026, 8, 7, 12, 0, 2, 0, time.UTC), Type: obs.EventCacheFill,
			Detail: "trained lownoise in 1.20s"},
	}

	quality := &service.HistoryAggregateResponse{
		Aggregates: []history.KindAggregate{{
			Kind: "attack", Runs: 6,
			Metrics: []history.MetricAggregate{
				{Metric: "value_accuracy", Count: 6, Mean: 0.90, Last: 0.85, EWMA: 0.88},
				{Metric: "stage.attack_seconds", Count: 6, Mean: 0.4, Last: 0.4, EWMA: 0.4},
			},
		}},
		Baselines: map[string]map[string]float64{
			"attack": {"value_accuracy": 0.95},
		},
	}

	var buf bytes.Buffer
	renderTop(&buf, "http://127.0.0.1:9090", stats, quality, events)
	out := buf.String()
	for _, want := range []string{
		"workers 1/4 busy",
		"queue 3 queued / 1 running",
		"templates cached 2",
		"attack",
		"sleep",
		"250.0ms", // attack p50
		"1.20s",   // attack p95
		"1m15s",   // attack p99 crosses into duration formatting
		"queue wait:",
		"2.0ms", // queue-wait p50
		"job_finished",
		"job-000007",
		"tenant=acme",
		"trace=trace-abc",
		"cache_fill",
		"trained lownoise",
		"quality (history):",
		"value_accuracy",
		"-5.3%", // mean 0.90 vs pinned baseline 0.95
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Stage timings stay out of the quality pane.
	if strings.Contains(out, "stage.attack_seconds") {
		t.Errorf("quality pane must omit stage timings:\n%s", out)
	}
	// A daemon without a history store renders no quality pane.
	buf.Reset()
	renderTop(&buf, "http://127.0.0.1:9090", stats, nil, events)
	if strings.Contains(buf.String(), "quality (history):") {
		t.Error("nil quality must omit the pane")
	}
	// A kind with no latency observations renders "-" placeholders.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sleep") && !strings.Contains(line, "-") {
			t.Errorf("sleep row should show '-' for unobserved quantiles: %q", line)
		}
	}
}

// TestFmtSeconds pins the latency rendering thresholds.
func TestFmtSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "-"},
		{-1, "-"},
		{0.000001, "1µs"},
		{0.00042, "420µs"},
		{0.0021, "2.1ms"},
		{0.25, "250.0ms"},
		{1.5, "1.50s"},
		{59.9, "59.90s"},
		{75, "1m15s"},
		{3700, "1h1m40s"},
	}
	for _, c := range cases {
		if got := fmtSeconds(c.in); got != c.want {
			t.Errorf("fmtSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
