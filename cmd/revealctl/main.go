// Command revealctl drives the full RevEAL reproduction: profiling the
// simulated device, running the single-trace template attack, printing the
// paper's tables, and demonstrating end-to-end plaintext recovery.
//
// Usage:
//
//	revealctl table1 [-profile N] [-encryptions N] [-seed S] [-json]
//	revealctl table2 [-seed S] [-json]
//	revealctl attack [-seed S] [-messages N] [-stream [-target-bikz B] [-chunk N]]
//	revealctl profile [-o FILE] [-seed S]
//	revealctl diagnose [-seed S] [-traces N] [-curves] [-json]
//	revealctl compare [-tol T] [-metric-tol name=T] [-gate-perf] OLD NEW
//	revealctl submit [-addr URL] [-spec FILE | -kind K -seed S ...] [-tenant T] [-wait] [-retry N]
//	revealctl status [-addr URL] [-id ID] [-result] [-json] [-retry N]
//	revealctl loadgen [-addr URL] [-tenants N] [-jobs N] [-kinds K,K] [-o FILE]
//	revealctl top [-addr URL] [-interval DUR] [-n N]
//	revealctl report [-addr URL] [-kind K] [-tenant T] [-window N] [-format F] [-o FILE]
//	revealctl selftest [-seed S] [-workers N] [-json] [-q]
//
// Every subcommand accepts the observability flags:
//
//	-run-dir DIR       archive the campaign as a reproducible artifact:
//	                   DIR/manifest.json (config, seed, git describe,
//	                   per-stage durations and throughput, results),
//	                   DIR/metrics.txt (Prometheus text) and DIR/run.log
//	-metrics-addr ADDR serve live /metrics, /progress and /debug/pprof
//	-log-level LEVEL   debug|info|warn|error structured logging to stderr
//	-log-json          JSON log records
package main

import (
	"flag"
	"fmt"
	"os"

	"reveal/internal/core"
	"reveal/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table1":
		err = runTable1(os.Args[2:])
	case "table2":
		err = runTable2(os.Args[2:])
	case "attack":
		err = runAttack(os.Args[2:])
	case "profile":
		err = runProfile(os.Args[2:])
	case "diagnose":
		err = runDiagnose(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "submit":
		err = runSubmit(os.Args[2:])
	case "status":
		err = runStatus(os.Args[2:])
	case "loadgen":
		err = runLoadgen(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "selftest":
		err = runSelftest(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "revealctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: revealctl <command> [flags]

commands:
  table1   reproduce Table I (template-attack confusion matrix)
  table2   reproduce Table II (per-measurement guessing probabilities)
  attack   end-to-end single-trace attack with full message recovery
           (-stream: chunked streaming engine with batch digest cross-check)
  profile  run the profiling campaign and save the trained classifier
  diagnose leakage assessment: SNR, t-tests, POI overlap, template health
  compare  diff two manifest.json/BENCH_*.json files; exit 1 on regression
  submit   post a campaign spec to a running reveald daemon
  status   list a reveald daemon's jobs or show one job's status/result
  loadgen  drive a synthetic campaign load and report jobs/sec + latency quantiles
  top      live terminal dashboard over a running reveald (queue, workers, quality, events)
  report   quality-trajectory report (markdown/CSV) from a reveald history store
  selftest replay-determinism gate: serial vs parallel attack, digest printed

observability (all commands):
  -run-dir DIR        write manifest.json, metrics.txt, run.log
  -metrics-addr ADDR  live /metrics, /progress, /debug/pprof
  -log-level LEVEL    debug|info|warn|error
  -log-json           JSON log records`)
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	profile := fs.Int("profile", 40, "profiling traces per coefficient value")
	encryptions := fs.Int("encryptions", 3, "number of single-trace attacks (each covers 2048 coefficients)")
	seed := fs.Uint64("seed", 1, "experiment seed")
	jsonOut := fs.Bool("json", false, "print the result as JSON instead of the table layout")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, ProfileTracesPerValue: *profile, AttackEncryptions: *encryptions}
	camp, err := ofl.start("table1", args, *seed, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	if !*jsonOut {
		fmt.Printf("profiling device (%d traces per value, 29 values)...\n", *profile)
	}
	s, err := experiments.NewSession(cfg)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("attacking %d encryptions...\n", *encryptions)
	}
	res, err := s.RunTable1()
	if err != nil {
		return err
	}
	report := res.Report()
	camp.setResult("table1", report)
	if *jsonOut {
		return experiments.WriteJSON(os.Stdout, report)
	}
	fmt.Println(experiments.FormatTable1(res, -7, 7))
	return nil
}

func runTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "experiment seed")
	jsonOut := fs.Bool("json", false, "print the result as JSON instead of the table layout")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.LowNoise = true // Table II shows the paper's near-certain posteriors
	cfg.AttackEncryptions = 1
	camp, err := ofl.start("table2", args, *seed, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	if !*jsonOut {
		fmt.Println("profiling low-noise device...")
	}
	s, err := experiments.NewSession(cfg)
	if err != nil {
		return err
	}
	t1, err := s.RunTable1()
	if err != nil {
		return err
	}
	rows, err := experiments.RunTable2(t1.LastOutcome.E2, t1.LastCapture.Truth.E2)
	if err != nil {
		return err
	}
	report := experiments.ReportTable2(rows)
	camp.setResult("table2", report)
	if *jsonOut {
		return experiments.WriteJSON(os.Stdout, report)
	}
	fmt.Println(experiments.FormatTable2(rows))
	return nil
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "experiment seed")
	messages := fs.Int("messages", 2, "number of messages to encrypt and recover")
	profilePath := fs.String("profile", "", "load a classifier saved by 'revealctl profile' instead of re-profiling")
	stream := fs.Bool("stream", false, "classify each e2 trace through the streaming engine (chunked ingest) and cross-check its digest against the batch attack")
	targetBikz := fs.Float64("target-bikz", 0, "with -stream: stop ingesting once the banked hints push the DBDD estimate to this block size (0 = consume the full trace)")
	chunk := fs.Int("chunk", 4096, "with -stream: ingest chunk size in samples")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.LowNoise = true
	camp, err := ofl.start("attack", args, *seed, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	fmt.Println("profiling low-noise device for full recovery...")
	s, err := experiments.NewSession(cfg)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		f, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		cls, err := core.ReadClassifier(f)
		f.Close()
		if err != nil {
			return err
		}
		s.Classifier = cls
		fmt.Printf("loaded classifier from %s\n", *profilePath)
	}
	if *stream {
		return runAttackStream(camp, s, *messages, *targetBikz, *chunk)
	}
	recovered := 0
	var sumVAcc, sumSAcc float64
	var lastOutcome *core.AttackOutcome
	for msg := 0; msg < *messages; msg++ {
		pt := s.Params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64((i*31 + msg*7) % int(s.Params.T))
		}
		cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
		if err != nil {
			return err
		}
		out, err := s.Classifier.Attack(cap, s.Params.N)
		if err != nil {
			return err
		}
		core.EmitOutcomeEvents(out, cap)
		lastOutcome = out
		vAcc, sAcc, err := out.E2.Accuracy(cap.Truth.E2)
		if err != nil {
			return err
		}
		sumVAcc += vAcc
		sumSAcc += sAcc
		fmt.Printf("message %d: single-trace classification: value %.2f%%, sign %.2f%%\n",
			msg, 100*vAcc, 100*sAcc)
		got, _, trials, err := core.RepairAndRecover(s.Params, s.PublicKey, cap.Ciphertext, out.E2, 16, 100000)
		if err != nil {
			fmt.Printf("message %d: recovery FAILED: %v\n", msg, err)
			continue
		}
		ok := true
		for i := range pt.Coeffs {
			if got.Coeffs[i] != pt.Coeffs[i] {
				ok = false
				break
			}
		}
		if ok {
			recovered++
		}
		fmt.Printf("message %d: plaintext recovered from ONE power trace: %v (%d verification trials)\n",
			msg, ok, trials)
	}
	if *messages > 0 {
		camp.setResult("messages", *messages)
		camp.setResult("messages_recovered", recovered)
		camp.setResult("mean_value_accuracy", sumVAcc/float64(*messages))
		camp.setResult("mean_sign_accuracy", sumSAcc/float64(*messages))
	}
	// The security-loss summary (Table III for this attack's hints) is
	// computed only when the run is being archived: the DBDD estimate is
	// not part of the recovery demo itself.
	if ofl.runDir != "" && lastOutcome != nil {
		loss, err := core.EstimateFullHints(s.Params, lastOutcome.E2)
		if err != nil {
			return fmt.Errorf("estimating hinted security: %w", err)
		}
		camp.setResult("bikz_baseline", loss.BaselineBikz)
		camp.setResult("bikz_with_hints", loss.HintedBikz)
		camp.setResult("bits_baseline", loss.BaselineBits)
		camp.setResult("bits_with_hints", loss.HintedBits)
		fmt.Printf("security with hints: %.2f bikz (%.1f bits), baseline %.2f bikz\n",
			loss.HintedBikz, loss.HintedBits, loss.BaselineBikz)
	}
	return nil
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	out := fs.String("o", "profile.rvcl", "output file for the trained classifier")
	seed := fs.Uint64("seed", 1, "device seed")
	lowNoise := fs.Bool("lownoise", true, "use the low-noise measurement setup")
	traces := fs.Int("traces", 0, "profiling traces per coefficient value (0 = preset default)")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var dev *core.Device
	var opts core.ProfileOptions
	if *lowNoise {
		dev = core.NewLowNoiseDevice(*seed)
		opts = core.HighAccuracyProfileOptions()
	} else {
		dev = core.NewDevice(*seed)
		opts = core.DefaultProfileOptions()
	}
	if *traces > 0 {
		opts.TracesPerValue = *traces
	}
	camp, err := ofl.start("profile", args, *seed, opts)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	fmt.Printf("profiling (%d traces per value)...\n", opts.TracesPerValue)
	cls, err := core.Profile(dev, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteClassifier(f, cls); err != nil {
		return err
	}
	camp.setResult("classifier_path", *out)
	camp.setResult("subtrace_length", cls.Length)
	fmt.Printf("classifier written to %s (sub-trace length %d)\n", *out, cls.Length)
	return nil
}
