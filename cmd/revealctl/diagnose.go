package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"reveal/internal/core"
	"reveal/internal/experiments"
)

// runDiagnose implements `revealctl diagnose`: collect a profiling campaign
// and assess its leakage (SNR curves, adjacent-pair Welch t-tests, SOSD/SNR
// POI overlap, template health). With -run-dir the full report is archived
// as diagnostics.json next to the manifest.
func runDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "device seed")
	lowNoise := fs.Bool("lownoise", false, "assess the low-noise measurement setup")
	traces := fs.Int("traces", 0, "profiling traces per coefficient value (0 = preset default)")
	maxAbs := fs.Int("maxabs", 0, "largest |coefficient| to profile (0 = preset default)")
	curves := fs.Bool("curves", false, "embed the full SNR and t-test curves in the report")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var dev *core.Device
	var popts core.ProfileOptions
	if *lowNoise {
		dev = core.NewLowNoiseDevice(*seed)
		popts = core.HighAccuracyProfileOptions()
	} else {
		dev = core.NewDevice(*seed)
		popts = core.DefaultProfileOptions()
	}
	if *traces > 0 {
		popts.TracesPerValue = *traces
	}
	if *maxAbs > 0 {
		popts.MaxAbsValue = *maxAbs
	}
	opts := core.DiagnosticsOptions{Profile: popts, KeepCurves: *curves}
	camp, err := ofl.start("diagnose", args, *seed, opts)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	if !*jsonOut {
		fmt.Printf("collecting profiling campaign (%d traces per value, %d values)...\n",
			popts.TracesPerValue, 2*popts.MaxAbsValue+1)
	}
	report, err := core.Diagnose(dev, opts)
	if err != nil {
		return err
	}
	camp.setResult("leaky_pairs", report.LeakyPairs)
	camp.setResult("total_pairs", report.TotalPairs)
	camp.setResult("warnings", len(report.Warnings))
	camp.setResult("healthy", report.Healthy)
	if camp.run != nil {
		f, err := os.Create(filepath.Join(camp.run.Dir, "diagnostics.json"))
		if err != nil {
			return err
		}
		err = experiments.WriteJSON(f, report)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing diagnostics.json: %w", err)
		}
	}
	if *jsonOut {
		return experiments.WriteJSON(os.Stdout, report)
	}
	fmt.Print(core.FormatDiagnostics(report))
	return nil
}
