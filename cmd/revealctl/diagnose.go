package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"reveal/internal/core"
	"reveal/internal/experiments"
)

// diagnoseConfig is the fully parsed input of one diagnose invocation:
// the device preset choice plus the resolved profiling options.
type diagnoseConfig struct {
	Seed     uint64
	LowNoise bool
	JSONOut  bool
	Opts     core.DiagnosticsOptions
}

// newDevice builds the device the parsed configuration selects.
func (c *diagnoseConfig) newDevice() *core.Device {
	if c.LowNoise {
		return core.NewLowNoiseDevice(c.Seed)
	}
	return core.NewDevice(c.Seed)
}

// parseDiagnoseArgs resolves the diagnose flags into a diagnoseConfig:
// -lownoise selects the low-noise preset, -traces and -maxabs override the
// preset's campaign size. The returned obsFlags carry the shared
// observability options. Never exits the process, so the plumbing is
// testable end to end.
func parseDiagnoseArgs(args []string, stderr io.Writer) (*diagnoseConfig, *obsFlags, error) {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &diagnoseConfig{}
	fs.Uint64Var(&cfg.Seed, "seed", 1, "device seed")
	fs.BoolVar(&cfg.LowNoise, "lownoise", false, "assess the low-noise measurement setup")
	traces := fs.Int("traces", 0, "profiling traces per coefficient value (0 = preset default)")
	maxAbs := fs.Int("maxabs", 0, "largest |coefficient| to profile (0 = preset default)")
	fs.BoolVar(&cfg.Opts.KeepCurves, "curves", false, "embed the full SNR and t-test curves in the report")
	fs.BoolVar(&cfg.JSONOut, "json", false, "print the report as JSON instead of text")
	ofl := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	if cfg.LowNoise {
		cfg.Opts.Profile = core.HighAccuracyProfileOptions()
	} else {
		cfg.Opts.Profile = core.DefaultProfileOptions()
	}
	if *traces > 0 {
		cfg.Opts.Profile.TracesPerValue = *traces
	}
	if *maxAbs > 0 {
		cfg.Opts.Profile.MaxAbsValue = *maxAbs
	}
	return cfg, ofl, nil
}

// runDiagnose implements `revealctl diagnose`: collect a profiling campaign
// and assess its leakage (SNR curves, adjacent-pair Welch t-tests, SOSD/SNR
// POI overlap, template health). With -run-dir the full report is archived
// as diagnostics.json next to the manifest.
func runDiagnose(args []string) error {
	cfg, ofl, err := parseDiagnoseArgs(args, os.Stderr)
	if err != nil {
		return err
	}
	dev := cfg.newDevice()
	camp, err := ofl.start("diagnose", args, cfg.Seed, cfg.Opts)
	if err != nil {
		return err
	}
	defer func() {
		if err := camp.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "revealctl: finishing run:", err)
		}
	}()
	if !cfg.JSONOut {
		fmt.Printf("collecting profiling campaign (%d traces per value, %d values)...\n",
			cfg.Opts.Profile.TracesPerValue, 2*cfg.Opts.Profile.MaxAbsValue+1)
	}
	report, err := core.Diagnose(dev, cfg.Opts)
	if err != nil {
		return err
	}
	camp.setResult("leaky_pairs", report.LeakyPairs)
	camp.setResult("total_pairs", report.TotalPairs)
	camp.setResult("warnings", len(report.Warnings))
	camp.setResult("healthy", report.Healthy)
	if camp.run != nil {
		f, err := os.Create(filepath.Join(camp.run.Dir, "diagnostics.json"))
		if err != nil {
			return err
		}
		err = experiments.WriteJSON(f, report)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing diagnostics.json: %w", err)
		}
	}
	if cfg.JSONOut {
		return experiments.WriteJSON(os.Stdout, report)
	}
	fmt.Print(core.FormatDiagnostics(report))
	return nil
}
