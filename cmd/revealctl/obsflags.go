package main

import (
	"flag"
	"os"

	"reveal/internal/obs"
)

// obsFlags are the observability options shared by every revealctl
// subcommand:
//
//	-run-dir DIR       archive the campaign: manifest.json, metrics.txt, run.log
//	-metrics-addr ADDR serve /metrics, /progress, /debug/pprof while running
//	-log-level LEVEL   debug|info|warn|error (default info)
//	-log-json          emit JSON log records instead of text
type obsFlags struct {
	runDir      string
	metricsAddr string
	logLevel    string
	logJSON     bool
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.runDir, "run-dir", "", "write manifest.json, metrics.txt and run.log into this directory")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live /metrics, /progress and /debug/pprof on this address (e.g. :9090)")
	fs.StringVar(&o.logLevel, "log-level", "info", "log level: debug, info, warn, error")
	fs.BoolVar(&o.logJSON, "log-json", false, "emit JSON log records")
	return o
}

// campaign is an active observability context: either a full archived run
// (-run-dir) or just a live recorder (-metrics-addr / logging only).
type campaign struct {
	run *obs.Run
	rec *obs.Recorder
	srv *obs.MetricsServer
}

// start activates observability for one subcommand invocation. Without
// -run-dir and -metrics-addr the campaign stays disabled (nil recorder, no
// overhead) unless -log-level debug asks for a console log stream.
func (o *obsFlags) start(command string, args []string, seed uint64, config any) (*campaign, error) {
	level := obs.ParseLevel(o.logLevel)
	if o.runDir != "" {
		run, err := obs.StartRun(o.runDir, obs.RunOptions{
			Tool:        "revealctl",
			Command:     command,
			Args:        args,
			Seed:        seed,
			Config:      config,
			LogLevel:    level,
			JSONLog:     o.logJSON,
			MetricsAddr: o.metricsAddr,
		})
		if err != nil {
			return nil, err
		}
		return &campaign{run: run, rec: run.Recorder}, nil
	}
	if o.metricsAddr == "" && o.logLevel == "info" && !o.logJSON {
		return &campaign{}, nil // observability disabled: zero overhead
	}
	rec := obs.New(obs.Options{
		Logger: obs.NewLogger(obs.LogOptions{Level: level, JSON: o.logJSON, Output: os.Stderr}),
	})
	obs.SetGlobal(rec)
	c := &campaign{rec: rec}
	if o.metricsAddr != "" {
		srv, err := obs.ServeMetrics(rec, o.metricsAddr)
		if err != nil {
			obs.SetGlobal(nil)
			return nil, err
		}
		c.srv = srv
		rec.Logger().Info("metrics server listening", "addr", srv.Addr())
	}
	return c, nil
}

// setResult records one headline number for the manifest (no-op without
// -run-dir).
func (c *campaign) setResult(key string, value any) {
	if c != nil && c.run != nil {
		c.run.SetResult(key, value)
	}
}

// finish seals the run artifacts and tears the live endpoints down.
func (c *campaign) finish() error {
	if c == nil {
		return nil
	}
	if c.srv != nil {
		c.srv.Close()
	}
	if c.run != nil {
		return c.run.Finish()
	}
	if c.rec != nil {
		obs.SetGlobal(nil)
	}
	return nil
}
