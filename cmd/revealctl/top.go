package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"reveal/internal/obs"
	"reveal/internal/service"
)

// runTop implements `revealctl top`: a polling terminal dashboard over a
// running reveald — queue depth, worker utilization, per-kind throughput
// and latency quantiles, and the tail of the service event journal.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "reveald base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	iterations := fs.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	events := fs.Int("events", 10, "recent journal events to show")
	noClear := fs.Bool("no-clear", false, "append frames instead of redrawing the screen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		*interval = 2 * time.Second
	}
	client := service.NewClient(*addr)
	ctx := context.Background()

	var recent []obs.ServiceEvent
	var cursor int64
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		stats, err := client.StatsFull(ctx)
		if err != nil {
			return fmt.Errorf("fetching stats from %s: %w", *addr, err)
		}
		// The journal endpoint is optional (events can be disabled); a 404
		// just leaves the events pane empty.
		if ev, err := client.Events(ctx, cursor, *events, 0); err == nil {
			cursor = ev.NextSeq
			recent = append(recent, ev.Events...)
			if len(recent) > *events {
				recent = recent[len(recent)-*events:]
			}
		}
		// The quality pane is likewise optional: daemons without -data-dir
		// answer 503 and the pane is simply omitted.
		var quality *service.HistoryAggregateResponse
		if agg, err := client.HistoryAggregate(ctx, "", "", 0); err == nil {
			quality = &agg
		}
		if !*noClear {
			// Home the cursor and clear: a flicker-free redraw in any ANSI
			// terminal without external dependencies.
			fmt.Print("\033[H\033[2J")
		}
		renderTop(os.Stdout, *addr, stats, quality, recent)
	}
	return nil
}

// renderTop writes one dashboard frame. quality is nil when the daemon has
// no history store.
func renderTop(w io.Writer, addr string, stats service.StatsResponse,
	quality *service.HistoryAggregateResponse, events []obs.ServiceEvent) {
	fmt.Fprintf(w, "reveald %s  up %s  %s\n\n", addr,
		time.Duration(stats.UptimeSeconds*float64(time.Second)).Truncate(time.Second),
		time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "workers %d/%d busy   queue %d queued / %d running   templates cached %d\n\n",
		stats.WorkersBusy, stats.Workers, stats.Queued, stats.Running, stats.CachedTemplates)

	if len(stats.Kinds) > 0 {
		fmt.Fprintf(w, "%-10s %9s %6s %6s %7s %6s %6s  %8s %8s %8s\n",
			"KIND", "SUBMITTED", "DONE", "FAIL", "RETRIED", "QUEUED", "RUN", "p50", "p95", "p99")
		for _, ks := range stats.Kinds {
			lat := stats.AttemptLatency[ks.Kind]
			fmt.Fprintf(w, "%-10s %9d %6d %6d %7d %6d %6d  %8s %8s %8s\n",
				ks.Kind, ks.Submitted, ks.Done, ks.Failed, ks.Retried, ks.Queued, ks.Running,
				fmtSeconds(lat.P50), fmtSeconds(lat.P95), fmtSeconds(lat.P99))
			if qw, ok := stats.QueueWait[ks.Kind]; ok && qw.Count > 0 {
				fmt.Fprintf(w, "%-10s %51s  %8s %8s %8s\n",
					"", "queue wait:", fmtSeconds(qw.P50), fmtSeconds(qw.P95), fmtSeconds(qw.P99))
			}
		}
		fmt.Fprintln(w)
	}

	if quality != nil && len(quality.Aggregates) > 0 {
		fmt.Fprintln(w, "quality (history):")
		fmt.Fprintf(w, "  %-10s %-18s %5s %9s %9s %9s %9s\n",
			"KIND", "METRIC", "RUNS", "MEAN", "LAST", "EWMA", "Δ BASE")
		for _, ka := range quality.Aggregates {
			base := quality.Baselines[ka.Kind]
			for _, m := range ka.Metrics {
				// The dashboard shows the quality signals; per-stage timing
				// lives in the latency table above.
				if strings.HasPrefix(m.Metric, "stage.") || m.Metric == "elapsed_seconds" {
					continue
				}
				delta := "-"
				if b, ok := base[m.Metric]; ok && b != 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(m.Mean-b)/b)
				}
				fmt.Fprintf(w, "  %-10s %-18s %5d %9.4f %9.4f %9.4f %9s\n",
					ka.Kind, m.Metric, m.Count, m.Mean, m.Last, m.EWMA, delta)
			}
		}
		fmt.Fprintln(w)
	}

	if len(events) > 0 {
		fmt.Fprintln(w, "recent events:")
		for _, ev := range events {
			line := fmt.Sprintf("  %s  %-13s %s", ev.Time.Format("15:04:05"), ev.Type, ev.JobID)
			if ev.Kind != "" {
				line += " " + ev.Kind
			}
			if ev.Tenant != "" {
				line += " tenant=" + ev.Tenant
			}
			if ev.TraceID != "" {
				line += " trace=" + ev.TraceID
			}
			if ev.Detail != "" {
				line += "  " + ev.Detail
			}
			fmt.Fprintln(w, strings.TrimRight(line, " "))
		}
	}
}

// fmtSeconds renders a latency value compactly ("-" when unobserved).
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	case s < 60:
		return fmt.Sprintf("%.2fs", s)
	default:
		return time.Duration(s * float64(time.Second)).Truncate(time.Second).String()
	}
}
