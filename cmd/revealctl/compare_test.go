package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reveal/internal/core"
	"reveal/internal/obs"
	"reveal/internal/service"
)

// writeManifest writes a minimal manifest.json fixture with the given
// results block and returns its path.
func writeManifest(t *testing.T, dir, name string, results map[string]any) string {
	t.Helper()
	doc := map[string]any{
		"command":          "table1",
		"duration_seconds": 1.5,
		"results":          results,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseCompareArgs(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseCompareArgs([]string{
		"-tol", "0.1", "-gate-perf", "-json", "-perf-tol", "0.35",
		"-metric-tol", "results.mean_value_accuracy=0.25",
		"-metric-tol", "results.messages_recovered=0",
		"old.json", "new.json",
	}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tol != 0.1 || !cfg.GatePerf || !cfg.JSONOut || cfg.PerfTol != 0.35 {
		t.Fatalf("flags not plumbed: %+v", cfg)
	}
	if cfg.OldPath != "old.json" || cfg.NewPath != "new.json" {
		t.Fatalf("positional args not plumbed: %+v", cfg)
	}
	if cfg.MetricTol["results.mean_value_accuracy"] != 0.25 ||
		cfg.MetricTol["results.messages_recovered"] != 0 {
		t.Fatalf("metric-tol overrides not collected: %v", cfg.MetricTol)
	}
}

func TestParseCompareArgsErrors(t *testing.T) {
	cases := [][]string{
		{"only-one.json"},                                // wrong arity
		{"a.json", "b.json", "c.json"},                   // wrong arity
		{"-metric-tol", "noequals", "a.json", "b.json"},  // malformed override
		{"-metric-tol", "name=-0.5", "a.json", "b.json"}, // negative tolerance
		{"-metric-tol", "name=junk", "a.json", "b.json"}, // non-numeric
		{"-tol", "abc", "a.json", "b.json"},              // bad float
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if _, err := parseCompareArgs(args, &stderr); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestExecuteCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeManifest(t, dir, "old.json", map[string]any{"mean_value_accuracy": 0.90})
	new_ := writeManifest(t, dir, "new.json", map[string]any{"mean_value_accuracy": 0.92})
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, MetricTol: metricTolFlag{}, OldPath: old, NewPath: new_}
	if err := executeCompare(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("improvement flagged as regression: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Fatalf("missing pass banner:\n%s", stdout.String())
	}
}

func TestExecuteCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeManifest(t, dir, "old.json", map[string]any{"mean_value_accuracy": 0.90})
	new_ := writeManifest(t, dir, "new.json", map[string]any{"mean_value_accuracy": 0.50})
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, MetricTol: metricTolFlag{}, OldPath: old, NewPath: new_}
	err := executeCompare(cfg, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "regression detected") {
		t.Fatalf("44%% accuracy drop not gated: err=%v", err)
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Fatalf("report does not flag the regressed metric:\n%s", stdout.String())
	}
}

// TestExecuteCompareMetricTolOverride: a -metric-tol wide enough to absorb
// the drop must turn the same comparison into a pass — the end-to-end check
// that the repeatable flag actually reaches the gate.
func TestExecuteCompareMetricTolOverride(t *testing.T) {
	dir := t.TempDir()
	old := writeManifest(t, dir, "old.json", map[string]any{"mean_value_accuracy": 0.90})
	new_ := writeManifest(t, dir, "new.json", map[string]any{"mean_value_accuracy": 0.50})
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{
		Tol:       0.05,
		MetricTol: metricTolFlag{"results.mean_value_accuracy": 0.5},
		OldPath:   old, NewPath: new_,
	}
	if err := executeCompare(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("override did not loosen the gate: %v", err)
	}
}

// TestExecuteCompareMissingMetricFails: a gated metric that vanished from
// the new run must fail the gate — results silently disappearing is a
// regression, not a pass.
func TestExecuteCompareMissingMetricFails(t *testing.T) {
	dir := t.TempDir()
	old := writeManifest(t, dir, "old.json", map[string]any{
		"mean_value_accuracy": 0.90, "messages_recovered": 2.0,
	})
	new_ := writeManifest(t, dir, "new.json", map[string]any{
		"mean_value_accuracy": 0.90,
	})
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, MetricTol: metricTolFlag{}, OldPath: old, NewPath: new_}
	if err := executeCompare(cfg, &stdout, &stderr); err == nil {
		t.Fatalf("vanished gated metric passed the gate:\n%s", stdout.String())
	}
	// Regression outranks the missing-in label in the rendered status, so
	// the vanished metric shows up as REGRESSED on its own row.
	if !strings.Contains(stdout.String(), "messages_recovered") ||
		!strings.Contains(stdout.String(), "REGRESSED") {
		t.Fatalf("report does not flag the vanished metric:\n%s", stdout.String())
	}
}

func TestExecuteCompareJSONOutput(t *testing.T) {
	dir := t.TempDir()
	old := writeManifest(t, dir, "old.json", map[string]any{"mean_value_accuracy": 0.90})
	new_ := writeManifest(t, dir, "new.json", map[string]any{"mean_value_accuracy": 0.50})
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, JSONOut: true, MetricTol: metricTolFlag{}, OldPath: old, NewPath: new_}
	if err := executeCompare(cfg, &stdout, &stderr); err == nil {
		t.Fatal("regression not reported in JSON mode")
	}
	var doc struct {
		Regressed bool              `json:"regressed"`
		Deltas    []obs.MetricDelta `json:"deltas"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("JSON mode emitted invalid JSON: %v\n%s", err, stdout.String())
	}
	if !doc.Regressed || len(doc.Deltas) == 0 {
		t.Fatalf("JSON report incomplete: %+v", doc)
	}
}

// writeBenchSnapshotFixture writes a minimal BENCH_*.json fixture.
func writeBenchSnapshotFixture(t *testing.T, dir, name string, nsPerOp float64) string {
	t.Helper()
	doc := map[string]any{
		"benchmark": "BenchmarkTable1TemplateAttack",
		"ns_per_op": nsPerOp,
		"metrics":   map[string]any{"value-acc-%": 68.0},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExecuteComparePerfGate: the bench-gate configuration end to end — a
// 2× slowdown fails under -gate-perf, and -perf-tol loosens only the
// wall-clock bound.
func TestExecuteComparePerfGate(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchSnapshotFixture(t, dir, "baseline.json", 1e8)
	slow := writeBenchSnapshotFixture(t, dir, "slow.json", 2e8)
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, GatePerf: true, MetricTol: metricTolFlag{}, OldPath: old, NewPath: slow}
	if err := executeCompare(cfg, &stdout, &stderr); err == nil {
		t.Fatalf("2x slowdown passed the perf gate:\n%s", stdout.String())
	}
	// Without -gate-perf the same pair passes (perf is informational).
	stdout.Reset()
	cfg = &compareConfig{Tol: 0.05, MetricTol: metricTolFlag{}, OldPath: old, NewPath: slow}
	if err := executeCompare(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("perf metrics gated without -gate-perf: %v", err)
	}
	// A wide -perf-tol absorbs the slowdown.
	stdout.Reset()
	cfg = &compareConfig{Tol: 0.05, GatePerf: true, PerfTol: 1.5, MetricTol: metricTolFlag{}, OldPath: old, NewPath: slow}
	if err := executeCompare(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("perf-tol did not loosen the gate: %v", err)
	}
}

func TestExecuteCompareMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cfg := &compareConfig{Tol: 0.05, MetricTol: metricTolFlag{},
		OldPath: filepath.Join(t.TempDir(), "nope.json"), NewPath: "also-nope.json"}
	if err := executeCompare(cfg, &stdout, &stderr); err == nil {
		t.Fatal("nonexistent artifact did not error")
	}
}

func TestParseSubmitArgsInline(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseSubmitArgs([]string{
		"-addr", "http://example:1234", "-kind", "attack", "-seed", "9",
		"-lownoise", "-traces", "30", "-encryptions", "2",
		"-workers", "3", "-attempts", "5", "-timeout", "2s",
		"-wait", "-poll", "50ms",
	}, strings.NewReader(""), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "http://example:1234" || !cfg.Wait || cfg.Poll.Milliseconds() != 50 {
		t.Fatalf("delivery flags not plumbed: %+v", cfg)
	}
	s := cfg.Spec
	if s.Kind != service.KindAttack || s.Seed != 9 || !s.LowNoise ||
		s.ProfileTracesPerValue != 30 || s.Encryptions != 2 ||
		s.Workers != 3 || s.MaxAttempts != 5 || s.TimeoutMS != 2000 {
		t.Fatalf("spec flags not plumbed: %+v", s)
	}
}

func TestParseSubmitArgsSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"kind":"diagnose","seed":42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	// Inline flags must be ignored when -spec is set.
	cfg, err := parseSubmitArgs([]string{"-spec", path, "-kind", "attack", "-seed", "1"},
		strings.NewReader(""), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.Kind != service.KindDiagnose || cfg.Spec.Seed != 42 {
		t.Fatalf("spec file did not win over inline flags: %+v", cfg.Spec)
	}
}

func TestParseSubmitArgsSpecStdin(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseSubmitArgs([]string{"-spec", "-"},
		strings.NewReader(`{"kind":"sleep","sleep_ms":10}`), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.Kind != service.KindSleep {
		t.Fatalf("stdin spec not read: %+v", cfg.Spec)
	}
}

func TestParseSubmitArgsErrors(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-kind", "warp-drive"},                      // Normalize rejects unknown kind
		{"-spec", filepath.Join(dir, "absent.json")}, // missing file
		{"-spec", badJSON},                           // malformed JSON
		{"-timeout", "soon"},                         // bad duration
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if _, err := parseSubmitArgs(args, strings.NewReader(""), &stderr); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestParseDiagnoseArgsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, ofl, err := parseDiagnoseArgs(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if ofl == nil {
		t.Fatal("obs flags not registered")
	}
	want := core.DefaultProfileOptions()
	if cfg.LowNoise || cfg.Seed != 1 ||
		cfg.Opts.Profile.TracesPerValue != want.TracesPerValue ||
		cfg.Opts.Profile.MaxAbsValue != want.MaxAbsValue {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.newDevice() == nil {
		t.Fatal("device construction failed")
	}
}

func TestParseDiagnoseArgsOverrides(t *testing.T) {
	var stderr bytes.Buffer
	cfg, _, err := parseDiagnoseArgs(
		[]string{"-lownoise", "-seed", "7", "-traces", "11", "-maxabs", "3", "-curves", "-json"},
		&stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.LowNoise || cfg.Seed != 7 || !cfg.Opts.KeepCurves || !cfg.JSONOut {
		t.Fatalf("flags not plumbed: %+v", cfg)
	}
	if cfg.Opts.Profile.TracesPerValue != 11 || cfg.Opts.Profile.MaxAbsValue != 3 {
		t.Fatalf("preset overrides not applied: %+v", cfg.Opts.Profile)
	}
	// -lownoise selects the high-accuracy preset as the base.
	base := core.HighAccuracyProfileOptions()
	if cfg.Opts.Profile.Templates.POICount != base.Templates.POICount {
		t.Fatalf("lownoise preset not selected: %+v", cfg.Opts.Profile.Templates)
	}
}
