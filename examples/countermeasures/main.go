// Countermeasure evaluation (§V-A of the paper): what shuffling the
// sampling order and the SEAL v3.6-style branch-free rewrite each buy
// against the single-trace attack.
package main

import (
	"fmt"
	"log"

	"reveal/internal/core"
	"reveal/internal/sampler"
	"reveal/internal/sca"
)

func main() {
	const (
		q = 132120577
		n = 256
	)
	dev := core.NewDevice(5)
	fmt.Println("profiling the unprotected device...")
	cls, err := core.Profile(dev, core.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}

	cn := sampler.DefaultClippedNormal()
	values, metas := cn.SamplePoly(sampler.NewXoshiro256(11), n)
	// Sentinel so the last real coefficient segments cleanly.
	values = append(values, 0)
	metas = append(metas, sampler.SampleMeta{})

	// Baseline: unprotected kernel.
	src, err := core.FirmwareSource(n+1, q)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := dev.Capture(fw, values, metas)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cls.AttackTrace(tr, n+1)
	if err != nil {
		log.Fatal(err)
	}
	ok, signOK := 0, 0
	for i := 0; i < n; i++ {
		if int64(res.Values[i]) == values[i] {
			ok++
		}
		if res.Signs[i] == sca.SignOf(int(values[i])) {
			signOK++
		}
	}
	fmt.Printf("\nunprotected kernel:  value accuracy %5.1f%%, sign accuracy %5.1f%%\n",
		100*float64(ok)/float64(n), 100*float64(signOK)/float64(n))

	// Countermeasure 1: shuffling. Values still leak, positions do not.
	trShuf, perm, err := core.CaptureShuffled(dev, fw, values, metas, sampler.NewXoshiro256(13))
	if err != nil {
		log.Fatal(err)
	}
	ev, err := core.EvaluateShuffledAttack(cls, trShuf, values, perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shuffled sampling:   positional accuracy %5.1f%%, multiset accuracy %5.1f%%\n",
		100*ev.PositionalAccuracy, 100*ev.MultisetAccuracy)
	fmt.Println("                     -> the attacker learns the coefficient *multiset*,")
	fmt.Println("                        but cannot place hints, so DBDD gains ~nothing.")

	// Countermeasure 2: branch-free kernel (SEAL v3.6 style).
	srcBF, err := core.FirmwareBranchless(n+1, q)
	if err != nil {
		log.Fatal(err)
	}
	fwBF, err := core.AssembleFirmware(srcBF)
	if err != nil {
		log.Fatal(err)
	}
	trBF, err := dev.Capture(fwBF, values, metas)
	if err != nil {
		log.Fatal(err)
	}
	resBF, err := cls.AttackTrace(trBF, n+1)
	if err != nil {
		fmt.Printf("branch-free kernel:  attack pipeline fails outright (%v)\n", err)
		return
	}
	okBF, signBF := 0, 0
	for i := 0; i < n; i++ {
		if int64(resBF.Values[i]) == values[i] {
			okBF++
		}
		if resBF.Signs[i] == sca.SignOf(int(values[i])) {
			signBF++
		}
	}
	fmt.Printf("branch-free kernel:  value accuracy %5.1f%%, sign accuracy %5.1f%%\n",
		100*float64(okBF)/float64(n), 100*float64(signBF)/float64(n))
	fmt.Println("                     -> templates trained on the vulnerable kernel")
	fmt.Println("                        no longer transfer (V1 and V3 are gone).")
}
