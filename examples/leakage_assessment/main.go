// Leakage assessment from the defender's seat: the evaluation a SEAL
// integrator would run on the sampling kernel before shipping it — TVLA
// (fixed-vs-random Welch t-test) on the vulnerable, branch-free, and
// masked kernels, plus a second-order pass that certifies the masking
// order.
package main

import (
	"fmt"
	"log"

	"reveal/internal/core"
)

func main() {
	const q = 12289
	dev := core.NewDevice(3)

	verdict := func(leaky bool) string {
		if leaky {
			return "FAIL (leaks)"
		}
		return "pass"
	}

	fmt.Println("TVLA, fixed-vs-random, 60 sub-traces per class, threshold |t| > 4.5")
	fmt.Println()

	vuln, err := core.RunTVLA(dev, q, 5, 60, false, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SEAL v3.2 kernel (Fig. 2):   max |t| = %6.2f   %s\n",
		vuln.MaxT, verdict(vuln.Leaky))

	patched, err := core.RunTVLA(dev, q, 5, 60, true, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  branch-free kernel (v3.6):   max |t| = %6.2f   %s\n",
		patched.MaxT, verdict(patched.Leaky))
	fmt.Println()
	fmt.Println("  -> the rewrite removes the control-flow channel but the stores")
	fmt.Println("     still process secret data: the paper's caveat that v3.6 \"may")
	fmt.Println("     have a different vulnerability\" shows up immediately in TVLA.")
	fmt.Println()

	// Masking order: boosted probe (second-order signal scales with the
	// square of the leakage coefficient), extreme fixed value.
	probe := core.NewDevice(12)
	probe.Model.AlphaHWData *= 3
	probe.Model.DeltaHDBus *= 3
	probe.Model.NoiseSigma = 0.005
	probe.Model.PortSpike = 25
	study, err := core.RunSecondOrderStudy(probe, 257, 14, 1500, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("masked kernel, share-store region only (post-load):")
	fmt.Printf("  first-order  t-test:         max |t| = %6.2f   %s\n",
		study.FirstOrderMaxT, verdict(study.FirstOrderMaxT > core.TVLAThreshold))
	fmt.Printf("  second-order (products):     max |t| = %6.2f   %s\n",
		study.SecondOrderMaxT, verdict(study.SecondOrderMaxT > core.TVLAThreshold))
	fmt.Println()
	fmt.Println("  -> the shares are individually uniform, so the first-order test")
	fmt.Println("     stays near the noise floor (a faint residual bias from the")
	fmt.Println("     mod-q wrap indicator surfaces only at very large trace counts),")
	fmt.Println("     while centered products recombine the shares and fail clearly")
	fmt.Println("     at second order. None of this helps against RevEAL anyway:")
	fmt.Println("     the sign branches cannot be masked, so the single-trace attack")
	fmt.Println("     keeps Table IV power against any masked variant (§V-A).")
}
