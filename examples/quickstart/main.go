// Quickstart: using the BFV library (the SEAL v3.2 reproduction) for
// encrypted arithmetic — key generation, encryption, homomorphic add and
// multiply, decryption, and noise-budget tracking.
package main

import (
	"fmt"
	"log"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
)

func main() {
	// A parameter set with multiplicative budget (the paper's n=1024 set
	// has none, exactly like SEAL): n=2048, one 54-bit prime, t=16.
	params, err := bfv.DefaultParameters(2048, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFV parameters: n=%d, |Q|=%d bits, t=%d, σ=%.2f\n",
		params.N, params.Q().BitLen(), params.T, params.Sigma)

	prng := sampler.NewXoshiro256(2024)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rk, err := kg.GenRelinKey(sk)
	if err != nil {
		log.Fatal(err)
	}

	enc := bfv.NewEncryptor(params, pk, prng)
	dec := bfv.NewDecryptor(params, sk)
	ev, err := bfv.NewEvaluator(params)
	if err != nil {
		log.Fatal(err)
	}

	// Encrypt 7 and 5 as constant polynomials.
	se := bfv.NewScalarEncoder(params)
	ctA, err := enc.Encrypt(se.Encode(7))
	if err != nil {
		log.Fatal(err)
	}
	ctB, err := enc.Encrypt(se.Encode(5))
	if err != nil {
		log.Fatal(err)
	}

	// Homomorphic sum: 7 + 5 = 12.
	sum, err := dec.Decrypt(ev.Add(ctA, ctB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Enc(7) + Enc(5) decrypts to:", se.Decode(sum))

	// Homomorphic product: 7 * 5 = 35 ≡ 3 (mod 16).
	prodCt, err := ev.MulRelin(ctA, ctB, rk)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := dec.Decrypt(prodCt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Enc(7) * Enc(5) decrypts to:", se.Decode(prod), "(35 mod 16 = 3)")

	budget, err := dec.NoiseBudget(prodCt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noise budget after one multiplication: %.0f bits\n", budget)

	// Binary-encoded integers survive homomorphic addition.
	be := bfv.NewBinaryEncoder(params)
	p1, err := be.Encode(1234)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := be.Encode(4321)
	if err != nil {
		log.Fatal(err)
	}
	c1, _ := enc.Encrypt(p1)
	c2, _ := enc.Encrypt(p2)
	sumPt, err := dec.Decrypt(ev.Add(c1, c2))
	if err != nil {
		log.Fatal(err)
	}
	v, err := be.Decode(sumPt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("binary-encoded 1234 + 4321 =", v)
}
