// The headline experiment: full plaintext recovery from a single power
// trace of a SEAL v3.2 BFV encryption (the paper's parameters: n=1024,
// q=132120577, σ=3.19).
//
// Pipeline: profile the device with chosen coefficients (template
// building) -> capture ONE power trace of a victim encryption -> segment
// by the sampler peaks -> classify branch + value per coefficient ->
// verify/repair via the ternary-u oracle -> invert the ciphertext
// equations (Eq. 2-3) to reveal the message.
package main

import (
	"fmt"
	"log"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/sampler"
)

func main() {
	fmt.Println("== RevEAL: single-trace attack on BFV encryption ==")

	// The victim: SEAL v3.2 defaults for n=1024 (128-bit security).
	params := bfv.PaperParameters()
	prng := sampler.NewXoshiro256(99)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	_ = sk // the attack never touches the secret key

	// The adversary: physical access, profiling capability (§II-B).
	dev := core.NewLowNoiseDevice(7)
	fmt.Println("[1/4] profiling the device (template building)...")
	cls, err := core.Profile(dev, core.HighAccuracyProfileOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      templates trained, %d-sample sub-traces\n", cls.Length)

	// The victim encrypts a secret message.
	secret := params.NewPlaintext()
	for i, b := range []byte("attack at dawn") {
		secret.Coeffs[i] = uint64(b)
	}
	fmt.Println("[2/4] victim encrypts; adversary captures ONE power trace...")
	cap, err := core.CaptureEncryption(dev, params, enc, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      trace: %d samples across %d coefficient samplings\n",
		len(cap.TraceE2), params.N)

	fmt.Println("[3/4] segmenting + template classification...")
	out, err := cls.Attack(cap, params.N)
	if err != nil {
		log.Fatal(err)
	}
	vAcc, sAcc, err := out.E2.Accuracy(cap.Truth.E2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      e2 recovery: %.2f%% values, %.2f%% signs\n", 100*vAcc, 100*sAcc)

	fmt.Println("[4/4] inverting the ciphertext equations (+ residual repair)...")
	recovered, _, trials, err := core.RepairAndRecover(
		params, pk, cap.Ciphertext, out.E2, 16, 100000)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	msg := make([]byte, 14)
	for i := range msg {
		msg[i] = byte(recovered.Coeffs[i])
	}
	fmt.Printf("      recovered plaintext after %d verification trials: %q\n", trials, msg)

	match := true
	for i := range secret.Coeffs {
		if secret.Coeffs[i] != recovered.Coeffs[i] {
			match = false
			break
		}
	}
	fmt.Println("      full 1024-coefficient message identical:", match)
}
