// The headline experiment: full plaintext recovery from a single power
// trace of a SEAL v3.2 BFV encryption (the paper's parameters: n=1024,
// q=132120577, σ=3.19).
//
// Pipeline: profile the device with chosen coefficients (template
// building) -> capture ONE power trace of a victim encryption -> segment
// by the sampler peaks -> classify branch + value per coefficient ->
// verify/repair via the ternary-u oracle -> invert the ciphertext
// equations (Eq. 2-3) to reveal the message.
package main

import (
	"flag"
	"fmt"
	"log"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/sampler"
)

func main() {
	quick := flag.Bool("quick", false,
		"run at toy scale (n=64) with a reduced profiling campaign; used by the repo's smoke test")
	flag.Parse()

	fmt.Println("== RevEAL: single-trace attack on BFV encryption ==")

	// The victim: SEAL v3.2 defaults for n=1024 (128-bit security). Quick
	// mode shrinks only the ring dimension — same modulus, same sampler —
	// so the pipeline is identical, just 16x fewer coefficients.
	params := bfv.PaperParameters()
	if *quick {
		var err error
		params, err = bfv.NewParameters(64, []uint64{bfv.PaperQ}, 256,
			sampler.DefaultSigma, sampler.DefaultMaxDeviation)
		if err != nil {
			log.Fatal(err)
		}
	}
	prng := sampler.NewXoshiro256(99)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	_ = sk // the attack never touches the secret key

	// The adversary: physical access, profiling capability (§II-B).
	dev := core.NewLowNoiseDevice(7)
	fmt.Println("[1/4] profiling the device (template building)...")
	popts := core.HighAccuracyProfileOptions()
	if *quick {
		popts.TracesPerValue = 60
	}
	cls, err := core.Profile(dev, popts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      templates trained, %d-sample sub-traces\n", cls.Length)

	// The victim encrypts a secret message.
	secret := params.NewPlaintext()
	for i, b := range []byte("attack at dawn") {
		secret.Coeffs[i] = uint64(b)
	}
	fmt.Println("[2/4] victim encrypts; adversary captures ONE power trace...")
	cap, err := core.CaptureEncryption(dev, params, enc, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      trace: %d samples across %d coefficient samplings\n",
		len(cap.TraceE2), params.N)

	fmt.Println("[3/4] segmenting + template classification...")
	out, err := cls.Attack(cap, params.N)
	if err != nil {
		log.Fatal(err)
	}
	vAcc, sAcc, err := out.E2.Accuracy(cap.Truth.E2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      e2 recovery: %.2f%% values, %.2f%% signs\n", 100*vAcc, 100*sAcc)

	fmt.Println("[4/4] inverting the ciphertext equations (+ residual repair)...")
	recovered, _, trials, err := core.RepairAndRecover(
		params, pk, cap.Ciphertext, out.E2, 16, 100000)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	msg := make([]byte, 14)
	for i := range msg {
		msg[i] = byte(recovered.Coeffs[i])
	}
	fmt.Printf("      recovered plaintext after %d verification trials: %q\n", trials, msg)

	match := true
	for i := range secret.Coeffs {
		if secret.Coeffs[i] != recovered.Coeffs[i] {
			match = false
			break
		}
	}
	fmt.Printf("      full %d-coefficient message identical: %v\n", params.N, match)
}
