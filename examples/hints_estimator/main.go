// Security estimation with the "LWE with side information" framework
// (Dachman-Soled et al., CRYPTO 2020): how much security SEAL-128 loses as
// side-channel hints accumulate — from nothing, through branch-only
// knowledge (Table IV), to the full per-coefficient hints (Table III).
package main

import (
	"fmt"
	"log"

	"reveal/internal/dbdd"
	"reveal/internal/sampler"
)

func main() {
	const (
		n     = 1024
		q     = 132120577
		sigma = 3.2
	)
	fmt.Printf("SEAL-128 smallest set: n=%d, q=%d, σ=%.1f\n\n", n, q, sigma)

	report := func(name string, in *dbdd.Instance) float64 {
		bikz, err := in.EstimateBikz()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %8.2f bikz ≈ 2^%.1f\n", name, bikz, dbdd.BikzToBits(bikz))
		return bikz
	}

	fresh := func() *dbdd.Instance {
		in, err := dbdd.NewLWEInstance(n, n, q, 2.0/3.0, sigma*sigma)
		if err != nil {
			log.Fatal(err)
		}
		return in
	}

	// A simulated error vector (what the device actually sampled).
	cn, err := sampler.NewClippedNormal(sigma, 12.8*sigma)
	if err != nil {
		log.Fatal(err)
	}
	errs, _ := cn.SamplePoly(sampler.NewXoshiro256(42), n)

	// 0. No side information.
	base := report("no hints (honest adversary)", fresh())

	// 1. Branch-only: signs and zeroes (V1 alone, Table IV).
	in := fresh()
	for i, e := range errs {
		sign := 0
		if e > 0 {
			sign = 1
		} else if e < 0 {
			sign = -1
		}
		if err := in.SignHint(n+i, sign); err != nil {
			log.Fatal(err)
		}
	}
	signBikz := report("branch hints only (V1)", in)

	// 2. Partial value hints: half the coefficients known exactly.
	in = fresh()
	for i := 0; i < n/2; i++ {
		if err := in.PerfectHint(n+i, float64(errs[i])); err != nil {
			log.Fatal(err)
		}
	}
	report("half the coefficients known", in)

	// 3. Full hints (V1+V2+V3, Table III).
	in = fresh()
	for i, e := range errs {
		if err := in.PerfectHint(n+i, float64(e)); err != nil {
			log.Fatal(err)
		}
	}
	fullBikz := report("all coefficients known (full attack)", in)

	fmt.Printf("\nsecurity drop: %.2f -> %.2f bikz (signs) -> %.2f bikz (full)\n",
		base, signBikz, fullBikz)
	fmt.Println("paper:         382.25 -> 253.29 (signs) -> 12.2 (full)")
	fmt.Println("\nconclusion (matches the paper): signs alone cannot recover the")
	fmt.Println("message; combining the value and negation leakage breaks the scheme.")
}
