// The decryption-side contrast (§II-B of the paper): encryption randomness
// is fresh per run — hence RevEAL's single-trace attack — but the secret
// key repeats across decryptions, so the classic multi-trace correlation
// power analysis applies there. This example recovers a ternary BFV secret
// key from repeated decryption traces and shows the trace-count trade-off.
package main

import (
	"fmt"
	"log"

	"reveal/internal/core"
	"reveal/internal/sampler"
)

func main() {
	const (
		q = 12289
		n = 32
	)
	dev := core.NewDevice(17)
	sk := sampler.TernaryPoly(sampler.NewXoshiro256(18), n)
	fmt.Printf("target: %d-coefficient ternary secret key on the simulated device\n\n", n)

	fmt.Printf("%10s %18s\n", "traces", "key recovery")
	for _, m := range []int{10, 25, 50, 100, 200} {
		res, err := core.RunDecryptionAttack(dev, sk, q, m, uint64(m))
		if err != nil {
			log.Fatal(err)
		}
		rate, err := core.KeyRecoveryRate(res.Recovered, sk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %17.1f%%\n", m, 100*rate)
	}

	fmt.Println(`
reading: CPA key recovery improves with traces — possible against
decryption because the key repeats. Encryption error polynomials are
sampled fresh every run, which is exactly why the paper's encryption
attack must succeed with a SINGLE trace (and why masking-style defenses
tuned for multi-trace attacks do not stop it).`)
}
