// Batched (SIMD) homomorphic computation: pack 1024 values into the
// plaintext slots, then compute the sum across all slots entirely under
// encryption using log₂(n) Galois rotations — the rotate-and-add pattern
// every BFV application (private statistics, encrypted dot products) is
// built from.
package main

import (
	"fmt"
	"log"

	"reveal/internal/bfv"
	"reveal/internal/modular"
	"reveal/internal/sampler"
)

func main() {
	// n=1024 with a 50-bit modulus (room for key switching) and a prime
	// t ≡ 1 mod 2n so batching is available.
	primes, err := modular.GeneratePrimes(50, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	params, err := bfv.NewParameters(1024, primes, 12289,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		log.Fatal(err)
	}
	prng := sampler.NewXoshiro256(7)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	dec := bfv.NewDecryptor(params, sk)
	ev, err := bfv.NewEvaluator(params)
	if err != nil {
		log.Fatal(err)
	}
	be, err := bfv.NewBatchEncoder(params)
	if err != nil {
		log.Fatal(err)
	}

	// Pack 1..n into the slots and encrypt once.
	slots := make([]uint64, params.N)
	var want uint64
	for i := range slots {
		slots[i] = uint64(i+1) % params.T
		want = (want + slots[i]) % params.T
	}
	pt, err := be.Encode(slots)
	if err != nil {
		log.Fatal(err)
	}
	ct, err := enc.Encrypt(pt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d packed values; expected slot-sum = %d (mod %d)\n",
		params.N, want, params.T)

	// Rotate-and-add: after log2(n/2) column rotations plus the row swap,
	// every slot holds the total.
	acc := ct
	steps := 0
	for k := 1; k < params.N/2; k *= 2 {
		gk, err := kg.GenGaloisKey(sk, params.GaloisElementForColumnRotation(k))
		if err != nil {
			log.Fatal(err)
		}
		rot, err := ev.ApplyGalois(acc, gk)
		if err != nil {
			log.Fatal(err)
		}
		acc = ev.Add(acc, rot)
		steps++
	}
	rowSwap, err := kg.GenGaloisKey(sk, params.GaloisElementForRowSwap())
	if err != nil {
		log.Fatal(err)
	}
	swapped, err := ev.ApplyGalois(acc, rowSwap)
	if err != nil {
		log.Fatal(err)
	}
	acc = ev.Add(acc, swapped)
	steps++
	fmt.Printf("performed %d homomorphic rotations + additions\n", steps)

	got, err := dec.Decrypt(acc)
	if err != nil {
		log.Fatal(err)
	}
	outSlots, err := be.Decode(got)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted slot 0 = %d, slot 777 = %d (every slot should hold %d)\n",
		outSlots[0], outSlots[777], want)
	if outSlots[0] != want || outSlots[777] != want {
		log.Fatal("rotate-and-add result wrong")
	}
	budget, err := dec.NoiseBudget(acc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remaining noise budget after the pipeline: %.0f bits\n", budget)
}
