// Examples smoke test: every PR must keep the runnable examples runnable.
// The two headline programs (the BFV quickstart and the single-trace
// attack demo at its -quick toy scale) are built and executed, asserting
// zero exit status and non-empty, sane output. The compiled revealctl
// selftest is additionally run twice in fresh processes and its digest
// lines diffed — the cross-process half of the replay-determinism gate.
package reveal

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAndRun compiles the package at pkg into dir and executes it with
// args, returning the combined output.
func buildAndRun(t *testing.T, dir, pkg string, args ...string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	var stdout, stderr bytes.Buffer
	run := exec.Command(bin, args...)
	run.Stdout, run.Stderr = &stdout, &stderr
	if err := run.Run(); err != nil {
		t.Fatalf("running %s %v: %v\nstdout:\n%s\nstderr:\n%s",
			pkg, args, err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds and runs binaries")
	}
	dir := t.TempDir()

	out := buildAndRun(t, dir, "./examples/quickstart")
	if out == "" {
		t.Fatal("quickstart produced no output")
	}
	if !strings.Contains(out, "decrypts to") {
		t.Fatalf("quickstart output missing decryption lines:\n%s", out)
	}

	out = buildAndRun(t, dir, "./examples/single_trace_attack", "-quick")
	if out == "" {
		t.Fatal("single_trace_attack produced no output")
	}
	// The demo must actually recover the message, not merely run.
	if !strings.Contains(out, `recovered plaintext`) ||
		!strings.Contains(out, `"attack at dawn"`) {
		t.Fatalf("single_trace_attack -quick did not recover the plaintext:\n%s", out)
	}
}

// TestSelftestFreshProcesses: `revealctl selftest` twice in two fresh
// processes must print identical digest lines — the cross-process
// extension of the in-process serial/parallel replay gate.
func TestSelftestFreshProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("fresh-process selftest builds and runs revealctl")
	}
	dir := t.TempDir()
	digest := func() string {
		out := buildAndRun(t, dir, "./cmd/revealctl", "selftest", "-seed", "3", "-workers", "3", "-q")
		line := strings.TrimSpace(out)
		if !strings.HasPrefix(line, "selftest digest: ") {
			t.Fatalf("unexpected selftest output: %q", out)
		}
		return strings.TrimPrefix(line, "selftest digest: ")
	}
	first, second := digest(), digest()
	if first != second {
		t.Fatalf("fresh-process digests diverge: %s vs %s", first, second)
	}
	if len(first) != 64 {
		t.Fatalf("malformed digest %q", first)
	}
}
