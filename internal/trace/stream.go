package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated marks a stream that ended before delivering the bytes its
// header promised. Callers distinguish a short capture (retryable, the
// producer is still writing) from structural corruption (bad magic,
// unsupported version) with errors.Is(err, ErrTruncated).
var ErrTruncated = errors.New("trace: truncated stream")

// StreamReader decodes the RVTS wire format incrementally: the header and
// label table are read up front, then each trace's samples are delivered in
// caller-sized chunks without ever materializing the whole set. Truncation
// is detected at chunk granularity — a header that promises more samples
// than the payload carries fails on the exact chunk that hits the end,
// wrapped in ErrTruncated, instead of after a whole-set read.
type StreamReader struct {
	r       io.Reader
	count   int
	samples int
	labels  []int

	cur      int // index of the trace being read; -1 before the first NextTrace
	consumed int // samples of the current trace already delivered
	read     int64
	buf      []byte // chunk decode scratch, grown to the largest request
}

// NewStreamReader validates the RVTS magic, version, and header bounds and
// reads the label table, leaving the reader positioned before the first
// trace's samples.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{r: r, cur: -1}
	magic := make([]byte, 4)
	if err := sr.fill(magic, "magic"); err != nil {
		return nil, err
	}
	if string(magic) != setMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	hdr := make([]byte, 12)
	if err := sr.fill(hdr, "header"); err != nil {
		return nil, err
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	count := binary.LittleEndian.Uint32(hdr[4:8])
	samples := binary.LittleEndian.Uint32(hdr[8:12])
	if version != setVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	const maxReasonable = 1 << 28
	if uint64(count)*uint64(samples) > maxReasonable {
		return nil, fmt.Errorf("trace: header claims %d×%d samples, refusing", count, samples)
	}
	sr.count, sr.samples = int(count), int(samples)
	if count > 0 {
		lbl := make([]byte, 4*count)
		if err := sr.fill(lbl, "label table"); err != nil {
			return nil, err
		}
		sr.labels = make([]int, count)
		for i := range sr.labels {
			sr.labels[i] = int(int32(binary.LittleEndian.Uint32(lbl[4*i:])))
		}
	}
	return sr, nil
}

// fill reads exactly len(p) bytes, converting a premature end of input into
// an ErrTruncated-wrapped error naming the structure that was cut short.
func (sr *StreamReader) fill(p []byte, what string) error {
	n, err := io.ReadFull(sr.r, p)
	sr.read += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: reading %s: got %d of %d bytes: %w", what, n, len(p), ErrTruncated)
	}
	if err != nil {
		return fmt.Errorf("trace: reading %s: %w", what, err)
	}
	return nil
}

// Traces returns the header's trace count.
func (sr *StreamReader) Traces() int { return sr.count }

// Samples returns the header's samples-per-trace count.
func (sr *StreamReader) Samples() int { return sr.samples }

// Labels returns the decoded label table (one entry per trace). The slice
// is owned by the reader.
func (sr *StreamReader) Labels() []int { return sr.labels }

// BytesRead reports the total bytes consumed from the underlying reader.
func (sr *StreamReader) BytesRead() int64 { return sr.read }

// NextTrace positions the reader at the next trace's samples and returns
// its index and label. It returns io.EOF after the last trace, and an
// error if the current trace has not been fully consumed — the reader is
// strictly sequential.
func (sr *StreamReader) NextTrace() (idx, label int, err error) {
	if sr.cur >= 0 && sr.consumed < sr.samples {
		return 0, 0, fmt.Errorf("trace: trace %d has %d of %d samples unread",
			sr.cur, sr.samples-sr.consumed, sr.samples)
	}
	if sr.cur+1 >= sr.count {
		return 0, 0, io.EOF
	}
	sr.cur++
	sr.consumed = 0
	return sr.cur, sr.labels[sr.cur], nil
}

// ReadChunk decodes up to len(dst) samples of the current trace into dst
// and returns how many were delivered. The final chunk of a trace may be
// partial (n < len(dst)); after the trace is exhausted ReadChunk returns
// (0, io.EOF) until NextTrace advances. A payload shorter than the header
// promised fails here, on the offending chunk, with ErrTruncated.
func (sr *StreamReader) ReadChunk(dst Trace) (int, error) {
	if sr.cur < 0 {
		return 0, fmt.Errorf("trace: ReadChunk before NextTrace")
	}
	rem := sr.samples - sr.consumed
	if rem == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > rem {
		n = rem
	}
	if n == 0 {
		return 0, nil
	}
	need := 8 * n
	if cap(sr.buf) < need {
		sr.buf = make([]byte, need)
	}
	raw := sr.buf[:need]
	got, err := io.ReadFull(sr.r, raw)
	sr.read += int64(got)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, fmt.Errorf("trace: trace %d: header claims %d samples but payload ends at %d: %w",
			sr.cur, sr.samples, sr.consumed+got/8, ErrTruncated)
	}
	if err != nil {
		return 0, fmt.Errorf("trace: reading trace %d samples: %w", sr.cur, err)
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	sr.consumed += n
	return n, nil
}

// DefaultCalibrationSamples is the prefix length StreamSegmenterConfig
// auto-calibrates the peak threshold over when none is given explicitly.
// The sampler-port spikes tower an order of magnitude above the bulk
// instruction-power level, so any window covering a handful of iterations
// separates them as cleanly as the batch path's whole-trace AutoThreshold.
const DefaultCalibrationSamples = 512

// StreamSegmenterConfig configures an incremental segmenter.
type StreamSegmenterConfig struct {
	// Want is the exact number of segments (peaks) the trace must contain;
	// more is an error as soon as observed, fewer is an error at Flush.
	Want int
	// MinDistance is the FindPeaks minimum peak spacing (values < 1 mean 1).
	MinDistance int
	// Threshold fixes the peak threshold. When 0, the threshold is
	// auto-calibrated with AutoThreshold over the first CalibrationSamples
	// buffered samples (or the whole trace at Flush, matching the batch
	// path exactly, if the trace is shorter than the window).
	Threshold float64
	// CalibrationSamples sizes the auto-calibration window (0 means
	// DefaultCalibrationSamples).
	CalibrationSamples int
}

// StreamSegmenter is the incremental form of Segmenter: samples arrive in
// chunks, and a Segment is emitted the moment its closing peak is
// confirmed — i.e. once enough subsequent samples have been seen that no
// later, taller local maximum can displace that peak within MinDistance.
// Over a complete trace the emitted peak set and segment boundaries are
// identical to FindPeaks/SegmentByPeaks at the same threshold, regardless
// of how the samples were chunked.
//
// Emitted Segment.Samples are views into the segmenter's internal buffer;
// already-written samples are never mutated, so the views stay valid for
// the segmenter's lifetime even as the buffer grows.
type StreamSegmenter struct {
	cfg     StreamSegmenterConfig
	thr     float64
	calib   bool
	buf     Trace
	peaks   []int
	next    int // next candidate index to scan (requires buf[next+1])
	emitted int // segments already emitted
	flushed bool
	out     []Segment // per-call emission scratch, reused
}

// NewStreamSegmenter validates the config and returns an empty segmenter.
func NewStreamSegmenter(cfg StreamSegmenterConfig) (*StreamSegmenter, error) {
	if cfg.Want < 1 {
		return nil, fmt.Errorf("trace: want %d segments, need at least 1", cfg.Want)
	}
	if cfg.MinDistance < 1 {
		cfg.MinDistance = 1
	}
	if cfg.CalibrationSamples <= 0 {
		cfg.CalibrationSamples = DefaultCalibrationSamples
	}
	sg := &StreamSegmenter{cfg: cfg, next: 1}
	if cfg.Threshold != 0 {
		sg.thr, sg.calib = cfg.Threshold, true
	}
	return sg, nil
}

// Threshold returns the active peak threshold and whether calibration has
// happened yet.
func (sg *StreamSegmenter) Threshold() (float64, bool) { return sg.thr, sg.calib }

// BufferedSamples returns how many samples have been committed so far.
func (sg *StreamSegmenter) BufferedSamples() int { return len(sg.buf) }

// EmittedSegments returns how many segments have been emitted so far.
func (sg *StreamSegmenter) EmittedSegments() int { return sg.emitted }

// Window returns a writable slice of n samples at the tail of the internal
// buffer for zero-copy ingest: decode directly into it, then Commit(m) for
// the m ≤ n samples actually written. The slice is invalidated by any
// other segmenter call.
func (sg *StreamSegmenter) Window(n int) Trace {
	need := len(sg.buf) + n
	if cap(sg.buf) < need {
		grown := 2 * cap(sg.buf)
		if grown < need {
			grown = need
		}
		nb := make(Trace, len(sg.buf), grown)
		copy(nb, sg.buf)
		sg.buf = nb
	}
	return sg.buf[len(sg.buf):need]
}

// Commit appends the first n samples of the last Window to the trace and
// returns the segments whose closing peaks the new samples confirmed. The
// returned slice is reused by the next call.
func (sg *StreamSegmenter) Commit(n int) ([]Segment, error) {
	if sg.flushed {
		return nil, fmt.Errorf("trace: segmenter already flushed")
	}
	if n < 0 || len(sg.buf)+n > cap(sg.buf) {
		return nil, fmt.Errorf("trace: commit of %d samples without a matching window", n)
	}
	sg.buf = sg.buf[:len(sg.buf)+n]
	if err := sg.scan(false); err != nil {
		return nil, err
	}
	return sg.emit(false), nil
}

// Feed copies one chunk into the buffer and returns the newly confirmed
// segments — the convenience form of Window+Commit.
func (sg *StreamSegmenter) Feed(chunk Trace) ([]Segment, error) {
	copy(sg.Window(len(chunk)), chunk)
	return sg.Commit(len(chunk))
}

// Flush marks the end of the trace: the threshold is calibrated over the
// whole buffer if it never was, the remaining samples are scanned, the
// peak count is checked against Want, and every unemitted segment —
// including the final one, which runs to the end of the trace — is
// returned.
func (sg *StreamSegmenter) Flush() ([]Segment, error) {
	if sg.flushed {
		return nil, fmt.Errorf("trace: segmenter already flushed")
	}
	sg.flushed = true
	if len(sg.buf) == 0 {
		return nil, fmt.Errorf("trace: cannot segment an empty trace")
	}
	if err := sg.scan(true); err != nil {
		return nil, err
	}
	if len(sg.peaks) != sg.cfg.Want {
		return nil, fmt.Errorf("trace: found %d sampling peaks, want %d (threshold %.3f)",
			len(sg.peaks), sg.cfg.Want, sg.thr)
	}
	return sg.emit(true), nil
}

// scan advances the incremental peak detection over the unprocessed
// buffer. The candidate test is byte-for-byte the FindPeaks logic —
// threshold, plateau skip, taller-peak-wins within MinDistance — applied
// to indices whose right neighbour exists; final forces calibration and
// lets the scan consume the last interior index.
func (sg *StreamSegmenter) scan(final bool) error {
	if !sg.calib {
		switch {
		case len(sg.buf) >= sg.cfg.CalibrationSamples:
			sg.thr = AutoThreshold(sg.buf[:sg.cfg.CalibrationSamples], 0.5)
			sg.calib = true
		case final:
			sg.thr = AutoThreshold(sg.buf, 0.5)
			sg.calib = true
		default:
			return nil // not enough samples to pick a threshold yet
		}
	}
	t := sg.buf
	md := sg.cfg.MinDistance
	for i := sg.next; i+1 < len(t); i++ {
		if t[i] < sg.thr {
			continue
		}
		if t[i] < t[i-1] || t[i] < t[i+1] {
			continue
		}
		if t[i] == t[i-1] {
			continue
		}
		if len(sg.peaks) > 0 && i-sg.peaks[len(sg.peaks)-1] < md {
			if t[i] > t[sg.peaks[len(sg.peaks)-1]] {
				sg.peaks[len(sg.peaks)-1] = i
			}
			continue
		}
		sg.peaks = append(sg.peaks, i)
		if len(sg.peaks) > sg.cfg.Want {
			return fmt.Errorf("trace: found %d sampling peaks after %d samples, want %d (threshold %.3f)",
				len(sg.peaks), len(t), sg.cfg.Want, sg.thr)
		}
	}
	if n := len(t) - 1; n > sg.next {
		sg.next = n
	}
	return nil
}

// confirmedPeaks returns how many accepted peaks can no longer change. The
// last peak p is provisional until every candidate index within
// MinDistance of it has been scanned — a later, taller maximum at
// i < p+MinDistance would replace it; earlier peaks are final.
func (sg *StreamSegmenter) confirmedPeaks(final bool) int {
	n := len(sg.peaks)
	if final || n == 0 {
		return n
	}
	if sg.next < sg.peaks[n-1]+sg.cfg.MinDistance {
		return n - 1
	}
	return n
}

// emit returns the segments whose boundaries are now fixed: segment k is
// [peak_k, peak_{k+1}) and emittable once peak k+1 is confirmed; the final
// segment, [peak_last, len), only exists at Flush.
func (sg *StreamSegmenter) emit(final bool) []Segment {
	confirmed := sg.confirmedPeaks(final)
	out := sg.out[:0]
	for sg.emitted+1 < confirmed {
		k := sg.emitted
		out = append(out, Segment{
			Start:   sg.peaks[k],
			End:     sg.peaks[k+1],
			Samples: sg.buf[sg.peaks[k]:sg.peaks[k+1]],
		})
		sg.emitted++
	}
	if final && sg.emitted < len(sg.peaks) {
		k := sg.emitted
		out = append(out, Segment{
			Start:   sg.peaks[k],
			End:     len(sg.buf),
			Samples: sg.buf[sg.peaks[k]:],
		})
		sg.emitted++
	}
	sg.out = out
	return out
}
