package trace

import (
	"strings"
	"testing"
)

// The segmentation entry points must reject degenerate inputs with errors,
// never panic: an attacker-facing tool sees malformed captures routinely
// (truncated scope buffers, mis-triggered acquisitions, patched kernels
// with no sampler-port peaks).

func TestSegmentEncryptionTraceEmptyTrace(t *testing.T) {
	for _, tr := range []Trace{nil, {}} {
		segs, err := SegmentEncryptionTrace(tr, 4, 8)
		if err == nil {
			t.Fatalf("empty trace: got %d segments, want error", len(segs))
		}
		if !strings.Contains(err.Error(), "empty") {
			t.Errorf("empty trace error = %q, want mention of empty", err)
		}
	}
}

func TestSegmentEncryptionTraceInvalidWant(t *testing.T) {
	tr := Trace{0, 0, 10, 0, 0}
	for _, want := range []int{0, -3} {
		if _, err := SegmentEncryptionTrace(tr, want, 8); err == nil {
			t.Errorf("want=%d: expected error", want)
		}
	}
}

func TestSegmentEncryptionTraceNoSentinelPeak(t *testing.T) {
	// A flat trace (e.g. the branch-free patched kernel with the port
	// spike suppressed) has no peaks above the auto threshold.
	flat := make(Trace, 200)
	for i := range flat {
		flat[i] = 1.0
	}
	if _, err := SegmentEncryptionTrace(flat, 4, 8); err == nil {
		t.Fatal("flat trace: expected segmentation error, got none")
	}
	// Monotone ramp: local maxima only at the boundary, which FindPeaks
	// excludes — still no peaks, still an error, no panic.
	ramp := make(Trace, 100)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if _, err := SegmentEncryptionTrace(ramp, 1, 8); err == nil {
		t.Fatal("ramp trace: expected segmentation error, got none")
	}
}

func TestSegmentEncryptionTraceSingleCoefficient(t *testing.T) {
	// One sampling peak: the single-coefficient capture must segment into
	// exactly one sub-trace running from the peak to the end.
	tr := make(Trace, 40)
	tr[8] = 10
	segs, err := SegmentEncryptionTrace(tr, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	if segs[0].Start != 8 || segs[0].End != len(tr) {
		t.Errorf("segment bounds [%d, %d), want [8, %d)", segs[0].Start, segs[0].End, len(tr))
	}
	if len(segs[0].Samples) != len(tr)-8 {
		t.Errorf("segment length %d, want %d", len(segs[0].Samples), len(tr)-8)
	}
	// And a count mismatch (asking for two coefficients) must error.
	if _, err := SegmentEncryptionTrace(tr, 2, 4); err == nil {
		t.Error("count mismatch: expected error, got none")
	}
}

func TestFindPeaksDegenerateInputs(t *testing.T) {
	// Tiny traces have no interior samples; must return no peaks, not
	// index out of range.
	for _, tr := range []Trace{nil, {}, {1}, {1, 2}} {
		if peaks := FindPeaks(tr, 0, 1); len(peaks) != 0 {
			t.Errorf("FindPeaks(%v) = %v, want none", tr, peaks)
		}
	}
}

func TestSegmentByPeaksNoPeaks(t *testing.T) {
	if _, err := SegmentByPeaks(Trace{1, 2, 3}, nil); err == nil {
		t.Fatal("no peaks: expected error")
	}
}

func TestMedianLengthEmpty(t *testing.T) {
	if got := MedianLength(nil); got != 0 {
		t.Fatalf("MedianLength(nil) = %d, want 0", got)
	}
}
