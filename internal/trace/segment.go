package trace

import (
	"fmt"

	"reveal/internal/obs"
)

// FindPeaks returns the indices of local maxima exceeding threshold, with
// at least minDistance samples between accepted peaks (the larger peak
// wins in a conflict). This is how the attacker locates the start of each
// coefficient's sampling (the paper's visible distribution-call peaks,
// Fig. 3a).
func FindPeaks(t Trace, threshold float64, minDistance int) []int {
	if minDistance < 1 {
		minDistance = 1
	}
	var peaks []int
	for i := 1; i < len(t)-1; i++ {
		if t[i] < threshold {
			continue
		}
		if t[i] < t[i-1] || t[i] < t[i+1] {
			continue
		}
		// Plateau handling: only take the first sample of a plateau.
		if t[i] == t[i-1] {
			continue
		}
		if len(peaks) > 0 && i-peaks[len(peaks)-1] < minDistance {
			// Keep the taller of the two.
			if t[i] > t[peaks[len(peaks)-1]] {
				peaks[len(peaks)-1] = i
			}
			continue
		}
		peaks = append(peaks, i)
	}
	return peaks
}

// AutoThreshold picks a peak threshold between the trace's bulk level and
// its maximum: mean + frac·(max − mean). frac = 0.5 works well for the
// port-spike peaks the synthesizer produces.
func AutoThreshold(t Trace, frac float64) float64 {
	return t.Mean() + frac*(t.Max()-t.Mean())
}

// Segment is one per-coefficient sub-trace with its boundaries in the full
// trace.
type Segment struct {
	Start, End int // sample range [Start, End)
	Samples    Trace
}

// SegmentByPeaks cuts the trace at each peak index: segment k covers
// [peak_k, peak_{k+1}) and the last segment runs to the end of the trace.
// It returns an error when fewer than one peak was found.
func SegmentByPeaks(t Trace, peaks []int) ([]Segment, error) {
	if len(peaks) == 0 {
		return nil, fmt.Errorf("trace: no peaks to segment by")
	}
	segs := make([]Segment, 0, len(peaks))
	for k, p := range peaks {
		end := len(t)
		if k+1 < len(peaks) {
			end = peaks[k+1]
		}
		if p >= end {
			return nil, fmt.Errorf("trace: invalid peak ordering at %d", k)
		}
		segs = append(segs, Segment{Start: p, End: end, Samples: t[p:end].Clone()})
	}
	return segs, nil
}

// SegmentEncryptionTrace performs the full §III-C procedure: find the
// sampler-port peaks and cut the trace into exactly want sub-traces (one
// per coefficient). It returns an error when the count does not match,
// which signals mis-calibration of the threshold.
func SegmentEncryptionTrace(t Trace, want int, minDistance int) ([]Segment, error) {
	if len(t) == 0 {
		return nil, fmt.Errorf("trace: cannot segment an empty trace")
	}
	if want < 1 {
		return nil, fmt.Errorf("trace: want %d segments, need at least 1", want)
	}
	sp := obs.StartSpan("segment")
	defer sp.End()
	thr := AutoThreshold(t, 0.5)
	peaks := FindPeaks(t, thr, minDistance)
	if len(peaks) != want {
		return nil, fmt.Errorf("trace: found %d sampling peaks, want %d (threshold %.3f)",
			len(peaks), want, thr)
	}
	segs, err := SegmentByPeaks(t, peaks)
	if err != nil {
		return nil, err
	}
	sp.AddItems(len(segs))
	return segs, nil
}

// NormalizeSegments resamples every segment to the same length (the median
// length), producing the aligned matrix the template attack operates on.
func NormalizeSegments(segs []Segment, length int) []Trace {
	out := make([]Trace, len(segs))
	for i, s := range segs {
		out[i] = s.Samples.Resample(length)
	}
	return out
}

// MedianLength returns the median segment length (0 for empty input).
func MedianLength(segs []Segment) int {
	if len(segs) == 0 {
		return 0
	}
	lengths := make([]int, len(segs))
	for i, s := range segs {
		lengths[i] = len(s.Samples)
	}
	// Insertion sort: segment counts are small (≤ 32768).
	for i := 1; i < len(lengths); i++ {
		for j := i; j > 0 && lengths[j] < lengths[j-1]; j-- {
			lengths[j], lengths[j-1] = lengths[j-1], lengths[j]
		}
	}
	return lengths[len(lengths)/2]
}
