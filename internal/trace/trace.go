// Package trace provides the oscilloscope-side abstractions of the
// reproduction: trace containers, peak detection and segmentation of a full
// encryption trace into per-coefficient sub-traces (the paper's §III-C),
// resampling for template alignment, and binary/CSV persistence.
package trace

import (
	"fmt"
	"math"
)

// Trace is a single power measurement: one float64 sample per cycle.
type Trace []float64

// Clone returns a copy of the trace.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// Max returns the maximum sample value (or -Inf for an empty trace).
func (t Trace) Max() float64 {
	max := math.Inf(-1)
	for _, v := range t {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the average sample value (0 for an empty trace).
func (t Trace) Mean() float64 {
	if len(t) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// Std returns the sample standard deviation (0 for fewer than 2 samples).
func (t Trace) Std() float64 {
	if len(t) < 2 {
		return 0
	}
	m := t.Mean()
	sum := 0.0
	for _, v := range t {
		sum += (v - m) * (v - m)
	}
	return math.Sqrt(sum / float64(len(t)-1))
}

// Resample stretches or compresses the trace to exactly n samples using
// linear interpolation; used to align time-variant sub-traces before
// template matching.
func (t Trace) Resample(n int) Trace {
	if n <= 0 {
		return Trace{}
	}
	if len(t) == 0 {
		return make(Trace, n)
	}
	if len(t) == 1 {
		out := make(Trace, n)
		for i := range out {
			out[i] = t[0]
		}
		return out
	}
	out := make(Trace, n)
	scale := float64(len(t)-1) / float64(n-1)
	if n == 1 {
		out[0] = t[0]
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(t)-1 {
			out[i] = t[len(t)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = t[lo]*(1-frac) + t[lo+1]*frac
	}
	return out
}

// LowPass applies a simple moving-average filter of the given window,
// approximating the band-limiting of a real acquisition chain.
func (t Trace) LowPass(window int) Trace {
	if window <= 1 || len(t) == 0 {
		return t.Clone()
	}
	out := make(Trace, len(t))
	sum := 0.0
	for i, v := range t {
		sum += v
		if i >= window {
			sum -= t[i-window]
		}
		n := window
		if i < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Set is a labeled collection of equally-long traces, the unit the template
// builder consumes.
type Set struct {
	Traces []Trace
	Labels []int
}

// Append adds a trace with its label.
func (s *Set) Append(t Trace, label int) {
	s.Traces = append(s.Traces, t)
	s.Labels = append(s.Labels, label)
}

// Len returns the number of traces.
func (s *Set) Len() int { return len(s.Traces) }

// Validate checks labels/traces alignment and equal lengths.
func (s *Set) Validate() error {
	if len(s.Traces) != len(s.Labels) {
		return fmt.Errorf("trace: %d traces but %d labels", len(s.Traces), len(s.Labels))
	}
	if len(s.Traces) == 0 {
		return nil
	}
	n := len(s.Traces[0])
	for i, t := range s.Traces {
		if len(t) != n {
			return fmt.Errorf("trace: trace %d has %d samples, want %d", i, len(t), n)
		}
	}
	return nil
}

// ByLabel groups trace indices by label.
func (s *Set) ByLabel() map[int][]int {
	out := map[int][]int{}
	for i, l := range s.Labels {
		out[l] = append(out[l], i)
	}
	return out
}

// Decimate keeps every k-th sample, modeling a slower acquisition rate
// than one sample per cycle (the paper's scope oversamples at 1 GS/s for a
// 1.5 MHz clock; other setups undersample). k must be ≥ 1.
func (t Trace) Decimate(k int) Trace {
	if k <= 1 {
		return t.Clone()
	}
	out := make(Trace, 0, (len(t)+k-1)/k)
	for i := 0; i < len(t); i += k {
		out = append(out, t[i])
	}
	return out
}
