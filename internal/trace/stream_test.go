package trace_test

// Streaming decode + incremental segmentation: the StreamReader must be
// bit-exact with ReadSet under any chunking (including partial final
// chunks and truncation at chunk granularity), and the StreamSegmenter
// must reproduce the batch FindPeaks/SegmentByPeaks boundaries exactly —
// segments spanning chunk boundaries, peaks on the chunk edge, and
// taller-peak replacement across chunks included.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"reveal/internal/trace"
)

// synthTrace builds a deterministic pseudo-random trace with sampler-style
// spikes planted at the given indices: bulk level in [1, 2), spikes ≥ 10.
func synthTrace(n int, peaks []int) trace.Trace {
	t := make(trace.Trace, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state = state*6364136223846793005 + 1442695040888963407
		t[i] = 1.0 + float64(state>>40)/float64(1<<24)
	}
	for _, p := range peaks {
		t[p] = 10 + float64(p%7)
	}
	return t
}

// batchSegments is the reference segmentation at an explicit threshold.
func batchSegments(tb testing.TB, t trace.Trace, thr float64, minDistance int) []trace.Segment {
	tb.Helper()
	peaks := trace.FindPeaks(t, thr, minDistance)
	segs, err := trace.SegmentByPeaks(t, peaks)
	if err != nil {
		tb.Fatalf("batch segmentation: %v", err)
	}
	return segs
}

// streamSegments runs the StreamSegmenter over t in fixed-size chunks and
// returns all emitted segments plus the sample count buffered when the
// first segment was emitted (the streaming-latency witness).
func streamSegments(tb testing.TB, t trace.Trace, cfg trace.StreamSegmenterConfig, chunk int) (segs []trace.Segment, firstAt int) {
	tb.Helper()
	sg, err := trace.NewStreamSegmenter(cfg)
	if err != nil {
		tb.Fatalf("NewStreamSegmenter: %v", err)
	}
	for off := 0; off < len(t); off += chunk {
		end := off + chunk
		if end > len(t) {
			end = len(t)
		}
		out, err := sg.Feed(t[off:end])
		if err != nil {
			tb.Fatalf("Feed at %d: %v", off, err)
		}
		if len(out) > 0 && firstAt == 0 {
			firstAt = sg.BufferedSamples()
		}
		segs = append(segs, out...)
	}
	out, err := sg.Flush()
	if err != nil {
		tb.Fatalf("Flush: %v", err)
	}
	segs = append(segs, out...)
	return segs, firstAt
}

func assertSegmentsEqual(t *testing.T, want, got []trace.Segment) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("segment count %d, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k].Start != want[k].Start || got[k].End != want[k].End {
			t.Fatalf("segment %d: [%d,%d), want [%d,%d)",
				k, got[k].Start, got[k].End, want[k].Start, want[k].End)
		}
		if len(got[k].Samples) != len(want[k].Samples) {
			t.Fatalf("segment %d: %d samples, want %d", k, len(got[k].Samples), len(want[k].Samples))
		}
		for j := range want[k].Samples {
			if math.Float64bits(got[k].Samples[j]) != math.Float64bits(want[k].Samples[j]) {
				t.Fatalf("segment %d sample %d: %x, want %x", k, j,
					math.Float64bits(got[k].Samples[j]), math.Float64bits(want[k].Samples[j]))
			}
		}
	}
}

func TestStreamSegmenterMatchesBatchAcrossChunkSizes(t *testing.T) {
	peaks := []int{1, 41, 80, 120, 167, 200, 239, 281, 320, 358, 397, 438}
	tr := synthTrace(480, peaks)
	thr := trace.AutoThreshold(tr, 0.5)
	want := batchSegments(t, tr, thr, 8)
	if len(want) != len(peaks) {
		t.Fatalf("reference found %d segments, want %d", len(want), len(peaks))
	}
	for _, chunk := range []int{1, 2, 3, 5, 8, 13, 40, 41, 64, 127, 480, 1000} {
		cfg := trace.StreamSegmenterConfig{Want: len(peaks), MinDistance: 8, Threshold: thr}
		got, firstAt := streamSegments(t, tr, cfg, chunk)
		assertSegmentsEqual(t, want, got)
		// Streaming must emit the first segment before the trace ends.
		if chunk < 100 && firstAt >= len(tr) {
			t.Fatalf("chunk %d: first segment only emitted at %d/%d samples", chunk, firstAt, len(tr))
		}
	}
}

func TestStreamSegmenterPeakOnChunkEdge(t *testing.T) {
	// Peaks on both sides of chunk boundaries for chunk = 64: index 64 is
	// the first sample of chunk 1 and 127 the last of chunk 1. 252 and 258
	// are within minDistance 8 of each other with the later one taller
	// (values 10 and 16), so the taller-peak replacement crosses the
	// 256-sample chunk edge.
	peaks := []int{30, 64, 127, 192, 252, 258}
	tr := synthTrace(320, peaks)
	thr := trace.AutoThreshold(tr, 0.5)
	want := batchSegments(t, tr, thr, 8)
	if len(want) != 5 { // 252 replaced by 258
		t.Fatalf("reference found %d segments, want 5", len(want))
	}
	for _, chunk := range []int{1, 64, 128} {
		cfg := trace.StreamSegmenterConfig{Want: 5, MinDistance: 8, Threshold: thr}
		got, _ := streamSegments(t, tr, cfg, chunk)
		assertSegmentsEqual(t, want, got)
	}
}

func TestStreamSegmenterAutoCalibration(t *testing.T) {
	// With no explicit threshold the segmenter calibrates over its first
	// window; the spikes tower over the bulk, so the peak set matches the
	// batch path's whole-trace AutoThreshold exactly.
	peaks := []int{20, 60, 100, 140, 180, 220, 260, 300, 340, 380}
	tr := synthTrace(420, peaks)
	want := batchSegments(t, tr, trace.AutoThreshold(tr, 0.5), 8)
	for _, chunk := range []int{7, 64, 4096} {
		cfg := trace.StreamSegmenterConfig{Want: len(peaks), MinDistance: 8, CalibrationSamples: 128}
		got, _ := streamSegments(t, tr, cfg, chunk)
		assertSegmentsEqual(t, want, got)
	}
	// A trace shorter than the calibration window falls back to
	// whole-trace calibration at Flush — identical to the batch threshold.
	short := synthTrace(90, []int{10, 50})
	cfg := trace.StreamSegmenterConfig{Want: 2, MinDistance: 8, CalibrationSamples: 4096}
	got, _ := streamSegments(t, short, cfg, 7)
	assertSegmentsEqual(t, batchSegments(t, short, trace.AutoThreshold(short, 0.5), 8), got)
}

func TestStreamSegmenterCountErrors(t *testing.T) {
	tr := synthTrace(200, []int{20, 60, 100, 140})
	thr := trace.AutoThreshold(tr, 0.5)

	// Too many peaks: detected mid-stream, before the trace ends.
	sg, err := trace.NewStreamSegmenter(trace.StreamSegmenterConfig{Want: 2, MinDistance: 8, Threshold: thr})
	if err != nil {
		t.Fatal(err)
	}
	var fed int
	var streamErr error
	for off := 0; off < len(tr); off += 16 {
		end := off + 16
		if end > len(tr) {
			end = len(tr)
		}
		if _, streamErr = sg.Feed(tr[off:end]); streamErr != nil {
			fed = end
			break
		}
	}
	if streamErr == nil {
		t.Fatal("overfull trace was not rejected")
	}
	if fed >= len(tr) {
		t.Fatalf("overcount only detected after the full trace (%d samples)", fed)
	}

	// Too few peaks: detected at Flush, same message family as the batch path.
	sg, err = trace.NewStreamSegmenter(trace.StreamSegmenterConfig{Want: 9, MinDistance: 8, Threshold: thr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Feed(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Flush(); err == nil {
		t.Fatal("underfull trace was not rejected at Flush")
	}
}

func TestStreamReaderBitExactAcrossChunkSizes(t *testing.T) {
	set := &trace.Set{}
	set.Append(synthTrace(100, []int{10, 50}), 3)
	set.Append(synthTrace(100, []int{20, 70}), -2)
	set.Traces[1][5] = math.NaN()
	set.Traces[1][6] = math.Inf(-1)
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for _, chunk := range []int{1, 3, 7, 64, 100, 4096} {
		sr, err := trace.NewStreamReader(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		if sr.Traces() != 2 || sr.Samples() != 100 {
			t.Fatalf("header %d×%d, want 2×100", sr.Traces(), sr.Samples())
		}
		dst := make(trace.Trace, chunk)
		for {
			idx, label, err := sr.NextTrace()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if label != set.Labels[idx] {
				t.Fatalf("trace %d label %d, want %d", idx, label, set.Labels[idx])
			}
			var got trace.Trace
			for {
				n, err := sr.ReadChunk(dst)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, dst[:n]...)
			}
			want := set.Traces[idx]
			if len(got) != len(want) {
				t.Fatalf("trace %d: %d samples, want %d", idx, len(got), len(want))
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("chunk %d trace %d sample %d: bits differ", chunk, idx, j)
				}
			}
		}
		if sr.BytesRead() != int64(len(wire)) {
			t.Fatalf("chunk %d: consumed %d bytes, want %d", chunk, sr.BytesRead(), len(wire))
		}
	}
}

func TestStreamReaderTruncationIsTypedAndChunkGranular(t *testing.T) {
	set := &trace.Set{}
	set.Append(synthTrace(1000, []int{100, 500}), 1)
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	const header = 4 + 12 + 4 // magic + header + one label
	// Keep only 100 of the promised 1000 samples.
	cut := wire[:header+100*8]

	sr, err := trace.NewStreamReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("header parse: %v", err)
	}
	if _, _, err := sr.NextTrace(); err != nil {
		t.Fatal(err)
	}
	dst := make(trace.Trace, 64)
	read := 0
	for {
		n, err := sr.ReadChunk(dst)
		read += n
		if err != nil {
			if !errors.Is(err, trace.ErrTruncated) {
				t.Fatalf("truncation error is not ErrTruncated: %v", err)
			}
			break
		}
	}
	// The failure must surface on the chunk that crosses the cut — after
	// the 64 available-in-full samples, not after a whole-trace read.
	if read != 64 {
		t.Fatalf("read %d samples before failing, want 64 (chunk granularity)", read)
	}

	// ReadSet surfaces the same typed error.
	if _, err := trace.ReadSet(bytes.NewReader(cut)); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("ReadSet error = %v, want ErrTruncated", err)
	}
	// Truncated header and truncated label table are typed too.
	for _, n := range []int{2, 9, 17} {
		if _, err := trace.ReadSet(bytes.NewReader(wire[:n])); !errors.Is(err, trace.ErrTruncated) {
			t.Fatalf("ReadSet(%d bytes) error = %v, want ErrTruncated", n, err)
		}
	}
	// Structural corruption is NOT ErrTruncated.
	if _, err := trace.ReadSet(bytes.NewReader([]byte("NOPE00000000----"))); errors.Is(err, trace.ErrTruncated) {
		t.Fatal("bad magic misreported as truncation")
	}
}

func TestStreamReaderSequentialContract(t *testing.T) {
	set := &trace.Set{}
	set.Append(trace.Trace{1, 2, 3}, 0)
	set.Append(trace.Trace{4, 5, 6}, 1)
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ReadChunk(make(trace.Trace, 1)); err == nil {
		t.Fatal("ReadChunk before NextTrace must fail")
	}
	if _, _, err := sr.NextTrace(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr.NextTrace(); err == nil {
		t.Fatal("NextTrace over an unconsumed trace must fail")
	}
}
