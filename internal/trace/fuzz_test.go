package trace_test

// FuzzReadSet: the binary trace-set decoder must never panic or
// over-allocate on adversarial bytes, and anything it accepts must be
// internally consistent and survive a bit-exact serialize/parse round trip.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"reveal/internal/trace"
)

func validSetBytes(tb testing.TB) []byte {
	tb.Helper()
	set := &trace.Set{}
	set.Append(trace.Trace{1.5, -2.25, 0}, 1)
	set.Append(trace.Trace{0.125, 3, math.Inf(1)}, -1)
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, set); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadSet(f *testing.F) {
	valid := validSetBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                // truncated payload
	f.Add(valid[:4])                                           // header only
	f.Add([]byte("RVTS"))                                      // magic, no header
	f.Add([]byte("NOPE00000000"))                              // wrong magic
	f.Add(append(append([]byte{}, valid[:16]...), 0xFF, 0xFF)) // lying header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := trace.ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadSet accepted an inconsistent set: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.WriteSet(&buf, set); err != nil {
			t.Fatalf("accepted set does not re-serialize: %v", err)
		}
		again, err := trace.ReadSet(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(again.Traces) != len(set.Traces) {
			t.Fatalf("round trip lost traces: %d -> %d", len(set.Traces), len(again.Traces))
		}
		for i := range set.Traces {
			if again.Labels[i] != set.Labels[i] {
				t.Fatalf("trace %d label %d -> %d", i, set.Labels[i], again.Labels[i])
			}
			for j := range set.Traces[i] {
				// Bit-level comparison so NaN payloads survive too.
				a := math.Float64bits(set.Traces[i][j])
				b := math.Float64bits(again.Traces[i][j])
				if a != b {
					t.Fatalf("trace %d sample %d: %x -> %x", i, j, a, b)
				}
			}
		}
	})
}

// stingyReader returns at most k bytes per Read call, torturing every
// io.ReadFull in the streaming decoder with short reads (k = 1 is the
// pathological byte-at-a-time transport).
type stingyReader struct {
	r io.Reader
	k int
}

func (s *stingyReader) Read(p []byte) (int, error) {
	if len(p) > s.k {
		p = p[:s.k]
	}
	return s.r.Read(p)
}

// FuzzStreamReader: chunk-boundary torture for the incremental RVTS
// decoder. Whatever the chunk size and however stingy the transport, the
// StreamReader must agree byte-for-byte with ReadSet — same accept/reject
// decision, same labels, same sample bits — and every premature end of
// payload must surface as the typed ErrTruncated.
func FuzzStreamReader(f *testing.F) {
	valid := validSetBytes(f)
	f.Add(valid, 7, 64)
	f.Add(valid, 1, 1)                              // 1-byte reads, 1-sample chunks
	f.Add(valid[:len(valid)-5], 2, 3)               // truncated payload
	f.Add(valid[:9], 1, 1)                          // truncated header
	f.Add(valid[:17], 3, 2)                         // truncated label table
	lying := append([]byte{}, valid[:8]...)         // magic + version
	lying = append(lying, 2, 0, 0, 0, 255, 0, 0, 0) // claims 2×255 samples
	lying = append(lying, valid[16:]...)            // ...over the short payload
	f.Add(lying, 5, 16)
	f.Add([]byte("RVTS"), 1, 4)
	f.Fuzz(func(t *testing.T, data []byte, readLimit, chunk int) {
		if readLimit < 1 {
			readLimit = 1
		}
		if chunk < 1 {
			chunk = 1
		}
		chunk %= 257
		if chunk == 0 {
			chunk = 256
		}
		refSet, refErr := trace.ReadSet(bytes.NewReader(data))

		sr, err := trace.NewStreamReader(&stingyReader{r: bytes.NewReader(data), k: readLimit})
		if err != nil {
			if refErr == nil {
				t.Fatalf("StreamReader rejected what ReadSet accepted: %v", err)
			}
			return
		}
		var (
			traces  []trace.Trace
			labels  []int
			readErr error
		)
		dst := make(trace.Trace, chunk)
		for {
			_, label, err := sr.NextTrace()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			labels = append(labels, label)
			var tr trace.Trace
			for {
				n, err := sr.ReadChunk(dst)
				if err == io.EOF {
					break
				}
				if err != nil {
					readErr = err
					break
				}
				tr = append(tr, dst[:n]...)
			}
			if readErr != nil {
				break
			}
			traces = append(traces, tr)
		}
		if readErr != nil {
			if !errors.Is(readErr, trace.ErrTruncated) {
				t.Fatalf("mid-stream failure is not ErrTruncated: %v", readErr)
			}
			if refErr == nil {
				t.Fatalf("StreamReader failed (%v) on data ReadSet accepted", readErr)
			}
			return
		}
		if refErr != nil {
			t.Fatalf("StreamReader accepted what ReadSet rejected: %v", refErr)
		}
		if len(traces) != len(refSet.Traces) {
			t.Fatalf("decoded %d traces, ReadSet decoded %d", len(traces), len(refSet.Traces))
		}
		for i := range traces {
			if labels[i] != refSet.Labels[i] {
				t.Fatalf("trace %d label %d, want %d", i, labels[i], refSet.Labels[i])
			}
			if len(traces[i]) != len(refSet.Traces[i]) {
				t.Fatalf("trace %d: %d samples, want %d", i, len(traces[i]), len(refSet.Traces[i]))
			}
			for j := range traces[i] {
				if math.Float64bits(traces[i][j]) != math.Float64bits(refSet.Traces[i][j]) {
					t.Fatalf("trace %d sample %d: bits differ from ReadSet", i, j)
				}
			}
		}
	})
}
