package trace_test

// FuzzReadSet: the binary trace-set decoder must never panic or
// over-allocate on adversarial bytes, and anything it accepts must be
// internally consistent and survive a bit-exact serialize/parse round trip.

import (
	"bytes"
	"math"
	"testing"

	"reveal/internal/trace"
)

func validSetBytes(tb testing.TB) []byte {
	tb.Helper()
	set := &trace.Set{}
	set.Append(trace.Trace{1.5, -2.25, 0}, 1)
	set.Append(trace.Trace{0.125, 3, math.Inf(1)}, -1)
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, set); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadSet(f *testing.F) {
	valid := validSetBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                // truncated payload
	f.Add(valid[:4])                                           // header only
	f.Add([]byte("RVTS"))                                      // magic, no header
	f.Add([]byte("NOPE00000000"))                              // wrong magic
	f.Add(append(append([]byte{}, valid[:16]...), 0xFF, 0xFF)) // lying header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := trace.ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadSet accepted an inconsistent set: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.WriteSet(&buf, set); err != nil {
			t.Fatalf("accepted set does not re-serialize: %v", err)
		}
		again, err := trace.ReadSet(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(again.Traces) != len(set.Traces) {
			t.Fatalf("round trip lost traces: %d -> %d", len(set.Traces), len(again.Traces))
		}
		for i := range set.Traces {
			if again.Labels[i] != set.Labels[i] {
				t.Fatalf("trace %d label %d -> %d", i, set.Labels[i], again.Labels[i])
			}
			for j := range set.Traces[i] {
				// Bit-level comparison so NaN payloads survive too.
				a := math.Float64bits(set.Traces[i][j])
				b := math.Float64bits(again.Traces[i][j])
				if a != b {
					t.Fatalf("trace %d sample %d: %x -> %x", i, j, a, b)
				}
			}
		}
	})
}
