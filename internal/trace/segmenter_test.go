package trace

import (
	"math"
	"strings"
	"testing"
)

// spikedTrace builds a synthetic encryption trace with `coeffs` port
// spikes separated by gap samples (plus jitter from the seed).
func spikedTrace(coeffs, gap int, seed uint64) Trace {
	tr := make(Trace, 0, coeffs*(gap+1)+gap)
	s := seed
	noise := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>40)) / float64(1<<25) * 0.05
	}
	for i := 0; i < gap; i++ {
		tr = append(tr, 0.1+noise())
	}
	for c := 0; c < coeffs; c++ {
		tr = append(tr, 4.0+noise())
		extra := int(s>>60) % 3
		for i := 0; i < gap+extra; i++ {
			tr = append(tr, 0.1+noise())
		}
	}
	return tr
}

// TestSegmenterMatchesSegmentEncryptionTrace: the buffer-reusing segmenter
// must produce the same boundaries and bitwise-equal samples as the
// allocating path, across repeated reuse.
func TestSegmenterMatchesSegmentEncryptionTrace(t *testing.T) {
	sg := NewSegmenter(8)
	for rep := 0; rep < 5; rep++ {
		coeffs := 5 + rep
		tr := spikedTrace(coeffs, 12, uint64(rep)*31+7)
		want, err := SegmentEncryptionTrace(tr, coeffs, 8)
		if err != nil {
			t.Fatalf("rep %d: reference: %v", rep, err)
		}
		got, err := sg.Segment(tr, coeffs, 8)
		if err != nil {
			t.Fatalf("rep %d: segmenter: %v", rep, err)
		}
		if len(got) != len(want) {
			t.Fatalf("rep %d: %d segments, want %d", rep, len(got), len(want))
		}
		for k := range want {
			if got[k].Start != want[k].Start || got[k].End != want[k].End {
				t.Fatalf("rep %d seg %d: bounds [%d,%d), want [%d,%d)", rep, k,
					got[k].Start, got[k].End, want[k].Start, want[k].End)
			}
			for i := range want[k].Samples {
				if math.Float64bits(got[k].Samples[i]) != math.Float64bits(want[k].Samples[i]) {
					t.Fatalf("rep %d seg %d sample %d drifted", rep, k, i)
				}
			}
		}
	}
}

func TestSegmenterErrors(t *testing.T) {
	sg := NewSegmenter(4)
	if _, err := sg.Segment(Trace{}, 4, 8); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := sg.Segment(Trace{1, 2, 3}, 0, 8); err == nil {
		t.Error("want 0 should fail")
	}
	flat := make(Trace, 64)
	if _, err := sg.Segment(flat, 4, 8); err == nil {
		t.Error("flat trace should fail peak-count check")
	}
	if sg := NewSegmenter(-3); cap(sg.peaks) != 0 {
		t.Error("negative hint should clamp to zero")
	}
}

func TestFindPeaksIntoMatchesFindPeaks(t *testing.T) {
	tr := spikedTrace(9, 10, 99)
	thr := AutoThreshold(tr, 0.5)
	want := FindPeaks(tr, thr, 8)
	buf := make([]int, 0, 2)
	got := FindPeaksInto(buf, tr, thr, 8)
	if len(got) != len(want) {
		t.Fatalf("%d peaks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peak %d = %d, want %d", i, got[i], want[i])
		}
	}
	// minDistance clamp matches too.
	if a, b := FindPeaks(tr, thr, 0), FindPeaksInto(nil, tr, thr, 0); len(a) != len(b) {
		t.Fatalf("clamped minDistance disagrees: %d vs %d", len(a), len(b))
	}
}

func TestResampleIntoMatchesResample(t *testing.T) {
	tr := spikedTrace(4, 9, 3)
	for _, n := range []int{1, 2, 7, len(tr), len(tr) * 2} {
		want := tr.Resample(n)
		dst := make(Trace, n)
		got := tr.ResampleInto(dst)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("n=%d sample %d: %x, want %x", n, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
	// Degenerate inputs.
	if got := (Trace{}).ResampleInto(make(Trace, 3)); got[0] != 0 || got[2] != 0 {
		t.Errorf("empty source should zero-fill, got %v", got)
	}
	if got := (Trace{5}).ResampleInto(make(Trace, 3)); got[0] != 5 || got[2] != 5 {
		t.Errorf("single-sample source should broadcast, got %v", got)
	}
	if got := (Trace{1, 2}).ResampleInto(Trace{}); len(got) != 0 {
		t.Errorf("empty destination should stay empty")
	}
}

func TestSegmentSetParallelMatchesSerial(t *testing.T) {
	const coeffs = 6
	traces := make([]Trace, 9)
	for i := range traces {
		traces[i] = spikedTrace(coeffs, 11, uint64(i)*131+1)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := SegmentSetParallel(traces, coeffs, 8, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, tr := range traces {
			want, err := SegmentEncryptionTrace(tr, coeffs, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[i]) != len(want) {
				t.Fatalf("workers=%d trace %d: %d segments, want %d", workers, i, len(got[i]), len(want))
			}
			for k := range want {
				if got[i][k].Start != want[k].Start || got[i][k].End != want[k].End {
					t.Fatalf("workers=%d trace %d seg %d bounds mismatch", workers, i, k)
				}
				for j := range want[k].Samples {
					if math.Float64bits(got[i][k].Samples[j]) != math.Float64bits(want[k].Samples[j]) {
						t.Fatalf("workers=%d trace %d seg %d sample %d drifted", workers, i, k, j)
					}
				}
			}
		}
	}
	// Empty input.
	if out, err := SegmentSetParallel(nil, coeffs, 8, 4); err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d", err, len(out))
	}
}

func TestSegmentSetParallelError(t *testing.T) {
	traces := []Trace{
		spikedTrace(6, 11, 1),
		make(Trace, 64), // flat: no peaks
		spikedTrace(6, 11, 2),
	}
	_, err := SegmentSetParallel(traces, 6, 8, 2)
	if err == nil {
		t.Fatal("flat trace should fail the batch")
	}
	if !strings.Contains(err.Error(), "trace 1") {
		t.Fatalf("error should name the failing trace: %v", err)
	}
}

func BenchmarkSegmentAllocating(b *testing.B) {
	tr := spikedTrace(65, 14, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SegmentEncryptionTrace(tr, 65, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentReused(b *testing.B) {
	tr := spikedTrace(65, 14, 5)
	sg := NewSegmenter(65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sg.Segment(tr, 65, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentSetParallel(b *testing.B) {
	traces := make([]Trace, 16)
	for i := range traces {
		traces[i] = spikedTrace(65, 14, uint64(i)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SegmentSetParallel(traces, 65, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}
