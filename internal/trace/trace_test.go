package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStats(t *testing.T) {
	tr := Trace{1, 2, 3, 4, 5}
	if tr.Mean() != 3 {
		t.Errorf("mean=%v", tr.Mean())
	}
	if tr.Max() != 5 {
		t.Errorf("max=%v", tr.Max())
	}
	if math.Abs(tr.Std()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std=%v", tr.Std())
	}
	var empty Trace
	if empty.Mean() != 0 || !math.IsInf(empty.Max(), -1) || empty.Std() != 0 {
		t.Error("empty-trace stats wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := Trace{1, 2}
	c := tr.Clone()
	c[0] = 99
	if tr[0] != 1 {
		t.Error("clone aliases original")
	}
}

func TestResample(t *testing.T) {
	tr := Trace{0, 1, 2, 3}
	up := tr.Resample(7)
	if len(up) != 7 {
		t.Fatalf("len=%d", len(up))
	}
	if up[0] != 0 || up[6] != 3 {
		t.Error("endpoints must be preserved")
	}
	if math.Abs(up[3]-1.5) > 1e-12 {
		t.Errorf("midpoint=%v want 1.5", up[3])
	}
	down := tr.Resample(2)
	if down[0] != 0 || down[1] != 3 {
		t.Errorf("downsample=%v", down)
	}
	if got := tr.Resample(0); len(got) != 0 {
		t.Error("n=0 should give empty")
	}
	if got := (Trace{5}).Resample(3); got[0] != 5 || got[2] != 5 {
		t.Error("single-sample resample should repeat")
	}
	if got := (Trace{}).Resample(3); len(got) != 3 {
		t.Error("empty resample should zero-fill")
	}
	one := tr.Resample(1)
	if len(one) != 1 || one[0] != 0 {
		t.Errorf("resample to 1: %v", one)
	}
}

// Resampling to the same length is (near) identity.
func TestResampleIdentityQuick(t *testing.T) {
	prop := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		tr := Trace(vals)
		got := tr.Resample(len(vals))
		for i := range vals {
			if math.IsNaN(vals[i]) {
				return true
			}
			if math.Abs(got[i]-vals[i]) > 1e-9*(1+math.Abs(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLowPass(t *testing.T) {
	tr := Trace{0, 0, 10, 0, 0}
	f := tr.LowPass(2)
	if f[2] != 5 || f[3] != 5 {
		t.Errorf("lowpass=%v", f)
	}
	if got := tr.LowPass(1); got[2] != 10 {
		t.Error("window 1 must be identity")
	}
}

func TestSetValidate(t *testing.T) {
	s := &Set{}
	s.Append(Trace{1, 2}, 0)
	s.Append(Trace{3, 4}, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Error("len wrong")
	}
	s.Append(Trace{5}, 2)
	if err := s.Validate(); err == nil {
		t.Error("ragged set should fail")
	}
	bad := &Set{Traces: []Trace{{1}}, Labels: []int{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("label mismatch should fail")
	}
	if err := (&Set{}).Validate(); err != nil {
		t.Error("empty set is valid")
	}
}

func TestByLabel(t *testing.T) {
	s := &Set{}
	s.Append(Trace{1}, 5)
	s.Append(Trace{2}, -3)
	s.Append(Trace{3}, 5)
	groups := s.ByLabel()
	if len(groups[5]) != 2 || len(groups[-3]) != 1 {
		t.Errorf("groups=%v", groups)
	}
}

func TestFindPeaks(t *testing.T) {
	tr := Trace{0, 0, 5, 0, 0, 0, 7, 0, 1, 0}
	peaks := FindPeaks(tr, 3, 2)
	if len(peaks) != 2 || peaks[0] != 2 || peaks[1] != 6 {
		t.Errorf("peaks=%v", peaks)
	}
	// minDistance merging keeps the taller peak.
	tr2 := Trace{0, 5, 0, 9, 0}
	peaks = FindPeaks(tr2, 3, 5)
	if len(peaks) != 1 || peaks[0] != 3 {
		t.Errorf("merged peaks=%v", peaks)
	}
	// Below threshold: nothing.
	if got := FindPeaks(tr, 100, 1); len(got) != 0 {
		t.Errorf("peaks above max threshold: %v", got)
	}
}

func TestSegmentByPeaks(t *testing.T) {
	tr := Trace{9, 1, 2, 9, 1, 2, 9, 1}
	segs, err := SegmentByPeaks(tr, []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments=%d", len(segs))
	}
	if segs[0].Start != 0 || segs[0].End != 3 || len(segs[0].Samples) != 3 {
		t.Errorf("seg0=%+v", segs[0])
	}
	if segs[2].End != len(tr) {
		t.Error("last segment must run to trace end")
	}
	if _, err := SegmentByPeaks(tr, nil); err == nil {
		t.Error("no peaks should fail")
	}
	if _, err := SegmentByPeaks(tr, []int{5, 5}); err == nil {
		t.Error("non-increasing peaks should fail")
	}
}

func TestSegmentEncryptionTrace(t *testing.T) {
	// Synthetic trace: 4 spikes of height 10 over a noise floor ~1.
	var tr Trace
	for k := 0; k < 4; k++ {
		tr = append(tr, 10)
		for i := 0; i < 20; i++ {
			tr = append(tr, 1+0.01*float64(i%3))
		}
	}
	// FindPeaks needs a left neighbor; prepend a low sample.
	tr = append(Trace{0}, tr...)
	segs, err := SegmentEncryptionTrace(tr, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("segments=%d", len(segs))
	}
	if _, err := SegmentEncryptionTrace(tr, 5, 5); err == nil {
		t.Error("wrong expected count should fail")
	}
}

func TestNormalizeAndMedian(t *testing.T) {
	segs := []Segment{
		{Samples: Trace{1, 2, 3}},
		{Samples: Trace{1, 2, 3, 4, 5}},
		{Samples: Trace{1, 2, 3, 4}},
	}
	if MedianLength(segs) != 4 {
		t.Errorf("median=%d", MedianLength(segs))
	}
	norm := NormalizeSegments(segs, 4)
	for i, tr := range norm {
		if len(tr) != 4 {
			t.Errorf("segment %d length %d", i, len(tr))
		}
	}
	if MedianLength(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestSetRoundTrip(t *testing.T) {
	s := &Set{}
	s.Append(Trace{1.5, -2.25, 3.75}, -7)
	s.Append(Trace{0, 1e-300, 1e300}, 14)
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Labels[0] != -7 || got.Labels[1] != 14 {
		t.Fatalf("labels=%v", got.Labels)
	}
	for i := range s.Traces {
		for j := range s.Traces[i] {
			if got.Traces[i][j] != s.Traces[i][j] {
				t.Fatalf("sample %d,%d mismatch", i, j)
			}
		}
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	if _, err := ReadSet(strings.NewReader("NOPE")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadSet(strings.NewReader("RV")); err == nil {
		t.Error("truncated magic should fail")
	}
	// Absurd header counts must be rejected, not allocated.
	var buf bytes.Buffer
	buf.WriteString("RVTS")
	for _, v := range []uint32{1, 1 << 30, 1 << 30} {
		b := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
		buf.Write(b)
	}
	if _, err := ReadSet(&buf); err == nil {
		t.Error("absurd sizes should fail")
	}
}

func TestWriteSetValidates(t *testing.T) {
	bad := &Set{Traces: []Trace{{1}, {1, 2}}, Labels: []int{0, 1}}
	var buf bytes.Buffer
	if err := WriteSet(&buf, bad); err == nil {
		t.Error("ragged set must not serialize")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Trace{1.5, 2}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "sample,power\n0,1.5\n1,2\n") {
		t.Errorf("csv=%q", got)
	}
}

func TestWriteMultiCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMultiCSV(&buf, []string{"a", "b"}, []Trace{{1, 2, 3}, {9}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "sample,a,b" {
		t.Errorf("header=%q", lines[0])
	}
	if lines[1] != "0,1,9" {
		t.Errorf("row0=%q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Errorf("row1=%q (padding expected)", lines[2])
	}
	if err := WriteMultiCSV(&buf, []string{"a"}, []Trace{{1}, {2}}); err == nil {
		t.Error("name/series mismatch should fail")
	}
}

func TestDTWIdenticalTraces(t *testing.T) {
	a := Trace{1, 2, 3, 2, 1}
	d, path, err := DTW(a, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance %v", d)
	}
	// The path of identical traces is the diagonal.
	for _, p := range path {
		if p[0] != p[1] {
			t.Errorf("non-diagonal path element %v", p)
		}
	}
}

func TestDTWAlignsStretchedSignal(t *testing.T) {
	ref := Trace{0, 0, 5, 5, 0, 0}
	// Same shape with the plateau stretched.
	stretched := Trace{0, 0, 5, 5, 5, 5, 0, 0}
	d, _, err := DTW(ref, stretched, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("stretched distance %v, want ~0 (DTW should absorb stretching)", d)
	}
	// Plain Euclidean after resampling would NOT be ~0.
	rs := stretched.Resample(len(ref))
	euclid := 0.0
	for i := range ref {
		euclid += (ref[i] - rs[i]) * (ref[i] - rs[i])
	}
	if euclid < 1 {
		t.Skip("resampling happened to align; DTW advantage not demonstrable here")
	}
}

func TestDTWWindowTooNarrow(t *testing.T) {
	a := Trace{1, 2, 3, 4, 5, 6, 7, 8}
	b := Trace{1, 2}
	// Window forced wide enough by length difference; must not error.
	if _, _, err := DTW(a, b, 1); err != nil {
		t.Errorf("window auto-widening failed: %v", err)
	}
	if _, _, err := DTW(Trace{}, b, 0); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestWarpTo(t *testing.T) {
	ref := Trace{0, 1, 4, 1, 0}
	moved := Trace{0, 0, 1, 4, 1, 0}
	warped, err := WarpTo(ref, moved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(warped) != len(ref) {
		t.Fatalf("warped length %d want %d", len(warped), len(ref))
	}
	// The peak must land on the reference peak position.
	peak, peakAt := warped[0], 0
	for i, v := range warped {
		if v > peak {
			peak, peakAt = v, i
		}
	}
	if peakAt != 2 {
		t.Errorf("warped peak at %d want 2 (got %v)", peakAt, warped)
	}
}

func TestDecimate(t *testing.T) {
	tr := Trace{0, 1, 2, 3, 4, 5, 6}
	d := tr.Decimate(3)
	if len(d) != 3 || d[0] != 0 || d[1] != 3 || d[2] != 6 {
		t.Errorf("decimate=%v", d)
	}
	if got := tr.Decimate(1); len(got) != len(tr) {
		t.Error("k=1 must be identity")
	}
	if got := tr.Decimate(0); len(got) != len(tr) {
		t.Error("k=0 must be identity")
	}
	// Identity must be a copy, not an alias.
	id := tr.Decimate(1)
	id[0] = 99
	if tr[0] != 0 {
		t.Error("decimate identity aliases input")
	}
}
