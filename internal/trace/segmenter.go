package trace

import (
	"fmt"
	"runtime"
	"sync"

	"reveal/internal/obs"
)

// FindPeaksInto is FindPeaks writing into a caller-provided index buffer
// (grown as needed, returned re-sliced). The detection logic — threshold,
// plateau skip, taller-peak-wins within minDistance — is identical.
func FindPeaksInto(dst []int, t Trace, threshold float64, minDistance int) []int {
	if minDistance < 1 {
		minDistance = 1
	}
	peaks := dst[:0]
	for i := 1; i < len(t)-1; i++ {
		if t[i] < threshold {
			continue
		}
		if t[i] < t[i-1] || t[i] < t[i+1] {
			continue
		}
		if t[i] == t[i-1] {
			continue
		}
		if len(peaks) > 0 && i-peaks[len(peaks)-1] < minDistance {
			if t[i] > t[peaks[len(peaks)-1]] {
				peaks[len(peaks)-1] = i
			}
			continue
		}
		peaks = append(peaks, i)
	}
	return peaks
}

// ResampleInto stretches or compresses the trace into dst using the exact
// linear interpolation of Resample, without allocating. It returns dst.
func (t Trace) ResampleInto(dst Trace) Trace {
	n := len(dst)
	if n == 0 {
		return dst
	}
	if len(t) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	if len(t) == 1 || n == 1 {
		for i := range dst {
			dst[i] = t[0]
		}
		return dst
	}
	scale := float64(len(t)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(t)-1 {
			dst[i] = t[len(t)-1]
			continue
		}
		frac := pos - float64(lo)
		dst[i] = t[lo]*(1-frac) + t[lo+1]*frac
	}
	return dst
}

// Segmenter cuts encryption traces into per-coefficient sub-traces while
// reusing its peak-index and segment buffers across calls, so the
// per-trace segmentation of a profiling campaign allocates only the
// segment views themselves. One Segmenter serves one goroutine.
type Segmenter struct {
	peaks []int
	segs  []Segment
}

// NewSegmenter returns a Segmenter sized for traces with about the given
// number of coefficients (a hint; buffers grow as needed).
func NewSegmenter(coeffHint int) *Segmenter {
	if coeffHint < 0 {
		coeffHint = 0
	}
	return &Segmenter{
		peaks: make([]int, 0, coeffHint),
		segs:  make([]Segment, 0, coeffHint),
	}
}

// Segment performs the §III-C procedure of SegmentEncryptionTrace over the
// reusable buffers. The returned segments are views into t — no samples
// are copied — and the slice is owned by the Segmenter: both are
// invalidated by the next Segment call. Callers that need the sub-traces
// to outlive t or the Segmenter must Clone them.
func (sg *Segmenter) Segment(t Trace, want int, minDistance int) ([]Segment, error) {
	if len(t) == 0 {
		return nil, fmt.Errorf("trace: cannot segment an empty trace")
	}
	if want < 1 {
		return nil, fmt.Errorf("trace: want %d segments, need at least 1", want)
	}
	thr := AutoThreshold(t, 0.5)
	sg.peaks = FindPeaksInto(sg.peaks, t, thr, minDistance)
	if len(sg.peaks) != want {
		return nil, fmt.Errorf("trace: found %d sampling peaks, want %d (threshold %.3f)",
			len(sg.peaks), want, thr)
	}
	segs := sg.segs[:0]
	for k, p := range sg.peaks {
		end := len(t)
		if k+1 < len(sg.peaks) {
			end = sg.peaks[k+1]
		}
		if p >= end {
			return nil, fmt.Errorf("trace: invalid peak ordering at %d", k)
		}
		segs = append(segs, Segment{Start: p, End: end, Samples: t[p:end]})
	}
	sg.segs = segs
	return segs, nil
}

// SegmentSetParallel segments many encryption traces concurrently, one
// reusable Segmenter per worker, returning the per-trace segment lists in
// input order. Segments are copies (not views), so they stay valid
// independently of the inputs. workers ≤ 0 means GOMAXPROCS. The first
// failing trace aborts the whole batch.
func SegmentSetParallel(traces []Trace, want, minDistance, workers int) ([][]Segment, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(traces) {
		workers = len(traces)
	}
	sp := obs.StartSpan("segment")
	defer sp.End()
	out := make([][]Segment, len(traces))
	if len(traces) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		next     int
		mu       sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sg := NewSegmenter(want)
			for {
				mu.Lock()
				i, failed := next, firstErr != nil
				next++
				mu.Unlock()
				if failed || i >= len(traces) {
					return
				}
				segs, err := sg.Segment(traces[i], want, minDistance)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("trace: segmenting trace %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				// Own copies: the Segmenter's views die on its next call.
				own := make([]Segment, len(segs))
				for k, s := range segs {
					own[k] = Segment{Start: s.Start, End: s.End, Samples: s.Samples.Clone()}
				}
				out[i] = own
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sp.AddItems(len(traces) * want)
	return out, nil
}
