package trace

import (
	"fmt"
	"math"
)

// Dynamic time warping: elastic alignment for the time-variant sub-traces
// the paper's sampler produces. An alternative to the tail-alignment the
// core pipeline uses, exposed for analysis tooling.

// DTW returns the dynamic-time-warping distance between a and b plus the
// optimal warping path as index pairs (i into a, j into b). window
// constrains |i−j| (Sakoe-Chiba band); window <= 0 means unconstrained.
func DTW(a, b Trace, window int) (float64, [][2]int, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil, fmt.Errorf("trace: DTW on empty trace")
	}
	if window <= 0 {
		window = n + m
	}
	// Widen the band so the corner is always reachable.
	if d := m - n; d > 0 && window < d {
		window = d
	} else if d < 0 && window < -d {
		window = -d
	}

	inf := math.Inf(1)
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		jLo, jHi := i-window, i+window
		if jLo < 1 {
			jLo = 1
		}
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			d := a[i-1] - b[j-1]
			d *= d
			best := cost[i-1][j]
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			if cost[i-1][j-1] < best {
				best = cost[i-1][j-1]
			}
			cost[i][j] = d + best
		}
	}
	if math.IsInf(cost[n][m], 1) {
		return 0, nil, fmt.Errorf("trace: DTW band too narrow for lengths %d/%d", n, m)
	}

	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 0 || j > 0 {
		path = append(path, [2]int{i - 1, j - 1})
		switch {
		case i == 1 && j == 1:
			i, j = 0, 0
		case i == 1:
			j--
		case j == 1:
			i--
		default:
			diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
			if diag <= up && diag <= left {
				i, j = i-1, j-1
			} else if up <= left {
				i--
			} else {
				j--
			}
		}
	}
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return math.Sqrt(cost[n][m]), path, nil
}

// WarpTo warps t onto the time base of ref using the DTW path: the result
// has len(ref) samples, each the average of the t-samples matched to that
// reference position. Used to normalize time-variant segments before
// statistics that assume fixed positions.
func WarpTo(ref, t Trace, window int) (Trace, error) {
	_, path, err := DTW(ref, t, window)
	if err != nil {
		return nil, err
	}
	out := make(Trace, len(ref))
	counts := make([]int, len(ref))
	for _, pq := range path {
		out[pq[0]] += t[pq[1]]
		counts[pq[0]]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out, nil
}
