package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Binary format: magic "RVTS", uint32 version, uint32 trace count, uint32
// samples per trace, then labels (int32 each), then samples (float64
// little-endian, trace-major).
const (
	setMagic   = "RVTS"
	setVersion = 1
)

// WriteSet serializes a validated Set.
func WriteSet(w io.Writer, s *Set) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(setMagic); err != nil {
		return err
	}
	sampleCount := 0
	if len(s.Traces) > 0 {
		sampleCount = len(s.Traces[0])
	}
	for _, v := range []uint32{setVersion, uint32(len(s.Traces)), uint32(sampleCount)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, l := range s.Labels {
		if err := binary.Write(bw, binary.LittleEndian, int32(l)); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, t := range s.Traces {
		for _, v := range t {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readSetChunk bounds ReadSet's per-chunk decode, so a short stream with
// an inflated header fails on the first missing chunk (with ErrTruncated)
// instead of forcing a multi-GB up-front allocation.
const readSetChunk = 4096

// ReadSet deserializes a Set written by WriteSet. It is built on the
// incremental StreamReader, so a header whose sample count disagrees with
// the actual payload is rejected at chunk granularity with a typed
// ErrTruncated error.
func ReadSet(r io.Reader) (*Set, error) {
	sr, err := NewStreamReader(bufio.NewReader(r))
	if err != nil {
		return nil, err
	}
	s := &Set{}
	s.Labels = append(s.Labels, sr.Labels()...)
	initialCap := sr.Samples()
	if initialCap > readSetChunk {
		initialCap = readSetChunk
	}
	chunk := make(Trace, initialCap)
	for {
		if _, _, err := sr.NextTrace(); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		t := make(Trace, 0, initialCap)
		for {
			n, err := sr.ReadChunk(chunk)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			t = append(t, chunk[:n]...)
		}
		s.Traces = append(s.Traces, t)
	}
	return s, nil
}

// WriteCSV emits "index,value" rows for a single trace, the format the
// figure tooling plots.
func WriteCSV(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("sample,power\n"); err != nil {
		return err
	}
	for i, v := range t {
		if _, err := bw.WriteString(strconv.Itoa(i)); err != nil {
			return err
		}
		if err := bw.WriteByte(','); err != nil {
			return err
		}
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', 10, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMultiCSV emits several labeled series side by side:
// "sample,label0,label1,..." padding shorter series with empty cells.
func WriteMultiCSV(w io.Writer, names []string, series []Trace) error {
	if len(names) != len(series) {
		return fmt.Errorf("trace: %d names for %d series", len(names), len(series))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("sample"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := bw.WriteString("," + n); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		if _, err := bw.WriteString(strconv.Itoa(i)); err != nil {
			return err
		}
		for _, s := range series {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
			if i < len(s) {
				if _, err := bw.WriteString(strconv.FormatFloat(s[i], 'g', 10, 64)); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
