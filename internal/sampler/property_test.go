package sampler_test

// Property-based distribution tests driven by testkit's seeded generators:
// higher moments of the clipped normal, CDT-vs-Box-Muller agreement, and
// sign-assignment round trips checked against the math/big reference.

import (
	"math"
	"testing"

	"reveal/internal/sampler"
	"reveal/internal/testkit"
)

// moments returns mean, variance, skewness and excess kurtosis.
func moments(samples []float64) (mean, variance, skew, exKurt float64) {
	n := float64(len(samples))
	for _, v := range samples {
		mean += v
	}
	mean /= n
	var m2, m3, m4 float64
	for _, v := range samples {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	variance = m2
	sd := math.Sqrt(m2)
	skew = m3 / (sd * sd * sd)
	exKurt = m4/(m2*m2) - 3
	return
}

// TestClippedNormalHigherMoments: beyond mean/variance, the third and
// fourth moments must match a Gaussian — a sampler that is symmetric and
// has the right variance can still be wrong in the tails, which is exactly
// where the clipping branch (the paper's leakage site) lives.
func TestClippedNormalHigherMoments(t *testing.T) {
	cn := sampler.DefaultClippedNormal()
	prng := testkit.NewRNG(2718).PRNG()
	const n = 400000
	samples := make([]float64, n)
	for i := range samples {
		v, _ := cn.Sample(prng)
		samples[i] = float64(v)
	}
	mean, variance, skew, exKurt := moments(samples)
	sigma := sampler.DefaultSigma
	if math.Abs(mean) > 0.03 {
		t.Errorf("mean %.4f, want ~0", mean)
	}
	// Discretization adds ~1/12 to the continuous variance.
	wantVar := sigma*sigma + 1.0/12.0
	if math.Abs(variance-wantVar)/wantVar > 0.02 {
		t.Errorf("variance %.4f, want ~%.4f", variance, wantVar)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("skewness %.4f, want ~0", skew)
	}
	if math.Abs(exKurt) > 0.1 {
		t.Errorf("excess kurtosis %.4f, want ~0", exKurt)
	}
}

// TestCDTMatchesClippedNormal: the table-driven CDT sampler and the
// Box-Muller clipped normal target the same distribution; their first two
// moments must agree within sampling error.
func TestCDTMatchesClippedNormal(t *testing.T) {
	sigma := sampler.DefaultSigma
	cdt, err := sampler.NewCDT(sigma, 12.8)
	if err != nil {
		t.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	if cdt.Tail() != cn.MaxValue() {
		t.Fatalf("CDT tail %d != clipped normal max %d", cdt.Tail(), cn.MaxValue())
	}
	prngA := testkit.NewRNG(31).PRNG()
	prngB := testkit.NewRNG(32).PRNG()
	const n = 200000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(cdt.Sample(prngA))
		v, _ := cn.Sample(prngB)
		b[i] = float64(v)
	}
	meanA, varA, _, _ := moments(a)
	meanB, varB, _, _ := moments(b)
	if math.Abs(meanA-meanB) > 0.05 {
		t.Errorf("means differ: CDT %.4f vs clipped normal %.4f", meanA, meanB)
	}
	if math.Abs(varA-varB)/varB > 0.05 {
		t.Errorf("variances differ: CDT %.4f vs clipped normal %.4f", varA, varB)
	}
}

// TestAssignSignedRoundTrip: storing a centered noise value into RNS
// residues and center-lifting it back must be the identity, and the
// residues must match the math/big reference for every modulus.
func TestAssignSignedRoundTrip(t *testing.T) {
	moduli := []uint64{12289, 257, 132120577}
	r := testkit.NewRNG(41)
	for iter := 0; iter < 2000; iter++ {
		noise := r.Int64Centered(40)
		residues, br := sampler.AssignSigned(noise, moduli)
		for j, q := range moduli {
			var want uint64
			if noise < 0 {
				want = testkit.RefSubMod(0, uint64(-noise), q)
			} else {
				want = uint64(noise) % q
			}
			if residues[j] != want {
				t.Fatalf("noise %d mod %d: residue %d, ref %d", noise, q, residues[j], want)
			}
			if got := sampler.CenterLift(residues[j], q); got != noise {
				t.Fatalf("CenterLift(AssignSigned(%d)) = %d mod %d", noise, got, q)
			}
		}
		branchless := sampler.AssignSignedBranchless(noise, moduli)
		for j := range moduli {
			if residues[j] != branchless[j] {
				t.Fatalf("noise %d: branchy %d != branchless %d", noise, residues[j], branchless[j])
			}
		}
		// The recorded branch is the paper's V1 ground truth; it must
		// track the sign of the sampled value.
		wantBranch := sampler.BranchZero
		if noise > 0 {
			wantBranch = sampler.BranchPositive
		} else if noise < 0 {
			wantBranch = sampler.BranchNegative
		}
		if br != wantBranch {
			t.Fatalf("noise %d: branch %v, want %v", noise, br, wantBranch)
		}
	}
}

// TestUint64BelowUniformity: bucket a seeded stream and require every
// bucket within 5 sigma of the expected count — catches modulo bias.
func TestUint64BelowUniformity(t *testing.T) {
	r := testkit.NewRNG(51)
	const buckets = 16
	const n = 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64Below(buckets)]++
	}
	expected := float64(n) / buckets
	sigma := math.Sqrt(expected * (1 - 1.0/buckets))
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 5*sigma {
			t.Errorf("bucket %d: %d hits, expected %.0f±%.0f", b, c, expected, 5*sigma)
		}
	}
}
