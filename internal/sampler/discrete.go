package sampler

import (
	"fmt"
	"math"

	"reveal/internal/modular"
)

// TernaryPoly samples n coefficients uniformly from {-1, 0, 1}, SEAL's R_2
// distribution used for the secret key and the encryption sample u.
func TernaryPoly(p PRNG, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(Uint64Below(p, 3)) - 1
	}
	return out
}

// UniformPoly samples n coefficients uniformly from [0, q), SEAL's R_q
// distribution used for the public key component a.
func UniformPoly(p PRNG, n int, q uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = Uint64Below(p, q)
	}
	return out
}

// CDT is a cumulative-distribution-table Gaussian sampler, the technique of
// the prior-work attacks ([10], [12] in the paper) that do NOT apply to
// SEAL. It is included as a baseline to demonstrate that RevEAL's leakage
// model is specific to SEAL's branching code, not to Gaussian sampling in
// general.
type CDT struct {
	sigma float64
	tail  int64
	// table[k] = P(|X| <= k) scaled to 2^63, for k = 0..tail.
	table []uint64
}

// NewCDT builds the table for a discrete Gaussian of parameter sigma
// truncated at tail*sigma.
func NewCDT(sigma float64, tailCut float64) (*CDT, error) {
	if sigma <= 0 || tailCut <= 0 {
		return nil, fmt.Errorf("sampler: invalid CDT parameters sigma=%v tail=%v", sigma, tailCut)
	}
	tail := int64(math.Ceil(sigma * tailCut))
	// Discrete Gaussian weights rho(k) = exp(-k^2 / (2 sigma^2)).
	weights := make([]float64, tail+1)
	total := 0.0
	for k := int64(0); k <= tail; k++ {
		w := math.Exp(-float64(k*k) / (2 * sigma * sigma))
		if k > 0 {
			w *= 2 // both signs
		}
		weights[k] = w
		total += w
	}
	table := make([]uint64, tail+1)
	cum := 0.0
	for k := int64(0); k <= tail; k++ {
		cum += weights[k]
		table[k] = uint64(cum / total * float64(1<<63))
	}
	table[tail] = 1 << 63 // exact closure against rounding
	return &CDT{sigma: sigma, tail: tail, table: table}, nil
}

// Sample draws one value in [-tail, tail] by binary search over the table
// plus a uniform sign bit. The table walk is the operation prior-work
// attacks template; RevEAL does not rely on it.
func (c *CDT) Sample(p PRNG) int64 {
	r := p.Uint64() >> 1 // 63 uniform bits
	lo, hi := 0, len(c.table)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if r < c.table[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	k := int64(lo)
	if k == 0 {
		return 0
	}
	if p.Uint64()&1 == 1 {
		return -k
	}
	return k
}

// Tail returns the truncation bound of the table.
func (c *CDT) Tail() int64 { return c.tail }

// AssignSigned is the vulnerable SEAL v3.2 sign-assignment (Fig. 2 of the
// paper) expressed in Go: given a sampled noise value it produces the
// residues stored into the error polynomial for each coefficient modulus.
// The control flow intentionally mirrors the C++:
//
//	if noise > 0      -> store noise
//	else if noise < 0 -> negate, store q_j - noise
//	else              -> store 0
//
// Branch reports which path executed (the paper's V1 leakage).
type Branch int

// Branch outcomes of the sign assignment.
const (
	BranchZero     Branch = iota // noise == 0
	BranchPositive               // noise > 0
	BranchNegative               // noise < 0
)

// String implements fmt.Stringer.
func (b Branch) String() string {
	switch b {
	case BranchZero:
		return "zero"
	case BranchPositive:
		return "positive"
	case BranchNegative:
		return "negative"
	default:
		return fmt.Sprintf("Branch(%d)", int(b))
	}
}

// AssignSigned computes the stored residues for each modulus and the branch
// taken, exactly as SEAL v3.2's set_poly_coeffs_normal does.
func AssignSigned(noise int64, moduli []uint64) ([]uint64, Branch) {
	out := make([]uint64, len(moduli))
	switch {
	case noise > 0:
		for j := range moduli {
			out[j] = uint64(noise)
		}
		return out, BranchPositive
	case noise < 0:
		neg := uint64(-noise)
		for j, q := range moduli {
			out[j] = q - neg
		}
		return out, BranchNegative
	default:
		return out, BranchZero
	}
}

// AssignSignedBranchless is the SEAL v3.6-style patched assignment: no
// secret-dependent branches. It computes both candidate values and selects
// with an arithmetic mask, the pattern the iterator-based rewrite
// introduced ([35] in the paper). Used by the defense ablation.
func AssignSignedBranchless(noise int64, moduli []uint64) []uint64 {
	out := make([]uint64, len(moduli))
	mask := uint64(noise >> 63) // all ones if negative
	mag := (uint64(noise) ^ mask) - mask
	for j, q := range moduli {
		out[j] = (mag & ^mask) | ((q - mag) % q & mask)
	}
	return out
}

// CenterLift maps residues produced by AssignSigned back to the signed
// noise value (test helper and correctness oracle).
func CenterLift(residue, q uint64) int64 {
	return modular.CenteredRep(residue, q)
}
