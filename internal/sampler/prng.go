// Package sampler implements the randomness SEAL's BFV encryption consumes:
// a deterministic seedable PRNG, uniform and ternary polynomial samplers,
// and — centrally for this reproduction — the ClippedNormalDistribution of
// SEAL v3.2, whose sign-dependent post-processing is the side channel the
// RevEAL attack exploits. A CDT sampler (the technique analyzed by prior
// work the paper distinguishes itself from) and a SEAL v3.6-style
// branch-free sampler (the patched code path) are provided for baselines
// and defense ablations.
package sampler

import "math"

// PRNG is the randomness source consumed by all samplers. Implementations
// must be deterministic for a fixed seed so that profiling campaigns and
// attack traces are reproducible.
type PRNG interface {
	// Uint64 returns the next 64 uniformly random bits.
	Uint64() uint64
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna: tiny,
// fast, and of more than sufficient quality for simulation workloads.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 seeds the generator from a single 64-bit seed using
// SplitMix64, the initialization recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	x := &Xoshiro256{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range x.s {
		x.s[i] = next()
	}
	// All-zero state would be absorbing; SplitMix64 cannot produce it from
	// any seed, but keep the guard for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform double in [0, 1) with 53 bits of precision,
// the same construction the C++ standard library uses for
// generate_canonical.
func Float64(p PRNG) float64 {
	return float64(p.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uint64Below returns a uniform value in [0, bound) using rejection to
// avoid modulo bias. bound must be nonzero.
func Uint64Below(p PRNG, bound uint64) uint64 {
	if bound == 0 {
		panic("sampler: Uint64Below with zero bound")
	}
	// Rejection threshold: largest multiple of bound that fits in 2^64.
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		v := p.Uint64()
		if v >= threshold {
			return v % bound
		}
	}
}

// NormFloat64 draws a standard normal via the Marsaglia polar method and
// reports how many candidate pairs were rejected before acceptance. The
// rejection count is what makes the sampling duration time-variant on the
// device, the property §III-C of the paper works around when segmenting
// traces.
func NormFloat64(p PRNG) (value float64, rejections int) {
	for {
		u := 2*Float64(p) - 1
		v := 2*Float64(p) - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			rejections++
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		return u * f, rejections
	}
}
