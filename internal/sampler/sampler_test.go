package sampler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro256(42)
	b := NewXoshiro256(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewXoshiro256(43)
	same := 0
	a = NewXoshiro256(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := NewXoshiro256(1)
	for i := 0; i < 10000; i++ {
		f := Float64(p)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint64Below(t *testing.T) {
	p := NewXoshiro256(2)
	counts := make([]int, 5)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := Uint64Below(p, 5)
		if v >= 5 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		// Expect ~10000 each; allow 5 sigma ≈ ±450.
		if c < 9500 || c > 10500 {
			t.Errorf("value %d drawn %d times, expected ~10000", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero bound should panic")
		}
	}()
	Uint64Below(p, 0)
}

func TestClippedNormalValidation(t *testing.T) {
	if _, err := NewClippedNormal(0, 1); err == nil {
		t.Error("sigma 0 should fail")
	}
	if _, err := NewClippedNormal(-1, 1); err == nil {
		t.Error("negative sigma should fail")
	}
	if _, err := NewClippedNormal(math.NaN(), 1); err == nil {
		t.Error("NaN sigma should fail")
	}
	if _, err := NewClippedNormal(3, 1); err == nil {
		t.Error("maxDev < sigma should fail")
	}
	cn := DefaultClippedNormal()
	if math.Abs(cn.Sigma-3.1915) > 0.001 {
		t.Errorf("default sigma %v, want ≈3.19 (=8/sqrt(2π))", cn.Sigma)
	}
	if cn.MaxValue() != 41 {
		t.Errorf("MaxValue=%d, want 41 per the paper", cn.MaxValue())
	}
}

func TestClippedNormalBounds(t *testing.T) {
	cn := DefaultClippedNormal()
	p := NewXoshiro256(3)
	for i := 0; i < 100000; i++ {
		v, meta := cn.Sample(p)
		if v < -41 || v > 41 {
			t.Fatalf("sample %d outside [-41, 41]", v)
		}
		if math.Abs(meta.Raw) > cn.MaxDeviation {
			t.Fatalf("raw %v above clip bound", meta.Raw)
		}
		if meta.Rejections < 0 {
			t.Fatal("negative rejection count")
		}
	}
}

func TestClippedNormalMoments(t *testing.T) {
	cn := DefaultClippedNormal()
	p := NewXoshiro256(4)
	const nSamples = 200000
	var sum, sumSq float64
	for i := 0; i < nSamples; i++ {
		v, _ := cn.Sample(p)
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / nSamples
	variance := sumSq/nSamples - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean %v should be ≈0", mean)
	}
	// Rounded continuous Gaussian: Var ≈ σ² + 1/12.
	wantVar := cn.Sigma*cn.Sigma + 1.0/12
	if math.Abs(variance-wantVar)/wantVar > 0.03 {
		t.Errorf("variance %v, want ≈%v", variance, wantVar)
	}
}

func TestClippedNormalObservedRange(t *testing.T) {
	// The paper observed values in [-14, 14] across 220k draws; the tails
	// beyond ±15 must be negligible but the clip bound must allow ±41.
	cn := DefaultClippedNormal()
	p := NewXoshiro256(5)
	over14 := 0
	const draws = 220000
	for i := 0; i < draws; i++ {
		v, _ := cn.Sample(p)
		if v > 14 || v < -14 {
			over14++
		}
	}
	if over14 > 20 {
		t.Errorf("%d of %d samples beyond ±14; paper observed none", over14, draws)
	}
}

func TestSamplePoly(t *testing.T) {
	cn := DefaultClippedNormal()
	p := NewXoshiro256(6)
	vals, metas := cn.SamplePoly(p, 1024)
	if len(vals) != 1024 || len(metas) != 1024 {
		t.Fatal("wrong lengths")
	}
	nonzero := 0
	for _, v := range vals {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 800 {
		t.Errorf("suspiciously many zeros: %d nonzero of 1024", nonzero)
	}
}

func TestTernaryPoly(t *testing.T) {
	p := NewXoshiro256(7)
	vals := TernaryPoly(p, 30000)
	counts := map[int64]int{}
	for _, v := range vals {
		if v < -1 || v > 1 {
			t.Fatalf("ternary out of range: %d", v)
		}
		counts[v]++
	}
	for v := int64(-1); v <= 1; v++ {
		if counts[v] < 9000 || counts[v] > 11000 {
			t.Errorf("value %d appeared %d times, want ~10000", v, counts[v])
		}
	}
}

func TestUniformPoly(t *testing.T) {
	p := NewXoshiro256(8)
	const q = 132120577
	vals := UniformPoly(p, 10000, q)
	var mean float64
	for _, v := range vals {
		if v >= q {
			t.Fatalf("uniform out of range: %d", v)
		}
		mean += float64(v)
	}
	mean /= float64(len(vals))
	if math.Abs(mean-q/2)/q > 0.02 {
		t.Errorf("uniform mean %v far from q/2", mean)
	}
}

func TestCDTSampler(t *testing.T) {
	cdt, err := NewCDT(3.19, 12.8)
	if err != nil {
		t.Fatal(err)
	}
	if cdt.Tail() != 41 {
		t.Errorf("tail=%d want 41", cdt.Tail())
	}
	p := NewXoshiro256(9)
	var sum, sumSq float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := cdt.Sample(p)
		if v < -41 || v > 41 {
			t.Fatalf("CDT sample out of range: %d", v)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.06 {
		t.Errorf("CDT mean %v should be ≈0", mean)
	}
	if math.Abs(variance-3.19*3.19)/(3.19*3.19) > 0.05 {
		t.Errorf("CDT variance %v want ≈%v", variance, 3.19*3.19)
	}
	if _, err := NewCDT(0, 1); err == nil {
		t.Error("invalid CDT params should fail")
	}
}

func TestAssignSignedMatchesSpec(t *testing.T) {
	moduli := []uint64{132120577, 1152921504606584833}
	cases := []struct {
		noise  int64
		branch Branch
	}{
		{0, BranchZero}, {1, BranchPositive}, {41, BranchPositive},
		{-1, BranchNegative}, {-41, BranchNegative},
	}
	for _, c := range cases {
		out, br := AssignSigned(c.noise, moduli)
		if br != c.branch {
			t.Errorf("noise %d: branch %v want %v", c.noise, br, c.branch)
		}
		for j, q := range moduli {
			if got := CenterLift(out[j], q); got != c.noise {
				t.Errorf("noise %d mod %d: stored %d lifts to %d", c.noise, q, out[j], got)
			}
		}
	}
}

// Property: branchless assignment agrees with the branching one for every
// in-range noise value.
func TestAssignSignedBranchlessEquivalence(t *testing.T) {
	moduli := []uint64{132120577}
	prop := func(raw int8) bool {
		noise := int64(raw) % 42
		a, _ := AssignSigned(noise, moduli)
		b := AssignSignedBranchless(noise, moduli)
		return a[0] == b[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchString(t *testing.T) {
	if BranchZero.String() != "zero" || BranchPositive.String() != "positive" ||
		BranchNegative.String() != "negative" {
		t.Error("Branch.String wrong")
	}
	if Branch(9).String() != "Branch(9)" {
		t.Error("unknown branch formatting wrong")
	}
}

func TestNormFloat64Statistics(t *testing.T) {
	p := NewXoshiro256(10)
	var sum, sumSq float64
	totalRej := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v, rej := NormFloat64(p)
		sum += v
		sumSq += v * v
		totalRej += rej
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
	// Polar method rejects ~21.5% of pairs; the count must be plausible.
	rate := float64(totalRej) / float64(draws+totalRej)
	if rate < 0.15 || rate < 0.0 || rate > 0.30 {
		t.Errorf("rejection rate %v implausible for polar method", rate)
	}
}

func BenchmarkClippedNormalSample(b *testing.B) {
	cn := DefaultClippedNormal()
	p := NewXoshiro256(11)
	var v int64
	for i := 0; i < b.N; i++ {
		v, _ = cn.Sample(p)
	}
	sinkI64 = v
}

func BenchmarkCDTSample(b *testing.B) {
	cdt, _ := NewCDT(3.19, 12.8)
	p := NewXoshiro256(12)
	var v int64
	for i := 0; i < b.N; i++ {
		v = cdt.Sample(p)
	}
	sinkI64 = v
}

var sinkI64 int64
