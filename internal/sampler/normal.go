package sampler

import (
	"fmt"
	"math"
)

// SEAL v3.2 defaults: noise_standard_deviation = 3.20 in the docs, with the
// documented value 3.19 ≈ 8/sqrt(2π) used throughout the paper, and a
// maximum deviation of 12.8 σ so sampled coefficients fall in [-41, 41]
// (§II-A of the paper).
const (
	// DefaultSigma is SEAL's default noise standard deviation, 8/sqrt(2π).
	DefaultSigma = 3.19153824321146452 // 8 / sqrt(2*pi)
	// DefaultMaxDeviation clips the distribution at ±12.8 σ ≈ ±40.8, so
	// rounded samples lie in [-41, 41] as the paper states.
	DefaultMaxDeviation = DefaultSigma * 12.8
)

// SampleMeta describes how a single Gaussian draw unfolded; the device
// model uses it to reproduce the time-variant execution the paper observes.
type SampleMeta struct {
	// Rejections counts rejected candidates inside the normal draw plus
	// re-draws due to the max-deviation clipping.
	Rejections int
	// Raw is the accepted double before rounding.
	Raw float64
}

// ClippedNormal mirrors SEAL v3.2's ClippedNormalDistribution: draw a
// normal double with the given σ, redraw while |x| > maxDeviation, and
// round to the nearest integer.
type ClippedNormal struct {
	Sigma        float64
	MaxDeviation float64
}

// NewClippedNormal validates the parameters (σ > 0, maxDeviation ≥ σ).
func NewClippedNormal(sigma, maxDeviation float64) (*ClippedNormal, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("sampler: sigma %v must be positive and finite", sigma)
	}
	if maxDeviation < sigma {
		return nil, fmt.Errorf("sampler: max deviation %v must be at least sigma %v", maxDeviation, sigma)
	}
	return &ClippedNormal{Sigma: sigma, MaxDeviation: maxDeviation}, nil
}

// DefaultClippedNormal returns the sampler with SEAL's default parameters.
func DefaultClippedNormal() *ClippedNormal {
	cn, err := NewClippedNormal(DefaultSigma, DefaultMaxDeviation)
	if err != nil {
		panic(err) // defaults are statically valid
	}
	return cn
}

// Sample draws one coefficient: a normal double clipped to ±MaxDeviation
// and rounded to the nearest integer, with metadata describing the
// time-variant part of the draw.
func (cn *ClippedNormal) Sample(p PRNG) (int64, SampleMeta) {
	meta := SampleMeta{}
	for {
		z, rej := NormFloat64(p)
		meta.Rejections += rej
		x := z * cn.Sigma
		if math.Abs(x) > cn.MaxDeviation {
			meta.Rejections++
			continue
		}
		meta.Raw = x
		// C++ std::round semantics: half away from zero.
		return int64(math.Round(x)), meta
	}
}

// SamplePoly fills out with n clipped-normal coefficients and returns the
// per-coefficient metadata (aligned with the output slice).
func (cn *ClippedNormal) SamplePoly(p PRNG, n int) ([]int64, []SampleMeta) {
	values := make([]int64, n)
	metas := make([]SampleMeta, n)
	for i := 0; i < n; i++ {
		values[i], metas[i] = cn.Sample(p)
	}
	return values, metas
}

// MaxValue returns the largest magnitude a rounded sample can take.
func (cn *ClippedNormal) MaxValue() int64 {
	return int64(math.Round(cn.MaxDeviation))
}
