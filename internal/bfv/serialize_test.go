package bfv

import (
	"bytes"
	"strings"
	"testing"

	"reveal/internal/sampler"
)

func TestParametersRoundTrip(t *testing.T) {
	orig := PaperParameters()
	var buf bytes.Buffer
	if err := WriteParameters(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParameters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.T != orig.T || got.Sigma != orig.Sigma ||
		got.MaxDeviation != orig.MaxDeviation || len(got.Moduli) != len(orig.Moduli) ||
		got.Moduli[0] != orig.Moduli[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, orig)
	}
	// Multi-modulus chain too.
	multi, err := DefaultParameters(4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteParameters(&buf, multi); err != nil {
		t.Fatal(err)
	}
	got, err = ReadParameters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range multi.Moduli {
		if got.Moduli[i] != multi.Moduli[i] {
			t.Fatal("moduli chain mismatch")
		}
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	if _, err := ReadParameters(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadParameters(strings.NewReader("BF")); err == nil {
		t.Error("truncated input should fail")
	}
	// Wrong magic for the object type must be rejected.
	var buf bytes.Buffer
	if err := WriteParameters(&buf, PaperParameters()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCiphertext(&buf, PaperParameters()); err == nil {
		t.Error("parameters bytes should not parse as ciphertext")
	}
}

func TestKeyAndCiphertextRoundTrip(t *testing.T) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(600)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)

	pt := params.NewPlaintext()
	pt.Coeffs[3] = 200
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	// Secret key.
	var buf bytes.Buffer
	if err := WriteSecretKey(&buf, sk); err != nil {
		t.Fatal(err)
	}
	sk2, err := ReadSecretKey(&buf, params)
	if err != nil {
		t.Fatal(err)
	}
	if !sk2.S.Equal(sk.S) {
		t.Error("secret key poly mismatch")
	}
	for i := range sk.Signed {
		if sk.Signed[i] != sk2.Signed[i] {
			t.Fatal("secret key signed mismatch")
		}
	}

	// Public key.
	buf.Reset()
	if err := WritePublicKey(&buf, pk); err != nil {
		t.Fatal(err)
	}
	pk2, err := ReadPublicKey(&buf, params)
	if err != nil {
		t.Fatal(err)
	}
	if !pk2.P0.Equal(pk.P0) || !pk2.P1.Equal(pk.P1) {
		t.Error("public key mismatch")
	}

	// Ciphertext: decrypting the deserialized ciphertext with the
	// deserialized secret key must give back the plaintext.
	buf.Reset()
	if err := WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	ct2, err := ReadCiphertext(&buf, params)
	if err != nil {
		t.Fatal(err)
	}
	dec2 := NewDecryptor(params, sk2)
	got, err := dec2.Decrypt(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[3] != 200 {
		t.Errorf("decrypted %d want 200", got.Coeffs[3])
	}
	// And the original decryptor agrees.
	got2, err := dec.Decrypt(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Coeffs[3] != 200 {
		t.Error("original decryptor disagrees on deserialized ciphertext")
	}
}

func TestPlaintextRoundTrip(t *testing.T) {
	params := PaperParameters()
	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i) % params.T
	}
	var buf bytes.Buffer
	if err := WritePlaintext(&buf, pt); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlaintext(&buf, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Coeffs {
		if got.Coeffs[i] != pt.Coeffs[i] {
			t.Fatal("plaintext mismatch")
		}
	}
	// Length mismatch across parameter sets must fail.
	other, err := DefaultParameters(2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WritePlaintext(&buf, pt); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlaintext(&buf, other); err == nil {
		t.Error("plaintext for wrong parameters should fail")
	}
}

func TestReadPolyValidatesReduction(t *testing.T) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(601)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)

	var buf bytes.Buffer
	if err := WritePublicKey(&buf, pk); err != nil {
		t.Fatal(err)
	}
	// Corrupt a coefficient to exceed the modulus: 8 (magic+ver) + 4
	// (flags) puts us at the first coefficient; write an oversized value.
	raw := buf.Bytes()
	for i := 0; i < 8; i++ {
		raw[12+i] = 0xff
	}
	if _, err := ReadPublicKey(bytes.NewReader(raw), params); err == nil {
		t.Error("unreduced coefficient should be rejected")
	}
}

func TestWriteCiphertextValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCiphertext(&buf, nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
	if err := WriteCiphertext(&buf, &Ciphertext{}); err == nil {
		t.Error("empty ciphertext should fail")
	}
}
