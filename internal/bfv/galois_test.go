package bfv

import (
	"testing"

	"reveal/internal/modular"
	"reveal/internal/sampler"
)

// Plaintext-side reference automorphism mod t.
func automorphPlain(params *Parameters, pt *Plaintext, g uint64) *Plaintext {
	out := params.NewPlaintext()
	twoN := uint64(2 * params.N)
	for i, v := range pt.Coeffs {
		e := (uint64(i) * g) % twoN
		if e < uint64(params.N) {
			out.Coeffs[e] = modular.Add(out.Coeffs[e], v, params.T)
		} else {
			out.Coeffs[e-uint64(params.N)] = modular.Sub(out.Coeffs[e-uint64(params.N)], v, params.T)
		}
	}
	return out
}

// galoisParams returns n=1024 with a 50-bit modulus: key switching adds
// ≈2^33 noise, so the paper's 27-bit q has no room for it (as in SEAL,
// where n=1024 supports no key-switched operations either).
func galoisParams(t *testing.T, plainT uint64) *Parameters {
	t.Helper()
	primes, err := modular.GeneratePrimes(50, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	params, err := NewParameters(1024, primes, plainT,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func TestApplyGaloisMatchesPlainAutomorphism(t *testing.T) {
	params := galoisParams(t, 256)
	prng := sampler.NewXoshiro256(700)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}

	pt := params.NewPlaintext()
	pt.Coeffs[0] = 5
	pt.Coeffs[1] = 7
	pt.Coeffs[500] = 123

	for _, g := range []uint64{3, 9, params.GaloisElementForRowSwap()} {
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		rotated, err := ev.ApplyGalois(ct, gk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decrypt(rotated)
		if err != nil {
			t.Fatal(err)
		}
		want := automorphPlain(params, pt, g)
		for i := range want.Coeffs {
			if got.Coeffs[i] != want.Coeffs[i] {
				t.Fatalf("g=%d: coeff %d: got %d want %d", g, i, got.Coeffs[i], want.Coeffs[i])
			}
		}
	}
}

// Batched slot rotation: with t ≡ 1 mod 2n, applying g = 3 permutes the
// slot vector. The decoded result must be a permutation of the input and
// equal to encoding-side automorphism.
func TestGaloisRotatesBatchedSlots(t *testing.T) {
	params := galoisParams(t, 12289)
	prng := sampler.NewXoshiro256(701)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}

	slots := make([]uint64, params.N)
	for i := range slots {
		slots[i] = uint64(i)
	}
	pt, err := be.Encode(slots)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	g := params.GaloisElementForColumnRotation(1)
	gk, err := kg.GenGaloisKey(sk, g)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := ev.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decrypt(rotated)
	if err != nil {
		t.Fatal(err)
	}
	gotSlots, err := be.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	// The rotated slot vector must be a permutation of the input.
	seen := map[uint64]int{}
	for _, v := range gotSlots {
		seen[v]++
	}
	for _, v := range slots {
		if seen[v] != 1 {
			t.Fatalf("slot value %d appears %d times after rotation", v, seen[v])
		}
	}
	// And it must differ from the identity.
	same := true
	for i := range slots {
		if gotSlots[i] != slots[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("rotation was the identity")
	}
}

func TestGaloisValidation(t *testing.T) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(702)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kg.GenGaloisKey(sk, 4); err == nil {
		t.Error("even Galois element should fail")
	}
	ct, _ := enc.EncryptZero()
	if _, err := ev.ApplyGalois(ct, nil); err == nil {
		t.Error("nil key should fail")
	}
	deg2 := &Ciphertext{C: append(ct.Clone().C, params.Context().NewPoly())}
	gk, err := kg.GenGaloisKey(sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.ApplyGalois(deg2, gk); err == nil {
		t.Error("degree-2 input should fail")
	}
}

func TestGaloisElementHelpers(t *testing.T) {
	params := PaperParameters()
	if params.GaloisElementForRowSwap() != 2047 {
		t.Errorf("row swap element %d", params.GaloisElementForRowSwap())
	}
	if params.GaloisElementForColumnRotation(0) != 1 {
		t.Error("rotation by 0 should be identity element")
	}
	if params.GaloisElementForColumnRotation(1) != 3 {
		t.Error("rotation by 1 should be 3")
	}
	// Negative rotations wrap.
	g := params.GaloisElementForColumnRotation(-1)
	if g%2 == 0 || g == 0 {
		t.Errorf("negative rotation element %d invalid", g)
	}
}
