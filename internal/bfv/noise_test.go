package bfv

import (
	"math/rand"
	"testing"

	"reveal/internal/sampler"
)

func noiseSetup(t *testing.T, seed uint64) (*Parameters, *Encryptor, *Decryptor, *Evaluator, *NoiseEstimator) {
	t.Helper()
	params := PaperParameters()
	prng := sampler.NewXoshiro256(seed)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	return params, enc, dec, ev, NewNoiseEstimator(params)
}

func TestFreshNoiseWithinBound(t *testing.T) {
	params, enc, dec, _, ne := noiseSetup(t, 800)
	bound := ne.Fresh()
	if !ne.CanDecrypt(bound) {
		t.Fatal("fresh ciphertexts must decrypt at paper parameters")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64(rng.Intn(int(params.T)))
		}
		ct, err := enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		if err := ne.CheckBound(dec, ct, bound); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAddNoiseWithinBound(t *testing.T) {
	params, enc, dec, ev, ne := noiseSetup(t, 801)
	pa := params.NewPlaintext()
	pa.Coeffs[0] = 3
	ca, _ := enc.Encrypt(pa)
	cb, _ := enc.Encrypt(pa)
	sum := ev.Add(ca, cb)
	bound := ne.Add(ne.Fresh(), ne.Fresh())
	if err := ne.CheckBound(dec, sum, bound); err != nil {
		t.Fatal(err)
	}
	// One addition is guaranteed by the worst-case analysis at these tiny
	// parameters (Δ/2 ≈ 2.6e5, fresh bound ≈ 8.6e4).
	if !ne.CanDecrypt(bound) {
		t.Error("one addition must be guaranteed decryptable")
	}
	// Repeated additions: the bound keeps tracking the measured noise, and
	// — being worst-case — gives up long before actual decryption fails.
	acc := ca
	accBound := ne.Fresh()
	for i := 0; i < 32; i++ {
		acc = ev.Add(acc, cb)
		accBound = ne.Add(accBound, ne.Fresh())
	}
	if err := ne.CheckBound(dec, acc, accBound); err != nil {
		t.Fatal(err)
	}
	if ne.CanDecrypt(accBound) {
		t.Log("note: worst-case bound unexpectedly still under Δ/2")
	}
	// Reality: decryption still works (average-case noise ≪ worst case).
	got, err := dec.Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[0] != (3*33)%params.T {
		t.Errorf("decryption failed after 32 additions: %d", got.Coeffs[0])
	}
}

func TestAddPlainAndMulPlainBounds(t *testing.T) {
	params, enc, dec, ev, ne := noiseSetup(t, 802)
	pa := params.NewPlaintext()
	pa.Coeffs[0] = 7
	ca, _ := enc.Encrypt(pa)

	pb := params.NewPlaintext()
	pb.Coeffs[0] = 5
	added, err := ev.AddPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	if err := ne.CheckBound(dec, added, ne.AddPlain(ne.Fresh())); err != nil {
		t.Fatal(err)
	}

	mulled, err := ev.MulPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	if err := ne.CheckBound(dec, mulled, ne.MulPlain(ne.Fresh())); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetBitsConsistentWithDecryptor(t *testing.T) {
	params, enc, dec, _, ne := noiseSetup(t, 803)
	pt := params.NewPlaintext()
	ct, _ := enc.Encrypt(pt)
	measuredBudget, err := dec.NoiseBudget(ct)
	if err != nil {
		t.Fatal(err)
	}
	boundBudget := ne.BudgetBits(ne.Fresh())
	// The analytic bound is pessimistic: its budget must not exceed the
	// measured one (much), and both are positive here.
	if boundBudget > measuredBudget+1 {
		t.Errorf("analytic budget %.1f exceeds measured %.1f", boundBudget, measuredBudget)
	}
	if measuredBudget <= 0 {
		t.Error("fresh budget should be positive")
	}
}

func TestMeasureNoiseMatchesBudget(t *testing.T) {
	params, enc, dec, _, _ := noiseSetup(t, 804)
	pt := params.NewPlaintext()
	ct, _ := enc.Encrypt(pt)
	norm, err := dec.MeasureNoise(ct)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Sign() <= 0 {
		t.Error("fresh ciphertext noise should be nonzero")
	}
	delta := params.Delta()
	delta.Rsh(delta, 1)
	if norm.Cmp(delta) >= 0 {
		t.Error("fresh noise exceeds Δ/2 — decryption would fail")
	}
}
