package bfv

import (
	"fmt"

	"reveal/internal/modular"
	"reveal/internal/ring"
)

// GaloisKey enables the homomorphic automorphism x → x^g: a key-switching
// key from s(x^g) to s, with the same RNS × base-2^w gadget layout as the
// relinearization key.
type GaloisKey struct {
	G    uint64
	B, A [][]*ring.Poly
}

// GenGaloisKey generates the key for the Galois element g (odd).
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, g uint64) (*GaloisKey, error) {
	ctx := kg.params.Context()
	if g%2 == 0 {
		return nil, fmt.Errorf("bfv: Galois element %d must be odd", g)
	}
	sg := ctx.NewPoly()
	if err := ctx.Automorphism(sk.S, g, sg); err != nil {
		return nil, err
	}
	k := ctx.Level()
	gk := &GaloisKey{G: g, B: make([][]*ring.Poly, k), A: make([][]*ring.Poly, k)}
	for j := 0; j < k; j++ {
		qj := kg.params.Moduli[j]
		digits := relinDigitCount(qj)
		gk.B[j] = make([]*ring.Poly, digits)
		gk.A[j] = make([]*ring.Poly, digits)
		for l := 0; l < digits; l++ {
			a := kg.uniformPoly()
			e := kg.noisePoly()
			b := ctx.NewPoly()
			ctx.MulPoly(a, sk.S, b)
			ctx.Add(b, e, b)
			ctx.Neg(b, b)
			shift := modular.Exp(2, uint64(RelinDigitBits*l), qj)
			for i := 0; i < ctx.N; i++ {
				term := modular.Mul(sg.Coeffs[j][i], shift, qj)
				b.Coeffs[j][i] = modular.Add(b.Coeffs[j][i], term, qj)
			}
			gk.B[j][l], gk.A[j][l] = b, a
		}
	}
	return gk, nil
}

// ApplyGalois homomorphically maps Enc(m(x)) to Enc(m(x^g)) using the
// matching Galois key. The input must be a degree-1 ciphertext.
func (ev *Evaluator) ApplyGalois(ct *Ciphertext, gk *GaloisKey) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("bfv: ApplyGalois requires a degree-1 ciphertext, got %d", ct.Degree())
	}
	if gk == nil || len(gk.B) != ev.params.Context().Level() {
		return nil, fmt.Errorf("bfv: Galois key missing or wrong level")
	}
	ctx := ev.params.Context()

	// σ_g(c0) + σ_g(c1)·s(x^g) = σ_g(c0 + c1·s): apply the automorphism to
	// both halves, then key-switch σ_g(c1) from s(x^g) to s.
	c0g := ctx.NewPoly()
	if err := ctx.Automorphism(ct.C[0], gk.G, c0g); err != nil {
		return nil, err
	}
	c1g := ctx.NewPoly()
	if err := ctx.Automorphism(ct.C[1], gk.G, c1g); err != nil {
		return nil, err
	}

	out0 := c0g
	out1 := ctx.NewPoly()
	tmp := ctx.NewPoly()
	for j := range ev.params.Moduli {
		for l := range gk.B[j] {
			dj := ev.gadgetDigit(c1g, j, l)
			ctx.MulPoly(dj, gk.B[j][l], tmp)
			ctx.Add(out0, tmp, out0)
			ctx.MulPoly(dj, gk.A[j][l], tmp)
			ctx.Add(out1, tmp, out1)
		}
	}
	return &Ciphertext{C: []*ring.Poly{out0, out1}}, nil
}

// GaloisElementForColumnRotation returns the Galois element 3^k mod 2n,
// the standard generator for batched column rotations by k slots.
func (p *Parameters) GaloisElementForColumnRotation(k int) uint64 {
	twoN := uint64(2 * p.N)
	steps := uint64(((k % p.N) + p.N) % p.N)
	return modular.Exp(3, steps, twoN)
}

// GaloisElementForRowSwap returns 2n−1, which swaps the two batching rows.
func (p *Parameters) GaloisElementForRowSwap() uint64 {
	return uint64(2*p.N - 1)
}
