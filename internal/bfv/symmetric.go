package bfv

import (
	"fmt"

	"reveal/internal/modular"
	"reveal/internal/ring"
	"reveal/internal/sampler"
)

// Symmetric-key encryption (SEAL's Encryptor also supports this mode):
//
//	c = ([Δ·m + e − a·s]_Q, a), a ← R_Q uniform, e ← χ.
//
// The Gaussian sampling path — and therefore the RevEAL leakage — is
// identical to the public-key path; only one error polynomial is drawn.

// EncryptSymmetric encrypts pt directly under the secret key.
func (e *Encryptor) EncryptSymmetric(sk *SecretKey, pt *Plaintext) (*Ciphertext, *EncryptionTranscript, error) {
	if err := e.params.Validate(pt); err != nil {
		return nil, nil, err
	}
	ctx := e.params.Context()
	n := ctx.N

	tr := &EncryptionTranscript{}
	// a <- R_Q.
	a := ctx.NewPoly()
	for j, q := range e.params.Moduli {
		copy(a.Coeffs[j], sampler.UniformPoly(e.prng, n, q))
	}
	// e1 <- chi via the vulnerable path (single error polynomial).
	errPoly := ctx.NewPoly()
	tr.E1, tr.Meta1, tr.Branch1 = e.setPolyCoeffsNormal(errPoly)
	// The symmetric transcript has no u or e2; leave them empty but mark
	// the unused slots explicitly for SanityCheckTranscript callers.
	tr.U = make([]int64, n)
	tr.E2 = make([]int64, n)
	tr.Meta2 = make([]sampler.SampleMeta, n)
	tr.Branch2 = make([]sampler.Branch, n)

	// c0 = Δm + e − a·s.
	as := ctx.NewPoly()
	ctx.MulPoly(a, sk.S, as)
	c0 := ctx.NewPoly()
	ctx.Sub(errPoly, as, c0)
	dm := e.scaledPlaintext(pt)
	ctx.Add(c0, dm, c0)

	return &Ciphertext{C: []*ring.Poly{c0, a}}, tr, nil
}

// KeySwitchKey re-encrypts ciphertexts from one secret key to another:
// the RNS × base-2^w gadget encryption of sFrom under sTo.
type KeySwitchKey struct {
	B, A [][]*ring.Poly
}

// GenKeySwitchKey generates the key switching sFrom → sTo.
func (kg *KeyGenerator) GenKeySwitchKey(sFrom, sTo *SecretKey) (*KeySwitchKey, error) {
	if sFrom == nil || sTo == nil {
		return nil, fmt.Errorf("bfv: nil secret key")
	}
	ctx := kg.params.Context()
	k := ctx.Level()
	ksk := &KeySwitchKey{B: make([][]*ring.Poly, k), A: make([][]*ring.Poly, k)}
	for j := 0; j < k; j++ {
		qj := kg.params.Moduli[j]
		digits := relinDigitCount(qj)
		ksk.B[j] = make([]*ring.Poly, digits)
		ksk.A[j] = make([]*ring.Poly, digits)
		for l := 0; l < digits; l++ {
			a := kg.uniformPoly()
			e := kg.noisePoly()
			// b = -(a·sTo + e) + 2^(wl)·g_j·sFrom.
			b := ctx.NewPoly()
			ctx.MulPoly(a, sTo.S, b)
			ctx.Add(b, e, b)
			ctx.Neg(b, b)
			shift := modular.Exp(2, uint64(RelinDigitBits*l), qj)
			for i := 0; i < ctx.N; i++ {
				term := modular.Mul(sFrom.S.Coeffs[j][i], shift, qj)
				b.Coeffs[j][i] = modular.Add(b.Coeffs[j][i], term, qj)
			}
			ksk.B[j][l], ksk.A[j][l] = b, a
		}
	}
	return ksk, nil
}

// SwitchKey maps Enc_sFrom(m) to Enc_sTo(m) using the matching key.
func (ev *Evaluator) SwitchKey(ct *Ciphertext, ksk *KeySwitchKey) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("bfv: SwitchKey requires a degree-1 ciphertext")
	}
	if ksk == nil || len(ksk.B) != ev.params.Context().Level() {
		return nil, fmt.Errorf("bfv: key switch key missing or wrong level")
	}
	ctx := ev.params.Context()
	out0 := ct.C[0].Clone()
	out1 := ctx.NewPoly()
	tmp := ctx.NewPoly()
	for j := range ev.params.Moduli {
		for l := range ksk.B[j] {
			dj := ev.gadgetDigit(ct.C[1], j, l)
			ctx.MulPoly(dj, ksk.B[j][l], tmp)
			ctx.Add(out0, tmp, out0)
			ctx.MulPoly(dj, ksk.A[j][l], tmp)
			ctx.Add(out1, tmp, out1)
		}
	}
	return &Ciphertext{C: []*ring.Poly{out0, out1}}, nil
}
