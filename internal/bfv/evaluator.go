package bfv

import (
	"fmt"
	"math/big"

	"reveal/internal/modular"
	"reveal/internal/ring"
)

// Evaluator performs homomorphic operations on ciphertexts.
type Evaluator struct {
	params *Parameters
	// extCtx is the extended RNS basis used to compute ciphertext tensor
	// products exactly over the integers (product of moduli > 2·n·Q²).
	extCtx *ring.Context
}

// NewEvaluator builds an evaluator, generating the auxiliary basis needed
// for exact ciphertext multiplication.
func NewEvaluator(params *Parameters) (*Evaluator, error) {
	// Need product of ext moduli > 2 n Q² (coefficients of the negacyclic
	// integer tensor lie in (-nQ², nQ²)).
	qBits := params.Q().BitLen()
	needBits := 2*qBits + modularLog2(params.N) + 2
	const extPrimeBits = 50
	count := (needBits + extPrimeBits - 1) / extPrimeBits
	primes, err := modular.GeneratePrimes(extPrimeBits, uint64(2*params.N), count)
	if err != nil {
		return nil, fmt.Errorf("bfv: building extended basis: %w", err)
	}
	extCtx, err := ring.NewContext(params.N, primes)
	if err != nil {
		return nil, fmt.Errorf("bfv: building extended context: %w", err)
	}
	return &Evaluator{params: params, extCtx: extCtx}, nil
}

func modularLog2(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Add returns ct0 + ct1 (component-wise, padding the shorter one).
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) *Ciphertext {
	ctx := ev.params.Context()
	long, short := ct0, ct1
	if len(ct1.C) > len(ct0.C) {
		long, short = ct1, ct0
	}
	out := long.Clone()
	for i := range short.C {
		ctx.Add(out.C[i], short.C[i], out.C[i])
	}
	return out
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) *Ciphertext {
	neg := ev.Neg(ct1)
	return ev.Add(ct0, neg)
}

// Neg returns -ct.
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	ctx := ev.params.Context()
	out := ct.Clone()
	for i := range out.C {
		ctx.Neg(out.C[i], out.C[i])
	}
	return out
}

// AddPlain returns ct + Δ·pt.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.params.Validate(pt); err != nil {
		return nil, err
	}
	out := ct.Clone()
	for j, q := range ev.params.Moduli {
		dj := ev.params.DeltaMod(j)
		for i, m := range pt.Coeffs {
			out.C[0].Coeffs[j][i] = modular.Add(out.C[0].Coeffs[j][i], modular.Mul(dj, m, q), q)
		}
	}
	return out, nil
}

// SubPlain returns ct - Δ·pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.params.Validate(pt); err != nil {
		return nil, err
	}
	out := ct.Clone()
	for j, q := range ev.params.Moduli {
		dj := ev.params.DeltaMod(j)
		for i, m := range pt.Coeffs {
			out.C[0].Coeffs[j][i] = modular.Sub(out.C[0].Coeffs[j][i], modular.Mul(dj, m, q), q)
		}
	}
	return out, nil
}

// MulPlain returns ct · pt (plaintext multiplied in as an integer
// polynomial with coefficients < t; no Δ scaling).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.params.Validate(pt); err != nil {
		return nil, err
	}
	ctx := ev.params.Context()
	ptPoly := ctx.NewPoly()
	for j, q := range ev.params.Moduli {
		for i, m := range pt.Coeffs {
			ptPoly.Coeffs[j][i] = m % q
		}
	}
	out := &Ciphertext{C: make([]*ring.Poly, len(ct.C))}
	for i := range ct.C {
		out.C[i] = ctx.NewPoly()
		ctx.MulPoly(ct.C[i], ptPoly, out.C[i])
	}
	return out, nil
}

// Mul returns the degree-2 ciphertext encrypting m0·m1:
//
//	(d0, d1, d2) = round(t/Q · (c0 ⊗ c1)) mod Q.
//
// The tensor is computed exactly over the integers via the extended basis.
func (ev *Evaluator) Mul(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if len(ct0.C) != 2 || len(ct1.C) != 2 {
		return nil, fmt.Errorf("bfv: Mul requires degree-1 ciphertexts (relinearize first)")
	}
	a0 := ev.liftToExt(ct0.C[0])
	a1 := ev.liftToExt(ct0.C[1])
	b0 := ev.liftToExt(ct1.C[0])
	b1 := ev.liftToExt(ct1.C[1])

	ext := ev.extCtx
	d0 := ext.NewPoly()
	ext.MulPoly(a0, b0, d0)
	d2 := ext.NewPoly()
	ext.MulPoly(a1, b1, d2)
	// d1 = a0 b1 + a1 b0.
	t1 := ext.NewPoly()
	ext.MulPoly(a0, b1, t1)
	t2 := ext.NewPoly()
	ext.MulPoly(a1, b0, t2)
	d1 := ext.NewPoly()
	ext.Add(t1, t2, d1)

	out := &Ciphertext{C: []*ring.Poly{
		ev.scaleDownToBase(d0),
		ev.scaleDownToBase(d1),
		ev.scaleDownToBase(d2),
	}}
	return out, nil
}

// liftToExt maps a base-ring polynomial (coefficients as exact integers in
// [0, Q)) into the extended basis.
func (ev *Evaluator) liftToExt(p *ring.Poly) *ring.Poly {
	ctx := ev.params.Context()
	out := ev.extCtx.NewPoly()
	for i := 0; i < ctx.N; i++ {
		v := ctx.ComposeCRT(p, i)
		ev.extCtx.SetCoeffBig(out, i, v)
	}
	return out
}

// scaleDownToBase interprets p's coefficients as centered integers, scales
// by t/Q with rounding, and reduces into the base ring.
func (ev *Evaluator) scaleDownToBase(p *ring.Poly) *ring.Poly {
	ctx := ev.params.Context()
	ext := ev.extCtx
	out := ctx.NewPoly()
	bigQ := ctx.BigQ()
	bigExtQ := ext.BigQ()
	halfExt := new(big.Int).Rsh(bigExtQ, 1)
	halfQ := new(big.Int).Rsh(bigQ, 1)
	bigT := new(big.Int).SetUint64(ev.params.T)
	num := new(big.Int)
	for i := 0; i < ctx.N; i++ {
		x := ext.ComposeCRT(p, i)
		if x.Cmp(halfExt) > 0 {
			x.Sub(x, bigExtQ) // centered representative
		}
		// round(t·x / Q) with round-half-up toward +inf for the magnitude.
		num.Mul(x, bigT)
		num.Add(num, halfQ)
		// Floor division (big.Int Div is Euclidean for positive modulus).
		num.Div(num, bigQ)
		num.Mod(num, bigQ)
		ctx.SetCoeffBig(out, i, num)
	}
	return out
}

// Relinearize reduces a degree-2 ciphertext back to degree 1 using the RNS
// gadget relinearization key.
func (ev *Evaluator) Relinearize(ct *Ciphertext, rk *RelinKey) (*Ciphertext, error) {
	if len(ct.C) != 3 {
		return nil, fmt.Errorf("bfv: Relinearize requires a degree-2 ciphertext, got degree %d", ct.Degree())
	}
	if rk == nil || len(rk.B) != ev.params.Context().Level() {
		return nil, fmt.Errorf("bfv: relinearization key missing or wrong level")
	}
	ctx := ev.params.Context()
	c0 := ct.C[0].Clone()
	c1 := ct.C[1].Clone()
	c2 := ct.C[2]

	tmp := ctx.NewPoly()
	for j := range ev.params.Moduli {
		for l := range rk.B[j] {
			dj := ev.gadgetDigit(c2, j, l)
			ctx.MulPoly(dj, rk.B[j][l], tmp)
			ctx.Add(c0, tmp, c0)
			ctx.MulPoly(dj, rk.A[j][l], tmp)
			ctx.Add(c1, tmp, c1)
		}
	}
	return &Ciphertext{C: []*ring.Poly{c0, c1}}, nil
}

// gadgetDigit extracts base-2^w digit l of residue j of c2 and lifts it
// (an integer < 2^w) into every residue of a fresh polynomial.
func (ev *Evaluator) gadgetDigit(c2 *ring.Poly, j, l int) *ring.Poly {
	ctx := ev.params.Context()
	d := ctx.NewPoly()
	shift := uint(RelinDigitBits * l)
	mask := uint64(1)<<RelinDigitBits - 1
	for i := 0; i < ctx.N; i++ {
		digit := (c2.Coeffs[j][i] >> shift) & mask
		for jj, q := range ev.params.Moduli {
			d.Coeffs[jj][i] = digit % q
		}
	}
	return d
}

// MulRelin multiplies and immediately relinearizes.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext, rk *RelinKey) (*Ciphertext, error) {
	prod, err := ev.Mul(ct0, ct1)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(prod, rk)
}

// Rerandomize refreshes a ciphertext's randomness by adding a fresh
// encryption of zero: the plaintext is unchanged, but the new ciphertext
// is statistically unlinkable to the old one (at the cost of one fresh
// noise term).
func (ev *Evaluator) Rerandomize(ct *Ciphertext, enc *Encryptor) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("bfv: Rerandomize requires a degree-1 ciphertext")
	}
	zero, err := enc.EncryptZero()
	if err != nil {
		return nil, err
	}
	return ev.Add(ct, zero), nil
}
