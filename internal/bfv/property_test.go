package bfv_test

// Property-based invariant tests for the BFV scheme: encrypt→decrypt is
// the identity while measured noise stays within the estimator's bound,
// and every encryption transcript respects the sampler's clipping bound.

import (
	"math/big"
	"testing"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
	"reveal/internal/testkit"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	params := smallTestParams(t)
	for _, seed := range []uint64{1, 2, 3, 1001, 0xDEAD} {
		prng := sampler.NewXoshiro256(seed)
		kg := bfv.NewKeyGenerator(params, prng)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		if err := bfv.CheckKeyPair(params, sk, pk); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		enc := bfv.NewEncryptor(params, pk, prng)
		dec := bfv.NewDecryptor(params, sk)
		r := testkit.NewRNG(seed ^ 0xF00D)
		for iter := 0; iter < 4; iter++ {
			pt := params.NewPlaintext()
			copy(pt.Coeffs, r.Residues(params.N, params.T))
			ct, err := enc.Encrypt(pt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pt.Coeffs {
				if got.Coeffs[i] != pt.Coeffs[i] {
					t.Fatalf("seed %d iter %d coeff %d: decrypt %d != %d",
						seed, iter, i, got.Coeffs[i], pt.Coeffs[i])
				}
			}
		}
	}
}

// TestFreshNoiseWithinEstimatorBound: the measured infinity norm of the
// decryption noise must stay below the NoiseEstimator's fresh bound, and
// the budget must be positive — otherwise the estimator is lying and every
// downstream "can we still decrypt" decision is unsound.
func TestFreshNoiseWithinEstimatorBound(t *testing.T) {
	params := smallTestParams(t)
	ne := bfv.NewNoiseEstimator(params)
	fresh := ne.Fresh()
	for _, seed := range []uint64{7, 8, 9, 10} {
		prng := sampler.NewXoshiro256(seed)
		kg := bfv.NewKeyGenerator(params, prng)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		enc := bfv.NewEncryptor(params, pk, prng)
		dec := bfv.NewDecryptor(params, sk)
		ct, err := enc.EncryptZero()
		if err != nil {
			t.Fatal(err)
		}
		if err := ne.CheckBound(dec, ct, fresh); err != nil {
			t.Fatalf("seed %d: fresh ciphertext exceeds estimator bound: %v", seed, err)
		}
		budget, err := dec.NoiseBudget(ct)
		if err != nil {
			t.Fatal(err)
		}
		if budget <= 0 {
			t.Fatalf("seed %d: fresh noise budget %.2f bits, want > 0", seed, budget)
		}
		noise, err := dec.MeasureNoise(ct)
		if err != nil {
			t.Fatal(err)
		}
		if noise.Sign() < 0 {
			t.Fatalf("seed %d: negative noise norm %v", seed, noise)
		}
		// Δ/2 is the hard decryption-correctness threshold.
		half := new(big.Int).Rsh(params.Delta(), 1)
		if noise.Cmp(half) >= 0 {
			t.Fatalf("seed %d: noise %v >= Δ/2 = %v", seed, noise, half)
		}
	}
}

// TestTranscriptRespectsClipping: every Gaussian draw recorded in the
// transcript must obey the sampler's ±MaxDeviation clipping and the branch
// labels must match the sign of the stored value — the ground truth the
// paper's V1 classifier is trained on.
func TestTranscriptRespectsClipping(t *testing.T) {
	params := smallTestParams(t)
	prng := sampler.NewXoshiro256(123)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	maxVal := params.NoiseSampler().MaxValue()

	for iter := 0; iter < 10; iter++ {
		pt := params.NewPlaintext()
		_, tr, err := enc.EncryptWithTranscript(pt)
		if err != nil {
			t.Fatal(err)
		}
		if err := bfv.SanityCheckTranscript(params, tr); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range tr.E1 {
			for _, e := range []int64{tr.E1[i], tr.E2[i]} {
				if e < -maxVal || e > maxVal {
					t.Fatalf("iter %d coeff %d: noise %d outside ±%d", iter, i, e, maxVal)
				}
			}
			if u := tr.U[i]; u < -1 || u > 1 {
				t.Fatalf("iter %d coeff %d: ternary sample %d", iter, i, u)
			}
		}
	}
}

// TestHomomorphicAddProperty: Dec(Enc(m0) + Enc(m1)) == m0 + m1 mod t for
// random plaintext pairs.
func TestHomomorphicAddProperty(t *testing.T) {
	params := smallTestParams(t)
	prng := sampler.NewXoshiro256(55)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	dec := bfv.NewDecryptor(params, sk)
	ev, err := bfv.NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	r := testkit.NewRNG(56)
	for iter := 0; iter < 5; iter++ {
		pt0, pt1 := params.NewPlaintext(), params.NewPlaintext()
		copy(pt0.Coeffs, r.Residues(params.N, params.T))
		copy(pt1.Coeffs, r.Residues(params.N, params.T))
		ct0, err := enc.Encrypt(pt0)
		if err != nil {
			t.Fatal(err)
		}
		ct1, err := enc.Encrypt(pt1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decrypt(ev.Add(ct0, ct1))
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Coeffs {
			want := (pt0.Coeffs[i] + pt1.Coeffs[i]) % params.T
			if got.Coeffs[i] != want {
				t.Fatalf("iter %d coeff %d: %d, want %d", iter, i, got.Coeffs[i], want)
			}
		}
	}
}
