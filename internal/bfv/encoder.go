package bfv

import (
	"fmt"

	"reveal/internal/modular"
	"reveal/internal/ring"
)

// ScalarEncoder encodes single integers into the constant coefficient of a
// plaintext, the simplest SEAL-style encoding.
type ScalarEncoder struct {
	params *Parameters
}

// NewScalarEncoder builds a scalar encoder.
func NewScalarEncoder(params *Parameters) *ScalarEncoder {
	return &ScalarEncoder{params: params}
}

// Encode places v mod t into the constant coefficient.
func (e *ScalarEncoder) Encode(v uint64) *Plaintext {
	pt := e.params.NewPlaintext()
	pt.Coeffs[0] = v % e.params.T
	return pt
}

// Decode returns the constant coefficient.
func (e *ScalarEncoder) Decode(pt *Plaintext) uint64 {
	return pt.Coeffs[0]
}

// BinaryEncoder encodes an integer in base 2 across coefficients (SEAL's
// IntegerEncoder with base 2): v = Σ b_i x^i. Homomorphic addition then
// adds the encoded integers as long as coefficients stay below t.
type BinaryEncoder struct {
	params *Parameters
}

// NewBinaryEncoder builds a binary encoder.
func NewBinaryEncoder(params *Parameters) *BinaryEncoder {
	return &BinaryEncoder{params: params}
}

// Encode writes the binary expansion of v into the plaintext coefficients.
func (e *BinaryEncoder) Encode(v uint64) (*Plaintext, error) {
	pt := e.params.NewPlaintext()
	for i := 0; v != 0; i++ {
		if i >= e.params.N {
			return nil, fmt.Errorf("bfv: value too large for degree %d", e.params.N)
		}
		pt.Coeffs[i] = v & 1
		v >>= 1
	}
	return pt, nil
}

// Decode evaluates the plaintext polynomial at x=2 over the centered
// representatives mod t, inverting Encode even after additions.
func (e *BinaryEncoder) Decode(pt *Plaintext) (uint64, error) {
	var acc int64
	pow := int64(1)
	for i := 0; i < len(pt.Coeffs); i++ {
		c := modular.CenteredRep(pt.Coeffs[i], e.params.T)
		acc += c * pow
		if i < 63 {
			pow <<= 1
		} else if pt.Coeffs[i] != 0 {
			return 0, fmt.Errorf("bfv: decoded value overflows uint64")
		}
	}
	if acc < 0 {
		return 0, fmt.Errorf("bfv: decoded negative value %d", acc)
	}
	return uint64(acc), nil
}

// BatchEncoder packs n plaintext slots using the CRT of x^n+1 mod t; it
// requires t prime and ≡ 1 mod 2n (SEAL's BatchEncoder precondition).
type BatchEncoder struct {
	params *Parameters
	ptCtx  *ring.Context
}

// NewBatchEncoder validates the batching precondition and precomputes the
// plaintext-side NTT.
func NewBatchEncoder(params *Parameters) (*BatchEncoder, error) {
	if !modular.IsPrime(params.T) {
		return nil, fmt.Errorf("bfv: batching requires prime t, got %d", params.T)
	}
	if (params.T-1)%uint64(2*params.N) != 0 {
		return nil, fmt.Errorf("bfv: batching requires t ≡ 1 mod 2n, got t=%d n=%d", params.T, params.N)
	}
	ptCtx, err := ring.NewContext(params.N, []uint64{params.T})
	if err != nil {
		return nil, err
	}
	return &BatchEncoder{params: params, ptCtx: ptCtx}, nil
}

// Encode packs the slot values (each < t) into a plaintext polynomial.
func (e *BatchEncoder) Encode(slots []uint64) (*Plaintext, error) {
	if len(slots) != e.params.N {
		return nil, fmt.Errorf("bfv: need exactly %d slots, got %d", e.params.N, len(slots))
	}
	p := e.ptCtx.NewPoly()
	for i, v := range slots {
		if v >= e.params.T {
			return nil, fmt.Errorf("bfv: slot %d value %d not reduced mod t", i, v)
		}
		p.Coeffs[0][i] = v
	}
	// Slots are evaluations; the coefficient form is the inverse NTT.
	p.InNTT = true
	e.ptCtx.INTT(p)
	pt := e.params.NewPlaintext()
	copy(pt.Coeffs, p.Coeffs[0])
	return pt, nil
}

// Decode unpacks a plaintext polynomial into its slot values.
func (e *BatchEncoder) Decode(pt *Plaintext) ([]uint64, error) {
	if err := e.params.Validate(pt); err != nil {
		return nil, err
	}
	p := e.ptCtx.NewPoly()
	copy(p.Coeffs[0], pt.Coeffs)
	e.ptCtx.NTT(p)
	out := make([]uint64, e.params.N)
	copy(out, p.Coeffs[0])
	return out, nil
}
