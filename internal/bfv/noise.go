package bfv

import (
	"fmt"
	"math/big"
)

// Analytic noise tracking: worst-case infinity-norm bounds for the noise
// term v = [c0 + c1·s]_Q − Δ·m of a ciphertext after each supported
// operation. Decryption is guaranteed while ‖v‖∞ < Δ/2. The bounds follow
// the standard BFV analysis with ternary secrets/u and B-bounded errors.

// NoiseBound is an upper bound on ‖v‖∞ for some ciphertext.
type NoiseBound struct {
	Bound *big.Int
}

// NoiseEstimator derives worst-case bounds from a parameter set.
type NoiseEstimator struct {
	params *Parameters
	// B is the clip bound of the error distribution (max |coefficient|).
	B *big.Int
}

// NewNoiseEstimator builds an estimator for the parameter set.
func NewNoiseEstimator(params *Parameters) *NoiseEstimator {
	return &NoiseEstimator{
		params: params,
		B:      big.NewInt(int64(params.MaxDeviation) + 1),
	}
}

// Fresh bounds the noise of a fresh encryption:
//
//	v = −e_pk·u + e1 + e2·s, with u, s ternary and errors ≤ B:
//	‖v‖∞ ≤ B·(1 + 2n).
func (ne *NoiseEstimator) Fresh() *NoiseBound {
	n := big.NewInt(int64(ne.params.N))
	b := new(big.Int).Mul(big.NewInt(2), n)
	b.Add(b, big.NewInt(1))
	b.Mul(b, ne.B)
	// Plus the Δ-rounding slack |Δ·m − (Q/t)·m| ≤ t.
	b.Add(b, new(big.Int).SetUint64(ne.params.T))
	return &NoiseBound{Bound: b}
}

// Add bounds the noise of a homomorphic addition.
func (ne *NoiseEstimator) Add(a, b *NoiseBound) *NoiseBound {
	s := new(big.Int).Add(a.Bound, b.Bound)
	// Δ-rounding slack of the summed plaintext.
	s.Add(s, new(big.Int).SetUint64(ne.params.T))
	return &NoiseBound{Bound: s}
}

// AddPlain bounds the noise after adding a plaintext (only the rounding
// slack grows).
func (ne *NoiseEstimator) AddPlain(a *NoiseBound) *NoiseBound {
	s := new(big.Int).Add(a.Bound, new(big.Int).SetUint64(ne.params.T))
	return &NoiseBound{Bound: s}
}

// MulPlain bounds the noise after multiplying by a plaintext polynomial
// with coefficients < t: ‖v'‖∞ ≤ n·t·‖v‖∞.
func (ne *NoiseEstimator) MulPlain(a *NoiseBound) *NoiseBound {
	s := new(big.Int).Mul(a.Bound, new(big.Int).SetUint64(ne.params.T))
	s.Mul(s, big.NewInt(int64(ne.params.N)))
	return &NoiseBound{Bound: s}
}

// CanDecrypt reports whether the bound still guarantees correct
// decryption (‖v‖∞ < Δ/2).
func (ne *NoiseEstimator) CanDecrypt(nb *NoiseBound) bool {
	half := ne.params.Delta()
	half.Rsh(half, 1)
	return nb.Bound.Cmp(half) < 0
}

// BudgetBits converts a bound to the remaining-noise-budget convention of
// Decryptor.NoiseBudget: log2(Δ/(2·bound)).
func (ne *NoiseEstimator) BudgetBits(nb *NoiseBound) float64 {
	delta := ne.params.Delta()
	return float64(delta.BitLen()-nb.Bound.BitLen()) - 1
}

// MeasureNoise returns the actual ‖v‖∞ of a ciphertext (requires the
// secret key; a test/diagnostic facility mirroring SEAL's invariant-noise
// inspector).
func (d *Decryptor) MeasureNoise(ct *Ciphertext) (*big.Int, error) {
	pt, err := d.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	ctx := d.params.Context()
	phase := d.dotWithSecret(ct)
	bigQ := ctx.BigQ()
	halfQ := new(big.Int).Rsh(bigQ, 1)
	delta := d.params.Delta()

	max := new(big.Int)
	v := new(big.Int)
	dm := new(big.Int)
	for i := 0; i < d.params.N; i++ {
		x := ctx.ComposeCRT(phase, i)
		dm.SetUint64(pt.Coeffs[i])
		dm.Mul(dm, delta)
		v.Sub(x, dm)
		v.Mod(v, bigQ)
		if v.Cmp(halfQ) > 0 {
			v.Sub(bigQ, v)
		}
		if v.Cmp(max) > 0 {
			max.Set(v)
		}
	}
	return max, nil
}

// CheckBound verifies that a measured ciphertext respects an analytic
// bound — the test oracle for the estimator.
func (ne *NoiseEstimator) CheckBound(d *Decryptor, ct *Ciphertext, nb *NoiseBound) error {
	measured, err := d.MeasureNoise(ct)
	if err != nil {
		return err
	}
	if measured.Cmp(nb.Bound) > 0 {
		return fmt.Errorf("bfv: measured noise %v exceeds analytic bound %v", measured, nb.Bound)
	}
	return nil
}
