package bfv_test

// Differential tests: BFV decryption re-derived from first principles with
// the math/big reference (schoolbook negacyclic convolution + direct CRT +
// exact rational rounding), never touching the production NTT path, plus a
// committed golden vector pinning a full seeded encryption transcript.

import (
	"math/big"
	"testing"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
	"reveal/internal/testkit"
)

func smallTestParams(t *testing.T) *bfv.Parameters {
	t.Helper()
	params, err := bfv.NewParameters(64, []uint64{12289}, 16, sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// refDecrypt decrypts ct without the production ring arithmetic: the phase
// c0 + c1*s + ... is computed per modulus with the schoolbook negacyclic
// convolution, composed with the direct CRT formula, and rounded with
// big.Int rationals exactly as round(t*x/Q) mod t.
func refDecrypt(t *testing.T, params *bfv.Parameters, sk *bfv.SecretKey, ct *bfv.Ciphertext) []uint64 {
	t.Helper()
	n := params.N
	moduli := params.Moduli
	// phase[j] = sum_i ct.C[i] * s^i mod q_j, all via the reference.
	phase := make([][]uint64, len(moduli))
	for j, q := range moduli {
		acc := append([]uint64(nil), ct.C[0].Coeffs[j]...)
		sPow := append([]uint64(nil), sk.S.Coeffs[j]...)
		for i := 1; i < len(ct.C); i++ {
			prod, err := testkit.RefNegacyclicMul(ct.C[i].Coeffs[j], sPow, q)
			if err != nil {
				t.Fatal(err)
			}
			for k := range acc {
				acc[k] = testkit.RefAddMod(acc[k], prod[k], q)
			}
			if i+1 < len(ct.C) {
				sPow, err = testkit.RefNegacyclicMul(sPow, sk.S.Coeffs[j], q)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		phase[j] = acc
	}
	bigQ := params.Q()
	bigT := new(big.Int).SetUint64(params.T)
	halfQ := new(big.Int).Rsh(bigQ, 1)
	out := make([]uint64, n)
	residues := make([]uint64, len(moduli))
	num := new(big.Int)
	for i := 0; i < n; i++ {
		for j := range moduli {
			residues[j] = phase[j][i]
		}
		x, err := testkit.RefCRTCompose(residues, moduli)
		if err != nil {
			t.Fatal(err)
		}
		num.Mul(x, bigT)
		num.Add(num, halfQ)
		num.Quo(num, bigQ)
		num.Mod(num, bigT)
		out[i] = num.Uint64()
	}
	return out
}

func TestDecryptDifferential(t *testing.T) {
	params := smallTestParams(t)
	prng := sampler.NewXoshiro256(4242)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	dec := bfv.NewDecryptor(params, sk)

	r := testkit.NewRNG(4243)
	for iter := 0; iter < 5; iter++ {
		pt := params.NewPlaintext()
		copy(pt.Coeffs, r.Residues(params.N, params.T))
		ct, err := enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		want := refDecrypt(t, params, sk, ct)
		for i := range want {
			if got.Coeffs[i] != want[i] {
				t.Fatalf("iter %d coeff %d: Decrypt %d, reference %d (plaintext %d)",
					iter, i, got.Coeffs[i], want[i], pt.Coeffs[i])
			}
			if want[i] != pt.Coeffs[i] {
				t.Fatalf("iter %d coeff %d: reference decrypt %d != plaintext %d",
					iter, i, want[i], pt.Coeffs[i])
			}
		}
	}
}

// TestDecryptDifferentialAfterAdd extends the differential check to a
// degree-1 homomorphic add and a degree-2 product (3-component phase).
func TestDecryptDifferentialAfterOps(t *testing.T) {
	params := smallTestParams(t)
	prng := sampler.NewXoshiro256(99)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	dec := bfv.NewDecryptor(params, sk)
	ev, err := bfv.NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}

	pt0, pt1 := params.NewPlaintext(), params.NewPlaintext()
	pt0.Coeffs[0], pt0.Coeffs[3] = 5, 7
	pt1.Coeffs[0], pt1.Coeffs[1] = 9, 2
	ct0, err := enc.Encrypt(pt0)
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := enc.Encrypt(pt1)
	if err != nil {
		t.Fatal(err)
	}

	sum := ev.Add(ct0, ct1)
	got, err := dec.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	want := refDecrypt(t, params, sk, sum)
	for i := range want {
		if got.Coeffs[i] != want[i] {
			t.Fatalf("add coeff %d: Decrypt %d, reference %d", i, got.Coeffs[i], want[i])
		}
	}
	if want[0] != 14 || want[1] != 2 || want[3] != 7 {
		t.Fatalf("homomorphic add decrypted to %v", want[:4])
	}

	prod, err := ev.Mul(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("product degree %d, want 2", prod.Degree())
	}
	got, err = dec.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	want = refDecrypt(t, params, sk, prod)
	for i := range want {
		if got.Coeffs[i] != want[i] {
			t.Fatalf("mul coeff %d: Decrypt %d, reference %d", i, got.Coeffs[i], want[i])
		}
	}
}

// TestGoldenEncrypt pins a full seeded encryption: transcript noise values,
// branch counts, and ciphertext digests. Any change to the PRNG stream, the
// clipped-normal sampler, or the vulnerable setPolyCoeffsNormal path shows
// up here as a golden diff — exactly the class of silent change the
// side-channel model depends on noticing.
func TestGoldenEncrypt(t *testing.T) {
	params := smallTestParams(t)
	prng := sampler.NewXoshiro256(0xC0FFEE)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)

	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i) % params.T
	}
	ct, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := bfv.SanityCheckTranscript(params, tr); err != nil {
		t.Fatal(err)
	}
	branches := map[string]int{}
	for _, b := range tr.Branch1 {
		branches[b.String()]++
	}
	testkit.Golden(t, "testdata/golden_encrypt.json", map[string]any{
		"n":           params.N,
		"q":           params.Moduli,
		"t":           params.T,
		"u":           tr.U,
		"e1":          tr.E1,
		"e2":          tr.E2,
		"branches_e1": branches,
		"sk_digest":   testkit.Digest(sk.S.Coeffs),
		"c0_digest":   testkit.Digest(ct.C[0].Coeffs),
		"c1_digest":   testkit.Digest(ct.C[1].Coeffs),
	})
}
