package bfv

import (
	"testing"
	"testing/quick"

	"reveal/internal/sampler"
)

func TestScalarEncoder(t *testing.T) {
	params := PaperParameters()
	e := NewScalarEncoder(params)
	pt := e.Encode(300) // 300 mod 256 = 44
	if e.Decode(pt) != 44 {
		t.Errorf("scalar round trip: %d", e.Decode(pt))
	}
}

func TestBinaryEncoderRoundTrip(t *testing.T) {
	params := PaperParameters()
	e := NewBinaryEncoder(params)
	prop := func(v uint32) bool {
		pt, err := e.Encode(uint64(v))
		if err != nil {
			return false
		}
		got, err := e.Decode(pt)
		return err == nil && got == uint64(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryEncoderHomomorphicAdd(t *testing.T) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(400)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBinaryEncoder(params)

	pa, _ := be.Encode(1234)
	pb, _ := be.Encode(5678)
	ca, _ := enc.Encrypt(pa)
	cb, _ := enc.Encrypt(pb)
	got, err := dec.Decrypt(ev.Add(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	v, err := be.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6912 {
		t.Errorf("homomorphic 1234+5678=%d want 6912", v)
	}
}

func TestBatchEncoderPreconditions(t *testing.T) {
	// t=256 is not prime.
	if _, err := NewBatchEncoder(PaperParameters()); err == nil {
		t.Error("batching with composite t should fail")
	}
	// t=12289 = 6·2048 + 1 is prime and ≡ 1 mod 2048.
	params, err := NewParameters(1024, []uint64{PaperQ}, 12289,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	slots := make([]uint64, params.N)
	for i := range slots {
		slots[i] = uint64(i*i) % params.T
	}
	pt, err := be.Encode(slots)
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Decode(pt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slots {
		if got[i] != slots[i] {
			t.Fatalf("slot %d: %d want %d", i, got[i], slots[i])
		}
	}
	if _, err := be.Encode(slots[:5]); err == nil {
		t.Error("short slot vector should fail")
	}
	slots[0] = params.T
	if _, err := be.Encode(slots); err == nil {
		t.Error("unreduced slot should fail")
	}
}

// Batching makes homomorphic addition act slot-wise.
func TestBatchEncoderSlotwiseAdd(t *testing.T) {
	params, err := NewParameters(1024, []uint64{PaperQ}, 12289,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewXoshiro256(401)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	be, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}

	a := make([]uint64, params.N)
	b := make([]uint64, params.N)
	for i := range a {
		a[i] = uint64(3*i) % params.T
		b[i] = uint64(7*i+1) % params.T
	}
	pa, _ := be.Encode(a)
	pb, _ := be.Encode(b)
	ca, _ := enc.Encrypt(pa)
	cb, _ := enc.Encrypt(pb)
	sum, err := dec.Decrypt(ev.Add(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Decode(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != (a[i]+b[i])%params.T {
			t.Fatalf("slot %d: %d want %d", i, got[i], (a[i]+b[i])%params.T)
		}
	}
}

func TestBinaryEncoderOverflow(t *testing.T) {
	// Tiny ring to force the "value too large" path: degree 4 ring needs a
	// prime ≡ 1 mod 8.
	params, err := NewParameters(4, []uint64{17}, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBinaryEncoder(params)
	if _, err := be.Encode(255); err == nil { // needs 8 coefficients
		t.Error("value exceeding degree should fail")
	}
}
