package bfv

import (
	"fmt"
	"math/big"

	"reveal/internal/ring"
)

// Decryptor recovers plaintexts: m = [round(t/Q · [c0 + c1·s + c2·s² ...]_Q)]_t.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor builds a decryptor for the given secret key.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// dotWithSecret returns [sum_i c_i s^i]_Q in coefficient representation.
func (d *Decryptor) dotWithSecret(ct *Ciphertext) *ring.Poly {
	ctx := d.params.Context()
	acc := ct.C[0].Clone()
	sPow := d.sk.S.Clone()
	tmp := ctx.NewPoly()
	for i := 1; i < len(ct.C); i++ {
		ctx.MulPoly(ct.C[i], sPow, tmp)
		ctx.Add(acc, tmp, acc)
		if i+1 < len(ct.C) {
			next := ctx.NewPoly()
			ctx.MulPoly(sPow, d.sk.S, next)
			sPow = next
		}
	}
	return acc
}

// Decrypt decrypts ct.
func (d *Decryptor) Decrypt(ct *Ciphertext) (*Plaintext, error) {
	if ct == nil || len(ct.C) < 2 {
		return nil, fmt.Errorf("bfv: ciphertext must have at least 2 components")
	}
	ctx := d.params.Context()
	phase := d.dotWithSecret(ct)

	pt := d.params.NewPlaintext()
	bigQ := ctx.BigQ()
	bigT := new(big.Int).SetUint64(d.params.T)
	halfQ := new(big.Int).Rsh(bigQ, 1)
	num := new(big.Int)
	for i := 0; i < d.params.N; i++ {
		x := ctx.ComposeCRT(phase, i)
		// round(t·x / Q) mod t, with round-half-up.
		num.Mul(x, bigT)
		num.Add(num, halfQ)
		num.Quo(num, bigQ)
		num.Mod(num, bigT)
		pt.Coeffs[i] = num.Uint64()
	}
	return pt, nil
}

// NoiseBudget returns the remaining noise budget in bits: log2(Δ / (2·‖v‖∞))
// where v = [c0 + c1 s + …]_Q − Δ·m (centered). A non-positive budget means
// decryption is no longer guaranteed correct.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) (float64, error) {
	pt, err := d.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	ctx := d.params.Context()
	phase := d.dotWithSecret(ct)
	bigQ := ctx.BigQ()
	halfQ := new(big.Int).Rsh(bigQ, 1)
	delta := d.params.Delta()

	maxNoise := new(big.Int)
	v := new(big.Int)
	dm := new(big.Int)
	for i := 0; i < d.params.N; i++ {
		x := ctx.ComposeCRT(phase, i)
		dm.SetUint64(pt.Coeffs[i])
		dm.Mul(dm, delta)
		v.Sub(x, dm)
		v.Mod(v, bigQ)
		if v.Cmp(halfQ) > 0 {
			v.Sub(bigQ, v)
		}
		if v.Cmp(maxNoise) > 0 {
			maxNoise.Set(v)
		}
	}
	if maxNoise.Sign() == 0 {
		maxNoise.SetUint64(1)
	}
	// budget = log2(delta) - 1 - log2(maxNoise)
	budget := float64(delta.BitLen()-maxNoise.BitLen()) - 1
	return budget, nil
}
