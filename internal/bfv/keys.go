package bfv

import (
	"fmt"

	"reveal/internal/modular"
	"reveal/internal/ring"
	"reveal/internal/sampler"
)

// SecretKey holds the ternary secret polynomial s (coefficient domain).
type SecretKey struct {
	S *ring.Poly
	// Signed is the centered form of s, kept for analysis and tests.
	Signed []int64
}

// PublicKey is the BFV public key pk = (p0, p1) with
// p0 = [-(a·s + e)]_Q and p1 = a.
type PublicKey struct {
	P0, P1 *ring.Poly
}

// RelinDigitBits is the width of the base-2^w digit decomposition used
// inside each RNS residue by the relinearization gadget. Smaller digits
// mean more keys but less noise growth.
const RelinDigitBits = 16

// RelinKey supports relinearization of degree-2 ciphertexts using an RNS ×
// base-2^w gadget: for residue j and digit l,
//
//	B[j][l] = [-(A[j][l]·s + e) + 2^(w·l)·g_j·s²]_Q
//
// where g_j = (Q/q_j)·((Q/q_j)^-1 mod q_j) is the CRT gadget (≡1 mod q_j,
// ≡0 elsewhere).
type RelinKey struct {
	B, A [][]*ring.Poly
}

// KeyGenerator derives keys from a parameter set and a PRNG.
type KeyGenerator struct {
	params *Parameters
	prng   sampler.PRNG
}

// NewKeyGenerator creates a key generator. The PRNG must not be shared with
// an encryptor mid-operation if reproducibility matters.
func NewKeyGenerator(params *Parameters, prng sampler.PRNG) *KeyGenerator {
	return &KeyGenerator{params: params, prng: prng}
}

// GenSecretKey samples s uniformly from R_2 (ternary), as SEAL does.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	ctx := kg.params.Context()
	signed := sampler.TernaryPoly(kg.prng, ctx.N)
	s := ctx.NewPoly()
	if err := ctx.SetSigned(s, signed); err != nil {
		panic(err) // length is correct by construction
	}
	return &SecretKey{S: s, Signed: signed}
}

// GenPublicKey computes pk = ([-(a·s+e)]_Q, a) with a ← R_Q uniform and
// e ← χ (the clipped normal distribution).
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.params.Context()
	a := kg.uniformPoly()
	e := kg.noisePoly()

	// p0 = -(a*s + e)
	as := ctx.NewPoly()
	ctx.MulPoly(a, sk.S, as)
	ctx.Add(as, e, as)
	p0 := ctx.NewPoly()
	ctx.Neg(as, p0)
	return &PublicKey{P0: p0, P1: a}
}

// GenRelinKey computes the RNS × base-2^w gadget relinearization key for s².
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) (*RelinKey, error) {
	ctx := kg.params.Context()
	k := ctx.Level()
	rk := &RelinKey{B: make([][]*ring.Poly, k), A: make([][]*ring.Poly, k)}

	// s² in coefficient domain.
	s2 := ctx.NewPoly()
	ctx.MulPoly(sk.S, sk.S, s2)

	for j := 0; j < k; j++ {
		qj := kg.params.Moduli[j]
		digits := relinDigitCount(qj)
		rk.B[j] = make([]*ring.Poly, digits)
		rk.A[j] = make([]*ring.Poly, digits)
		for l := 0; l < digits; l++ {
			a := kg.uniformPoly()
			e := kg.noisePoly()
			// b = -(a*s + e) + 2^(w·l)·g_j·s².
			b := ctx.NewPoly()
			ctx.MulPoly(a, sk.S, b)
			ctx.Add(b, e, b)
			ctx.Neg(b, b)
			// 2^(w·l)·g_j·s² in RNS: scale s² by 2^(wl) on residue j only.
			shift := modular.Exp(2, uint64(RelinDigitBits*l), qj)
			for i := 0; i < ctx.N; i++ {
				term := modular.Mul(s2.Coeffs[j][i], shift, qj)
				b.Coeffs[j][i] = modular.Add(b.Coeffs[j][i], term, qj)
			}
			rk.B[j][l], rk.A[j][l] = b, a
		}
	}
	return rk, nil
}

// relinDigitCount returns the number of base-2^w digits needed for q.
func relinDigitCount(q uint64) int {
	bits := 0
	for v := q; v > 0; v >>= 1 {
		bits++
	}
	return (bits + RelinDigitBits - 1) / RelinDigitBits
}

func (kg *KeyGenerator) uniformPoly() *ring.Poly {
	ctx := kg.params.Context()
	p := ctx.NewPoly()
	for j, q := range kg.params.Moduli {
		copy(p.Coeffs[j], sampler.UniformPoly(kg.prng, ctx.N, q))
	}
	return p
}

func (kg *KeyGenerator) noisePoly() *ring.Poly {
	ctx := kg.params.Context()
	cn := kg.params.NoiseSampler()
	vals, _ := cn.SamplePoly(kg.prng, ctx.N)
	p := ctx.NewPoly()
	if err := ctx.SetSigned(p, vals); err != nil {
		panic(err)
	}
	return p
}

// CheckKeyPair verifies pk is consistent with sk: p0 + p1·s must be a
// small-norm polynomial (the key-generation error).
func CheckKeyPair(params *Parameters, sk *SecretKey, pk *PublicKey) error {
	ctx := params.Context()
	t := ctx.NewPoly()
	ctx.MulPoly(pk.P1, sk.S, t)
	ctx.Add(pk.P0, t, t)
	norm := ctx.InfNormCentered(t)
	if norm > uint64(params.MaxDeviation)+1 {
		return fmt.Errorf("bfv: key pair inconsistent: residual norm %d", norm)
	}
	return nil
}
