package bfv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reveal/internal/sampler"
)

func paperSetup(t *testing.T, seed uint64) (*Parameters, *SecretKey, *PublicKey, *Encryptor, *Decryptor) {
	t.Helper()
	params := PaperParameters()
	prng := sampler.NewXoshiro256(seed)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	return params, sk, pk, enc, dec
}

func TestPaperParameters(t *testing.T) {
	p := PaperParameters()
	if p.N != 1024 || p.Moduli[0] != 132120577 || p.T != 256 {
		t.Fatalf("paper parameters wrong: %+v", p)
	}
	if p.Delta().Uint64() != 132120577/256 {
		t.Errorf("Delta=%v want %v", p.Delta(), 132120577/256)
	}
	if p.Sigma < 3.19 || p.Sigma > 3.20 {
		t.Errorf("sigma=%v want ≈3.19", p.Sigma)
	}
}

func TestNewParametersValidation(t *testing.T) {
	if _, err := NewParameters(1024, []uint64{PaperQ}, 1, 3.19, 40); err == nil {
		t.Error("t=1 should fail")
	}
	if _, err := NewParameters(1024, []uint64{PaperQ}, PaperQ, 3.19, 40); err == nil {
		t.Error("t >= Q should fail")
	}
	if _, err := NewParameters(1024, []uint64{PaperQ}, 256, 0, 40); err == nil {
		t.Error("sigma=0 should fail")
	}
	if _, err := NewParameters(1024, []uint64{PaperQ}, 256, 3.19, 1); err == nil {
		t.Error("maxDev < sigma should fail")
	}
	if _, err := NewParameters(1000, []uint64{PaperQ}, 256, 3.19, 40); err == nil {
		t.Error("non-power-of-two n should fail")
	}
}

func TestDefaultParameters(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		p, err := DefaultParameters(n, 256)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.N != n {
			t.Errorf("n=%d: got %d", n, p.N)
		}
	}
	if _, err := DefaultParameters(512, 256); err == nil {
		t.Error("unsupported degree should fail")
	}
	// The degree-1024 default must be exactly the paper configuration.
	p, err := DefaultParameters(1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Moduli[0] != PaperQ {
		t.Errorf("default 1024 modulus %d, want %d", p.Moduli[0], PaperQ)
	}
}

func TestKeyPairConsistency(t *testing.T) {
	params, sk, pk, _, _ := paperSetup(t, 101)
	if err := CheckKeyPair(params, sk, pk); err != nil {
		t.Fatal(err)
	}
	// Corrupt the public key; the check must fail.
	bad := &PublicKey{P0: pk.P0.Clone(), P1: pk.P1.Clone()}
	bad.P0.Coeffs[0][0] = (bad.P0.Coeffs[0][0] + 12345) % PaperQ
	if err := CheckKeyPair(params, sk, bad); err == nil {
		t.Error("corrupted key pair should fail the check")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 102)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64(rng.Intn(int(params.T)))
		}
		ct, err := enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pt.Coeffs {
			if got.Coeffs[i] != pt.Coeffs[i] {
				t.Fatalf("trial %d: coeff %d decrypted to %d want %d",
					trial, i, got.Coeffs[i], pt.Coeffs[i])
			}
		}
	}
}

func TestEncryptValidation(t *testing.T) {
	params, _, _, enc, _ := paperSetup(t, 103)
	bad := params.NewPlaintext()
	bad.Coeffs[0] = params.T // not reduced
	if _, err := enc.Encrypt(bad); err == nil {
		t.Error("unreduced plaintext should fail")
	}
	if _, err := enc.Encrypt(&Plaintext{Coeffs: make([]uint64, 5)}); err == nil {
		t.Error("wrong-length plaintext should fail")
	}
}

func TestTranscriptConsistency(t *testing.T) {
	params, _, _, enc, _ := paperSetup(t, 104)
	pt := params.NewPlaintext()
	pt.Coeffs[0] = 7
	_, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := SanityCheckTranscript(params, tr); err != nil {
		t.Fatal(err)
	}
	// Gaussian magnitudes must respect the clip bound and hit all branches
	// over a full polynomial with overwhelming probability.
	branches := map[sampler.Branch]int{}
	for _, b := range tr.Branch1 {
		branches[b]++
	}
	for _, b := range []sampler.Branch{sampler.BranchZero, sampler.BranchPositive, sampler.BranchNegative} {
		if branches[b] == 0 {
			t.Errorf("branch %v never taken across 1024 coefficients (p < 1e-30)", b)
		}
	}
	// Corrupted transcript must be rejected.
	tr.E1[0] = 1000
	if err := SanityCheckTranscript(params, tr); err == nil {
		t.Error("corrupted transcript should fail sanity check")
	}
}

// The ciphertext equation from the paper: with the transcript one can
// reconstruct the ciphertext exactly — this is the equation the attack
// inverts (Eq. 1-3).
func TestCiphertextEquationHolds(t *testing.T) {
	params, _, pk, enc, _ := paperSetup(t, 105)
	ctx := params.Context()
	pt := params.NewPlaintext()
	pt.Coeffs[3] = 42
	ct, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		t.Fatal(err)
	}
	u := ctx.NewPoly()
	if err := ctx.SetSigned(u, tr.U); err != nil {
		t.Fatal(err)
	}
	e1 := ctx.NewPoly()
	if err := ctx.SetSigned(e1, tr.E1); err != nil {
		t.Fatal(err)
	}
	e2 := ctx.NewPoly()
	if err := ctx.SetSigned(e2, tr.E2); err != nil {
		t.Fatal(err)
	}
	// c0 = Δm + p0 u + e1.
	c0 := ctx.NewPoly()
	ctx.MulPoly(pk.P0, u, c0)
	ctx.Add(c0, e1, c0)
	dm := ctx.NewPoly()
	for j := range params.Moduli {
		dj := params.DeltaMod(j)
		for i, m := range pt.Coeffs {
			dm.Coeffs[j][i] = dj * m % params.Moduli[j]
		}
	}
	ctx.Add(c0, dm, c0)
	if !c0.Equal(ct.C[0]) {
		t.Error("c0 does not satisfy the encryption equation")
	}
	// c1 = p1 u + e2.
	c1 := ctx.NewPoly()
	ctx.MulPoly(pk.P1, u, c1)
	ctx.Add(c1, e2, c1)
	if !c1.Equal(ct.C[1]) {
		t.Error("c1 does not satisfy the encryption equation")
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 106)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	pa := params.NewPlaintext()
	pb := params.NewPlaintext()
	pa.Coeffs[0], pa.Coeffs[5] = 100, 37
	pb.Coeffs[0], pb.Coeffs[5] = 200, 250
	ca, _ := enc.Encrypt(pa)
	cb, _ := enc.Encrypt(pb)

	sum, err := dec.Decrypt(ev.Add(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coeffs[0] != (100+200)%256 || sum.Coeffs[5] != (37+250)%256 {
		t.Errorf("homomorphic add wrong: %d %d", sum.Coeffs[0], sum.Coeffs[5])
	}
	diff, err := dec.Decrypt(ev.Sub(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	if diff.Coeffs[0] != (100-200+256)%256 {
		t.Errorf("homomorphic sub wrong: %d", diff.Coeffs[0])
	}
	neg, err := dec.Decrypt(ev.Neg(ca))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Coeffs[0] != (256-100)%256 {
		t.Errorf("homomorphic neg wrong: %d", neg.Coeffs[0])
	}
}

func TestHomomorphicPlainOps(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 107)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	pa := params.NewPlaintext()
	pa.Coeffs[0] = 11
	ca, _ := enc.Encrypt(pa)

	pb := params.NewPlaintext()
	pb.Coeffs[0] = 5

	added, err := ev.AddPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dec.Decrypt(added)
	if got.Coeffs[0] != 16 {
		t.Errorf("AddPlain: %d want 16", got.Coeffs[0])
	}
	subbed, err := ev.SubPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = dec.Decrypt(subbed)
	if got.Coeffs[0] != 6 {
		t.Errorf("SubPlain: %d want 6", got.Coeffs[0])
	}
	mulled, err := ev.MulPlain(ca, pb)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = dec.Decrypt(mulled)
	if got.Coeffs[0] != 55 {
		t.Errorf("MulPlain: %d want 55", got.Coeffs[0])
	}
}

// Ciphertext-ciphertext multiplication needs a larger parameter set than
// the paper's n=1024 (which has no multiplicative budget, as in SEAL).
func TestHomomorphicMulRelin(t *testing.T) {
	params, err := DefaultParameters(2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewXoshiro256(200)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rk, err := kg.GenRelinKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}

	pa := params.NewPlaintext()
	pb := params.NewPlaintext()
	pa.Coeffs[0] = 3
	pb.Coeffs[0] = 5
	ca, _ := enc.Encrypt(pa)
	cb, _ := enc.Encrypt(pb)

	prod, err := ev.Mul(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("product degree %d want 2", prod.Degree())
	}
	// Decrypting the degree-2 ciphertext directly must already work.
	got, err := dec.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[0] != 15 {
		t.Errorf("degree-2 decrypt: %d want 15", got.Coeffs[0])
	}
	// After relinearization too.
	relin, err := ev.Relinearize(prod, rk)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Degree() != 1 {
		t.Fatalf("relinearized degree %d want 1", relin.Degree())
	}
	got, err = dec.Decrypt(relin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[0] != 15 {
		t.Errorf("relinearized decrypt: %d want 15", got.Coeffs[0])
	}
	budget, err := dec.NoiseBudget(relin)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Errorf("noise budget exhausted after one mul: %v bits", budget)
	}
	// MulRelin is the composition.
	mr, err := ev.MulRelin(ca, cb, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = dec.Decrypt(mr)
	if got.Coeffs[0] != 15 {
		t.Errorf("MulRelin decrypt: %d want 15", got.Coeffs[0])
	}
	// Polynomial (not just constant) products must be correct: (1+x)(1+x) =
	// 1 + 2x + x².
	p1 := params.NewPlaintext()
	p1.Coeffs[0], p1.Coeffs[1] = 1, 1
	c1, _ := enc.Encrypt(p1)
	sq, err := ev.MulRelin(c1, c1, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = dec.Decrypt(sq)
	if got.Coeffs[0] != 1 || got.Coeffs[1] != 2 || got.Coeffs[2] != 1 {
		t.Errorf("(1+x)² decrypted to %v...", got.Coeffs[:3])
	}
}

func TestMulInputValidation(t *testing.T) {
	params, _, _, enc, _ := paperSetup(t, 108)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := enc.EncryptZero()
	deg2 := &Ciphertext{C: append(ct.Clone().C, params.Context().NewPoly())}
	if _, err := ev.Mul(deg2, ct); err == nil {
		t.Error("Mul with degree-2 input should fail")
	}
	if _, err := ev.Relinearize(ct, nil); err == nil {
		t.Error("Relinearize of degree-1 ciphertext should fail")
	}
}

func TestNoiseBudgetFreshAndDrained(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 109)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := enc.EncryptZero()
	fresh, err := dec.NoiseBudget(ct)
	if err != nil {
		t.Fatal(err)
	}
	if fresh <= 0 {
		t.Fatalf("fresh ciphertext has no budget: %v", fresh)
	}
	// Repeated additions shrink the budget monotonically (weakly).
	acc := ct
	for i := 0; i < 64; i++ {
		acc = ev.Add(acc, ct)
	}
	after, err := dec.NoiseBudget(acc)
	if err != nil {
		t.Fatal(err)
	}
	if after > fresh {
		t.Errorf("budget grew after additions: %v -> %v", fresh, after)
	}
}

func TestDecryptValidation(t *testing.T) {
	_, sk, _, _, _ := paperSetup(t, 110)
	dec := NewDecryptor(PaperParameters(), sk)
	if _, err := dec.Decrypt(nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
	if _, err := dec.Decrypt(&Ciphertext{}); err == nil {
		t.Error("empty ciphertext should fail")
	}
}

// Homomorphic addition is correct for random plaintexts (property test).
func TestHomomorphicAddQuick(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 111)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint8, idx uint16) bool {
		i := int(idx) % params.N
		pa := params.NewPlaintext()
		pb := params.NewPlaintext()
		pa.Coeffs[i] = uint64(a)
		pb.Coeffs[i] = uint64(b)
		ca, err := enc.Encrypt(pa)
		if err != nil {
			return false
		}
		cb, err := enc.Encrypt(pb)
		if err != nil {
			return false
		}
		got, err := dec.Decrypt(ev.Add(ca, cb))
		if err != nil {
			return false
		}
		return got.Coeffs[i] == (uint64(a)+uint64(b))%params.T
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt1024(b *testing.B) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(300)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	pt.Coeffs[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1024(b *testing.B) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(301)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(params, pk, prng)
	dec := NewDecryptor(params, sk)
	ct, _ := enc.EncryptZero()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRerandomize(t *testing.T) {
	params, _, _, enc, dec := paperSetup(t, 112)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	pt := params.NewPlaintext()
	pt.Coeffs[0] = 99
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ev.Rerandomize(ct, enc)
	if err != nil {
		t.Fatal(err)
	}
	// Same plaintext, different ciphertext.
	got, err := dec.Decrypt(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[0] != 99 {
		t.Errorf("rerandomized decrypt: %d", got.Coeffs[0])
	}
	if fresh.C[0].Equal(ct.C[0]) || fresh.C[1].Equal(ct.C[1]) {
		t.Error("rerandomization did not change the ciphertext")
	}
	deg2 := &Ciphertext{C: append(ct.Clone().C, params.Context().NewPoly())}
	if _, err := ev.Rerandomize(deg2, enc); err == nil {
		t.Error("degree-2 input should fail")
	}
}
