package bfv

import (
	"fmt"

	"reveal/internal/modular"
	"reveal/internal/ring"
	"reveal/internal/sampler"
)

// EncryptionTranscript records the secret randomness consumed by one
// encryption. The side-channel pipeline uses it as ground truth for
// template profiling and for verifying recovered values; it is never used
// by the attack itself.
type EncryptionTranscript struct {
	// U is the ternary encryption sample u (centered).
	U []int64
	// E1, E2 are the Gaussian error polynomials (centered), E1 entering c0
	// and E2 entering c1.
	E1, E2 []int64
	// Meta1, Meta2 describe the time-variant part of each Gaussian draw.
	Meta1, Meta2 []sampler.SampleMeta
	// Branch1, Branch2 are the sign-assignment branches taken per
	// coefficient (the paper's V1 ground truth).
	Branch1, Branch2 []sampler.Branch
}

// Encryptor implements SEAL v3.2's BFV encryption:
//
//	(c0, c1) = ([Δ·m + p0·u + e1]_Q, [p1·u + e2]_Q)
//
// with u ← R_2 and e1, e2 ← χ via the vulnerable set_poly_coeffs_normal.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	prng   sampler.PRNG
	noise  *sampler.ClippedNormal
}

// NewEncryptor builds an encryptor for the given public key and PRNG.
func NewEncryptor(params *Parameters, pk *PublicKey, prng sampler.PRNG) *Encryptor {
	return &Encryptor{params: params, pk: pk, prng: prng, noise: params.NoiseSampler()}
}

// Encrypt encrypts pt, discarding the transcript.
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	ct, _, err := e.EncryptWithTranscript(pt)
	return ct, err
}

// EncryptWithTranscript encrypts pt and returns the randomness transcript.
func (e *Encryptor) EncryptWithTranscript(pt *Plaintext) (*Ciphertext, *EncryptionTranscript, error) {
	if err := e.params.Validate(pt); err != nil {
		return nil, nil, err
	}
	ctx := e.params.Context()
	n := ctx.N

	tr := &EncryptionTranscript{}

	// u <- R_2.
	tr.U = sampler.TernaryPoly(e.prng, n)
	u := ctx.NewPoly()
	if err := ctx.SetSigned(u, tr.U); err != nil {
		return nil, nil, err
	}

	// e1, e2 <- chi via the vulnerable code path.
	e1 := ctx.NewPoly()
	tr.E1, tr.Meta1, tr.Branch1 = e.setPolyCoeffsNormal(e1)
	e2 := ctx.NewPoly()
	tr.E2, tr.Meta2, tr.Branch2 = e.setPolyCoeffsNormal(e2)

	// c0 = Δ·m + p0·u + e1, c1 = p1·u + e2.
	c0 := ctx.NewPoly()
	ctx.MulPoly(e.pk.P0, u, c0)
	ctx.Add(c0, e1, c0)
	deltaM := e.scaledPlaintext(pt)
	ctx.Add(c0, deltaM, c0)

	c1 := ctx.NewPoly()
	ctx.MulPoly(e.pk.P1, u, c1)
	ctx.Add(c1, e2, c1)

	return &Ciphertext{C: []*ring.Poly{c0, c1}}, tr, nil
}

// setPolyCoeffsNormal reproduces SEAL v3.2's Encryptor::set_poly_coeffs_normal
// (Fig. 2 of the paper): for each coefficient, draw from the clipped normal
// distribution, then assign via the sign-dependent if/elseif/else — the
// three vulnerabilities V1 (branch), V2 (value store), V3 (negation) live
// here.
func (e *Encryptor) setPolyCoeffsNormal(poly *ring.Poly) ([]int64, []sampler.SampleMeta, []sampler.Branch) {
	ctx := e.params.Context()
	n := ctx.N
	values := make([]int64, n)
	metas := make([]sampler.SampleMeta, n)
	branches := make([]sampler.Branch, n)
	for i := 0; i < n; i++ {
		noise, meta := e.noise.Sample(e.prng)
		values[i], metas[i] = noise, meta
		residues, br := sampler.AssignSigned(noise, e.params.Moduli)
		branches[i] = br
		for j := range e.params.Moduli {
			poly.Coeffs[j][i] = residues[j]
		}
	}
	poly.InNTT = false
	return values, metas, branches
}

// scaledPlaintext returns Δ·m as a ring element.
func (e *Encryptor) scaledPlaintext(pt *Plaintext) *ring.Poly {
	ctx := e.params.Context()
	p := ctx.NewPoly()
	for j, q := range e.params.Moduli {
		dj := e.params.DeltaMod(j)
		for i, m := range pt.Coeffs {
			p.Coeffs[j][i] = modular.Mul(dj, m, q)
		}
	}
	return p
}

// EncryptZero produces an encryption of zero, used by tests and the
// rerandomization gadget.
func (e *Encryptor) EncryptZero() (*Ciphertext, error) {
	pt := e.params.NewPlaintext()
	return e.Encrypt(pt)
}

// SanityCheckTranscript verifies internal consistency of a transcript
// against the parameter set (bounds and branch agreement).
func SanityCheckTranscript(params *Parameters, tr *EncryptionTranscript) error {
	if len(tr.E1) != params.N || len(tr.E2) != params.N || len(tr.U) != params.N {
		return fmt.Errorf("bfv: transcript length mismatch")
	}
	max := int64(params.MaxDeviation) + 1
	check := func(vals []int64, branches []sampler.Branch, name string) error {
		for i, v := range vals {
			if v > max || v < -max {
				return fmt.Errorf("bfv: %s[%d]=%d exceeds clip bound", name, i, v)
			}
			var want sampler.Branch
			switch {
			case v > 0:
				want = sampler.BranchPositive
			case v < 0:
				want = sampler.BranchNegative
			default:
				want = sampler.BranchZero
			}
			if branches[i] != want {
				return fmt.Errorf("bfv: %s[%d] branch %v inconsistent with value %d", name, i, branches[i], v)
			}
		}
		return nil
	}
	if err := check(tr.E1, tr.Branch1, "e1"); err != nil {
		return err
	}
	if err := check(tr.E2, tr.Branch2, "e2"); err != nil {
		return err
	}
	for i, v := range tr.U {
		if v < -1 || v > 1 {
			return fmt.Errorf("bfv: u[%d]=%d not ternary", i, v)
		}
	}
	return nil
}
