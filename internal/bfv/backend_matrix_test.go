package bfv

// Cross-backend differential matrix at the scheme level: the full keygen →
// encrypt → decrypt pipeline must produce byte-identical ciphertexts on
// every ring backend (same PRNG seed), and decryption must round-trip on
// every ladder parameter set. This is what keeps the replay-determinism
// digest independent of the backend choice.

import (
	"fmt"
	"testing"

	"reveal/internal/ring"
	"reveal/internal/sampler"
)

func matrixSetup(t *testing.T, backend string, n int, seed uint64) (*Parameters, *Encryptor, *Decryptor) {
	t.Helper()
	rp, err := ring.LadderParams(n)
	if err != nil {
		t.Fatal(err)
	}
	params, err := NewParametersOn(backend, n, rp.Moduli, 256,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatalf("NewParametersOn(%q, n=%d): %v", backend, n, err)
	}
	prng := sampler.NewXoshiro256(seed)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	return params, NewEncryptor(params, pk, prng), NewDecryptor(params, sk)
}

func TestEncryptDecryptLadderMatrix(t *testing.T) {
	for _, n := range ring.LadderDegrees() {
		n := n
		for _, be := range ring.BackendNames() {
			be := be
			t.Run(fmt.Sprintf("n=%d/backend=%s", n, be), func(t *testing.T) {
				params, enc, dec := matrixSetup(t, be, n, 0xC0FFEE+uint64(n))
				pt := params.NewPlaintext()
				for i := range pt.Coeffs {
					pt.Coeffs[i] = uint64(i*31+7) % params.T
				}
				ct, err := enc.Encrypt(pt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := dec.Decrypt(ct)
				if err != nil {
					t.Fatal(err)
				}
				for i := range pt.Coeffs {
					if got.Coeffs[i] != pt.Coeffs[i] {
						t.Fatalf("coeff %d decrypted to %d want %d", i, got.Coeffs[i], pt.Coeffs[i])
					}
				}
			})
		}
	}
}

// TestCiphertextBackendEquality: with identical PRNG seeds, the ciphertext
// polynomials from both backends must match at every residue — reported
// with the first mismatching (poly, modulus, coefficient) index.
func TestCiphertextBackendEquality(t *testing.T) {
	for _, n := range ring.LadderDegrees() {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			names := ring.BackendNames()
			cts := make([]*Ciphertext, len(names))
			for bi, be := range names {
				params, enc, _ := matrixSetup(t, be, n, 0xBEEF+uint64(n))
				pt := params.NewPlaintext()
				for i := range pt.Coeffs {
					pt.Coeffs[i] = uint64(i) % params.T
				}
				ct, err := enc.Encrypt(pt)
				if err != nil {
					t.Fatal(err)
				}
				cts[bi] = ct
			}
			ref := cts[0]
			for bi := 1; bi < len(cts); bi++ {
				if len(ref.C) != len(cts[bi].C) {
					t.Fatalf("ciphertext size differs: %d vs %d", len(ref.C), len(cts[bi].C))
				}
				for p := range ref.C {
					for j := range ref.C[p].Coeffs {
						for i := range ref.C[p].Coeffs[j] {
							if ref.C[p].Coeffs[j][i] != cts[bi].C[p].Coeffs[j][i] {
								t.Fatalf("backend %s vs %s: first mismatch at poly %d modulus %d coeff %d: %d vs %d",
									names[0], names[bi], p, j, i,
									ref.C[p].Coeffs[j][i], cts[bi].C[p].Coeffs[j][i])
							}
						}
					}
				}
			}
		})
	}
}

func TestResolveParamSet(t *testing.T) {
	for _, name := range []string{"", "paper", "n1024"} {
		p, err := ResolveParamSet(name)
		if err != nil {
			t.Fatalf("ResolveParamSet(%q): %v", name, err)
		}
		if p.N != 1024 || p.Moduli[0] != PaperQ {
			t.Fatalf("ResolveParamSet(%q) is not the paper configuration", name)
		}
	}
	for _, tc := range []struct {
		name  string
		n     int
		chain int
	}{{"n2048", 2048, 1}, {"n4096", 4096, 3}, {"n8192", 8192, 5}} {
		p, err := ResolveParamSet(tc.name)
		if err != nil {
			t.Fatalf("ResolveParamSet(%q): %v", tc.name, err)
		}
		if p.N != tc.n || len(p.Moduli) != tc.chain {
			t.Fatalf("ResolveParamSet(%q): n=%d chain=%d", tc.name, p.N, len(p.Moduli))
		}
	}
	for _, bad := range []string{"n512", "n2048x", "huge", "n"} {
		if _, err := ResolveParamSet(bad); err == nil {
			t.Fatalf("ResolveParamSet(%q) accepted", bad)
		}
	}
	names := ParamSetNames()
	if len(names) != 4 || names[0] != "n1024" || names[3] != "n8192" {
		t.Fatalf("ParamSetNames() = %v", names)
	}
}
