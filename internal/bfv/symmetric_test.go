package bfv

import (
	"testing"

	"reveal/internal/modular"
	"reveal/internal/sampler"
)

func TestSymmetricEncryptDecrypt(t *testing.T) {
	params := PaperParameters()
	prng := sampler.NewXoshiro256(900)
	kg := NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	enc := NewEncryptor(params, nil, prng) // symmetric mode needs no pk
	dec := NewDecryptor(params, sk)

	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i*3) % params.T
	}
	ct, tr, err := enc.EncryptSymmetric(sk, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Coeffs {
		if got.Coeffs[i] != pt.Coeffs[i] {
			t.Fatalf("coeff %d: %d want %d", i, got.Coeffs[i], pt.Coeffs[i])
		}
	}
	// The transcript exposes the single error polynomial through the same
	// vulnerable path (branches recorded).
	if len(tr.E1) != params.N || len(tr.Branch1) != params.N {
		t.Error("symmetric transcript incomplete")
	}
	seen := map[sampler.Branch]bool{}
	for _, b := range tr.Branch1 {
		seen[b] = true
	}
	if len(seen) < 3 {
		t.Error("expected all three branches across 1024 coefficients")
	}
	// Validation path.
	bad := params.NewPlaintext()
	bad.Coeffs[0] = params.T
	if _, _, err := enc.EncryptSymmetric(sk, bad); err == nil {
		t.Error("unreduced plaintext should fail")
	}
}

func TestKeySwitch(t *testing.T) {
	// 50-bit modulus for key-switch noise headroom (as with Galois keys).
	primes, err := modular.GeneratePrimes(50, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	params, err := NewParameters(1024, primes, 256,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	prng := sampler.NewXoshiro256(901)
	kg := NewKeyGenerator(params, prng)
	skA := kg.GenSecretKey()
	skB := kg.GenSecretKey()
	pkA := kg.GenPublicKey(skA)
	enc := NewEncryptor(params, pkA, prng)
	ev, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	ksk, err := kg.GenKeySwitchKey(skA, skB)
	if err != nil {
		t.Fatal(err)
	}

	pt := params.NewPlaintext()
	pt.Coeffs[0], pt.Coeffs[9] = 42, 7
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	switched, err := ev.SwitchKey(ct, ksk)
	if err != nil {
		t.Fatal(err)
	}
	// Decryptable under B, not under A.
	decB := NewDecryptor(params, skB)
	got, err := decB.Decrypt(switched)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coeffs[0] != 42 || got.Coeffs[9] != 7 {
		t.Errorf("switched decrypt: %d %d", got.Coeffs[0], got.Coeffs[9])
	}
	decA := NewDecryptor(params, skA)
	gotA, err := decA.Decrypt(switched)
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Coeffs[0] == 42 && gotA.Coeffs[9] == 7 {
		t.Error("old key still decrypts the switched ciphertext")
	}
	// Validation.
	if _, err := kg.GenKeySwitchKey(nil, skB); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := ev.SwitchKey(ct, nil); err == nil {
		t.Error("nil ksk should fail")
	}
}
