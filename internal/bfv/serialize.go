package bfv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"reveal/internal/ring"
)

// Binary serialization for BFV objects. All formats start with a 4-byte
// magic and a format version, then little-endian fixed-width fields. The
// reader validates sizes before allocating.

const serialVersion = 1

var (
	magicParams = [4]byte{'B', 'F', 'V', 'P'}
	magicCipher = [4]byte{'B', 'F', 'V', 'C'}
	magicPublic = [4]byte{'B', 'F', 'V', 'K'}
	magicSecret = [4]byte{'B', 'F', 'V', 'S'}
	magicPlain  = [4]byte{'B', 'F', 'V', 'M'}
)

const maxReasonableN = 1 << 20

func writeHeader(w io.Writer, magic [4]byte) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(serialVersion))
}

func readHeader(r io.Reader, want [4]byte) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("bfv: reading magic: %w", err)
	}
	if magic != want {
		return fmt.Errorf("bfv: bad magic %q, want %q", magic[:], want[:])
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != serialVersion {
		return fmt.Errorf("bfv: unsupported version %d", version)
	}
	return nil
}

func writePoly(w io.Writer, p *ring.Poly) error {
	flags := uint32(0)
	if p.InNTT {
		flags = 1
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return err
	}
	for j := range p.Coeffs {
		for _, c := range p.Coeffs[j] {
			if err := binary.Write(w, binary.LittleEndian, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func readPoly(r io.Reader, ctx *ring.Context) (*ring.Poly, error) {
	var flags uint32
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	p := ctx.NewPoly()
	for j := range p.Coeffs {
		q := ctx.Moduli[j]
		for i := range p.Coeffs[j] {
			if err := binary.Read(r, binary.LittleEndian, &p.Coeffs[j][i]); err != nil {
				return nil, err
			}
			if p.Coeffs[j][i] >= q {
				return nil, fmt.Errorf("bfv: coefficient %d not reduced mod %d", p.Coeffs[j][i], q)
			}
		}
	}
	p.InNTT = flags&1 == 1
	return p, nil
}

// WriteParameters serializes the public parameters.
func WriteParameters(w io.Writer, p *Parameters) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicParams); err != nil {
		return err
	}
	fields := []uint64{uint64(p.N), uint64(len(p.Moduli)), p.T,
		math.Float64bits(p.Sigma), math.Float64bits(p.MaxDeviation)}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	for _, q := range p.Moduli {
		if err := binary.Write(bw, binary.LittleEndian, q); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParameters deserializes and re-validates a parameter set.
func ReadParameters(r io.Reader) (*Parameters, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicParams); err != nil {
		return nil, err
	}
	var n, k, t, sigmaBits, maxDevBits uint64
	for _, p := range []*uint64{&n, &k, &t, &sigmaBits, &maxDevBits} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if n == 0 || n > maxReasonableN || k == 0 || k > 64 {
		return nil, fmt.Errorf("bfv: implausible header n=%d k=%d", n, k)
	}
	moduli := make([]uint64, k)
	for i := range moduli {
		if err := binary.Read(br, binary.LittleEndian, &moduli[i]); err != nil {
			return nil, err
		}
	}
	return NewParameters(int(n), moduli, t,
		math.Float64frombits(sigmaBits), math.Float64frombits(maxDevBits))
}

// WriteCiphertext serializes ct under the given parameters.
func WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	if ct == nil || len(ct.C) == 0 {
		return fmt.Errorf("bfv: cannot serialize empty ciphertext")
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicCipher); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ct.C))); err != nil {
		return err
	}
	for _, c := range ct.C {
		if err := writePoly(bw, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCiphertext deserializes a ciphertext for the given parameters.
func ReadCiphertext(r io.Reader, params *Parameters) (*Ciphertext, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicCipher); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count == 0 || count > 8 {
		return nil, fmt.Errorf("bfv: implausible ciphertext size %d", count)
	}
	ct := &Ciphertext{C: make([]*ring.Poly, count)}
	for i := range ct.C {
		p, err := readPoly(br, params.Context())
		if err != nil {
			return nil, err
		}
		ct.C[i] = p
	}
	return ct, nil
}

// WritePublicKey serializes pk.
func WritePublicKey(w io.Writer, pk *PublicKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicPublic); err != nil {
		return err
	}
	if err := writePoly(bw, pk.P0); err != nil {
		return err
	}
	if err := writePoly(bw, pk.P1); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPublicKey deserializes a public key for the given parameters.
func ReadPublicKey(r io.Reader, params *Parameters) (*PublicKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicPublic); err != nil {
		return nil, err
	}
	p0, err := readPoly(br, params.Context())
	if err != nil {
		return nil, err
	}
	p1, err := readPoly(br, params.Context())
	if err != nil {
		return nil, err
	}
	return &PublicKey{P0: p0, P1: p1}, nil
}

// WriteSecretKey serializes sk (both representations).
func WriteSecretKey(w io.Writer, sk *SecretKey) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicSecret); err != nil {
		return err
	}
	if err := writePoly(bw, sk.S); err != nil {
		return err
	}
	for _, v := range sk.Signed {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSecretKey deserializes a secret key for the given parameters.
func ReadSecretKey(r io.Reader, params *Parameters) (*SecretKey, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicSecret); err != nil {
		return nil, err
	}
	s, err := readPoly(br, params.Context())
	if err != nil {
		return nil, err
	}
	signed := make([]int64, params.N)
	for i := range signed {
		if err := binary.Read(br, binary.LittleEndian, &signed[i]); err != nil {
			return nil, err
		}
		if signed[i] < -1 || signed[i] > 1 {
			return nil, fmt.Errorf("bfv: secret coefficient %d out of ternary range", signed[i])
		}
	}
	return &SecretKey{S: s, Signed: signed}, nil
}

// WritePlaintext serializes pt.
func WritePlaintext(w io.Writer, pt *Plaintext) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicPlain); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(pt.Coeffs))); err != nil {
		return err
	}
	for _, c := range pt.Coeffs {
		if err := binary.Write(bw, binary.LittleEndian, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlaintext deserializes a plaintext and validates it against params.
func ReadPlaintext(r io.Reader, params *Parameters) (*Plaintext, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicPlain); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != params.N {
		return nil, fmt.Errorf("bfv: plaintext has %d coefficients, parameters say %d", n, params.N)
	}
	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		if err := binary.Read(br, binary.LittleEndian, &pt.Coeffs[i]); err != nil {
			return nil, err
		}
	}
	if err := params.Validate(pt); err != nil {
		return nil, err
	}
	return pt, nil
}
