// Package bfv implements the Brakerski/Fan-Vercauteren homomorphic
// encryption scheme with the structure and defaults of Microsoft SEAL v3.2,
// the library the RevEAL paper attacks. The encryptor reproduces the
// vulnerable set_poly_coeffs_normal control flow (Fig. 2 of the paper) and
// can emit a transcript of the sampled error coefficients, which the
// side-channel pipeline uses as ground truth for profiling.
package bfv

import (
	"fmt"
	"math/big"

	"reveal/internal/modular"
	"reveal/internal/ring"
	"reveal/internal/sampler"
)

// PaperQ is the single 27-bit coefficient modulus of SEAL v3.2's default
// 128-bit parameter set for n=1024, the configuration attacked in the
// paper (Table III: q = 132120577, n = 1024, σ = 3.2).
const PaperQ uint64 = 132120577

// Parameters collects the public parameters of a BFV instantiation.
type Parameters struct {
	// N is the polynomial degree (power of two).
	N int
	// Moduli is the coefficient modulus chain; the ciphertext modulus is
	// their product Q.
	Moduli []uint64
	// T is the plaintext modulus.
	T uint64
	// Sigma is the standard deviation of the error distribution.
	Sigma float64
	// MaxDeviation clips the error distribution.
	MaxDeviation float64

	ctx    *ring.Context
	delta  *big.Int // floor(Q/T)
	deltaJ []uint64 // delta mod q_j
}

// NewParameters validates and precomputes a parameter set on the default
// ring backend.
func NewParameters(n int, moduli []uint64, t uint64, sigma, maxDev float64) (*Parameters, error) {
	return NewParametersOn(ring.DefaultBackendName, n, moduli, t, sigma, maxDev)
}

// NewParametersOn is NewParameters bound to a named ring backend — the
// entry point the cross-backend BFV differential matrix uses.
func NewParametersOn(backend string, n int, moduli []uint64, t uint64, sigma, maxDev float64) (*Parameters, error) {
	rp, err := ring.NewParameters(n, moduli)
	if err != nil {
		return nil, err
	}
	ctx, err := ring.NewContextFor(rp, backend)
	if err != nil {
		return nil, err
	}
	if t < 2 {
		return nil, fmt.Errorf("bfv: plaintext modulus %d must be at least 2", t)
	}
	bigQ := ctx.BigQ()
	bigT := new(big.Int).SetUint64(t)
	if bigT.Cmp(bigQ) >= 0 {
		return nil, fmt.Errorf("bfv: plaintext modulus %d must be smaller than Q", t)
	}
	if sigma <= 0 || maxDev < sigma {
		return nil, fmt.Errorf("bfv: invalid noise parameters sigma=%v maxDev=%v", sigma, maxDev)
	}
	p := &Parameters{
		N:            n,
		Moduli:       append([]uint64(nil), moduli...),
		T:            t,
		Sigma:        sigma,
		MaxDeviation: maxDev,
		ctx:          ctx,
		delta:        new(big.Int).Quo(bigQ, bigT),
	}
	tmp := new(big.Int)
	for _, q := range moduli {
		p.deltaJ = append(p.deltaJ, tmp.Mod(p.delta, new(big.Int).SetUint64(q)).Uint64())
	}
	return p, nil
}

// PaperParameters returns the exact configuration the paper attacks:
// n=1024, q=132120577, σ=3.19 (≈8/√2π) clipped at 12.8σ, t=256.
func PaperParameters() *Parameters {
	p, err := NewParameters(1024, []uint64{PaperQ}, 256,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		panic(err) // static configuration, cannot fail
	}
	return p
}

// DefaultParameters returns the SEAL-default chain for the given degree from
// the ring parameter ladder (bit counts follow the homomorphic encryption
// standard: 27, 54, 109, 218 total bits for n = 1024..8192). Ladder
// generation is deterministic — the chain order follows the declared
// bit-size list, never a map walk — so residue layouts are stable across
// processes, which replay determinism depends on.
func DefaultParameters(n int, t uint64) (*Parameters, error) {
	moduli, err := defaultModuli(n)
	if err != nil {
		return nil, err
	}
	return NewParameters(n, moduli, t, sampler.DefaultSigma, sampler.DefaultMaxDeviation)
}

// extraBits extends the ring ladder with the two research degrees the
// security-sweep estimator covers but the attack pipeline does not target.
var extraBits = map[int][]int{
	16384: {48, 48, 48, 49, 49, 49, 49, 49, 49},
	32768: {55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 55, 56},
}

func defaultModuli(n int) ([]uint64, error) {
	if rp, err := ring.LadderParams(n); err == nil {
		return rp.Moduli, nil
	}
	sizes, ok := extraBits[n]
	if !ok {
		return nil, fmt.Errorf("bfv: no default parameters for degree %d", n)
	}
	// Same deterministic grouped walk as the ring ladder: adjacent equal
	// bit sizes share one downward prime scan, order follows the declared
	// list so the chain layout is stable across processes.
	var moduli []uint64
	for i := 0; i < len(sizes); {
		j := i
		for j < len(sizes) && sizes[j] == sizes[i] {
			j++
		}
		ps, err := modular.GeneratePrimes(sizes[i], uint64(2*n), j-i)
		if err != nil {
			return nil, err
		}
		moduli = append(moduli, ps...)
		i = j
	}
	return moduli, nil
}

// ParamSetNames lists the named SEAL parameter sets campaign specs can
// reference ("n1024" ... "n8192"), in increasing degree order.
func ParamSetNames() []string {
	var names []string
	for _, n := range ring.LadderDegrees() {
		names = append(names, fmt.Sprintf("n%d", n))
	}
	return names
}

// ResolveParamSet maps a named parameter set ("n2048", or "" / "paper" /
// "n1024" for the paper's legacy configuration) to parameters with the
// paper's plaintext modulus and noise defaults.
func ResolveParamSet(name string) (*Parameters, error) {
	switch name {
	case "", "paper", "n1024":
		return PaperParameters(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "n%d", &n); err != nil || fmt.Sprintf("n%d", n) != name {
		return nil, fmt.Errorf("bfv: unknown parameter set %q (have %v)", name, ParamSetNames())
	}
	p, err := DefaultParameters(n, 256)
	if err != nil {
		return nil, fmt.Errorf("bfv: unknown parameter set %q (have %v)", name, ParamSetNames())
	}
	return p, nil
}

// Context returns the underlying ring context.
func (p *Parameters) Context() *ring.Context { return p.ctx }

// Q returns the full coefficient modulus as a big integer (copy).
func (p *Parameters) Q() *big.Int { return p.ctx.BigQ() }

// Delta returns floor(Q/T) (copy).
func (p *Parameters) Delta() *big.Int { return new(big.Int).Set(p.delta) }

// DeltaMod returns floor(Q/T) mod q_j.
func (p *Parameters) DeltaMod(j int) uint64 { return p.deltaJ[j] }

// NoiseSampler returns a ClippedNormal configured with this parameter set's
// σ and clipping bound.
func (p *Parameters) NoiseSampler() *sampler.ClippedNormal {
	cn, err := sampler.NewClippedNormal(p.Sigma, p.MaxDeviation)
	if err != nil {
		panic(err) // validated at construction
	}
	return cn
}

// Plaintext is a degree-n polynomial with coefficients reduced modulo T.
type Plaintext struct {
	Coeffs []uint64
}

// NewPlaintext allocates an all-zero plaintext for the parameter set.
func (p *Parameters) NewPlaintext() *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, p.N)}
}

// Validate checks that pt has the right length and reduced coefficients.
func (p *Parameters) Validate(pt *Plaintext) error {
	if pt == nil || len(pt.Coeffs) != p.N {
		return fmt.Errorf("bfv: plaintext has %d coefficients, want %d", len(pt.Coeffs), p.N)
	}
	for i, c := range pt.Coeffs {
		if c >= p.T {
			return fmt.Errorf("bfv: plaintext coefficient %d = %d not reduced mod t=%d", i, c, p.T)
		}
	}
	return nil
}

// Ciphertext is a BFV ciphertext: a vector of polynomials (size 2 after
// encryption or relinearization, 3 right after multiplication).
type Ciphertext struct {
	C []*ring.Poly
}

// Degree returns len(C)-1, the ciphertext degree in the secret key.
func (ct *Ciphertext) Degree() int { return len(ct.C) - 1 }

// Clone deep-copies the ciphertext.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{C: make([]*ring.Poly, len(ct.C))}
	for i, c := range ct.C {
		out.C[i] = c.Clone()
	}
	return out
}
