package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
)

// FabricWorker is the worker side of the campaign fabric: it leases jobs
// from a coordinator over HTTP, executes them through the shared Runner,
// heartbeats the lease while running, and reports the outcome back. A
// worker that dies mid-job simply stops heartbeating — the coordinator's
// reaper expires the lease and requeues the job elsewhere.
type FabricWorker struct {
	// ID names this worker in leases and events (required, unique per node).
	ID string
	// Client talks to the coordinator (required; give it RetryAttempts so a
	// coordinator restart is ridden out instead of killing the loop).
	Client *Client
	// Runner executes the leased campaigns (required). Its Cache is
	// typically a RemoteTemplateCache so templates are shared fleet-wide.
	Runner *Runner
	// Slots is how many jobs run concurrently (minimum 1).
	Slots int
	// LeaseTTL is the lease duration requested per job (0 → the
	// coordinator's default). Heartbeats renew at a third of it.
	LeaseTTL time.Duration
	// PollWait is the server-side long-poll duration per idle lease request
	// (default 10 s).
	PollWait time.Duration
}

// Run leases and executes jobs until ctx is canceled. It returns ctx.Err()
// on a clean stop; in-flight jobs are completed (or abandoned to lease
// expiry when the coordinator is gone).
func (w *FabricWorker) Run(ctx context.Context) error {
	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	obs.Log().Info("fabric worker starting", "id", w.ID,
		"coordinator", w.Client.BaseURL, "slots", slots)
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait()
	obs.Log().Info("fabric worker stopped", "id", w.ID)
	return ctx.Err()
}

func (w *FabricWorker) slotLoop(ctx context.Context) {
	wait := w.PollWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	idleBackoff := time.Second
	for ctx.Err() == nil {
		lj, err := w.Client.LeaseJob(ctx, w.ID, w.LeaseTTL, wait)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Coordinator down or restarting: back off and keep trying; the
			// client's own retry already absorbed short blips.
			obs.Log().Warn("lease request failed", "worker", w.ID, "error", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(idleBackoff):
			}
			if idleBackoff < 30*time.Second {
				idleBackoff *= 2
			}
			continue
		}
		idleBackoff = time.Second
		if lj == nil {
			continue // long-poll expired with nothing eligible
		}
		w.execute(ctx, lj)
	}
}

// execute runs one leased job attempt end to end.
func (w *FabricWorker) execute(ctx context.Context, lj *jobs.LeasedJob) {
	payload, err := DecodeCampaignPayload(lj.Kind, lj.Payload)
	if err != nil {
		w.complete(lj, nil, fmt.Sprintf("worker %s: %v", w.ID, err))
		return
	}
	// Rebuild the runner's view of the job from the lease. FirstClaimedAt
	// is unknown here; the coordinator owns queue-wait accounting.
	job := &jobs.Job{
		ID:          lj.ID,
		Kind:        lj.Kind,
		TraceID:     lj.TraceID,
		Tenant:      lj.Tenant,
		Payload:     payload,
		State:       jobs.StateRunning,
		Attempts:    lj.Attempts,
		MaxAttempts: lj.MaxAttempts,
		StartedAt:   time.Now(),
		Deadline:    lj.Deadline,
	}
	actx, cancel := context.WithCancel(ctx)
	if !lj.Deadline.IsZero() {
		var dcancel context.CancelFunc
		actx, dcancel = context.WithDeadline(actx, lj.Deadline)
		defer dcancel()
	}
	defer cancel()
	lost := w.heartbeat(actx, cancel, lj)
	result, runErr := w.Runner.Run(actx, job)
	if lost.Load() {
		// The lease expired (or the job was canceled) while we ran: the
		// coordinator already requeued or finalized it, and a completion
		// with a stale token would be rejected anyway. Drop the result —
		// duplicate-completion idempotence is the coordinator's contract.
		obs.Log().Warn("lease lost mid-attempt, dropping result",
			"id", lj.ID, "worker", w.ID)
		return
	}
	errMsg := ""
	if runErr != nil {
		errMsg = runErr.Error()
	}
	w.complete(lj, result, errMsg)
}

// heartbeat renews the lease at a third of its TTL until the attempt ends;
// on a lost lease it cancels the attempt context and flags *lost.
func (w *FabricWorker) heartbeat(actx context.Context, cancel context.CancelFunc, lj *jobs.LeasedJob) *atomic.Bool {
	lost := new(atomic.Bool)
	ttl := w.LeaseTTL
	if ttl <= 0 {
		ttl = time.Until(lj.LeaseExpiry)
	}
	if ttl <= 0 {
		ttl = jobs.DefaultLeaseTTL
	}
	interval := ttl / 3
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-actx.Done():
				return
			case <-ticker.C:
			}
			_, err := w.Client.RenewJobLease(actx, lj.ID, w.ID, lj.Token, ttl)
			if err == nil {
				continue
			}
			if actx.Err() != nil {
				return
			}
			if StatusCode(err) == http.StatusConflict || StatusCode(err) == http.StatusNotFound {
				// Lease lost for real: stop burning CPU on a void attempt.
				lost.Store(true)
				cancel()
				return
			}
			// Transient failure (coordinator restarting): keep running and
			// let the next tick retry — the job is lost only if the outage
			// outlives the lease TTL.
			obs.Log().Warn("lease renewal failed", "id", lj.ID, "worker", w.ID, "error", err)
		}
	}()
	return lost
}

// complete reports the outcome with a fresh context: the worker may be
// shutting down (ctx canceled) and the verdict should still reach the
// coordinator.
func (w *FabricWorker) complete(lj *jobs.LeasedJob, result any, errMsg string) {
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := w.Client.CompleteJob(cctx, lj.ID, w.ID, lj.Token, result, errMsg)
	if err != nil {
		obs.Log().Warn("job completion not accepted", "id", lj.ID,
			"worker", w.ID, "error", err)
		return
	}
	obs.Log().Info("job completed via fabric", "id", lj.ID, "worker", w.ID,
		"state", string(st.State), "attempt", lj.Attempts, "error", errMsg)
}
