package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
)

// Client is a thin HTTP client for the reveald API, used by
// `revealctl submit` / `revealctl status`, the fabric worker loop, and
// the end-to-end tests.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// RetryAttempts is how many times a request is re-issued after a
	// transient connection error (the coordinator restarting, the listener
	// not up yet). Only errors raised before the request reached the server
	// — dial failures, connection refused — are retried, so retried POSTs
	// cannot double-apply. 0 disables retrying.
	RetryAttempts int
	// RetryBase is the first retry delay; attempt k waits RetryBase·2^k,
	// capped at 5 s (default 200 ms).
	RetryBase time.Duration
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx daemon response. Callers branch on Status (e.g.
// 409 = lease lost, 429 = backpressure) via errors.As or StatusCode.
type APIError struct {
	Method  string
	Path    string
	Status  int
	Message string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// StatusCode extracts the HTTP status from an APIError chain (0 when err
// is not an API response, e.g. a transport failure).
func StatusCode(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// isTransientConnErr reports whether err happened before the request
// reached the server — the only class of failures safe to retry for
// non-idempotent methods. url.Error/net.OpError unwrap through errors.As.
func isTransientConnErr(err error) bool {
	if err == nil {
		return false
	}
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// do issues one request (re-issuing it after transient connection errors
// when RetryAttempts is set) and decodes the JSON response into out
// (skipped when out is nil or the response has no body). Non-2xx
// responses are returned as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: marshaling request: %w", err)
		}
	}
	base := c.RetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, data, body != nil, out)
		if err == nil || attempt >= c.RetryAttempts || !isTransientConnErr(err) {
			return err
		}
		delay := base << uint(attempt)
		if delay > 5*time.Second {
			delay = 5 * time.Second
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(delay):
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rdata, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{Method: method, Path: path, Status: resp.StatusCode}
		var ae apiError
		if json.Unmarshal(rdata, &ae) == nil && ae.Error != "" {
			apiErr.Message = ae.Error
		}
		return apiErr
	}
	if out == nil || len(rdata) == 0 {
		return nil
	}
	if err := json.Unmarshal(rdata, out); err != nil {
		return fmt.Errorf("service: parsing %s response: %w", path, err)
	}
	return nil
}

// Submit posts a campaign spec and returns the accepted job.
func (c *Client) Submit(ctx context.Context, spec *CampaignSpec) (jobs.Status, error) {
	var resp submitResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", spec, &resp); err != nil {
		return jobs.Status{}, err
	}
	return resp.Job, nil
}

// Campaign fetches one job's status.
func (c *Client) Campaign(ctx context.Context, id string) (jobs.Status, error) {
	var st jobs.Status
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &st)
	return st, err
}

// List fetches every job.
func (c *Client) List(ctx context.Context) ([]jobs.Status, error) {
	var resp struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns", nil, &resp)
	return resp.Jobs, err
}

// Result fetches a finished campaign's result into out (a pointer, e.g.
// *AttackCampaignResult or *json.RawMessage).
func (c *Client) Result(ctx context.Context, id string, out any) error {
	return c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, out)
}

// Cancel aborts a campaign.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Status, error) {
	var st jobs.Status
	err := c.do(ctx, http.MethodDelete, "/api/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Stats fetches the queue/cache depth counters.
func (c *Client) Stats(ctx context.Context) (queued, running, cached int, err error) {
	resp, err := c.StatsFull(ctx)
	if err != nil {
		return 0, 0, 0, err
	}
	return resp.Queued, resp.Running, resp.CachedTemplates, nil
}

// StatsFull fetches the complete service statistics payload (worker
// utilization, per-kind throughput, latency distributions).
func (c *Client) StatsFull(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &resp)
	return resp, err
}

// Events fetches a batch of service-journal events after the given cursor
// from the daemon's /events endpoint (served next to the API on the same
// listener). A positive wait long-polls until an event arrives or the
// duration expires.
func (c *Client) Events(ctx context.Context, since int64, max int, wait time.Duration) (obs.EventsResponse, error) {
	path := fmt.Sprintf("/events?since=%d", since)
	if max > 0 {
		path += fmt.Sprintf("&max=%d", max)
	}
	if wait > 0 {
		path += "&wait=" + wait.String()
	}
	var resp obs.EventsResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// History fetches one page of quality-history records. Pass the previous
// response's NextAfter as after to continue; kind/tenant filter, limit
// bounds the page (0 = server default).
func (c *Client) History(ctx context.Context, kind, tenant string, after int64, limit int) (HistoryResponse, error) {
	path := fmt.Sprintf("/api/v1/history?after=%d", after)
	if kind != "" {
		path += "&kind=" + url.QueryEscape(kind)
	}
	if tenant != "" {
		path += "&tenant=" + url.QueryEscape(tenant)
	}
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var resp HistoryResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// HistoryAggregate fetches the per-kind quality rollups (count, mean,
// quantiles, EWMA per metric) plus the watchdog baselines. A positive
// window restricts the rollup to the newest window records per kind.
func (c *Client) HistoryAggregate(ctx context.Context, kind, tenant string, window int) (HistoryAggregateResponse, error) {
	path := fmt.Sprintf("/api/v1/history/aggregate?window=%d", window)
	if kind != "" {
		path += "&kind=" + url.QueryEscape(kind)
	}
	if tenant != "" {
		path += "&tenant=" + url.QueryEscape(tenant)
	}
	var resp HistoryAggregateResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// WaitDone polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (jobs.Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Campaign(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("service: waiting for %s (%s): %w", id, st.State, ctx.Err())
		case <-time.After(poll):
		}
	}
}
