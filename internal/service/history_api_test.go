package service

import (
	"context"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs/history"
)

// submitSleepAndWait pushes one sleep campaign through the service and
// waits for it to finish — the cheapest way to populate the history store.
func submitSleepAndWait(t *testing.T, client *Client, tenant string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 1, Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	done, err := client.WaitDone(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("sleep campaign ended %s: %s", done.State, done.Error)
	}
}

// TestHistoryAPIEndToEnd drives campaigns through the service and reads
// them back through GET /api/v1/history and /api/v1/history/aggregate,
// covering tenant filters, cursor pagination, and the rollup payload.
func TestHistoryAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := history.Open(history.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	watchdog, err := history.NewWatchdog(history.DriftConfig{
		Window: 2, MinRuns: 2, Tolerance: 0.05,
		BaselinePath: filepath.Join(dir, "baselines.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, client := newTestService(t, Config{
		PoolWorkers: 1, History: store, Watchdog: watchdog,
	})

	for i := 0; i < 3; i++ {
		submitSleepAndWait(t, client, "tenant-a")
	}
	submitSleepAndWait(t, client, "tenant-b")

	ctx := context.Background()
	page, err := client.History(ctx, "sleep", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 4 || len(page.Records) != 4 {
		t.Fatalf("history total=%d records=%d, want 4/4", page.Total, len(page.Records))
	}
	for i := 1; i < len(page.Records); i++ {
		if page.Records[i].Seq <= page.Records[i-1].Seq {
			t.Fatalf("records out of order: %+v", page.Records)
		}
	}
	if page.Records[0].ElapsedSeconds <= 0 {
		t.Fatalf("record missing elapsed time: %+v", page.Records[0])
	}
	if page.Records[0].JobID == "" {
		t.Fatalf("record missing job id: %+v", page.Records[0])
	}

	// Tenant filter.
	pa, err := client.History(ctx, "", "tenant-a", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Total != 3 {
		t.Fatalf("tenant-a total = %d, want 3", pa.Total)
	}

	// Cursor pagination: two pages of two.
	p1, err := client.History(ctx, "sleep", "", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Records) != 2 || p1.NextAfter == 0 {
		t.Fatalf("page 1 = %d records, next_after=%d", len(p1.Records), p1.NextAfter)
	}
	p2, err := client.History(ctx, "sleep", "", p1.NextAfter, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Records) != 2 || p2.NextAfter != 0 {
		t.Fatalf("page 2 = %d records, next_after=%d", len(p2.Records), p2.NextAfter)
	}
	if p2.Records[0].Seq <= p1.Records[1].Seq {
		t.Fatal("pagination returned overlapping pages")
	}

	// Aggregate rollup.
	agg, err := client.HistoryAggregate(ctx, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Aggregates) != 1 || agg.Aggregates[0].Kind != "sleep" {
		t.Fatalf("aggregates = %+v", agg.Aggregates)
	}
	if agg.Aggregates[0].Runs != 4 {
		t.Fatalf("aggregate runs = %d, want 4", agg.Aggregates[0].Runs)
	}
	found := false
	for _, m := range agg.Aggregates[0].Metrics {
		if m.Metric == "elapsed_seconds" && m.Count == 4 && m.Mean > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("elapsed_seconds rollup missing: %+v", agg.Aggregates[0].Metrics)
	}
}

// TestHistoryAPIDisabledAndValidation: without a store the endpoints are
// 503, and malformed query parameters are 400.
func TestHistoryAPIDisabledAndValidation(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1})
	ctx := context.Background()
	if _, err := client.History(ctx, "", "", 0, 0); err == nil {
		t.Fatal("history without a store must fail")
	}
	if _, err := client.HistoryAggregate(ctx, "", "", 0); err == nil {
		t.Fatal("aggregate without a store must fail")
	}

	store, err := history.Open(history.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	_, client2 := newTestService(t, Config{PoolWorkers: 1, History: store})
	for _, path := range []string{
		"/api/v1/history?after=-1",
		"/api/v1/history?limit=zap",
		"/api/v1/history/aggregate?window=-3",
	} {
		resp, err := http.Get(client2.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
	// An empty store answers with an empty page, not an error.
	page, err := client2.History(ctx, "", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 || len(page.Records) != 0 || page.NextAfter != 0 {
		t.Fatalf("empty store page = %+v", page)
	}
}
