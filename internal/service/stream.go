package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/obs"
	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// defaultStreamChunkSamples is the RVTS replay chunk size when the spec
// does not set one.
const defaultStreamChunkSamples = 4096

// StreamRunSummary is the outcome of one streamed encryption.
type StreamRunSummary struct {
	Run        int     `json:"run"`
	Classified int     `json:"classified"`
	EarlyExit  bool    `json:"early_exit"`
	ValueAcc   float64 `json:"value_acc"`
	SignAcc    float64 `json:"sign_acc"`
	// HintedBikz is the DBDD estimate at the verdict (0 without a target).
	HintedBikz float64 `json:"hinted_bikz,omitempty"`
	// IngestBytes counts the RVTS wire bytes this run consumed; on an
	// early exit it stops short of the full trace encoding.
	IngestBytes int64 `json:"ingest_bytes"`
	// TTFHSeconds / TTVSeconds are the run's time-to-first-hint and
	// time-to-verdict latencies.
	TTFHSeconds float64 `json:"ttfh_seconds"`
	TTVSeconds  float64 `json:"ttv_seconds"`
	// DigestsMatch is only meaningful under verify_batch: whether the
	// stream result digests identical to the batch result's matching
	// prefix.
	DigestsMatch bool `json:"digests_match"`
}

// StreamCampaignResult is the result payload of a "stream" campaign.
type StreamCampaignResult struct {
	Kind        string `json:"kind"`
	Seed        uint64 `json:"seed"`
	TemplateKey string `json:"template_key"`
	CacheHit    bool   `json:"cache_hit"`
	Encryptions int    `json:"encryptions"`
	// ClassifiedTotal / CoefficientsTotal compare how many coefficients
	// were actually classified against the full workload n×encryptions —
	// strictly smaller when early exit fired.
	ClassifiedTotal   int `json:"classified_total"`
	CoefficientsTotal int `json:"coefficients_total"`
	// EarlyExitRuns counts runs that stopped before the full trace.
	EarlyExitRuns int `json:"early_exit_runs"`
	// DigestsMatch is true when verify_batch was set and every run's
	// stream digest matched the batch prefix digest (false whenever
	// verify_batch is off).
	DigestsMatch bool    `json:"digests_match"`
	ValueAcc     float64 `json:"value_acc"`
	SignAcc      float64 `json:"sign_acc"`
	MeanMargin   float64 `json:"mean_margin"`
	// IngestBytes totals the RVTS wire bytes consumed across all runs
	// (also exported as reveal_stream_ingest_bytes_total).
	IngestBytes int64 `json:"ingest_bytes"`
	// MeanTTFHSeconds / MeanTTVSeconds average the per-run latencies.
	MeanTTFHSeconds float64 `json:"mean_ttfh_seconds"`
	MeanTTVSeconds  float64 `json:"mean_ttv_seconds"`
	// BaselineBikz / TargetBikz / HintedBikz describe the early-exit
	// criterion (zero without a target); HintedBikz is the last run's
	// verdict estimate.
	BaselineBikz   float64            `json:"bikz_baseline,omitempty"`
	TargetBikz     float64            `json:"bikz_target,omitempty"`
	HintedBikz     float64            `json:"bikz_with_hints,omitempty"`
	ProfileSeconds float64            `json:"profile_seconds"`
	StreamSeconds  float64            `json:"stream_seconds"`
	Runs           []StreamRunSummary `json:"runs"`
	ElapsedMS      int64              `json:"elapsed_ms"`
}

// runStream executes a "stream" campaign: the same deterministic capture
// pipeline as runAttack, but each e2 trace is serialized to the RVTS wire
// format and replayed chunk by chunk through the streaming engine, so the
// job exercises exactly what a live acquisition feed would.
func (r *Runner) runStream(ctx context.Context, spec *CampaignSpec) (*StreamCampaignResult, error) {
	start := time.Now()
	cls, key, hit, err := r.classifier(ctx, spec)
	if err != nil {
		return nil, err
	}
	profileElapsed := time.Since(start)
	var attackDev *core.Device
	if spec.LowNoise {
		attackDev = core.NewLowNoiseDevice(spec.Seed ^ attackDeviceSalt)
	} else {
		attackDev = core.NewDevice(spec.Seed ^ attackDeviceSalt)
	}
	params, err := spec.params()
	if err != nil {
		return nil, err
	}
	prng := sampler.NewXoshiro256(spec.Seed ^ 0xABCD)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)

	chunk := spec.ChunkSamples
	if chunk == 0 {
		chunk = defaultStreamChunkSamples
	}
	res := &StreamCampaignResult{
		Kind: spec.Kind, Seed: spec.Seed, TemplateKey: key, CacheHit: hit,
		Encryptions: spec.Encryptions, TargetBikz: spec.TargetBikz,
		DigestsMatch: spec.VerifyBatch,
	}
	valOK, signOK := 0, 0
	var marginSum float64
	marginN := 0
	var ttfhSum, ttvSum float64
	for run := 0; run < spec.Encryptions; run++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("service: campaign canceled at encryption %d/%d: %w",
				run, spec.Encryptions, err)
		}
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64(i*31+run*7) % params.T
		}
		cap, err := core.CaptureEncryptionCtx(ctx, attackDev, params, enc, pt)
		if err != nil {
			return nil, fmt.Errorf("service: capturing encryption %d: %w", run, err)
		}
		streamRes, verdict, ingested, err := streamOneTrace(ctx, cls, params, spec, cap.TraceE2, chunk)
		if err != nil {
			return nil, fmt.Errorf("service: streaming encryption %d: %w", run, err)
		}
		rs := StreamRunSummary{
			Run: run, Classified: verdict.Classified, EarlyExit: verdict.EarlyExit,
			HintedBikz: verdict.HintedBikz, IngestBytes: ingested,
			TTFHSeconds: verdict.TimeToFirstHint.Seconds(),
			TTVSeconds:  verdict.TimeToVerdict.Seconds(),
		}
		if rs.ValueAcc, rs.SignAcc, err = streamRes.Accuracy(cap.Truth.E2[:verdict.Classified]); err != nil {
			return nil, err
		}
		if spec.VerifyBatch {
			match, err := verifyAgainstBatch(ctx, cls, params, cap.TraceE2, streamRes, verdict.Classified)
			if err != nil {
				return nil, fmt.Errorf("service: batch verification of encryption %d: %w", run, err)
			}
			rs.DigestsMatch = match
			if !match {
				res.DigestsMatch = false
			}
		}
		res.Runs = append(res.Runs, rs)
		res.ClassifiedTotal += verdict.Classified
		res.CoefficientsTotal += params.N
		if verdict.EarlyExit {
			res.EarlyExitRuns++
		}
		res.IngestBytes += ingested
		res.BaselineBikz = verdict.BaselineBikz
		res.HintedBikz = verdict.HintedBikz
		marginSum += verdict.MarginSum
		marginN += verdict.MarginCount
		ttfhSum += rs.TTFHSeconds
		ttvSum += rs.TTVSeconds
		for i, v := range streamRes.Values {
			if int64(v) == cap.Truth.E2[i] {
				valOK++
			}
			if streamRes.Signs[i] == sca.SignOf(int(cap.Truth.E2[i])) {
				signOK++
			}
		}
	}
	if res.ClassifiedTotal > 0 {
		res.ValueAcc = float64(valOK) / float64(res.ClassifiedTotal)
		res.SignAcc = float64(signOK) / float64(res.ClassifiedTotal)
	}
	if marginN > 0 {
		res.MeanMargin = marginSum / float64(marginN)
	}
	if len(res.Runs) > 0 {
		res.MeanTTFHSeconds = ttfhSum / float64(len(res.Runs))
		res.MeanTTVSeconds = ttvSum / float64(len(res.Runs))
	}
	res.ProfileSeconds = profileElapsed.Seconds()
	res.StreamSeconds = time.Since(start).Seconds() - res.ProfileSeconds
	res.ElapsedMS = time.Since(start).Milliseconds()
	obs.LogCtx(ctx).Info("stream campaign finished",
		"seed", spec.Seed, "encryptions", spec.Encryptions,
		"classified", res.ClassifiedTotal, "of", res.CoefficientsTotal,
		"early_exit_runs", res.EarlyExitRuns, "digests_match", res.DigestsMatch,
		"ingest_bytes", res.IngestBytes, "cache_hit", hit)
	return res, nil
}

// streamOneTrace serializes one trace to the RVTS wire format and replays
// it through a StreamAttack in chunkSamples chunks, stopping the feed the
// moment the attack early-exits. Returns the banked result, the verdict,
// and the wire bytes consumed (counted into
// reveal_stream_ingest_bytes_total).
func streamOneTrace(ctx context.Context, cls *core.CoefficientClassifier, params *bfv.Parameters,
	spec *CampaignSpec, tr trace.Trace, chunkSamples int) (*core.AttackResult, *core.StreamVerdict, int64, error) {
	var wire bytes.Buffer
	if err := trace.WriteSet(&wire, &trace.Set{Traces: []trace.Trace{tr}, Labels: []int{0}}); err != nil {
		return nil, nil, 0, err
	}
	reader, err := trace.NewStreamReader(bytes.NewReader(wire.Bytes()))
	if err != nil {
		return nil, nil, 0, err
	}
	sa, err := core.NewStreamAttackCtx(ctx, cls, core.StreamAttackOptions{
		Coefficients: params.N,
		TargetBikz:   spec.TargetBikz,
		Params:       params,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	defer sa.Close()
	if _, _, err := reader.NextTrace(); err != nil {
		return nil, nil, 0, err
	}
	for !sa.EarlyExited() {
		n, err := reader.ReadChunk(sa.Window(chunkSamples))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, 0, err
		}
		if err := sa.Commit(n); err != nil {
			return nil, nil, 0, err
		}
	}
	ingested := reader.BytesRead()
	obs.Global().Registry().Counter(core.MetricStreamIngestBytes).Add(ingested)
	res, verdict, err := sa.Finish()
	if err != nil {
		return nil, nil, 0, err
	}
	return res, verdict, ingested, nil
}

// verifyAgainstBatch runs the batch Segment+AttackSegments path over the
// complete trace and reports whether the stream result digests identical
// to the batch result truncated to the streamed prefix — the determinism
// contract, verified end to end on every run that asks for it.
func verifyAgainstBatch(ctx context.Context, cls *core.CoefficientClassifier, params *bfv.Parameters,
	tr trace.Trace, streamRes *core.AttackResult, classified int) (bool, error) {
	sg := trace.NewSegmenter(params.N + 1)
	segs, err := sg.Segment(tr, params.N+1, 8)
	if err != nil {
		return false, err
	}
	batchRes, err := cls.AttackSegmentsCtx(ctx, segs[:params.N])
	if err != nil {
		return false, err
	}
	sd, err := streamRes.Digest()
	if err != nil {
		return false, err
	}
	bd, err := batchRes.Prefix(classified).Digest()
	if err != nil {
		return false, err
	}
	return sd == bd, nil
}
