package service

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/jobs/wal"
)

// newFabricWorker assembles a worker node against the given coordinator
// client, with latencies tuned for tests, and runs it until test cleanup.
func newFabricWorker(t *testing.T, id string, client *Client, slots int) *FabricWorker {
	t.Helper()
	w := &FabricWorker{
		ID:     id,
		Client: client,
		Runner: &Runner{Cache: core.NewTemplateCache(2), Workers: 1},
		Slots:  slots,
		// A short TTL keeps heartbeats exercised (renew interval floors at
		// 100 ms); a short poll keeps idle slots responsive to cancel.
		LeaseTTL: 400 * time.Millisecond,
		PollWait: 200 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w
}

func sleepSpec(ms, failAttempts int) *CampaignSpec {
	return &CampaignSpec{Kind: KindSleep, SleepMS: ms, FailAttempts: failAttempts}
}

// TestFabricEndToEnd drives the distributed path: a pure coordinator (no
// in-process pool) with a fabric worker leasing over HTTP. Every submitted
// job — including one that fails its first attempt and retries — must
// complete, with queue-wait/attempt accounting intact.
func TestFabricEndToEnd(t *testing.T) {
	svc, client := newTestService(t, Config{PoolWorkers: -1})
	newFabricWorker(t, "node-a", client, 2)
	ctx := context.Background()

	specs := []*CampaignSpec{sleepSpec(5, 0), sleepSpec(5, 0), sleepSpec(1, 1)}
	var ids []string
	for _, spec := range specs {
		st, err := client.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for i, id := range ids {
		st, err := client.WaitDone(waitCtx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		wantAttempts := 1
		if specs[i].FailAttempts > 0 {
			wantAttempts = specs[i].FailAttempts + 1
		}
		if st.Attempts != wantAttempts {
			t.Fatalf("job %s attempts = %d, want %d", id, st.Attempts, wantAttempts)
		}
	}
	if got := svc.Queue().Leased(); got != 0 {
		t.Fatalf("leased gauge after drain = %d, want 0", got)
	}
}

// TestFabricDeadWorkerRequeues is the worker-failure story: a "worker"
// leases a job and dies (never heartbeats, never completes). The lease
// expires, the coordinator requeues the job, a live worker finishes it on
// attempt 2, and the dead worker's late completion bounces off 409.
func TestFabricDeadWorkerRequeues(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: -1})
	ctx := context.Background()

	st, err := client.Submit(ctx, sleepSpec(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	dead, err := client.LeaseJob(ctx, "doomed", 50*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dead == nil || dead.ID != st.ID {
		t.Fatalf("lease = %+v, want %s", dead, st.ID)
	}
	time.Sleep(70 * time.Millisecond) // outlive the lease without heartbeating

	newFabricWorker(t, "survivor", client, 1)
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.Attempts != 2 {
		t.Fatalf("job after dead worker = %+v, want done on attempt 2", done)
	}
	// The dead worker comes back and reports its stale verdict.
	if _, err := client.CompleteJob(ctx, st.ID, "doomed", dead.Token, "stale", ""); StatusCode(err) != http.StatusConflict {
		t.Fatalf("stale completion = %v, want HTTP 409", err)
	}
}

// TestRemoteTemplateCacheSharesAcrossNodes: the first node trains and
// uploads to the coordinator registry; a second node's miss resolves from
// the registry without re-profiling, and yields a byte-identical
// classifier.
func TestRemoteTemplateCacheSharesAcrossNodes(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: -1})
	ctx := context.Background()

	spec := &CampaignSpec{Kind: KindAttack, Seed: 7, ProfileTracesPerValue: 4, Encryptions: 1}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	dev, popts := spec.deviceAndOptions()
	key := core.TemplateCacheKey(dev, popts)
	var trains atomic.Int32
	train := func(ctx context.Context) (*core.CoefficientClassifier, error) {
		trains.Add(1)
		d, o := spec.deviceAndOptions() // fresh device per training run
		return core.ProfileCtx(ctx, d, o)
	}

	nodeA := &RemoteTemplateCache{Local: core.NewTemplateCache(2), Client: client, Worker: "node-a"}
	clsA, hitA, err := nodeA.GetOrTrain(ctx, key, train)
	if err != nil {
		t.Fatal(err)
	}
	if hitA || trains.Load() != 1 {
		t.Fatalf("first node: hit=%v trains=%d, want miss and one training run", hitA, trains.Load())
	}

	nodeB := &RemoteTemplateCache{Local: core.NewTemplateCache(2), Client: client, Worker: "node-b"}
	clsB, hitB, err := nodeB.GetOrTrain(ctx, key, train)
	if err != nil {
		t.Fatal(err)
	}
	if !hitB || trains.Load() != 1 {
		t.Fatalf("second node: hit=%v trains=%d, want registry hit and no retraining", hitB, trains.Load())
	}
	var bufA, bufB bytes.Buffer
	if err := core.WriteClassifier(&bufA, clsA); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteClassifier(&bufB, clsB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("registry round-trip produced a different classifier")
	}
	// Third lookup is an in-process LRU hit: no registry traffic needed.
	if _, hit, err := nodeB.GetOrTrain(ctx, key, train); err != nil || !hit {
		t.Fatalf("local re-lookup: hit=%v err=%v", hit, err)
	}
}

// TestSubmitBackpressure: over-quota and over-capacity submissions come
// back as HTTP 429 so clients know to back off, and capacity frees once
// jobs finish.
func TestSubmitBackpressure(t *testing.T) {
	opts := fastQueue()
	opts.Capacity = 2
	_, client := newTestService(t, Config{PoolWorkers: -1, QueueOptions: opts})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := client.Submit(ctx, sleepSpec(5, 0)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := client.Submit(ctx, sleepSpec(5, 0))
	if StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %v, want HTTP 429", err)
	}
}

// flakyTransport fails the first `failures` requests at dial level, then
// delegates — the coordinator-restart shape the client retry must absorb.
type flakyTransport struct {
	failures atomic.Int32
	attempts atomic.Int32
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if f.failures.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestClientRetriesTransientDialErrors: connection-refused failures are
// retried with backoff until the server is reachable; server-side errors
// (which may have had effects) are not.
func TestClientRetriesTransientDialErrors(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: -1})
	flaky := &flakyTransport{}
	flaky.failures.Store(2)
	client.HTTPClient = &http.Client{Transport: flaky}
	client.RetryAttempts = 3
	client.RetryBase = time.Millisecond

	st, err := client.Submit(context.Background(), sleepSpec(1, 0))
	if err != nil {
		t.Fatalf("submit through flaky transport = %v, want success after retries", err)
	}
	if st.ID == "" || flaky.attempts.Load() != 3 {
		t.Fatalf("id=%q attempts=%d, want an accepted job on the third attempt", st.ID, flaky.attempts.Load())
	}

	// A 5xx response reached the server: re-issuing could double-apply, so
	// the client must surface it on the first attempt.
	var hits atomic.Int32
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	c2 := NewClient(failing.URL)
	c2.RetryAttempts = 3
	c2.RetryBase = time.Millisecond
	if _, err := c2.Submit(context.Background(), sleepSpec(1, 0)); StatusCode(err) != http.StatusInternalServerError {
		t.Fatalf("5xx submit = %v, want HTTP 500 surfaced", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("5xx request issued %d times, want exactly 1 (no retry)", hits.Load())
	}
}

// TestServiceWALRestart is the coordinator-restart acceptance story at the
// service layer: jobs accepted (202) before a restart are journaled,
// replayed into the next process, and run to completion there.
func TestServiceWALRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	log1, rep0, err := wal.Open(wal.Options{Dir: dir, SyncSubmits: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep0.Jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(rep0.Jobs))
	}
	opts := fastQueue()
	opts.WAL = log1
	svc1 := New(Config{PoolWorkers: -1, QueueOptions: opts})
	svc1.Start()
	ts1 := httptest.NewServer(svc1.Handler())
	client1 := NewClient(ts1.URL)

	var ids []string
	for i := 0; i < 2; i++ {
		st, err := client1.Submit(ctx, sleepSpec(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Restart: stop the listener, close the WAL cleanly (the crashier
	// paths are covered by the jobs-layer tests), open the next process.
	ts1.Close()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	log2, rep, err := wal.Open(wal.Options{Dir: dir, SyncSubmits: true})
	if err != nil {
		t.Fatal(err)
	}
	opts2 := fastQueue()
	opts2.WAL = log2
	svc2 := New(Config{PoolWorkers: 1, QueueOptions: opts2})
	requeued, terminal := svc2.Queue().Restore(rep, DecodeCampaignPayload)
	if requeued != 2 || terminal != 0 {
		t.Fatalf("restore = %d requeued, %d terminal; want 2, 0", requeued, terminal)
	}
	svc2.Start()
	ts2 := httptest.NewServer(svc2.Handler())
	client2 := NewClient(ts2.URL)
	t.Cleanup(func() {
		ts2.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc2.Shutdown(sctx)
		_ = log2.Close()
	})

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := client2.WaitDone(waitCtx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StateDone {
			t.Fatalf("replayed job %s ended %s: %s", id, st.State, st.Error)
		}
	}
}
