package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/obs/history"
)

// Fabric wire types: the coordinator/worker protocol is plain HTTP/JSON
// under /api/v1/fabric/, versioned with the rest of the API.

// leaseRequest asks for one job lease. A positive WaitSeconds long-polls:
// the coordinator holds the request until a job becomes eligible or the
// wait expires (204 No Content).
type leaseRequest struct {
	Worker      string  `json:"worker"`
	TTLSeconds  float64 `json:"ttl_seconds,omitempty"`
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
}

type leaseResponse struct {
	Job *jobs.LeasedJob `json:"job"`
}

type renewRequest struct {
	Worker     string  `json:"worker"`
	Token      string  `json:"token"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

type renewResponse struct {
	LeaseExpiry time.Time `json:"lease_expiry"`
}

// completeRequest reports a leased attempt's outcome: Error empty means
// success with Result holding the serialized campaign result.
type completeRequest struct {
	Worker string          `json:"worker"`
	Token  string          `json:"token"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

type claimResponse struct {
	// Train tells the caller to run the profiling campaign and upload the
	// classifier; otherwise poll GET again after RetryAfterMS.
	Train        bool  `json:"train"`
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// maxLeaseWait bounds one long-poll request; workers re-issue.
const maxLeaseWait = 30 * time.Second

// handleLease serves POST /api/v1/fabric/lease.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing lease request: %v", err)
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request needs a worker id")
		return
	}
	ttl := time.Duration(req.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = s.leaseTTL
	}
	wait := time.Duration(req.WaitSeconds * float64(time.Second))
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	deadline := time.Now().Add(wait)
	for {
		lj, backoff, wake, err := s.queue.Lease(req.Worker, ttl)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if lj != nil {
			writeJSON(w, http.StatusOK, leaseResponse{Job: lj})
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Sleep until a submission wakes the queue, the next backoff gate
		// opens, or the long-poll budget runs out.
		pause := remaining
		if backoff > 0 && backoff < pause {
			pause = backoff
		}
		timer := time.NewTimer(pause)
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		timer.Stop()
	}
}

// handleRenew serves POST /api/v1/fabric/jobs/{id}/renew (the lease
// heartbeat).
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing renew request: %v", err)
		return
	}
	expiry, err := s.queue.RenewLease(r.PathValue("id"), req.Worker, req.Token,
		time.Duration(req.TTLSeconds*float64(time.Second)))
	if err != nil {
		writeError(w, leaseErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, renewResponse{LeaseExpiry: expiry})
}

// handleComplete serves POST /api/v1/fabric/jobs/{id}/complete.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing complete request: %v", err)
		return
	}
	id := r.PathValue("id")
	var result any
	if req.Error == "" {
		result = decodeResultByKind(s.queue.Kind(id), req.Result)
	}
	st, err := s.queue.CompleteLease(id, req.Worker, req.Token, result, req.Error)
	if err != nil {
		writeError(w, leaseErrCode(err), "%v", err)
		return
	}
	if st.State == jobs.StateDone {
		s.recordFabricResult(st, result)
	}
	writeJSON(w, http.StatusOK, st)
}

// leaseErrCode maps queue lease errors onto HTTP statuses: a lost lease is
// a conflict (the caller's attempt is void), an unknown job 404.
func leaseErrCode(err error) int {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrLeaseLost):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// recordFabricResult appends the quality-history record for a job that
// completed on a remote worker — the worker has no history store, so the
// coordinator records from the returned result instead of the runner.
func (s *Server) recordFabricResult(st jobs.Status, result any) {
	if s.history == nil && s.watchdog == nil {
		return
	}
	var seed uint64
	switch res := result.(type) {
	case *AttackCampaignResult:
		seed = res.Seed
	case *DiagnoseCampaignResult:
		seed = res.Seed
	case *StreamCampaignResult:
		seed = res.Seed
	}
	rec := qualityRunRecord(st.ID, st.TraceID, st.Kind, st.Tenant, seed,
		st.RunSeconds, st.QueueWaitSeconds, result)
	appendRunRecord(s.history, s.watchdog, obs.Log().With("job_id", st.ID), rec)
}

// handleTemplateGet serves GET /api/v1/fabric/templates/{key}: the raw
// WriteClassifier serialization.
func (s *Server) handleTemplateGet(w http.ResponseWriter, r *http.Request) {
	blob, ok := s.registry.Get(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, "template %s not in registry", r.PathValue("key"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleTemplateClaim serves POST /api/v1/fabric/templates/{key}/claim
// (?worker= names the claimer): cross-node single-flight for training.
func (s *Server) handleTemplateClaim(w http.ResponseWriter, r *http.Request) {
	train, retry := s.registry.Claim(r.PathValue("key"), r.URL.Query().Get("worker"))
	writeJSON(w, http.StatusOK, claimResponse{Train: train, RetryAfterMS: retry.Milliseconds()})
}

// handleTemplatePut serves PUT /api/v1/fabric/templates/{key}. A DELETE on
// the same path releases the caller's claim without uploading (training
// failed).
func (s *Server) handleTemplatePut(w http.ResponseWriter, r *http.Request) {
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading template: %v", err)
		return
	}
	if len(blob) == 0 {
		writeError(w, http.StatusBadRequest, "empty template upload")
		return
	}
	s.registry.Put(r.PathValue("key"), blob)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTemplateRelease(w http.ResponseWriter, r *http.Request) {
	s.registry.Release(r.PathValue("key"), r.URL.Query().Get("worker"))
	w.WriteHeader(http.StatusNoContent)
}

// DecodeCampaignPayload turns a journaled or leased campaign payload back
// into the runner's in-memory form. Every campaign kind is a CampaignSpec;
// the kind argument keeps the signature general for the queue's restore
// callback.
func DecodeCampaignPayload(kind string, raw json.RawMessage) (any, error) {
	var spec CampaignSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("service: decoding %s payload: %w", kind, err)
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// decodeResultByKind decodes a serialized campaign result into its typed
// form so the /result endpoint and the history recorder see the same
// shapes as local execution; unknown kinds (or mismatched payloads) fall
// back to the generic JSON form.
func decodeResultByKind(kind string, raw json.RawMessage) any {
	if len(raw) == 0 {
		return nil
	}
	var typed any
	switch kind {
	case KindAttack:
		typed = new(AttackCampaignResult)
	case KindDiagnose:
		typed = new(DiagnoseCampaignResult)
	case KindSleep:
		typed = new(SleepCampaignResult)
	case KindStream:
		typed = new(StreamCampaignResult)
	}
	if typed != nil && json.Unmarshal(raw, typed) == nil {
		return typed
	}
	var v any
	if json.Unmarshal(raw, &v) == nil {
		return v
	}
	return nil
}

// qualityRunRecord builds the compact quality summary of one finished
// campaign for the history store — shared by the local runner and the
// fabric completion path (which reconstructs it from the worker's
// serialized result).
func qualityRunRecord(jobID, traceID, kind, tenant string, seed uint64,
	elapsedSeconds, queueWaitSeconds float64, result any) history.RunRecord {
	rec := history.RunRecord{
		JobID:          jobID,
		TraceID:        traceID,
		Kind:           kind,
		Tenant:         tenant,
		Seed:           seed,
		ElapsedSeconds: elapsedSeconds,
		Stages:         map[string]float64{},
		Metrics:        map[string]float64{},
	}
	if queueWaitSeconds > 0 {
		rec.Stages["queue_wait_seconds"] = queueWaitSeconds
	}
	switch res := result.(type) {
	case *AttackCampaignResult:
		rec.Metrics["value_accuracy"] = res.ValueAcc
		rec.Metrics["sign_accuracy"] = res.SignAcc
		rec.Metrics["zero_accuracy"] = res.ZeroAcc
		rec.Metrics["mean_margin"] = res.MeanMargin
		if res.HintedBikz > 0 {
			rec.Metrics["hinted_bikz"] = res.HintedBikz
		}
		rec.Stages["profile_seconds"] = res.ProfileSeconds
		rec.Stages["attack_seconds"] = res.AttackSeconds
	case *StreamCampaignResult:
		rec.Metrics["value_accuracy"] = res.ValueAcc
		rec.Metrics["sign_accuracy"] = res.SignAcc
		rec.Metrics["mean_margin"] = res.MeanMargin
		rec.Metrics["ingest_bytes"] = float64(res.IngestBytes)
		rec.Metrics["ttfh_seconds"] = res.MeanTTFHSeconds
		rec.Metrics["ttv_seconds"] = res.MeanTTVSeconds
		if res.CoefficientsTotal > 0 {
			rec.Metrics["classified_ratio"] = float64(res.ClassifiedTotal) / float64(res.CoefficientsTotal)
		}
		if res.HintedBikz > 0 {
			rec.Metrics["hinted_bikz"] = res.HintedBikz
		}
		rec.Stages["profile_seconds"] = res.ProfileSeconds
		rec.Stages["stream_seconds"] = res.StreamSeconds
	case *DiagnoseCampaignResult:
		if rep := res.Report; rep != nil {
			var snrMax, tvlaMax float64
			for _, set := range rep.Sets {
				if set.SNR.Max > snrMax {
					snrMax = set.SNR.Max
				}
				for _, tt := range set.TTests {
					if tt.Summary.Max > tvlaMax {
						tvlaMax = tt.Summary.Max
					}
				}
			}
			rec.Metrics["snr_max"] = snrMax
			rec.Metrics["tvla_max"] = tvlaMax
			if rep.TotalPairs > 0 {
				rec.Metrics["leaky_pair_ratio"] = float64(rep.LeakyPairs) / float64(rep.TotalPairs)
			}
			if rep.Healthy {
				rec.Metrics["template_health"] = 1
			} else {
				rec.Metrics["template_health"] = 0
			}
		}
	}
	return rec
}
