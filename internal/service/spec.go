// Package service exposes the attack pipeline as a long-running campaign
// service: an HTTP/JSON API for submitting campaign specs, polling job
// status, and fetching results, backed by the internal/jobs queue, a
// sharded classification worker pool in internal/core, and an LRU template
// cache so repeated campaigns against the same device configuration skip
// the profiling stage.
package service

import (
	"fmt"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
)

// Campaign kinds accepted by the service.
const (
	// KindAttack profiles (or reuses cached templates), captures synthetic
	// encryptions on a deterministic device, and runs the single-trace
	// attack on each.
	KindAttack = "attack"
	// KindDiagnose runs the leakage assessment (SNR, t-tests, POI overlap,
	// template health) for the spec's device configuration.
	KindDiagnose = "diagnose"
	// KindSleep is a deterministic testing aid: it idles for SleepMS
	// milliseconds (honoring cancellation) and optionally fails its first
	// FailAttempts attempts to exercise the retry machinery end to end.
	KindSleep = "sleep"
	// KindStream runs the attack through the streaming engine: each
	// captured trace is serialized to the RVTS wire format and replayed in
	// chunks through core.StreamAttack, classifying every coefficient the
	// moment its segment closes and — with a target bikz — stopping as
	// soon as the banked hints reach it.
	KindStream = "stream"
)

// CampaignSpec is the submission payload of POST /api/v1/campaigns.
type CampaignSpec struct {
	// Kind selects the campaign type: "attack" (default), "diagnose", or
	// "sleep".
	Kind string `json:"kind"`
	// Seed makes the campaign deterministic end to end (device noise, BFV
	// keys, plaintexts).
	Seed uint64 `json:"seed"`
	// LowNoise selects the favourable measurement setup (and the richer
	// high-accuracy profiling campaign).
	LowNoise bool `json:"low_noise"`
	// ParamSet names the SEAL parameter set to attack: "" or "paper" or
	// "n1024" for the paper's legacy configuration, "n2048"/"n4096"/"n8192"
	// for the ladder sets. Larger degrees attack more coefficients per
	// trace and select the matching coefficient-modulus chain.
	ParamSet string `json:"param_set,omitempty"`
	// ProfileTracesPerValue overrides the profiling campaign scale
	// (0 keeps the device default).
	ProfileTracesPerValue int `json:"profile_traces_per_value,omitempty"`
	// Encryptions is how many single-trace attacks to run (attack kind).
	Encryptions int `json:"encryptions,omitempty"`
	// Workers overrides the per-campaign classification worker count
	// (0 uses the daemon default).
	Workers int `json:"workers,omitempty"`
	// KeepProbs embeds the full per-coefficient posterior tables of the
	// last encryption in the result (large; off by default).
	KeepProbs bool `json:"keep_probs,omitempty"`
	// EstimateBikz additionally runs the DBDD security-loss estimate on the
	// last encryption's hints and records baseline/hinted bikz in the
	// result and the quality history (adds noticeable CPU; off by default).
	EstimateBikz bool `json:"estimate_bikz,omitempty"`
	// Tenant attributes the campaign to a client identity for the
	// per-tenant service counters (optional, at most 64 characters).
	Tenant string `json:"tenant,omitempty"`

	// MaxAttempts bounds job attempts (0 uses the queue default).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// TimeoutMS, when positive, sets the job deadline (queue wait plus all
	// attempts) in milliseconds.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// SleepMS and FailAttempts configure the "sleep" testing kind.
	SleepMS      int `json:"sleep_ms,omitempty"`
	FailAttempts int `json:"fail_attempts,omitempty"`

	// TargetBikz, ChunkSamples and VerifyBatch configure the "stream" kind.
	// TargetBikz > 0 arms early exit: the stream stops ingesting the moment
	// the banked hints push the DBDD estimate to (or below) the target.
	TargetBikz float64 `json:"target_bikz,omitempty"`
	// ChunkSamples is the replay chunk size in samples (0 means 4096).
	ChunkSamples int `json:"chunk_samples,omitempty"`
	// VerifyBatch additionally runs the batch attack on each full trace and
	// records whether the stream digest matches the batch digest — the
	// determinism contract, checked end to end.
	VerifyBatch bool `json:"verify_batch,omitempty"`
}

// Normalize fills defaults and validates the spec.
func (s *CampaignSpec) Normalize() error {
	if s.Kind == "" {
		s.Kind = KindAttack
	}
	switch s.Kind {
	case KindAttack, KindDiagnose, KindSleep, KindStream:
	default:
		return fmt.Errorf("service: unknown campaign kind %q", s.Kind)
	}
	if (s.Kind == KindAttack || s.Kind == KindStream) && s.Encryptions <= 0 {
		s.Encryptions = 1
	}
	if s.Encryptions > 1000 {
		return fmt.Errorf("service: encryptions %d exceeds the per-campaign limit of 1000", s.Encryptions)
	}
	if s.ProfileTracesPerValue < 0 || s.Workers < 0 || s.MaxAttempts < 0 ||
		s.TimeoutMS < 0 || s.SleepMS < 0 || s.FailAttempts < 0 ||
		s.ChunkSamples < 0 || s.TargetBikz < 0 {
		return fmt.Errorf("service: negative values are not allowed in a campaign spec")
	}
	if s.Kind != KindStream && (s.TargetBikz != 0 || s.ChunkSamples != 0 || s.VerifyBatch) {
		return fmt.Errorf("service: target_bikz/chunk_samples/verify_batch apply only to %q campaigns", KindStream)
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("service: tenant %q exceeds 64 characters", s.Tenant)
	}
	if _, err := bfv.ResolveParamSet(s.ParamSet); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

// params resolves the spec's named parameter set (validated by Normalize).
func (s *CampaignSpec) params() (*bfv.Parameters, error) {
	return bfv.ResolveParamSet(s.ParamSet)
}

// Timeout returns the job deadline duration (0 = none).
func (s *CampaignSpec) Timeout() time.Duration {
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// attackDeviceSalt separates the attack device's PRNG stream from the
// profiling device's. The profiling device may be skipped entirely on a
// template-cache hit; a dedicated attack device keeps the captured noise
// stream — and therefore the campaign result — identical either way.
const attackDeviceSalt uint64 = 0x5EA1C0DE

// deviceAndOptions builds the spec's profiling device and profile options.
func (s *CampaignSpec) deviceAndOptions() (*core.Device, core.ProfileOptions) {
	var dev *core.Device
	var popts core.ProfileOptions
	if s.LowNoise {
		dev = core.NewLowNoiseDevice(s.Seed)
		popts = core.HighAccuracyProfileOptions()
	} else {
		dev = core.NewDevice(s.Seed)
		popts = core.DefaultProfileOptions()
	}
	if s.ProfileTracesPerValue > 0 {
		popts.TracesPerValue = s.ProfileTracesPerValue
	}
	// The profiled modulus follows the spec's parameter set, so template
	// cache keys (which hash the profile options) separate per ladder rung.
	if params, err := s.params(); err == nil {
		popts.Q = params.Moduli[0]
	}
	return dev, popts
}
