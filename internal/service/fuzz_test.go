package service

// FuzzCampaignSpec: spec decoding + Normalize must never panic, anything
// accepted must satisfy the documented bounds, and Normalize must be
// idempotent — a job re-normalized at execution time may not change.

import (
	"encoding/json"
	"testing"
)

func FuzzCampaignSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind": "attack", "seed": 7, "encryptions": 3}`))
	f.Add([]byte(`{"kind": "diagnose", "low_noise": true, "profile_traces_per_value": 40}`))
	f.Add([]byte(`{"kind": "sleep", "sleep_ms": 10, "fail_attempts": 1, "max_attempts": 3}`))
	f.Add([]byte(`{"kind": "bogus"}`))
	f.Add([]byte(`{"encryptions": 100000}`))
	f.Add([]byte(`{"workers": -1}`))
	f.Add([]byte(`{"seed": 18446744073709551615}`))
	f.Add([]byte(`{"timeout_ms": 2500, "keep_probs": true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec CampaignSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		if err := spec.Normalize(); err != nil {
			return
		}
		// Post-conditions of a normalized spec.
		switch spec.Kind {
		case KindAttack, KindDiagnose, KindSleep:
		default:
			t.Fatalf("normalized spec has kind %q", spec.Kind)
		}
		if spec.Kind == KindAttack && spec.Encryptions <= 0 {
			t.Fatal("normalized attack spec has no encryptions")
		}
		if spec.Encryptions > 1000 {
			t.Fatalf("normalized spec exceeds encryption cap: %d", spec.Encryptions)
		}
		if spec.ProfileTracesPerValue < 0 || spec.Workers < 0 || spec.MaxAttempts < 0 ||
			spec.TimeoutMS < 0 || spec.SleepMS < 0 || spec.FailAttempts < 0 {
			t.Fatal("normalized spec retains negative fields")
		}
		if spec.Timeout() < 0 {
			t.Fatalf("negative timeout %v", spec.Timeout())
		}
		// Idempotence.
		before := spec
		if err := spec.Normalize(); err != nil {
			t.Fatalf("re-normalize rejected an accepted spec: %v", err)
		}
		if spec != before {
			t.Fatalf("Normalize is not idempotent: %+v -> %+v", before, spec)
		}
	})
}
