package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reveal/internal/jobs"
	"reveal/internal/obs"
)

// newTracedService assembles the full daemon shape in-process: a recorder
// with tracing + journal installed globally (restored on cleanup), a
// service with a data directory, and the instrumented handler that mints
// and propagates trace identities — the same stack reveald wires up.
func newTracedService(t *testing.T) (*obs.Recorder, string, *httptest.Server) {
	t.Helper()
	rec := obs.New(obs.Options{TraceCapacity: 4096, TraceRing: true, EventCapacity: 256})
	prev := obs.Global()
	obs.SetGlobal(rec)
	t.Cleanup(func() { obs.SetGlobal(prev) })

	dataDir := t.TempDir()
	svc := New(Config{PoolWorkers: 1, QueueOptions: fastQueue(), CacheCapacity: 1, DataDir: dataDir})
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	ts := httptest.NewServer(obs.InstrumentHandler(rec, RouteLabel, svc.Handler()))
	t.Cleanup(ts.Close)
	return rec, dataDir, ts
}

// submitTraced posts a campaign spec with an optional X-Reveal-Trace-Id
// header and returns the echoed header plus the accepted job.
func submitTraced(t *testing.T, ts *httptest.Server, spec *CampaignSpec, traceID string) (string, jobs.Status) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK &&
		resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = HTTP %d", resp.StatusCode)
	}
	return resp.Header.Get(obs.TraceHeader), sub.Job
}

// TestTraceIDEndToEnd is the acceptance test for the tracing tentpole: one
// client-supplied trace ID must surface, verbatim, in the HTTP response
// header, the job status, the service journal, the per-job manifest.json,
// run.log, and the trace.json flow events.
func TestTraceIDEndToEnd(t *testing.T) {
	rec, dataDir, ts := newTracedService(t)
	const traceID = "e2e-trace-0001"

	echoed, st := submitTraced(t, ts, &CampaignSpec{Kind: KindSleep, SleepMS: 20, Tenant: "acme"}, traceID)
	// 1. HTTP response header.
	if echoed != traceID {
		t.Fatalf("response header echoed %q, want %q", echoed, traceID)
	}
	// 2. Job status, at submission and at completion.
	if st.TraceID != traceID || st.Tenant != "acme" {
		t.Fatalf("accepted job lost identity: %+v", st)
	}
	client := NewClient(ts.URL)
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("campaign ended %s: %s", done.State, done.Error)
	}
	if done.TraceID != traceID {
		t.Fatalf("finished status trace = %q", done.TraceID)
	}
	if done.RunSeconds <= 0 || done.QueueWaitSeconds <= 0 {
		t.Fatalf("status durations not populated: %+v", done)
	}

	// 3. Service journal: the whole lifecycle stamped with the ID.
	events, _ := rec.Events().Since(0, 1000)
	lifecycle := map[string]bool{}
	for _, ev := range events {
		if ev.TraceID == traceID {
			lifecycle[ev.Type] = true
			if ev.JobID != "" && ev.JobID != st.ID {
				t.Fatalf("trace %s attributed to foreign job %s", traceID, ev.JobID)
			}
		}
	}
	for _, typ := range []string{obs.EventJobSubmitted, obs.EventJobClaimed, obs.EventJobFinished} {
		if !lifecycle[typ] {
			t.Errorf("journal missing %s for trace %s (saw %v)", typ, traceID, lifecycle)
		}
	}

	// 4. Per-job manifest.json.
	dir := filepath.Join(dataDir, st.ID)
	m, err := obs.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceID != traceID {
		t.Fatalf("manifest trace = %q, want %q", m.TraceID, traceID)
	}

	// 5. run.log: every record carries the trace_id attribute.
	logData, err := os.ReadFile(filepath.Join(dir, "run.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logData), traceID) {
		t.Fatalf("run.log does not mention the trace ID:\n%s", logData)
	}

	// 6. trace.json: a standalone Chrome trace with the flow events for this
	// request. The artifact is exported by the runner before the queue
	// finalizes the job, so it carries the submit (s) and attempt (t) nodes;
	// the finish terminator (f) is emitted at finalization and lives in the
	// daemon-wide trace ring.
	traceData, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	if doc.Metadata["trace_id"] != traceID {
		t.Fatalf("trace.json metadata = %v", doc.Metadata)
	}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.ID == traceID {
			phases[ev.Phase] = true
		}
	}
	for _, ph := range []string{obs.FlowStart, obs.FlowStep} {
		if !phases[ph] {
			t.Errorf("trace.json missing flow phase %q (saw %v)", ph, phases)
		}
	}
	ringPhases := map[string]bool{}
	for _, ev := range rec.TraceEventsFor(traceID) {
		ringPhases[ev.Phase] = true
	}
	if !ringPhases[obs.FlowEnd] {
		t.Errorf("daemon trace ring missing the flow terminator (saw %v)", ringPhases)
	}
}

// TestTraceIDMintedAndSanitized covers the no-header and hostile-header
// paths: the middleware mints a valid ID when none is supplied and refuses
// to echo a malformed one into logs and journals.
func TestTraceIDMintedAndSanitized(t *testing.T) {
	_, _, ts := newTracedService(t)

	echoed, st := submitTraced(t, ts, &CampaignSpec{Kind: KindSleep, SleepMS: 1}, "")
	if !obs.ValidTraceID(echoed) {
		t.Fatalf("minted header %q is invalid", echoed)
	}
	if st.TraceID != echoed {
		t.Fatalf("job trace %q != echoed header %q", st.TraceID, echoed)
	}

	// In-range for an HTTP header but outside the trace-ID charset.
	hostile := "bad id!"
	echoed2, st2 := submitTraced(t, ts, &CampaignSpec{Kind: KindSleep, SleepMS: 1}, hostile)
	if echoed2 == hostile || !obs.ValidTraceID(echoed2) {
		t.Fatalf("malformed header echoed back: %q", echoed2)
	}
	if st2.TraceID != echoed2 {
		t.Fatalf("job trace %q != replacement header %q", st2.TraceID, echoed2)
	}
}

// TestStatsExposesKindsAndLatency checks /api/v1/stats carries the
// dashboard payload: worker utilization, per-kind throughput, and the
// queue-wait / attempt-latency distributions for active kinds.
func TestStatsExposesKindsAndLatency(t *testing.T) {
	_, _, ts := newTracedService(t)
	client := NewClient(ts.URL)
	ctx := context.Background()

	st, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond); err != nil || done.State != jobs.StateDone {
		t.Fatalf("sleep campaign: %+v, %v", done, err)
	}

	stats, err := client.StatsFull(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 {
		t.Errorf("workers = %d, want 1", stats.Workers)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime = %g", stats.UptimeSeconds)
	}
	var sleep *jobs.KindStats
	for i := range stats.Kinds {
		if stats.Kinds[i].Kind == KindSleep {
			sleep = &stats.Kinds[i]
		}
	}
	if sleep == nil || sleep.Submitted != 1 || sleep.Done != 1 {
		t.Fatalf("per-kind stats = %+v", stats.Kinds)
	}
	if lat, ok := stats.AttemptLatency[KindSleep]; !ok || lat.Count != 1 {
		t.Errorf("attempt latency for %s = %+v, %v", KindSleep, stats.AttemptLatency[KindSleep], ok)
	}
	if qw, ok := stats.QueueWait[KindSleep]; !ok || qw.Count != 1 {
		t.Errorf("queue wait for %s = %+v, %v", KindSleep, stats.QueueWait[KindSleep], ok)
	}
}
