package service

import (
	"sync"
	"time"

	"reveal/internal/obs"
)

// Template-registry metric names (global obs registry).
const (
	MetricTemplateRegistryBlobs  = "reveal_template_registry_blobs"
	MetricTemplateRegistryFills  = "reveal_template_registry_fills_total"
	MetricTemplateRegistryClaims = "reveal_template_registry_claims_total"
)

// TemplateRegistry is the coordinator's content-addressed store of trained
// classifiers: keys are core.TemplateCacheKey fingerprints, values the
// WriteClassifier serialization. Workers GET a template before training,
// and a claim table gives cross-node single-flight: the first worker to
// claim a missing key trains it while the rest poll, so a fleet hitting
// the same profile configuration runs the expensive profiling campaign
// once. Claims expire (the trainer may die), handing the key to the next
// claimer. Safe for concurrent use.
type TemplateRegistry struct {
	mu       sync.Mutex
	blobs    map[string][]byte
	order    []string // insertion order for FIFO eviction
	claims   map[string]claim
	capacity int
	claimTTL time.Duration
}

type claim struct {
	worker string
	expiry time.Time
}

// NewTemplateRegistry builds a registry holding at most capacity blobs
// (minimum 1); claimTTL <= 0 defaults to 2 minutes — it bounds how long a
// dead trainer can stall the other nodes waiting on its key.
func NewTemplateRegistry(capacity int, claimTTL time.Duration) *TemplateRegistry {
	if capacity < 1 {
		capacity = 1
	}
	if claimTTL <= 0 {
		claimTTL = 2 * time.Minute
	}
	return &TemplateRegistry{
		blobs:    map[string][]byte{},
		claims:   map[string]claim{},
		capacity: capacity,
		claimTTL: claimTTL,
	}
}

// Get returns the serialized classifier for key.
func (tr *TemplateRegistry) Get(key string) ([]byte, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	blob, ok := tr.blobs[key]
	return blob, ok
}

// Put stores a serialized classifier, releasing any claim on the key and
// evicting the oldest blob when the registry is full.
func (tr *TemplateRegistry) Put(key string, blob []byte) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.claims, key)
	if _, ok := tr.blobs[key]; !ok {
		tr.order = append(tr.order, key)
		for len(tr.order) > tr.capacity {
			evict := tr.order[0]
			tr.order = tr.order[1:]
			delete(tr.blobs, evict)
		}
	}
	tr.blobs[key] = blob
	reg := obs.Global().Registry()
	reg.Counter(MetricTemplateRegistryFills).Inc()
	reg.Gauge(MetricTemplateRegistryBlobs).Set(float64(len(tr.blobs)))
	obs.Emit(obs.ServiceEvent{Type: obs.EventCacheFill, Detail: "registry " + key})
}

// Claim asks for the right to train key. It returns train=true when the
// caller should run the profiling campaign and upload the result (the key
// is missing and unclaimed, or the previous claim expired); otherwise the
// caller polls Get again after retryAfter.
func (tr *TemplateRegistry) Claim(key, worker string) (train bool, retryAfter time.Duration) {
	now := time.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.blobs[key]; ok {
		return false, 0
	}
	if c, ok := tr.claims[key]; ok && now.Before(c.expiry) && c.worker != worker {
		return false, time.Until(c.expiry)
	}
	tr.claims[key] = claim{worker: worker, expiry: now.Add(tr.claimTTL)}
	obs.Global().Registry().Counter(MetricTemplateRegistryClaims).Inc()
	return true, tr.claimTTL
}

// Release abandons a claim (training failed) so another node can take it.
func (tr *TemplateRegistry) Release(key, worker string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if c, ok := tr.claims[key]; ok && c.worker == worker {
		delete(tr.claims, key)
	}
}

// Len returns the number of stored blobs.
func (tr *TemplateRegistry) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.blobs)
}
