package service

// Ladder parameter sets through the service: a campaign that names a
// parameter set must complete end-to-end through the daemon, attack the
// larger ring (2x more coefficients per trace at n=2048), and get its own
// template-cache entry (the profiled modulus is part of the cache key).

import (
	"context"
	"testing"
	"time"

	"reveal/internal/jobs"
)

func TestCampaignWithLadderParamSet(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1, CacheCapacity: 4})
	ctx := context.Background()
	spec := &CampaignSpec{
		Kind:                  KindAttack,
		Seed:                  33,
		ParamSet:              "n2048",
		ProfileTracesPerValue: 8,
		Encryptions:           1,
		Workers:               2,
	}
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 300*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("n2048 campaign ended %s: %s", done.State, done.Error)
	}
	var got AttackCampaignResult
	if err := client.Result(ctx, st.ID, &got); err != nil {
		t.Fatal(err)
	}
	if got.Coefficients != 2*2048 {
		t.Fatalf("coefficients = %d, want %d (two error polys at n=2048)", got.Coefficients, 2*2048)
	}
	if got.SignAcc < 0.5 {
		t.Errorf("sign accuracy %.3f implausibly low for the wide modulus", got.SignAcc)
	}

	// The paper-parameter campaign must NOT share a template cache entry
	// with the ladder campaign: the profiled modulus is in the key.
	base := testAttackSpec()
	stBase, err := client.Submit(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	doneBase, err := client.WaitDone(waitCtx, stBase.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if doneBase.State != jobs.StateDone {
		t.Fatalf("paper campaign ended %s: %s", doneBase.State, doneBase.Error)
	}
	var baseRes AttackCampaignResult
	if err := client.Result(ctx, stBase.ID, &baseRes); err != nil {
		t.Fatal(err)
	}
	if baseRes.TemplateKey == got.TemplateKey {
		t.Fatalf("paper and n2048 campaigns share template key %s", got.TemplateKey)
	}
}

func TestSpecParamSetValidation(t *testing.T) {
	for _, name := range []string{"", "paper", "n1024", "n2048", "n4096", "n8192"} {
		s := &CampaignSpec{Kind: KindAttack, ParamSet: name}
		if err := s.Normalize(); err != nil {
			t.Fatalf("Normalize rejected param_set %q: %v", name, err)
		}
	}
	for _, name := range []string{"n512", "bogus", "n8192x"} {
		s := &CampaignSpec{Kind: KindAttack, ParamSet: name}
		if err := s.Normalize(); err == nil {
			t.Fatalf("Normalize accepted param_set %q", name)
		}
	}
}
