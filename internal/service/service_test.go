package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/sampler"
)

// fastQueue keeps retry latencies test-friendly.
func fastQueue() jobs.Options {
	return jobs.Options{
		MaxAttempts: 3,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
	}
}

// newTestService assembles a service with an httptest front end.
func newTestService(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.QueueOptions == (jobs.Options{}) {
		cfg.QueueOptions = fastQueue()
	}
	svc := New(cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, NewClient(ts.URL)
}

// testAttackSpec is the campaign used by the end-to-end tests: paper
// parameters with a profiling campaign scaled down for test speed.
func testAttackSpec() *CampaignSpec {
	return &CampaignSpec{
		Kind:                  KindAttack,
		Seed:                  21,
		ProfileTracesPerValue: 8,
		Encryptions:           1,
		Workers:               2,
	}
}

// TestEndToEndAttackCampaign drives the full service path: submit an
// attack campaign over HTTP, wait for queued→done, fetch the result, and
// check it matches a direct replication of the runner's computation through
// the core API (same seeds, fresh devices — the service adds queueing and
// parallelism, never different numbers). A second submission of the same
// spec must hit the template cache and reproduce the identical result.
func TestEndToEndAttackCampaign(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1, CacheCapacity: 2})
	ctx := context.Background()
	spec := testAttackSpec()

	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateQueued {
		t.Fatalf("submitted state = %s, want queued", st.State)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("campaign ended %s: %s", done.State, done.Error)
	}
	var got AttackCampaignResult
	if err := client.Result(ctx, st.ID, &got); err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("first campaign cannot be a cache hit")
	}
	if got.Coefficients != 2*1024 {
		t.Fatalf("coefficients = %d, want 2048", got.Coefficients)
	}
	if got.SignAcc < 0.9 {
		t.Errorf("sign accuracy %.3f implausibly low", got.SignAcc)
	}

	// Direct replication through core, bypassing the service entirely.
	profDev, popts := spec.deviceAndOptions()
	cls, err := core.Profile(profDev, popts)
	if err != nil {
		t.Fatal(err)
	}
	attackDev := core.NewDevice(spec.Seed ^ attackDeviceSalt)
	params := bfv.PaperParameters()
	prng := sampler.NewXoshiro256(spec.Seed ^ 0xABCD)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i*31) % params.T
	}
	cap, err := core.CaptureEncryption(attackDev, params, enc, pt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cls.Attack(cap, params.N)
	if err != nil {
		t.Fatal(err)
	}
	wantV1, wantS1, err := out.E1.Accuracy(cap.Truth.E1)
	if err != nil {
		t.Fatal(err)
	}
	wantV2, wantS2, err := out.E2.Accuracy(cap.Truth.E2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(got.Runs))
	}
	r := got.Runs[0]
	if r.ValueAccE1 != wantV1 || r.SignAccE1 != wantS1 || r.ValueAccE2 != wantV2 || r.SignAccE2 != wantS2 {
		t.Errorf("service result (%.4f/%.4f, %.4f/%.4f) != direct core result (%.4f/%.4f, %.4f/%.4f)",
			r.ValueAccE1, r.SignAccE1, r.ValueAccE2, r.SignAccE2, wantV1, wantS1, wantV2, wantS2)
	}

	// Same spec again: cache hit, identical numbers.
	st2, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := client.WaitDone(waitCtx, st2.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done2.State != jobs.StateDone {
		t.Fatalf("second campaign ended %s: %s", done2.State, done2.Error)
	}
	var got2 AttackCampaignResult
	if err := client.Result(ctx, st2.ID, &got2); err != nil {
		t.Fatal(err)
	}
	if !got2.CacheHit {
		t.Error("second identical campaign missed the template cache")
	}
	if got2.ValueAcc != got.ValueAcc || got2.SignAcc != got.SignAcc {
		t.Errorf("cache-hit campaign diverged: (%.4f, %.4f) vs (%.4f, %.4f)",
			got2.ValueAcc, got2.SignAcc, got.ValueAcc, got.SignAcc)
	}
	if got2.TemplateKey != got.TemplateKey {
		t.Errorf("template keys differ: %s vs %s", got2.TemplateKey, got.TemplateKey)
	}
}

// TestJobLifecycleOverHTTP observes queued → running → done through the
// API with a single worker and two sleep campaigns.
func TestJobLifecycleOverHTTP(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1})
	ctx := context.Background()

	first, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 300})
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The single worker must be on the first job; the second stays queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st1, err := client.Campaign(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st1.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never ran: %s", st1.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st2, err := client.Campaign(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != jobs.StateQueued {
		t.Fatalf("second job = %s while first is running on 1 worker", st2.State)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for _, id := range []string{first.ID, second.ID} {
		st, err := client.WaitDone(waitCtx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	list, err := client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list))
	}
}

// TestRetryOverHTTP exercises the retry machinery through the API: a sleep
// campaign failing its first attempt succeeds on the second.
func TestRetryOverHTTP(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1})
	ctx := context.Background()
	st, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 5, FailAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.Attempts != 2 {
		t.Fatalf("job = %s after %d attempts, want done after 2 (%s)", done.State, done.Attempts, done.Error)
	}
	var res SleepCampaignResult
	if err := client.Result(ctx, st.ID, &res); err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("result attempts = %d, want 2", res.Attempts)
	}
}

// TestCancelOverHTTP cancels a running sleep campaign via DELETE.
func TestCancelOverHTTP(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1})
	ctx := context.Background()
	st, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := client.Campaign(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never ran: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateFailed || done.Error != "canceled" {
		t.Fatalf("canceled job = %s (%q)", done.State, done.Error)
	}
}

// TestShutdownDrainsRunningJob verifies SIGTERM semantics at the service
// layer: Shutdown lets the in-flight job finish and rejects new work.
func TestShutdownDrainsRunningJob(t *testing.T) {
	cfg := Config{PoolWorkers: 1, QueueOptions: fastQueue()}
	svc := New(cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	st, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep, SleepMS: 300})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := client.Campaign(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never ran: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	done, err := client.Campaign(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("in-flight job after drain = %s (%s)", done.State, done.Error)
	}
	if _, err := client.Submit(ctx, &CampaignSpec{Kind: KindSleep}); err == nil {
		t.Fatal("submission accepted after shutdown")
	}
}

// TestAPIMountedNextToObservability mounts the service API through
// obs.ServeMetricsWith and checks /healthz, /metrics, and /api/v1/stats all
// answer on one listener.
func TestAPIMountedNextToObservability(t *testing.T) {
	rec := obs.New(obs.Options{})
	svc := New(Config{PoolWorkers: 1, QueueOptions: fastQueue()})
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	srv, err := obs.ServeMetricsWith(rec, "127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/healthz", "/metrics", "/progress", "/api/v1/stats", "/api/v1/campaigns"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The API works through the shared listener too.
	client := NewClient(base)
	st, err := client.Submit(context.Background(), &CampaignSpec{Kind: KindSleep, SleepMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if done, err := client.WaitDone(waitCtx, st.ID, 10*time.Millisecond); err != nil || done.State != jobs.StateDone {
		t.Fatalf("job over shared listener: %+v, %v", done, err)
	}
}

// TestSubmitValidation checks the API rejects malformed specs.
func TestSubmitValidation(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1})
	ctx := context.Background()
	if _, err := client.Submit(ctx, &CampaignSpec{Kind: "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := client.Submit(ctx, &CampaignSpec{Kind: KindAttack, Encryptions: 5000}); err == nil {
		t.Error("oversized campaign accepted")
	}
	if _, err := client.Campaign(ctx, "job-999999"); err == nil {
		t.Error("unknown job id returned no error")
	}
	if err := client.Result(ctx, "job-999999", &struct{}{}); err == nil {
		t.Error("result of unknown job returned no error")
	}
}
