package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"reveal/internal/jobs"
)

// LoadgenOptions shapes one synthetic-load run against a reveald API:
// Jobs campaigns spread over Tenants synthetic tenants and the Kinds mix,
// submitted by Concurrency goroutines that each wait for their campaign to
// finish before submitting the next.
type LoadgenOptions struct {
	// Tenants is how many synthetic tenant identities the jobs cycle
	// through ("loadgen-0".."loadgen-N-1", minimum 1).
	Tenants int
	// Jobs is the total number of campaigns to submit (minimum 1).
	Jobs int
	// Concurrency is the number of concurrent submitters (default 8) —
	// the offered parallelism, independent of the service's worker count.
	Concurrency int
	// Kinds is the campaign mix, cycled per job (default: sleep only —
	// cheap enough that the measurement exercises the queue and fabric
	// rather than the classifier).
	Kinds []string
	// SleepMS is the duration of each sleep campaign (default 20).
	SleepMS int
	// Seed salts the per-job campaign seeds so attack campaigns across a
	// run share one template key (the realistic steady state: templates
	// train once and every job hits the cache or registry).
	Seed uint64
	// Poll is the completion poll interval (default 25 ms).
	Poll time.Duration
}

// LoadgenReport is the outcome of one load run: throughput, the
// end-to-end latency distribution (submit to terminal state), and the
// failure/backpressure tallies.
type LoadgenReport struct {
	Jobs        int      `json:"jobs"`
	Done        int      `json:"done"`
	Failed      int      `json:"failed"`
	Tenants     int      `json:"tenants"`
	Concurrency int      `json:"concurrency"`
	Kinds       []string `json:"kinds"`
	// Rejections counts HTTP 429 backpressure responses that were retried
	// (each job is eventually accepted; rejections measure queue pressure).
	Rejections int `json:"rejections"`
	// ElapsedSeconds is the wall clock of the whole run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// JobsPerSecond is Done+Failed over ElapsedSeconds — the sustained
	// campaign throughput.
	JobsPerSecond float64 `json:"jobs_per_second"`
	// Latency quantiles of submit→terminal, in seconds.
	LatencyP50Seconds float64 `json:"latency_p50_seconds"`
	LatencyP95Seconds float64 `json:"latency_p95_seconds"`
	LatencyMaxSeconds float64 `json:"latency_max_seconds"`
}

// RunLoadgen drives a synthetic campaign load against the daemon behind
// client and reports throughput and latency. Jobs that fail server-side
// count toward throughput (the service processed them); only transport
// errors abort the run.
func RunLoadgen(ctx context.Context, client *Client, opts LoadgenOptions) (*LoadgenReport, error) {
	if opts.Tenants < 1 {
		opts.Tenants = 1
	}
	if opts.Jobs < 1 {
		opts.Jobs = 1
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 8
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = []string{KindSleep}
	}
	if opts.SleepMS <= 0 {
		opts.SleepMS = 20
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}

	var (
		mu         sync.Mutex
		latencies  []float64
		done       int
		failed     int
		rejections int
		firstErr   error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	idx := make(chan int, opts.Jobs)
	for i := 0; i < opts.Jobs; i++ {
		idx <- i
	}
	close(idx)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil || func() bool { mu.Lock(); defer mu.Unlock(); return firstErr != nil }() {
					return
				}
				spec := &CampaignSpec{
					Kind:    opts.Kinds[i%len(opts.Kinds)],
					Seed:    opts.Seed,
					SleepMS: opts.SleepMS,
					Tenant:  fmt.Sprintf("loadgen-%d", i%opts.Tenants),
				}
				if spec.Kind == KindAttack {
					spec.Encryptions = 1
				}
				submitted := time.Now()
				var st jobs.Status
				for {
					var err error
					st, err = client.Submit(ctx, spec)
					if err == nil {
						break
					}
					if StatusCode(err) == http.StatusTooManyRequests {
						// Backpressure: honor the Retry-After hint's spirit
						// without hammering — it measures pressure, not failure.
						mu.Lock()
						rejections++
						mu.Unlock()
						select {
						case <-ctx.Done():
							return
						case <-time.After(100 * time.Millisecond):
						}
						continue
					}
					fail(fmt.Errorf("loadgen: submitting job %d: %w", i, err))
					return
				}
				st, err := client.WaitDone(ctx, st.ID, opts.Poll)
				if err != nil {
					fail(fmt.Errorf("loadgen: waiting for %s: %w", st.ID, err))
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(submitted).Seconds())
				if st.State == jobs.StateDone {
					done++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	elapsed := time.Since(start).Seconds()
	rep := &LoadgenReport{
		Jobs:           opts.Jobs,
		Done:           done,
		Failed:         failed,
		Tenants:        opts.Tenants,
		Concurrency:    opts.Concurrency,
		Kinds:          opts.Kinds,
		Rejections:     rejections,
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 {
		rep.JobsPerSecond = float64(done+failed) / elapsed
	}
	sort.Float64s(latencies)
	rep.LatencyP50Seconds = quantile(latencies, 0.50)
	rep.LatencyP95Seconds = quantile(latencies, 0.95)
	if n := len(latencies); n > 0 {
		rep.LatencyMaxSeconds = latencies[n-1]
	}
	return rep, nil
}

// quantile returns the q-th quantile of sorted (nearest-rank on the upper
// side, so p95 of 20 samples is the 19th).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// BenchMetrics renders the report in the BENCH_*.json metric vocabulary:
// items_per_second (higher is better) and *_seconds latencies (lower is
// better), so `revealctl compare -gate-perf` gates each in the right
// direction.
func (r *LoadgenReport) BenchMetrics() map[string]float64 {
	return map[string]float64{
		"items_per_second":    r.JobsPerSecond,
		"latency_p50_seconds": r.LatencyP50Seconds,
		"latency_p95_seconds": r.LatencyP95Seconds,
		"latency_max_seconds": r.LatencyMaxSeconds,
		"jobs":                float64(r.Jobs),
		"failed":              float64(r.Failed),
		"rejections":          float64(r.Rejections),
		"tenants":             float64(r.Tenants),
	}
}

// WriteBenchSnapshot writes the report as a BENCH_*.json benchmark
// snapshot (the `revealctl compare` input format) at path.
func (r *LoadgenReport) WriteBenchSnapshot(path, name string) error {
	nsPerOp := 0.0
	if n := r.Done + r.Failed; n > 0 {
		nsPerOp = r.ElapsedSeconds * 1e9 / float64(n)
	}
	snap := map[string]any{
		"name":             name,
		"iterations":       r.Jobs,
		"ns_per_op":        nsPerOp,
		"items_per_second": r.JobsPerSecond,
		"metrics":          r.BenchMetrics(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
