package service

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"reveal/internal/core"
	"reveal/internal/obs"
)

// RemoteTemplateCache is the fabric worker's TemplateSource: a local
// in-process LRU chained to the coordinator's content-addressed registry.
// A miss first checks the registry; a registry miss claims the key so only
// one node in the fleet runs the profiling campaign while the rest poll
// for its upload. The local LRU provides in-process single-flight on top,
// so concurrent jobs on one worker also train at most once.
type RemoteTemplateCache struct {
	// Local is the in-process LRU (required).
	Local *core.TemplateCache
	// Client talks to the coordinator (required).
	Client *Client
	// Worker names this node in registry claims.
	Worker string
	// PollInterval floors the wait between registry polls while another
	// node trains (default 250 ms).
	PollInterval time.Duration
	// ClaimTimeout bounds how long to wait on another node's training
	// before giving up and training locally anyway (default 5 min) — a
	// dead trainer must not wedge the fleet even if its claim somehow
	// never expires.
	ClaimTimeout time.Duration
}

// GetOrTrain implements TemplateSource. hit reports whether the
// classifier came from a cache (local or registry) rather than a fresh
// profiling run.
func (rc *RemoteTemplateCache) GetOrTrain(ctx context.Context, key string,
	train func(context.Context) (*core.CoefficientClassifier, error)) (*core.CoefficientClassifier, bool, error) {
	if cls, ok := rc.Local.Get(key); ok {
		return cls, true, nil
	}
	fetched := false
	cls, _, err := rc.Local.GetOrTrain(ctx, key, func(ctx context.Context) (*core.CoefficientClassifier, error) {
		cls, fromRegistry, err := rc.resolve(ctx, key, train)
		fetched = fromRegistry
		return cls, err
	})
	return cls, fetched, err
}

// resolve fetches key from the registry, or wins the training claim and
// profiles, or polls while another node does. fromRegistry reports a
// registry download (a fleet-level cache hit).
func (rc *RemoteTemplateCache) resolve(ctx context.Context, key string,
	train func(context.Context) (*core.CoefficientClassifier, error)) (cls *core.CoefficientClassifier, fromRegistry bool, err error) {
	poll := rc.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	timeout := rc.ClaimTimeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	giveUp := time.Now().Add(timeout)
	for {
		if blob, ok, gerr := rc.Client.TemplateGet(ctx, key); gerr == nil && ok {
			cls, rerr := core.ReadClassifier(bytes.NewReader(blob))
			if rerr == nil {
				obs.Log().Debug("template fetched from registry", "key", key, "bytes", len(blob))
				return cls, true, nil
			}
			// A corrupt registry blob falls through to training locally.
			obs.Log().Warn("registry template unreadable, retraining", "key", key, "error", rerr)
			break
		} else if gerr != nil {
			// Coordinator unreachable: training locally beats failing the
			// job — the upload below is best-effort anyway.
			obs.Log().Warn("registry lookup failed, training locally", "key", key, "error", gerr)
			break
		}
		trainHere, retryAfter, cerr := rc.Client.TemplateClaim(ctx, key, rc.Worker)
		if cerr != nil || trainHere {
			break
		}
		// Another node holds the claim: poll for its upload.
		if time.Now().After(giveUp) {
			obs.Log().Warn("claim wait timed out, training locally", "key", key)
			break
		}
		pause := retryAfter
		if pause <= 0 || pause > poll {
			pause = poll
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(pause):
		}
	}
	cls, err = train(ctx)
	if err != nil {
		// Hand the claim to the next node instead of stalling it for the
		// full claim TTL.
		relCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = rc.Client.TemplateRelease(relCtx, key, rc.Worker)
		cancel()
		return nil, false, err
	}
	var buf bytes.Buffer
	if werr := core.WriteClassifier(&buf, cls); werr == nil {
		if perr := rc.Client.TemplatePut(ctx, key, buf.Bytes()); perr != nil {
			obs.Log().Warn("template upload failed", "key", key, "error", perr)
		}
	} else {
		obs.Log().Warn("template not serializable for registry", "key", key, "error", werr)
	}
	return cls, false, nil
}

// compile-time interface checks: both template sources satisfy the runner.
var (
	_ TemplateSource = (*core.TemplateCache)(nil)
	_ TemplateSource = (*RemoteTemplateCache)(nil)
)

// String implements fmt.Stringer for log lines.
func (rc *RemoteTemplateCache) String() string {
	return fmt.Sprintf("remote-template-cache(%s)", rc.Client.BaseURL)
}
