package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"reveal/internal/jobs"
)

// Fabric client: the worker side of the coordinator/worker protocol.

// LeaseJob asks the coordinator for one job lease. A positive wait
// long-polls server-side; nil job means nothing was eligible in time.
func (c *Client) LeaseJob(ctx context.Context, worker string, ttl, wait time.Duration) (*jobs.LeasedJob, error) {
	var resp leaseResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/fabric/lease", leaseRequest{
		Worker:      worker,
		TTLSeconds:  ttl.Seconds(),
		WaitSeconds: wait.Seconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// RenewJobLease heartbeats a held lease and returns the new expiry. A 409
// (ErrLeaseLost server-side: the lease expired and the job was requeued,
// finished, or canceled) tells the worker to abandon the attempt.
func (c *Client) RenewJobLease(ctx context.Context, id, worker, token string, ttl time.Duration) (time.Time, error) {
	var resp renewResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/fabric/jobs/"+url.PathEscape(id)+"/renew",
		renewRequest{Worker: worker, Token: token, TTLSeconds: ttl.Seconds()}, &resp)
	return resp.LeaseExpiry, err
}

// CompleteJob reports a leased attempt's outcome (errMsg empty = success)
// and returns the job's resulting status — done, requeued for retry, or
// failed.
func (c *Client) CompleteJob(ctx context.Context, id, worker, token string, result any, errMsg string) (jobs.Status, error) {
	req := completeRequest{Worker: worker, Token: token, Error: errMsg}
	if errMsg == "" && result != nil {
		raw, err := json.Marshal(result)
		if err != nil {
			return jobs.Status{}, fmt.Errorf("service: marshaling result of %s: %w", id, err)
		}
		req.Result = raw
	}
	var st jobs.Status
	err := c.do(ctx, http.MethodPost, "/api/v1/fabric/jobs/"+url.PathEscape(id)+"/complete", req, &st)
	return st, err
}

// TemplateGet fetches a serialized classifier from the coordinator's
// registry (ok=false on 404).
func (c *Client) TemplateGet(ctx context.Context, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/fabric/templates/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode >= 300 {
		return nil, false, &APIError{Method: http.MethodGet, Path: "/api/v1/fabric/templates/{key}", Status: resp.StatusCode}
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, false, err
	}
	return blob, true, nil
}

// TemplateClaim asks for the right to train key: train=true means this
// worker profiles and uploads; otherwise poll TemplateGet again after
// retryAfter.
func (c *Client) TemplateClaim(ctx context.Context, key, worker string) (train bool, retryAfter time.Duration, err error) {
	var resp claimResponse
	err = c.do(ctx, http.MethodPost,
		"/api/v1/fabric/templates/"+url.PathEscape(key)+"/claim?worker="+url.QueryEscape(worker), nil, &resp)
	if err != nil {
		return false, 0, err
	}
	return resp.Train, time.Duration(resp.RetryAfterMS) * time.Millisecond, nil
}

// TemplatePut uploads a serialized classifier, releasing the caller's
// claim on the key.
func (c *Client) TemplatePut(ctx context.Context, key string, blob []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.BaseURL+"/api/v1/fabric/templates/"+url.PathEscape(key), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode >= 300 {
		return &APIError{Method: http.MethodPut, Path: "/api/v1/fabric/templates/{key}", Status: resp.StatusCode}
	}
	return nil
}

// TemplateRelease abandons a training claim so another node can take it.
func (c *Client) TemplateRelease(ctx context.Context, key, worker string) error {
	return c.do(ctx, http.MethodDelete,
		"/api/v1/fabric/templates/"+url.PathEscape(key)+"/claim?worker="+url.QueryEscape(worker), nil, nil)
}
