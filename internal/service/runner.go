package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/obs/history"
	"reveal/internal/sampler"
	"reveal/internal/sca"
)

// Runner executes campaign jobs: it resolves templates through the shared
// LRU cache, captures deterministic synthetic encryptions, and runs the
// (optionally sharded-parallel) single-trace attack.
// TemplateSource resolves trained classifiers by template key — the
// in-process core.TemplateCache in single-node deployments, or a
// RemoteTemplateCache chaining the local LRU to the coordinator's
// registry on fabric workers.
type TemplateSource interface {
	GetOrTrain(ctx context.Context, key string,
		train func(context.Context) (*core.CoefficientClassifier, error)) (*core.CoefficientClassifier, bool, error)
}

type Runner struct {
	// Cache is the shared template source (required).
	Cache TemplateSource
	// Workers is the default classification worker count for campaigns
	// that do not set their own (values <= 1 run serially).
	Workers int
	// DataDir, when non-empty, receives one run directory per job
	// (<DataDir>/<jobID>/manifest.json) with the campaign manifest.
	DataDir string
	// History, when non-nil, receives one compact RunRecord per completed
	// job — the persistent quality trajectory behind /api/v1/history.
	History *history.Store
	// Watchdog, when non-nil, observes every appended record and raises
	// quality_drift events when rolling aggregates fall past the pinned
	// baselines.
	Watchdog *history.Watchdog
}

// RunSummary is the outcome of one attacked encryption.
type RunSummary struct {
	Run        int     `json:"run"`
	ValueAccE1 float64 `json:"value_acc_e1"`
	SignAccE1  float64 `json:"sign_acc_e1"`
	ValueAccE2 float64 `json:"value_acc_e2"`
	SignAccE2  float64 `json:"sign_acc_e2"`
}

// AttackCampaignResult is the result payload of an "attack" campaign.
type AttackCampaignResult struct {
	Kind         string  `json:"kind"`
	Seed         uint64  `json:"seed"`
	TemplateKey  string  `json:"template_key"`
	CacheHit     bool    `json:"cache_hit"`
	Workers      int     `json:"workers"`
	Encryptions  int     `json:"encryptions"`
	Coefficients int     `json:"coefficients"`
	ValueAcc     float64 `json:"value_acc"`
	SignAcc      float64 `json:"sign_acc"`
	ZeroAcc      float64 `json:"zero_acc"`
	// MeanMargin is the mean posterior margin P(top1) − P(top2) across
	// every classified coefficient — the attack's confidence, which drops
	// before the accuracy itself does.
	MeanMargin float64 `json:"mean_margin"`
	// ProfileSeconds / AttackSeconds split the campaign wall clock into
	// template resolution (zero on a cache hit) and trace classification.
	ProfileSeconds float64      `json:"profile_seconds"`
	AttackSeconds  float64      `json:"attack_seconds"`
	Runs           []RunSummary `json:"runs"`
	// BaselineBikz / HintedBikz carry the DBDD security-loss estimate of
	// the last encryption's hints when the spec set estimate_bikz.
	BaselineBikz float64 `json:"bikz_baseline,omitempty"`
	HintedBikz   float64 `json:"bikz_with_hints,omitempty"`
	// LastProbs holds the per-coefficient posterior of the last
	// encryption's e2 polynomial when the spec asked for it.
	LastProbs []map[int]float64 `json:"last_probs,omitempty"`
	ElapsedMS int64             `json:"elapsed_ms"`
}

// DiagnoseCampaignResult is the result payload of a "diagnose" campaign.
type DiagnoseCampaignResult struct {
	Kind      string                  `json:"kind"`
	Seed      uint64                  `json:"seed"`
	Report    *core.DiagnosticsReport `json:"report"`
	ElapsedMS int64                   `json:"elapsed_ms"`
}

// SleepCampaignResult is the result payload of a "sleep" campaign.
type SleepCampaignResult struct {
	Kind     string `json:"kind"`
	SleptMS  int    `json:"slept_ms"`
	Attempts int    `json:"attempts"`
}

// Run is the jobs.Runner entry point.
func (r *Runner) Run(ctx context.Context, job *jobs.Job) (any, error) {
	spec, ok := job.Payload.(*CampaignSpec)
	if !ok {
		return nil, fmt.Errorf("service: job %s payload is %T, want *CampaignSpec", job.ID, job.Payload)
	}
	start := time.Now()
	lg, closeLog := r.jobLogger(job)
	defer closeLog()
	lg.Info("job attempt started", "kind", spec.Kind, "attempt", job.Attempts,
		"seed", spec.Seed, "tenant", job.Tenant)
	var (
		result any
		err    error
	)
	switch spec.Kind {
	case KindAttack:
		result, err = r.runAttack(ctx, spec)
	case KindDiagnose:
		result, err = r.runDiagnose(ctx, spec)
	case KindSleep:
		result, err = runSleep(ctx, spec, job.Attempts)
	case KindStream:
		result, err = r.runStream(ctx, spec)
	default:
		return nil, fmt.Errorf("service: unknown campaign kind %q", spec.Kind)
	}
	if err != nil {
		lg.Warn("job attempt failed", "attempt", job.Attempts, "error", err)
		return nil, err
	}
	lg.Info("job attempt finished", "attempt", job.Attempts,
		"elapsed", time.Since(start))
	if werr := r.writeJobArtifacts(job, spec, result, start); werr != nil {
		lg.Warn("job artifacts not fully written", "error", werr)
	}
	r.record(lg, job, spec, result, start)
	return result, nil
}

// record appends the job's compact quality summary to the history store
// and feeds the drift watchdog. Recording is best-effort: a full disk must
// not fail a job whose scientific result is already in hand.
func (r *Runner) record(lg *slog.Logger, job *jobs.Job, spec *CampaignSpec, result any, start time.Time) {
	if r.History == nil && r.Watchdog == nil {
		return
	}
	var queueWait float64
	if !job.FirstClaimedAt.IsZero() && job.FirstClaimedAt.After(job.SubmittedAt) {
		queueWait = job.FirstClaimedAt.Sub(job.SubmittedAt).Seconds()
	}
	rec := qualityRunRecord(job.ID, job.TraceID, spec.Kind, job.Tenant, spec.Seed,
		time.Since(start).Seconds(), queueWait, result)
	appendRunRecord(r.History, r.Watchdog, lg, rec)
}

// appendRunRecord persists one quality record and feeds the drift
// watchdog; shared by the local runner and the fabric completion handler.
func appendRunRecord(store *history.Store, wd *history.Watchdog, lg *slog.Logger, rec history.RunRecord) {
	if store != nil {
		stamped, err := store.Append(rec)
		if err != nil {
			lg.Warn("history record not persisted", "error", err)
		} else {
			rec = stamped
		}
	}
	if alerts := wd.Observe(rec); len(alerts) > 0 {
		for _, a := range alerts {
			lg.Warn("quality drift detected", "kind", a.Kind, "metric", a.Metric,
				"baseline", a.Baseline, "current", a.Current,
				"rel_delta", a.RelDelta, "tolerance", a.Tolerance)
		}
	}
}

// sumTopMargins accumulates the top1−top2 posterior margin over every
// coefficient's probability table.
func sumTopMargins(probs []map[int]float64) (sum float64, n int) {
	for _, table := range probs {
		if m, ok := sca.TopMargin(table); ok {
			sum += m
			n++
		}
	}
	return sum, n
}

// jobLogger builds the job-scoped logger: the global stream teed with the
// job's <DataDir>/<jobID>/run.log (JSON records), every record stamped
// with the job ID and the request trace ID so a single grep correlates
// daemon logs with the originating HTTP request. The returned closer
// flushes the file; both are safe no-op fallbacks when DataDir is unset
// or the file cannot be created.
func (r *Runner) jobLogger(job *jobs.Job) (*slog.Logger, func()) {
	attrs := func(lg *slog.Logger) *slog.Logger {
		lg = lg.With("job_id", job.ID)
		if job.TraceID != "" {
			lg = lg.With("trace_id", job.TraceID)
		}
		return lg
	}
	if r.DataDir == "" {
		return attrs(obs.Log()), func() {}
	}
	dir := filepath.Join(r.DataDir, job.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return attrs(obs.Log()), func() {}
	}
	// Append: a retried job logs every attempt into the same run.log.
	f, err := os.OpenFile(filepath.Join(dir, "run.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return attrs(obs.Log()), func() {}
	}
	fileLg := obs.NewLogger(obs.LogOptions{Level: slog.LevelDebug, JSON: true, Output: f})
	return attrs(obs.TeeLogger(obs.Log(), fileLg)), func() { _ = f.Close() }
}

// classifier resolves the spec's trained classifier through the template
// cache, profiling on a miss.
func (r *Runner) classifier(ctx context.Context, spec *CampaignSpec) (*core.CoefficientClassifier, string, bool, error) {
	profDev, popts := spec.deviceAndOptions()
	key := core.TemplateCacheKey(profDev, popts)
	cls, hit, err := r.Cache.GetOrTrain(ctx, key, func(ctx context.Context) (*core.CoefficientClassifier, error) {
		return core.ProfileCtx(ctx, profDev, popts)
	})
	if err != nil {
		return nil, key, false, fmt.Errorf("service: profiling for %s: %w", key, err)
	}
	return cls, key, hit, nil
}

// workersFor resolves the effective classification worker count.
func (r *Runner) workersFor(spec *CampaignSpec) int {
	w := spec.Workers
	if w == 0 {
		w = r.Workers
	}
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runAttack executes an "attack" campaign. The attacked device is a fresh
// one salted away from the profiling device, so the captured noise stream
// (and therefore the result) is byte-identical whether the templates came
// from the cache or a fresh profiling run.
func (r *Runner) runAttack(ctx context.Context, spec *CampaignSpec) (*AttackCampaignResult, error) {
	start := time.Now()
	cls, key, hit, err := r.classifier(ctx, spec)
	if err != nil {
		return nil, err
	}
	profileElapsed := time.Since(start)
	var attackDev *core.Device
	if spec.LowNoise {
		attackDev = core.NewLowNoiseDevice(spec.Seed ^ attackDeviceSalt)
	} else {
		attackDev = core.NewDevice(spec.Seed ^ attackDeviceSalt)
	}
	params, err := spec.params()
	if err != nil {
		return nil, err
	}
	prng := sampler.NewXoshiro256(spec.Seed ^ 0xABCD)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)

	workers := r.workersFor(spec)
	res := &AttackCampaignResult{
		Kind: spec.Kind, Seed: spec.Seed, TemplateKey: key, CacheHit: hit,
		Workers: workers, Encryptions: spec.Encryptions,
	}
	valOK, signOK, zeroOK, zeroTotal, total := 0, 0, 0, 0, 0
	var marginSum float64
	marginN := 0
	var lastOutcome *core.AttackOutcome
	for run := 0; run < spec.Encryptions; run++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("service: campaign canceled at encryption %d/%d: %w",
				run, spec.Encryptions, err)
		}
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64(i*31+run*7) % params.T
		}
		cap, err := core.CaptureEncryptionCtx(ctx, attackDev, params, enc, pt)
		if err != nil {
			return nil, fmt.Errorf("service: capturing encryption %d: %w", run, err)
		}
		out, err := cls.AttackWithOptions(ctx, cap, params.N, core.AttackOptions{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("service: attacking encryption %d: %w", run, err)
		}
		rs := RunSummary{Run: run}
		if rs.ValueAccE1, rs.SignAccE1, err = out.E1.Accuracy(cap.Truth.E1); err != nil {
			return nil, err
		}
		if rs.ValueAccE2, rs.SignAccE2, err = out.E2.Accuracy(cap.Truth.E2); err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, rs)
		score := func(ar *core.AttackResult, truth []int64) {
			for i, v := range ar.Values {
				tv := int(truth[i])
				total++
				if v == tv {
					valOK++
				}
				if ar.Signs[i] == sca.SignOf(tv) {
					signOK++
				}
				if tv == 0 {
					zeroTotal++
					if v == 0 {
						zeroOK++
					}
				}
			}
		}
		score(out.E1, cap.Truth.E1)
		score(out.E2, cap.Truth.E2)
		for _, probs := range [][]map[int]float64{out.E1.Probs, out.E2.Probs} {
			s, n := sumTopMargins(probs)
			marginSum += s
			marginN += n
		}
		core.EmitOutcomeEventsCtx(ctx, out, cap)
		lastOutcome = out
		if spec.KeepProbs && run == spec.Encryptions-1 {
			res.LastProbs = out.E2.Probs
		}
	}
	res.Coefficients = total
	if total > 0 {
		res.ValueAcc = float64(valOK) / float64(total)
		res.SignAcc = float64(signOK) / float64(total)
	}
	if zeroTotal > 0 {
		res.ZeroAcc = float64(zeroOK) / float64(zeroTotal)
	}
	if marginN > 0 {
		res.MeanMargin = marginSum / float64(marginN)
	}
	if spec.EstimateBikz && lastOutcome != nil {
		loss, err := core.EstimateFullHints(params, lastOutcome.E2)
		if err != nil {
			return nil, fmt.Errorf("service: estimating hinted security: %w", err)
		}
		res.BaselineBikz = loss.BaselineBikz
		res.HintedBikz = loss.HintedBikz
	}
	res.ProfileSeconds = profileElapsed.Seconds()
	res.AttackSeconds = time.Since(start).Seconds() - res.ProfileSeconds
	res.ElapsedMS = time.Since(start).Milliseconds()
	obs.LogCtx(ctx).Info("attack campaign finished",
		"seed", spec.Seed, "encryptions", spec.Encryptions,
		"coefficients", res.Coefficients, "value_acc", res.ValueAcc,
		"cache_hit", hit, "workers", workers)
	return res, nil
}

// runDiagnose executes a "diagnose" campaign.
func (r *Runner) runDiagnose(ctx context.Context, spec *CampaignSpec) (*DiagnoseCampaignResult, error) {
	start := time.Now()
	dev, popts := spec.deviceAndOptions()
	report, err := core.DiagnoseCtx(ctx, dev, core.DiagnosticsOptions{Profile: popts})
	if err != nil {
		return nil, err
	}
	return &DiagnoseCampaignResult{
		Kind: spec.Kind, Seed: spec.Seed, Report: report,
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

// runSleep executes the "sleep" testing kind.
func runSleep(ctx context.Context, spec *CampaignSpec, attempt int) (*SleepCampaignResult, error) {
	if attempt <= spec.FailAttempts {
		return nil, fmt.Errorf("service: induced failure on attempt %d/%d", attempt, spec.FailAttempts)
	}
	d := time.Duration(spec.SleepMS) * time.Millisecond
	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, fmt.Errorf("service: sleep canceled: %w", ctx.Err())
		}
	}
	return &SleepCampaignResult{Kind: spec.Kind, SleptMS: spec.SleepMS, Attempts: attempt}, nil
}

// writeJobArtifacts archives one finished job into DataDir/<jobID>/:
// manifest.json (spec, headline results, registry snapshot, trace ID) and
// — when tracing is on and the job carries a trace identity — trace.json
// with the job's slice of the span/flow event buffer. Manifests are
// written directly (not through obs.StartRun, which swaps the global
// recorder and is not safe with concurrent jobs).
func (r *Runner) writeJobArtifacts(job *jobs.Job, spec *CampaignSpec, result any, start time.Time) error {
	if r.DataDir == "" {
		return nil
	}
	dir := filepath.Join(r.DataDir, job.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	end := time.Now().UTC()
	m := &obs.Manifest{
		Tool:            "reveald",
		Command:         spec.Kind,
		TraceID:         job.TraceID,
		Seed:            spec.Seed,
		GoVersion:       runtime.Version(),
		StartTime:       start.UTC(),
		EndTime:         end,
		DurationSeconds: end.Sub(start.UTC()).Seconds(),
		Config:          cfg,
		Results:         map[string]any{"job_id": job.ID, "result": result},
		Metrics:         obs.Global().Registry().Snapshot(),
	}
	firstErr := obs.WriteManifest(filepath.Join(dir, "manifest.json"), m)
	if rec := obs.Global(); rec.TracingEnabled() && job.TraceID != "" {
		f, err := os.Create(filepath.Join(dir, "trace.json"))
		if err == nil {
			err = rec.WriteTraceJSONFor(f, job.TraceID)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("service: writing trace.json: %w", err)
		}
	}
	return firstErr
}
