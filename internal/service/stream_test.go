package service

import (
	"context"
	"testing"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/jobs"
)

// TestEndToEndStreamCampaign drives the stream kind through the full
// service path twice against one template cache: first with batch
// verification (the determinism contract end to end — stream digest must
// match the batch digest, no early exit), then with a target bikz armed
// (must exit before classifying the full polynomial).
func TestEndToEndStreamCampaign(t *testing.T) {
	_, client := newTestService(t, Config{PoolWorkers: 1, CacheCapacity: 2})
	ctx := context.Background()

	submit := func(spec *CampaignSpec) *StreamCampaignResult {
		t.Helper()
		st, err := client.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		waitCtx, cancel := context.WithTimeout(ctx, 180*time.Second)
		defer cancel()
		done, err := client.WaitDone(waitCtx, st.ID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != jobs.StateDone {
			t.Fatalf("campaign ended %s: %s", done.State, done.Error)
		}
		var got StreamCampaignResult
		if err := client.Result(ctx, st.ID, &got); err != nil {
			t.Fatal(err)
		}
		return &got
	}

	full := submit(&CampaignSpec{
		Kind: KindStream, Seed: 21, ProfileTracesPerValue: 8,
		VerifyBatch: true, ChunkSamples: 2048,
	})
	if !full.DigestsMatch {
		t.Error("stream digest does not match the batch digest")
	}
	if full.EarlyExitRuns != 0 {
		t.Errorf("early exit fired without a target bikz (%d runs)", full.EarlyExitRuns)
	}
	if full.CoefficientsTotal != 1024 || full.ClassifiedTotal != 1024 {
		t.Errorf("classified %d of %d coefficients, want 1024 of 1024",
			full.ClassifiedTotal, full.CoefficientsTotal)
	}
	if full.IngestBytes <= 0 {
		t.Error("no RVTS ingest bytes recorded")
	}
	if full.SignAcc < 0.9 {
		t.Errorf("sign accuracy %.3f implausibly low", full.SignAcc)
	}
	if full.MeanTTVSeconds <= 0 || full.MeanTTFHSeconds <= 0 ||
		full.MeanTTFHSeconds > full.MeanTTVSeconds {
		t.Errorf("latencies out of order: ttfh %.6fs, ttv %.6fs",
			full.MeanTTFHSeconds, full.MeanTTVSeconds)
	}

	// Aim between the baseline and the (far lower) full-hint estimate: a
	// few percent below the baseline is reached after a fraction of the
	// coefficients, so the stream must stop mid-trace.
	inst, err := core.LWEInstanceForParams(bfv.PaperParameters())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := inst.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	early := submit(&CampaignSpec{
		Kind: KindStream, Seed: 21, ProfileTracesPerValue: 8,
		TargetBikz: baseline * 0.95,
	})
	if !early.CacheHit {
		t.Error("second campaign with the same profile must hit the template cache")
	}
	if early.EarlyExitRuns != 1 {
		t.Fatalf("early_exit_runs = %d, want 1", early.EarlyExitRuns)
	}
	if early.ClassifiedTotal >= early.CoefficientsTotal {
		t.Errorf("classified %d of %d coefficients despite early exit",
			early.ClassifiedTotal, early.CoefficientsTotal)
	}
	if early.HintedBikz > baseline*0.95 || early.HintedBikz <= 0 {
		t.Errorf("verdict bikz %.2f not at or below the target %.2f",
			early.HintedBikz, baseline*0.95)
	}
	if early.IngestBytes >= full.IngestBytes {
		t.Errorf("early exit ingested %d bytes, full run only %d",
			early.IngestBytes, full.IngestBytes)
	}
}

// TestStreamSpecValidation pins the stream-only field rules.
func TestStreamSpecValidation(t *testing.T) {
	s := &CampaignSpec{Kind: KindStream}
	if err := s.Normalize(); err != nil {
		t.Fatalf("minimal stream spec rejected: %v", err)
	}
	if s.Encryptions != 1 {
		t.Errorf("stream encryptions default = %d, want 1", s.Encryptions)
	}
	for _, bad := range []*CampaignSpec{
		{Kind: KindAttack, TargetBikz: 10},
		{Kind: KindAttack, ChunkSamples: 64},
		{Kind: KindSleep, VerifyBatch: true},
		{Kind: KindStream, TargetBikz: -1},
		{Kind: KindStream, ChunkSamples: -1},
	} {
		if err := bad.Normalize(); err == nil {
			t.Errorf("spec %+v accepted, want error", bad)
		}
	}
}
