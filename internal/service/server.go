package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"reveal/internal/core"
	"reveal/internal/jobs"
	"reveal/internal/obs"
	"reveal/internal/obs/history"
)

// Config assembles a Server.
type Config struct {
	// QueueOptions configures the job queue (zero value → DefaultOptions).
	QueueOptions jobs.Options
	// PoolWorkers is how many jobs run concurrently (minimum 1).
	PoolWorkers int
	// ClassifyWorkers is the default per-job classification parallelism
	// (0 → GOMAXPROCS at run time).
	ClassifyWorkers int
	// CacheCapacity bounds the template cache (minimum 1).
	CacheCapacity int
	// DataDir, when set, receives per-job run directories with manifests.
	DataDir string
	// History, when set, persists one quality RunRecord per completed job
	// and backs the /api/v1/history endpoints.
	History *history.Store
	// Watchdog, when set (requires History to be useful), watches the
	// recorded quality trajectory for drift against pinned baselines.
	Watchdog *history.Watchdog
	// LeaseTTL is the default fabric lease duration granted to workers that
	// do not request one (0 → jobs.DefaultLeaseTTL).
	LeaseTTL time.Duration
}

// Server is the campaign service: the queue, the worker pool (absent on a
// pure coordinator), the template cache and registry, the quality-history
// store, and the HTTP API over them.
type Server struct {
	queue    *jobs.Queue
	pool     *jobs.Pool
	cache    *core.TemplateCache
	registry *TemplateRegistry
	runner   *Runner
	history  *history.Store
	watchdog *history.Watchdog
	leaseTTL time.Duration
	mux      *http.ServeMux
	started  time.Time
}

// New assembles a Server. Call Start to launch the workers. PoolWorkers
// < 0 builds a pure coordinator: no in-process pool, every job executes on
// fabric workers leasing over HTTP.
func New(cfg Config) *Server {
	if cfg.QueueOptions == (jobs.Options{}) {
		cfg.QueueOptions = jobs.DefaultOptions()
	}
	if cfg.PoolWorkers == 0 {
		cfg.PoolWorkers = 1
	}
	if cfg.CacheCapacity < 1 {
		cfg.CacheCapacity = 4
	}
	s := &Server{
		queue:    jobs.NewQueue(cfg.QueueOptions),
		cache:    core.NewTemplateCache(cfg.CacheCapacity),
		registry: NewTemplateRegistry(4*cfg.CacheCapacity, 0),
		history:  cfg.History,
		watchdog: cfg.Watchdog,
		leaseTTL: cfg.LeaseTTL,
		started:  time.Now(),
	}
	if s.leaseTTL <= 0 {
		s.leaseTTL = jobs.DefaultLeaseTTL
	}
	s.runner = &Runner{Cache: s.cache, Workers: cfg.ClassifyWorkers, DataDir: cfg.DataDir,
		History: cfg.History, Watchdog: cfg.Watchdog}
	if cfg.PoolWorkers > 0 {
		s.pool = jobs.NewPool(s.queue, cfg.PoolWorkers, s.runner.Run)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGet)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/v1/history", s.handleHistory)
	s.mux.HandleFunc("GET /api/v1/history/aggregate", s.handleHistoryAggregate)
	s.mux.HandleFunc("POST /api/v1/fabric/lease", s.handleLease)
	s.mux.HandleFunc("POST /api/v1/fabric/jobs/{id}/renew", s.handleRenew)
	s.mux.HandleFunc("POST /api/v1/fabric/jobs/{id}/complete", s.handleComplete)
	s.mux.HandleFunc("GET /api/v1/fabric/templates/{key}", s.handleTemplateGet)
	s.mux.HandleFunc("POST /api/v1/fabric/templates/{key}/claim", s.handleTemplateClaim)
	s.mux.HandleFunc("PUT /api/v1/fabric/templates/{key}", s.handleTemplatePut)
	s.mux.HandleFunc("DELETE /api/v1/fabric/templates/{key}/claim", s.handleTemplateRelease)
	return s
}

// Start launches the worker pool (no-op on a pure coordinator).
func (s *Server) Start() {
	if s.pool != nil {
		s.pool.Start()
	}
}

// Shutdown drains the service: no new submissions, running jobs finish
// until ctx expires, then they are canceled. On a pure coordinator it
// waits for leased jobs to finish or expire instead.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.pool != nil {
		return s.pool.Shutdown(ctx)
	}
	s.queue.StopAccepting()
	for {
		_, running := s.queue.Depth()
		if running == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: %d leased jobs still running at shutdown", running)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Handler returns the API handler (routes under /api/v1/). It is mounted
// by obs.ServeMetricsWith next to /metrics and /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Queue exposes the underlying queue (used by tests and revealctl-adjacent
// tooling).
func (s *Server) Queue() *jobs.Queue { return s.queue }

// RouteLabel maps an API request to its bounded route template for the
// per-route HTTP metrics (passed as obs.ServeConfig.APIRoute). Raw paths
// never become label values, so crafted URLs cannot grow the label space.
func RouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/api/v1/campaigns":
		return "/api/v1/campaigns"
	case p == "/api/v1/stats":
		return "/api/v1/stats"
	case p == "/api/v1/history":
		return "/api/v1/history"
	case p == "/api/v1/history/aggregate":
		return "/api/v1/history/aggregate"
	case p == "/api/v1/fabric/lease":
		return "/api/v1/fabric/lease"
	case strings.HasPrefix(p, "/api/v1/fabric/jobs/"):
		if strings.HasSuffix(p, "/renew") {
			return "/api/v1/fabric/jobs/{id}/renew"
		}
		if strings.HasSuffix(p, "/complete") {
			return "/api/v1/fabric/jobs/{id}/complete"
		}
		return "/api/other"
	case strings.HasPrefix(p, "/api/v1/fabric/templates/"):
		if strings.HasSuffix(p, "/claim") {
			return "/api/v1/fabric/templates/{key}/claim"
		}
		return "/api/v1/fabric/templates/{key}"
	case strings.HasPrefix(p, "/api/v1/campaigns/"):
		if strings.HasSuffix(p, "/result") {
			return "/api/v1/campaigns/{id}/result"
		}
		return "/api/v1/campaigns/{id}"
	}
	return "/api/other"
}

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse is the POST /campaigns payload.
type submitResponse struct {
	Job  jobs.Status   `json:"job"`
	Spec *CampaignSpec `json:"spec"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "parsing campaign spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The trace identity was minted (or adopted from X-Reveal-Trace-Id) by
	// the HTTP middleware; stamping it on the job spec carries it across
	// the queue into the worker, and the flow event ties the HTTP request
	// node to the queue/attempt nodes in the Chrome trace export.
	traceID := obs.TraceIDFrom(r.Context())
	if traceID != "" {
		obs.FlowEvent(traceID, obs.FlowStart, "submit", map[string]any{
			"kind": spec.Kind, "tenant": spec.Tenant,
		})
	}
	st, err := s.queue.Submit(jobs.Spec{
		Kind:        spec.Kind,
		Payload:     &spec,
		MaxAttempts: spec.MaxAttempts,
		Timeout:     spec.Timeout(),
		TraceID:     traceID,
		Tenant:      spec.Tenant,
	})
	if err != nil {
		// Backpressure rejections are 429 with a Retry-After hint so
		// well-behaved clients (and the loadgen harness) back off instead
		// of hammering a saturated coordinator.
		if errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrOverQuota) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	obs.LogCtx(r.Context()).Info("campaign accepted",
		"id", st.ID, "kind", spec.Kind, "tenant", spec.Tenant, "seed", spec.Seed)
	writeJSON(w, http.StatusAccepted, submitResponse{Job: st, Spec: &spec})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.queue.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %s", r.PathValue("id"))
		return
	}
	switch st.State {
	case jobs.StateDone:
		writeJSON(w, http.StatusOK, st.Result)
	case jobs.StateFailed:
		writeError(w, http.StatusConflict, "campaign %s failed: %s", st.ID, st.Error)
	default:
		writeError(w, http.StatusConflict, "campaign %s is %s", st.ID, st.State)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.queue.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, _ := s.queue.Get(id)
	writeJSON(w, http.StatusOK, st)
}

// StatsResponse is the GET /api/v1/stats payload: queue depth, worker
// utilization, per-kind throughput, and the queue-wait / attempt-latency
// distributions the revealctl top dashboard renders.
type StatsResponse struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Leased is how many of the running jobs are held by fabric workers
	// under a lease (0 in single-process deployments).
	Leased          int `json:"leased,omitempty"`
	CachedTemplates int `json:"cached_templates"`
	// RegistryTemplates counts the serialized classifiers in the fabric
	// template registry.
	RegistryTemplates int              `json:"registry_templates,omitempty"`
	Workers           int              `json:"workers"`
	WorkersBusy       int              `json:"workers_busy"`
	UptimeSeconds     float64          `json:"uptime_seconds"`
	Kinds             []jobs.KindStats `json:"kinds,omitempty"`
	// QueueWait and AttemptLatency summarize the per-kind histograms
	// (reveal_jobs_queue_wait_seconds / reveal_jobs_attempt_duration_seconds)
	// keyed by job kind.
	QueueWait      map[string]obs.HistogramSnapshot `json:"queue_wait,omitempty"`
	AttemptLatency map[string]obs.HistogramSnapshot `json:"attempt_latency,omitempty"`
}

// HistoryResponse is the GET /api/v1/history payload: a page of quality
// records (oldest first) plus the cursor for the next page.
type HistoryResponse struct {
	Records []history.RunRecord `json:"records"`
	// NextAfter is the cursor for the next page: pass it back as ?after=.
	// Zero when this page exhausts the match set.
	NextAfter int64 `json:"next_after,omitempty"`
	// Total counts every stored record matching the filter, ignoring the
	// cursor and the page limit.
	Total int `json:"total"`
}

// handleHistory serves GET /api/v1/history?kind=&tenant=&after=&limit=.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusServiceUnavailable, "history store disabled (start reveald with -data-dir)")
		return
	}
	q := history.Query{
		Kind:   r.URL.Query().Get("kind"),
		Tenant: r.URL.Query().Get("tenant"),
	}
	var err error
	if q.AfterSeq, err = parseInt64Param(r, "after"); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := parseInt64Param(r, "limit")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.Limit = int(limit)
	res := s.history.Query(q)
	next := res.NextAfter
	if len(res.Records) == 0 {
		next = 0
	} else {
		// Peek one record past the page: a cursor is only returned when
		// another page exists, so clients can loop until next_after == 0.
		peek := q
		peek.AfterSeq, peek.Limit = next, 1
		if len(s.history.Query(peek).Records) == 0 {
			next = 0
		}
	}
	writeJSON(w, http.StatusOK, HistoryResponse{
		Records: res.Records, NextAfter: next, Total: res.Total,
	})
}

// HistoryAggregateResponse is the GET /api/v1/history/aggregate payload:
// per-kind rollups plus the watchdog's pinned baselines (when a watchdog
// is running).
type HistoryAggregateResponse struct {
	Aggregates []history.KindAggregate       `json:"aggregates"`
	Baselines  map[string]map[string]float64 `json:"baselines,omitempty"`
}

// handleHistoryAggregate serves GET /api/v1/history/aggregate?kind=&tenant=&window=.
func (s *Server) handleHistoryAggregate(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusServiceUnavailable, "history store disabled (start reveald with -data-dir)")
		return
	}
	window, err := parseInt64Param(r, "window")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	kind := r.URL.Query().Get("kind")
	tenant := r.URL.Query().Get("tenant")
	var kinds []string
	if kind != "" {
		kinds = []string{kind}
	} else {
		kinds = s.history.Kinds()
	}
	resp := HistoryAggregateResponse{Aggregates: []history.KindAggregate{}}
	for _, k := range kinds {
		agg := s.history.Aggregate(k, tenant, int(window))
		if agg.Runs > 0 {
			resp.Aggregates = append(resp.Aggregates, agg)
		}
	}
	if s.watchdog != nil {
		resp.Baselines = s.watchdog.Baselines()
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseInt64Param reads a non-negative integer query parameter, treating an
// absent or empty value as zero.
func parseInt64Param(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid %s parameter %q", name, raw)
	}
	return v, nil
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	queued, running := s.queue.Depth()
	var workers, busy int
	if s.pool != nil {
		workers, busy = s.pool.Stats()
	}
	resp := StatsResponse{
		Queued:            queued,
		Running:           running,
		Leased:            s.queue.Leased(),
		CachedTemplates:   s.cache.Len(),
		RegistryTemplates: s.registry.Len(),
		Workers:           workers,
		WorkersBusy:       busy,
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Kinds:             s.queue.StatsByKind(),
	}
	if reg := obs.Global().Registry(); reg != nil {
		for _, ks := range resp.Kinds {
			if ks.Submitted == 0 {
				continue
			}
			if resp.QueueWait == nil {
				resp.QueueWait = map[string]obs.HistogramSnapshot{}
				resp.AttemptLatency = map[string]obs.HistogramSnapshot{}
			}
			resp.QueueWait[ks.Kind] = reg.Histogram(
				obs.LabelKey(jobs.MetricQueueWait, "kind", ks.Kind)).Snapshot()
			resp.AttemptLatency[ks.Kind] = reg.Histogram(
				obs.LabelKey(jobs.MetricAttemptDuration, "kind", ks.Kind)).Snapshot()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
