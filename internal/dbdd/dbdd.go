// Package dbdd implements the "LWE with side information" framework of
// Dachman-Soled, Ducas, Gong and Rossi (CRYPTO 2020) — reference [31] of
// the paper — in the lightweight per-coordinate form the RevEAL attack
// needs: a Distorted Bounded Distance Decoding instance tracked as
// per-coordinate means/variances plus the lattice dimension and volume,
// into which perfect, approximate, and modular hints are integrated, and
// from which the remaining hardness is reported as a BKZ block size
// ("bikz") via the Gaussian-heuristic/GSA intersection estimator.
package dbdd

import (
	"fmt"
	"math"

	"reveal/internal/obs"
)

// BitsPerBikz converts block size to bits of security: the paper (and
// [31]) state that bikz ≈ 2.98 × bit-security for these parameter ranges
// (382.25 bikz ↔ 128 bits).
const BitsPerBikz = 382.25 / 128.0

// Instance is a DBDD instance with diagonal covariance: the unknown vector
// is (secret coords, error coords) of length NSecret+NError; the embedding
// lattice has dimension NSecret+NError+1 (homogenization) and volume
// q^NError.
type Instance struct {
	// Var and Mu are the per-coordinate posterior variance and mean of the
	// unknown vector. Eliminated coordinates have Var = 0 and are excluded
	// from the dimension.
	Var []float64
	Mu  []float64

	eliminated []bool
	dim        int     // remaining lattice dimension (incl. homogenization)
	logVol     float64 // natural log of the lattice volume

	// Ellip tracks the squared-norm budget of the normalized target (the
	// ellipsoid trace); kept for diagnostics.
	nHints int
}

// NewLWEInstance creates the DBDD instance for an LWE problem with n
// secret coordinates of variance sigmaS2, m error coordinates of variance
// sigmaE2, and modulus q. This is the primal embedding: dim = n+m+1,
// vol = q^m.
func NewLWEInstance(n, m int, q float64, sigmaS2, sigmaE2 float64) (*Instance, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("dbdd: dimensions must be positive (n=%d m=%d)", n, m)
	}
	if q <= 1 || sigmaS2 <= 0 || sigmaE2 <= 0 {
		return nil, fmt.Errorf("dbdd: invalid parameters q=%v sigmaS2=%v sigmaE2=%v", q, sigmaS2, sigmaE2)
	}
	inst := &Instance{
		Var:        make([]float64, n+m),
		Mu:         make([]float64, n+m),
		eliminated: make([]bool, n+m),
		dim:        n + m + 1,
		logVol:     float64(m) * math.Log(q),
	}
	for i := 0; i < n; i++ {
		inst.Var[i] = sigmaS2
	}
	for i := n; i < n+m; i++ {
		inst.Var[i] = sigmaE2
	}
	return inst, nil
}

// Dim returns the current lattice dimension (with homogenization).
func (in *Instance) Dim() int { return in.dim }

// LogVol returns ln(volume) of the current lattice.
func (in *Instance) LogVol() float64 { return in.logVol }

// HintCount returns how many hints have been integrated.
func (in *Instance) HintCount() int { return in.nHints }

// PerfectHint integrates ⟨s, e_i⟩ = value: the coordinate becomes known,
// the lattice dimension drops by one, and — because the coordinate vector
// e_i is primitive in the dual of the primal embedding lattice — the
// volume is unchanged (Lemma "vol(Λ ∩ v⊥) = vol(Λ)·‖v‖" of [31]).
func (in *Instance) PerfectHint(coord int, value float64) error {
	if err := in.checkCoord(coord); err != nil {
		return err
	}
	in.eliminated[coord] = true
	in.Var[coord] = 0
	in.Mu[coord] = value
	in.dim--
	in.nHints++
	return nil
}

// ApproximateHint integrates ⟨s, e_i⟩ = value + ε with ε of variance
// epsVar, by Gaussian conditioning of the (diagonal) covariance:
//
//	σ'² = σ²·σε² / (σ² + σε²),  μ' = (μ·σε² + value·σ²) / (σ² + σε²).
//
// Lattice dimension and volume are unchanged.
func (in *Instance) ApproximateHint(coord int, value, epsVar float64) error {
	if err := in.checkCoord(coord); err != nil {
		return err
	}
	if epsVar < 0 {
		return fmt.Errorf("dbdd: negative hint variance %v", epsVar)
	}
	if epsVar == 0 {
		return in.PerfectHint(coord, value)
	}
	s2 := in.Var[coord]
	in.Mu[coord] = (in.Mu[coord]*epsVar + value*s2) / (s2 + epsVar)
	in.Var[coord] = s2 * epsVar / (s2 + epsVar)
	in.nHints++
	return nil
}

// ModularHint integrates ⟨s, e_i⟩ ≡ value (mod k). When k is large
// relative to the prior deviation the hint is effectively perfect;
// otherwise the posterior is (approximately) the prior restricted to a
// residue class, whose variance we take as the conditional variance of a
// uniform residue offset, min(σ², k²/12).
func (in *Instance) ModularHint(coord int, value float64, k int) error {
	if err := in.checkCoord(coord); err != nil {
		return err
	}
	if k < 2 {
		return fmt.Errorf("dbdd: modular hint modulus %d must be ≥ 2", k)
	}
	sigma := math.Sqrt(in.Var[coord])
	if float64(k) >= 12*sigma {
		// The residue class contains a single plausible value.
		return in.PerfectHint(coord, value)
	}
	residVar := float64(k) * float64(k) / 12
	if residVar < in.Var[coord] {
		in.Var[coord] = residVar
	}
	in.Mu[coord] = value
	in.nHints++
	return nil
}

func (in *Instance) checkCoord(coord int) error {
	if coord < 0 || coord >= len(in.Var) {
		return fmt.Errorf("dbdd: coordinate %d out of range [0,%d)", coord, len(in.Var))
	}
	if in.eliminated[coord] {
		return fmt.Errorf("dbdd: coordinate %d already eliminated by a perfect hint", coord)
	}
	return nil
}

// normalizedLogVol returns ln of the volume of the lattice after the
// isotropic normalization that turns the posterior ellipsoid into a unit
// ball: each remaining coordinate is scaled by 1/σ_i, multiplying the
// volume by Π 1/σ_i.
func (in *Instance) normalizedLogVol() float64 {
	lv := in.logVol
	for i, v := range in.Var {
		if in.eliminated[i] {
			continue
		}
		lv -= 0.5 * math.Log(v)
	}
	return lv
}

// logDelta returns ln δ_β, the root Hermite factor of BKZ-β. For β ≥ 40
// the standard asymptotic formula is used; below that, a linear
// interpolation between the experimental LLL value δ(2) = 1.0219 and the
// formula at 40, matching the practice of [31]'s estimator for tiny
// blocks.
func logDelta(beta float64) float64 {
	formula := func(b float64) float64 {
		return (math.Log(math.Pi*b)/b + math.Log(b) - math.Log(2*math.Pi*math.E)) / (2 * (b - 1))
	}
	const lllLogDelta = 0.021658 // ln(1.0219)
	if beta >= 40 {
		return formula(beta)
	}
	if beta <= 2 {
		return lllLogDelta
	}
	f40 := formula(40)
	t := (beta - 2) / 38
	return lllLogDelta*(1-t) + f40*t
}

// successMargin is positive when BKZ-β solves the (normalized) uSVP
// instance under the GSA: δ^{2β−d−1}·Vol^{1/d} ≥ √β (the primal attack
// condition with unit σ after normalization).
func (in *Instance) successMargin(beta float64) float64 {
	d := float64(in.dim)
	rhs := (2*beta-d-1)*logDelta(beta) + in.normalizedLogVol()/d
	lhs := 0.5 * math.Log(beta)
	return rhs - lhs
}

// EstimateBikz returns the estimated BKZ block size required to solve the
// instance, with linear interpolation to a fractional value (the paper's
// "bikz"). The minimum reported hardness is 2 (LLL).
func (in *Instance) EstimateBikz() (float64, error) {
	sp := obs.StartSpan("dbdd")
	defer sp.End()
	d := in.dim
	if d < 3 {
		return 2, nil
	}
	if in.successMargin(2) >= 0 {
		return 2, nil
	}
	maxBeta := float64(d)
	if in.successMargin(maxBeta) < 0 {
		return 0, fmt.Errorf("dbdd: instance appears harder than full enumeration (d=%d)", d)
	}
	lo, hi := 2.0, maxBeta
	for hi-lo > 1e-3 {
		mid := (lo + hi) / 2
		if in.successMargin(mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// BikzToBits converts a block size to a bit-security level using the
// paper's 2.98×-rule (382.25 bikz ↔ 128 bits).
func BikzToBits(bikz float64) float64 { return bikz / BitsPerBikz }

// SecurityLoss summarizes an estimate before/after hints.
type SecurityLoss struct {
	BaselineBikz float64
	HintedBikz   float64
	BaselineBits float64
	HintedBits   float64
}

// CompareWithHints estimates the baseline instance and a hinted copy built
// by the provided function, returning both hardness numbers — the shape of
// Tables III and IV.
func CompareWithHints(baseline *Instance, addHints func(*Instance) error) (*SecurityLoss, error) {
	base, err := baseline.EstimateBikz()
	if err != nil {
		return nil, err
	}
	hinted := baseline.Clone()
	if err := addHints(hinted); err != nil {
		return nil, err
	}
	after, err := hinted.EstimateBikz()
	if err != nil {
		return nil, err
	}
	return &SecurityLoss{
		BaselineBikz: base,
		HintedBikz:   after,
		BaselineBits: BikzToBits(base),
		HintedBits:   BikzToBits(after),
	}, nil
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Var:        append([]float64(nil), in.Var...),
		Mu:         append([]float64(nil), in.Mu...),
		eliminated: append([]bool(nil), in.eliminated...),
		dim:        in.dim,
		logVol:     in.logVol,
		nHints:     in.nHints,
	}
	return out
}

// ShortVectorHint integrates the fourth hint type of [31]: knowledge that
// v ∈ Λ is an unusually short lattice vector lets the attacker project it
// out, shrinking the lattice: dim → dim−1 and vol → vol/‖v‖ (for primitive
// v). Used to strip the structural q-vectors of q-ary instances.
func (in *Instance) ShortVectorHint(norm float64) error {
	if norm <= 0 {
		return fmt.Errorf("dbdd: short vector norm must be positive, got %v", norm)
	}
	if in.dim <= 2 {
		return fmt.Errorf("dbdd: cannot shrink a dimension-%d lattice", in.dim)
	}
	in.dim--
	in.logVol -= math.Log(norm)
	in.nHints++
	return nil
}
