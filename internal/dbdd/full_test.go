package dbdd

import (
	"math"
	"testing"
)

func fullTestInstance(t *testing.T) *FullInstance {
	t.Helper()
	in, err := NewFullLWEInstance(96, 96, 3329, 2.0/3.0, 2.56)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func diagTestInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewLWEInstance(96, 96, 3329, 2.0/3.0, 2.56)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// With only coordinate hints, the dense and diagonal paths must agree.
func TestFullMatchesDiagonalOnCoordinateHints(t *testing.T) {
	full := fullTestInstance(t)
	diag := diagTestInstance(t)

	b1, err := full.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := diag.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1-b2) > 0.01 {
		t.Fatalf("baseline mismatch: full %.4f vs diag %.4f", b1, b2)
	}

	// A few perfect hints on error coordinates.
	for _, c := range []int{96, 100, 120, 190} {
		if err := full.PerfectHint(c, 1); err != nil {
			t.Fatal(err)
		}
		if err := diag.PerfectHint(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	// And approximate coordinate hints (vector form vs diagonal form).
	for _, c := range []int{97, 121} {
		v := make([]float64, 192)
		v[c] = 1
		if err := full.ApproximateHintVec(v, 0.5, 0.25); err != nil {
			t.Fatal(err)
		}
		if err := diag.ApproximateHint(c, 0.5, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	b1, err = full.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	b2, err = diag.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1-b2) > 0.05 {
		t.Errorf("hinted mismatch: full %.4f vs diag %.4f", b1, b2)
	}
	if full.Dim() != diag.Dim() {
		t.Errorf("dims diverged: %d vs %d", full.Dim(), diag.Dim())
	}
	if full.Remaining() != 188 {
		t.Errorf("remaining=%d want 188", full.Remaining())
	}
}

// A hint along a non-axis direction must reduce hardness — something the
// diagonal instance cannot express.
func TestVectorHintReducesHardness(t *testing.T) {
	in := fullTestInstance(t)
	base, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	// Leak e_48 + e_49 (sum of two error coefficients) with small noise.
	v := make([]float64, 192)
	v[96], v[97] = 1, 1
	if err := in.ApproximateHintVec(v, 0, 0.01); err != nil {
		t.Fatal(err)
	}
	after, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if after >= base {
		t.Errorf("vector hint did not reduce hardness: %.3f -> %.3f", base, after)
	}
	if in.HintCount() != 1 {
		t.Error("hint count wrong")
	}
}

// Conditioning on ⟨s,v⟩ must make a later identical hint nearly worthless
// (information is consumed once).
func TestRepeatedHintDiminishingReturns(t *testing.T) {
	in := fullTestInstance(t)
	v := make([]float64, 192)
	v[50], v[51] = 1, -1
	if err := in.ApproximateHintVec(v, 0.3, 0.1); err != nil {
		t.Fatal(err)
	}
	first, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ApproximateHintVec(v, 0.3, 0.1); err != nil {
		t.Fatal(err)
	}
	second, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if first-second > 0.5 {
		t.Errorf("second identical hint gained too much: %.3f -> %.3f", first, second)
	}
}

func TestFullInstanceValidation(t *testing.T) {
	in := fullTestInstance(t)
	if err := in.PerfectHint(999, 0); err == nil {
		t.Error("unknown coordinate should fail")
	}
	if err := in.PerfectHint(96, 1); err != nil {
		t.Fatal(err)
	}
	if err := in.PerfectHint(96, 1); err == nil {
		t.Error("double elimination should fail")
	}
	v := make([]float64, 192)
	v[96] = 1 // eliminated
	if err := in.ApproximateHintVec(v, 0, 0.1); err == nil {
		t.Error("hint touching an eliminated coordinate should fail")
	}
	zero := make([]float64, 192)
	if err := in.ApproximateHintVec(zero, 0, 0.1); err == nil {
		t.Error("zero direction should fail")
	}
	if err := in.ApproximateHintVec(v, 0, 0); err == nil {
		t.Error("zero hint variance should fail for vector hints")
	}
	if _, err := NewFullLWEInstance(0, 1, 7, 1, 1); err == nil {
		t.Error("invalid dimensions should fail")
	}
}

// Perfect hints with correlations: after conditioning on a correlated
// coordinate, the means of the others must move.
func TestPerfectHintUpdatesCorrelatedMeans(t *testing.T) {
	in := fullTestInstance(t)
	// Correlate coordinates 10 and 11 via a vector hint on their sum.
	v := make([]float64, 192)
	v[10], v[11] = 1, 1
	if err := in.ApproximateHintVec(v, 2, 0.01); err != nil {
		t.Fatal(err)
	}
	// Σ now has off-diagonal (10,11) < 0.
	i10, err := in.indexOf(10)
	if err != nil {
		t.Fatal(err)
	}
	i11, err := in.indexOf(11)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sigma.At(i10, i11) >= 0 {
		t.Fatalf("expected negative correlation, got %v", in.Sigma.At(i10, i11))
	}
	// Conditioning coordinate 10 on a high value must pull 11's mean down.
	before := in.Mu[i11]
	if err := in.PerfectHint(10, 3); err != nil {
		t.Fatal(err)
	}
	i11, err = in.indexOf(11)
	if err != nil {
		t.Fatal(err)
	}
	if !(in.Mu[i11] < before) {
		t.Errorf("mean of correlated coordinate did not decrease: %v -> %v", before, in.Mu[i11])
	}
}
