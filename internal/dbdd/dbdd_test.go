package dbdd

import (
	"math"
	"testing"
	"testing/quick"
)

// sealInstance is the paper's Table III configuration: q = 132120577,
// n = 1024, σ = 3.2, ternary secret.
func sealInstance(t testing.TB) *Instance {
	t.Helper()
	in, err := NewLWEInstance(1024, 1024, 132120577, 2.0/3.0, 3.2*3.2)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewLWEInstanceValidation(t *testing.T) {
	if _, err := NewLWEInstance(0, 1, 7, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewLWEInstance(1, 0, 7, 1, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewLWEInstance(1, 1, 1, 1, 1); err == nil {
		t.Error("q=1 should fail")
	}
	if _, err := NewLWEInstance(1, 1, 7, 0, 1); err == nil {
		t.Error("zero secret variance should fail")
	}
}

func TestBaselineBikzInPaperBallpark(t *testing.T) {
	in := sealInstance(t)
	bikz, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 382.25 with the estimator of [31]; our GSA
	// implementation must land in the same regime (hundreds of bikz, no
	// break). Allow a generous modeling band.
	if bikz < 300 || bikz > 460 {
		t.Errorf("baseline bikz %.2f outside [300, 460] (paper: 382.25)", bikz)
	}
	bits := BikzToBits(bikz)
	if bits < 100 || bits > 155 {
		t.Errorf("baseline bits %.1f outside [100, 155] (paper: 128)", bits)
	}
}

func TestFullHintsCollapseSecurity(t *testing.T) {
	in := sealInstance(t)
	// The single-trace attack recovers (almost) every error coordinate
	// with variance ≈ 0: perfect hints on all 1024 error coords.
	for i := 1024; i < 2048; i++ {
		if err := in.PerfectHint(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	bikz, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 12.2 bikz — a complete break. Anything ≤ 40 is "broken".
	if bikz > 40 {
		t.Errorf("full-hints bikz %.2f, want a complete break (paper: 12.2)", bikz)
	}
	if in.Dim() != 1025 {
		t.Errorf("dim=%d want 1025 after 1024 perfect hints", in.Dim())
	}
}

func TestSignOnlyHintsDoNotBreak(t *testing.T) {
	in := sealInstance(t)
	// Branch-only adversary: knows zero-ness and sign of each error coord.
	// P(coefficient == 0) ≈ 0.124 for σ=3.2; emulate deterministically.
	for i := 1024; i < 2048; i++ {
		var err error
		if (i-1024)%8 == 0 { // ≈ 12.5% zeros
			err = in.SignHint(i, 0)
		} else if i%2 == 0 {
			err = in.SignHint(i, 1)
		} else {
			err = in.SignHint(i, -1)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	bikz, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	base, err := sealInstance(t).EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 382.25 -> 253.29. Signs help but do not break.
	if bikz >= base {
		t.Errorf("sign hints did not reduce bikz: %.2f >= %.2f", bikz, base)
	}
	if bikz < 150 {
		t.Errorf("sign-only bikz %.2f suspiciously low (paper: 253.29)", bikz)
	}
	if BikzToBits(bikz) < 50 {
		t.Errorf("sign-only attack must not be a break: %.1f bits", BikzToBits(bikz))
	}
}

// Adding any hint must never increase the estimated hardness.
func TestHintMonotonicityQuick(t *testing.T) {
	base := sealInstance(t)
	baseBikz, err := base.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(coordRaw uint16, kind uint8) bool {
		in := base.Clone()
		coord := int(coordRaw) % 2048
		var err error
		switch kind % 3 {
		case 0:
			err = in.PerfectHint(coord, 0)
		case 1:
			err = in.ApproximateHint(coord, 0, 0.5)
		default:
			err = in.SignHint(coord, 1)
		}
		if err != nil {
			return false
		}
		bikz, err := in.EstimateBikz()
		if err != nil {
			return false
		}
		return bikz <= baseBikz+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPerfectHintBookkeeping(t *testing.T) {
	in, err := NewLWEInstance(4, 4, 97, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if in.Dim() != 9 {
		t.Fatalf("dim=%d", in.Dim())
	}
	lv := in.LogVol()
	if math.Abs(lv-4*math.Log(97)) > 1e-12 {
		t.Errorf("logVol=%v", lv)
	}
	if err := in.PerfectHint(5, 2); err != nil {
		t.Fatal(err)
	}
	if in.Dim() != 8 || in.LogVol() != lv {
		t.Error("perfect hint must drop dim and keep volume")
	}
	if in.HintCount() != 1 {
		t.Error("hint count wrong")
	}
	if err := in.PerfectHint(5, 2); err == nil {
		t.Error("double elimination should fail")
	}
	if err := in.PerfectHint(99, 0); err == nil {
		t.Error("out of range should fail")
	}
}

func TestApproximateHintConditioning(t *testing.T) {
	in, err := NewLWEInstance(1, 1, 97, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ApproximateHint(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	// σ'² = 4·4/(4+4) = 2; μ' = (0·4 + 3·4)/8 = 1.5.
	if math.Abs(in.Var[1]-2) > 1e-12 || math.Abs(in.Mu[1]-1.5) > 1e-12 {
		t.Errorf("conditioning wrong: var=%v mu=%v", in.Var[1], in.Mu[1])
	}
	// Zero-variance approximate hint degrades to perfect.
	if err := in.ApproximateHint(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !in.eliminated[0] {
		t.Error("zero-variance hint should eliminate")
	}
	if err := in.ApproximateHint(1, 0, -1); err == nil {
		t.Error("negative variance should fail")
	}
}

func TestModularHint(t *testing.T) {
	in, err := NewLWEInstance(1, 1, 97, 1, 10.24)
	if err != nil {
		t.Fatal(err)
	}
	// Large modulus relative to σ=3.2: perfect.
	if err := in.ModularHint(1, 2, 64); err != nil {
		t.Fatal(err)
	}
	if !in.eliminated[1] {
		t.Error("wide modular hint should be perfect")
	}
	// Small modulus: variance clamp to k²/12.
	if err := in.ModularHint(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(in.Var[0]-4.0/12) > 1e-12 {
		t.Errorf("modular variance=%v want %v", in.Var[0], 4.0/12)
	}
	if err := in.ModularHint(0, 0, 1); err == nil {
		t.Error("modulus 1 should fail")
	}
}

func TestHintFromProbabilities(t *testing.T) {
	// Certain value: variance 0.
	h := HintFromProbabilities(map[int]float64{3: 1})
	if h.Mean != 3 || h.Variance != 0 {
		t.Errorf("certain hint: %+v", h)
	}
	// 50/50 between 1 and 3: mean 2, variance 1.
	h = HintFromProbabilities(map[int]float64{1: 0.5, 3: 0.5})
	if math.Abs(h.Mean-2) > 1e-12 || math.Abs(h.Variance-1) > 1e-12 {
		t.Errorf("mixed hint: %+v", h)
	}
	// Unnormalized tables are renormalized.
	h = HintFromProbabilities(map[int]float64{1: 2, 3: 2})
	if math.Abs(h.Mean-2) > 1e-12 {
		t.Errorf("unnormalized hint: %+v", h)
	}
	// Empty: zeroes.
	h = HintFromProbabilities(nil)
	if h.Mean != 0 || h.Variance != 0 {
		t.Errorf("empty hint: %+v", h)
	}
}

func TestIntegrateCoefficientHint(t *testing.T) {
	in, err := NewLWEInstance(1, 2, 97, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.IntegrateCoefficientHint(1, CoefficientHint{Mean: 2, Variance: 0}); err != nil {
		t.Fatal(err)
	}
	if !in.eliminated[1] {
		t.Error("zero-variance must integrate as perfect")
	}
	if err := in.IntegrateCoefficientHint(2, CoefficientHint{Mean: 1, Variance: 0.5}); err != nil {
		t.Fatal(err)
	}
	if in.eliminated[2] {
		t.Error("positive-variance must stay approximate")
	}
	if err := in.IntegrateCoefficientHint(2, CoefficientHint{Variance: math.NaN()}); err == nil {
		t.Error("NaN variance should fail")
	}
}

func TestSignHintMath(t *testing.T) {
	in, err := NewLWEInstance(1, 1, 97, 1, 10.24) // σe = 3.2
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SignHint(1, 1); err != nil {
		t.Fatal(err)
	}
	wantMu := 3.2 * math.Sqrt(2/math.Pi)
	wantVar := 10.24 * (1 - 2/math.Pi)
	if math.Abs(in.Mu[1]-wantMu) > 1e-9 || math.Abs(in.Var[1]-wantVar) > 1e-9 {
		t.Errorf("half-normal conditioning: mu=%v var=%v want %v %v",
			in.Mu[1], in.Var[1], wantMu, wantVar)
	}
	if err := in.SignHint(0, 5); err == nil {
		t.Error("invalid sign should fail")
	}
	if err := in.SignHint(0, 0); err != nil {
		t.Fatal(err)
	}
	if !in.eliminated[0] {
		t.Error("zero sign must be a perfect hint")
	}
}

func TestGuessBestCoordinate(t *testing.T) {
	in, err := NewLWEInstance(2, 2, 97, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Make coordinate 2 very certain: mean 1.98, tiny variance.
	if err := in.ApproximateHint(2, 1.98, 0.0001); err != nil {
		t.Fatal(err)
	}
	g, err := in.GuessBestCoordinate()
	if err != nil {
		t.Fatal(err)
	}
	if g.Coord != 2 || g.Value != 2 {
		t.Errorf("guess=%+v", g)
	}
	if g.SuccessProb < 0.9 {
		t.Errorf("success prob %v should be high", g.SuccessProb)
	}
	if !in.eliminated[2] {
		t.Error("guessed coordinate must be eliminated")
	}
	// Exhaust the rest; then guessing must fail.
	for i := 0; i < 4; i++ {
		if !in.eliminated[i] {
			if err := in.PerfectHint(i, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := in.GuessBestCoordinate(); err == nil {
		t.Error("no coordinates left should fail")
	}
}

func TestCompareWithHints(t *testing.T) {
	in := sealInstance(t)
	loss, err := CompareWithHints(in, func(h *Instance) error {
		for i := 1024; i < 2048; i++ {
			if err := h.PerfectHint(i, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss.HintedBikz >= loss.BaselineBikz {
		t.Errorf("hints did not reduce hardness: %+v", loss)
	}
	if loss.BaselineBits <= loss.HintedBits {
		t.Error("bits must shrink with hints")
	}
	// The original instance must be untouched by CompareWithHints.
	if in.HintCount() != 0 {
		t.Error("CompareWithHints mutated the baseline")
	}
}

func TestLogDeltaSane(t *testing.T) {
	// Monotone decreasing in beta over the operating range and positive.
	prev := math.Inf(1)
	for _, beta := range []float64{2, 10, 40, 60, 100, 200, 400, 800} {
		ld := logDelta(beta)
		if ld <= 0 {
			t.Errorf("logDelta(%v)=%v not positive", beta, ld)
		}
		if ld > prev+1e-12 {
			t.Errorf("logDelta not decreasing at %v", beta)
		}
		prev = ld
	}
	// Continuity at the stitch point.
	if math.Abs(logDelta(39.999)-logDelta(40.001)) > 1e-4 {
		t.Error("logDelta discontinuous at 40")
	}
}

func BenchmarkEstimateBikz(b *testing.B) {
	in := sealInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.EstimateBikz(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGuessBestCoordinateIn(t *testing.T) {
	in, err := NewLWEInstance(2, 2, 97, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Restricting to the error block must skip the lower-variance secret.
	g, err := in.GuessBestCoordinateIn(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Coord != 2 && g.Coord != 3 {
		t.Errorf("guess outside requested range: %d", g.Coord)
	}
	if _, err := in.GuessBestCoordinateIn(3, 3); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := in.GuessBestCoordinateIn(-1, 2); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := in.GuessBestCoordinateIn(0, 99); err == nil {
		t.Error("hi out of range should fail")
	}
}

func TestShortVectorHint(t *testing.T) {
	in := sealInstance(t)
	base, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	// Projecting out one q-vector (norm q): loses a dimension and a factor
	// q of volume. For a large instance the effect is tiny but must not
	// increase hardness dramatically; the bookkeeping must be exact.
	dimBefore, volBefore := in.Dim(), in.LogVol()
	if err := in.ShortVectorHint(132120577); err != nil {
		t.Fatal(err)
	}
	if in.Dim() != dimBefore-1 {
		t.Error("dim not reduced")
	}
	if math.Abs((volBefore-in.LogVol())-math.Log(132120577)) > 1e-9 {
		t.Error("volume not divided by the norm")
	}
	after, err := in.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-base) > 25 {
		t.Errorf("single short-vector hint moved bikz too much: %.2f -> %.2f", base, after)
	}
	// A *short* vector (norm ≪ vol^(1/d)) helps: hardness must not grow.
	in2 := sealInstance(t)
	if err := in2.ShortVectorHint(2); err != nil {
		t.Fatal(err)
	}
	b2, err := in2.EstimateBikz()
	if err != nil {
		t.Fatal(err)
	}
	if b2 > base+1e-6 {
		t.Errorf("short-vector hint increased hardness: %.2f -> %.2f", base, b2)
	}
	// Validation.
	if err := in2.ShortVectorHint(0); err == nil {
		t.Error("non-positive norm should fail")
	}
	tiny, err := NewLWEInstance(1, 1, 7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tiny.dim = 2
	if err := tiny.ShortVectorHint(3); err == nil {
		t.Error("dimension floor should be enforced")
	}
}
