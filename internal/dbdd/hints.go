package dbdd

import (
	"fmt"
	"math"
)

// CoefficientHint is the "centered / variance" summary of a per-coefficient
// probability table (the last two columns of Table II): the posterior mean
// and variance of the coefficient given the side-channel measurement.
type CoefficientHint struct {
	Mean     float64
	Variance float64
}

// HintFromProbabilities condenses a probability table over coefficient
// values into a CoefficientHint, exactly as [31] consumes the attack's
// per-measurement score tables.
func HintFromProbabilities(probs map[int]float64) CoefficientHint {
	var mean, total float64
	for v, p := range probs {
		mean += float64(v) * p
		total += p
	}
	if total > 0 {
		mean /= total
	}
	var variance float64
	for v, p := range probs {
		d := float64(v) - mean
		variance += p * d * d
	}
	if total > 0 {
		variance /= total
	}
	return CoefficientHint{Mean: mean, Variance: variance}
}

// PerfectThreshold is the variance below which a hint is treated as
// perfect. The paper notes that many posteriors round to probability ≈ 1
// within floating-point precision; those become perfect hints.
const PerfectThreshold = 1e-9

// IntegrateCoefficientHint adds the hint for the given coordinate,
// choosing perfect vs approximate by the posterior variance.
func (in *Instance) IntegrateCoefficientHint(coord int, h CoefficientHint) error {
	if h.Variance < 0 || math.IsNaN(h.Variance) {
		return fmt.Errorf("dbdd: invalid hint variance %v", h.Variance)
	}
	if h.Variance <= PerfectThreshold {
		return in.PerfectHint(coord, h.Mean)
	}
	return in.ApproximateHint(coord, h.Mean, h.Variance)
}

// SignHint integrates only the sign information of a Gaussian coordinate
// (the branch-only adversary of Table IV):
//
//   - sign 0: the coefficient is exactly zero — a perfect hint;
//   - sign ±1: the prior N(0, σ²) conditioned on the half-line has mean
//     ±σ·√(2/π) and variance σ²·(1 − 2/π), integrated as an approximate
//     hint via covariance replacement.
func (in *Instance) SignHint(coord int, sign int) error {
	switch sign {
	case 0:
		return in.PerfectHint(coord, 0)
	case 1, -1:
		if err := in.checkCoord(coord); err != nil {
			return err
		}
		sigma := math.Sqrt(in.Var[coord])
		in.Mu[coord] = float64(sign) * sigma * math.Sqrt(2/math.Pi)
		in.Var[coord] = in.Var[coord] * (1 - 2/math.Pi)
		in.nHints++
		return nil
	default:
		return fmt.Errorf("dbdd: sign must be -1, 0, or 1, got %d", sign)
	}
}

// GuessResult describes converting the most-confident remaining
// approximate hint into a perfect hint (the "hints & guesses" row of
// Table IV).
type GuessResult struct {
	Coord       int
	Value       float64
	SuccessProb float64
}

// GuessBestCoordinate finds the non-eliminated coordinate with the
// smallest posterior variance, integrates its rounded mean as a perfect
// hint, and reports the success probability of that guess under the
// Gaussian posterior (probability that the true value rounds to the
// guessed integer).
func (in *Instance) GuessBestCoordinate() (*GuessResult, error) {
	return in.GuessBestCoordinateIn(0, len(in.Var))
}

// GuessBestCoordinateIn restricts the guess to coordinates [lo, hi) — the
// paper guesses among the measured (error) coordinates, not the ternary
// secret.
func (in *Instance) GuessBestCoordinateIn(lo, hi int) (*GuessResult, error) {
	if lo < 0 || hi > len(in.Var) || lo >= hi {
		return nil, fmt.Errorf("dbdd: guess range [%d,%d) invalid", lo, hi)
	}
	best := -1
	for i := lo; i < hi; i++ {
		if in.eliminated[i] {
			continue
		}
		if best < 0 || in.Var[i] < in.Var[best] {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("dbdd: no coordinates left to guess")
	}
	guess := math.Round(in.Mu[best])
	sigma := math.Sqrt(in.Var[best])
	var prob float64
	if sigma == 0 {
		prob = 1
	} else {
		// P(guess-0.5 < X < guess+0.5) under N(mu, sigma²).
		lo := (guess - 0.5 - in.Mu[best]) / (sigma * math.Sqrt2)
		hi := (guess + 0.5 - in.Mu[best]) / (sigma * math.Sqrt2)
		prob = 0.5 * (math.Erf(hi) - math.Erf(lo))
	}
	if err := in.PerfectHint(best, guess); err != nil {
		return nil, err
	}
	return &GuessResult{Coord: best, Value: guess, SuccessProb: prob}, nil
}
