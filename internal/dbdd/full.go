package dbdd

import (
	"fmt"
	"math"

	"reveal/internal/linalg"
	"reveal/internal/obs"
)

// FullInstance is the full-covariance DBDD variant: unlike Instance (which
// tracks a diagonal Σ and supports only per-coordinate hints), it
// maintains the complete covariance matrix and accepts hints along
// arbitrary directions v — e.g. leakage about sums or differences of
// coefficients. Perfect hints are supported on coordinates (explicit
// elimination keeps Σ non-degenerate); approximate and modular hints may
// use any direction.
type FullInstance struct {
	// Mu and Sigma describe the posterior of the remaining coordinates.
	Mu    []float64
	Sigma *linalg.Matrix

	// coords maps current indices to original coordinates.
	coords []int
	dim    int // lattice dimension (incl. homogenization)
	logVol float64
	nHints int
}

// NewFullLWEInstance mirrors NewLWEInstance with a dense covariance.
func NewFullLWEInstance(n, m int, q float64, sigmaS2, sigmaE2 float64) (*FullInstance, error) {
	base, err := NewLWEInstance(n, m, q, sigmaS2, sigmaE2)
	if err != nil {
		return nil, err
	}
	d := n + m
	in := &FullInstance{
		Mu:     make([]float64, d),
		Sigma:  linalg.NewMatrix(d, d),
		coords: make([]int, d),
		dim:    base.dim,
		logVol: base.logVol,
	}
	for i := 0; i < d; i++ {
		in.Sigma.Set(i, i, base.Var[i])
		in.coords[i] = i
	}
	return in, nil
}

// Dim returns the current lattice dimension.
func (in *FullInstance) Dim() int { return in.dim }

// Remaining returns how many coordinates are still unknown.
func (in *FullInstance) Remaining() int { return len(in.coords) }

// HintCount returns the number of integrated hints.
func (in *FullInstance) HintCount() int { return in.nHints }

// indexOf translates an original coordinate to the current index.
func (in *FullInstance) indexOf(orig int) (int, error) {
	for i, c := range in.coords {
		if c == orig {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dbdd: coordinate %d unknown or already eliminated", orig)
}

// PerfectHint eliminates an original coordinate: conditioning on its exact
// value updates the means of the remaining coordinates and deletes the
// corresponding row/column of Σ (Schur complement), while the lattice
// loses one dimension at unchanged volume (coordinate vectors are
// primitive in the dual).
func (in *FullInstance) PerfectHint(origCoord int, value float64) error {
	idx, err := in.indexOf(origCoord)
	if err != nil {
		return err
	}
	d := len(in.coords)
	sii := in.Sigma.At(idx, idx)
	if sii <= 0 {
		return fmt.Errorf("dbdd: coordinate %d has non-positive variance %v", origCoord, sii)
	}
	// Conditional update: μ' = μ + Σ_{·i}(l − μ_i)/Σ_ii ;
	// Σ' = Σ − Σ_{·i}Σ_{i·}/Σ_ii, then drop row/col i.
	delta := (value - in.Mu[idx]) / sii
	newMu := make([]float64, 0, d-1)
	keep := make([]int, 0, d-1)
	for i := 0; i < d; i++ {
		if i == idx {
			continue
		}
		keep = append(keep, i)
		newMu = append(newMu, in.Mu[i]+in.Sigma.At(i, idx)*delta)
	}
	newSigma := linalg.NewMatrix(d-1, d-1)
	for a, i := range keep {
		for b, j := range keep {
			newSigma.Set(a, b, in.Sigma.At(i, j)-in.Sigma.At(i, idx)*in.Sigma.At(idx, j)/sii)
		}
	}
	newCoords := make([]int, 0, d-1)
	for _, i := range keep {
		newCoords = append(newCoords, in.coords[i])
	}
	in.Mu, in.Sigma, in.coords = newMu, newSigma, newCoords
	in.dim--
	in.nHints++
	return nil
}

// ApproximateHintVec integrates ⟨s, v⟩ = value + ε with Var(ε) = epsVar for
// an arbitrary direction v over the *original* coordinates (entries for
// eliminated coordinates must be zero). Gaussian conditioning:
//
//	Σ' = Σ − (Σv)(Σv)ᵀ / (vᵀΣv + εVar)
//	μ' = μ + (value − ⟨μ,v⟩)·Σv / (vᵀΣv + εVar)
func (in *FullInstance) ApproximateHintVec(v []float64, value, epsVar float64) error {
	if epsVar <= 0 {
		return fmt.Errorf("dbdd: vector hints require positive noise variance, got %v", epsVar)
	}
	d := len(in.coords)
	// Project v onto the current coordinates.
	cur := make([]float64, d)
	norm := 0.0
	for i, orig := range in.coords {
		if orig < len(v) {
			cur[i] = v[orig]
			norm += cur[i] * cur[i]
		}
	}
	// Entries on eliminated coordinates are not representable anymore.
	for orig, x := range v {
		if x == 0 {
			continue
		}
		if _, err := in.indexOf(orig); err != nil {
			return fmt.Errorf("dbdd: hint touches eliminated coordinate %d", orig)
		}
	}
	if norm == 0 {
		return fmt.Errorf("dbdd: zero hint direction")
	}
	sv, err := in.Sigma.MulVec(cur)
	if err != nil {
		return err
	}
	vsv := linalg.Dot(cur, sv)
	denom := vsv + epsVar
	if denom <= 0 {
		return fmt.Errorf("dbdd: degenerate hint denominator %v", denom)
	}
	mudot := linalg.Dot(in.Mu, cur)
	scale := (value - mudot) / denom
	for i := range in.Mu {
		in.Mu[i] += sv[i] * scale
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			in.Sigma.Set(i, j, in.Sigma.At(i, j)-sv[i]*sv[j]/denom)
		}
	}
	in.nHints++
	return nil
}

// normalizedLogVol matches Instance.normalizedLogVol with a dense Σ:
// lnVol − ½·ln det Σ.
func (in *FullInstance) normalizedLogVol() (float64, error) {
	if len(in.coords) == 0 {
		return in.logVol, nil
	}
	ld, err := linalg.LogDetSPD(in.Sigma)
	if err != nil {
		// Conditioning can push tiny eigenvalues slightly negative; add a
		// whisper of ridge and retry once.
		ridged := in.Sigma.Clone()
		linalg.RegularizeSPD(ridged, 1e-10)
		ld, err = linalg.LogDetSPD(ridged)
		if err != nil {
			return 0, fmt.Errorf("dbdd: covariance not positive definite: %w", err)
		}
	}
	return in.logVol - 0.5*ld, nil
}

// EstimateBikz estimates the required BKZ block size, identically to the
// diagonal instance but with the dense covariance determinant.
func (in *FullInstance) EstimateBikz() (float64, error) {
	sp := obs.StartSpan("dbdd")
	defer sp.End()
	d := in.dim
	if d < 3 {
		return 2, nil
	}
	nlv, err := in.normalizedLogVol()
	if err != nil {
		return 0, err
	}
	margin := func(beta float64) float64 {
		rhs := (2*beta-float64(d)-1)*logDelta(beta) + nlv/float64(d)
		return rhs - 0.5*math.Log(beta)
	}
	if margin(2) >= 0 {
		return 2, nil
	}
	maxBeta := float64(d)
	if margin(maxBeta) < 0 {
		return 0, fmt.Errorf("dbdd: instance appears harder than full enumeration (d=%d)", d)
	}
	lo, hi := 2.0, maxBeta
	for hi-lo > 1e-3 {
		mid := (lo + hi) / 2
		if margin(mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
