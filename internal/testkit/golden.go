package testkit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update is the shared regeneration flag: `go test ./internal/ring -update`
// rewrites that package's golden files from the current implementation
// instead of comparing against them. Each test binary registers its own
// copy, so the flag works per package.
var update = flag.Bool("update", false, "rewrite golden files under testdata/ instead of comparing")

// Updating reports whether the -update flag was passed.
func Updating() bool { return *update }

// Golden compares got (marshaled as indented JSON) against the golden file
// at path. With -update the file is (re)written instead and the test is
// skipped-on-success. The comparison is byte-exact: goldens pin the precise
// numeric output, not a tolerance.
func Golden(t testing.TB, path string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("testkit: marshaling golden value for %s: %v", path, err)
	}
	data = append(data, '\n')
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testkit: creating %s: %v", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("testkit: writing golden %s: %v", path, err)
		}
		t.Logf("testkit: wrote golden %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("testkit: reading golden %s: %v (generate it with -update)", path, err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("testkit: %s differs from the committed golden vector.\n"+
			"If the change is intentional, regenerate with `go test -run %s -update`.\n%s",
			path, t.Name(), diffHint(want, data))
	}
}

// diffHint locates the first differing line for a readable failure message.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: golden %d lines, got %d lines", len(wl), len(gl))
}

// Digest returns the hex SHA-256 of v's canonical JSON encoding — a compact
// fingerprint for golden files and the replay-determinism gate. Map keys
// are sorted by encoding/json, so the digest is deterministic.
func Digest(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Digest is used on plain data types; an unmarshalable value is a
		// programming error in the caller.
		panic(fmt.Sprintf("testkit: digesting: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
