package testkit

import (
	"fmt"
	"math/big"
)

// This file holds the slow math/big reference implementations the fast
// uint64 arithmetic in internal/modular and internal/ring is differentially
// tested against. Everything here favors obviousness over speed: direct
// big.Int formulas, schoolbook convolution, no precomputation.

// RefAddMod returns (a + b) mod q via math/big.
func RefAddMod(a, b, q uint64) uint64 {
	s := new(big.Int).Add(bi(a), bi(b))
	return s.Mod(s, bi(q)).Uint64()
}

// RefSubMod returns (a - b) mod q via math/big.
func RefSubMod(a, b, q uint64) uint64 {
	s := new(big.Int).Sub(bi(a), bi(b))
	return s.Mod(s, bi(q)).Uint64()
}

// RefMulMod returns (a * b) mod q via math/big.
func RefMulMod(a, b, q uint64) uint64 {
	s := new(big.Int).Mul(bi(a), bi(b))
	return s.Mod(s, bi(q)).Uint64()
}

// RefExpMod returns a^e mod q via math/big.
func RefExpMod(a, e, q uint64) uint64 {
	return new(big.Int).Exp(bi(a), bi(e), bi(q)).Uint64()
}

// RefInverse returns a^-1 mod q and whether it exists, via math/big.
func RefInverse(a, q uint64) (uint64, bool) {
	if q == 0 {
		return 0, false
	}
	inv := new(big.Int).ModInverse(bi(a), bi(q))
	if inv == nil {
		return 0, false
	}
	return inv.Uint64(), true
}

// RefNegacyclicMul returns a*b in Z_q[x]/(x^n+1) by schoolbook convolution
// with big.Int accumulators — the reference the NTT-based ring.MulPoly is
// checked against. Both inputs are residue vectors of length n.
func RefNegacyclicMul(a, b []uint64, q uint64) ([]uint64, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("testkit: operand lengths %d and %d differ", n, len(b))
	}
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	term := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		ai := bi(a[i])
		for j := 0; j < n; j++ {
			if b[j] == 0 {
				continue
			}
			term.Mul(ai, bi(b[j]))
			k := i + j
			if k < n {
				acc[k].Add(acc[k], term)
			} else {
				acc[k-n].Sub(acc[k-n], term) // x^n = -1
			}
		}
	}
	out := make([]uint64, n)
	bigQ := bi(q)
	for i, v := range acc {
		out[i] = v.Mod(v, bigQ).Uint64()
	}
	return out, nil
}

// RefCRTCompose reconstructs the value in [0, prod(moduli)) whose residues
// are given, by direct CRT over math/big.
func RefCRTCompose(residues []uint64, moduli []uint64) (*big.Int, error) {
	if len(residues) != len(moduli) {
		return nil, fmt.Errorf("testkit: %d residues for %d moduli", len(residues), len(moduli))
	}
	bigQ := big.NewInt(1)
	for _, q := range moduli {
		bigQ.Mul(bigQ, bi(q))
	}
	acc := new(big.Int)
	for j, q := range moduli {
		qj := bi(q)
		hat := new(big.Int).Quo(bigQ, qj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(hat, qj), qj)
		if inv == nil {
			return nil, fmt.Errorf("testkit: moduli not coprime at %d", q)
		}
		term := bi(residues[j])
		term.Mul(term, inv)
		term.Mod(term, qj)
		term.Mul(term, hat)
		acc.Add(acc, term)
	}
	return acc.Mod(acc, bigQ), nil
}

// RefCenter maps v mod Q to its centered representative in (-Q/2, Q/2].
func RefCenter(v, bigQ *big.Int) *big.Int {
	out := new(big.Int).Mod(v, bigQ)
	half := new(big.Int).Rsh(bigQ, 1)
	if out.Cmp(half) > 0 {
		out.Sub(out, bigQ)
	}
	return out
}

// RefIsPrime reports whether q is prime via math/big's Miller-Rabin +
// Baillie-PSW test (deterministic for 64-bit inputs).
func RefIsPrime(q uint64) bool { return bi(q).ProbablyPrime(0) }

// Big returns v as a fresh *big.Int.
func Big(v uint64) *big.Int { return bi(v) }

func bi(v uint64) *big.Int { return new(big.Int).SetUint64(v) }
