// Package testkit is the repo-wide correctness harness: seeded generators
// for property-based tests, slow math/big reference implementations the
// fast ring/modular/bfv arithmetic is differentially tested against, and
// golden-vector helpers with a shared -update flag.
//
// The harness has four layers (see docs/TESTING.md):
//
//   - differential tests: fast arithmetic vs. the math/big reference here
//   - golden vectors: checked-in testdata/ files, regenerated with -update
//   - property tests: seeded-generator invariants (ring laws, round trips,
//     noise bounds, distribution moments, posterior normalization)
//   - fuzz targets and the end-to-end replay-determinism gate
//
// Packages under test import testkit from *external* test packages
// (package foo_test) because testkit itself depends on ring and sampler.
package testkit

import (
	"reveal/internal/ring"
	"reveal/internal/sampler"
)

// RNG is a seeded deterministic generator for property-based tests. Every
// test derives its inputs from an explicit seed so failures reproduce with
// the seed alone.
type RNG struct {
	src *sampler.Xoshiro256
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: sampler.NewXoshiro256(seed)}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Uint64Below returns a uniform value in [0, bound), bound > 0.
func (r *RNG) Uint64Below(bound uint64) uint64 {
	return sampler.Uint64Below(r.src, bound)
}

// Float64 returns a uniform double in [0, 1).
func (r *RNG) Float64() float64 { return sampler.Float64(r.src) }

// Int64Centered returns a uniform value in [-bound, bound].
func (r *RNG) Int64Centered(bound int64) int64 {
	if bound <= 0 {
		return 0
	}
	return int64(r.Uint64Below(uint64(2*bound+1))) - bound
}

// Residues returns n uniform residues in [0, q).
func (r *RNG) Residues(n int, q uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64Below(q)
	}
	return out
}

// SignedCoeffs returns n uniform centered coefficients in [-bound, bound].
func (r *RNG) SignedCoeffs(n int, bound int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int64Centered(bound)
	}
	return out
}

// Bytes returns n uniform bytes.
func (r *RNG) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Uint64())
	}
	return out
}

// Poly fills a fresh polynomial of ctx with uniform residues per modulus
// (coefficient representation).
func (r *RNG) Poly(ctx *ring.Context) *ring.Poly {
	p := ctx.NewPoly()
	for j, q := range ctx.Moduli {
		for i := range p.Coeffs[j] {
			p.Coeffs[j][i] = r.Uint64Below(q)
		}
	}
	return p
}

// PRNG exposes the RNG as a sampler.PRNG for code that consumes one.
func (r *RNG) PRNG() sampler.PRNG { return r.src }
