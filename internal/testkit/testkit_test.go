package testkit

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"reveal/internal/modular"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first value")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64Below(10); v >= 10 {
			t.Fatalf("Uint64Below(10) = %d", v)
		}
		if v := r.Int64Centered(5); v < -5 || v > 5 {
			t.Fatalf("Int64Centered(5) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
	if v := r.Int64Centered(0); v != 0 {
		t.Errorf("Int64Centered(0) = %d", v)
	}
	res := r.Residues(64, 97)
	for _, v := range res {
		if v >= 97 {
			t.Fatalf("residue %d out of range", v)
		}
	}
	for _, v := range r.SignedCoeffs(64, 3) {
		if v < -3 || v > 3 {
			t.Fatalf("signed coeff %d out of range", v)
		}
	}
}

// The reference arithmetic must agree with hand-computed small cases — the
// reference itself needs an anchor before it can anchor anything else.
func TestBigRefSmallCases(t *testing.T) {
	if got := RefAddMod(5, 9, 11); got != 3 {
		t.Errorf("RefAddMod = %d", got)
	}
	if got := RefSubMod(3, 9, 11); got != 5 {
		t.Errorf("RefSubMod = %d", got)
	}
	if got := RefMulMod(7, 8, 11); got != 1 {
		t.Errorf("RefMulMod = %d", got)
	}
	if got := RefExpMod(2, 10, 1000); got != 24 {
		t.Errorf("RefExpMod = %d", got)
	}
	inv, ok := RefInverse(3, 11)
	if !ok || inv != 4 {
		t.Errorf("RefInverse(3,11) = %d, %v", inv, ok)
	}
	if _, ok := RefInverse(4, 8); ok {
		t.Error("RefInverse(4,8) should not exist")
	}
}

func TestRefNegacyclicMulHandChecked(t *testing.T) {
	// (1 + x)(1 + x) = 1 + 2x + x^2 in Z_17[x]/(x^2+1) = 2x + 0 (x^2 = -1).
	got, err := RefNegacyclicMul([]uint64{1, 1}, []uint64{1, 1}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("got %v want [0 2]", got)
	}
	// x * x = x^2 = -1 = 16 mod 17.
	got, err = RefNegacyclicMul([]uint64{0, 1}, []uint64{0, 1}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 16 || got[1] != 0 {
		t.Errorf("got %v want [16 0]", got)
	}
	if _, err := RefNegacyclicMul([]uint64{1}, []uint64{1, 2}, 17); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestRefCRTCompose(t *testing.T) {
	moduli := []uint64{11, 13}
	want := big.NewInt(100)
	got, err := RefCRTCompose([]uint64{100 % 11, 100 % 13}, moduli)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("got %v want %v", got, want)
	}
	if _, err := RefCRTCompose([]uint64{1}, moduli); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := RefCRTCompose([]uint64{1, 2}, []uint64{6, 9}); err == nil {
		t.Error("non-coprime moduli should fail")
	}
}

func TestRefCenter(t *testing.T) {
	q := big.NewInt(17)
	if got := RefCenter(big.NewInt(16), q); got.Int64() != -1 {
		t.Errorf("RefCenter(16, 17) = %v", got)
	}
	if got := RefCenter(big.NewInt(8), q); got.Int64() != 8 {
		t.Errorf("RefCenter(8, 17) = %v", got)
	}
}

// RefMulMod must agree with the production modular.Mul on random inputs —
// the two implementations anchor each other.
func TestRefAgreesWithModular(t *testing.T) {
	r := NewRNG(99)
	const q = uint64(0x1fffffffffe00001) // 61-bit NTT prime
	for i := 0; i < 2000; i++ {
		a, b := r.Uint64Below(q), r.Uint64Below(q)
		if RefMulMod(a, b, q) != modular.Mul(a, b, q) {
			t.Fatalf("Mul mismatch at a=%d b=%d", a, b)
		}
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "testdata", "golden.json")
	payload := map[string]any{"values": []int{1, 2, 3}, "q": 12289}

	// Simulate -update by writing the file directly, then compare clean.
	old := *update
	*update = true
	Golden(t, path, payload)
	*update = old
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("golden file not written: %v", err)
	}
	Golden(t, path, payload) // must pass byte-identically
}

func TestDigestDeterministic(t *testing.T) {
	a := Digest(map[string]int{"b": 2, "a": 1})
	b := Digest(map[string]int{"a": 1, "b": 2})
	if a != b {
		t.Error("digest must not depend on map insertion order")
	}
	if a == Digest(map[string]int{"a": 1, "b": 3}) {
		t.Error("different values must digest differently")
	}
	if len(a) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(a))
	}
}
