package core

import (
	"fmt"

	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// TVLA (test vector leakage assessment) is the standard fixed-vs-random
// Welch t-test campaign: capture sub-traces where the sampled coefficient
// is pinned to a fixed value interleaved with sub-traces where it is drawn
// randomly; any sample with |t| above the threshold indicates exploitable
// first-order leakage. This is the methodology a SEAL integrator would use
// to discover the vulnerability the paper reports.

// TVLAResult is the outcome of a leakage assessment.
type TVLAResult struct {
	// TStat is the per-sample |t| curve over the aligned sub-traces.
	TStat []float64
	// MaxT is the curve's peak.
	MaxT float64
	// MaxTAt is the sample index of the peak.
	MaxTAt int
	// Threshold is the pass/fail bound used (conventionally 4.5).
	Threshold float64
	// Leaky reports MaxT > Threshold.
	Leaky bool
}

// TVLAThreshold is the conventional |t| bound.
const TVLAThreshold = 4.5

// RunTVLA runs a fixed-vs-random campaign of the given number of
// sub-traces per class on the device. branchless selects the patched
// kernel (which should pass where the vulnerable kernel fails for the
// control-flow component; value leakage through the store remains).
func RunTVLA(dev *Device, q uint64, fixedValue int64, perClass int, branchless bool, seed uint64) (*TVLAResult, error) {
	if perClass < 10 {
		return nil, fmt.Errorf("core: TVLA needs at least 10 traces per class")
	}
	const coeffsPerRun = 18
	var src string
	var err error
	if branchless {
		src, err = FirmwareBranchless(coeffsPerRun, FirmwareModulus(q))
	} else {
		src, err = FirmwareSource(coeffsPerRun, FirmwareModulus(q))
	}
	if err != nil {
		return nil, err
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	cn := sampler.DefaultClippedNormal()
	prng := sampler.NewXoshiro256(seed)

	var rawSegs []trace.Segment
	var labels []int
	collected := [2]int{}
	class := 0
	for collected[0] < perClass || collected[1] < perClass {
		values := make([]int64, coeffsPerRun)
		if class == 0 {
			for i := range values {
				values[i] = fixedValue
			}
		} else {
			values, _ = cn.SamplePoly(prng, coeffsPerRun)
		}
		metas := SyntheticMetas(prng, cn, coeffsPerRun)
		_, segs, err := dev.SegmentCapture(fw, values, metas)
		if err != nil {
			return nil, fmt.Errorf("core: TVLA capture: %w", err)
		}
		for i := 1; i < len(segs)-1 && collected[class] < perClass; i++ {
			rawSegs = append(rawSegs, segs[i])
			labels = append(labels, class)
			collected[class]++
		}
		class = 1 - class
	}

	length := len(rawSegs[0].Samples)
	for _, s := range rawSegs {
		if len(s.Samples) < length {
			length = len(s.Samples)
		}
	}
	set := &trace.Set{}
	for i, s := range rawSegs {
		set.Append(tailAlign(s.Samples, length), labels[i])
	}
	tstat, err := sca.TTest(set, 0, 1)
	if err != nil {
		return nil, err
	}
	res := &TVLAResult{TStat: tstat, Threshold: TVLAThreshold}
	for i, v := range tstat {
		if v > res.MaxT {
			res.MaxT, res.MaxTAt = v, i
		}
	}
	res.Leaky = res.MaxT > res.Threshold
	return res, nil
}
