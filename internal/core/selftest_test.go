package core

import (
	"context"
	"strings"
	"testing"

	"reveal/internal/obs"
)

func TestSelftestPasses(t *testing.T) {
	report, err := Selftest(context.Background(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Match {
		t.Fatalf("serial %s != parallel %s", report.SerialDigest, report.ParallelDigest)
	}
	if report.SerialDigest == "" || len(report.SerialDigest) != 64 {
		t.Fatalf("bad digest %q", report.SerialDigest)
	}
	if report.ValueAccuracy <= 0 || report.SignAccuracy <= 0 {
		t.Fatalf("degenerate accuracies: value %.2f sign %.2f",
			report.ValueAccuracy, report.SignAccuracy)
	}
	// At the gate's toy scale (n=64, q=12289) both estimates clamp to the
	// estimator's beta floor, so require monotonicity, not strict reduction.
	if report.HintedBikz > report.BaselineBikz {
		t.Fatalf("hints increased hardness: baseline %.2f, hinted %.2f",
			report.BaselineBikz, report.HintedBikz)
	}
	if len(report.Digest()) != 64 {
		t.Fatalf("combined digest %q", report.Digest())
	}
}

// TestSelftestReplayStable: the gate itself must be replay-deterministic —
// two complete executions in the same process produce the same digest, and
// different seeds produce different ones.
func TestSelftestReplayStable(t *testing.T) {
	a, err := Selftest(context.Background(), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Selftest(context.Background(), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed, different digests: %s vs %s", a.Digest(), b.Digest())
	}
	c, err := Selftest(context.Background(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestSelftestRestoresGlobalRecorder: the gate must not leak its private
// recorder into the process-global slot, whatever was there before.
func TestSelftestRestoresGlobalRecorder(t *testing.T) {
	prev := obs.Global()
	mine := obs.New(obs.Options{})
	obs.SetGlobal(mine)
	defer obs.SetGlobal(prev)
	if _, err := Selftest(context.Background(), 2, 2); err != nil {
		t.Fatal(err)
	}
	if obs.Global() != mine {
		t.Fatal("Selftest replaced the global recorder")
	}
}

func TestSelftestHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Selftest(ctx, 1, 2)
	if err == nil {
		t.Fatal("canceled selftest succeeded")
	}
	if !strings.Contains(err.Error(), "cancel") && !strings.Contains(err.Error(), "context") {
		t.Fatalf("unexpected error for canceled context: %v", err)
	}
}
