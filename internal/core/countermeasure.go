package core

import (
	"fmt"

	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// CaptureShuffled simulates the shuffling countermeasure the paper
// recommends (§V-A): the device samples the coefficients in a secret
// random order, so the attacker's k-th sub-trace no longer corresponds to
// coefficient k. Returns the trace and the secret permutation (perm[k] is
// the coefficient index sampled k-th), which only the evaluation harness
// may inspect.
func CaptureShuffled(dev *Device, firmware []byte, values []int64,
	metas []sampler.SampleMeta, shufflePRNG sampler.PRNG) (trace.Trace, []int, error) {
	if len(values) != len(metas) {
		return nil, nil, fmt.Errorf("core: %d values but %d metas", len(values), len(metas))
	}
	n := len(values)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates with the device's secret randomness.
	for i := n - 1; i > 0; i-- {
		j := int(sampler.Uint64Below(shufflePRNG, uint64(i+1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	shuffledValues := make([]int64, n)
	shuffledMetas := make([]sampler.SampleMeta, n)
	for k, idx := range perm {
		shuffledValues[k] = values[idx]
		shuffledMetas[k] = metas[idx]
	}
	tr, err := dev.Capture(firmware, shuffledValues, shuffledMetas)
	if err != nil {
		return nil, nil, err
	}
	return tr, perm, nil
}

// ShuffleEvaluation quantifies what shuffling costs the attacker: the
// per-position accuracy collapses to chance while the per-value (multiset)
// information survives.
type ShuffleEvaluation struct {
	// PositionalAccuracy is the fraction of positions whose recovered
	// value matches the true coefficient at that position.
	PositionalAccuracy float64
	// MultisetAccuracy compares the sorted recovered values with the
	// sorted truth — the information shuffling cannot hide.
	MultisetAccuracy float64
}

// EvaluateShuffledAttack runs the classifier on a shuffled capture and
// scores it against the unshuffled truth.
func EvaluateShuffledAttack(c *CoefficientClassifier, tr trace.Trace, truth []int64, perm []int) (*ShuffleEvaluation, error) {
	res, err := c.AttackTrace(tr, len(truth))
	if err != nil {
		return nil, err
	}
	if len(perm) != len(truth) {
		return nil, fmt.Errorf("core: perm length %d vs truth %d", len(perm), len(truth))
	}
	posOK := 0
	for i, v := range res.Values {
		// The attacker assigns sub-trace i to coefficient i; the device
		// actually sampled coefficient perm[i] there.
		if int64(v) == truth[i] {
			posOK++
		}
	}
	// Multiset comparison: histogram intersection.
	histT := map[int64]int{}
	histR := map[int64]int{}
	for i := range truth {
		histT[truth[i]]++
		histR[int64(res.Values[i])]++
	}
	common := 0
	for v, ct := range histT {
		cr := histR[v]
		if cr < ct {
			common += cr
		} else {
			common += ct
		}
	}
	n := float64(len(truth))
	return &ShuffleEvaluation{
		PositionalAccuracy: float64(posOK) / n,
		MultisetAccuracy:   float64(common) / n,
	}, nil
}
