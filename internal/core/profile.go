package core

import (
	"context"
	"fmt"
	"sync"

	"reveal/internal/obs"
	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// ProfileOptions configures the template-building campaign (§IV-B: the
// paper used 220,000 profiling executions; the defaults here are scaled to
// keep tests fast — raise TracesPerValue to approach the paper's scale).
type ProfileOptions struct {
	// Q is the coefficient modulus of the target parameter set.
	Q uint64
	// Sigma and MaxDeviation configure the Gaussian the device samples.
	Sigma, MaxDeviation float64
	// MaxAbsValue is the largest |coefficient| to build templates for
	// (paper: values beyond ±14 were never observed in 220k draws).
	MaxAbsValue int
	// TracesPerValue is how many labeled sub-traces to collect per value.
	TracesPerValue int
	// CoeffsPerRun is how many same-valued coefficients each profiling run
	// samples; interior segments avoid edge effects.
	CoeffsPerRun int
	// MetaSeed seeds the synthetic timing metadata.
	MetaSeed uint64
	// Templates configures the sca layer.
	Templates sca.TemplateOptions
}

// DefaultProfileOptions returns a configuration matched to the paper's
// parameter set, at test-friendly scale.
func DefaultProfileOptions() ProfileOptions {
	return ProfileOptions{
		Q:              132120577,
		Sigma:          sampler.DefaultSigma,
		MaxDeviation:   sampler.DefaultMaxDeviation,
		MaxAbsValue:    14,
		TracesPerValue: 30,
		CoeffsPerRun:   18,
		MetaSeed:       0xf0f1,
		Templates:      sca.DefaultTemplateOptions(),
	}
}

// HighAccuracyProfileOptions returns the richer campaign used with the
// low-noise device for the end-to-end recovery demonstration.
func HighAccuracyProfileOptions() ProfileOptions {
	o := DefaultProfileOptions()
	o.TracesPerValue = 120
	o.Templates.POICount = 28
	o.Templates.MinSpacing = 1
	return o
}

// ProfilingSets holds the labeled, tail-aligned trace sets a profiling
// campaign produces: the sign (branch) set over {−1, 0, +1} and the
// positive/negative value sets. Training consumes them; the leakage
// diagnostics (Diagnose) assess them.
type ProfilingSets struct {
	// Length is the common tail-aligned sub-trace length.
	Length int
	Sign   *trace.Set
	Pos    *trace.Set
	Neg    *trace.Set
}

// Profile runs the profiling campaign on the device: for every coefficient
// value in [−MaxAbsValue, MaxAbsValue] it pins the sampler output to that
// value, captures traces, segments them, and trains the sign and per-sign
// value templates.
func Profile(dev *Device, opts ProfileOptions) (*CoefficientClassifier, error) {
	return ProfileCtx(context.Background(), dev, opts)
}

// ProfileCtx is Profile with cancellation: the collection loop and the
// training stage both abort at the next stage boundary once ctx is done.
func ProfileCtx(ctx context.Context, dev *Device, opts ProfileOptions) (*CoefficientClassifier, error) {
	sp := obs.StartSpanCtx(ctx, "profile")
	defer sp.End()
	sets, err := CollectProfilingSetsCtx(ctx, dev, opts, sp)
	if err != nil {
		return nil, err
	}
	return TrainClassifierCtx(ctx, sets, opts, sp)
}

// CollectProfilingSets runs the capture half of the profiling campaign and
// returns the labeled sets. The collection is timed as a "collect" child of
// parent (nil parent is fine — the child span is then a no-op).
func CollectProfilingSets(dev *Device, opts ProfileOptions, parent *obs.Span) (*ProfilingSets, error) {
	return CollectProfilingSetsCtx(context.Background(), dev, opts, parent)
}

// CollectProfilingSetsCtx is CollectProfilingSets with cancellation,
// checked once per capture run.
func CollectProfilingSetsCtx(ctx context.Context, dev *Device, opts ProfileOptions, parent *obs.Span) (*ProfilingSets, error) {
	sp := parent.Child("collect")
	defer sp.End()
	if opts.MaxAbsValue < 1 {
		return nil, fmt.Errorf("core: MaxAbsValue must be >= 1")
	}
	if opts.TracesPerValue < 4 {
		return nil, fmt.Errorf("core: need at least 4 traces per value")
	}
	if opts.CoeffsPerRun < 3 {
		return nil, fmt.Errorf("core: CoeffsPerRun must be >= 3 (interior segments)")
	}
	src, err := FirmwareSource(opts.CoeffsPerRun, FirmwareModulus(opts.Q))
	if err != nil {
		return nil, err
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	cn, err := sampler.NewClippedNormal(opts.Sigma, opts.MaxDeviation)
	if err != nil {
		return nil, err
	}
	metaPRNG := sampler.NewXoshiro256(opts.MetaSeed)

	// Collection plan: every value in [−max, max] must appear
	// TracesPerValue times in interior positions. Values are interleaved
	// within each run so the register/bus history during profiling matches
	// the mixed-value history the attack will see (profiling with constant
	// values would bias the Hamming-distance terms).
	needed := map[int]int{}
	remaining := 0
	for v := -opts.MaxAbsValue; v <= opts.MaxAbsValue; v++ {
		needed[v] = opts.TracesPerValue
		remaining += opts.TracesPerValue
	}
	nextLabel := -opts.MaxAbsValue
	advance := func() int {
		for tries := 0; tries <= 2*opts.MaxAbsValue+1; tries++ {
			v := nextLabel
			nextLabel++
			if nextLabel > opts.MaxAbsValue {
				nextLabel = -opts.MaxAbsValue
			}
			if needed[v] > 0 {
				return v
			}
		}
		// Everything filled; uniform filler.
		return int(sampler.Uint64Below(metaPRNG, uint64(2*opts.MaxAbsValue+1))) - opts.MaxAbsValue
	}

	obs.Log().Info("profiling campaign started",
		"values", 2*opts.MaxAbsValue+1, "traces_per_value", opts.TracesPerValue,
		"coeffs_per_run", opts.CoeffsPerRun)
	target := remaining
	lastLogged := remaining
	var rawSegs []trace.Segment
	var labels []int
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: profiling canceled with %d/%d segments collected: %w",
				target-remaining, target, err)
		}
		values := make([]int64, opts.CoeffsPerRun)
		// Edge positions get uniform filler (their segments are discarded).
		values[0] = int64(advance())
		values[len(values)-1] = int64(advance())
		for i := 1; i < len(values)-1; i++ {
			values[i] = int64(advance())
		}
		// Shuffle so neighbor pairs vary across runs (the register history
		// seen by the templates must not encode the label ordering).
		for i := len(values) - 1; i > 0; i-- {
			j := int(sampler.Uint64Below(metaPRNG, uint64(i+1)))
			values[i], values[j] = values[j], values[i]
		}
		metas := SyntheticMetas(metaPRNG, cn, opts.CoeffsPerRun)
		_, segs, err := dev.SegmentCapture(fw, values, metas)
		if err != nil {
			return nil, fmt.Errorf("core: profiling: %w", err)
		}
		for i := 1; i < len(segs)-1; i++ {
			v := int(values[i])
			rawSegs = append(rawSegs, segs[i])
			labels = append(labels, v)
			if needed[v] > 0 {
				needed[v]--
				remaining--
			}
		}
		// Progress heartbeat roughly every 10% of the campaign.
		if lastLogged-remaining >= (target+9)/10 {
			lastLogged = remaining
			obs.Log().Debug("profiling progress",
				"collected", target-remaining, "target", target,
				"segments", len(rawSegs))
		}
	}
	sp.AddItems(len(rawSegs))

	// Tail alignment: the fixed-length part of each iteration sits at the
	// end of the segment (the port read at the start is time-variant), so
	// templates are trained on the last `length` samples, with `length` the
	// shortest observed segment.
	length := len(rawSegs[0].Samples)
	for _, s := range rawSegs {
		if len(s.Samples) < length {
			length = len(s.Samples)
		}
	}

	sets := &ProfilingSets{
		Length: length,
		Sign:   &trace.Set{},
		Pos:    &trace.Set{},
		Neg:    &trace.Set{},
	}
	for i, s := range rawSegs {
		tr := tailAlign(s.Samples, length)
		v := labels[i]
		sets.Sign.Append(tr, sca.SignOf(v))
		switch {
		case v > 0:
			sets.Pos.Append(tr, v)
		case v < 0:
			sets.Neg.Append(tr, v)
		}
	}
	return sets, nil
}

// TrainClassifier builds the sign and per-sign value templates from
// collected profiling sets — the training half of Profile, timed as a
// "train" child of parent.
func TrainClassifier(sets *ProfilingSets, opts ProfileOptions, parent *obs.Span) (*CoefficientClassifier, error) {
	return TrainClassifierCtx(context.Background(), sets, opts, parent)
}

// TrainClassifierCtx is TrainClassifier with cancellation. The three
// template sets (sign, positive, negative) are independent, so they are
// trained concurrently — training is the per-class half of the profiling
// cost and parallelizes cleanly.
func TrainClassifierCtx(ctx context.Context, sets *ProfilingSets, opts ProfileOptions, parent *obs.Span) (*CoefficientClassifier, error) {
	sp := parent.Child("train")
	sp.AddItems(sets.Sign.Len())
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: training canceled: %w", err)
	}
	var wg sync.WaitGroup
	type trained struct {
		tmpl *sca.Templates
		err  error
	}
	train := func(dst *trained, set *trace.Set, name string) {
		defer wg.Done()
		t, err := sca.BuildTemplates(set, opts.Templates)
		if err != nil {
			dst.err = fmt.Errorf("core: building %s templates: %w", name, err)
			return
		}
		dst.tmpl = t
	}
	var sign, pos, neg trained
	wg.Add(3)
	go train(&sign, sets.Sign, "sign")
	go train(&pos, sets.Pos, "positive")
	go train(&neg, sets.Neg, "negative")
	wg.Wait()
	for _, r := range []*trained{&sign, &pos, &neg} {
		if r.err != nil {
			return nil, r.err
		}
	}
	return &CoefficientClassifier{
		Length:      sets.Length,
		MaxAbsValue: opts.MaxAbsValue,
		Sign:        sign.tmpl,
		Pos:         pos.tmpl,
		Neg:         neg.tmpl,
	}, nil
}
