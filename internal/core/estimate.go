package core

import (
	"fmt"

	"reveal/internal/bfv"
	"reveal/internal/dbdd"
	"reveal/internal/obs"
)

// LWEInstanceForParams builds the DBDD instance of the c1 = p1·u + e2
// equation: n ternary secret coordinates (u, variance 2/3) and n Gaussian
// error coordinates (e2, variance σ²), modulus q — the instance of
// Table III ("smallest parameter set of SEAL-128").
func LWEInstanceForParams(params *bfv.Parameters) (*dbdd.Instance, error) {
	if len(params.Moduli) != 1 {
		return nil, fmt.Errorf("core: the security estimate targets the single-modulus paper configuration")
	}
	return dbdd.NewLWEInstance(params.N, params.N, float64(params.Moduli[0]),
		2.0/3.0, params.Sigma*params.Sigma)
}

// errorCoord maps error-polynomial coefficient i to its DBDD coordinate
// (errors follow the n secret coordinates).
func errorCoord(params *bfv.Parameters, i int) int { return params.N + i }

// EstimateFullHints integrates the attack's per-coefficient probability
// tables (Table II) as perfect/approximate hints and reports the security
// loss — the "attack with hints" row of Table III.
func EstimateFullHints(params *bfv.Parameters, res *AttackResult) (*dbdd.SecurityLoss, error) {
	baseline, err := LWEInstanceForParams(params)
	if err != nil {
		return nil, err
	}
	if len(res.Probs) != params.N {
		return nil, fmt.Errorf("core: attack covered %d coefficients, want %d", len(res.Probs), params.N)
	}
	return dbdd.CompareWithHints(baseline, func(in *dbdd.Instance) error {
		sp := obs.StartSpan("hints")
		sp.AddItems(len(res.Probs))
		defer sp.End()
		for i, probs := range res.Probs {
			h := dbdd.HintFromProbabilities(probs)
			if err := in.IntegrateCoefficientHint(errorCoord(params, i), h); err != nil {
				return err
			}
		}
		return nil
	})
}

// EstimateSignOnly integrates only the branch information (sign and
// zero-ness) — the "only branch vulnerability" scenario of Table IV.
func EstimateSignOnly(params *bfv.Parameters, res *AttackResult) (*dbdd.SecurityLoss, error) {
	baseline, err := LWEInstanceForParams(params)
	if err != nil {
		return nil, err
	}
	if len(res.Signs) != params.N {
		return nil, fmt.Errorf("core: attack covered %d coefficients, want %d", len(res.Signs), params.N)
	}
	return dbdd.CompareWithHints(baseline, func(in *dbdd.Instance) error {
		sp := obs.StartSpan("hints")
		sp.AddItems(len(res.Signs))
		defer sp.End()
		for i, s := range res.Signs {
			if err := in.SignHint(errorCoord(params, i), s); err != nil {
				return err
			}
		}
		return nil
	})
}

// SignOnlyWithGuess reproduces the last three rows of Table IV: after the
// sign hints, the framework guesses the most confident remaining
// coordinate, reporting the new bikz and the guess's success probability.
func SignOnlyWithGuess(params *bfv.Parameters, res *AttackResult) (bikz float64, guess *dbdd.GuessResult, err error) {
	baseline, err := LWEInstanceForParams(params)
	if err != nil {
		return 0, nil, err
	}
	for i, s := range res.Signs {
		if err := baseline.SignHint(errorCoord(params, i), s); err != nil {
			return 0, nil, err
		}
	}
	// Guess among the measured error coordinates, as the framework does.
	guess, err = baseline.GuessBestCoordinateIn(params.N, 2*params.N)
	if err != nil {
		return 0, nil, err
	}
	bikz, err = baseline.EstimateBikz()
	if err != nil {
		return 0, nil, err
	}
	return bikz, guess, nil
}

// HintSummary is one row of Table II: the probability table of a single
// measurement with its centered mean and variance.
type HintSummary struct {
	TrueValue int
	Probs     map[int]float64
	Centered  float64
	Variance  float64
}

// SummarizeHints produces the Table II rows for the given coefficients.
func SummarizeHints(res *AttackResult, truth []int64, indices []int) ([]HintSummary, error) {
	out := make([]HintSummary, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(res.Probs) {
			return nil, fmt.Errorf("core: index %d out of range", i)
		}
		h := dbdd.HintFromProbabilities(res.Probs[i])
		s := HintSummary{Probs: res.Probs[i], Centered: h.Mean, Variance: h.Variance}
		if truth != nil && i < len(truth) {
			s.TrueValue = int(truth[i])
		}
		out = append(out, s)
	}
	return out, nil
}
