package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTemplateCacheKeyStability(t *testing.T) {
	opts := DefaultProfileOptions()
	k1 := TemplateCacheKey(NewDevice(1), opts)
	k2 := TemplateCacheKey(NewDevice(1), opts)
	if k1 != k2 {
		t.Fatalf("same config produced different keys: %s vs %s", k1, k2)
	}
	if k3 := TemplateCacheKey(NewDevice(2), opts); k3 == k1 {
		t.Fatal("different device seeds share a key")
	}
	if k4 := TemplateCacheKey(NewLowNoiseDevice(1), opts); k4 == k1 {
		t.Fatal("low-noise and default devices share a key")
	}
	opts2 := opts
	opts2.Templates.POICount++
	if k5 := TemplateCacheKey(NewDevice(1), opts2); k5 == k1 {
		t.Fatal("different POI specs share a key")
	}
	opts3 := opts
	opts3.TracesPerValue++
	if k6 := TemplateCacheKey(NewDevice(1), opts3); k6 == k1 {
		t.Fatal("different campaign scales share a key")
	}
}

func TestTemplateCacheLRUEviction(t *testing.T) {
	c := NewTemplateCache(2)
	a, b, d := &CoefficientClassifier{Length: 1}, &CoefficientClassifier{Length: 2}, &CoefficientClassifier{Length: 3}
	c.Put("a", a)
	c.Put("b", b)
	// Touch "a" so "b" is the LRU victim.
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("a missing after put")
	}
	c.Put("d", d)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.Get("d"); !ok {
		t.Fatal("d missing after put")
	}
}

func TestGetOrTrainCachesAndHits(t *testing.T) {
	c := NewTemplateCache(4)
	var calls atomic.Int32
	train := func(context.Context) (*CoefficientClassifier, error) {
		calls.Add(1)
		return &CoefficientClassifier{Length: 9}, nil
	}
	cls, hit, err := c.GetOrTrain(context.Background(), "k", train)
	if err != nil || hit || cls == nil {
		t.Fatalf("first call: cls=%v hit=%v err=%v", cls, hit, err)
	}
	cls2, hit2, err := c.GetOrTrain(context.Background(), "k", train)
	if err != nil || !hit2 || cls2 != cls {
		t.Fatalf("second call: cls=%v hit=%v err=%v", cls2, hit2, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("train ran %d times, want 1", calls.Load())
	}
}

func TestGetOrTrainDoesNotCacheErrors(t *testing.T) {
	c := NewTemplateCache(4)
	var calls atomic.Int32
	boom := errors.New("boom")
	fail := func(context.Context) (*CoefficientClassifier, error) {
		calls.Add(1)
		return nil, boom
	}
	if _, _, err := c.GetOrTrain(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.GetOrTrain(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("train ran %d times, want 2 (errors must not be cached)", calls.Load())
	}
	if c.Len() != 0 {
		t.Fatalf("cache len = %d after failures, want 0", c.Len())
	}
}

// TestGetOrTrainSingleFlight launches concurrent callers on one key: the
// training must run exactly once and every caller must receive the same
// classifier.
func TestGetOrTrainSingleFlight(t *testing.T) {
	c := NewTemplateCache(4)
	var calls atomic.Int32
	release := make(chan struct{})
	train := func(context.Context) (*CoefficientClassifier, error) {
		calls.Add(1)
		<-release
		return &CoefficientClassifier{Length: 7}, nil
	}
	const n = 8
	var wg sync.WaitGroup
	results := make([]*CoefficientClassifier, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.GetOrTrain(context.Background(), "shared", train)
		}(i)
	}
	// Let every goroutine reach the cache before releasing the trainer.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different classifier", i)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("train ran %d times, want 1", calls.Load())
	}
}

// TestGetOrTrainWaiterHonorsContext cancels a caller stuck behind an
// in-flight training run.
func TestGetOrTrainWaiterHonorsContext(t *testing.T) {
	c := NewTemplateCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.GetOrTrain(context.Background(), "slow", func(context.Context) (*CoefficientClassifier, error) {
			close(started)
			<-release
			return &CoefficientClassifier{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.GetOrTrain(ctx, "slow", func(context.Context) (*CoefficientClassifier, error) {
		return nil, fmt.Errorf("second trainer must not run")
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
