package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"reveal/internal/sca"
)

// Classifier persistence: the profiling campaign is the expensive part of
// the attack (the paper ran 220,000 device executions), so revealctl can
// save a trained classifier and reuse it across sessions.

const (
	classifierMagic   = "RVCL"
	classifierVersion = 1
)

// WriteClassifier serializes a trained classifier.
func WriteClassifier(w io.Writer, c *CoefficientClassifier) error {
	if c == nil || c.Sign == nil || c.Pos == nil || c.Neg == nil {
		return fmt.Errorf("core: classifier incomplete, cannot serialize")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(classifierMagic); err != nil {
		return err
	}
	for _, v := range []uint32{classifierVersion, uint32(c.Length), uint32(c.MaxAbsValue)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range []*sca.Templates{c.Sign, c.Pos, c.Neg} {
		if err := sca.WriteTemplates(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadClassifier deserializes a classifier written by WriteClassifier.
func ReadClassifier(r io.Reader) (*CoefficientClassifier, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != classifierMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var version, length, maxAbs uint32
	for _, p := range []*uint32{&version, &length, &maxAbs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != classifierVersion {
		return nil, fmt.Errorf("core: unsupported classifier version %d", version)
	}
	if length == 0 || length > 1<<20 || maxAbs == 0 || maxAbs > 64 {
		return nil, fmt.Errorf("core: implausible classifier header length=%d maxAbs=%d", length, maxAbs)
	}
	c := &CoefficientClassifier{Length: int(length), MaxAbsValue: int(maxAbs)}
	var err error
	if c.Sign, err = sca.ReadTemplates(br); err != nil {
		return nil, fmt.Errorf("core: sign templates: %w", err)
	}
	if c.Pos, err = sca.ReadTemplates(br); err != nil {
		return nil, fmt.Errorf("core: positive templates: %w", err)
	}
	if c.Neg, err = sca.ReadTemplates(br); err != nil {
		return nil, fmt.Errorf("core: negative templates: %w", err)
	}
	return c, nil
}
