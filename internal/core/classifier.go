package core

import (
	"context"
	"fmt"
	"sync"

	"reveal/internal/obs"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// CoefficientClassifier is the trained single-trace attack: a sign (branch)
// classifier exploiting V1 plus per-sign value templates exploiting V2 (and
// V3 on the negative side, where the negation leaks a second Hamming
// weight).
type CoefficientClassifier struct {
	// Length is the common sub-trace length templates were trained at.
	Length int
	// MaxAbsValue bounds the coefficient magnitude covered by templates.
	MaxAbsValue int
	// Sign classifies the branch taken: labels −1, 0, +1.
	Sign *sca.Templates
	// Pos holds value templates for labels 1..MaxAbsValue.
	Pos *sca.Templates
	// Neg holds value templates for labels −MaxAbsValue..−1.
	Neg *sca.Templates

	// scorers pools per-goroutine classification contexts (template
	// scorers plus alignment and posterior scratch), so repeated attacks
	// over the same classifier reuse their buffers.
	scorers sync.Pool
}

// scorer takes a reusable classification context from the pool (building
// one on first use); release returns it. The context embeds scratch
// buffers, so it must only ever serve one goroutine at a time.
func (c *CoefficientClassifier) scorer() *segScorer {
	if v := c.scorers.Get(); v != nil {
		return v.(*segScorer)
	}
	return newSegScorer(c)
}

func (c *CoefficientClassifier) release(ss *segScorer) { c.scorers.Put(ss) }

// Classification is the outcome for one coefficient sub-trace.
type Classification struct {
	// Value is the maximum-likelihood coefficient.
	Value int
	// Sign is the recovered branch (−1, 0, +1).
	Sign int
	// Probs is the posterior over coefficient values (Table II's rows):
	// P(v) = P(sign)·P(v | sign).
	Probs map[int]float64
}

// tailAlign aligns a sub-trace by its end: the sampler-port read at the
// start of each iteration has data-dependent duration (the time-variant
// distribution call), but everything after it — the branch, the stores, the
// loop increment — is a fixed number of cycles from the segment end, so the
// last L samples are position-stable. Shorter segments are stretched.
func tailAlign(seg trace.Trace, length int) trace.Trace {
	if len(seg) >= length {
		return seg[len(seg)-length:].Clone()
	}
	return seg.Resample(length)
}

// ClassifySegment classifies one per-coefficient sub-trace: branch first
// (V1), then the value template of the recovered side (V2/V3), with the
// combined posterior P(v) = P(sign)·P(v | sign). The arithmetic runs on a
// pooled segScorer, scoring each template set exactly once.
func (c *CoefficientClassifier) ClassifySegment(seg trace.Trace) (*Classification, error) {
	ss := c.scorer()
	defer c.release(ss)
	return ss.classify(seg)
}

// AttackResult aggregates the single-trace attack over one error
// polynomial.
type AttackResult struct {
	Values []int
	Signs  []int
	Probs  []map[int]float64
}

// AttackSegments classifies every per-coefficient segment of an already
// segmented encryption trace.
func (c *CoefficientClassifier) AttackSegments(segs []trace.Segment) (*AttackResult, error) {
	return c.AttackSegmentsCtx(context.Background(), segs)
}

// AttackSegmentsCtx is AttackSegments with cancellation: the loop checks
// ctx between coefficients and aborts early once it is done.
func (c *CoefficientClassifier) AttackSegmentsCtx(ctx context.Context, segs []trace.Segment) (*AttackResult, error) {
	sp := obs.StartSpanCtx(ctx, "classify")
	sp.AddItems(len(segs))
	defer sp.End()
	res := &AttackResult{
		Values: make([]int, len(segs)),
		Signs:  make([]int, len(segs)),
		Probs:  make([]map[int]float64, len(segs)),
	}
	ss := c.scorer()
	defer c.release(ss)
	for i, s := range segs {
		if i%classifyCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: classification canceled at coefficient %d: %w", i, err)
			}
		}
		cl, err := ss.classify(s.Samples)
		if err != nil {
			return nil, fmt.Errorf("core: coefficient %d: %w", i, err)
		}
		res.Values[i] = cl.Value
		res.Signs[i] = cl.Sign
		res.Probs[i] = cl.Probs
	}
	return res, nil
}

// AttackTrace segments a full sampling trace into n coefficients and
// classifies each — the complete single-trace attack of §III.
func (c *CoefficientClassifier) AttackTrace(tr trace.Trace, n int) (*AttackResult, error) {
	segs, err := trace.SegmentEncryptionTrace(tr, n, 8)
	if err != nil {
		return nil, err
	}
	return c.AttackSegments(segs)
}

// Accuracy compares recovered values with ground truth.
func (r *AttackResult) Accuracy(truth []int64) (valueAcc, signAcc float64, err error) {
	if len(truth) != len(r.Values) {
		return 0, 0, fmt.Errorf("core: truth length %d vs %d recovered", len(truth), len(r.Values))
	}
	if len(truth) == 0 {
		return 0, 0, nil
	}
	valOK, signOK := 0, 0
	for i, v := range r.Values {
		if int64(v) == truth[i] {
			valOK++
		}
		if r.Signs[i] == sca.SignOf(int(truth[i])) {
			signOK++
		}
	}
	n := float64(len(truth))
	return float64(valOK) / n, float64(signOK) / n, nil
}
