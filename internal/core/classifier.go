package core

import (
	"context"
	"fmt"
	"sort"

	"reveal/internal/obs"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// CoefficientClassifier is the trained single-trace attack: a sign (branch)
// classifier exploiting V1 plus per-sign value templates exploiting V2 (and
// V3 on the negative side, where the negation leaks a second Hamming
// weight).
type CoefficientClassifier struct {
	// Length is the common sub-trace length templates were trained at.
	Length int
	// MaxAbsValue bounds the coefficient magnitude covered by templates.
	MaxAbsValue int
	// Sign classifies the branch taken: labels −1, 0, +1.
	Sign *sca.Templates
	// Pos holds value templates for labels 1..MaxAbsValue.
	Pos *sca.Templates
	// Neg holds value templates for labels −MaxAbsValue..−1.
	Neg *sca.Templates
}

// Classification is the outcome for one coefficient sub-trace.
type Classification struct {
	// Value is the maximum-likelihood coefficient.
	Value int
	// Sign is the recovered branch (−1, 0, +1).
	Sign int
	// Probs is the posterior over coefficient values (Table II's rows):
	// P(v) = P(sign)·P(v | sign).
	Probs map[int]float64
}

// tailAlign aligns a sub-trace by its end: the sampler-port read at the
// start of each iteration has data-dependent duration (the time-variant
// distribution call), but everything after it — the branch, the stores, the
// loop increment — is a fixed number of cycles from the segment end, so the
// last L samples are position-stable. Shorter segments are stretched.
func tailAlign(seg trace.Trace, length int) trace.Trace {
	if len(seg) >= length {
		return seg[len(seg)-length:].Clone()
	}
	return seg.Resample(length)
}

// ClassifySegment classifies one per-coefficient sub-trace.
func (c *CoefficientClassifier) ClassifySegment(seg trace.Trace) (*Classification, error) {
	aligned := tailAlign(seg, c.Length)
	signProbs, err := c.Sign.Probabilities(aligned)
	if err != nil {
		return nil, fmt.Errorf("core: sign classification: %w", err)
	}
	sign, err := c.Sign.Classify(aligned)
	if err != nil {
		return nil, err
	}

	probs := map[int]float64{0: signProbs[0]}
	if c.Pos != nil {
		posProbs, err := c.Pos.Probabilities(aligned)
		if err != nil {
			return nil, fmt.Errorf("core: positive value classification: %w", err)
		}
		for v, p := range posProbs {
			probs[v] = signProbs[1] * p
		}
	}
	if c.Neg != nil {
		negProbs, err := c.Neg.Probabilities(aligned)
		if err != nil {
			return nil, fmt.Errorf("core: negative value classification: %w", err)
		}
		for v, p := range negProbs {
			probs[v] = signProbs[-1] * p
		}
	}
	// Normalize (guards against a missing side). The total is accumulated
	// in ascending label order: float addition is order-sensitive, and map
	// iteration order would make repeated classifications of the same
	// segment differ in the last bits.
	labels := make([]int, 0, len(probs))
	for v := range probs {
		labels = append(labels, v)
	}
	sort.Ints(labels)
	total := 0.0
	for _, v := range labels {
		total += probs[v]
	}
	if total > 0 {
		for v := range probs {
			probs[v] /= total
		}
	}

	// Maximum-likelihood value within the recovered sign class, matching
	// the paper's procedure (branch first, then the value template).
	value := 0
	switch sign {
	case 1:
		if c.Pos == nil {
			return nil, fmt.Errorf("core: no positive templates")
		}
		value, err = c.Pos.Classify(aligned)
	case -1:
		if c.Neg == nil {
			return nil, fmt.Errorf("core: no negative templates")
		}
		value, err = c.Neg.Classify(aligned)
	}
	if err != nil {
		return nil, err
	}
	return &Classification{Value: value, Sign: sign, Probs: probs}, nil
}

// AttackResult aggregates the single-trace attack over one error
// polynomial.
type AttackResult struct {
	Values []int
	Signs  []int
	Probs  []map[int]float64
}

// AttackSegments classifies every per-coefficient segment of an already
// segmented encryption trace.
func (c *CoefficientClassifier) AttackSegments(segs []trace.Segment) (*AttackResult, error) {
	return c.AttackSegmentsCtx(context.Background(), segs)
}

// AttackSegmentsCtx is AttackSegments with cancellation: the loop checks
// ctx between coefficients and aborts early once it is done.
func (c *CoefficientClassifier) AttackSegmentsCtx(ctx context.Context, segs []trace.Segment) (*AttackResult, error) {
	sp := obs.StartSpan("classify")
	sp.AddItems(len(segs))
	defer sp.End()
	res := &AttackResult{
		Values: make([]int, len(segs)),
		Signs:  make([]int, len(segs)),
		Probs:  make([]map[int]float64, len(segs)),
	}
	for i, s := range segs {
		if i%classifyCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: classification canceled at coefficient %d: %w", i, err)
			}
		}
		cl, err := c.ClassifySegment(s.Samples)
		if err != nil {
			return nil, fmt.Errorf("core: coefficient %d: %w", i, err)
		}
		res.Values[i] = cl.Value
		res.Signs[i] = cl.Sign
		res.Probs[i] = cl.Probs
	}
	return res, nil
}

// AttackTrace segments a full sampling trace into n coefficients and
// classifies each — the complete single-trace attack of §III.
func (c *CoefficientClassifier) AttackTrace(tr trace.Trace, n int) (*AttackResult, error) {
	segs, err := trace.SegmentEncryptionTrace(tr, n, 8)
	if err != nil {
		return nil, err
	}
	return c.AttackSegments(segs)
}

// Accuracy compares recovered values with ground truth.
func (r *AttackResult) Accuracy(truth []int64) (valueAcc, signAcc float64, err error) {
	if len(truth) != len(r.Values) {
		return 0, 0, fmt.Errorf("core: truth length %d vs %d recovered", len(truth), len(r.Values))
	}
	if len(truth) == 0 {
		return 0, 0, nil
	}
	valOK, signOK := 0, 0
	for i, v := range r.Values {
		if int64(v) == truth[i] {
			valOK++
		}
		if r.Signs[i] == sca.SignOf(int(truth[i])) {
			signOK++
		}
	}
	n := float64(len(truth))
	return float64(valOK) / n, float64(signOK) / n, nil
}
