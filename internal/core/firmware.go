// Package core implements the RevEAL attack pipeline end to end: the
// firmware that runs SEAL's vulnerable sign-assignment kernel on the RV32
// device, the memory-mapped Gaussian-sampler port, the profiling campaign
// that builds templates, the single-trace attack that recovers the error
// polynomial coefficients, the conversion of attack scores into DBDD hints
// (Tables II-IV), and full plaintext recovery via the ciphertext equations
// (Eq. 1-3 of the paper).
package core

import (
	"fmt"

	"reveal/internal/rv32"
)

// PortBase is the address of the memory-mapped Gaussian sampler port. A
// load from offset 0 returns the next sampled (rounded) noise value as a
// two's-complement word, stalling for a data-dependent number of wait
// cycles — this reproduces the time-variant distribution call plus the
// distinctive power peak the paper segments traces by (§III-C).
const PortBase uint32 = 0xffff0000

// PolyBase is where the firmware stores the error polynomial residues.
const PolyBase uint32 = 0x4000

// FirmwareSource generates the RV32 assembly of the sampling kernel: the
// line-for-line translation of SEAL v3.2's set_poly_coeffs_normal sign
// assignment (Fig. 2 of the paper) for a single coefficient modulus.
//
//	for i in 0..n-1:
//	    noise = port.read()            // ClippedNormalDistribution
//	    if noise > 0:      poly[i] = noise          (V2: HW of noise)
//	    else if noise < 0: poly[i] = q - (-noise)   (V3: negation + rich HW)
//	    else:              poly[i] = 0
//
// The branch bodies execute different instructions, which is V1.
//
// q must fit a 32-bit register. For the wide ladder primes (up to 61 bits)
// callers pass FirmwareModulus(q): the kernel then computes q_lo - noise,
// and because subtraction mod 2^32 depends only on the low limbs, the
// stored word is exactly the low 32 bits of the true residue q - noise —
// the Hamming-weight leakage the attack models is unchanged.
func FirmwareSource(n int, q uint64) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("core: need at least 1 coefficient, got %d", n)
	}
	if q == 0 || q >= 1<<32 {
		return "", fmt.Errorf("core: modulus %d does not fit the RV32 kernel (reduce with FirmwareModulus)", q)
	}
	return fmt.Sprintf(`
	# RevEAL target kernel: SEAL v3.2 set_poly_coeffs_normal (Fig. 2).
	li   s0, %d          # sampler port
	li   s1, %d          # &poly[0]
	li   s2, %d          # coeff_count n
	li   s3, %d          # coefficient modulus q
	li   t0, 0           # i
loop:
	lw   t1, 0(s0)       # noise = dist(engine)  [time-variant, power peak]
	blt  zero, t1, pos   # if (noise > 0)
	blt  t1, zero, neg   # else if (noise < 0)
	sw   zero, 0(s1)     # else: poly[i] = 0
	j    next
pos:
	sw   t1, 0(s1)       # poly[i] = noise
	j    next
neg:
	neg  t2, t1          # noise = -noise        [V3]
	sub  t3, s3, t2      # q - noise
	sw   t3, 0(s1)       # poly[i] = q - noise
next:
	addi s1, s1, 4
	addi t0, t0, 1
	blt  t0, s2, loop
	ebreak
`, PortBase, PolyBase, n, q), nil
}

// FirmwareBranchless generates the patched (SEAL v3.6-style) kernel used by
// the defense ablation: the sign assignment is computed with arithmetic
// masking and a single unconditional store, so V1 and V3 disappear.
func FirmwareBranchless(n int, q uint64) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("core: need at least 1 coefficient, got %d", n)
	}
	if q == 0 || q >= 1<<32 {
		return "", fmt.Errorf("core: modulus %d does not fit the RV32 kernel (reduce with FirmwareModulus)", q)
	}
	return fmt.Sprintf(`
	# Patched kernel: branch-free sign assignment (SEAL >= v3.6 style).
	li   s0, %d          # sampler port
	li   s1, %d          # &poly[0]
	li   s2, %d          # n
	li   s3, %d          # q
	li   t0, 0
loop:
	lw   t1, 0(s0)       # noise
	srai t2, t1, 31      # mask = noise >> 31 (all ones if negative)
	xor  t3, t1, t2      # |noise| via two's complement trick
	sub  t3, t3, t2
	sub  t4, s3, t3      # q - |noise|
	and  t4, t4, t2      # select (q-|noise|) when negative
	not  t5, t2
	and  t6, t3, t5      # select |noise| when non-negative
	or   t4, t4, t6
	# map value q (when noise == 0 and mask selected nothing) is impossible:
	# t4 = |0| = 0 on the non-negative path.
	sw   t4, 0(s1)
	addi s1, s1, 4
	addi t0, t0, 1
	blt  t0, s2, loop
	ebreak
`, PortBase, PolyBase, n, q), nil
}

// FirmwareModulus maps a coefficient modulus onto the 32-bit RV32 kernel:
// the low limb of q. For the legacy 27-bit modulus this is the identity;
// for the wide ladder primes the device computes residues mod 2^32, whose
// stored words equal the low 32 bits of the true residues (subtraction
// mod 2^32 only sees low limbs), preserving the leakage model.
func FirmwareModulus(q uint64) uint64 {
	return q & 0xffffffff
}

// AssembleFirmware assembles the kernel at address 0.
func AssembleFirmware(src string) ([]byte, error) {
	img, _, err := rv32.Assemble(src, 0)
	if err != nil {
		return nil, fmt.Errorf("core: assembling firmware: %w", err)
	}
	return img, nil
}
