package core

import (
	"context"

	"reveal/internal/obs"
)

// EmitCoeffEvents journals one per-coefficient CoeffEvent for every position
// of an attack result, scored against the ground-truth coefficients the
// evaluation harness holds. The attack itself never sees the truth — this is
// post-hoc scoring for the coeffs.jsonl journal and the aggregate
// classification-quality metrics. No-op (and zero cost) when observability
// is disabled.
func EmitCoeffEvents(poly string, res *AttackResult, truth []int64) {
	EmitCoeffEventsCtx(context.Background(), poly, res, truth)
}

// EmitCoeffEventsCtx is EmitCoeffEvents carrying the caller's trace
// identity: each journaled CoeffEvent is stamped with the request trace ID
// from ctx. Outside the service path the ID is empty and (being omitempty)
// leaves the coeffs.jsonl byte stream — and thus the selftest digest —
// unchanged.
func EmitCoeffEventsCtx(ctx context.Context, poly string, res *AttackResult, truth []int64) {
	rec := obs.Global()
	if rec == nil {
		return
	}
	traceID := obs.TraceIDFrom(ctx)
	n := len(res.Values)
	if len(truth) < n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		tv := int(truth[i])
		margin, entropy, rank := obs.PosteriorStats(res.Probs[i], tv)
		rec.RecordCoeff(obs.CoeffEvent{
			TraceID:     traceID,
			Poly:        poly,
			Index:       i,
			True:        tv,
			Predicted:   res.Values[i],
			Sign:        res.Signs[i],
			Correct:     res.Values[i] == tv,
			Margin:      margin,
			EntropyBits: entropy,
			Rank:        rank,
		})
	}
}

// EmitOutcomeEvents journals both polynomials of an attack outcome against
// the capture's transcript.
func EmitOutcomeEvents(out *AttackOutcome, cap *EncryptionCapture) {
	EmitOutcomeEventsCtx(context.Background(), out, cap)
}

// EmitOutcomeEventsCtx is EmitOutcomeEvents with trace-identity
// propagation from ctx.
func EmitOutcomeEventsCtx(ctx context.Context, out *AttackOutcome, cap *EncryptionCapture) {
	if cap.Truth == nil {
		return
	}
	EmitCoeffEventsCtx(ctx, "e1", out.E1, cap.Truth.E1)
	EmitCoeffEventsCtx(ctx, "e2", out.E2, cap.Truth.E2)
}
