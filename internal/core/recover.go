package core

import (
	"fmt"
	"math/big"
	"sort"

	"reveal/internal/bfv"
	"reveal/internal/modular"
	"reveal/internal/ring"
)

// RecoverU inverts Eq. 2 of the paper: u = (c1 − e2) · p1^−1 in R_q. It
// also reports whether the recovered u is ternary — the verification oracle
// that tells the attacker whether the e2 guess was exactly right (u is
// sampled from R_2, so a wrong e2 yields a non-ternary u with overwhelming
// probability).
func RecoverU(params *bfv.Parameters, pk *bfv.PublicKey, ct *bfv.Ciphertext, e2 []int64) (*ring.Poly, bool, error) {
	ctx := params.Context()
	if len(e2) != ctx.N {
		return nil, false, fmt.Errorf("core: e2 has %d coefficients, want %d", len(e2), ctx.N)
	}
	e2Poly := ctx.NewPoly()
	if err := ctx.SetSigned(e2Poly, e2); err != nil {
		return nil, false, err
	}
	// diff = c1 - e2 (coefficient domain).
	diff := ctx.NewPoly()
	ctx.Sub(ct.C[1], e2Poly, diff)

	// Divide by p1 pointwise in the NTT domain.
	p1 := pk.P1.Clone()
	ctx.NTT(p1)
	ctx.NTT(diff)
	u := ctx.NewPoly()
	for j, q := range params.Moduli {
		for i := 0; i < ctx.N; i++ {
			inv, ok := modular.Inverse(p1.Coeffs[j][i], q)
			if !ok {
				return nil, false, fmt.Errorf("core: p1 not invertible at slot (%d,%d)", j, i)
			}
			u.Coeffs[j][i] = modular.Mul(diff.Coeffs[j][i], inv, q)
		}
	}
	u.InNTT = true
	ctx.INTT(u)

	return u, isTernary(ctx, u), nil
}

// isTernary reports whether every centered coefficient of p is in {-1,0,1}.
func isTernary(ctx *ring.Context, p *ring.Poly) bool {
	q0 := ctx.Moduli[0]
	for i := 0; i < ctx.N; i++ {
		c := p.Coeffs[0][i]
		if c != 0 && c != 1 && c != q0-1 {
			return false
		}
	}
	// All residues must agree on the centered value (multi-modulus case).
	for j := 1; j < len(ctx.Moduli); j++ {
		qj := ctx.Moduli[j]
		for i := 0; i < ctx.N; i++ {
			want := p.Coeffs[0][i]
			var wantC int64
			switch want {
			case 0:
				wantC = 0
			case 1:
				wantC = 1
			default:
				wantC = -1
			}
			got := p.Coeffs[j][i]
			switch wantC {
			case 0:
				if got != 0 {
					return false
				}
			case 1:
				if got != 1 {
					return false
				}
			default:
				if got != qj-1 {
					return false
				}
			}
		}
	}
	return true
}

// RecoverMessage completes Eq. 3: with u known, c0 − p0·u = Δ·m + e1, and
// rounding by t/Q removes e1 exactly (‖e1‖∞ < Δ/2).
func RecoverMessage(params *bfv.Parameters, pk *bfv.PublicKey, ct *bfv.Ciphertext, u *ring.Poly) (*bfv.Plaintext, error) {
	ctx := params.Context()
	phase := ctx.NewPoly()
	ctx.MulPoly(pk.P0, u, phase)
	ctx.Sub(ct.C[0], phase, phase)

	pt := params.NewPlaintext()
	bigQ := ctx.BigQ()
	bigT := new(big.Int).SetUint64(params.T)
	halfQ := new(big.Int).Rsh(bigQ, 1)
	num := new(big.Int)
	for i := 0; i < ctx.N; i++ {
		x := ctx.ComposeCRT(phase, i)
		num.Mul(x, bigT)
		num.Add(num, halfQ)
		num.Quo(num, bigQ)
		num.Mod(num, bigT)
		pt.Coeffs[i] = num.Uint64()
	}
	return pt, nil
}

// RecoverMessageFromE2 chains RecoverU and RecoverMessage, failing when the
// ternary verification rejects the e2 candidate.
func RecoverMessageFromE2(params *bfv.Parameters, pk *bfv.PublicKey, ct *bfv.Ciphertext, e2 []int64) (*bfv.Plaintext, error) {
	u, ternary, err := RecoverU(params, pk, ct, e2)
	if err != nil {
		return nil, err
	}
	if !ternary {
		return nil, fmt.Errorf("core: recovered u is not ternary: e2 candidate rejected")
	}
	return RecoverMessage(params, pk, ct, u)
}

// RepairAndRecover searches the residual space the template attack leaves:
// coefficients are ranked by posterior confidence and the least certain
// ones are re-guessed from their probability tables (top-k candidates per
// coordinate, depth-first with a trial budget), each candidate verified via
// the ternary-u oracle. This plays the role of the paper's BKZ exploration
// of the remaining search space, using the exact verification available in
// the single-modulus setting.
func RepairAndRecover(params *bfv.Parameters, pk *bfv.PublicKey, ct *bfv.Ciphertext,
	attack *AttackResult, maxDepth, maxTrials int) (*bfv.Plaintext, []int64, int, error) {

	e2 := make([]int64, len(attack.Values))
	for i, v := range attack.Values {
		e2[i] = int64(v)
	}
	trials := 0
	try := func(cand []int64) *bfv.Plaintext {
		trials++
		pt, err := RecoverMessageFromE2(params, pk, ct, cand)
		if err != nil {
			return nil
		}
		return pt
	}
	if pt := try(e2); pt != nil {
		return pt, e2, trials, nil
	}

	// Rank all coordinates by confidence of the chosen value, ascending.
	type doubt struct {
		idx  int
		conf float64
	}
	doubts := make([]doubt, len(attack.Values))
	for i := range attack.Values {
		doubts[i] = doubt{idx: i, conf: attack.Probs[i][attack.Values[i]]}
	}
	sort.Slice(doubts, func(a, b int) bool { return doubts[a].conf < doubts[b].conf })

	// Alternative candidates per coordinate, by posterior mass.
	altsFor := func(i int) []int {
		type cand struct {
			v int
			p float64
		}
		var cs []cand
		for v, p := range attack.Probs[i] {
			if v != attack.Values[i] {
				cs = append(cs, cand{v, p})
			}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].p > cs[b].p })
		if len(cs) > 4 {
			cs = cs[:4]
		}
		out := make([]int, len(cs))
		for k, c := range cs {
			out[k] = c.v
		}
		return out
	}

	// Stage 1: single substitutions over every coordinate, least confident
	// first — catches any single misclassification.
	for _, d := range doubts {
		if trials >= maxTrials {
			break
		}
		orig := e2[d.idx]
		for _, alt := range altsFor(d.idx) {
			e2[d.idx] = int64(alt)
			if pt := try(e2); pt != nil {
				return pt, e2, trials, nil
			}
			if trials >= maxTrials {
				break
			}
		}
		e2[d.idx] = orig
	}

	// Stages 2 and 3: pairs and triples within the maxDepth least-confident
	// coordinates.
	window := maxDepth
	if window > len(doubts) {
		window = len(doubts)
	}
	for a := 0; a < window && trials < maxTrials; a++ {
		ia := doubts[a].idx
		origA := e2[ia]
		for _, altA := range altsFor(ia) {
			e2[ia] = int64(altA)
			for b := a + 1; b < window && trials < maxTrials; b++ {
				ib := doubts[b].idx
				origB := e2[ib]
				for _, altB := range altsFor(ib) {
					e2[ib] = int64(altB)
					if pt := try(e2); pt != nil {
						return pt, e2, trials, nil
					}
					// Triple: extend with a third coordinate.
					for c := b + 1; c < window && trials < maxTrials; c++ {
						ic := doubts[c].idx
						origC := e2[ic]
						for _, altC := range altsFor(ic) {
							e2[ic] = int64(altC)
							if pt := try(e2); pt != nil {
								return pt, e2, trials, nil
							}
						}
						e2[ic] = origC
					}
				}
				e2[ib] = origB
			}
		}
		e2[ia] = origA
	}
	return nil, nil, trials, fmt.Errorf("core: residual search exhausted after %d trials", trials)
}

// CrossValidateE1 closes the loop on the second error polynomial: with the
// message and u recovered, e1 = c0 − p0·u − Δ·m is computable exactly, and
// can be compared against what the single-trace attack classified for the
// e1 sampling run — an attacker-side self-check requiring no ground truth.
func CrossValidateE1(params *bfv.Parameters, pk *bfv.PublicKey, ct *bfv.Ciphertext,
	u *ring.Poly, m *bfv.Plaintext, e1Attack *AttackResult) (agreement float64, err error) {
	ctx := params.Context()
	if len(e1Attack.Values) != ctx.N {
		return 0, fmt.Errorf("core: e1 attack covered %d coefficients, want %d", len(e1Attack.Values), ctx.N)
	}
	// e1 = c0 − p0·u − Δ·m.
	p0u := ctx.NewPoly()
	ctx.MulPoly(pk.P0, u, p0u)
	e1 := ctx.NewPoly()
	ctx.Sub(ct.C[0], p0u, e1)
	for j, q := range params.Moduli {
		dj := params.DeltaMod(j)
		for i, mv := range m.Coeffs {
			e1.Coeffs[j][i] = modular.Sub(e1.Coeffs[j][i], modular.Mul(dj, mv, q), q)
		}
	}
	match := 0
	q0 := params.Moduli[0]
	for i := 0; i < ctx.N; i++ {
		truth := modular.CenteredRep(e1.Coeffs[0][i], q0)
		if truth == int64(e1Attack.Values[i]) {
			match++
		}
	}
	return float64(match) / float64(ctx.N), nil
}
