package core

import (
	"context"
	"reflect"
	"testing"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// captureSmall profiles the device and captures one encryption at the
// q=12289, n=64 test scale.
func captureSmall(t *testing.T, seed uint64) (*CoefficientClassifier, *EncryptionCapture, *bfv.Parameters) {
	t.Helper()
	dev := NewDevice(seed)
	cls := smallProfile(t, dev)
	params := smallParams(t)
	prng := sampler.NewXoshiro256(seed ^ 0xFACE)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	cap, err := CaptureEncryption(dev, params, enc, pt)
	if err != nil {
		t.Fatal(err)
	}
	_ = sk
	return cls, cap, params
}

// TestParallelClassificationMatchesSerial is the worker-pool determinism
// guarantee: sharded parallel classification must be byte-identical to the
// serial loop for any worker count.
func TestParallelClassificationMatchesSerial(t *testing.T) {
	cls, cap, params := captureSmall(t, 11)
	segs, err := trace.SegmentEncryptionTrace(cap.TraceE2, params.N+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	segs = segs[:params.N]
	ctx := context.Background()
	serial, err := cls.AttackSegmentsCtx(ctx, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 64, 200} {
		par, err := cls.AttackSegmentsParallel(ctx, segs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Values, par.Values) {
			t.Fatalf("workers=%d: Values diverge from serial", workers)
		}
		if !reflect.DeepEqual(serial.Signs, par.Signs) {
			t.Fatalf("workers=%d: Signs diverge from serial", workers)
		}
		if !reflect.DeepEqual(serial.Probs, par.Probs) {
			t.Fatalf("workers=%d: Probs diverge from serial", workers)
		}
	}
}

// TestAttackWithOptionsMatchesAttack checks the full parallel attack path
// (concurrent e1/e2 + sharded classification) against the serial Attack.
func TestAttackWithOptionsMatchesAttack(t *testing.T) {
	cls, cap, params := captureSmall(t, 12)
	serial, err := cls.Attack(cap, params.N)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cls.AttackWithOptions(context.Background(), cap, params.N, AttackOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.E1, par.E1) || !reflect.DeepEqual(serial.E2, par.E2) {
		t.Fatal("parallel attack outcome diverges from serial")
	}
}

// TestClassificationCancellation verifies both classification paths honor
// an already-canceled context.
func TestClassificationCancellation(t *testing.T) {
	cls, cap, params := captureSmall(t, 13)
	segs, err := trace.SegmentEncryptionTrace(cap.TraceE2, params.N+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	segs = segs[:params.N]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cls.AttackSegmentsCtx(ctx, segs); err == nil {
		t.Error("serial classification ignored canceled context")
	}
	if _, err := cls.AttackSegmentsParallel(ctx, segs, 4); err == nil {
		t.Error("parallel classification ignored canceled context")
	}
	if _, err := cls.AttackWithOptions(ctx, cap, params.N, AttackOptions{Workers: 2}); err == nil {
		t.Error("AttackWithOptions ignored canceled context")
	}
}

// TestProfileCancellation verifies profiling and diagnostics abort at stage
// boundaries once the context is done.
func TestProfileCancellation(t *testing.T) {
	dev := NewDevice(14)
	opts := DefaultProfileOptions()
	opts.Q = 12289
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileCtx(ctx, dev, opts); err == nil {
		t.Error("ProfileCtx ignored canceled context")
	}
	if _, err := DiagnoseCtx(ctx, dev, DiagnosticsOptions{Profile: opts}); err == nil {
		t.Error("DiagnoseCtx ignored canceled context")
	}
}

// TestTrainClassifierCtxMatchesSerialTraining verifies the concurrent
// per-class training produces the same classifier as a fresh profile run
// (training is deterministic given the collected sets).
func TestTrainClassifierCtxMatchesSerialTraining(t *testing.T) {
	dev := NewDevice(15)
	opts := DefaultProfileOptions()
	opts.Q = 12289
	opts.TracesPerValue = 20
	sets, err := CollectProfilingSets(dev, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TrainClassifierCtx(context.Background(), sets, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainClassifierCtx(context.Background(), sets, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated training on the same sets diverged")
	}
}
