package core

import (
	"fmt"

	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// Masking countermeasure study. The paper (§V-A) explicitly advises
// against masking: "we do not recommend masking-based defenses as they are
// known to be susceptible against single-trace attacks". This module
// builds a first-order arithmetically masked variant of the sampling
// kernel — the stored value is split into two random shares — and
// evaluates what the single-trace attack still recovers: the value leakage
// (V2/V3) is indeed masked away, but the sign-dependent branches (V1)
// cannot be masked, so the adversary retains exactly the Table IV
// ("branch-only") power.

// MaskPortBase is a separate MMIO region for the mask generator: it sits
// outside the power model's sampler-port window so mask reads do not
// produce the segmentation spike (the masking RNG is a quiet hardware
// unit, unlike the heavyweight Gaussian sampler).
const MaskPortBase uint32 = 0xffff1000

// FirmwareMasked generates the 2-share masked sign-assignment kernel: the
// branch structure of Fig. 2 remains (it depends on the secret sign and
// cannot be arithmetically masked), but every stored value v is replaced
// by the pair (r, v−r mod q) with a fresh random r.
func FirmwareMasked(n int, q uint64) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("core: need at least 1 coefficient, got %d", n)
	}
	if q == 0 || q > 1<<31 {
		return "", fmt.Errorf("core: modulus %d does not fit the RV32 kernel", q)
	}
	return fmt.Sprintf(`
	# Masked kernel: value split into two shares; branches remain (V1).
	li   s0, %d          # sampler port
	li   s5, %d          # mask generator port
	li   s1, %d          # &shares[0] (pairs: r, v-r)
	li   s2, %d          # n
	li   s3, %d          # q
	li   t0, 0
loop:
	lw   t1, 0(s0)       # noise
	lw   t5, 0(s5)       # fresh mask r (uniform mod q)
	blt  zero, t1, pos
	blt  t1, zero, neg
	sub  t6, zero, t5    # zero branch: (0 - r)
	j    fix
pos:
	sub  t6, t1, t5      # v - r: the mask is applied in the FIRST
	j    fix             # operation touching the value
neg:
	neg  t2, t1          # the negation path cannot avoid raw
	sub  t3, s3, t2      # intermediates (q - |v|) without sampler-side
	sub  t6, t3, t5      # masking - exactly the paper's objection
fix:
	# Constant-time wrap: add q when t6 went negative (arithmetic mask,
	# no secret-dependent branch).
	srai t4, t6, 31
	and  t4, t4, s3
	add  t6, t6, t4
	sw   t5, 0(s1)
	sw   t6, 4(s1)
next:
	addi s1, s1, 8
	addi t0, t0, 1
	blt  t0, s2, loop
	ebreak
`, PortBase, MaskPortBase, PolyBase, n, q), nil
}

// maskPort serves fresh uniform masks mod q.
type maskPort struct {
	q    uint64
	prng sampler.PRNG
}

func (p *maskPort) Read(uint32) (uint32, int) {
	return uint32(sampler.Uint64Below(p.prng, p.q)), 0
}

func (p *maskPort) Write(uint32, uint32) int { return 0 }

// CaptureMasked runs the masked kernel with the given noise values.
func CaptureMasked(dev *Device, n int, q uint64, values []int64,
	metas []sampler.SampleMeta, maskSeed uint64) (trace.Trace, error) {
	src, err := FirmwareMasked(n, q)
	if err != nil {
		return nil, err
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	if len(values) != len(metas) {
		return nil, fmt.Errorf("core: %d values but %d metas", len(values), len(metas))
	}
	inner := &samplerPort{values: values, waits: make([]int, len(values))}
	for i, m := range metas {
		inner.waits[i] = dev.WaitBase + dev.WaitPerRejection*m.Rejections
	}
	masks := &maskPort{q: q, prng: sampler.NewXoshiro256(maskSeed)}
	return dev.captureRegions(fw, []mmioRegionSpec{
		{base: PortBase, size: 0x100, handler: inner},
		{base: MaskPortBase, size: 0x100, handler: masks},
	}, len(values))
}

// MaskingEvaluation compares what the attack recovers against the masked
// kernel.
type MaskingEvaluation struct {
	SignAccuracy  float64
	ValueAccuracy float64
}

// EvaluateMasking profiles the masked kernel (the adversary can profile
// whatever implementation runs, per the threat model), attacks fresh
// traces, and reports what survives: the branch (sign) leakage does, the
// value leakage does not.
func EvaluateMasking(dev *Device, q uint64, tracesPerValue int, attackCoeffs int, seed uint64) (*MaskingEvaluation, error) {
	const coeffsPerRun = 18
	cn := sampler.DefaultClippedNormal()
	metaPRNG := sampler.NewXoshiro256(seed)

	// Profiling on the masked kernel: collect labeled sub-traces.
	var rawSegs []trace.Segment
	var labels []int
	const maxAbs = 14
	needed := map[int]int{}
	remaining := 0
	for v := -maxAbs; v <= maxAbs; v++ {
		needed[v] = tracesPerValue
		remaining += tracesPerValue
	}
	next := -maxAbs
	advance := func() int {
		for tries := 0; tries <= 2*maxAbs+1; tries++ {
			v := next
			next++
			if next > maxAbs {
				next = -maxAbs
			}
			if needed[v] > 0 {
				return v
			}
		}
		return int(sampler.Uint64Below(metaPRNG, uint64(2*maxAbs+1))) - maxAbs
	}
	run := uint64(0)
	for remaining > 0 {
		run++
		values := make([]int64, coeffsPerRun)
		for i := range values {
			values[i] = int64(advance())
		}
		metas := SyntheticMetas(metaPRNG, cn, coeffsPerRun)
		tr, err := CaptureMasked(dev, coeffsPerRun, q, values, metas, seed^run)
		if err != nil {
			return nil, err
		}
		segs, err := trace.SegmentEncryptionTrace(tr, coeffsPerRun, 8)
		if err != nil {
			return nil, err
		}
		for i := 1; i < len(segs)-1; i++ {
			rawSegs = append(rawSegs, segs[i])
			labels = append(labels, int(values[i]))
			if needed[int(values[i])] > 0 {
				needed[int(values[i])]--
				remaining--
			}
		}
	}
	length := len(rawSegs[0].Samples)
	for _, s := range rawSegs {
		if len(s.Samples) < length {
			length = len(s.Samples)
		}
	}
	signSet := &trace.Set{}
	posSet := &trace.Set{}
	negSet := &trace.Set{}
	for i, s := range rawSegs {
		tr := tailAlign(s.Samples, length)
		v := labels[i]
		signSet.Append(tr, sca.SignOf(v))
		switch {
		case v > 0:
			posSet.Append(tr, v)
		case v < 0:
			negSet.Append(tr, v)
		}
	}
	opts := sca.DefaultTemplateOptions()
	opts.POICount = 24
	opts.MinSpacing = 1
	signTmpl, err := sca.BuildTemplates(signSet, opts)
	if err != nil {
		return nil, err
	}
	posTmpl, err := sca.BuildTemplates(posSet, opts)
	if err != nil {
		return nil, err
	}
	negTmpl, err := sca.BuildTemplates(negSet, opts)
	if err != nil {
		return nil, err
	}
	cls := &CoefficientClassifier{
		Length: length, MaxAbsValue: maxAbs,
		Sign: signTmpl, Pos: posTmpl, Neg: negTmpl,
	}

	// Attack fresh masked traces.
	values, metas := cn.SamplePoly(metaPRNG, attackCoeffs)
	values = append(values, 0)
	metas = append(metas, sampler.SampleMeta{})
	tr, err := CaptureMasked(dev, attackCoeffs+1, q, values, metas, seed^0xFEED)
	if err != nil {
		return nil, err
	}
	segs, err := trace.SegmentEncryptionTrace(tr, attackCoeffs+1, 8)
	if err != nil {
		return nil, err
	}
	res, err := cls.AttackSegments(segs[:attackCoeffs])
	if err != nil {
		return nil, err
	}
	valueAcc, signAcc, err := res.Accuracy(values[:attackCoeffs])
	if err != nil {
		return nil, err
	}
	return &MaskingEvaluation{SignAccuracy: signAcc, ValueAccuracy: valueAcc}, nil
}

// SecondOrderStudy quantifies the masking order: fixed-vs-random t-tests
// on the share-store region, first-order (raw samples) versus second-order
// (centered products). A sound first-order masked implementation is clean
// at first order there and leaks at second order.
type SecondOrderStudy struct {
	FirstOrderMaxT  float64
	SecondOrderMaxT float64
}

// RunSecondOrderStudy captures masked-kernel traces with the coefficient
// pinned to fixedValue vs drawn from the positive range (same branch, so
// control flow cancels) and compares first- and second-order statistics on
// the post-load region.
func RunSecondOrderStudy(dev *Device, q uint64, fixedValue int64, perClass int, seed uint64) (*SecondOrderStudy, error) {
	if fixedValue <= 0 {
		return nil, fmt.Errorf("core: fixed value must be positive (the study holds the branch constant)")
	}
	if perClass < 20 {
		return nil, fmt.Errorf("core: need at least 20 traces per class")
	}
	const coeffsPerRun = 18
	prng := sampler.NewXoshiro256(seed)

	collect := func(class int, count int) ([]trace.Trace, error) {
		var out []trace.Trace
		run := uint64(0)
		for len(out) < count {
			run++
			values := make([]int64, coeffsPerRun)
			for i := range values {
				if class == 0 {
					values[i] = fixedValue
				} else {
					values[i] = int64(1 + sampler.Uint64Below(prng, 14)) // positive random
				}
			}
			metas := make([]sampler.SampleMeta, coeffsPerRun) // constant timing
			tr, err := CaptureMasked(dev, coeffsPerRun, q, values, metas, seed^(run*2+uint64(class)))
			if err != nil {
				return nil, err
			}
			segs, err := trace.SegmentEncryptionTrace(tr, coeffsPerRun, 8)
			if err != nil {
				return nil, err
			}
			for i := 1; i < len(segs)-1 && len(out) < count; i++ {
				out = append(out, segs[i].Samples)
			}
		}
		return out, nil
	}

	fixed, err := collect(0, perClass)
	if err != nil {
		return nil, err
	}
	random, err := collect(1, perClass)
	if err != nil {
		return nil, err
	}

	// Tail-align and strip the sampler-load region (the raw value transits
	// a register there; the masking claim concerns the shares).
	minLen := len(fixed[0])
	for _, tr := range append(fixed, random...) {
		if len(tr) < minLen {
			minLen = len(tr)
		}
	}
	window := minLen - (dev.WaitBase + 5)
	if window < 8 {
		return nil, fmt.Errorf("core: segment too short")
	}
	all := make([]trace.Trace, 0, len(fixed)+len(random))
	labels := make([]int, 0, len(fixed)+len(random))
	for _, tr := range fixed {
		all = append(all, tailAlign(tr, window))
		labels = append(labels, 0)
	}
	for _, tr := range random {
		all = append(all, tailAlign(tr, window))
		labels = append(labels, 1)
	}

	firstSet := &trace.Set{Traces: all, Labels: labels}
	t1, err := sca.TTest(firstSet, 0, 1)
	if err != nil {
		return nil, err
	}
	study := &SecondOrderStudy{}
	for _, v := range t1 {
		if v > study.FirstOrderMaxT {
			study.FirstOrderMaxT = v
		}
	}

	products, err := sca.SecondOrderPreprocess(all, 12)
	if err != nil {
		return nil, err
	}
	secondSet := &trace.Set{Traces: products, Labels: labels}
	t2, err := sca.TTest(secondSet, 0, 1)
	if err != nil {
		return nil, err
	}
	for _, v := range t2 {
		if v > study.SecondOrderMaxT {
			study.SecondOrderMaxT = v
		}
	}
	return study, nil
}
