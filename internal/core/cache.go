package core

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"reveal/internal/obs"
)

// Template-cache metric names, registered on the global recorder's registry
// (and therefore exported on the /metrics endpoint) whenever observability
// is enabled.
const (
	MetricTemplateCacheHits      = "reveal_template_cache_hits_total"
	MetricTemplateCacheMisses    = "reveal_template_cache_misses_total"
	MetricTemplateCacheEvictions = "reveal_template_cache_evictions_total"
	MetricTemplateCacheEntries   = "reveal_template_cache_entries"
)

// TemplateCacheKey derives the canonical cache key of a profiling
// configuration: the device config (leakage model, port timing, memory
// size, trigger jitter), the device's PRNG seed, and the full profile
// options including the POI spec. Two campaigns with equal keys train
// byte-identical classifiers, so the trained templates can be shared.
func TemplateCacheKey(dev *Device, opts ProfileOptions) string {
	h := fnv.New64a()
	// Model is printed with %v: Go formats map fields in sorted key order,
	// so the fingerprint is deterministic.
	fmt.Fprintf(h, "%v|%d|%d|%d|%d|%d|", *dev.Model,
		dev.WaitBase, dev.WaitPerRejection, dev.MemSize, dev.NoiseSeed, dev.TriggerJitter)
	cfg, err := json.Marshal(opts)
	if err != nil {
		// ProfileOptions is plain data; Marshal cannot fail in practice,
		// but fall back to the fmt rendering rather than panic.
		cfg = []byte(fmt.Sprintf("%+v", opts))
	}
	h.Write(cfg)
	return fmt.Sprintf("tmpl-%016x", h.Sum64())
}

// TemplateCache is a concurrency-safe LRU cache of trained classifiers
// keyed by TemplateCacheKey. Repeated campaigns against the same (device
// config, PRNG seed, POI spec) skip the profiling stage entirely; a
// per-key in-flight table additionally deduplicates concurrent training so
// two jobs needing the same profile only run it once.
type TemplateCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	inflight map[string]*cacheCall
}

type cacheEntry struct {
	key string
	cls *CoefficientClassifier
}

// cacheCall is one in-flight training run other callers can wait on.
type cacheCall struct {
	done chan struct{}
	cls  *CoefficientClassifier
	err  error
}

// NewTemplateCache returns a cache holding at most capacity classifiers
// (minimum 1).
func NewTemplateCache(capacity int) *TemplateCache {
	if capacity < 1 {
		capacity = 1
	}
	return &TemplateCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*cacheCall{},
	}
}

// Len returns the number of cached classifiers.
func (c *TemplateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Get returns the cached classifier for key, marking it most recently used.
func (c *TemplateCache) Get(key string) (*CoefficientClassifier, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).cls, true
}

// Put inserts (or refreshes) a classifier, evicting the least recently
// used entry when the cache is full.
func (c *TemplateCache) Put(key string, cls *CoefficientClassifier) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, cls)
}

// put inserts with c.mu held.
func (c *TemplateCache) put(key string, cls *CoefficientClassifier) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).cls = cls
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, cls: cls})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		obs.Global().Registry().Counter(MetricTemplateCacheEvictions).Inc()
	}
	obs.Global().Registry().Gauge(MetricTemplateCacheEntries).Set(float64(c.order.Len()))
}

// GetOrTrain returns the cached classifier for key, or runs train to build
// and cache it. Concurrent callers with the same key share one training
// run: the first caller trains, the rest wait on its result (or their own
// ctx). The second return value reports whether the classifier came from
// the cache without training in this call.
func (c *TemplateCache) GetOrTrain(ctx context.Context, key string,
	train func(context.Context) (*CoefficientClassifier, error)) (*CoefficientClassifier, bool, error) {
	reg := obs.Global().Registry()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		cls := el.Value.(*cacheEntry).cls
		c.mu.Unlock()
		reg.Counter(MetricTemplateCacheHits).Inc()
		return cls, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-call.done:
			if call.err != nil {
				return nil, false, call.err
			}
			reg.Counter(MetricTemplateCacheHits).Inc()
			return call.cls, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("core: waiting for in-flight profiling: %w", ctx.Err())
		}
	}
	call := &cacheCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()
	reg.Counter(MetricTemplateCacheMisses).Inc()

	trainStart := time.Now()
	cls, err := train(ctx)
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.put(key, cls)
	}
	c.mu.Unlock()
	if err == nil {
		obs.Emit(obs.ServiceEvent{
			Type:    obs.EventCacheFill,
			TraceID: obs.TraceIDFrom(ctx),
			Detail:  fmt.Sprintf("trained %s in %.2fs", key, time.Since(trainStart).Seconds()),
		})
	}
	call.cls, call.err = cls, err
	close(call.done)
	if err != nil {
		return nil, false, err
	}
	return cls, false, nil
}
