package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"reveal/internal/bfv"
	"reveal/internal/obs"
	"reveal/internal/sampler"
)

// Selftest is the end-to-end replay-determinism gate: it runs the full
// profile→attack→hints pipeline twice at a small deterministic scale —
// once on the serial classification path, once through the sharded
// AttackSegmentsParallel path — each under a fresh observability recorder,
// and requires every deterministic artifact (recovered coefficients,
// posterior tables, accuracies, DBDD hardness, and the coeffs.jsonl
// journal) to be byte-identical. The daemon runs this at startup and
// `revealctl selftest` exposes it on the command line; running the command
// twice in fresh processes and comparing the printed digest extends the
// gate across process boundaries.

// SelftestReport summarizes one gate execution.
type SelftestReport struct {
	Seed           uint64  `json:"seed"`
	Workers        int     `json:"workers"`
	SerialDigest   string  `json:"serial_digest"`
	ParallelDigest string  `json:"parallel_digest"`
	Match          bool    `json:"match"`
	ValueAccuracy  float64 `json:"value_accuracy_e2"`
	SignAccuracy   float64 `json:"sign_accuracy_e2"`
	BaselineBikz   float64 `json:"baseline_bikz"`
	HintedBikz     float64 `json:"hinted_bikz"`
}

// Digest is the single fingerprint a fresh-process comparison checks: it
// covers both pipeline digests, so two `revealctl selftest` invocations
// printing the same value proves cross-process replay determinism.
func (r *SelftestReport) Digest() string {
	sum := sha256.Sum256([]byte(r.SerialDigest + ":" + r.ParallelDigest))
	return hex.EncodeToString(sum[:])
}

// selftestSummary is the canonical JSON payload a pipeline run is digested
// over. Only deterministic fields appear — no timings, no throughput.
type selftestSummary struct {
	ValuesE1 []int             `json:"values_e1"`
	SignsE1  []int             `json:"signs_e1"`
	ProbsE1  []map[int]float64 `json:"probs_e1"`
	ValuesE2 []int             `json:"values_e2"`
	SignsE2  []int             `json:"signs_e2"`
	ProbsE2  []map[int]float64 `json:"probs_e2"`

	ValueAccuracy float64 `json:"value_accuracy_e2"`
	SignAccuracy  float64 `json:"sign_accuracy_e2"`
	BaselineBikz  float64 `json:"baseline_bikz"`
	HintedBikz    float64 `json:"hinted_bikz"`

	// CoeffsJSONL is the hex SHA-256 of the coeffs.jsonl bytes the
	// recorder would write for this run.
	CoeffsJSONL string `json:"coeffs_jsonl_sha256"`
}

// selftestParams is the small deterministic configuration: n=64, the
// 14-bit NTT prime 12289, t=16 — large enough to exercise segmentation,
// classification, posterior combination and hint integration, small enough
// to finish in a couple of seconds.
func selftestParams() (*bfv.Parameters, error) {
	return bfv.NewParameters(64, []uint64{12289}, 16,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
}

// runSelftestPipeline executes one full pipeline pass with the given
// worker count under a fresh recorder and returns the canonical summary
// plus its digest.
func runSelftestPipeline(ctx context.Context, seed uint64, workers int) (*selftestSummary, string, error) {
	prev := obs.Global()
	rec := obs.New(obs.Options{CoeffCapacity: 1024})
	obs.SetGlobal(rec)
	defer obs.SetGlobal(prev)

	params, err := selftestParams()
	if err != nil {
		return nil, "", err
	}

	dev := NewDevice(seed)
	opts := DefaultProfileOptions()
	opts.Q = params.Moduli[0]
	opts.TracesPerValue = 60
	opts.Templates.POICount = 24
	opts.Templates.MinSpacing = 1
	cls, err := ProfileCtx(ctx, dev, opts)
	if err != nil {
		return nil, "", fmt.Errorf("core: selftest profiling: %w", err)
	}

	prng := sampler.NewXoshiro256(seed ^ 0x9E3779B97F4A7C15)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = sampler.Uint64Below(prng, params.T)
	}
	capture, err := CaptureEncryption(dev, params, enc, pt)
	if err != nil {
		return nil, "", fmt.Errorf("core: selftest capture: %w", err)
	}

	out, err := cls.AttackWithOptions(ctx, capture, params.N, AttackOptions{Workers: workers})
	if err != nil {
		return nil, "", fmt.Errorf("core: selftest attack (workers=%d): %w", workers, err)
	}
	EmitOutcomeEvents(out, capture)

	valueAcc, signAcc, err := out.E2.Accuracy(capture.Truth.E2)
	if err != nil {
		return nil, "", err
	}
	loss, err := EstimateFullHints(params, out.E2)
	if err != nil {
		return nil, "", fmt.Errorf("core: selftest hint estimate: %w", err)
	}

	var coeffs bytes.Buffer
	if err := rec.WriteCoeffsJSONL(&coeffs); err != nil {
		return nil, "", err
	}
	coeffsSum := sha256.Sum256(coeffs.Bytes())

	s := &selftestSummary{
		ValuesE1:      out.E1.Values,
		SignsE1:       out.E1.Signs,
		ProbsE1:       out.E1.Probs,
		ValuesE2:      out.E2.Values,
		SignsE2:       out.E2.Signs,
		ProbsE2:       out.E2.Probs,
		ValueAccuracy: valueAcc,
		SignAccuracy:  signAcc,
		BaselineBikz:  loss.BaselineBikz,
		HintedBikz:    loss.HintedBikz,
		CoeffsJSONL:   hex.EncodeToString(coeffsSum[:]),
	}
	data, err := json.Marshal(s)
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(data)
	return s, hex.EncodeToString(sum[:]), nil
}

// Selftest runs the replay-determinism gate. workers configures the
// parallel pass (values < 2 use 4). A non-nil error either means the
// pipeline failed outright or — the case the gate exists for — the serial
// and parallel executions diverged; the report is returned in both cases
// when available.
func Selftest(ctx context.Context, seed uint64, workers int) (*SelftestReport, error) {
	if workers < 2 {
		workers = 4
	}
	serial, serialDigest, err := runSelftestPipeline(ctx, seed, 1)
	if err != nil {
		return nil, err
	}
	_, parallelDigest, err := runSelftestPipeline(ctx, seed, workers)
	if err != nil {
		return nil, err
	}
	report := &SelftestReport{
		Seed:           seed,
		Workers:        workers,
		SerialDigest:   serialDigest,
		ParallelDigest: parallelDigest,
		Match:          serialDigest == parallelDigest,
		ValueAccuracy:  serial.ValueAccuracy,
		SignAccuracy:   serial.SignAccuracy,
		BaselineBikz:   serial.BaselineBikz,
		HintedBikz:     serial.HintedBikz,
	}
	if !report.Match {
		return report, fmt.Errorf("core: selftest FAILED: serial digest %s != parallel digest %s (workers=%d)",
			serialDigest, parallelDigest, workers)
	}
	return report, nil
}
