package core

import (
	"fmt"

	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// Decryption-side attack (§II-B of the paper): "decryption operations can
// be targeted by simply extending earlier multi-trace attacks [13], [14]
// to HE". Unlike encryption — whose randomness is fresh per run, forcing
// the single-trace attack — the secret key repeats across decryptions, so
// classic correlation power analysis applies. This module implements that
// extension: a decryption MAC kernel on the device, a multi-trace CPA
// campaign against it, and ternary secret-key recovery.

// SecretKeyBase is where the decryption firmware keeps the key residues.
const SecretKeyBase uint32 = 0x8000

// DecryptionFirmware builds the per-coefficient kernel of the dot product
// c1·s the decryptor computes: load a (public, varying) ciphertext word
// from the port, load the (secret, fixed) key residue from RAM, multiply,
// and store the product. The multiply/store pair leaks HW(c·s), the hook
// CPA needs.
func DecryptionFirmware(n int) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("core: need at least 1 coefficient, got %d", n)
	}
	return fmt.Sprintf(`
	# Decryption MAC kernel: acc_i = c1[i] * s[i] (product stored per slot).
	li   s0, %d          # ciphertext word port
	li   s1, %d          # &out[0]
	li   s2, %d          # n
	li   s4, %d          # &sk[0] (secret residues)
	li   t0, 0
loop:
	lw   t1, 0(s0)       # c (public, fresh each decryption)
	lw   t2, 0(s4)       # s (secret, fixed across decryptions)
	mul  t3, t1, t2      # c*s — the DPA target
	sw   t3, 0(s1)
	addi s1, s1, 4
	addi s4, s4, 4
	addi t0, t0, 1
	blt  t0, s2, loop
	ebreak
`, PortBase, PolyBase, n, SecretKeyBase), nil
}

// CaptureDecryption runs one decryption kernel execution: the ternary key
// residues (mod q) are planted in RAM, the known ciphertext words stream
// through the port, and the power trace is returned.
func CaptureDecryption(dev *Device, firmware []byte, skResidues []uint32, c1 []uint32) (trace.Trace, error) {
	values := make([]int64, len(c1))
	metas := make([]sampler.SampleMeta, len(c1))
	for i, c := range c1 {
		values[i] = int64(int32(c))
	}
	// Plant the key before running: Capture loads firmware at 0 and resets
	// RAM, so we wrap its internals here with a pre-run hook.
	return dev.captureWithSetup(firmware, values, metas, func(write func(addr, v uint32) error) error {
		for i, r := range skResidues {
			if err := write(SecretKeyBase+uint32(4*i), r); err != nil {
				return err
			}
		}
		return nil
	})
}

// DecryptionAttackResult is the outcome of the multi-trace key recovery.
type DecryptionAttackResult struct {
	// Recovered is the guessed ternary key (-1, 0, 1 per coefficient).
	Recovered []int
	// Confidence is the winning correlation per coefficient.
	Confidence []float64
}

// ZeroCorrelationThreshold: coefficients whose best hypothesis correlates
// below this are classified as zero (s=0 produces a constant all-zero
// product that correlates with nothing). The bound must sit above the
// max-over-samples noise floor (≈0.25 for 150 traces × ~60 samples) and
// below the true-match correlation (≈0.99).
const ZeroCorrelationThreshold = 0.4

// DecryptionCPA recovers the ternary key from many decryption traces with
// known ciphertext words: for each coefficient it correlates the measured
// sub-traces against HW(c·1) and HW(c·(q−1) mod 2³²) and thresholds for
// zero.
func DecryptionCPA(subTraces [][]trace.Trace, c1PerTrace [][]uint32, q uint64) (*DecryptionAttackResult, error) {
	n := len(subTraces)
	if n == 0 {
		return nil, fmt.Errorf("core: no sub-traces")
	}
	m := len(subTraces[0])
	if m < 8 {
		return nil, fmt.Errorf("core: CPA needs several traces, got %d", m)
	}
	if len(c1PerTrace) != m {
		return nil, fmt.Errorf("core: %d ciphertexts for %d traces", len(c1PerTrace), m)
	}
	negOne := uint32(q - 1)
	res := &DecryptionAttackResult{
		Recovered:  make([]int, n),
		Confidence: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		traces := subTraces[i]
		cs := make([]uint32, m)
		for k := 0; k < m; k++ {
			cs[k] = c1PerTrace[k][i]
		}
		preds := sca.HWPredictions([]uint32{1, negOne}, m, func(cand uint32, k int) uint32 {
			return cs[k] * cand // low 32 bits of the product, as the mul stores
		})
		out, err := sca.CPA(traces, preds)
		if err != nil {
			return nil, fmt.Errorf("core: coefficient %d: %w", i, err)
		}
		best := out.Scores[out.BestHypothesis]
		res.Confidence[i] = best
		switch {
		case best < ZeroCorrelationThreshold:
			res.Recovered[i] = 0
		case out.BestHypothesis == 0:
			res.Recovered[i] = 1
		default:
			res.Recovered[i] = -1
		}
	}
	return res, nil
}

// RunDecryptionAttack performs the full campaign: nTraces decryptions with
// random known ciphertext words against a fixed ternary key, segmented and
// fed to CPA.
func RunDecryptionAttack(dev *Device, skSigned []int64, q uint64, nTraces int, seed uint64) (*DecryptionAttackResult, error) {
	n := len(skSigned)
	if n == 0 {
		return nil, fmt.Errorf("core: empty secret key")
	}
	src, err := DecryptionFirmware(n)
	if err != nil {
		return nil, err
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	skResidues := make([]uint32, n)
	for i, s := range skSigned {
		switch {
		case s == 0:
			skResidues[i] = 0
		case s == 1:
			skResidues[i] = 1
		case s == -1:
			skResidues[i] = uint32(q - 1)
		default:
			return nil, fmt.Errorf("core: key coefficient %d = %d not ternary", i, s)
		}
	}
	prng := sampler.NewXoshiro256(seed)

	subTraces := make([][]trace.Trace, n)
	c1PerTrace := make([][]uint32, nTraces)
	length := 0
	for k := 0; k < nTraces; k++ {
		c1 := make([]uint32, n)
		for i := range c1 {
			c1[i] = uint32(sampler.Uint64Below(prng, q))
		}
		c1PerTrace[k] = c1
		tr, err := CaptureDecryption(dev, fw, skResidues, c1)
		if err != nil {
			return nil, err
		}
		segs, err := trace.SegmentEncryptionTrace(tr, n, 8)
		if err != nil {
			return nil, fmt.Errorf("core: decryption trace %d: %w", k, err)
		}
		for i, s := range segs {
			sub := s.Samples
			if length == 0 || len(sub) < length {
				length = len(sub)
			}
			subTraces[i] = append(subTraces[i], sub)
		}
	}
	// Tail-align all sub-traces to the common minimum length, then drop the
	// port-load region at the front: the load of c itself leaks HW(c)
	// independently of the key, which would make every "s=1" hypothesis
	// correlate. Only the multiply/store region carries key-dependent
	// leakage.
	portLoad := dev.WaitBase + 5 // port access duration in cycles
	cpaLen := length - portLoad
	if cpaLen < 8 {
		return nil, fmt.Errorf("core: sub-traces too short after removing the load region")
	}
	for i := range subTraces {
		for k := range subTraces[i] {
			subTraces[i][k] = tailAlign(subTraces[i][k], cpaLen)
		}
	}
	return DecryptionCPA(subTraces, c1PerTrace, q)
}

// KeyRecoveryRate compares a recovered ternary key with the truth.
func KeyRecoveryRate(recovered []int, truth []int64) (float64, error) {
	if len(recovered) != len(truth) {
		return 0, fmt.Errorf("core: length mismatch %d vs %d", len(recovered), len(truth))
	}
	if len(truth) == 0 {
		return 0, nil
	}
	ok := 0
	for i := range truth {
		if int64(recovered[i]) == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(truth)), nil
}
