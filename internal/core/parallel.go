package core

import (
	"context"
	"fmt"
	"sync"

	"reveal/internal/obs"
	"reveal/internal/trace"
)

// classifyCancelStride is how many coefficients each worker classifies
// between context checks: cheap enough to keep cancellation latency low
// without paying a ctx.Err() per coefficient.
const classifyCancelStride = 16

// attackSegments dispatches between the serial and the sharded-parallel
// classification paths. Both produce identical results.
func (c *CoefficientClassifier) attackSegments(ctx context.Context, segs []trace.Segment, workers int) (*AttackResult, error) {
	if workers <= 1 || len(segs) < 2 {
		return c.AttackSegmentsCtx(ctx, segs)
	}
	return c.AttackSegmentsParallel(ctx, segs, workers)
}

// AttackSegmentsParallel classifies the per-coefficient segments on a
// sharded worker pool: the segment index space is split into `workers`
// contiguous shards, and each shard is classified by its own goroutine
// writing results by index. Because every coefficient's classification is
// an independent pure function of its segment, the output is byte-identical
// to AttackSegments — parallelism is purely a throughput optimization.
// The pool aborts early (and cancels its siblings) on the first error or
// when ctx is done.
func (c *CoefficientClassifier) AttackSegmentsParallel(ctx context.Context, segs []trace.Segment, workers int) (*AttackResult, error) {
	if workers <= 1 || len(segs) < 2 {
		return c.AttackSegmentsCtx(ctx, segs)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	sp := obs.StartSpanCtx(ctx, "classify")
	sp.AddItems(len(segs))
	defer sp.End()

	res := &AttackResult{
		Values: make([]int, len(segs)),
		Signs:  make([]int, len(segs)),
		Probs:  make([]map[int]float64, len(segs)),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// Contiguous shards: worker w owns [w*quota, min((w+1)*quota, n)), the
	// last one absorbing the remainder. Contiguity keeps each worker's
	// memory walk sequential over the segment slice.
	quota := (len(segs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * quota
		hi := lo + quota
		if hi > len(segs) {
			hi = len(segs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// One pooled scoring context per shard: scratch buffers are
			// goroutine-local, results stay bitwise identical to serial.
			ss := c.scorer()
			defer c.release(ss)
			for i := lo; i < hi; i++ {
				if (i-lo)%classifyCancelStride == 0 {
					if err := ctx.Err(); err != nil {
						fail(fmt.Errorf("core: classification canceled at coefficient %d: %w", i, err))
						return
					}
				}
				cl, err := ss.classify(segs[i].Samples)
				if err != nil {
					fail(fmt.Errorf("core: coefficient %d: %w", i, err))
					return
				}
				res.Values[i] = cl.Value
				res.Signs[i] = cl.Sign
				res.Probs[i] = cl.Probs
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
