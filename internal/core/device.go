package core

import (
	"fmt"

	"reveal/internal/obs"
	"reveal/internal/power"
	"reveal/internal/rv32"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// samplerPort is the MMIO device the firmware reads Gaussian samples from.
// Each read pops one queued value and stalls the bus for a data-dependent
// number of wait cycles, reproducing the time-variant behaviour of the
// soft-float distribution code (§III-C: "the distribution function shows
// time-variant execution behavior").
type samplerPort struct {
	values []int64
	waits  []int
	next   int
	reads  int
}

func (p *samplerPort) Read(offset uint32) (uint32, int) {
	p.reads++
	if p.next >= len(p.values) {
		return 0, 0
	}
	v := p.values[p.next]
	w := p.waits[p.next]
	p.next++
	return uint32(int32(v)), w
}

func (p *samplerPort) Write(uint32, uint32) int { return 0 }

// Device bundles the simulated measurement target: the RV32 core, the
// leakage model, and the port timing behaviour.
type Device struct {
	// Model is the power model; the port spike location is overridden to
	// the sampler port region automatically.
	Model *power.Model
	// WaitBase and WaitPerRejection set the port latency:
	// wait = WaitBase + WaitPerRejection · rejections.
	WaitBase, WaitPerRejection int
	// MemSize is the RAM size of the core.
	MemSize int
	// NoiseSeed seeds the measurement-noise PRNG; successive runs advance
	// an internal counter so repeated captures differ like real traces.
	NoiseSeed uint64
	// TriggerJitter prepends up to this many noise-floor samples per
	// capture, modeling oscilloscope trigger uncertainty. The paper's
	// peak-based segmentation (§III-C) is invariant to it; naive
	// fixed-offset windowing is not.
	TriggerJitter int

	runCounter uint64
}

// NewDevice returns a device with the default profile: the measurement
// conditions that reproduce the partial-accuracy confusion structure of
// Table I.
func NewDevice(seed uint64) *Device {
	m := power.DefaultModel()
	m.PortBase = PortBase
	m.PortSize = 0x100
	return &Device{
		Model:            m,
		WaitBase:         9,
		WaitPerRejection: 7,
		MemSize:          1 << 17,
		NoiseSeed:        seed,
	}
}

// NewLowNoiseDevice returns a device measured under favourable conditions —
// lower acquisition noise and strongly heterogeneous bus lines — under
// which the template attack recovers nearly every coefficient exactly and
// full plaintext recovery from a single trace succeeds (the paper's
// headline claim, demonstrated end to end).
func NewLowNoiseDevice(seed uint64) *Device {
	d := NewDevice(seed)
	d.Model.NoiseSigma = 0.002
	for b := range d.Model.BitWeights {
		z := uint64(b)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 30)) * 0x94d049bb133111eb
		z ^= z >> 31
		frac := float64(z>>11) / (1 << 53)
		d.Model.BitWeights[b] = 1 + 0.9*(frac-0.5)
	}
	return d
}

// Capture runs the given firmware with the given queued noise values and
// returns the power trace. Each call uses fresh measurement noise.
func (d *Device) Capture(firmware []byte, values []int64, metas []sampler.SampleMeta) (trace.Trace, error) {
	sp := obs.StartSpan("capture")
	sp.AddItems(len(values))
	defer sp.End()
	return d.captureWithSetup(firmware, values, metas, nil)
}

// captureWithSetup additionally lets the caller plant device state (e.g. a
// secret key in RAM) before execution starts, via a word-writer callback.
func (d *Device) captureWithSetup(firmware []byte, values []int64, metas []sampler.SampleMeta,
	setup func(write func(addr, v uint32) error) error) (trace.Trace, error) {
	if len(values) != len(metas) {
		return nil, fmt.Errorf("core: %d values but %d metas", len(values), len(metas))
	}
	port := &samplerPort{values: values, waits: make([]int, len(values))}
	for i, m := range metas {
		port.waits[i] = d.WaitBase + d.WaitPerRejection*m.Rejections
	}
	cpu := rv32.NewCPU(d.MemSize)
	cpu.MapMMIO(PortBase, 0x100, port)
	if err := cpu.Load(firmware, 0); err != nil {
		return nil, err
	}
	if setup != nil {
		if err := setup(cpu.WriteWord); err != nil {
			return nil, err
		}
	}
	d.runCounter++
	syn, err := power.NewSynthesizer(d.Model, sampler.NewXoshiro256(d.NoiseSeed^(d.runCounter*0x9e3779b97f4a7c15)))
	if err != nil {
		return nil, err
	}
	cpu.OnEvent = syn.HandleEvent
	// Budget: each coefficient costs ~10 instructions; 64 is generous slack.
	budget := 64 * (len(values) + 4)
	if _, err := cpu.Run(budget); err != nil {
		return nil, fmt.Errorf("core: firmware run: %w", err)
	}
	if port.reads != len(port.values) {
		return nil, fmt.Errorf("core: firmware performed %d port reads for %d queued samples",
			port.reads, len(port.values))
	}
	samples := trace.Trace(syn.Samples())
	if d.TriggerJitter > 0 {
		jitterPRNG := sampler.NewXoshiro256(d.NoiseSeed ^ d.runCounter ^ 0x5151)
		shift := int(sampler.Uint64Below(jitterPRNG, uint64(d.TriggerJitter+1)))
		if shift > 0 {
			floor := samples.Mean()
			pre := make(trace.Trace, shift, shift+len(samples))
			for i := range pre {
				n, _ := sampler.NormFloat64(jitterPRNG)
				pre[i] = floor + n*d.Model.NoiseSigma
			}
			samples = append(pre, samples...)
		}
	}
	return samples, nil
}

// StoredPoly reads back the polynomial residues the firmware wrote (ground
// truth for tests).
func (d *Device) StoredPoly(firmware []byte, values []int64, metas []sampler.SampleMeta) ([]uint32, error) {
	port := &samplerPort{values: values, waits: make([]int, len(values))}
	cpu := rv32.NewCPU(d.MemSize)
	cpu.MapMMIO(PortBase, 0x100, port)
	if err := cpu.Load(firmware, 0); err != nil {
		return nil, err
	}
	if _, err := cpu.Run(64 * (len(values) + 4)); err != nil {
		return nil, err
	}
	out := make([]uint32, len(values))
	for i := range out {
		w, err := cpu.ReadWord(PolyBase + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// SegmentCapture captures a trace and cuts it into the per-coefficient
// sub-traces using the port-spike peaks, returning exactly len(values)
// segments.
func (d *Device) SegmentCapture(firmware []byte, values []int64, metas []sampler.SampleMeta) (trace.Trace, []trace.Segment, error) {
	tr, err := d.Capture(firmware, values, metas)
	if err != nil {
		return nil, nil, err
	}
	segs, err := trace.SegmentEncryptionTrace(tr, len(values), 8)
	if err != nil {
		return nil, nil, err
	}
	return tr, segs, nil
}

// mmioRegionSpec describes one device region for captureRegions.
type mmioRegionSpec struct {
	base, size uint32
	handler    rv32.MMIOHandler
}

// captureRegions runs firmware with caller-provided MMIO regions (for
// kernels with custom port layouts, e.g. the masked variant); the caller
// is responsible for consumption checks.
func (d *Device) captureRegions(firmware []byte, regions []mmioRegionSpec, coeffs int) (trace.Trace, error) {
	cpu := rv32.NewCPU(d.MemSize)
	for _, r := range regions {
		cpu.MapMMIO(r.base, r.size, r.handler)
	}
	if err := cpu.Load(firmware, 0); err != nil {
		return nil, err
	}
	d.runCounter++
	syn, err := power.NewSynthesizer(d.Model, sampler.NewXoshiro256(d.NoiseSeed^(d.runCounter*0x9e3779b97f4a7c15)))
	if err != nil {
		return nil, err
	}
	cpu.OnEvent = syn.HandleEvent
	if _, err := cpu.Run(96 * (coeffs + 4)); err != nil {
		return nil, fmt.Errorf("core: firmware run: %w", err)
	}
	return trace.Trace(syn.Samples()), nil
}

// SyntheticMetas draws realistic rejection-count metadata (the timing side
// of the distribution call) without constraining the values, used when the
// profiler pins coefficient values.
func SyntheticMetas(prng sampler.PRNG, cn *sampler.ClippedNormal, n int) []sampler.SampleMeta {
	metas := make([]sampler.SampleMeta, n)
	for i := range metas {
		_, m := cn.Sample(prng)
		metas[i] = m
	}
	return metas
}

// Perturb returns a copy of the device with manufacturing-variation noise
// applied to its leakage coefficients: every bit-line weight and class
// base cost is scaled by 1 ± spread. Profiling on one device and attacking
// its perturbed sibling models the paper's §V-B cross-device caveat
// ("cross-device attacks may need a more complicated, machine-learning-
// based profiling").
func (d *Device) Perturb(seed uint64, spread float64) *Device {
	out := NewDevice(d.NoiseSeed ^ seed)
	*out.Model = *d.Model
	out.Model.Base = make(map[rv32.Class]float64, len(d.Model.Base))
	out.WaitBase = d.WaitBase
	out.WaitPerRejection = d.WaitPerRejection
	out.MemSize = d.MemSize

	prng := sampler.NewXoshiro256(seed)
	jitter := func() float64 {
		return 1 + spread*(2*sampler.Float64(prng)-1)
	}
	for c, base := range d.Model.Base {
		out.Model.Base[c] = base * jitter()
	}
	for b := range out.Model.BitWeights {
		out.Model.BitWeights[b] = d.Model.BitWeights[b] * jitter()
	}
	out.Model.AlphaHWData = d.Model.AlphaHWData * jitter()
	out.Model.BetaHDReg = d.Model.BetaHDReg * jitter()
	out.Model.DeltaHDBus = d.Model.DeltaHDBus * jitter()
	return out
}

// runMaskedForTest executes the masked kernel and returns the CPU so tests
// can inspect the written shares.
func (d *Device) runMaskedForTest(firmware []byte, values []int64, q uint64, maskSeed uint64) (*rv32.CPU, error) {
	cpu := rv32.NewCPU(d.MemSize)
	cpu.MapMMIO(PortBase, 0x100, &samplerPort{values: values, waits: make([]int, len(values))})
	cpu.MapMMIO(MaskPortBase, 0x100, &maskPort{q: q, prng: sampler.NewXoshiro256(maskSeed)})
	if err := cpu.Load(firmware, 0); err != nil {
		return nil, err
	}
	if _, err := cpu.Run(96 * (len(values) + 4)); err != nil {
		return nil, err
	}
	return cpu, nil
}
