package core

import (
	"fmt"
	"sort"

	"reveal/internal/sca"
	"reveal/internal/trace"
)

// segScorer is a per-goroutine classification context over one trained
// CoefficientClassifier: one reusable sca.Scorer per template set (sign,
// positive values, negative values), a reusable tail-alignment buffer, and
// the precomputed sorted label set of the combined posterior. It computes
// each class log-likelihood exactly once per segment — the map-based path
// scored the sign templates twice (posterior + argmax) and the recovered
// side's value templates twice more — while keeping every floating-point
// operation in the same order, so results are bitwise identical.
type segScorer struct {
	c              *CoefficientClassifier
	sign, pos, neg *sca.Scorer
	alignBuf       trace.Trace
	// Posterior scratch per template set, indexed by class.
	signPost, posPost, negPost []float64
	// Indices of the −1/0/+1 labels in the sign scorer's class order
	// (−1 when the label is absent — its posterior then reads as 0,
	// matching the historical map lookup of a missing key).
	idxNeg, idxZero, idxPos int
	// sortedLabels is the ascending label set of the combined posterior:
	// negative labels, 0, positive labels. Precomputed once so the
	// normalization sum runs in the same order the map-based path produced
	// by sorting per segment.
	sortedLabels []int
}

func newSegScorer(c *CoefficientClassifier) *segScorer {
	ss := &segScorer{
		c:        c,
		sign:     c.Sign.NewScorer(),
		alignBuf: make(trace.Trace, c.Length),
		idxNeg:   -1, idxZero: -1, idxPos: -1,
	}
	ss.signPost = make([]float64, ss.sign.Classes())
	for ci := 0; ci < ss.sign.Classes(); ci++ {
		switch ss.sign.Label(ci) {
		case -1:
			ss.idxNeg = ci
		case 0:
			ss.idxZero = ci
		case 1:
			ss.idxPos = ci
		}
	}
	labels := []int{0}
	if c.Pos != nil {
		ss.pos = c.Pos.NewScorer()
		ss.posPost = make([]float64, ss.pos.Classes())
		labels = append(labels, c.Pos.Labels()...)
	}
	if c.Neg != nil {
		ss.neg = c.Neg.NewScorer()
		ss.negPost = make([]float64, ss.neg.Classes())
		labels = append(labels, c.Neg.Labels()...)
	}
	sort.Ints(labels)
	// Dedupe: the combined posterior is a map, so a label shared between
	// template sets must contribute to the normalization sum only once.
	uniq := labels[:0]
	for i, l := range labels {
		if i == 0 || l != labels[i-1] {
			uniq = append(uniq, l)
		}
	}
	ss.sortedLabels = uniq
	return ss
}

// tailAlignInto aligns a segment by its end without copying: segments at
// least Length long yield a view of their last Length samples; shorter
// ones are stretched into the reusable buffer with the exact interpolation
// of Trace.Resample.
func (ss *segScorer) tailAlignInto(seg trace.Trace) trace.Trace {
	if len(seg) >= ss.c.Length {
		return seg[len(seg)-ss.c.Length:]
	}
	return seg.ResampleInto(ss.alignBuf)
}

// classify is ClassifySegment over the reusable scoring context.
func (ss *segScorer) classify(seg trace.Trace) (*Classification, error) {
	aligned := ss.tailAlignInto(seg)
	signLL, err := ss.sign.ScoreTrace(aligned)
	if err != nil {
		return nil, fmt.Errorf("core: sign classification: %w", err)
	}
	ss.sign.PosteriorValues(signLL, ss.signPost)
	sign := ss.sign.ArgMaxLabel(signLL)

	postAt := func(idx int) float64 {
		if idx < 0 {
			return 0
		}
		return ss.signPost[idx]
	}
	probs := make(map[int]float64, len(ss.sortedLabels))
	probs[0] = postAt(ss.idxZero)
	var posLL, negLL []float64
	if ss.pos != nil {
		posLL, err = ss.pos.ScoreTrace(aligned)
		if err != nil {
			return nil, fmt.Errorf("core: positive value classification: %w", err)
		}
		ss.pos.PosteriorValues(posLL, ss.posPost)
		pSign := postAt(ss.idxPos)
		for ci, p := range ss.posPost {
			probs[ss.pos.Label(ci)] = pSign * p
		}
	}
	if ss.neg != nil {
		negLL, err = ss.neg.ScoreTrace(aligned)
		if err != nil {
			return nil, fmt.Errorf("core: negative value classification: %w", err)
		}
		ss.neg.PosteriorValues(negLL, ss.negPost)
		nSign := postAt(ss.idxNeg)
		for ci, p := range ss.negPost {
			probs[ss.neg.Label(ci)] = nSign * p
		}
	}
	// Normalize in ascending label order (float addition is
	// order-sensitive; map order would make reruns drift in the last bits).
	total := 0.0
	for _, v := range ss.sortedLabels {
		total += probs[v]
	}
	if total > 0 {
		for v := range probs {
			probs[v] /= total
		}
	}

	// Maximum-likelihood value within the recovered sign class, reusing the
	// already-computed value scores (the map-based path recomputed them).
	value := 0
	switch sign {
	case 1:
		if ss.pos == nil {
			return nil, fmt.Errorf("core: no positive templates")
		}
		value = ss.pos.ArgMaxLabel(posLL)
	case -1:
		if ss.neg == nil {
			return nil, fmt.Errorf("core: no negative templates")
		}
		value = ss.neg.ArgMaxLabel(negLL)
	}
	return &Classification{Value: value, Sign: sign, Probs: probs}, nil
}
