package core

import (
	"context"
	"fmt"

	"reveal/internal/bfv"
	"reveal/internal/obs"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// EncryptionCapture is one observed encryption: the public ciphertext, the
// two power traces of the Gaussian sampling runs (e1 then e2), and — for
// evaluation only — the ground-truth transcript.
type EncryptionCapture struct {
	Ciphertext *bfv.Ciphertext
	TraceE1    trace.Trace
	TraceE2    trace.Trace

	// Truth is the encryption transcript; the attack never reads it, the
	// evaluation harness does.
	Truth *bfv.EncryptionTranscript
}

// CaptureEncryption performs one BFV encryption and records the power
// traces of both error-polynomial sampling runs on the device — the
// "single power measurement" of the paper (one trace per error polynomial,
// captured within the same encryption).
func CaptureEncryption(dev *Device, params *bfv.Parameters, enc *bfv.Encryptor, pt *bfv.Plaintext) (*EncryptionCapture, error) {
	return CaptureEncryptionCtx(context.Background(), dev, params, enc, pt)
}

// CaptureEncryptionCtx is CaptureEncryption carrying the caller's trace
// identity: the capture span is stamped with the request trace ID from ctx
// (service path), so per-job trace exports include the capture stage.
func CaptureEncryptionCtx(ctx context.Context, dev *Device, params *bfv.Parameters, enc *bfv.Encryptor, pt *bfv.Plaintext) (*EncryptionCapture, error) {
	sp := obs.StartSpanCtx(ctx, "capture_encryption")
	sp.AddItems(2) // two sampling traces per encryption (e1, e2)
	defer sp.End()
	ct, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		return nil, err
	}
	// One sentinel iteration is appended so the last real coefficient's
	// segment has the same tail shape as the others (its successor peak
	// exists); the attack discards the sentinel's classification.
	src, err := FirmwareSource(params.N+1, FirmwareModulus(params.Moduli[0]))
	if err != nil {
		return nil, err
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	withSentinel := func(vals []int64, metas []sampler.SampleMeta) ([]int64, []sampler.SampleMeta) {
		v := append(append([]int64(nil), vals...), 0)
		m := append(append([]sampler.SampleMeta(nil), metas...), sampler.SampleMeta{})
		return v, m
	}
	v1, m1 := withSentinel(tr.E1, tr.Meta1)
	t1, err := dev.Capture(fw, v1, m1)
	if err != nil {
		return nil, fmt.Errorf("core: capturing e1 sampling: %w", err)
	}
	v2, m2 := withSentinel(tr.E2, tr.Meta2)
	t2, err := dev.Capture(fw, v2, m2)
	if err != nil {
		return nil, fmt.Errorf("core: capturing e2 sampling: %w", err)
	}
	return &EncryptionCapture{Ciphertext: ct, TraceE1: t1, TraceE2: t2, Truth: tr}, nil
}

// AttackOutcome is the result of the full single-trace attack on one
// encryption.
type AttackOutcome struct {
	E1, E2 *AttackResult
}

// AttackOptions tunes one attack execution.
type AttackOptions struct {
	// Workers is the number of classification goroutines used per error
	// polynomial; values <= 1 run the serial path. The sharded parallel
	// path produces byte-identical results to the serial one, so this is
	// purely a throughput knob. When Workers > 1 the two polynomials are
	// additionally segmented and classified concurrently.
	Workers int
}

// Attack runs the single-trace attack on both error polynomials of a
// captured encryption (each trace contains n real coefficients plus the
// sentinel iteration, which is discarded).
func (c *CoefficientClassifier) Attack(cap *EncryptionCapture, n int) (*AttackOutcome, error) {
	return c.AttackCtx(context.Background(), cap, n)
}

// AttackCtx is Attack with cancellation: the classification aborts at the
// next stage boundary once ctx is done.
func (c *CoefficientClassifier) AttackCtx(ctx context.Context, cap *EncryptionCapture, n int) (*AttackOutcome, error) {
	return c.AttackWithOptions(ctx, cap, n, AttackOptions{})
}

// AttackWithOptions runs the single-trace attack with explicit concurrency
// options. It is the full entry point behind Attack/AttackCtx.
func (c *CoefficientClassifier) AttackWithOptions(ctx context.Context, cap *EncryptionCapture, n int, opts AttackOptions) (*AttackOutcome, error) {
	sp := obs.StartSpanCtx(ctx, "attack")
	sp.AddItems(2 * n)
	defer sp.End()
	attackOne := func(poly string, tr trace.Trace) (*AttackResult, error) {
		psp := sp.Child(poly)
		psp.AddItems(n)
		defer psp.End()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: attack canceled: %w", err)
		}
		// Zero-copy segmentation: the segment views only need to live for
		// the classification below, and tr outlives it.
		ssp := obs.StartSpanCtx(ctx, "segment")
		sg := trace.NewSegmenter(n + 1)
		segs, err := sg.Segment(tr, n+1, 8)
		if err != nil {
			ssp.End()
			return nil, err
		}
		ssp.AddItems(len(segs))
		ssp.End()
		return c.attackSegments(ctx, segs[:n], opts.Workers)
	}
	if opts.Workers > 1 {
		// The two error polynomials are independent: segment and classify
		// them concurrently, each with its own shard pool.
		type polyRes struct {
			r   *AttackResult
			err error
		}
		ch := make(chan polyRes, 1)
		go func() {
			r, err := attackOne("e1", cap.TraceE1)
			ch <- polyRes{r, err}
		}()
		r2, err2 := attackOne("e2", cap.TraceE2)
		p1 := <-ch
		if p1.err != nil {
			return nil, fmt.Errorf("core: attacking e1 trace: %w", p1.err)
		}
		if err2 != nil {
			return nil, fmt.Errorf("core: attacking e2 trace: %w", err2)
		}
		return &AttackOutcome{E1: p1.r, E2: r2}, nil
	}
	r1, err := attackOne("e1", cap.TraceE1)
	if err != nil {
		return nil, fmt.Errorf("core: attacking e1 trace: %w", err)
	}
	r2, err := attackOne("e2", cap.TraceE2)
	if err != nil {
		return nil, fmt.Errorf("core: attacking e2 trace: %w", err)
	}
	return &AttackOutcome{E1: r1, E2: r2}, nil
}

// RecoveredE2 returns the maximum-likelihood e2 as signed coefficients.
func (o *AttackOutcome) RecoveredE2() []int64 {
	out := make([]int64, len(o.E2.Values))
	for i, v := range o.E2.Values {
		out[i] = int64(v)
	}
	return out
}
