package core

import (
	"bytes"
	"strings"
	"testing"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// smallParams is a fast single-modulus configuration for pipeline tests:
// n=64, q=12289 (prime, ≡ 1 mod 128), t=16 so Δ = 768 ≫ 2·41.
func smallParams(t *testing.T) *bfv.Parameters {
	t.Helper()
	p, err := bfv.NewParameters(64, []uint64{12289}, 16,
		sampler.DefaultSigma, sampler.DefaultMaxDeviation)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// smallProfile trains a classifier against q=12289 at reduced scale.
func smallProfile(t *testing.T, dev *Device) *CoefficientClassifier {
	t.Helper()
	opts := DefaultProfileOptions()
	opts.Q = 12289
	opts.TracesPerValue = 60
	opts.Templates.POICount = 24
	opts.Templates.MinSpacing = 1
	cls, err := Profile(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func TestFirmwareSourceValidation(t *testing.T) {
	if _, err := FirmwareSource(0, 12289); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := FirmwareSource(4, 0); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := FirmwareSource(4, 1<<32); err == nil {
		t.Error("oversized q should fail")
	}
	if _, err := FirmwareBranchless(0, 12289); err == nil {
		t.Error("branchless n=0 should fail")
	}
	if _, err := FirmwareBranchless(4, 1<<32); err == nil {
		t.Error("branchless oversized q should fail")
	}
	if _, err := AssembleFirmware("bogus instr"); err == nil {
		t.Error("bad assembly should fail")
	}
}

// The firmware must implement exactly the AssignSigned semantics of the Go
// sampler (cross-module consistency: Fig. 2 in two languages).
func TestFirmwareMatchesAssignSigned(t *testing.T) {
	const q = 12289
	values := []int64{0, 1, -1, 5, -5, 41, -41, 14, -14}
	src, err := FirmwareSource(len(values), q)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(1)
	metas := make([]sampler.SampleMeta, len(values))
	stored, err := dev.StoredPoly(fw, values, metas)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		want, _ := sampler.AssignSigned(v, []uint64{q})
		if uint64(stored[i]) != want[0] {
			t.Errorf("coeff %d (value %d): stored %d want %d", i, v, stored[i], want[0])
		}
	}
}

func TestBranchlessFirmwareMatchesToo(t *testing.T) {
	const q = 12289
	values := []int64{0, 3, -3, 41, -41}
	src, err := FirmwareBranchless(len(values), q)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(2)
	metas := make([]sampler.SampleMeta, len(values))
	stored, err := dev.StoredPoly(fw, values, metas)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		want, _ := sampler.AssignSigned(v, []uint64{q})
		if uint64(stored[i]) != want[0] {
			t.Errorf("coeff %d (value %d): stored %d want %d", i, v, stored[i], want[0])
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	dev := NewDevice(3)
	src, _ := FirmwareSource(2, 12289)
	fw, _ := AssembleFirmware(src)
	if _, err := dev.Capture(fw, []int64{1, 2}, make([]sampler.SampleMeta, 1)); err == nil {
		t.Error("values/metas mismatch should fail")
	}
	// Too few queued values: firmware reads zeros past the queue, but the
	// consumed-count check must flag it... with 2 queued for 2 coeffs it
	// passes; with 3 coefficients in firmware and 2 queued it fails.
	src3, _ := FirmwareSource(3, 12289)
	fw3, _ := AssembleFirmware(src3)
	if _, err := dev.Capture(fw3, []int64{1, 2}, make([]sampler.SampleMeta, 2)); err == nil {
		t.Error("under-provisioned port should fail")
	}
}

func TestSegmentCaptureCounts(t *testing.T) {
	dev := NewDevice(4)
	const n = 12
	src, _ := FirmwareSource(n, 12289)
	fw, _ := AssembleFirmware(src)
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i%7 - 3)
	}
	cn := sampler.DefaultClippedNormal()
	metas := SyntheticMetas(sampler.NewXoshiro256(5), cn, n)
	tr, segs, err := dev.SegmentCapture(fw, values, metas)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != n {
		t.Fatalf("segments=%d want %d", len(segs), n)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	// Segments tile the trace from the first peak.
	for k := 1; k < len(segs); k++ {
		if segs[k].Start != segs[k-1].End {
			t.Error("segments must tile")
		}
	}
}

func TestProfileValidation(t *testing.T) {
	dev := NewDevice(6)
	bad := DefaultProfileOptions()
	bad.MaxAbsValue = 0
	if _, err := Profile(dev, bad); err == nil {
		t.Error("MaxAbsValue 0 should fail")
	}
	bad = DefaultProfileOptions()
	bad.TracesPerValue = 1
	if _, err := Profile(dev, bad); err == nil {
		t.Error("too few traces should fail")
	}
	bad = DefaultProfileOptions()
	bad.CoeffsPerRun = 2
	if _, err := Profile(dev, bad); err == nil {
		t.Error("too few coefficients per run should fail")
	}
}

// The paper's core claims, at test scale: sign recovery 100%, zero
// recovery 100%, negatives better than positives.
func TestAttackAccuracyStructure(t *testing.T) {
	dev := NewDevice(7)
	cls := smallProfile(t, dev)
	params := smallParams(t)

	prng := sampler.NewXoshiro256(100)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)

	conf := sca.NewConfusion()
	signOK, signTotal := 0, 0
	for run := 0; run < 8; run++ {
		pt := params.NewPlaintext()
		cap, err := CaptureEncryption(dev, params, enc, pt)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cls.Attack(cap, params.N)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out.E2.Values {
			truth := int(cap.Truth.E2[i])
			conf.Add(truth, out.E2.Values[i])
			signTotal++
			if out.E2.Signs[i] == sca.SignOf(truth) {
				signOK++
			}
		}
	}
	if signOK != signTotal {
		t.Errorf("sign accuracy %d/%d, paper claims 100%%", signOK, signTotal)
	}
	if conf.Accuracy(0) != 1.0 {
		t.Errorf("zero accuracy %.3f, paper claims 100%%", conf.Accuracy(0))
	}
	// Negatives must beat positives on average (V3 at work).
	var negSum, posSum float64
	var negN, posN int
	for v := 1; v <= 5; v++ {
		if conf.Total(v) > 5 {
			posSum += conf.Accuracy(v)
			posN++
		}
		if conf.Total(-v) > 5 {
			negSum += conf.Accuracy(-v)
			negN++
		}
	}
	if posN == 0 || negN == 0 {
		t.Fatal("not enough samples per class")
	}
	negAvg, posAvg := negSum/float64(negN), posSum/float64(posN)
	if negAvg <= posAvg {
		t.Errorf("negative accuracy %.3f should exceed positive %.3f (V3)", negAvg, posAvg)
	}
	if conf.OverallAccuracy() < 0.4 {
		t.Errorf("overall accuracy %.3f too low for the attack to be meaningful", conf.OverallAccuracy())
	}
}

func TestRecoverMessageWithGroundTruth(t *testing.T) {
	params := smallParams(t)
	prng := sampler.NewXoshiro256(200)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)

	pt := params.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i) % params.T
	}
	ct, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2: u from exact e2 must be ternary and recover m exactly.
	u, ternary, err := RecoverU(params, pk, ct, tr.E2)
	if err != nil {
		t.Fatal(err)
	}
	if !ternary {
		t.Fatal("exact e2 must give ternary u")
	}
	got, err := RecoverMessage(params, pk, ct, u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Coeffs {
		if got.Coeffs[i] != pt.Coeffs[i] {
			t.Fatalf("coeff %d: recovered %d want %d", i, got.Coeffs[i], pt.Coeffs[i])
		}
	}
	// A wrong e2 must be rejected by the ternary oracle.
	bad := append([]int64(nil), tr.E2...)
	bad[0] += 3
	if _, ternary, err := RecoverU(params, pk, ct, bad); err != nil {
		t.Fatal(err)
	} else if ternary {
		t.Error("wrong e2 accepted by the ternary verification")
	}
	if _, err := RecoverMessageFromE2(params, pk, ct, bad); err == nil {
		t.Error("RecoverMessageFromE2 must reject wrong e2")
	}
	if _, _, err := RecoverU(params, pk, ct, bad[:3]); err == nil {
		t.Error("short e2 should fail")
	}
}

func TestRepairAndRecoverPlantedErrors(t *testing.T) {
	params := smallParams(t)
	prng := sampler.NewXoshiro256(201)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	pt.Coeffs[1] = 7
	ct, tr, err := enc.EncryptWithTranscript(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Build a synthetic attack result: correct everywhere except two
	// planted errors whose true values are the second candidates.
	res := &AttackResult{
		Values: make([]int, params.N),
		Signs:  make([]int, params.N),
		Probs:  make([]map[int]float64, params.N),
	}
	for i, v := range tr.E2 {
		res.Values[i] = int(v)
		res.Signs[i] = sca.SignOf(int(v))
		res.Probs[i] = map[int]float64{int(v): 0.9, int(v) + 1: 0.1}
	}
	for _, idx := range []int{5, 40} {
		truth := res.Values[idx]
		res.Values[idx] = truth - 1 // wrong ML guess
		res.Probs[idx] = map[int]float64{truth - 1: 0.5, truth: 0.45, truth + 2: 0.05}
	}
	got, repairedE2, trials, err := RepairAndRecover(params, pk, ct, res, 16, 20000)
	if err != nil {
		t.Fatalf("repair failed after %d trials: %v", trials, err)
	}
	for i := range pt.Coeffs {
		if got.Coeffs[i] != pt.Coeffs[i] {
			t.Fatalf("repaired recovery wrong at %d", i)
		}
	}
	for i := range repairedE2 {
		if repairedE2[i] != tr.E2[i] {
			t.Fatalf("repaired e2 wrong at %d", i)
		}
	}
	if trials < 2 {
		t.Error("repair should have needed more than one trial")
	}
}

// The headline end-to-end result: single-trace full message recovery on
// the low-noise device.
func TestEndToEndSingleTraceRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is expensive")
	}
	dev := NewLowNoiseDevice(8)
	opts := HighAccuracyProfileOptions()
	opts.Q = 12289
	opts.TracesPerValue = 90
	cls, err := Profile(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	params := smallParams(t)
	prng := sampler.NewXoshiro256(300)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)

	recovered := 0
	const runs = 4
	for run := 0; run < runs; run++ {
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64((i*7 + run) % int(params.T))
		}
		cap, err := CaptureEncryption(dev, params, enc, pt)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cls.Attack(cap, params.N)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := RepairAndRecover(params, pk, cap.Ciphertext, out.E2, 16, 50000)
		if err != nil {
			t.Logf("run %d: %v", run, err)
			continue
		}
		ok := true
		for i := range pt.Coeffs {
			if got.Coeffs[i] != pt.Coeffs[i] {
				ok = false
			}
		}
		if ok {
			recovered++
		}
	}
	if recovered < runs-1 {
		t.Errorf("recovered %d/%d messages from single traces", recovered, runs)
	}
}

func TestEstimatesFromAttack(t *testing.T) {
	// Estimation needs the paper-scale instance: the n=64 test ring is
	// already LLL-weak without any hints.
	params := bfv.PaperParameters()
	// Synthetic perfect attack result.
	res := &AttackResult{
		Values: make([]int, params.N),
		Signs:  make([]int, params.N),
		Probs:  make([]map[int]float64, params.N),
	}
	for i := range res.Probs {
		v := (i % 7) - 3
		res.Values[i] = v
		res.Signs[i] = sca.SignOf(v)
		res.Probs[i] = map[int]float64{v: 1}
	}
	loss, err := EstimateFullHints(params, res)
	if err != nil {
		t.Fatal(err)
	}
	if loss.HintedBikz >= loss.BaselineBikz {
		t.Errorf("full hints should collapse hardness: %+v", loss)
	}
	signLoss, err := EstimateSignOnly(params, res)
	if err != nil {
		t.Fatal(err)
	}
	if signLoss.HintedBikz >= signLoss.BaselineBikz {
		t.Error("sign hints should reduce hardness")
	}
	if signLoss.HintedBikz <= loss.HintedBikz {
		t.Error("sign-only hints must be weaker than full hints")
	}
	bikz, guess, err := SignOnlyWithGuess(params, res)
	if err != nil {
		t.Fatal(err)
	}
	if guess.SuccessProb <= 0 || guess.SuccessProb > 1 {
		t.Errorf("guess probability %v out of range", guess.SuccessProb)
	}
	if bikz > signLoss.HintedBikz+1e-9 {
		t.Error("a guess must not increase hardness")
	}
	// Wrong-length results must be rejected.
	short := &AttackResult{Values: []int{1}, Signs: []int{1}, Probs: []map[int]float64{{1: 1}}}
	if _, err := EstimateFullHints(params, short); err == nil {
		t.Error("short result should fail")
	}
	if _, err := EstimateSignOnly(params, short); err == nil {
		t.Error("short result should fail")
	}
}

func TestEstimateRejectsMultiModulus(t *testing.T) {
	p, err := bfv.DefaultParameters(4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LWEInstanceForParams(p); err == nil {
		t.Error("multi-modulus params should be rejected")
	}
}

func TestSummarizeHints(t *testing.T) {
	res := &AttackResult{
		Values: []int{1, -2},
		Signs:  []int{1, -1},
		Probs: []map[int]float64{
			{1: 0.9, 2: 0.1},
			{-2: 1.0},
		},
	}
	rows, err := SummarizeHints(res, []int64{1, -2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	if rows[1].Variance != 0 {
		t.Error("certain hint must have zero variance")
	}
	if rows[0].Centered <= 1 || rows[0].Centered >= 1.2 {
		t.Errorf("centered=%v want 1.1", rows[0].Centered)
	}
	if rows[0].TrueValue != 1 {
		t.Error("truth not propagated")
	}
	if _, err := SummarizeHints(res, nil, []int{5}); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestShufflingCountermeasure(t *testing.T) {
	dev := NewDevice(9)
	cls := smallProfile(t, dev)

	const n = 64
	src, err := FirmwareSource(n+1, 12289)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	samplePRNG := sampler.NewXoshiro256(400)
	values, metas := cn.SamplePoly(samplePRNG, n)
	values = append(values, 0)
	metas = append(metas, sampler.SampleMeta{})

	tr, perm, err := CaptureShuffled(dev, fw, values, metas, sampler.NewXoshiro256(401))
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != n+1 {
		t.Fatalf("perm length %d", len(perm))
	}
	ev, err := EvaluateShuffledAttack(cls, tr, values, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Values are still recovered (multiset), but positions are destroyed.
	if ev.MultisetAccuracy < 0.4 {
		t.Errorf("multiset accuracy %.3f collapsed — shuffling should not hide values", ev.MultisetAccuracy)
	}
	if ev.PositionalAccuracy > 0.75*ev.MultisetAccuracy+0.15 {
		t.Errorf("positional accuracy %.3f too high vs multiset %.3f — shuffle ineffective?",
			ev.PositionalAccuracy, ev.MultisetAccuracy)
	}
	// Mismatched perm length must fail.
	if _, err := EvaluateShuffledAttack(cls, tr, values, perm[:3]); err == nil {
		t.Error("perm length mismatch should fail")
	}
}

func TestBranchlessKernelDefeatsBranchClassifier(t *testing.T) {
	dev := NewDevice(10)
	cls := smallProfile(t, dev)

	const n = 40
	src, err := FirmwareBranchless(n+1, 12289)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	prng := sampler.NewXoshiro256(500)
	values, metas := cn.SamplePoly(prng, n)
	values = append(values, 0)
	metas = append(metas, sampler.SampleMeta{})
	tr, err := dev.Capture(fw, values, metas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cls.AttackTrace(tr, n+1)
	if err != nil {
		// Segmentation can legitimately fail on the patched kernel; that
		// is also a defense success.
		t.Logf("attack failed on patched kernel (fine): %v", err)
		return
	}
	// Sign accuracy should collapse well below the 100% of the vulnerable
	// kernel (templates were trained on different code).
	ok := 0
	for i := 0; i < n; i++ {
		if res.Signs[i] == sca.SignOf(int(values[i])) {
			ok++
		}
	}
	acc := float64(ok) / float64(n)
	if acc > 0.9 {
		t.Errorf("sign accuracy %.3f against the patched kernel — defense ineffective", acc)
	}
}

func TestTVLAFlagsVulnerableKernel(t *testing.T) {
	dev := NewDevice(31)
	res, err := RunTVLA(dev, 12289, 5, 60, false, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaky {
		t.Errorf("vulnerable kernel must fail TVLA: max |t| = %.2f", res.MaxT)
	}
	if res.MaxTAt < 0 || res.MaxTAt >= len(res.TStat) {
		t.Error("peak index out of range")
	}
	if res.Threshold != TVLAThreshold {
		t.Error("threshold not propagated")
	}
	if _, err := RunTVLA(dev, 12289, 5, 3, false, 32); err == nil {
		t.Error("too few traces should fail")
	}
}

// The branch-free (SEAL v3.6-style) kernel removes the control-flow
// leakage but its stores still process secret-dependent data, so a
// fixed-vs-random TVLA still fails — exactly the paper's §V caveat that
// "SEAL v3.6 and later versions may have a different vulnerability".
func TestTVLABranchlessStillLeaksData(t *testing.T) {
	dev := NewDevice(33)
	vuln, err := RunTVLA(dev, 12289, -5, 60, false, 34)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := RunTVLA(dev, 12289, -5, 60, true, 34)
	if err != nil {
		t.Fatal(err)
	}
	if !vuln.Leaky {
		t.Errorf("vulnerable kernel must fail TVLA: %.2f", vuln.MaxT)
	}
	if !patched.Leaky {
		t.Errorf("patched kernel still processes secret data and must fail TVLA too: %.2f", patched.MaxT)
	}
}

func TestClassifierSerializationRoundTrip(t *testing.T) {
	dev := NewDevice(41)
	opts := DefaultProfileOptions()
	opts.Q = 12289
	opts.TracesPerValue = 20
	cls, err := Profile(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteClassifier(&buf, cls); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Length != cls.Length || got.MaxAbsValue != cls.MaxAbsValue {
		t.Error("classifier metadata mismatch")
	}
	// Both classifiers must agree on fresh segments.
	const n = 16
	src, _ := FirmwareSource(n, 12289)
	fw, _ := AssembleFirmware(src)
	cn := sampler.DefaultClippedNormal()
	values, metas := cn.SamplePoly(sampler.NewXoshiro256(42), n)
	_, segs, err := dev.SegmentCapture(fw, values, metas)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(segs)-1; i++ {
		a, err := cls.ClassifySegment(segs[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.ClassifySegment(segs[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != b.Value || a.Sign != b.Sign {
			t.Fatalf("segment %d: classifications diverge after round trip", i)
		}
	}
	// Errors.
	if err := WriteClassifier(&buf, nil); err == nil {
		t.Error("nil classifier should fail")
	}
	if _, err := ReadClassifier(strings.NewReader("BAD!")); err == nil {
		t.Error("bad magic should fail")
	}
}

// The decryption-side extension (§II-B): the secret key repeats across
// decryptions, so multi-trace CPA recovers it — and a single trace does
// not suffice, which is exactly why the encryption attack had to be
// single-trace.
func TestDecryptionMultiTraceCPA(t *testing.T) {
	const (
		q = 12289
		n = 24
	)
	dev := NewDevice(51)
	sk := sampler.TernaryPoly(sampler.NewXoshiro256(52), n)

	res, err := RunDecryptionAttack(dev, sk, q, 150, 53)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := KeyRecoveryRate(res.Recovered, sk)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.95 {
		t.Errorf("multi-trace key recovery rate %.3f, want ≥ 0.95", rate)
	}

	// A single trace must NOT recover the key (CPA needs variance).
	if _, err := RunDecryptionAttack(dev, sk, q, 1, 54); err == nil {
		t.Error("single-trace CPA should be rejected")
	}
	few, err := RunDecryptionAttack(dev, sk, q, 8, 55)
	if err != nil {
		t.Fatal(err)
	}
	fewRate, err := KeyRecoveryRate(few.Recovered, sk)
	if err != nil {
		t.Fatal(err)
	}
	if fewRate >= rate {
		t.Errorf("8-trace recovery %.3f should be worse than 150-trace %.3f", fewRate, rate)
	}
}

func TestDecryptionAttackValidation(t *testing.T) {
	dev := NewDevice(56)
	if _, err := RunDecryptionAttack(dev, nil, 12289, 10, 1); err == nil {
		t.Error("empty key should fail")
	}
	if _, err := RunDecryptionAttack(dev, []int64{5}, 12289, 10, 1); err == nil {
		t.Error("non-ternary key should fail")
	}
	if _, err := DecryptionFirmware(0); err == nil {
		t.Error("n=0 firmware should fail")
	}
	if _, err := KeyRecoveryRate([]int{1}, []int64{1, 0}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// Trigger jitter must not hurt the attack: peak-based segmentation
// (§III-C) absorbs it, unlike fixed-offset windowing.
func TestAttackRobustToTriggerJitter(t *testing.T) {
	dev := NewDevice(71)
	cls := smallProfile(t, dev)
	params := smallParams(t)
	prng := sampler.NewXoshiro256(700)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)

	// Baseline without jitter.
	cap1, err := CaptureEncryption(dev, params, enc, params.NewPlaintext())
	if err != nil {
		t.Fatal(err)
	}
	out1, err := cls.Attack(cap1, params.N)
	if err != nil {
		t.Fatal(err)
	}
	acc1, sign1, err := out1.E2.Accuracy(cap1.Truth.E2)
	if err != nil {
		t.Fatal(err)
	}

	// Heavy jitter.
	dev.TriggerJitter = 40
	cap2, err := CaptureEncryption(dev, params, enc, params.NewPlaintext())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := cls.Attack(cap2, params.N)
	if err != nil {
		t.Fatal(err)
	}
	acc2, sign2, err := out2.E2.Accuracy(cap2.Truth.E2)
	if err != nil {
		t.Fatal(err)
	}
	if sign1 != 1.0 || sign2 != 1.0 {
		t.Errorf("sign accuracy degraded under jitter: %.3f -> %.3f", sign1, sign2)
	}
	if acc2 < acc1-0.2 {
		t.Errorf("value accuracy collapsed under jitter: %.3f -> %.3f", acc1, acc2)
	}
	dev.TriggerJitter = 0
}

// Masking study (§V-A): the paper advises against masking because the
// sign-dependent branches cannot be masked. Against the 2-share masked
// kernel, sign recovery must stay (near) perfect while value recovery
// collapses toward the branch-only information level.
func TestMaskingLeavesBranchLeakage(t *testing.T) {
	dev := NewDevice(81)
	ev, err := EvaluateMasking(dev, 12289, 40, 128, 82)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SignAccuracy < 0.98 {
		t.Errorf("sign accuracy %.3f against masked kernel — branches should still leak", ev.SignAccuracy)
	}
	// Value recovery drops well below the unmasked kernel's (~65%): the
	// share stores are randomized. It does NOT drop to the zero-floor,
	// because the raw noise value still transits a register before being
	// split — the sign-dependent branch forces unmasked handling, which is
	// precisely why the paper rejects masking as a defense here.
	if ev.ValueAccuracy > 0.55 {
		t.Errorf("value accuracy %.3f against masked kernel — masking ineffective?", ev.ValueAccuracy)
	}
	if ev.ValueAccuracy < 0.10 {
		t.Errorf("value accuracy %.3f below the branch-information floor — suspicious", ev.ValueAccuracy)
	}
}

func TestFirmwareMaskedSemantics(t *testing.T) {
	// The two shares must recombine to the unmasked assignment.
	const q = 12289
	values := []int64{0, 5, -5, 41, -41, 1, -1}
	dev := NewDevice(83)
	src, err := FirmwareMasked(len(values), q)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := dev.runMaskedForTest(fw, values, q, 84)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		r, err := cpu.ReadWord(PolyBase + uint32(8*i))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := cpu.ReadWord(PolyBase + uint32(8*i+4))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sampler.AssignSigned(v, []uint64{q})
		got := (uint64(r) + uint64(s2)) % q
		if got != want[0] {
			t.Errorf("coeff %d (value %d): shares %d+%d = %d mod q, want %d",
				i, v, r, s2, got, want[0])
		}
	}
	if _, err := FirmwareMasked(0, q); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := FirmwareMasked(4, 1<<32); err == nil {
		t.Error("oversized q should fail")
	}
}

// Timing dimension of V1: the vulnerable kernel's iteration length depends
// on the branch taken (zero/positive/negative execute different
// instruction counts), while the branch-free kernel is constant-time.
// Trace length equals cycle count (one sample per cycle).
func TestBranchlessKernelIsConstantTime(t *testing.T) {
	dev := NewDevice(85)
	dev.Model.NoiseSigma = 0
	cycleCount := func(branchless bool, v int64) int {
		var src string
		var err error
		if branchless {
			src, err = FirmwareBranchless(1, 12289)
		} else {
			src, err = FirmwareSource(1, 12289)
		}
		if err != nil {
			t.Fatal(err)
		}
		fw, err := AssembleFirmware(src)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := dev.Capture(fw, []int64{v}, make([]sampler.SampleMeta, 1))
		if err != nil {
			t.Fatal(err)
		}
		return len(tr)
	}
	// Vulnerable kernel: three distinct durations.
	zero := cycleCount(false, 0)
	pos := cycleCount(false, 5)
	neg := cycleCount(false, -5)
	if zero == pos && pos == neg {
		t.Error("vulnerable kernel should be time-variant across branches")
	}
	if neg <= pos {
		t.Errorf("negative branch (%d cycles) should be longest (extra neg/sub), positive %d", neg, pos)
	}
	// Branch-free kernel: identical duration for every value.
	base := cycleCount(true, 0)
	for _, v := range []int64{1, -1, 41, -41, 7} {
		if got := cycleCount(true, v); got != base {
			t.Errorf("branch-free kernel time-variant: value %d took %d cycles, want %d", v, got, base)
		}
	}
}

// The attacker's self-check: with m and u recovered from e2, the implied
// e1 must agree with the e1-trace classification.
func TestCrossValidateE1(t *testing.T) {
	dev := NewLowNoiseDevice(95)
	opts := HighAccuracyProfileOptions()
	opts.Q = 12289
	opts.TracesPerValue = 60
	cls, err := Profile(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	params := smallParams(t)
	prng := sampler.NewXoshiro256(96)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, prng)
	pt := params.NewPlaintext()
	pt.Coeffs[2] = 9
	cap, err := CaptureEncryption(dev, params, enc, pt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cls.Attack(cap, params.N)
	if err != nil {
		t.Fatal(err)
	}
	m, repairedE2, _, err := RepairAndRecover(params, pk, cap.Ciphertext, out.E2, 16, 50000)
	if err != nil {
		t.Fatal(err)
	}
	u, ternary, err := RecoverU(params, pk, cap.Ciphertext, repairedE2)
	if err != nil {
		t.Fatal(err)
	}
	if !ternary {
		t.Fatal("repaired e2 must verify")
	}
	agreement, err := CrossValidateE1(params, pk, cap.Ciphertext, u, m, out.E1)
	if err != nil {
		t.Fatal(err)
	}
	// At low noise the e1 classification is nearly perfect, so the implied
	// e1 must agree almost everywhere.
	if agreement < 0.9 {
		t.Errorf("e1 cross-validation agreement %.3f too low", agreement)
	}
	// Length mismatch must fail.
	short := &AttackResult{Values: []int{1}}
	if _, err := CrossValidateE1(params, pk, cap.Ciphertext, u, m, short); err == nil {
		t.Error("length mismatch should fail")
	}
}

// Masking order: on the share-store region the masked kernel must be
// (near) clean at first order and leak at second order — the canonical
// higher-order evaluation.
func TestSecondOrderLeakageOfMaskedKernel(t *testing.T) {
	// High-SNR acquisition: the second-order signal scales with the square
	// of the data-leakage coefficient, so the evaluation uses a boosted
	// probe (standard practice when certifying masking order). Small q
	// keeps the shares short; the fixed value 14 sits at the extreme of
	// the E[HW(r)·HW(v−r)] curve, maximizing the fixed-vs-random contrast.
	dev := NewDevice(97)
	dev.Model.AlphaHWData *= 3
	dev.Model.DeltaHDBus *= 3
	dev.Model.NoiseSigma = 0.005
	dev.Model.PortSpike = 25
	study, err := RunSecondOrderStudy(dev, 257, 14, 1500, 98)
	if err != nil {
		t.Fatal(err)
	}
	// First order: the shares are uniform — no leakage on the store region.
	if study.FirstOrderMaxT > TVLAThreshold {
		t.Errorf("first-order t %.2f flags the masked share region — masking broken?", study.FirstOrderMaxT)
	}
	// Second order: centered products recombine the shares.
	if study.SecondOrderMaxT < TVLAThreshold {
		t.Errorf("second-order analysis should flag the masked kernel: max t %.2f", study.SecondOrderMaxT)
	}
	if study.SecondOrderMaxT < study.FirstOrderMaxT {
		t.Errorf("second-order t (%.2f) should exceed first-order t (%.2f)",
			study.SecondOrderMaxT, study.FirstOrderMaxT)
	}
	// Validation.
	if _, err := RunSecondOrderStudy(dev, 257, -5, 100, 98); err == nil {
		t.Error("negative fixed value should fail (branch would vary)")
	}
	if _, err := RunSecondOrderStudy(dev, 257, 5, 3, 98); err == nil {
		t.Error("too few traces should fail")
	}
}

// The stochastic (linear-regression) profiling model works on real device
// traces: with a tiny profiling budget it matches or beats per-value
// templates on positive coefficients (it shares strength across classes
// through the bit basis — the ML-profiling direction of the paper's §V-B).
func TestStochasticProfilingOnDeviceTraces(t *testing.T) {
	const q = 12289
	dev := NewDevice(121)
	src, err := FirmwareSource(18, q)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := AssembleFirmware(src)
	if err != nil {
		t.Fatal(err)
	}
	cn := sampler.DefaultClippedNormal()
	prng := sampler.NewXoshiro256(122)

	// Collect labeled positive sub-traces: labels 1..14, interleaved.
	collect := func(perLabel int) *trace.Set {
		set := &trace.Set{}
		counts := map[int]int{}
		length := 0
		var raw []trace.Segment
		var labels []int
		for {
			values := make([]int64, 18)
			for i := range values {
				values[i] = int64(1 + sampler.Uint64Below(prng, 14))
			}
			metas := SyntheticMetas(prng, cn, 18)
			_, segs, err := dev.SegmentCapture(fw, values, metas)
			if err != nil {
				t.Fatal(err)
			}
			done := true
			for i := 1; i < len(segs)-1; i++ {
				v := int(values[i])
				if counts[v] < perLabel {
					raw = append(raw, segs[i])
					labels = append(labels, v)
					counts[v]++
				}
			}
			for v := 1; v <= 14; v++ {
				if counts[v] < perLabel {
					done = false
				}
			}
			if done {
				break
			}
		}
		length = len(raw[0].Samples)
		for _, s := range raw {
			if len(s.Samples) < length {
				length = len(s.Samples)
			}
		}
		for i, s := range raw {
			set.Append(tailAlign(s.Samples, length), labels[i])
		}
		return set
	}

	train := collect(8) // tiny budget: 8 traces per value
	basis := sca.BitBasis(4, func(l int) uint32 { return uint32(l) })
	sm, err := sca.FitStochastic(train, basis, 12)
	if err != nil {
		t.Fatal(err)
	}
	opts := sca.DefaultTemplateOptions()
	opts.POICount = 12
	opts.MinSpacing = 1
	tm, err := sca.BuildTemplates(train, opts)
	if err != nil {
		t.Fatal(err)
	}

	test := collect(6)
	smOK, tmOK := 0, 0
	for i, tr := range test.Traces {
		if p, err := sm.Classify(tr); err == nil && p == test.Labels[i] {
			smOK++
		}
		if p, err := tm.Classify(tr); err == nil && p == test.Labels[i] {
			tmOK++
		}
	}
	n := test.Len()
	t.Logf("stochastic %d/%d vs templates %d/%d at 8 traces/value", smOK, n, tmOK, n)
	// The stochastic model must be competitive (within 10%) and well above
	// the 1/14 chance floor.
	if float64(smOK) < float64(tmOK)-0.1*float64(n) {
		t.Errorf("stochastic %d/%d trails templates %d/%d badly", smOK, n, tmOK, n)
	}
	if smOK < n/4 {
		t.Errorf("stochastic accuracy %d/%d too close to chance", smOK, n)
	}
}
