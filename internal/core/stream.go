package core

import (
	"context"
	"fmt"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/dbdd"
	"reveal/internal/obs"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// Streaming-engine metric names, registered on the global obs registry by
// every StreamAttack and exported over /metrics by the service.
const (
	// MetricStreamIngestBytes counts RVTS wire bytes consumed by streaming
	// attacks (incremented by the drivers, which see the wire).
	MetricStreamIngestBytes = "reveal_stream_ingest_bytes_total"
	// MetricStreamTTFHSeconds is the time-to-first-hint histogram: stream
	// start to the first banked coefficient classification.
	MetricStreamTTFHSeconds = "reveal_stream_time_to_first_hint_seconds"
	// MetricStreamTTVSeconds is the time-to-verdict histogram: stream
	// start to early exit or final classification.
	MetricStreamTTVSeconds = "reveal_stream_time_to_verdict_seconds"
	// MetricStreamEarlyExit counts streaming attacks that stopped before
	// consuming the full trace because the banked hints reached the
	// target bikz.
	MetricStreamEarlyExit = "reveal_stream_early_exit_total"
)

// DefaultStreamCheckEvery is how many classified coefficients pass between
// bikz re-estimates when a target bikz is set. The stride is counted in
// coefficients — never wall clock or chunk sizes — so the early-exit point
// of a given trace prefix is identical regardless of how the stream was
// chunked.
const DefaultStreamCheckEvery = 16

// StreamAttackOptions configures one streaming single-trace attack.
type StreamAttackOptions struct {
	// Coefficients is the number of real coefficients n in the trace; the
	// trace must contain n+1 sampling peaks (the capture appends one
	// sentinel iteration, whose segment is discarded unclassified).
	Coefficients int
	// MinDistance is the peak spacing passed to the segmenter (0 means 8,
	// the batch path's value).
	MinDistance int
	// Threshold and CalibrationSamples configure the segmenter threshold
	// exactly as in trace.StreamSegmenterConfig.
	Threshold          float64
	CalibrationSamples int
	// TargetBikz, when positive, enables early exit: after every
	// CheckEvery classified coefficients the banked hints are integrated
	// into a DBDD instance and the attack stops once the estimate is at or
	// below the target. Requires Params.
	TargetBikz float64
	// CheckEvery is the bikz re-estimate stride in classified coefficients
	// (0 means DefaultStreamCheckEvery).
	CheckEvery int
	// Params identifies the attacked LWE instance for the bikz estimate
	// (required when TargetBikz > 0; Coefficients must not exceed
	// Params.N).
	Params *bfv.Parameters
}

// StreamVerdict summarizes how a streaming attack ended.
type StreamVerdict struct {
	// Classified is how many coefficients were classified (== Coefficients
	// unless the attack early-exited).
	Classified int
	// EarlyExit reports whether the target bikz was reached before the
	// full trace was consumed.
	EarlyExit bool
	// BaselineBikz and HintedBikz are the DBDD estimates without hints and
	// at the verdict (both 0 when no target bikz was set).
	BaselineBikz float64
	HintedBikz   float64
	// TimeToFirstHint and TimeToVerdict are wall-clock latencies from
	// stream start to the first classification and to the verdict.
	TimeToFirstHint time.Duration
	TimeToVerdict   time.Duration
	// SamplesIngested counts trace samples committed to the segmenter.
	SamplesIngested int
	// MarginSum/MarginCount aggregate the banked posterior margins
	// (top1 − top2) over every classified coefficient.
	MarginSum   float64
	MarginCount int
}

// StreamAttack classifies one error polynomial's trace as its samples
// arrive: each segment is classified by the pooled segScorer the moment
// its closing peak is confirmed, posterior margins are banked, and — when
// a target bikz is set — the attack integrates each coefficient's hint
// incrementally and stops as soon as the estimate reaches the target.
//
// Determinism contract: over a complete trace with early exit disabled the
// result is byte-identical (Float64bits level) to the batch
// Segment+AttackSegments path at the same threshold, independent of chunk
// sizes; with early exit enabled, the exit point depends only on the
// classified-coefficient count, so equal trace prefixes produce equal
// banked results under any chunking.
type StreamAttack struct {
	cls  *CoefficientClassifier
	opts StreamAttackOptions
	seg  *trace.StreamSegmenter
	ss   *segScorer
	res  *AttackResult

	inst         *dbdd.Instance
	baselineBikz float64
	hintedBikz   float64
	sinceCheck   int

	started   time.Time
	firstHint time.Duration
	verdictAt time.Duration
	verdict   *StreamVerdict

	samples int
	exited  bool
	sp      *obs.Span
}

// NewStreamAttack validates the options and prepares the incremental
// pipeline. Close must be called (directly or via Finish) to return the
// pooled scorer.
func NewStreamAttack(cls *CoefficientClassifier, opts StreamAttackOptions) (*StreamAttack, error) {
	return NewStreamAttackCtx(context.Background(), cls, opts)
}

// NewStreamAttackCtx is NewStreamAttack carrying the caller's trace
// identity for the stream_attack span.
func NewStreamAttackCtx(ctx context.Context, cls *CoefficientClassifier, opts StreamAttackOptions) (*StreamAttack, error) {
	if opts.Coefficients < 1 {
		return nil, fmt.Errorf("core: streaming attack needs at least 1 coefficient, got %d", opts.Coefficients)
	}
	if opts.MinDistance == 0 {
		opts.MinDistance = 8
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = DefaultStreamCheckEvery
	}
	sa := &StreamAttack{cls: cls, opts: opts, started: time.Now()}
	if opts.TargetBikz > 0 {
		if opts.Params == nil {
			return nil, fmt.Errorf("core: target bikz %.1f needs the attacked parameters", opts.TargetBikz)
		}
		if opts.Coefficients > opts.Params.N {
			return nil, fmt.Errorf("core: %d coefficients exceed the parameter degree %d",
				opts.Coefficients, opts.Params.N)
		}
		inst, err := LWEInstanceForParams(opts.Params)
		if err != nil {
			return nil, err
		}
		baseline, err := inst.EstimateBikz()
		if err != nil {
			return nil, err
		}
		if opts.TargetBikz >= baseline {
			return nil, fmt.Errorf("core: target bikz %.1f is not below the baseline %.1f",
				opts.TargetBikz, baseline)
		}
		sa.inst, sa.baselineBikz = inst, baseline
	}
	seg, err := trace.NewStreamSegmenter(trace.StreamSegmenterConfig{
		// One sentinel iteration rides at the end of every capture.
		Want:               opts.Coefficients + 1,
		MinDistance:        opts.MinDistance,
		Threshold:          opts.Threshold,
		CalibrationSamples: opts.CalibrationSamples,
	})
	if err != nil {
		return nil, err
	}
	sa.seg = seg
	sa.ss = cls.scorer()
	sa.res = &AttackResult{
		Values: make([]int, 0, opts.Coefficients),
		Signs:  make([]int, 0, opts.Coefficients),
		Probs:  make([]map[int]float64, 0, opts.Coefficients),
	}
	sa.sp = obs.StartSpanCtx(ctx, "stream_attack")
	return sa, nil
}

// EarlyExited reports whether the target bikz has been reached; once true,
// further Feed/Commit calls are no-ops and the caller should stop
// ingesting and call Finish.
func (sa *StreamAttack) EarlyExited() bool { return sa.exited }

// Classified returns how many coefficients have been classified so far.
func (sa *StreamAttack) Classified() int { return len(sa.res.Values) }

// Window returns a writable ingest buffer of n samples for zero-copy
// decode (see trace.StreamSegmenter.Window); pair with Commit.
func (sa *StreamAttack) Window(n int) trace.Trace { return sa.seg.Window(n) }

// Commit ingests the first n samples of the last Window, classifying every
// segment the new samples closed.
func (sa *StreamAttack) Commit(n int) error {
	if sa.exited || sa.verdict != nil {
		return nil
	}
	sa.samples += n
	segs, err := sa.seg.Commit(n)
	if err != nil {
		return err
	}
	return sa.onSegments(segs)
}

// Feed is the copying convenience form of Window+Commit.
func (sa *StreamAttack) Feed(chunk trace.Trace) error {
	if sa.exited || sa.verdict != nil {
		return nil
	}
	copy(sa.seg.Window(len(chunk)), chunk)
	return sa.Commit(len(chunk))
}

// onSegments classifies newly closed segments in order, banking margins
// and (with a target set) hints. The early-exit check runs after each
// classification on a classified-count stride, and stops mid-batch: the
// verdict for a given trace prefix never depends on chunk boundaries.
func (sa *StreamAttack) onSegments(segs []trace.Segment) error {
	for _, s := range segs {
		if len(sa.res.Values) >= sa.opts.Coefficients {
			return nil // the sentinel segment is discarded unclassified
		}
		i := len(sa.res.Values)
		cl, err := sa.ss.classify(s.Samples)
		if err != nil {
			return fmt.Errorf("core: coefficient %d: %w", i, err)
		}
		sa.res.Values = append(sa.res.Values, cl.Value)
		sa.res.Signs = append(sa.res.Signs, cl.Sign)
		sa.res.Probs = append(sa.res.Probs, cl.Probs)
		if sa.firstHint == 0 {
			sa.firstHint = time.Since(sa.started)
		}
		if sa.inst != nil {
			h := dbdd.HintFromProbabilities(cl.Probs)
			if err := sa.inst.IntegrateCoefficientHint(errorCoord(sa.opts.Params, i), h); err != nil {
				return fmt.Errorf("core: integrating hint %d: %w", i, err)
			}
			sa.sinceCheck++
			if sa.sinceCheck >= sa.opts.CheckEvery {
				sa.sinceCheck = 0
				bikz, err := sa.inst.EstimateBikz()
				if err != nil {
					return fmt.Errorf("core: estimating bikz at coefficient %d: %w", i, err)
				}
				sa.hintedBikz = bikz
				if bikz <= sa.opts.TargetBikz {
					sa.exited = true
					return nil
				}
			}
		}
	}
	return nil
}

// Finish ends the stream: unless the attack early-exited, the segmenter is
// flushed (failing if the trace did not contain exactly n+1 peaks) and the
// remaining segments are classified. It returns the banked result — the
// full n coefficients, or the classified prefix on early exit — and the
// verdict, observes the stream metrics, and releases the pooled scorer.
func (sa *StreamAttack) Finish() (*AttackResult, *StreamVerdict, error) {
	if sa.verdict != nil {
		return sa.res, sa.verdict, nil
	}
	if !sa.exited {
		segs, err := sa.seg.Flush()
		if err != nil {
			sa.Close()
			return nil, nil, err
		}
		if err := sa.onSegments(segs); err != nil {
			sa.Close()
			return nil, nil, err
		}
		if !sa.exited && len(sa.res.Values) != sa.opts.Coefficients {
			sa.Close()
			return nil, nil, fmt.Errorf("core: stream closed after %d of %d coefficients",
				len(sa.res.Values), sa.opts.Coefficients)
		}
	}
	sa.verdictAt = time.Since(sa.started)
	sa.verdict = &StreamVerdict{
		Classified:      len(sa.res.Values),
		EarlyExit:       sa.exited,
		BaselineBikz:    sa.baselineBikz,
		HintedBikz:      sa.hintedBikz,
		TimeToFirstHint: sa.firstHint,
		TimeToVerdict:   sa.verdictAt,
		SamplesIngested: sa.samples,
	}
	for _, probs := range sa.res.Probs {
		if m, ok := sca.TopMargin(probs); ok {
			sa.verdict.MarginSum += m
			sa.verdict.MarginCount++
		}
	}
	reg := obs.Global().Registry()
	reg.Histogram(MetricStreamTTFHSeconds).Observe(sa.firstHint.Seconds())
	reg.Histogram(MetricStreamTTVSeconds).Observe(sa.verdictAt.Seconds())
	if sa.exited {
		reg.Counter(MetricStreamEarlyExit).Inc()
	}
	sa.Close()
	return sa.res, sa.verdict, nil
}

// Close releases the pooled scorer and ends the span; it is idempotent and
// implied by Finish, but must be called explicitly on abandoned streams.
func (sa *StreamAttack) Close() {
	if sa.ss != nil {
		sa.sp.AddItems(len(sa.res.Values))
		sa.sp.End()
		sa.cls.release(sa.ss)
		sa.ss = nil
	}
}
