package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"reveal/internal/obs"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// SNRReportThreshold is the signal-to-noise level a sample must clear to be
// counted as a useful point of interest in diagnostic reports (signal at
// least as strong as the noise floor).
const SNRReportThreshold = 1.0

// DiagnosticsOptions configures a leakage-assessment run.
type DiagnosticsOptions struct {
	// Profile configures the profiling campaign the assessment runs on.
	Profile ProfileOptions
	// KeepCurves embeds the full per-sample SNR and t-test curves in the
	// report (large; off by default).
	KeepCurves bool
}

// SetDiagnostics is the leakage assessment of one labeled profiling set
// (sign, positive values, negative values).
type SetDiagnostics struct {
	Name    string `json:"name"`
	Traces  int    `json:"traces"`
	Classes int    `json:"classes"`
	// SNR summarizes the per-sample signal-to-noise curve against
	// SNRReportThreshold.
	SNR sca.CurveSummary `json:"snr"`
	// TTests holds the Welch t-test summary for every adjacent label pair —
	// the hardest distinctions the templates must make.
	TTests []sca.PairTTest `json:"t_tests"`
	// POIOverlap compares the paper's SOSD POI choice with the SNR ranking.
	POIOverlap *sca.POIOverlap `json:"poi_overlap"`
	// Health is the conditioning report of the trained templates.
	Health *sca.TemplateHealth `json:"template_health"`
}

// DiagnosticsReport is the full leakage assessment written by
// `revealctl diagnose`: per-set SNR/t-test/POI/health diagnostics plus the
// aggregated warnings.
type DiagnosticsReport struct {
	SegmentLength int              `json:"segment_length"`
	Sets          []SetDiagnostics `json:"sets"`
	// LeakyPairs / TotalPairs count adjacent label pairs whose peak |t|
	// clears the TVLA threshold.
	LeakyPairs int `json:"leaky_pairs"`
	TotalPairs int `json:"total_pairs"`
	// Warnings aggregates template-health and distinguishability warnings
	// across sets, each prefixed with the set name.
	Warnings []string `json:"warnings,omitempty"`
	Healthy  bool     `json:"healthy"`
}

// Diagnose collects a profiling campaign on the device and assesses its
// leakage: SNR curves, adjacent-pair Welch t-tests against the TVLA
// threshold, SOSD-vs-SNR POI overlap, and template-health checks for each
// of the three template sets. Warnings are also emitted as instant events
// into the trace stream.
func Diagnose(dev *Device, opts DiagnosticsOptions) (*DiagnosticsReport, error) {
	return DiagnoseCtx(context.Background(), dev, opts)
}

// DiagnoseCtx is Diagnose with cancellation, checked at every stage
// boundary (collection runs, training, and between set assessments).
func DiagnoseCtx(ctx context.Context, dev *Device, opts DiagnosticsOptions) (*DiagnosticsReport, error) {
	sp := obs.StartSpanCtx(ctx, "diagnose")
	defer sp.End()
	sets, err := CollectProfilingSetsCtx(ctx, dev, opts.Profile, sp)
	if err != nil {
		return nil, err
	}
	cls, err := TrainClassifierCtx(ctx, sets, opts.Profile, sp)
	if err != nil {
		return nil, err
	}

	asp := sp.Child("assess")
	defer asp.End()
	report := &DiagnosticsReport{SegmentLength: sets.Length}
	for _, target := range []struct {
		name string
		set  *trace.Set
		tmpl *sca.Templates
	}{
		{"sign", sets.Sign, cls.Sign},
		{"pos", sets.Pos, cls.Pos},
		{"neg", sets.Neg, cls.Neg},
	} {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: assessment canceled: %w", err)
		}
		sd, err := assessSet(target.name, target.set, target.tmpl, opts)
		if err != nil {
			return nil, fmt.Errorf("core: assessing %s set: %w", target.name, err)
		}
		report.Sets = append(report.Sets, *sd)
		for _, p := range sd.TTests {
			report.TotalPairs++
			if p.Leaky {
				report.LeakyPairs++
			} else {
				report.Warnings = append(report.Warnings, fmt.Sprintf(
					"%s: labels %d vs %d not distinguishable (max |t| %.2f below %.1f)",
					sd.Name, p.LabelA, p.LabelB, p.Summary.Max, sca.TVLATTestThreshold))
			}
		}
		for _, w := range sd.Health.Warnings {
			report.Warnings = append(report.Warnings, sd.Name+": "+w)
		}
	}
	report.Healthy = len(report.Warnings) == 0
	asp.AddItems(report.TotalPairs)
	for _, w := range report.Warnings {
		obs.Global().Instant("diagnostic_warning", map[string]any{"warning": w})
	}
	obs.Log().Info("leakage assessment finished",
		"sets", len(report.Sets), "leaky_pairs", report.LeakyPairs,
		"total_pairs", report.TotalPairs, "warnings", len(report.Warnings))
	return report, nil
}

// assessSet runs the per-set diagnostics.
func assessSet(name string, set *trace.Set, tmpl *sca.Templates, opts DiagnosticsOptions) (*SetDiagnostics, error) {
	snr, err := sca.SNR(set)
	if err != nil {
		return nil, err
	}
	sd := &SetDiagnostics{
		Name:   name,
		Traces: set.Len(),
		SNR:    sca.SummarizeCurve(snr, SNRReportThreshold, opts.KeepCurves),
	}
	labels := setLabels(set)
	sd.Classes = len(labels)
	for i := 0; i+1 < len(labels); i++ {
		p, err := sca.TTestPair(set, labels[i], labels[i+1], opts.KeepCurves)
		if err != nil {
			return nil, err
		}
		sd.TTests = append(sd.TTests, p)
	}
	t := opts.Profile.Templates
	if sd.POIOverlap, err = sca.ComparePOISelectors(set, t.POICount, t.MinSpacing); err != nil {
		return nil, err
	}
	if sd.Health, err = tmpl.Health(); err != nil {
		return nil, err
	}
	return sd, nil
}

// setLabels returns the distinct labels of a set in ascending order.
func setLabels(set *trace.Set) []int {
	seen := map[int]bool{}
	for _, l := range set.Labels {
		seen[l] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// FormatDiagnostics renders the report for the terminal.
func FormatDiagnostics(r *DiagnosticsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "leakage assessment (segment length %d samples)\n", r.SegmentLength)
	for _, s := range r.Sets {
		fmt.Fprintf(&b, "\n[%s] %d traces, %d classes\n", s.Name, s.Traces, s.Classes)
		fmt.Fprintf(&b, "  SNR: max %.3g at sample %d, mean %.3g, %d samples above %.1f\n",
			s.SNR.Max, s.SNR.ArgMax, s.SNR.Mean, s.SNR.AboveThreshold, s.SNR.Threshold)
		leaky := 0
		worst := sca.PairTTest{Summary: sca.CurveSummary{Max: -1}}
		for _, p := range s.TTests {
			if p.Leaky {
				leaky++
			}
			if worst.Summary.Max < 0 || p.Summary.Max < worst.Summary.Max {
				worst = p
			}
		}
		if len(s.TTests) > 0 {
			fmt.Fprintf(&b, "  t-test: %d/%d adjacent pairs leaky; weakest pair (%d, %d) max |t| %.2f\n",
				leaky, len(s.TTests), worst.LabelA, worst.LabelB, worst.Summary.Max)
		}
		if s.POIOverlap != nil {
			fmt.Fprintf(&b, "  POIs: SOSD vs SNR share %d/%d (Jaccard %.2f)\n",
				s.POIOverlap.Shared, s.POIOverlap.K, s.POIOverlap.Jaccard)
		}
		if s.Health != nil {
			fmt.Fprintf(&b, "  templates: %d classes x %d POIs, min class count %d, cond %.3g, min eig %.3g\n",
				s.Health.Classes, s.Health.POICount, s.Health.MinClassCount,
				s.Health.ConditionNumber, s.Health.MinEigenvalue)
		}
	}
	fmt.Fprintf(&b, "\npairs leaky: %d/%d\n", r.LeakyPairs, r.TotalPairs)
	if r.Healthy {
		b.WriteString("no warnings: profiling set supports the attack\n")
	} else {
		fmt.Fprintf(&b, "%d warnings:\n", len(r.Warnings))
		for _, w := range r.Warnings {
			fmt.Fprintf(&b, "  - %s\n", w)
		}
	}
	return b.String()
}
