package core

// Streaming attack engine: byte-equality with the batch path over complete
// traces (the determinism contract), early exit on a target bikz before
// the trace is fully consumed, and chunk-size independence of the banked
// prefix (same prefix ⇒ same hints, whatever the chunking).

import (
	"math"
	"sync"
	"testing"

	"reveal/internal/bfv"
	"reveal/internal/sampler"
	"reveal/internal/trace"
)

var streamFixtureOnce sync.Once
var streamFixture struct {
	params *bfv.Parameters
	cls    *CoefficientClassifier
	cap    *EncryptionCapture
	err    error
}

// streamTestFixture profiles a small deterministic device once and
// captures one encryption for every streaming test to attack. n = 128
// rather than the selftest's 64 so the baseline bikz (≈37) sits well
// above the estimator's floor and hints produce a measurable drop the
// early-exit tests can aim between.
func streamTestFixture(t *testing.T) (*bfv.Parameters, *CoefficientClassifier, *EncryptionCapture) {
	t.Helper()
	streamFixtureOnce.Do(func() {
		params, err := bfv.NewParameters(128, []uint64{12289}, 16,
			sampler.DefaultSigma, sampler.DefaultMaxDeviation)
		if err != nil {
			streamFixture.err = err
			return
		}
		dev := NewDevice(7)
		opts := DefaultProfileOptions()
		opts.Q = params.Moduli[0]
		opts.TracesPerValue = 60
		opts.Templates.POICount = 24
		opts.Templates.MinSpacing = 1
		cls, err := Profile(dev, opts)
		if err != nil {
			streamFixture.err = err
			return
		}
		prng := sampler.NewXoshiro256(7 ^ 0x9E3779B97F4A7C15)
		kg := bfv.NewKeyGenerator(params, prng)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		enc := bfv.NewEncryptor(params, pk, prng)
		pt := params.NewPlaintext()
		for i := range pt.Coeffs {
			pt.Coeffs[i] = sampler.Uint64Below(prng, params.T)
		}
		cap, err := CaptureEncryption(dev, params, enc, pt)
		if err != nil {
			streamFixture.err = err
			return
		}
		streamFixture.params, streamFixture.cls, streamFixture.cap = params, cls, cap
	})
	if streamFixture.err != nil {
		t.Fatalf("stream fixture: %v", streamFixture.err)
	}
	return streamFixture.params, streamFixture.cls, streamFixture.cap
}

// batchE2 runs the batch path on the capture's e2 trace: segment n+1 peaks
// (sentinel included), classify the first n — exactly what AttackCtx does
// per polynomial.
func batchE2(t *testing.T, params *bfv.Parameters, cls *CoefficientClassifier, cap *EncryptionCapture) *AttackResult {
	t.Helper()
	sg := trace.NewSegmenter(params.N + 1)
	segs, err := sg.Segment(cap.TraceE2, params.N+1, 8)
	if err != nil {
		t.Fatalf("batch segmentation: %v", err)
	}
	res, err := cls.AttackSegments(segs[:params.N])
	if err != nil {
		t.Fatalf("batch attack: %v", err)
	}
	return res
}

// streamE2 runs the streaming path over the e2 trace in fixed-size chunks,
// stopping the feed as soon as the attack early-exits.
func streamE2(t *testing.T, cls *CoefficientClassifier, opts StreamAttackOptions, tr trace.Trace, chunk int) (*AttackResult, *StreamVerdict) {
	t.Helper()
	sa, err := NewStreamAttack(cls, opts)
	if err != nil {
		t.Fatalf("NewStreamAttack: %v", err)
	}
	for off := 0; off < len(tr) && !sa.EarlyExited(); off += chunk {
		end := off + chunk
		if end > len(tr) {
			end = len(tr)
		}
		if err := sa.Feed(tr[off:end]); err != nil {
			t.Fatalf("Feed at %d: %v", off, err)
		}
	}
	res, verdict, err := sa.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res, verdict
}

func assertResultsBitIdentical(t *testing.T, want, got *AttackResult) {
	t.Helper()
	if len(got.Values) != len(want.Values) {
		t.Fatalf("classified %d coefficients, want %d", len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] || got.Signs[i] != want.Signs[i] {
			t.Fatalf("coefficient %d: value/sign %d/%d, want %d/%d",
				i, got.Values[i], got.Signs[i], want.Values[i], want.Signs[i])
		}
		if len(got.Probs[i]) != len(want.Probs[i]) {
			t.Fatalf("coefficient %d: %d posterior entries, want %d",
				i, len(got.Probs[i]), len(want.Probs[i]))
		}
		for v, p := range want.Probs[i] {
			q, ok := got.Probs[i][v]
			if !ok || math.Float64bits(p) != math.Float64bits(q) {
				t.Fatalf("coefficient %d: P(%d) = %x, want %x (Float64bits)",
					i, v, math.Float64bits(q), math.Float64bits(p))
			}
		}
	}
	wd, err := want.Digest()
	if err != nil {
		t.Fatal(err)
	}
	gd, err := got.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if wd != gd {
		t.Fatalf("digests differ despite bit-identical fields: %s vs %s", wd, gd)
	}
}

func TestStreamAttackMatchesBatchByteForByte(t *testing.T) {
	params, cls, cap := streamTestFixture(t)
	want := batchE2(t, params, cls, cap)
	for _, chunk := range []int{33, 256, 4096, len(cap.TraceE2) + 1} {
		got, verdict := streamE2(t, cls, StreamAttackOptions{Coefficients: params.N}, cap.TraceE2, chunk)
		assertResultsBitIdentical(t, want, got)
		if verdict.EarlyExit {
			t.Fatalf("chunk %d: early exit without a target bikz", chunk)
		}
		if verdict.Classified != params.N {
			t.Fatalf("chunk %d: classified %d, want %d", chunk, verdict.Classified, params.N)
		}
		if verdict.SamplesIngested != len(cap.TraceE2) {
			t.Fatalf("chunk %d: ingested %d samples, want %d", chunk, verdict.SamplesIngested, len(cap.TraceE2))
		}
		if verdict.MarginCount != params.N {
			t.Fatalf("chunk %d: banked %d margins, want %d", chunk, verdict.MarginCount, params.N)
		}
	}
}

// streamEarlyExitTarget picks a target bikz halfway between the baseline
// and the full-hint estimate, so the stream must exit strictly inside the
// trace.
func streamEarlyExitTarget(t *testing.T, params *bfv.Parameters, full *AttackResult) float64 {
	t.Helper()
	loss, err := EstimateFullHints(params, full)
	if err != nil {
		t.Fatalf("full-hint estimate: %v", err)
	}
	if loss.HintedBikz >= loss.BaselineBikz {
		t.Fatalf("hints did not reduce bikz (%.2f vs %.2f) — fixture too noisy",
			loss.HintedBikz, loss.BaselineBikz)
	}
	return (loss.BaselineBikz + loss.HintedBikz) / 2
}

func TestStreamAttackEarlyExitStopsBeforeTraceEnd(t *testing.T) {
	params, cls, cap := streamTestFixture(t)
	full := batchE2(t, params, cls, cap)
	target := streamEarlyExitTarget(t, params, full)
	opts := StreamAttackOptions{Coefficients: params.N, TargetBikz: target, Params: params}
	got, verdict := streamE2(t, cls, opts, cap.TraceE2, 256)
	if !verdict.EarlyExit {
		t.Fatalf("no early exit at target %.2f (hinted %.2f)", target, verdict.HintedBikz)
	}
	if verdict.Classified >= params.N {
		t.Fatalf("early exit classified all %d coefficients", verdict.Classified)
	}
	if verdict.SamplesIngested >= len(cap.TraceE2) {
		t.Fatalf("early exit consumed the whole trace (%d samples)", verdict.SamplesIngested)
	}
	if verdict.HintedBikz > target || verdict.HintedBikz <= 0 {
		t.Fatalf("verdict bikz %.2f not at or below target %.2f", verdict.HintedBikz, target)
	}
	if verdict.BaselineBikz <= target {
		t.Fatalf("baseline %.2f not above target %.2f", verdict.BaselineBikz, target)
	}
	// The banked prefix is exactly the batch result's prefix.
	assertResultsBitIdentical(t, full.Prefix(verdict.Classified), got)
}

func TestStreamAttackEarlyExitDeterministicAcrossChunkSizes(t *testing.T) {
	params, cls, cap := streamTestFixture(t)
	full := batchE2(t, params, cls, cap)
	target := streamEarlyExitTarget(t, params, full)
	opts := StreamAttackOptions{Coefficients: params.N, TargetBikz: target, Params: params}
	var refClassified int
	var refDigest string
	for i, chunk := range []int{64, 301, 1024, len(cap.TraceE2)} {
		got, verdict := streamE2(t, cls, opts, cap.TraceE2, chunk)
		digest, err := got.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refClassified, refDigest = verdict.Classified, digest
			continue
		}
		if verdict.Classified != refClassified {
			t.Fatalf("chunk %d: exit after %d coefficients, chunk 64 exited after %d",
				chunk, verdict.Classified, refClassified)
		}
		if digest != refDigest {
			t.Fatalf("chunk %d: banked prefix digest differs", chunk)
		}
	}
}

func TestStreamAttackValidation(t *testing.T) {
	params, cls, _ := streamTestFixture(t)
	if _, err := NewStreamAttack(cls, StreamAttackOptions{Coefficients: 0}); err == nil {
		t.Fatal("zero coefficients accepted")
	}
	if _, err := NewStreamAttack(cls, StreamAttackOptions{Coefficients: params.N, TargetBikz: 10}); err == nil {
		t.Fatal("target bikz without params accepted")
	}
	if _, err := NewStreamAttack(cls, StreamAttackOptions{Coefficients: params.N, TargetBikz: 1e9, Params: params}); err == nil {
		t.Fatal("target bikz above baseline accepted")
	}
}
