package core

import (
	"encoding/json"
	"strings"
	"testing"

	"reveal/internal/obs"
)

func smallDiagnosticsOptions() DiagnosticsOptions {
	opts := DefaultProfileOptions()
	opts.Q = 12289
	opts.MaxAbsValue = 3
	opts.TracesPerValue = 40
	opts.Templates.POICount = 8
	opts.Templates.MinSpacing = 1
	return DiagnosticsOptions{Profile: opts}
}

func TestDiagnoseReportsLeakage(t *testing.T) {
	dev := NewLowNoiseDevice(71)
	report, err := Diagnose(dev, smallDiagnosticsOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Sets) != 3 {
		t.Fatalf("got %d sets, want sign/pos/neg", len(report.Sets))
	}
	byName := map[string]SetDiagnostics{}
	for _, s := range report.Sets {
		byName[s.Name] = s
	}
	sign := byName["sign"]
	if sign.Classes != 3 {
		t.Fatalf("sign set classes = %d, want 3", sign.Classes)
	}
	if sign.SNR.Max <= 0 {
		t.Fatalf("sign SNR max = %v, want > 0", sign.SNR.Max)
	}
	if len(sign.TTests) != 2 {
		t.Fatalf("sign adjacent pairs = %d, want 2", len(sign.TTests))
	}
	// The branch leak (V1) is the paper's strongest signal: the sign pairs
	// must clear the TVLA threshold on the low-noise device.
	for _, p := range sign.TTests {
		if !p.Leaky {
			t.Fatalf("sign pair (%d,%d) not leaky: max |t| = %v", p.LabelA, p.LabelB, p.Summary.Max)
		}
	}
	if report.TotalPairs == 0 || report.LeakyPairs == 0 {
		t.Fatalf("pair counts = %d/%d", report.LeakyPairs, report.TotalPairs)
	}
	for _, s := range report.Sets {
		if s.Health == nil || s.POIOverlap == nil {
			t.Fatalf("set %s missing health/overlap: %+v", s.Name, s)
		}
		if s.Health.Classes != s.Classes {
			t.Fatalf("set %s: template classes %d vs set classes %d", s.Name, s.Health.Classes, s.Classes)
		}
	}
	// Healthy must equal "no warnings".
	if report.Healthy != (len(report.Warnings) == 0) {
		t.Fatalf("healthy=%v with %d warnings", report.Healthy, len(report.Warnings))
	}

	// The report must serialize (revealctl diagnose -json path).
	if _, err := json.Marshal(report); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
	text := FormatDiagnostics(report)
	for _, want := range []string{"[sign]", "[pos]", "[neg]", "SNR", "t-test", "pairs leaky"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, text)
		}
	}
}

func TestProfileSplitMatchesMonolith(t *testing.T) {
	// CollectProfilingSets + TrainClassifier must reproduce Profile exactly
	// (same device seed → same plan, same traces, same templates).
	opts := DefaultProfileOptions()
	opts.Q = 12289
	opts.MaxAbsValue = 2
	opts.TracesPerValue = 20
	whole, err := Profile(NewDevice(72), opts)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := CollectProfilingSets(NewDevice(72), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	split, err := TrainClassifier(sets, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Length != split.Length || whole.MaxAbsValue != split.MaxAbsValue {
		t.Fatalf("split classifier differs: %d/%d vs %d/%d",
			whole.Length, whole.MaxAbsValue, split.Length, split.MaxAbsValue)
	}
	wantPOIs := whole.Sign.POIs
	gotPOIs := split.Sign.POIs
	if len(wantPOIs) != len(gotPOIs) {
		t.Fatalf("POI count %d vs %d", len(wantPOIs), len(gotPOIs))
	}
	for i := range wantPOIs {
		if wantPOIs[i] != gotPOIs[i] {
			t.Fatalf("POIs differ: %v vs %v", wantPOIs, gotPOIs)
		}
	}
}

func TestEmitCoeffEvents(t *testing.T) {
	rec := obs.New(obs.Options{CoeffCapacity: 64})
	obs.SetGlobal(rec)
	defer obs.SetGlobal(nil)

	res := &AttackResult{
		Values: []int{1, -2},
		Signs:  []int{1, -1},
		Probs: []map[int]float64{
			{1: 0.8, 0: 0.2},
			{-2: 0.6, -1: 0.4},
		},
	}
	EmitCoeffEvents("e1", res, []int64{1, -1})
	events, dropped := rec.CoeffEvents()
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("events=%d dropped=%d", len(events), dropped)
	}
	if !events[0].Correct || events[0].Rank != 1 || events[0].Poly != "e1" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].Correct || events[1].True != -1 || events[1].Rank != 2 {
		t.Fatalf("second event = %+v", events[1])
	}
	if events[1].Margin <= 0 || events[1].EntropyBits <= 0 {
		t.Fatalf("posterior stats unpopulated: %+v", events[1])
	}

	// Truth shorter than the result must not panic, and the disabled path
	// must be a no-op.
	EmitCoeffEvents("e2", res, []int64{1})
	if events, _ := rec.CoeffEvents(); len(events) != 3 {
		t.Fatalf("short-truth emission got %d events", len(events))
	}
	obs.SetGlobal(nil)
	EmitCoeffEvents("e2", res, []int64{1, 2})
}
