package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"reveal/internal/trace"
)

// legacyClassifySegment replicates the pre-scorer classification pipeline —
// map-based posteriors, duplicate template evaluations and all — as the
// bitwise ground truth for the pooled segScorer path.
func legacyClassifySegment(c *CoefficientClassifier, seg trace.Trace) (*Classification, error) {
	aligned := tailAlign(seg, c.Length)
	signProbs, err := c.Sign.Probabilities(aligned)
	if err != nil {
		return nil, fmt.Errorf("core: sign classification: %w", err)
	}
	sign, err := c.Sign.Classify(aligned)
	if err != nil {
		return nil, err
	}
	probs := map[int]float64{0: signProbs[0]}
	if c.Pos != nil {
		posProbs, err := c.Pos.Probabilities(aligned)
		if err != nil {
			return nil, err
		}
		for v, p := range posProbs {
			probs[v] = signProbs[1] * p
		}
	}
	if c.Neg != nil {
		negProbs, err := c.Neg.Probabilities(aligned)
		if err != nil {
			return nil, err
		}
		for v, p := range negProbs {
			probs[v] = signProbs[-1] * p
		}
	}
	labels := make([]int, 0, len(probs))
	for v := range probs {
		labels = append(labels, v)
	}
	sort.Ints(labels)
	total := 0.0
	for _, v := range labels {
		total += probs[v]
	}
	if total > 0 {
		for v := range probs {
			probs[v] /= total
		}
	}
	value := 0
	switch sign {
	case 1:
		if c.Pos == nil {
			return nil, fmt.Errorf("core: no positive templates")
		}
		value, err = c.Pos.Classify(aligned)
	case -1:
		if c.Neg == nil {
			return nil, fmt.Errorf("core: no negative templates")
		}
		value, err = c.Neg.Classify(aligned)
	}
	if err != nil {
		return nil, err
	}
	return &Classification{Value: value, Sign: sign, Probs: probs}, nil
}

// TestClassifySegmentBitwiseMatchesLegacy: the scorer-based classification
// must reproduce the historical algorithm to the last posterior bit, for
// every coefficient of a real captured encryption.
func TestClassifySegmentBitwiseMatchesLegacy(t *testing.T) {
	cls, cap, params := captureSmall(t, 21)
	segs, err := trace.SegmentEncryptionTrace(cap.TraceE2, params.N+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	segs = segs[:params.N]
	for i, s := range segs {
		want, err := legacyClassifySegment(cls, s.Samples)
		if err != nil {
			t.Fatalf("coefficient %d: legacy: %v", i, err)
		}
		got, err := cls.ClassifySegment(s.Samples)
		if err != nil {
			t.Fatalf("coefficient %d: %v", i, err)
		}
		if got.Value != want.Value || got.Sign != want.Sign {
			t.Fatalf("coefficient %d: value/sign (%d,%d), want (%d,%d)",
				i, got.Value, got.Sign, want.Value, want.Sign)
		}
		if len(got.Probs) != len(want.Probs) {
			t.Fatalf("coefficient %d: %d posterior entries, want %d", i, len(got.Probs), len(want.Probs))
		}
		for v, p := range want.Probs {
			gp, ok := got.Probs[v]
			if !ok {
				t.Fatalf("coefficient %d: posterior missing value %d", i, v)
			}
			if math.Float64bits(p) != math.Float64bits(gp) {
				t.Fatalf("coefficient %d: posterior[%d] = %x, want %x",
					i, v, math.Float64bits(gp), math.Float64bits(p))
			}
		}
	}
}

// TestSegScorerMissingSide: a classifier without one value side must still
// classify the covered signs and fail cleanly on the missing one, exactly
// like the historical path.
func TestSegScorerMissingSide(t *testing.T) {
	cls, cap, params := captureSmall(t, 22)
	segs, err := trace.SegmentEncryptionTrace(cap.TraceE2, params.N+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	segs = segs[:params.N]
	onlyPos := &CoefficientClassifier{
		Length: cls.Length, MaxAbsValue: cls.MaxAbsValue,
		Sign: cls.Sign, Pos: cls.Pos,
	}
	sawErr, sawOK := false, false
	for _, s := range segs {
		want, legacyErr := legacyClassifySegment(onlyPos, s.Samples)
		got, gotErr := onlyPos.ClassifySegment(s.Samples)
		if (legacyErr == nil) != (gotErr == nil) {
			t.Fatalf("error behavior diverged: legacy=%v new=%v", legacyErr, gotErr)
		}
		if gotErr != nil {
			sawErr = true
			continue
		}
		sawOK = true
		if got.Value != want.Value || got.Sign != want.Sign {
			t.Fatalf("value/sign (%d,%d), want (%d,%d)", got.Value, got.Sign, want.Value, want.Sign)
		}
		for v, p := range want.Probs {
			if math.Float64bits(p) != math.Float64bits(got.Probs[v]) {
				t.Fatalf("posterior[%d] drifted", v)
			}
		}
	}
	if !sawOK {
		t.Error("expected at least one classifiable segment without negative templates")
	}
	_ = sawErr // negative coefficients may or may not appear at this scale
}
