package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Digest returns the canonical SHA-256 fingerprint of the result: values,
// signs, and the full posterior tables, marshaled as canonical JSON (map
// keys sorted, floats in shortest round-trip form, so two results digest
// equal iff every float is bit-identical up to the -0/0 distinction JSON
// preserves). The streaming and batch attack paths are held to digest
// equality by the determinism contract and the CI stream-smoke job.
func (r *AttackResult) Digest() (string, error) {
	data, err := json.Marshal(struct {
		Values []int             `json:"values"`
		Signs  []int             `json:"signs"`
		Probs  []map[int]float64 `json:"probs"`
	}{r.Values, r.Signs, r.Probs})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Prefix returns the result truncated to its first n coefficients (views,
// not copies) — the shape an early-exited streaming attack produces, used
// to digest-compare a stream prefix against the batch result.
func (r *AttackResult) Prefix(n int) *AttackResult {
	if n > len(r.Values) {
		n = len(r.Values)
	}
	return &AttackResult{Values: r.Values[:n], Signs: r.Signs[:n], Probs: r.Probs[:n]}
}
