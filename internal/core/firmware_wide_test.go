package core

// Wide-modulus firmware support: ladder primes are up to 61 bits while the
// RV32 kernel works in 32-bit words. FirmwareModulus maps q to its low
// limb; because subtraction mod 2^32 depends only on low limbs, the word
// the device stores equals the low 32 bits of the true residue — which is
// what these tests pin down against the Go-side AssignSigned reference.

import (
	"testing"

	"reveal/internal/ring"
	"reveal/internal/sampler"
)

func TestFirmwareModulus(t *testing.T) {
	// Identity on anything that already fits 32 bits (the legacy paper q).
	for _, q := range []uint64{1, 12289, 132120577, (1 << 32) - 1} {
		if got := FirmwareModulus(q); got != q {
			t.Fatalf("FirmwareModulus(%d) = %d, want identity", q, got)
		}
	}
	// Low limb on wide primes.
	q54 := ring.ParamsN2048().Moduli[0]
	if got, want := FirmwareModulus(q54), q54&0xffffffff; got != want {
		t.Fatalf("FirmwareModulus(%d) = %d, want %d", q54, got, want)
	}
	if FirmwareModulus(q54) >= 1<<32 {
		t.Fatal("FirmwareModulus result does not fit 32 bits")
	}
}

// TestFirmwareWideModulusSemantics runs the kernel with the reduced image
// of every ladder prime and checks each stored word equals the low 32 bits
// of the true residue AssignSigned would produce under the full modulus.
func TestFirmwareWideModulusSemantics(t *testing.T) {
	values := []int64{0, 1, -1, 5, -5, 41, -41, 14, -14}
	for _, n := range ring.LadderDegrees() {
		params, err := ring.LadderParams(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range params.Moduli {
			src, err := FirmwareSource(len(values), FirmwareModulus(q))
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			fw, err := AssembleFirmware(src)
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			dev := NewDevice(7)
			metas := make([]sampler.SampleMeta, len(values))
			stored, err := dev.StoredPoly(fw, values, metas)
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			for i, v := range values {
				want, _ := sampler.AssignSigned(v, []uint64{q})
				if uint64(stored[i]) != want[0]&0xffffffff {
					t.Errorf("q=%d coeff %d (value %d): stored %d, want low32(%d) = %d",
						q, i, v, stored[i], want[0], want[0]&0xffffffff)
				}
			}
		}
	}
}
