package lattice

import (
	"fmt"
	"math"
	"math/big"
)

// GSProfile returns the log2 lengths of the Gram-Schmidt vectors,
// the curve BKZ-quality analyses plot (and the GSA approximates by a
// straight line).
func GSProfile(b *Basis) ([]float64, error) {
	_, B, err := b.gso()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(B))
	for i, v := range B {
		f, _ := v.Float64()
		if f <= 0 {
			return nil, fmt.Errorf("lattice: non-positive GSO norm at %d", i)
		}
		out[i] = 0.5 * math.Log2(f)
	}
	return out, nil
}

// RootHermiteFactor returns δ = (‖b₁‖ / vol^(1/d))^(1/d), the standard
// quality measure of a reduced basis (LLL ≈ 1.022, BKZ smaller).
func RootHermiteFactor(b *Basis) (float64, error) {
	volSq, err := b.VolumeSq()
	if err != nil {
		return 0, err
	}
	d := float64(b.NumRows())
	volSqF, _ := volSq.Float64()
	if volSqF <= 0 {
		return 0, fmt.Errorf("lattice: non-positive volume")
	}
	normSqF, _ := new(big.Float).SetInt(b.NormSq(0)).Float64()
	// δ^d = ‖b₁‖ / vol^(1/d)  =>  log δ = (½·log‖b₁‖² − log vol / d) / d
	logDelta := (0.5*math.Log(normSqF) - 0.5*math.Log(volSqF)/d) / d
	return math.Exp(logDelta), nil
}

// OrthogonalityDefect returns (∏‖bᵢ‖) / vol, ≥ 1 with equality iff the
// basis is orthogonal; a coarse reduction-quality diagnostic.
func OrthogonalityDefect(b *Basis) (float64, error) {
	volSq, err := b.VolumeSq()
	if err != nil {
		return 0, err
	}
	volSqF, _ := volSq.Float64()
	if volSqF <= 0 {
		return 0, fmt.Errorf("lattice: non-positive volume")
	}
	logProd := 0.0
	for i := 0; i < b.NumRows(); i++ {
		nf, _ := new(big.Float).SetInt(b.NormSq(i)).Float64()
		logProd += 0.5 * math.Log(nf)
	}
	return math.Exp(logProd - 0.5*math.Log(volSqF)), nil
}
