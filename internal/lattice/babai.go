package lattice

import (
	"fmt"
	"math/big"
)

// NearestPlane runs Babai's nearest-plane algorithm: given a (preferably
// LLL-reduced) basis and a target point, it returns a lattice vector close
// to the target. Solves BDD exactly when the error is small relative to
// the GSO norms.
func NearestPlane(b *Basis, target []*big.Int) ([]*big.Int, error) {
	if len(target) != b.NumCols() {
		return nil, fmt.Errorf("lattice: target length %d, want %d", len(target), b.NumCols())
	}
	muR, BR, err := b.gso()
	if err != nil {
		return nil, err
	}
	n := b.NumRows()

	// Work in rationals on the residual vector.
	resid := make([]*big.Rat, len(target))
	for i, v := range target {
		resid[i] = new(big.Rat).SetInt(v)
	}

	// Reconstruct the GSO vectors b*_i as rationals: b*_i = b_i - sum mu b*_j.
	cols := b.NumCols()
	star := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		star[i] = make([]*big.Rat, cols)
		for c := 0; c < cols; c++ {
			star[i][c] = new(big.Rat).SetInt(b.At(i, c))
		}
		for j := 0; j < i; j++ {
			for c := 0; c < cols; c++ {
				t := new(big.Rat).Mul(muR[i][j], star[j][c])
				star[i][c].Sub(star[i][c], t)
			}
		}
	}

	coeffs := make([]*big.Int, n)
	tmp := new(big.Rat)
	for i := n - 1; i >= 0; i-- {
		if BR[i].Sign() == 0 {
			return nil, fmt.Errorf("lattice: degenerate GSO at row %d", i)
		}
		// c = <resid, b*_i> / ||b*_i||²
		dot := new(big.Rat)
		for c := 0; c < cols; c++ {
			tmp.Mul(resid[c], star[i][c])
			dot.Add(dot, tmp)
		}
		dot.Quo(dot, BR[i])
		k := roundRat(dot)
		coeffs[i] = k
		if k.Sign() != 0 {
			kr := new(big.Rat).SetInt(k)
			for c := 0; c < cols; c++ {
				br := new(big.Rat).SetInt(b.At(i, c))
				tmp.Mul(kr, br)
				resid[c].Sub(resid[c], tmp)
			}
		}
	}

	// Lattice point = target - resid = sum coeffs_i b_i.
	out := make([]*big.Int, cols)
	for c := range out {
		out[c] = new(big.Int)
	}
	t2 := new(big.Int)
	for i := 0; i < n; i++ {
		if coeffs[i].Sign() == 0 {
			continue
		}
		for c := 0; c < cols; c++ {
			t2.Mul(coeffs[i], b.At(i, c))
			out[c].Add(out[c], t2)
		}
	}
	return out, nil
}

// ClosestVectorEmbedding solves CVP via the Kannan embedding: append the
// target as an extra row with embedding factor M, find the shortest vector
// of the extended lattice, and read off target − v. M should be on the
// order of the expected error norm. Returns the lattice vector closest to
// the target (for bounded-distance instances).
func ClosestVectorEmbedding(b *Basis, target []*big.Int, m int64) ([]*big.Int, error) {
	if len(target) != b.NumCols() {
		return nil, fmt.Errorf("lattice: target length %d, want %d", len(target), b.NumCols())
	}
	if m <= 0 {
		return nil, fmt.Errorf("lattice: embedding factor must be positive")
	}
	n := b.NumRows()
	cols := b.NumCols()
	ext := NewBasisZero(n+1, cols+1)
	for i := 0; i < n; i++ {
		for c := 0; c < cols; c++ {
			ext.Set(i, c, b.At(i, c))
		}
	}
	for c := 0; c < cols; c++ {
		ext.Set(n, c, target[c])
	}
	ext.SetInt64(n, cols, m)

	sv, err := ShortestVector(ext)
	if err != nil {
		return nil, err
	}
	// The shortest vector should be ±(target - v, M). Normalize the sign
	// using the last coordinate.
	last := sv[cols]
	switch {
	case last.CmpAbs(big.NewInt(m)) != 0:
		return nil, fmt.Errorf("lattice: embedding failed: last coordinate %v, want ±%d", last, m)
	case last.Sign() < 0:
		for i := range sv {
			sv[i].Neg(sv[i])
		}
	}
	out := make([]*big.Int, cols)
	for c := 0; c < cols; c++ {
		out[c] = new(big.Int).Sub(target[c], sv[c])
	}
	return out, nil
}
