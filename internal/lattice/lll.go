package lattice

import (
	"fmt"
	"math/big"
)

// DefaultDelta is the Lovász parameter used when callers pass 0.
const DefaultDelta = 0.99

// LLL reduces the basis in place with Lovász parameter delta ∈ (0.25, 1).
// The implementation is the textbook exact-rational algorithm: size
// reduction followed by the Lovász condition swap, with incremental GSO
// recomputation (simple, exact, fine for the ≤ ~50-dimensional residual
// instances this reproduction solves).
func LLL(b *Basis, delta float64) error {
	if delta == 0 {
		delta = DefaultDelta
	}
	if delta <= 0.25 || delta >= 1 {
		return fmt.Errorf("lattice: LLL delta %v out of (0.25, 1)", delta)
	}
	deltaRat := new(big.Rat).SetFloat64(delta)
	n := b.NumRows()
	if n <= 1 {
		return nil
	}

	mu, B, err := b.gso()
	if err != nil {
		return err
	}

	half := big.NewRat(1, 2)
	negHalf := big.NewRat(-1, 2)

	sizeReduce := func(i, j int) {
		if mu[i][j].Cmp(half) <= 0 && mu[i][j].Cmp(negHalf) >= 0 {
			return
		}
		q := roundRat(mu[i][j])
		b.subScaledRow(i, j, q)
		qr := new(big.Rat).SetInt(q)
		for k := 0; k < j; k++ {
			t := new(big.Rat).Mul(qr, mu[j][k])
			mu[i][k].Sub(mu[i][k], t)
		}
		mu[i][j].Sub(mu[i][j], qr)
	}

	k := 1
	for k < n {
		for j := k - 1; j >= 0; j-- {
			sizeReduce(k, j)
		}
		// Lovász: B[k] >= (delta - mu[k][k-1]^2) * B[k-1].
		lhs := new(big.Rat).Set(B[k])
		musq := new(big.Rat).Mul(mu[k][k-1], mu[k][k-1])
		rhs := new(big.Rat).Sub(deltaRat, musq)
		rhs.Mul(rhs, B[k-1])
		if lhs.Cmp(rhs) >= 0 {
			k++
			continue
		}
		b.swapRows(k, k-1)
		// Recompute GSO from scratch: exactness over speed.
		mu, B, err = b.gso()
		if err != nil {
			return err
		}
		if k > 1 {
			k--
		}
	}
	return nil
}

// roundRat rounds a rational to the nearest integer (half away from zero).
func roundRat(r *big.Rat) *big.Int {
	num := r.Num()
	den := r.Denom() // positive by construction
	q, rem := new(big.Int).QuoRem(num, den, new(big.Int))
	twoRem := new(big.Int).Abs(rem)
	twoRem.Lsh(twoRem, 1)
	if twoRem.Cmp(den) >= 0 {
		if num.Sign() >= 0 {
			q.Add(q, bigOne)
		} else {
			q.Sub(q, bigOne)
		}
	}
	return q
}

var bigOne = big.NewInt(1)

// IsLLLReduced verifies the size-reduction and Lovász conditions, the
// property tests' oracle.
func IsLLLReduced(b *Basis, delta float64) (bool, error) {
	if delta == 0 {
		delta = DefaultDelta
	}
	mu, B, err := b.gso()
	if err != nil {
		return false, err
	}
	half := big.NewRat(1, 2)
	negHalf := big.NewRat(-1, 2)
	// Allow a hair of slack on the strict 1/2 bound (rounding ties).
	slack := big.NewRat(1, 1000000)
	hiBound := new(big.Rat).Add(half, slack)
	loBound := new(big.Rat).Sub(negHalf, slack)
	for i := 1; i < b.NumRows(); i++ {
		for j := 0; j < i; j++ {
			if mu[i][j].Cmp(hiBound) > 0 || mu[i][j].Cmp(loBound) < 0 {
				return false, nil
			}
		}
	}
	deltaRat := new(big.Rat).SetFloat64(delta)
	for k := 1; k < b.NumRows(); k++ {
		musq := new(big.Rat).Mul(mu[k][k-1], mu[k][k-1])
		rhs := new(big.Rat).Sub(deltaRat, musq)
		rhs.Mul(rhs, B[k-1])
		if B[k].Cmp(rhs) < 0 {
			return false, nil
		}
	}
	return true, nil
}
