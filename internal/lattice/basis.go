// Package lattice implements the lattice-reduction toolbox the attack's
// final stage uses to search the residual space the side-channel hints
// leave: exact Gram-Schmidt orthogonalization over the rationals, LLL
// reduction, Fincke-Pohst SVP enumeration, BKZ tours, Babai's nearest-plane
// algorithm, and the Kannan embedding for bounded-distance decoding. All
// arithmetic on basis vectors is exact (math/big); enumeration uses a
// float64 shadow of the GSO for speed.
package lattice

import (
	"fmt"
	"math/big"
)

// Basis is a list of row vectors generating a lattice. All rows must have
// equal length; rows may outnumber or undernumber the dimension as long as
// they stay linearly independent.
type Basis struct {
	rows [][]*big.Int
}

// NewBasisFromInt64 builds a basis from int64 rows.
func NewBasisFromInt64(rows [][]int64) (*Basis, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("lattice: empty basis")
	}
	n := len(rows[0])
	b := &Basis{rows: make([][]*big.Int, len(rows))}
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("lattice: row %d has %d entries, want %d", i, len(r), n)
		}
		b.rows[i] = make([]*big.Int, n)
		for j, v := range r {
			b.rows[i][j] = big.NewInt(v)
		}
	}
	return b, nil
}

// NewBasisZero allocates a rows×cols all-zero basis.
func NewBasisZero(rows, cols int) *Basis {
	b := &Basis{rows: make([][]*big.Int, rows)}
	for i := range b.rows {
		b.rows[i] = make([]*big.Int, cols)
		for j := range b.rows[i] {
			b.rows[i][j] = new(big.Int)
		}
	}
	return b
}

// NumRows returns the number of basis vectors.
func (b *Basis) NumRows() int { return len(b.rows) }

// NumCols returns the ambient dimension.
func (b *Basis) NumCols() int {
	if len(b.rows) == 0 {
		return 0
	}
	return len(b.rows[0])
}

// At returns entry (i, j) (shared pointer; do not mutate).
func (b *Basis) At(i, j int) *big.Int { return b.rows[i][j] }

// Set assigns entry (i, j).
func (b *Basis) Set(i, j int, v *big.Int) { b.rows[i][j].Set(v) }

// SetInt64 assigns entry (i, j) from an int64.
func (b *Basis) SetInt64(i, j int, v int64) { b.rows[i][j].SetInt64(v) }

// Row returns a copy of row i.
func (b *Basis) Row(i int) []*big.Int {
	out := make([]*big.Int, len(b.rows[i]))
	for j, v := range b.rows[i] {
		out[j] = new(big.Int).Set(v)
	}
	return out
}

// Clone deep-copies the basis.
func (b *Basis) Clone() *Basis {
	c := &Basis{rows: make([][]*big.Int, len(b.rows))}
	for i, r := range b.rows {
		c.rows[i] = make([]*big.Int, len(r))
		for j, v := range r {
			c.rows[i][j] = new(big.Int).Set(v)
		}
	}
	return c
}

// swapRows exchanges rows i and j.
func (b *Basis) swapRows(i, j int) {
	b.rows[i], b.rows[j] = b.rows[j], b.rows[i]
}

// subScaledRow subtracts k·row[j] from row[i].
func (b *Basis) subScaledRow(i, j int, k *big.Int) {
	if k.Sign() == 0 {
		return
	}
	tmp := new(big.Int)
	for c := range b.rows[i] {
		tmp.Mul(k, b.rows[j][c])
		b.rows[i][c].Sub(b.rows[i][c], tmp)
	}
}

// NormSq returns the squared Euclidean norm of row i.
func (b *Basis) NormSq(i int) *big.Int {
	acc := new(big.Int)
	tmp := new(big.Int)
	for _, v := range b.rows[i] {
		tmp.Mul(v, v)
		acc.Add(acc, tmp)
	}
	return acc
}

// dotRows returns <row_i, row_j>.
func (b *Basis) dotRows(i, j int) *big.Int {
	acc := new(big.Int)
	tmp := new(big.Int)
	for c := range b.rows[i] {
		tmp.Mul(b.rows[i][c], b.rows[j][c])
		acc.Add(acc, tmp)
	}
	return acc
}

// DotVec returns <row_i, v> for an external vector.
func (b *Basis) DotVec(i int, v []*big.Int) (*big.Int, error) {
	if len(v) != b.NumCols() {
		return nil, fmt.Errorf("lattice: vector length %d, want %d", len(v), b.NumCols())
	}
	acc := new(big.Int)
	tmp := new(big.Int)
	for c := range v {
		tmp.Mul(b.rows[i][c], v[c])
		acc.Add(acc, tmp)
	}
	return acc, nil
}

// gso computes the exact Gram-Schmidt data: mu[i][j] for j<i and the
// squared norms B[i] of the orthogonalized vectors, as rationals.
func (b *Basis) gso() (mu [][]*big.Rat, B []*big.Rat, err error) {
	n := b.NumRows()
	mu = make([][]*big.Rat, n)
	B = make([]*big.Rat, n)
	// r[i][j] = <b_i, b*_j> as rationals, computed incrementally.
	r := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		mu[i] = make([]*big.Rat, i)
		r[i] = make([]*big.Rat, i+1)
		for j := 0; j <= i; j++ {
			// <b_i, b*_j> = <b_i, b_j> - sum_{k<j} mu[j][k] * r[i][k]
			dot := new(big.Rat).SetInt(b.dotRows(i, j))
			for k := 0; k < j; k++ {
				t := new(big.Rat).Mul(mu[j][k], r[i][k])
				dot.Sub(dot, t)
			}
			r[i][j] = dot
			if j < i {
				mu[i][j] = new(big.Rat).Quo(dot, B[j])
			} else {
				B[i] = dot
			}
		}
		if B[i].Sign() <= 0 {
			return nil, nil, fmt.Errorf("lattice: linearly dependent basis at row %d", i)
		}
	}
	return mu, B, nil
}

// VolumeSq returns the squared volume (Gram determinant) of the lattice as
// an exact rational: prod_i B[i].
func (b *Basis) VolumeSq() (*big.Rat, error) {
	_, B, err := b.gso()
	if err != nil {
		return nil, err
	}
	out := big.NewRat(1, 1)
	for _, v := range B {
		out.Mul(out, v)
	}
	return out, nil
}
