package lattice

import (
	"fmt"
	"math"
	"math/big"
)

// gsoFloat converts the exact GSO to float64 for enumeration.
func gsoFloat(b *Basis) (mu [][]float64, B []float64, err error) {
	muR, BR, err := b.gso()
	if err != nil {
		return nil, nil, err
	}
	n := b.NumRows()
	mu = make([][]float64, n)
	B = make([]float64, n)
	for i := 0; i < n; i++ {
		mu[i] = make([]float64, i)
		for j := 0; j < i; j++ {
			mu[i][j], _ = muR[i][j].Float64()
		}
		B[i], _ = BR[i].Float64()
	}
	return mu, B, nil
}

// enumerate searches for the shortest nonzero vector with squared norm
// below radiusSq in the projected sub-lattice [from, to) of the GSO.
// It returns the integer coefficients (w.r.t. basis rows from..to-1) of the
// best vector found, or nil when nothing beats the radius.
func enumerate(mu [][]float64, B []float64, from, to int, radiusSq float64) []int64 {
	n := to - from
	if n <= 0 {
		return nil
	}
	best := make([]int64, n)
	found := false
	bestSq := radiusSq

	x := make([]int64, n) // current coefficients (local indices)
	x0 := make([]int64, n)
	off := make([]int64, n) // current offset from x0 in zig-zag order
	dir := make([]int64, n) // first zig-zag direction (±1)
	centers := make([]float64, n)
	partial := make([]float64, n+1) // partial squared norms from level k..n-1

	// c_k = -sum_{j>k} x_j mu[from+j][from+k]
	computeCenter := func(k int) float64 {
		c := 0.0
		for j := k + 1; j < n; j++ {
			c -= float64(x[j]) * mu[from+j][from+k]
		}
		return c
	}

	enterLevel := func(k int) {
		centers[k] = computeCenter(k)
		x0[k] = int64(math.Round(centers[k]))
		off[k] = 0
		if centers[k] >= float64(x0[k]) {
			dir[k] = 1
		} else {
			dir[k] = -1
		}
		x[k] = x0[k]
	}

	// advance moves x[k] to the next candidate in order of increasing
	// distance from the center: x0, x0+δ, x0−δ, x0+2δ, x0−2δ, …
	advance := func(k int) {
		o, d := off[k], dir[k]
		switch {
		case o == 0:
			o = d
		case (o > 0) == (d > 0):
			o = -o
		default:
			o = -o + d
		}
		off[k] = o
		x[k] = x0[k] + o
	}

	k := n - 1
	enterLevel(k)
	for {
		d := float64(x[k]) - centers[k]
		newPartial := partial[k+1] + d*d*B[from+k]
		if newPartial < bestSq {
			if k == 0 {
				zero := true
				for _, v := range x {
					if v != 0 {
						zero = false
						break
					}
				}
				if !zero {
					bestSq = newPartial
					copy(best, x)
					found = true
				}
				advance(0)
				continue
			}
			partial[k] = newPartial
			k--
			enterLevel(k)
			continue
		}
		// The candidates at this level are exhausted (distance from the
		// center is monotone in the zig-zag order): backtrack.
		k++
		if k >= n {
			break
		}
		advance(k)
	}
	if !found {
		return nil
	}
	return best
}

// ShortestVector returns the exact shortest nonzero lattice vector (by
// enumeration after LLL). Intended for dimensions up to ~40.
func ShortestVector(b *Basis) ([]*big.Int, error) {
	work := b.Clone()
	if err := LLL(work, 0); err != nil {
		return nil, err
	}
	mu, B, err := gsoFloat(work)
	if err != nil {
		return nil, err
	}
	n := work.NumRows()
	// Initial radius: the first reduced vector (plus slack for float error).
	radius := B[0] * 1.0001
	coeffs := enumerate(mu, B, 0, n, radius)
	if coeffs == nil {
		// The first basis vector is already shortest.
		return work.Row(0), nil
	}
	return combineRows(work, coeffs, 0), nil
}

// combineRows returns sum_i coeffs[i] * row[from+i].
func combineRows(b *Basis, coeffs []int64, from int) []*big.Int {
	out := make([]*big.Int, b.NumCols())
	for j := range out {
		out[j] = new(big.Int)
	}
	tmp := new(big.Int)
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		bc := big.NewInt(c)
		for j := range out {
			tmp.Mul(bc, b.At(from+i, j))
			out[j].Add(out[j], tmp)
		}
	}
	return out
}

// NormSqVec returns the squared norm of a vector.
func NormSqVec(v []*big.Int) *big.Int {
	acc := new(big.Int)
	tmp := new(big.Int)
	for _, x := range v {
		tmp.Mul(x, x)
		acc.Add(acc, tmp)
	}
	return acc
}

// BKZ runs block-Korkine-Zolotarev reduction with the given block size for
// the given number of tours (passes over the basis). Block size 2 is
// (essentially) LLL; larger blocks find shorter vectors. The implementation
// follows Schnorr-Euchner: enumerate each projected block, insert any
// improvement, and re-run LLL.
func BKZ(b *Basis, blockSize, tours int) error {
	n := b.NumRows()
	if blockSize < 2 {
		return fmt.Errorf("lattice: BKZ block size %d must be >= 2", blockSize)
	}
	if tours < 1 {
		return fmt.Errorf("lattice: BKZ needs at least 1 tour")
	}
	if err := LLL(b, 0); err != nil {
		return err
	}
	for tour := 0; tour < tours; tour++ {
		improved := false
		for j := 0; j < n-1; j++ {
			kEnd := j + blockSize
			if kEnd > n {
				kEnd = n
			}
			mu, B, err := gsoFloat(b)
			if err != nil {
				return err
			}
			radius := B[j] * 0.9999 // only accept strict improvements
			coeffs := enumerate(mu, B, j, kEnd, radius)
			if coeffs == nil {
				continue
			}
			// A shorter vector for the projected block exists; insert it at
			// position j and re-reduce to remove the linear dependence.
			v := combineRows(b, coeffs, j)
			if err := insertVector(b, v, j); err != nil {
				return err
			}
			if err := LLL(b, 0); err != nil {
				return err
			}
			improved = true
		}
		if !improved {
			break
		}
	}
	return nil
}

// insertVector places v as row j, shifting others down, then removes the
// resulting linear dependence by running the MLLL-style cleanup: we simply
// rebuild a basis of the same lattice from the n+1 generators using LLL on
// an extended matrix and dropping the zero row.
func insertVector(b *Basis, v []*big.Int, j int) error {
	n := b.NumRows()
	cols := b.NumCols()
	ext := NewBasisZero(n+1, cols)
	row := 0
	for i := 0; i < n+1; i++ {
		switch {
		case i == j:
			for c := 0; c < cols; c++ {
				ext.Set(i, c, v[c])
			}
		default:
			for c := 0; c < cols; c++ {
				ext.Set(i, c, b.At(row, c))
			}
			row++
		}
	}
	reduced, err := removeDependence(ext)
	if err != nil {
		return err
	}
	if reduced.NumRows() != n {
		return fmt.Errorf("lattice: insertion produced %d independent rows, want %d", reduced.NumRows(), n)
	}
	b.rows = reduced.rows
	return nil
}

// removeDependence reduces a generating set with one linear dependence to a
// proper basis: run exact GSO; when a zero GSO vector appears the
// corresponding row is an integer combination of earlier ones after LLL
// size-reduction, so LLL will drive it to the zero vector, which we drop.
func removeDependence(gens *Basis) (*Basis, error) {
	// LLL tolerant of dependence: we run the standard loop but treat a
	// zero row as removable.
	// Simplest correct approach: iterate LLL-like passes with exact GSO on
	// the nonzero prefix; the textbook trick is to run LLL on generators —
	// implemented here by catching the dependence error and eliminating.
	work := gens.Clone()
	for {
		if err := LLL(work, 0); err == nil {
			return work, nil
		}
		// Dependence: find a zero row (LLL reduces dependent rows toward
		// zero) or eliminate via exact elimination.
		removed := false
		for i := 0; i < work.NumRows(); i++ {
			if work.NormSq(i).Sign() == 0 {
				work.rows = append(work.rows[:i], work.rows[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			// LLL failed before producing a zero row; fall back to exact
			// elimination of the dependence via Hermite-style reduction.
			var err2 error
			work, err2 = hermiteEliminate(work)
			if err2 != nil {
				return nil, err2
			}
		}
	}
}

// hermiteEliminate performs integer row reduction (HNF-flavoured) to drop
// one linearly dependent row from a generating set.
func hermiteEliminate(gens *Basis) (*Basis, error) {
	work := gens.Clone()
	rows := work.NumRows()
	cols := work.NumCols()
	rank := 0
	for c := 0; c < cols && rank < rows; c++ {
		// Reduce column c below row `rank` to zero by gcd steps.
		for {
			// Find the row (>= rank) with the smallest nonzero |entry|.
			pivot := -1
			for r := rank; r < rows; r++ {
				if work.At(r, c).Sign() == 0 {
					continue
				}
				if pivot < 0 {
					pivot = r
					continue
				}
				a := new(big.Int).Abs(work.At(r, c))
				p := new(big.Int).Abs(work.At(pivot, c))
				if a.Cmp(p) < 0 {
					pivot = r
				}
			}
			if pivot < 0 {
				break // column all zero below rank
			}
			work.swapRows(rank, pivot)
			done := true
			for r := rank + 1; r < rows; r++ {
				if work.At(r, c).Sign() == 0 {
					continue
				}
				q := new(big.Int).Quo(work.At(r, c), work.At(rank, c))
				work.subScaledRow(r, rank, q)
				if work.At(r, c).Sign() != 0 {
					done = false
				}
			}
			if done {
				rank++
				break
			}
		}
	}
	// Drop zero rows.
	var out [][]*big.Int
	for i := 0; i < rows; i++ {
		if work.NormSq(i).Sign() != 0 {
			out = append(out, work.rows[i])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lattice: all generators were zero")
	}
	return &Basis{rows: out}, nil
}

// ProgressiveBKZ runs BKZ with increasing block sizes (doubling from 4 up
// to maxBlock), the standard practical schedule: early cheap tours improve
// the basis so the expensive large-block tours start from a better place.
func ProgressiveBKZ(b *Basis, maxBlock int) error {
	if maxBlock < 2 {
		return fmt.Errorf("lattice: maxBlock %d must be >= 2", maxBlock)
	}
	if err := LLL(b, 0); err != nil {
		return err
	}
	for block := 4; ; block *= 2 {
		if block > maxBlock {
			block = maxBlock
		}
		if block > b.NumRows() {
			block = b.NumRows()
		}
		if block >= 2 {
			if err := BKZ(b, block, 2); err != nil {
				return err
			}
		}
		if block >= maxBlock || block >= b.NumRows() {
			return nil
		}
	}
}
