package lattice

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBasis(rng *rand.Rand, n int, scale int64) *Basis {
	for {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = make([]int64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Int63n(2*scale+1) - scale
			}
		}
		b, err := NewBasisFromInt64(rows)
		if err != nil {
			continue
		}
		if _, _, gerr := b.gso(); gerr == nil {
			return b
		}
	}
}

func TestBasisBasics(t *testing.T) {
	b, err := NewBasisFromInt64([][]int64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.NumCols() != 2 {
		t.Error("shape wrong")
	}
	if b.At(1, 0).Int64() != 3 {
		t.Error("At wrong")
	}
	c := b.Clone()
	c.SetInt64(0, 0, 99)
	if b.At(0, 0).Int64() != 1 {
		t.Error("Clone must be deep")
	}
	r := b.Row(0)
	r[0].SetInt64(77)
	if b.At(0, 0).Int64() != 1 {
		t.Error("Row must copy")
	}
	if b.NormSq(0).Int64() != 5 {
		t.Error("NormSq wrong")
	}
	dot, err := b.DotVec(0, []*big.Int{big.NewInt(2), big.NewInt(3)})
	if err != nil || dot.Int64() != 8 {
		t.Errorf("DotVec=%v err=%v", dot, err)
	}
	if _, err := b.DotVec(0, []*big.Int{big.NewInt(1)}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewBasisFromInt64(nil); err == nil {
		t.Error("empty basis should fail")
	}
	if _, err := NewBasisFromInt64([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged basis should fail")
	}
}

func TestGSODetectsDependence(t *testing.T) {
	b, _ := NewBasisFromInt64([][]int64{{1, 2}, {2, 4}})
	if _, _, err := b.gso(); err == nil {
		t.Error("dependent rows should fail GSO")
	}
}

func TestLLLKnownExample(t *testing.T) {
	// Classic example: reduces to short vectors.
	b, _ := NewBasisFromInt64([][]int64{{1, 1, 1}, {-1, 0, 2}, {3, 5, 6}})
	if err := LLL(b, 0.75); err != nil {
		t.Fatal(err)
	}
	ok, err := IsLLLReduced(b, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("output not LLL-reduced")
	}
	// The shortest vector of this lattice has squared norm 1 ((0,1,0)).
	if b.NormSq(0).Int64() > 2 {
		t.Errorf("first vector too long: %v", b.NormSq(0))
	}
}

func TestLLLPreservesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		b := randomBasis(rng, n, 20)
		volBefore, err := b.VolumeSq()
		if err != nil {
			t.Fatal(err)
		}
		if err := LLL(b, 0); err != nil {
			t.Fatal(err)
		}
		volAfter, err := b.VolumeSq()
		if err != nil {
			t.Fatal(err)
		}
		if volBefore.Cmp(volAfter) != 0 {
			t.Fatalf("volume changed: %v -> %v", volBefore, volAfter)
		}
		ok, err := IsLLLReduced(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Error("not reduced")
		}
	}
}

func TestLLLValidatesDelta(t *testing.T) {
	b, _ := NewBasisFromInt64([][]int64{{1, 0}, {0, 1}})
	if err := LLL(b, 1.5); err == nil {
		t.Error("delta out of range should fail")
	}
	if err := LLL(b, 0.1); err == nil {
		t.Error("delta too small should fail")
	}
}

func TestRoundRat(t *testing.T) {
	cases := []struct {
		num, den int64
		want     int64
	}{
		{7, 2, 4}, {-7, 2, -4}, {1, 3, 0}, {2, 3, 1}, {-2, 3, -1},
		{5, 1, 5}, {0, 1, 0}, {3, 2, 2}, {-3, 2, -2},
	}
	for _, c := range cases {
		r := big.NewRat(c.num, c.den)
		if got := roundRat(r); got.Int64() != c.want {
			t.Errorf("round(%d/%d)=%v want %d", c.num, c.den, got, c.want)
		}
	}
}

func TestShortestVectorKnown(t *testing.T) {
	// Lattice with a planted short vector: rows (1,0,100), (0,1,100),
	// (0,0,101) contain (1,1,-... ) hmm — use a simple orthogonal-ish case.
	b, _ := NewBasisFromInt64([][]int64{{2, 0, 0}, {1, 3, 0}, {1, 1, 4}})
	sv, err := ShortestVector(b)
	if err != nil {
		t.Fatal(err)
	}
	norm := NormSqVec(sv)
	if norm.Int64() != 4 { // (2,0,0) or (−2,0,0)
		t.Errorf("shortest vector %v has norm² %v, want 4", sv, norm)
	}
}

func TestShortestVectorAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		b := randomBasis(rng, 3, 9)
		sv, err := ShortestVector(b)
		if err != nil {
			t.Fatal(err)
		}
		got := NormSqVec(sv)
		// Brute force small coefficient combinations.
		bound := int64(6)
		best := new(big.Int)
		first := true
		for a := -bound; a <= bound; a++ {
			for bb := -bound; bb <= bound; bb++ {
				for c := -bound; c <= bound; c++ {
					if a == 0 && bb == 0 && c == 0 {
						continue
					}
					v := combineRows(b, []int64{a, bb, c}, 0)
					n := NormSqVec(v)
					if first || n.Cmp(best) < 0 {
						best.Set(n)
						first = false
					}
				}
			}
		}
		if got.Cmp(best) != 0 {
			t.Fatalf("trial %d: enumeration found norm² %v, brute force %v", trial, got, best)
		}
	}
}

func TestBKZImprovesOrMatchesLLL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		b := randomBasis(rng, 6, 50)
		lll := b.Clone()
		if err := LLL(lll, 0); err != nil {
			t.Fatal(err)
		}
		bkz := b.Clone()
		if err := BKZ(bkz, 4, 4); err != nil {
			t.Fatal(err)
		}
		if bkz.NormSq(0).Cmp(lll.NormSq(0)) > 0 {
			t.Errorf("BKZ first vector longer than LLL: %v > %v",
				bkz.NormSq(0), lll.NormSq(0))
		}
		volA, _ := b.VolumeSq()
		volB, _ := bkz.VolumeSq()
		if volA.Cmp(volB) != 0 {
			t.Error("BKZ changed the lattice volume")
		}
	}
}

func TestBKZFullBlockFindsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := randomBasis(rng, 5, 30)
	sv, err := ShortestVector(b)
	if err != nil {
		t.Fatal(err)
	}
	bkz := b.Clone()
	if err := BKZ(bkz, 5, 6); err != nil {
		t.Fatal(err)
	}
	if bkz.NormSq(0).Cmp(NormSqVec(sv)) != 0 {
		t.Errorf("full-block BKZ first vector norm² %v, SVP %v",
			bkz.NormSq(0), NormSqVec(sv))
	}
}

func TestBKZValidation(t *testing.T) {
	b, _ := NewBasisFromInt64([][]int64{{1, 0}, {0, 1}})
	if err := BKZ(b, 1, 1); err == nil {
		t.Error("block size 1 should fail")
	}
	if err := BKZ(b, 2, 0); err == nil {
		t.Error("0 tours should fail")
	}
}

func TestNearestPlaneSolvesBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		b := randomBasis(rng, n, 30)
		if err := LLL(b, 0); err != nil {
			t.Fatal(err)
		}
		// Plant a lattice point + tiny error.
		coeffs := make([]int64, n)
		for i := range coeffs {
			coeffs[i] = rng.Int63n(11) - 5
		}
		point := combineRows(b, coeffs, 0)
		target := make([]*big.Int, len(point))
		for i := range target {
			target[i] = new(big.Int).Set(point[i])
		}
		// Error of ±1 in one coordinate: well within nearest-plane reach
		// for LLL-reduced random bases of this size.
		target[0].Add(target[0], big.NewInt(1))
		got, err := NearestPlane(b, target)
		if err != nil {
			t.Fatal(err)
		}
		// The recovered point must be a lattice point at distance ≤ the
		// planted error from the target.
		diff := new(big.Int)
		distSq := new(big.Int)
		for i := range got {
			diff.Sub(target[i], got[i])
			diff.Mul(diff, diff)
			distSq.Add(distSq, diff)
		}
		if distSq.Int64() > 1 {
			t.Errorf("trial %d: nearest plane at distance² %v", trial, distSq)
		}
	}
}

func TestNearestPlaneValidation(t *testing.T) {
	b, _ := NewBasisFromInt64([][]int64{{1, 0}, {0, 1}})
	if _, err := NearestPlane(b, []*big.Int{big.NewInt(1)}); err == nil {
		t.Error("target length mismatch should fail")
	}
}

func TestClosestVectorEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := randomBasis(rng, 4, 20)
	if err := LLL(b, 0); err != nil {
		t.Fatal(err)
	}
	coeffs := []int64{2, -1, 3, 0}
	point := combineRows(b, coeffs, 0)
	target := make([]*big.Int, len(point))
	for i := range target {
		target[i] = new(big.Int).Set(point[i])
	}
	target[1].Add(target[1], big.NewInt(1))
	target[2].Sub(target[2], big.NewInt(1))
	got, err := ClosestVectorEmbedding(b, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Cmp(point[i]) != 0 {
			t.Fatalf("embedding recovered %v want %v", got, point)
		}
	}
	if _, err := ClosestVectorEmbedding(b, target, 0); err == nil {
		t.Error("zero embedding factor should fail")
	}
	if _, err := ClosestVectorEmbedding(b, target[:1], 2); err == nil {
		t.Error("target length mismatch should fail")
	}
}

// Property: LLL output always satisfies the reduction conditions and spans
// the same lattice (volume check).
func TestLLLPropertyQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		b := randomBasis(rng, n, 15)
		before, err := b.VolumeSq()
		if err != nil {
			return true // dependent: skip
		}
		if err := LLL(b, 0); err != nil {
			return false
		}
		after, err := b.VolumeSq()
		if err != nil {
			return false
		}
		if before.Cmp(after) != 0 {
			return false
		}
		ok, err := IsLLLReduced(b, 0)
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHermiteEliminate(t *testing.T) {
	// Three generators of a rank-2 lattice.
	gens, _ := NewBasisFromInt64([][]int64{{2, 0}, {0, 3}, {2, 3}})
	out, err := hermiteEliminate(gens)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rank=%d want 2", out.NumRows())
	}
	vol, err := out.VolumeSq()
	if err != nil {
		t.Fatal(err)
	}
	if vol.Cmp(big.NewRat(36, 1)) != 0 { // det² = (2·3)²
		t.Errorf("volume² %v want 36", vol)
	}
}

func BenchmarkLLL8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	basis := randomBasis(rng, 8, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := basis.Clone()
		if err := LLL(work, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBKZ10Block4(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	basis := randomBasis(rng, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := basis.Clone()
		if err := BKZ(work, 4, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGSProfileAndDiagnostics(t *testing.T) {
	// Orthogonal basis: defect exactly 1, profile = log2 of diag entries.
	b, _ := NewBasisFromInt64([][]int64{{4, 0}, {0, 8}})
	profile, err := GSProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(profile[0]-2) > 1e-12 || math.Abs(profile[1]-3) > 1e-12 {
		t.Errorf("profile=%v want [2 3]", profile)
	}
	defect, err := OrthogonalityDefect(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(defect-1) > 1e-9 {
		t.Errorf("orthogonal defect=%v want 1", defect)
	}
	// A skewed basis has defect > 1, and LLL reduces it.
	skew, _ := NewBasisFromInt64([][]int64{{1, 0}, {1000, 1}})
	dBefore, err := OrthogonalityDefect(skew)
	if err != nil {
		t.Fatal(err)
	}
	if dBefore <= 1 {
		t.Fatalf("skewed defect=%v should exceed 1", dBefore)
	}
	if err := LLL(skew, 0); err != nil {
		t.Fatal(err)
	}
	dAfter, err := OrthogonalityDefect(skew)
	if err != nil {
		t.Fatal(err)
	}
	if dAfter >= dBefore {
		t.Errorf("LLL did not reduce defect: %v -> %v", dBefore, dAfter)
	}
}

func TestRootHermiteFactorLLLRange(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	b := randomBasis(rng, 12, 1000)
	if err := LLL(b, 0); err != nil {
		t.Fatal(err)
	}
	delta, err := RootHermiteFactor(b)
	if err != nil {
		t.Fatal(err)
	}
	// LLL's root Hermite factor is ≈ 1.02; random small lattices scatter,
	// but it must stay in a sane band.
	if delta < 0.9 || delta > 1.1 {
		t.Errorf("root Hermite factor %v implausible for LLL", delta)
	}
	// BKZ must not worsen it.
	bkz := b.Clone()
	if err := BKZ(bkz, 6, 3); err != nil {
		t.Fatal(err)
	}
	d2, err := RootHermiteFactor(bkz)
	if err != nil {
		t.Fatal(err)
	}
	if d2 > delta+1e-9 {
		t.Errorf("BKZ worsened δ: %v -> %v", delta, d2)
	}
}

func TestProgressiveBKZ(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	b := randomBasis(rng, 10, 80)
	lll := b.Clone()
	if err := LLL(lll, 0); err != nil {
		t.Fatal(err)
	}
	prog := b.Clone()
	if err := ProgressiveBKZ(prog, 8); err != nil {
		t.Fatal(err)
	}
	if prog.NormSq(0).Cmp(lll.NormSq(0)) > 0 {
		t.Errorf("progressive BKZ worse than LLL: %v > %v", prog.NormSq(0), lll.NormSq(0))
	}
	volA, _ := b.VolumeSq()
	volB, _ := prog.VolumeSq()
	if volA.Cmp(volB) != 0 {
		t.Error("progressive BKZ changed the lattice")
	}
	if err := ProgressiveBKZ(b, 1); err == nil {
		t.Error("maxBlock 1 should fail")
	}
}
