package sca

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"reveal/internal/linalg"
	"reveal/internal/trace"
)

// referenceLogLikelihoods replicates the pre-scorer per-call arithmetic —
// fresh residual allocation, linalg.SolveCholesky on the stored factor —
// as the bitwise ground truth the Scorer must match.
func referenceLogLikelihoods(t *Templates, tr trace.Trace) (map[int]float64, error) {
	f := Extract(tr, t.POIs)
	out := make(map[int]float64, len(t.classes))
	d := float64(len(t.POIs))
	resid := make([]float64, len(f))
	for _, c := range t.classes {
		for i := range f {
			resid[i] = f[i] - c.mean[i]
		}
		x, err := linalg.SolveCholesky(c.chol, resid)
		if err != nil {
			return nil, err
		}
		mahal := linalg.Dot(resid, x)
		out[c.label] = -0.5 * (mahal + c.logDet + d*math.Log(2*math.Pi))
	}
	return out, nil
}

func trainedScorerFixture(t *testing.T, pooled bool) (*Templates, *trace.Set) {
	t.Helper()
	train := synthSet(7, []int{-3, -1, 0, 2, 5}, 60, 24, 0.08)
	opts := DefaultTemplateOptions()
	opts.Pooled = pooled
	tmpl, err := BuildTemplates(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := synthSet(99, []int{-3, -1, 0, 2, 5}, 8, 24, 0.08)
	return tmpl, test
}

// TestScorerBitwiseIdenticalToReference: log-likelihoods, classifications
// and posteriors from the reusable Scorer must equal the historical
// per-call path to the last bit, for pooled and per-class covariances.
func TestScorerBitwiseIdenticalToReference(t *testing.T) {
	for _, pooled := range []bool{true, false} {
		tmpl, test := trainedScorerFixture(t, pooled)
		s := tmpl.NewScorer()
		for i, tr := range test.Traces {
			want, err := referenceLogLikelihoods(tmpl, tr)
			if err != nil {
				t.Fatal(err)
			}
			ll, err := s.ScoreTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tmpl.LogLikelihoods(tr)
			if err != nil {
				t.Fatal(err)
			}
			for ci := range tmpl.classes {
				l := tmpl.classes[ci].label
				if math.Float64bits(want[l]) != math.Float64bits(ll[ci]) {
					t.Fatalf("pooled=%v trace %d: scorer ll[%d] = %x, want %x",
						pooled, i, l, math.Float64bits(ll[ci]), math.Float64bits(want[l]))
				}
				if math.Float64bits(want[l]) != math.Float64bits(got[l]) {
					t.Fatalf("pooled=%v trace %d: LogLikelihoods[%d] drifted", pooled, i, l)
				}
			}
			// Posterior: same exp/normalize order as the historical softmax.
			wantPost := make(map[int]float64, len(want))
			max := math.Inf(-1)
			for _, v := range want {
				if v > max {
					max = v
				}
			}
			sum := 0.0
			for _, c := range tmpl.classes {
				e := math.Exp(want[c.label] - max)
				wantPost[c.label] = e
				sum += e
			}
			for l := range wantPost {
				wantPost[l] /= sum
			}
			gotPost, err := tmpl.Probabilities(tr)
			if err != nil {
				t.Fatal(err)
			}
			for l, v := range wantPost {
				if math.Float64bits(v) != math.Float64bits(gotPost[l]) {
					t.Fatalf("pooled=%v trace %d: posterior[%d] = %x, want %x",
						pooled, i, l, math.Float64bits(gotPost[l]), math.Float64bits(v))
				}
			}
			// Classification: first strict maximum in ascending class order.
			wantBest, wantLL := 0, math.Inf(-1)
			first := true
			for _, c := range tmpl.classes {
				if v := want[c.label]; first || v > wantLL {
					wantBest, wantLL = c.label, v
					first = false
				}
			}
			gotBest, err := tmpl.Classify(tr)
			if err != nil {
				t.Fatal(err)
			}
			if gotBest != wantBest {
				t.Fatalf("pooled=%v trace %d: Classify = %d, want %d", pooled, i, gotBest, wantBest)
			}
		}
	}
}

// TestScoreBatchMatchesPerTrace: the batch path is the per-trace path.
func TestScoreBatchMatchesPerTrace(t *testing.T) {
	tmpl, test := trainedScorerFixture(t, true)
	s := tmpl.NewScorer()
	batch, err := s.ScoreBatch(test.Traces)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Rows != len(test.Traces) || batch.Cols != s.Classes() {
		t.Fatalf("batch shape %dx%d, want %dx%d", batch.Rows, batch.Cols, len(test.Traces), s.Classes())
	}
	labels, err := tmpl.ClassifyBatch(test.Traces)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range test.Traces {
		ll, err := s.ScoreTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range ll {
			if math.Float64bits(ll[ci]) != math.Float64bits(batch.At(i, ci)) {
				t.Fatalf("trace %d class %d: batch score %x, want %x", i, ci,
					math.Float64bits(batch.At(i, ci)), math.Float64bits(ll[ci]))
			}
		}
		want, err := tmpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if labels[i] != want {
			t.Fatalf("trace %d: ClassifyBatch = %d, want %d", i, labels[i], want)
		}
	}
}

// TestScorerErrors covers the shape guards.
func TestScorerErrors(t *testing.T) {
	tmpl, _ := trainedScorerFixture(t, true)
	s := tmpl.NewScorer()
	if _, err := s.ScoreTrace(make(trace.Trace, 2)); err == nil {
		t.Error("short trace should fail")
	}
	if _, err := s.ScoreVector(make([]float64, 1)); err == nil {
		t.Error("wrong feature width should fail")
	}
	if _, err := s.ScoreBatch([]trace.Trace{make(trace.Trace, 1)}); err == nil {
		t.Error("batch with short trace should fail")
	}
	if _, err := tmpl.ClassifyBatch([]trace.Trace{make(trace.Trace, 1)}); err == nil {
		t.Error("classify batch with short trace should fail")
	}
}

// TestTemplatesPrecomputedStructures: training must leave a usable inverse
// covariance and log-determinant on every class, and the pooled covariance
// must share one inverse across classes.
func TestTemplatesPrecomputedStructures(t *testing.T) {
	tmpl, _ := trainedScorerFixture(t, true)
	labels := tmpl.Labels()
	first := tmpl.InverseCovariance(labels[0])
	if first == nil {
		t.Fatal("missing inverse covariance")
	}
	d := len(tmpl.POIs)
	for _, l := range labels {
		inv := tmpl.InverseCovariance(l)
		if inv == nil || inv.Rows != d || inv.Cols != d {
			t.Fatalf("label %d: bad inverse covariance", l)
		}
		if inv != first {
			t.Fatalf("pooled templates should share one inverse covariance")
		}
		if ld := tmpl.ClassLogDet(l); math.IsNaN(ld) || math.IsInf(ld, 0) {
			t.Fatalf("label %d: bad log-determinant %v", l, ld)
		}
	}
	// Σ · Σ⁻¹ ≈ I, with Σ reconstructed from the stored factor.
	c := tmpl.classes[0]
	cov, err := c.chol.Mul(c.chol.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	prod, err := cov.Mul(first)
	if err != nil {
		t.Fatal(err)
	}
	if dmax := linalg.MaxAbsDiff(prod, linalg.Identity(d)); dmax > 1e-8 {
		t.Fatalf("|Σ·Σ⁻¹ − I| = %g", dmax)
	}
	if tmpl.InverseCovariance(12345) != nil {
		t.Error("unknown label should return nil inverse")
	}
	if !math.IsNaN(tmpl.ClassLogDet(12345)) {
		t.Error("unknown label should return NaN log-det")
	}
}

// TestSerializationCarriesPrecomputed: a v2 round-trip must preserve the
// inverse covariance and log-determinant bit for bit and keep scoring
// bitwise identical.
func TestSerializationCarriesPrecomputed(t *testing.T) {
	tmpl, test := trainedScorerFixture(t, false)
	var buf bytes.Buffer
	if err := WriteTemplates(&buf, tmpl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTemplates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tmpl.Labels() {
		a, b := tmpl.InverseCovariance(l), back.InverseCovariance(l)
		if b == nil || a.Rows != b.Rows || a.Cols != b.Cols {
			t.Fatalf("label %d: inverse covariance lost in round trip", l)
		}
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("label %d: inverse covariance entry %d drifted", l, i)
			}
		}
		if math.Float64bits(tmpl.ClassLogDet(l)) != math.Float64bits(back.ClassLogDet(l)) {
			t.Fatalf("label %d: log-determinant drifted", l)
		}
	}
	s1, s2 := tmpl.NewScorer(), back.NewScorer()
	for i, tr := range test.Traces {
		ll1, err := s1.ScoreTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		ll2, err := s2.ScoreTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range ll1 {
			if math.Float64bits(ll1[ci]) != math.Float64bits(ll2[ci]) {
				t.Fatalf("trace %d: round-tripped score drifted at class %d", i, ci)
			}
		}
	}
}

// TestStaleTemplateVersionRejected: version-1 streams (no precomputed
// inverse covariance) must fail with ErrStaleTemplateVersion.
func TestStaleTemplateVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(templatesMagic)
	for _, v := range []uint32{1, 1, 4, 2} { // version 1, pooled, d=4, 2 classes
		binary.Write(&buf, binary.LittleEndian, v)
	}
	_, err := ReadTemplates(&buf)
	if !errors.Is(err, ErrStaleTemplateVersion) {
		t.Fatalf("want ErrStaleTemplateVersion, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("error should name the stale version: %v", err)
	}
	// Future versions are a different failure, not "stale".
	buf.Reset()
	buf.WriteString(templatesMagic)
	for _, v := range []uint32{99, 1, 4, 2} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	_, err = ReadTemplates(&buf)
	if err == nil || errors.Is(err, ErrStaleTemplateVersion) {
		t.Fatalf("future version should be unsupported, not stale: %v", err)
	}
}

func BenchmarkScoreTraceScorer(b *testing.B) {
	train := synthSet(7, []int{-3, -1, 0, 2, 5}, 60, 24, 0.08)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		b.Fatal(err)
	}
	tr := train.Traces[0]
	s := tmpl.NewScorer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScoreTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreTraceMapAPI(b *testing.B) {
	train := synthSet(7, []int{-3, -1, 0, 2, 5}, 60, 24, 0.08)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		b.Fatal(err)
	}
	tr := train.Traces[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmpl.LogLikelihoods(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreBatch(b *testing.B) {
	train := synthSet(7, []int{-3, -1, 0, 2, 5}, 60, 24, 0.08)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := tmpl.NewScorer()
	trs := train.Traces[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScoreBatch(trs); err != nil {
			b.Fatal(err)
		}
	}
}
