package sca

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"reveal/internal/trace"
)

// syntheticSet builds a two-class set whose means separate only at sample
// `leakAt`, with Gaussian noise of the given sigma everywhere.
func syntheticSet(n, length, leakAt int, sep, sigma float64, rng *rand.Rand) *trace.Set {
	set := &trace.Set{}
	for i := 0; i < n; i++ {
		label := i % 2
		tr := make(trace.Trace, length)
		for s := range tr {
			tr[s] = rng.NormFloat64() * sigma
		}
		tr[leakAt] += float64(label) * sep
		set.Append(tr, label)
	}
	return set
}

func TestSNRPeaksAtLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := syntheticSet(200, 32, 11, 4.0, 0.5, rng)
	snr, err := SNR(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(snr) != 32 {
		t.Fatalf("SNR length = %d, want 32", len(snr))
	}
	argmax := 0
	for i, v := range snr {
		if v > snr[argmax] {
			argmax = i
		}
	}
	if argmax != 11 {
		t.Fatalf("SNR argmax = %d, want 11 (curve %v)", argmax, snr)
	}
	// sep=4σ·0.5... signal variance ≈ (sep/2)² = 4, noise ≈ 0.25 → SNR ≫ 1.
	if snr[11] < 4 {
		t.Fatalf("SNR at leak = %v, want > 4", snr[11])
	}
	if snr[3] > 0.5 {
		t.Fatalf("SNR off leak = %v, want ≈ 0", snr[3])
	}
}

func TestSNRRejectsSingleClass(t *testing.T) {
	set := &trace.Set{}
	set.Append(trace.Trace{1, 2}, 0)
	set.Append(trace.Trace{1, 2}, 0)
	if _, err := SNR(set); err == nil {
		t.Fatal("single-class set must be rejected")
	}
}

func TestSummarizeCurve(t *testing.T) {
	s := SummarizeCurve([]float64{0.5, 6.0, 1.0, 5.0}, 4.5, false)
	if s.Max != 6.0 || s.ArgMax != 1 {
		t.Fatalf("max=%v argmax=%d", s.Max, s.ArgMax)
	}
	if s.AboveThreshold != 2 {
		t.Fatalf("above = %d, want 2", s.AboveThreshold)
	}
	if math.Abs(s.Mean-3.125) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Curve != nil {
		t.Fatal("curve must be omitted unless requested")
	}
	if s = SummarizeCurve([]float64{1, 2}, 0, true); len(s.Curve) != 2 {
		t.Fatalf("kept curve = %v", s.Curve)
	}
	// All-negative curves must still report the true max via the i==0 seed.
	if s = SummarizeCurve([]float64{-3, -1, -2}, 0, false); s.Max != -1 || s.ArgMax != 1 {
		t.Fatalf("negative curve max=%v argmax=%d", s.Max, s.ArgMax)
	}
}

func TestTTestPairDetectsLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	set := syntheticSet(400, 16, 5, 2.0, 0.3, rng)
	p, err := TTestPair(set, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Leaky {
		t.Fatalf("separated classes must be leaky: %+v", p)
	}
	if p.Summary.ArgMax != 5 {
		t.Fatalf("t-test argmax = %d, want 5", p.Summary.ArgMax)
	}
	if p.Summary.Threshold != TVLATTestThreshold {
		t.Fatalf("threshold = %v", p.Summary.Threshold)
	}

	// Identically-distributed classes: no leak.
	flat := &trace.Set{}
	for i := 0; i < 400; i++ {
		flat.Append(trace.Trace{rng.NormFloat64(), rng.NormFloat64()}, i%2)
	}
	if p, err = TTestPair(flat, 0, 1, false); err != nil {
		t.Fatal(err)
	} else if p.Leaky {
		t.Fatalf("iid classes must not be leaky: %+v", p)
	}
}

func TestOverlapPOIs(t *testing.T) {
	shared, jac := OverlapPOIs([]int{1, 2, 3}, []int{2, 3, 4})
	if shared != 2 || math.Abs(jac-0.5) > 1e-12 {
		t.Fatalf("shared=%d jaccard=%v", shared, jac)
	}
	if shared, jac = OverlapPOIs(nil, nil); shared != 0 || jac != 0 {
		t.Fatalf("empty overlap = %d/%v", shared, jac)
	}
}

func TestComparePOISelectors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	set := syntheticSet(300, 24, 7, 3.0, 0.4, rng)
	o, err := ComparePOISelectors(set, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.SOSD) == 0 || len(o.SNR) == 0 {
		t.Fatalf("selector outputs empty: %+v", o)
	}
	// Both selectors must pick the single dominant leak point (SelectPOIs
	// returns index order, so membership is the invariant).
	contains := func(pois []int, want int) bool {
		for _, p := range pois {
			if p == want {
				return true
			}
		}
		return false
	}
	if !contains(o.SOSD, 7) || !contains(o.SNR, 7) {
		t.Fatalf("leak point 7 not selected: sosd=%v snr=%v", o.SOSD, o.SNR)
	}
	if o.Shared < 1 || o.Jaccard <= 0 {
		t.Fatalf("overlap = %+v", o)
	}
}

func TestTemplateHealthWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	set := syntheticSet(400, 24, 7, 3.0, 0.4, rng)
	tpl, err := BuildTemplates(set, TemplateOptions{POICount: 3, MinSpacing: 2, Ridge: 1e-3, Pooled: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := tpl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy() {
		t.Fatalf("well-conditioned templates flagged: %+v", h)
	}
	if h.Classes != 2 || !h.Pooled || h.POICount != 3 {
		t.Fatalf("health shape = %+v", h)
	}
	if h.TotalCount != 400 || h.MinClassCount != 200 {
		t.Fatalf("counts = %+v", h)
	}
	if h.ConditionNumber < 1 || math.IsInf(h.ConditionNumber, 1) {
		t.Fatalf("condition = %v", h.ConditionNumber)
	}
	if h.MinEigenvalue <= 0 || h.MinEigenvalue > h.MaxEigenvalue {
		t.Fatalf("eigen range = [%v, %v]", h.MinEigenvalue, h.MaxEigenvalue)
	}
}

func TestTemplateHealthFlagsStarvedClasses(t *testing.T) {
	// 4 traces per class for 3 POIs: count ≤ d+1 boundary → rank warning.
	rng := rand.New(rand.NewSource(11))
	set := syntheticSet(6, 24, 7, 3.0, 0.4, rng)
	tpl, err := BuildTemplates(set, TemplateOptions{POICount: 3, MinSpacing: 2, Ridge: 1e-3, Pooled: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := tpl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Healthy() {
		t.Fatalf("3 traces/class for 3 POIs must warn: %+v", h)
	}
	found := false
	for _, w := range h.Warnings {
		if strings.Contains(w, "rank-deficient") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing rank warning: %v", h.Warnings)
	}
}

func TestTemplateHealthFlagsIllConditioned(t *testing.T) {
	// Two POIs carrying (nearly) the same signal with a tiny ridge produce a
	// near-singular covariance.
	rng := rand.New(rand.NewSource(12))
	set := &trace.Set{}
	for i := 0; i < 200; i++ {
		label := i % 2
		base := rng.NormFloat64()*0.5 + float64(label)*3
		tr := trace.Trace{base, base + 1e-9*rng.NormFloat64(), rng.NormFloat64()}
		set.Append(tr, label)
	}
	tpl, err := BuildTemplatesAtPOIs(set, []int{0, 1}, TemplateOptions{POICount: 2, Ridge: 1e-15, Pooled: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := tpl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.ConditionNumber < HealthMaxCondition {
		t.Fatalf("duplicated POI should blow up conditioning, got %v", h.ConditionNumber)
	}
	if h.Healthy() {
		t.Fatalf("ill-conditioned templates must warn: %+v", h)
	}
}
