package sca

import (
	"fmt"
	"math"

	"reveal/internal/linalg"
	"reveal/internal/trace"
)

// Scorer is a reusable scoring context over one trained template set: all
// scratch buffers (POI feature vector, residual, triangular-solve
// workspace, per-class scores) are allocated once and reused across every
// scored sub-trace, eliminating the per-classification allocations of the
// map-based Templates API. One Scorer serves one goroutine; create one per
// worker for parallel classification.
//
// Every score is computed with exactly the floating-point operations of
// Templates.LogLikelihoods in the same order, so classifications and
// posteriors derived from a Scorer are bitwise identical to the per-vector
// path — the property the replay-determinism selftest enforces.
type Scorer struct {
	t        *Templates
	logTwoPi float64 // d·log(2π), shared additive constant of every score
	f        []float64
	resid    []float64
	y, x     []float64
	ll       []float64
}

// NewScorer prepares a reusable scoring context for the template set.
func (t *Templates) NewScorer() *Scorer {
	d := len(t.POIs)
	return &Scorer{
		t:        t,
		logTwoPi: float64(d) * math.Log(2*math.Pi),
		f:        make([]float64, d),
		resid:    make([]float64, d),
		y:        make([]float64, d),
		x:        make([]float64, d),
		ll:       make([]float64, len(t.classes)),
	}
}

// Templates returns the template set this scorer was built for.
func (s *Scorer) Templates() *Templates { return s.t }

// Classes returns the number of trained classes.
func (s *Scorer) Classes() int { return len(s.t.classes) }

// Label returns the class label at index ci (classes are in ascending
// label order, matching the rows of ScoreTrace's result).
func (s *Scorer) Label(ci int) int { return s.t.classes[ci].label }

// ScoreTrace extracts the POI features of tr and returns the per-class
// Gaussian log-likelihoods in class (ascending label) order. The returned
// slice is owned by the Scorer and overwritten by the next scoring call.
func (s *Scorer) ScoreTrace(tr trace.Trace) ([]float64, error) {
	pois := s.t.POIs
	if len(tr) <= pois[len(pois)-1] {
		return nil, fmt.Errorf("sca: trace of %d samples shorter than POI range", len(tr))
	}
	for i, p := range pois {
		s.f[i] = tr[p]
	}
	return s.ScoreVector(s.f)
}

// ScoreVector scores an already-extracted POI feature vector. The returned
// slice is owned by the Scorer and overwritten by the next scoring call.
func (s *Scorer) ScoreVector(f []float64) ([]float64, error) {
	if len(f) != len(s.t.POIs) {
		return nil, fmt.Errorf("sca: feature vector of %d entries, want %d", len(f), len(s.t.POIs))
	}
	for ci := range s.t.classes {
		c := &s.t.classes[ci]
		for i := range f {
			s.resid[i] = f[i] - c.mean[i]
		}
		// Mahalanobis distance via the cached Cholesky solve (bitwise
		// identical to factoring fresh; see linalg.CholFactor).
		if err := c.fact.SolveInto(s.x, s.y, s.resid); err != nil {
			return nil, err
		}
		mahal := linalg.Dot(s.resid, s.x)
		s.ll[ci] = -0.5 * (mahal + c.logDet + s.logTwoPi)
	}
	return s.ll, nil
}

// ArgMaxLabel returns the label of the highest score, replicating
// Templates.Classify's deterministic tie and NaN handling (first strict
// maximum in ascending class order).
func (s *Scorer) ArgMaxLabel(ll []float64) int {
	best, bestLL := 0, math.Inf(-1)
	first := true
	for ci := range s.t.classes {
		v := ll[ci]
		if first || v > bestLL {
			best, bestLL = s.t.classes[ci].label, v
			first = false
		}
	}
	return best
}

// PosteriorInto converts scores into a softmax posterior keyed by label,
// writing into dst (which should be empty), replicating
// Templates.Probabilities' accumulation order exactly: the normalizing sum
// runs in ascending class order, never map order.
func (s *Scorer) PosteriorInto(ll []float64, dst map[int]float64) {
	max := math.Inf(-1)
	for _, v := range ll {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for ci := range s.t.classes {
		e := math.Exp(ll[ci] - max)
		dst[s.t.classes[ci].label] = e
		sum += e
	}
	for l := range dst {
		dst[l] /= sum
	}
}

// PosteriorValues converts scores into a softmax posterior written into a
// per-class slice (dst[ci] = P(class ci), ascending label order), with the
// exact arithmetic of PosteriorInto — max-shifted exp and a normalizing sum
// accumulated in class order — but no map. dst must have len(ll) entries.
func (s *Scorer) PosteriorValues(ll, dst []float64) {
	max := math.Inf(-1)
	for _, v := range ll {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for ci, v := range ll {
		e := math.Exp(v - max)
		dst[ci] = e
		sum += e
	}
	for ci := range dst {
		dst[ci] /= sum
	}
}

// Posteriors converts scores into a freshly allocated posterior map.
func (s *Scorer) Posteriors(ll []float64) map[int]float64 {
	out := make(map[int]float64, len(ll))
	s.PosteriorInto(ll, out)
	return out
}

// ScoreBatch scores every trace of a sub-trace set in one pass over the
// pooled scratch buffers, returning an n×classes row-major score matrix
// (row i holds the per-class log-likelihoods of trs[i] in ascending label
// order). Only the result matrix is allocated.
func (s *Scorer) ScoreBatch(trs []trace.Trace) (*linalg.Matrix, error) {
	out := linalg.NewMatrix(len(trs), len(s.t.classes))
	for i, tr := range trs {
		ll, err := s.ScoreTrace(tr)
		if err != nil {
			return nil, fmt.Errorf("sca: scoring trace %d: %w", i, err)
		}
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], ll)
	}
	return out, nil
}

// ClassifyBatch classifies every trace of a sub-trace set through one
// reusable scoring context — the allocation-free equivalent of calling
// Classify in a loop, with bitwise-identical results.
func (t *Templates) ClassifyBatch(trs []trace.Trace) ([]int, error) {
	s := t.NewScorer()
	out := make([]int, len(trs))
	for i, tr := range trs {
		ll, err := s.ScoreTrace(tr)
		if err != nil {
			return nil, fmt.Errorf("sca: classifying trace %d: %w", i, err)
		}
		out[i] = s.ArgMaxLabel(ll)
	}
	return out, nil
}
