package sca

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// synthSet builds a labeled set where label k shifts the mean of a few
// samples; sigma controls the noise.
func synthSet(seed uint64, labels []int, perLabel, length int, sigma float64) *trace.Set {
	prng := sampler.NewXoshiro256(seed)
	s := &trace.Set{}
	for _, l := range labels {
		for i := 0; i < perLabel; i++ {
			tr := make(trace.Trace, length)
			for t := range tr {
				n, _ := sampler.NormFloat64(prng)
				tr[t] = n * sigma
			}
			// Informative samples at 3 and 7.
			tr[3] += float64(l) * 0.5
			tr[7] += float64(l*l) * 0.25
			s.Append(tr, l)
		}
	}
	return s
}

func TestSOSDFindsInformativeSamples(t *testing.T) {
	set := synthSet(1, []int{-2, -1, 0, 1, 2}, 50, 12, 0.05)
	scores, err := SOSD(set)
	if err != nil {
		t.Fatal(err)
	}
	// Samples 3 and 7 carry all the signal.
	best := SelectPOIs(scores, 2, 1)
	if len(best) != 2 || best[0] != 3 || best[1] != 7 {
		t.Errorf("POIs=%v want [3 7] (scores %v)", best, scores)
	}
}

func TestSOSTAndTTest(t *testing.T) {
	set := synthSet(2, []int{0, 1}, 80, 12, 0.05)
	scores, err := SOST(set)
	if err != nil {
		t.Fatal(err)
	}
	if SelectPOIs(scores, 1, 1)[0] != 3 {
		t.Errorf("SOST best POI %v", SelectPOIs(scores, 1, 1))
	}
	tt, err := TTest(set, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tt[3] < tt[0]*5 {
		t.Errorf("t-test at informative sample not dominant: %v vs %v", tt[3], tt[0])
	}
	if _, err := TTest(set, 0, 99); err == nil {
		t.Error("missing label should fail")
	}
}

func TestSOSDErrors(t *testing.T) {
	if _, err := SOSD(&trace.Set{}); err == nil {
		t.Error("empty set should fail")
	}
	one := &trace.Set{}
	one.Append(trace.Trace{1, 2}, 0)
	if _, err := SOSD(one); err == nil {
		t.Error("single class should fail")
	}
	ragged := &trace.Set{Traces: []trace.Trace{{1}, {1, 2}}, Labels: []int{0, 1}}
	if _, err := SOSD(ragged); err == nil {
		t.Error("ragged set should fail")
	}
}

func TestSelectPOIsSpacing(t *testing.T) {
	scores := []float64{10, 9, 8, 1, 7}
	pois := SelectPOIs(scores, 3, 2)
	// Best is 0; 1 conflicts (spacing), 2 ok; 4 ok.
	want := []int{0, 2, 4}
	if len(pois) != 3 {
		t.Fatalf("pois=%v", pois)
	}
	for i := range want {
		if pois[i] != want[i] {
			t.Errorf("pois=%v want %v", pois, want)
		}
	}
	if got := SelectPOIs(scores, 0, 1); got != nil {
		t.Error("count 0 should give nil")
	}
}

func TestTemplateClassification(t *testing.T) {
	labels := []int{-3, -1, 0, 2, 5}
	train := synthSet(3, labels, 60, 16, 0.05)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := tmpl.Labels()
	if len(got) != len(labels) {
		t.Fatalf("labels=%v", got)
	}
	// Fresh attack traces must classify correctly at this SNR.
	test := synthSet(4, labels, 20, 16, 0.05)
	conf := NewConfusion()
	for i, tr := range test.Traces {
		pred, err := tmpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		conf.Add(test.Labels[i], pred)
	}
	if acc := conf.OverallAccuracy(); acc < 0.95 {
		t.Errorf("accuracy %v too low at high SNR", acc)
	}
}

func TestTemplateProbabilitiesSumToOne(t *testing.T) {
	train := synthSet(5, []int{0, 1, 2}, 50, 12, 0.1)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := synthSet(6, []int{1}, 1, 12, 0.1)
	probs, err := tmpl.Probabilities(test.Traces[0])
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if best, _ := tmpl.Classify(test.Traces[0]); probs[best] < probs[0]-1e-12 {
		t.Error("classified label should have max probability")
	}
}

func TestPerClassCovariance(t *testing.T) {
	opts := DefaultTemplateOptions()
	opts.Pooled = false
	train := synthSet(7, []int{0, 3}, 80, 12, 0.1)
	tmpl, err := BuildTemplates(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := synthSet(8, []int{0, 3}, 10, 12, 0.1)
	correct := 0
	for i, tr := range test.Traces {
		pred, err := tmpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if pred == test.Labels[i] {
			correct++
		}
	}
	if correct < 18 {
		t.Errorf("per-class covariance classified %d/20", correct)
	}
}

func TestBuildTemplatesErrors(t *testing.T) {
	if _, err := BuildTemplates(&trace.Set{}, DefaultTemplateOptions()); err == nil {
		t.Error("empty set should fail")
	}
	set := synthSet(9, []int{0, 1}, 10, 12, 0.1)
	bad := DefaultTemplateOptions()
	bad.POICount = 0
	if _, err := BuildTemplates(set, bad); err == nil {
		t.Error("POICount 0 should fail")
	}
	bad = DefaultTemplateOptions()
	bad.Selector = "magic"
	if _, err := BuildTemplates(set, bad); err == nil {
		t.Error("unknown selector should fail")
	}
	if _, err := BuildTemplatesAtPOIs(set, []int{999}, DefaultTemplateOptions()); err == nil {
		t.Error("out-of-range POI should fail")
	}
	one := &trace.Set{}
	one.Append(trace.Trace{1, 2, 3}, 0)
	one.Append(trace.Trace{1, 2, 3}, 0)
	if _, err := BuildTemplatesAtPOIs(one, []int{0}, DefaultTemplateOptions()); err == nil {
		t.Error("single class should fail")
	}
}

func TestClassifyShortTrace(t *testing.T) {
	train := synthSet(10, []int{0, 1}, 30, 12, 0.1)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.Classify(trace.Trace{1, 2}); err == nil {
		t.Error("trace shorter than POI range should fail")
	}
}

func TestCombineProbabilities(t *testing.T) {
	a := map[int]float64{1: 0.5, 2: 0.5}
	b := map[int]float64{1: 0.9, 2: 0.1}
	c := CombineProbabilities(a, b)
	if math.Abs(c[1]-0.9) > 1e-12 || math.Abs(c[2]-0.1) > 1e-12 {
		t.Errorf("combine=%v", c)
	}
	// Degenerate zero product falls back to uniform.
	z := CombineProbabilities(map[int]float64{1: 1, 2: 0}, map[int]float64{1: 0, 2: 1})
	if math.Abs(z[1]-0.5) > 1e-12 {
		t.Errorf("degenerate combine=%v", z)
	}
	if CombineProbabilities() != nil {
		t.Error("no inputs should give nil")
	}
}

func TestConfusionMatrix(t *testing.T) {
	c := NewConfusion()
	for i := 0; i < 9; i++ {
		c.Add(1, 1)
	}
	c.Add(1, -1)
	c.Add(-1, -1)
	c.Add(0, 0)
	if c.Total(1) != 10 {
		t.Errorf("total=%d", c.Total(1))
	}
	if math.Abs(c.Accuracy(1)-0.9) > 1e-12 {
		t.Errorf("accuracy=%v", c.Accuracy(1))
	}
	if math.Abs(c.Rate(1, -1)-0.1) > 1e-12 {
		t.Errorf("rate=%v", c.Rate(1, -1))
	}
	if math.Abs(c.OverallAccuracy()-11.0/12) > 1e-12 {
		t.Errorf("overall=%v", c.OverallAccuracy())
	}
	// Sign collapse: the 1->-1 error is a sign error.
	if math.Abs(c.SignAccuracy()-11.0/12) > 1e-12 {
		t.Errorf("sign accuracy=%v", c.SignAccuracy())
	}
	labels := c.Labels()
	if len(labels) != 3 || labels[0] != -1 || labels[2] != 1 {
		t.Errorf("labels=%v", labels)
	}
	table := c.FormatTable(-1, 1)
	if !strings.Contains(table, "90.0") {
		t.Errorf("table missing 90.0:\n%s", table)
	}
	if c.Rate(99, 1) != 0 {
		t.Error("unseen label rate should be 0")
	}
	if NewConfusion().OverallAccuracy() != 0 || NewConfusion().SignAccuracy() != 0 {
		t.Error("empty confusion accuracies should be 0")
	}
}

func TestSignOf(t *testing.T) {
	if SignOf(5) != 1 || SignOf(-3) != -1 || SignOf(0) != 0 {
		t.Error("SignOf wrong")
	}
}

func BenchmarkClassify(b *testing.B) {
	train := synthSet(11, []int{-2, -1, 0, 1, 2}, 100, 32, 0.1)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		b.Fatal(err)
	}
	tr := train.Traces[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmpl.Classify(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTemplatesSerializationRoundTrip(t *testing.T) {
	train := synthSet(40, []int{-2, 0, 3}, 50, 16, 0.05)
	tmpl, err := BuildTemplates(train, DefaultTemplateOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTemplates(&buf, tmpl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTemplates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same labels, same POIs, identical classifications and likelihoods.
	gl, wl := got.Labels(), tmpl.Labels()
	if len(gl) != len(wl) {
		t.Fatalf("labels=%v want %v", gl, wl)
	}
	for i := range gl {
		if gl[i] != wl[i] {
			t.Fatalf("labels=%v want %v", gl, wl)
		}
	}
	test := synthSet(41, []int{-2, 0, 3}, 5, 16, 0.05)
	for _, tr := range test.Traces {
		a, err := tmpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("deserialized templates classify differently: %d vs %d", a, b)
		}
		la, err := tmpl.LogLikelihoods(tr)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := got.LogLikelihoods(tr)
		if err != nil {
			t.Fatal(err)
		}
		for l := range la {
			if math.Abs(la[l]-lb[l]) > 1e-12 {
				t.Fatalf("likelihood drift for label %d", l)
			}
		}
	}
}

func TestTemplatesSerializationErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTemplates(&buf, nil); err == nil {
		t.Error("nil templates should fail")
	}
	if _, err := ReadTemplates(strings.NewReader("JUNK")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadTemplates(strings.NewReader("SC")); err == nil {
		t.Error("truncated magic should fail")
	}
}

func TestSecondOrderPreprocess(t *testing.T) {
	traces := []trace.Trace{{1, 2, 3}, {3, 2, 1}}
	// Means: {2,2,2}; centered: {-1,0,1} and {1,0,-1}.
	out, err := SecondOrderPreprocess(traces, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Features per trace: (0,1),(0,2),(1,2) = 3.
	if len(out[0]) != 3 {
		t.Fatalf("features=%d want 3", len(out[0]))
	}
	// Trace 0: (-1)(0), (-1)(1), (0)(1) = 0, -1, 0.
	if out[0][0] != 0 || out[0][1] != -1 || out[0][2] != 0 {
		t.Errorf("trace0 features=%v", out[0])
	}
	if out[1][1] != -1 {
		t.Errorf("trace1 features=%v", out[1])
	}
	// Validation.
	if _, err := SecondOrderPreprocess(traces[:1], 2); err == nil {
		t.Error("single trace should fail")
	}
	if _, err := SecondOrderPreprocess(traces, 0); err == nil {
		t.Error("window 0 should fail")
	}
	ragged := []trace.Trace{{1, 2}, {1}}
	if _, err := SecondOrderPreprocess(ragged, 1); err == nil {
		t.Error("ragged traces should fail")
	}
}
