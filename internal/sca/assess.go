// Leakage-assessment diagnostics: SNR curves, Welch t-test (TVLA-style)
// summaries, POI-selection overlap, and template-health checks. These are
// the standard side-channel quality gauges (SNR as in RTL power-analysis
// practice, TVLA t-tests, template conditioning) surfaced so a campaign can
// tell whether its profiling set actually carries the paper's leakage
// before spending a full attack on it.
package sca

import (
	"fmt"
	"math"

	"reveal/internal/linalg"
	"reveal/internal/obs"
	"reveal/internal/trace"
)

// SNR returns the per-sample signal-to-noise ratio of a labeled set: the
// count-weighted variance of the class-conditional means over the
// count-weighted mean of the within-class variances. Samples where the
// class means separate far beyond the noise floor are the exploitable
// points of interest.
func SNR(set *trace.Set) ([]float64, error) {
	stats, err := computeClassStats(set)
	if err != nil {
		return nil, err
	}
	if len(stats) < 2 {
		return nil, fmt.Errorf("sca: SNR needs at least 2 classes, got %d", len(stats))
	}
	n := len(stats[0].mean)
	total := 0
	for i := range stats {
		total += stats[i].count
	}
	const eps = 1e-12
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		grand := 0.0
		for i := range stats {
			grand += float64(stats[i].count) * stats[i].mean[t]
		}
		grand /= float64(total)
		signal, noise := 0.0, 0.0
		for i := range stats {
			w := float64(stats[i].count) / float64(total)
			d := stats[i].mean[t] - grand
			signal += w * d * d
			noise += w * stats[i].variance(t)
		}
		out[t] = signal / (noise + eps)
	}
	return out, nil
}

// CurveSummary condenses a per-sample diagnostic curve (SNR, |t|) into the
// numbers a report keeps: the peak, its location, the mean, and how many
// samples clear the given threshold. The full curve rides along only when
// requested, so reports stay small by default.
type CurveSummary struct {
	Max            float64   `json:"max"`
	ArgMax         int       `json:"argmax"`
	Mean           float64   `json:"mean"`
	Threshold      float64   `json:"threshold,omitempty"`
	AboveThreshold int       `json:"above_threshold,omitempty"`
	Curve          []float64 `json:"curve,omitempty"`
}

// SummarizeCurve builds a CurveSummary; keepCurve embeds the raw samples.
func SummarizeCurve(curve []float64, threshold float64, keepCurve bool) CurveSummary {
	s := CurveSummary{Threshold: threshold}
	sum := 0.0
	for i, v := range curve {
		sum += v
		if v > s.Max || i == 0 {
			s.Max, s.ArgMax = v, i
		}
		if threshold > 0 && v > threshold {
			s.AboveThreshold++
		}
	}
	if len(curve) > 0 {
		s.Mean = sum / float64(len(curve))
	}
	if keepCurve {
		s.Curve = append([]float64(nil), curve...)
	}
	return s
}

// PairTTest is the Welch t-test summary between two class labels of the
// profiling set — the TVLA-style evidence that the two values are
// distinguishable in a single trace.
type PairTTest struct {
	LabelA  int          `json:"label_a"`
	LabelB  int          `json:"label_b"`
	Summary CurveSummary `json:"summary"`
	// Leaky reports Summary.Max above the conventional 4.5 TVLA bound.
	Leaky bool `json:"leaky"`
}

// TVLATTestThreshold is the conventional |t| pass/fail bound.
const TVLATTestThreshold = 4.5

// TTestPair runs the Welch t-test between two labels and summarizes it
// against the TVLA threshold.
func TTestPair(set *trace.Set, labelA, labelB int, keepCurve bool) (PairTTest, error) {
	curve, err := TTest(set, labelA, labelB)
	if err != nil {
		return PairTTest{}, err
	}
	p := PairTTest{
		LabelA:  labelA,
		LabelB:  labelB,
		Summary: SummarizeCurve(curve, TVLATTestThreshold, keepCurve),
	}
	p.Leaky = p.Summary.Max > TVLATTestThreshold
	return p, nil
}

// POIOverlap reports how well two POI selectors agree on the top-k sample
// indices — e.g. the paper's SOSD choice against the SNR ranking. Low
// overlap means the selector choice matters and deserves an ablation.
type POIOverlap struct {
	K       int     `json:"k"`
	SOSD    []int   `json:"sosd"`
	SNR     []int   `json:"snr"`
	Shared  int     `json:"shared"`
	Jaccard float64 `json:"jaccard"`
}

// OverlapPOIs computes the intersection size and Jaccard index of two POI
// index sets.
func OverlapPOIs(a, b []int) (shared int, jaccard float64) {
	inA := make(map[int]bool, len(a))
	for _, p := range a {
		inA[p] = true
	}
	for _, p := range b {
		if inA[p] {
			shared++
		}
	}
	union := len(a) + len(b) - shared
	if union > 0 {
		jaccard = float64(shared) / float64(union)
	}
	return shared, jaccard
}

// ComparePOISelectors selects top-k POIs by SOSD and by SNR under the same
// spacing constraint and reports their overlap.
func ComparePOISelectors(set *trace.Set, k, minSpacing int) (*POIOverlap, error) {
	sosd, err := SOSD(set)
	if err != nil {
		return nil, err
	}
	snr, err := SNR(set)
	if err != nil {
		return nil, err
	}
	o := &POIOverlap{
		K:    k,
		SOSD: SelectPOIs(sosd, k, minSpacing),
		SNR:  SelectPOIs(snr, k, minSpacing),
	}
	o.Shared, o.Jaccard = OverlapPOIs(o.SOSD, o.SNR)
	return o, nil
}

// Template-health bounds: past these the Gaussian templates are considered
// ill-conditioned and the attack's posteriors unreliable.
const (
	// HealthMaxCondition flags a covariance whose eigenvalue spread makes
	// the Mahalanobis solve numerically fragile.
	HealthMaxCondition = 1e8
	// HealthMinEigenvalue flags a covariance that has collapsed (POIs
	// linearly dependent despite the ridge).
	HealthMinEigenvalue = 1e-12
)

// TemplateHealth is the conditioning report of a trained template set: the
// covariance spectrum, the per-class trace counts, and the structured
// warnings a campaign should act on before trusting the classifier.
type TemplateHealth struct {
	Classes       int  `json:"classes"`
	POICount      int  `json:"poi_count"`
	Pooled        bool `json:"pooled"`
	TotalCount    int  `json:"total_count"`
	MinClassCount int  `json:"min_class_count"`
	MinClassLabel int  `json:"min_class_label"`
	// ConditionNumber is the worst covariance eigenvalue ratio λmax/λmin
	// across classes (one shared value for pooled covariance).
	ConditionNumber float64 `json:"condition_number"`
	MinEigenvalue   float64 `json:"min_eigenvalue"`
	MaxEigenvalue   float64 `json:"max_eigenvalue"`
	// PerClassCount maps label → profiling traces behind its template.
	PerClassCount map[int]int `json:"per_class_count"`
	Warnings      []string    `json:"warnings,omitempty"`
}

// Healthy reports whether no warnings were raised.
func (h *TemplateHealth) Healthy() bool { return len(h.Warnings) == 0 }

// Health checks the conditioning of a trained template set: covariance
// condition number and minimum eigenvalue (worst class for per-class
// covariances), per-class trace counts against the feature dimension, and
// emits structured warnings — also mirrored to the observability log — when
// the templates are ill-conditioned.
func (t *Templates) Health() (*TemplateHealth, error) {
	if len(t.classes) == 0 {
		return nil, fmt.Errorf("sca: health check on empty template set")
	}
	d := len(t.POIs)
	h := &TemplateHealth{
		Classes:       len(t.classes),
		POICount:      d,
		Pooled:        t.pooled,
		MinEigenvalue: math.Inf(1),
		PerClassCount: make(map[int]int, len(t.classes)),
	}
	first := true
	for _, c := range t.classes {
		h.TotalCount += c.count
		h.PerClassCount[c.label] = c.count
		if first || c.count < h.MinClassCount {
			h.MinClassCount, h.MinClassLabel = c.count, c.label
		}
		first = false
	}
	spectrum := func(c classTemplate) error {
		cov, err := c.chol.Mul(c.chol.Transpose())
		if err != nil {
			return err
		}
		vals, _, err := linalg.EigSym(cov, 0, 0)
		if err != nil {
			return fmt.Errorf("sca: covariance spectrum of class %d: %w", c.label, err)
		}
		maxEig, minEig := vals[0], vals[len(vals)-1]
		if maxEig > h.MaxEigenvalue {
			h.MaxEigenvalue = maxEig
		}
		if minEig < h.MinEigenvalue {
			h.MinEigenvalue = minEig
		}
		cond := math.Inf(1)
		if minEig > 0 {
			cond = maxEig / minEig
		}
		if cond > h.ConditionNumber {
			h.ConditionNumber = cond
		}
		return nil
	}
	if t.pooled {
		// All classes share one covariance; one spectrum suffices.
		if err := spectrum(t.classes[0]); err != nil {
			return nil, err
		}
	} else {
		for _, c := range t.classes {
			if err := spectrum(c); err != nil {
				return nil, err
			}
		}
	}

	if h.Classes < 2 {
		h.Warnings = append(h.Warnings, fmt.Sprintf(
			"only %d class: nothing to discriminate", h.Classes))
	}
	if h.MinClassCount <= d {
		h.Warnings = append(h.Warnings, fmt.Sprintf(
			"class %d has %d traces for %d POIs: covariance estimate is rank-deficient without pooling/ridge",
			h.MinClassLabel, h.MinClassCount, d))
	}
	if h.ConditionNumber > HealthMaxCondition {
		h.Warnings = append(h.Warnings, fmt.Sprintf(
			"covariance condition number %.3g exceeds %.0e: Mahalanobis distances are numerically fragile",
			h.ConditionNumber, HealthMaxCondition))
	}
	if h.MinEigenvalue < HealthMinEigenvalue {
		h.Warnings = append(h.Warnings, fmt.Sprintf(
			"minimum covariance eigenvalue %.3g below %.0e: POIs nearly linearly dependent, raise Ridge or MinSpacing",
			h.MinEigenvalue, HealthMinEigenvalue))
	}
	for _, w := range h.Warnings {
		obs.Log().Warn("template health", "warning", w,
			"classes", h.Classes, "pois", d, "condition", h.ConditionNumber)
	}
	return h, nil
}
