package sca_test

// Property-based tests of the template-attack posterior math: softmax
// normalization, combination, and bitwise determinism — the invariants the
// replay gate and the paper's probability-ranked key repair rely on.

import (
	"math"
	"testing"

	"reveal/internal/sca"
	"reveal/internal/testkit"
	"reveal/internal/trace"
)

// synthSet builds a labeled set of three well-separated classes with mild
// seeded Gaussian-ish noise.
func synthSet(r *testkit.RNG, perClass, length int) *trace.Set {
	set := &trace.Set{}
	for label := -1; label <= 1; label++ {
		for k := 0; k < perClass; k++ {
			tr := make(trace.Trace, length)
			for i := range tr {
				base := float64(label) * math.Sin(float64(i)/3)
				tr[i] = base + 0.1*(r.Float64()-0.5)
			}
			set.Append(tr, label)
		}
	}
	return set
}

func buildSynthTemplates(t *testing.T, r *testkit.RNG) *sca.Templates {
	t.Helper()
	set := synthSet(r, 30, 40)
	opts := sca.DefaultTemplateOptions()
	opts.POICount = 8
	tpl, err := sca.BuildTemplates(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestProbabilitiesNormalized(t *testing.T) {
	r := testkit.NewRNG(61)
	tpl := buildSynthTemplates(t, r)
	labels := tpl.Labels()
	for iter := 0; iter < 50; iter++ {
		tr := make(trace.Trace, 40)
		for i := range tr {
			tr[i] = 4 * (r.Float64() - 0.5) // arbitrary, not class-shaped
		}
		probs, err := tpl.Probabilities(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(probs) != len(labels) {
			t.Fatalf("posterior has %d classes, templates have %d", len(probs), len(labels))
		}
		sum := 0.0
		for _, l := range labels {
			p, ok := probs[l]
			if !ok {
				t.Fatalf("posterior missing label %d", l)
			}
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("posterior[%d] = %v", l, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
	}
}

// TestProbabilitiesBitwiseDeterministic: scoring the same trace twice must
// give bit-identical posteriors — the invariant PR 3's map-order fix
// established and the replay-determinism gate depends on.
func TestProbabilitiesBitwiseDeterministic(t *testing.T) {
	r := testkit.NewRNG(62)
	tpl := buildSynthTemplates(t, r)
	tr := make(trace.Trace, 40)
	for i := range tr {
		tr[i] = 2 * (r.Float64() - 0.5)
	}
	first, err := tpl.Probabilities(tr)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 20; rep++ {
		again, err := tpl.Probabilities(tr)
		if err != nil {
			t.Fatal(err)
		}
		for l, p := range first {
			if math.Float64bits(again[l]) != math.Float64bits(p) {
				t.Fatalf("rep %d label %d: %x != %x", rep, l,
					math.Float64bits(again[l]), math.Float64bits(p))
			}
		}
	}
}

func TestClassifyRecoversClassShape(t *testing.T) {
	r := testkit.NewRNG(63)
	tpl := buildSynthTemplates(t, r)
	for label := -1; label <= 1; label++ {
		tr := make(trace.Trace, 40)
		for i := range tr {
			tr[i] = float64(label) * math.Sin(float64(i)/3)
		}
		got, err := tpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != label {
			t.Errorf("noiseless class-%d trace classified as %d", label, got)
		}
	}
}

func TestCombineProbabilitiesProperties(t *testing.T) {
	labels := []int{-1, 0, 1}
	p := map[int]float64{-1: 0.2, 0: 0.5, 1: 0.3}
	uniform := map[int]float64{-1: 1.0 / 3, 0: 1.0 / 3, 1: 1.0 / 3}

	// Combining with the uniform posterior must be the identity.
	got := sca.CombineProbabilities(p, uniform)
	for _, l := range labels {
		if math.Abs(got[l]-p[l]) > 1e-12 {
			t.Fatalf("uniform combine changed label %d: %v -> %v", l, p[l], got[l])
		}
	}

	// Self-combination squares and renormalizes.
	got = sca.CombineProbabilities(p, p)
	z := 0.04 + 0.25 + 0.09
	want := map[int]float64{-1: 0.04 / z, 0: 0.25 / z, 1: 0.09 / z}
	sum := 0.0
	for _, l := range labels {
		if math.Abs(got[l]-want[l]) > 1e-12 {
			t.Fatalf("self-combine label %d: %v, want %v", l, got[l], want[l])
		}
		sum += got[l]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("combined posterior sums to %v", sum)
	}

	// A zero product must fall back to uniform, not NaN.
	a := map[int]float64{-1: 1, 0: 0, 1: 0}
	b := map[int]float64{-1: 0, 0: 1, 1: 0}
	got = sca.CombineProbabilities(a, b)
	for _, l := range labels {
		if math.Abs(got[l]-1.0/3) > 1e-12 {
			t.Fatalf("degenerate combine label %d: %v, want 1/3", l, got[l])
		}
	}
}
