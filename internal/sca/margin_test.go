package sca

import (
	"math"
	"testing"
)

func TestTopMargin(t *testing.T) {
	cases := []struct {
		name   string
		probs  map[int]float64
		margin float64
		ok     bool
	}{
		{"empty", nil, 0, false},
		{"single", map[int]float64{3: 0.9}, 0.9, true},
		{"two", map[int]float64{-1: 0.7, 2: 0.2}, 0.5, true},
		{"many", map[int]float64{0: 0.5, 1: 0.3, 2: 0.15, 3: 0.05}, 0.2, true},
		{"tied", map[int]float64{0: 0.4, 1: 0.4, 2: 0.2}, 0, true},
	}
	for _, tc := range cases {
		m, ok := TopMargin(tc.probs)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
		}
		if math.Abs(m-tc.margin) > 1e-12 {
			t.Errorf("%s: margin = %v, want %v", tc.name, m, tc.margin)
		}
	}
}
