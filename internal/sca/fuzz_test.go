package sca_test

// FuzzTemplateScore: template scoring on adversarial traces — arbitrary
// float patterns including NaN, ±Inf and huge magnitudes — must never
// panic, and for plausibly-scaled finite inputs must return a normalized
// posterior over exactly the trained labels.

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"reveal/internal/sca"
	"reveal/internal/testkit"
	"reveal/internal/trace"
)

var fuzzTemplates struct {
	once sync.Once
	tpl  *sca.Templates
	err  error
}

func fuzzTpl() (*sca.Templates, error) {
	fuzzTemplates.once.Do(func() {
		r := testkit.NewRNG(71)
		set := synthSet(r, 30, 40)
		opts := sca.DefaultTemplateOptions()
		opts.POICount = 8
		fuzzTemplates.tpl, fuzzTemplates.err = sca.BuildTemplates(set, opts)
	})
	return fuzzTemplates.tpl, fuzzTemplates.err
}

// samplesFromBytes reinterprets fuzz bytes as float64 samples, padded to
// the trace length the templates were trained on.
func samplesFromBytes(data []byte, length int) trace.Trace {
	tr := make(trace.Trace, length)
	for i := 0; i < length; i++ {
		if (i+1)*8 <= len(data) {
			tr[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
	}
	return tr
}

func FuzzTemplateScore(f *testing.F) {
	mk := func(vals ...float64) []byte {
		out := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
		}
		return out
	}
	f.Add(mk(0, 0.5, -0.5, 1, -1))
	f.Add(mk(math.NaN(), math.Inf(1), math.Inf(-1)))
	f.Add(mk(1e308, -1e308, 1e-308))
	f.Add(mk())
	f.Add([]byte{1, 2, 3}) // not even one float
	f.Fuzz(func(t *testing.T, data []byte) {
		tpl, err := fuzzTpl()
		if err != nil {
			t.Fatal(err)
		}
		tr := samplesFromBytes(data, 40)
		probs, err := tpl.Probabilities(tr)
		if err != nil {
			return
		}
		labels := tpl.Labels()
		if len(probs) != len(labels) {
			t.Fatalf("posterior over %d classes, trained %d", len(probs), len(labels))
		}
		wellScaled := true
		for _, v := range tr {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				wellScaled = false
				break
			}
		}
		if !wellScaled {
			return // only the no-panic guarantee applies
		}
		sum := 0.0
		for _, l := range labels {
			p := probs[l]
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("posterior[%d] = %v for finite input", l, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("posterior sums to %v for finite input", sum)
		}
		// Classify must agree with the posterior argmax's existence (no
		// error once Probabilities succeeded).
		if _, err := tpl.Classify(tr); err != nil {
			t.Fatalf("Classify failed after Probabilities succeeded: %v", err)
		}
	})
}
