package sca

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestConfusionRates(t *testing.T) {
	c := NewConfusion()
	c.Add(1, 1)
	c.Add(1, 1)
	c.Add(1, -1)
	c.Add(0, 0)

	if got := c.Rate(1, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Rate(1,1) = %v, want 2/3", got)
	}
	if got := c.Rate(1, -1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Rate(1,-1) = %v, want 1/3", got)
	}
	// Unseen labels must read as 0, not panic or NaN.
	if got := c.Rate(42, 1); got != 0 {
		t.Fatalf("Rate on unseen true label = %v, want 0", got)
	}
	if got := c.Rate(1, 42); got != 0 {
		t.Fatalf("Rate on unseen prediction = %v, want 0", got)
	}
	if got := c.Accuracy(42); got != 0 {
		t.Fatalf("Accuracy on unseen label = %v, want 0", got)
	}
	if got := c.OverallAccuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("OverallAccuracy = %v, want 0.75", got)
	}
	if got := NewConfusion().OverallAccuracy(); got != 0 {
		t.Fatalf("empty OverallAccuracy = %v, want 0", got)
	}
}

func TestSignAccuracy(t *testing.T) {
	c := NewConfusion()
	c.Add(2, 1)   // value wrong, sign right
	c.Add(-3, -1) // value wrong, sign right
	c.Add(0, 0)   // exact
	c.Add(1, -1)  // sign wrong

	if got := c.SignAccuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SignAccuracy = %v, want 0.75", got)
	}
	if got := c.OverallAccuracy(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("OverallAccuracy = %v, want 0.25", got)
	}
	if got := NewConfusion().SignAccuracy(); got != 0 {
		t.Fatalf("empty SignAccuracy = %v, want 0", got)
	}
	for v, want := range map[int]int{-7: -1, -1: -1, 0: 0, 1: 1, 19: 1} {
		if got := SignOf(v); got != want {
			t.Fatalf("SignOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestFormatTableClipsLabels(t *testing.T) {
	c := NewConfusion()
	c.Add(-9, -9) // outside [-7, 7]: clipped like the paper's Table I
	c.Add(-2, -2)
	c.Add(0, 0)
	c.Add(3, 3)
	c.Add(3, 2)
	c.Add(8, 8) // outside

	out := c.FormatTable(-7, 7)
	if strings.Contains(out, "-9") || strings.Contains(out, " 8") {
		t.Fatalf("labels outside [-7,7] must be clipped:\n%s", out)
	}
	for _, want := range []string{"-2", "0", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("label %s missing:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one row per surviving label (-2, 0, 2, 3).
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Column = true label: Rate(3, 3) = 50%.
	if !strings.Contains(out, "50.0") {
		t.Fatalf("expected 50.0%% cell for true label 3:\n%s", out)
	}
}

func TestConfusionSummaryRoundTrip(t *testing.T) {
	c := NewConfusion()
	c.Add(1, 1)
	c.Add(1, 2)
	c.Add(-1, -1)

	s := c.Summary()
	if math.Abs(s.OverallAccuracy-2.0/3) > 1e-12 {
		t.Fatalf("summary overall = %v", s.OverallAccuracy)
	}
	if s.SignAccuracy != 1 {
		t.Fatalf("summary sign = %v, want 1 (1→2 keeps sign)", s.SignAccuracy)
	}
	if s.PerLabelTotal[1] != 2 || s.PerLabelTotal[-1] != 1 {
		t.Fatalf("per-label totals = %v", s.PerLabelTotal)
	}
	if math.Abs(s.PerLabelAccuracy[1]-0.5) > 1e-12 {
		t.Fatalf("per-label accuracy = %v", s.PerLabelAccuracy)
	}

	// The summary must survive a JSON round trip (manifest results path).
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ConfusionSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.OverallAccuracy != s.OverallAccuracy || back.SignAccuracy != s.SignAccuracy {
		t.Fatalf("round trip changed headline rates: %+v vs %+v", back, s)
	}
	if back.PerLabelAccuracy[1] != s.PerLabelAccuracy[1] || back.PerLabelTotal[-1] != s.PerLabelTotal[-1] {
		t.Fatalf("round trip changed per-label maps: %+v vs %+v", back, s)
	}
}

func TestConfusionCountsDeepCopy(t *testing.T) {
	c := NewConfusion()
	c.Add(1, 1)
	counts := c.Counts()
	counts[1][1] = 99
	if c.Rate(1, 1) != 1 {
		t.Fatal("Counts must deep-copy, mutation leaked back")
	}
}
