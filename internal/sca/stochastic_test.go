package sca

import (
	"testing"

	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// bitLeakSet synthesizes traces leaking a bit-weighted sum of the label's
// bits at sample 4 (plus a constant and noise): the exact model class the
// stochastic approach fits.
func bitLeakSet(seed uint64, labels []int, perLabel int, weights []float64, noise float64) *trace.Set {
	prng := sampler.NewXoshiro256(seed)
	s := &trace.Set{}
	for _, l := range labels {
		for i := 0; i < perLabel; i++ {
			tr := make(trace.Trace, 10)
			for t := range tr {
				n, _ := sampler.NormFloat64(prng)
				tr[t] = 1.0 + n*noise
			}
			v := uint32(l)
			for b, w := range weights {
				tr[4] += w * float64((v>>b)&1)
				// A second leaky sample with permuted weights (the V3
				// analogue) breaks weighted-sum collisions between labels.
				tr[7] += weights[(b+1)%len(weights)] * float64((v>>b)&1)
			}
			s.Append(tr, l)
		}
	}
	return s
}

func TestStochasticRecoversBitWeights(t *testing.T) {
	weights := []float64{0.11, 0.08, 0.14, 0.09}
	labels := []int{0, 1, 2, 3, 5, 6, 7, 9, 10, 12, 15}
	set := bitLeakSet(1, labels, 30, weights, 0.01)
	basis := BitBasis(4, func(l int) uint32 { return uint32(l) })
	m, err := FitStochastic(set, basis, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted coefficients at the leaking sample must match the planted
	// weights.
	for b, w := range weights {
		got := m.Beta.At(b+1, 4)
		if got < w-0.02 || got > w+0.02 {
			t.Errorf("bit %d weight %.3f want %.3f", b, got, w)
		}
	}
	// Classification: fresh traces of every label, including values NEVER
	// seen in profiling (4, 8, 11, 13, 14) — the stochastic model
	// extrapolates where plain templates cannot.
	m.Labels = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	test := bitLeakSet(2, all, 6, weights, 0.01)
	ok := 0
	for i, tr := range test.Traces {
		pred, err := m.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		if pred == test.Labels[i] {
			ok++
		}
	}
	if acc := float64(ok) / float64(test.Len()); acc < 0.9 {
		t.Errorf("stochastic accuracy %.3f (including unseen labels)", acc)
	}
}

func TestStochasticValidation(t *testing.T) {
	basis := BitBasis(4, func(l int) uint32 { return uint32(l) })
	if _, err := FitStochastic(&trace.Set{}, basis, 3); err == nil {
		t.Error("empty set should fail")
	}
	set := bitLeakSet(3, []int{0, 1, 2, 3, 5, 7}, 10, []float64{0.1, 0.1, 0.1, 0.1}, 0.01)
	if _, err := FitStochastic(set, nil, 3); err == nil {
		t.Error("nil basis should fail")
	}
	if _, err := FitStochastic(set, basis, 0); err == nil {
		t.Error("poiCount 0 should fail")
	}
	// A constant-label set has a degenerate design matrix.
	degenerate := bitLeakSet(4, []int{5}, 20, []float64{0.1, 0.1, 0.1, 0.1}, 0.01)
	if _, err := FitStochastic(degenerate, basis, 3); err == nil {
		t.Error("single-label set should fail")
	}
	m, err := FitStochastic(set, basis, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Classify(trace.Trace{1}); err == nil {
		t.Error("short trace should fail")
	}
}

// The stochastic model needs fewer profiling traces than per-class
// templates at equal accuracy (it shares statistical strength across
// classes through the basis).
func TestStochasticBeatsTemplatesAtLowProfile(t *testing.T) {
	weights := []float64{0.12, 0.07, 0.15, 0.1}
	labels := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	// Tiny profiling budget: 4 traces per class.
	train := bitLeakSet(5, labels, 4, weights, 0.02)
	basis := BitBasis(4, func(l int) uint32 { return uint32(l) })
	sm, err := FitStochastic(train, basis, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultTemplateOptions()
	opts.POICount = 3
	opts.MinSpacing = 1
	tm, err := BuildTemplates(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := bitLeakSet(6, labels, 10, weights, 0.02)
	smOK, tmOK := 0, 0
	for i, tr := range test.Traces {
		if p, err := sm.Classify(tr); err == nil && p == test.Labels[i] {
			smOK++
		}
		if p, err := tm.Classify(tr); err == nil && p == test.Labels[i] {
			tmOK++
		}
	}
	if smOK < tmOK {
		t.Errorf("stochastic %d/%d should not trail templates %d/%d at this profiling budget",
			smOK, test.Len(), tmOK, test.Len())
	}
	if smOK < test.Len()*3/4 {
		t.Errorf("stochastic accuracy too low: %d/%d", smOK, test.Len())
	}
}
