package sca

import (
	"testing"

	"reveal/internal/sampler"
	"reveal/internal/trace"
)

// cpaTraces synthesizes traces leaking HW(secret ^ input[k]) at sample 5.
func cpaTraces(secret uint32, inputs []uint32, noise float64, seed uint64) []trace.Trace {
	prng := sampler.NewXoshiro256(seed)
	out := make([]trace.Trace, len(inputs))
	for k, in := range inputs {
		tr := make(trace.Trace, 12)
		for t := range tr {
			n, _ := sampler.NormFloat64(prng)
			tr[t] = n * noise
		}
		v := secret ^ in
		hw := 0
		for ; v != 0; v &= v - 1 {
			hw++
		}
		tr[5] += 0.1 * float64(hw)
		out[k] = tr
	}
	return out
}

func TestCPARecoversRepeatingSecret(t *testing.T) {
	const secret = 0xA7
	prng := sampler.NewXoshiro256(9)
	const nTraces = 300
	inputs := make([]uint32, nTraces)
	for i := range inputs {
		inputs[i] = uint32(prng.Uint64() & 0xff)
	}
	traces := cpaTraces(secret, inputs, 0.05, 10)

	candidates := make([]uint32, 256)
	for i := range candidates {
		candidates[i] = uint32(i)
	}
	preds := HWPredictions(candidates, nTraces, func(c uint32, k int) uint32 {
		return c ^ inputs[k]
	})
	res, err := CPA(traces, preds)
	if err != nil {
		t.Fatal(err)
	}
	if candidates[res.BestHypothesis] != secret {
		t.Errorf("CPA recovered %#x want %#x", candidates[res.BestHypothesis], secret)
	}
	if res.BestSample != 5 {
		t.Errorf("CPA peaked at sample %d, leakage is at 5", res.BestSample)
	}
}

// With fresh randomness per trace (the BFV encryption situation), CPA has
// nothing to correlate — the paper's point about multi-trace attacks.
func TestCPAFailsOnFreshRandomness(t *testing.T) {
	prng := sampler.NewXoshiro256(11)
	const nTraces = 300
	inputs := make([]uint32, nTraces)
	secrets := make([]uint32, nTraces) // a fresh secret every run
	for i := range inputs {
		inputs[i] = uint32(prng.Uint64() & 0xff)
		secrets[i] = uint32(prng.Uint64() & 0xff)
	}
	traces := make([]trace.Trace, nTraces)
	for k := range traces {
		traces[k] = cpaTraces(secrets[k], inputs[k:k+1], 0.05, uint64(12+k))[0]
	}
	candidates := make([]uint32, 256)
	for i := range candidates {
		candidates[i] = uint32(i)
	}
	preds := HWPredictions(candidates, nTraces, func(c uint32, k int) uint32 {
		return c ^ inputs[k]
	})
	res, err := CPA(traces, preds)
	if err != nil {
		t.Fatal(err)
	}
	// No hypothesis should stand out: peak correlation stays small.
	if res.Scores[res.BestHypothesis] > 0.5 {
		t.Errorf("CPA found correlation %.3f against fresh randomness",
			res.Scores[res.BestHypothesis])
	}
}

func TestCPAValidation(t *testing.T) {
	one := []trace.Trace{{1, 2}}
	if _, err := CPA(one, [][]float64{{1}}); err == nil {
		t.Error("single trace should fail")
	}
	two := []trace.Trace{{1, 2}, {3, 4}}
	if _, err := CPA(two, nil); err == nil {
		t.Error("no hypotheses should fail")
	}
	if _, err := CPA(two, [][]float64{{1}}); err == nil {
		t.Error("prediction length mismatch should fail")
	}
	ragged := []trace.Trace{{1, 2}, {3}}
	if _, err := CPA(ragged, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged traces should fail")
	}
	// All-constant predictions are degenerate.
	if _, err := CPA(two, [][]float64{{5, 5}}); err == nil {
		t.Error("constant-only hypotheses should fail")
	}
}

func TestHWPredictions(t *testing.T) {
	preds := HWPredictions([]uint32{0, 1, 3, 255}, 2, func(c uint32, k int) uint32 {
		return c
	})
	want := []float64{0, 1, 2, 8}
	for h := range preds {
		for k := 0; k < 2; k++ {
			if preds[h][k] != want[h] {
				t.Errorf("pred[%d][%d]=%v want %v", h, k, preds[h][k], want[h])
			}
		}
	}
}
