package sca

import (
	"math"
	"testing"

	"reveal/internal/trace"
)

func TestFitLDASeparatesClasses(t *testing.T) {
	// Three classes separated along a diagonal direction the axes miss.
	set := synthSet(61, []int{-1, 0, 1}, 80, 12, 0.05)
	lda, err := FitLDA(set, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if lda.Components() != 2 {
		t.Fatalf("components=%d want 2 (3 classes)", lda.Components())
	}
	// Projected class means must be well separated relative to scatter.
	proj, err := lda.TransformSet(set)
	if err != nil {
		t.Fatal(err)
	}
	groups := proj.ByLabel()
	means := map[int]float64{}
	for label, idxs := range groups {
		m := 0.0
		for _, idx := range idxs {
			m += proj.Traces[idx][0]
		}
		means[label] = m / float64(len(idxs))
	}
	spread := math.Abs(means[-1]-means[1]) + math.Abs(means[0]-means[1])
	if spread < 1 {
		t.Errorf("projected class means too close: %v", means)
	}
	// Templates on LDA components classify accurately.
	tmpl, err := BuildTemplatesAtPOIs(proj, lda.AllPOIs(), DefaultTemplateOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := synthSet(62, []int{-1, 0, 1}, 20, 12, 0.05)
	testProj, err := lda.TransformSet(test)
	if err != nil {
		t.Fatal(err)
	}
	conf := NewConfusion()
	for i, tr := range testProj.Traces {
		pred, err := tmpl.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		conf.Add(testProj.Labels[i], pred)
	}
	if acc := conf.OverallAccuracy(); acc < 0.9 {
		t.Errorf("LDA-template accuracy %.3f too low", acc)
	}
}

func TestLDAComponentCap(t *testing.T) {
	set := synthSet(63, []int{0, 1}, 40, 12, 0.05)
	lda, err := FitLDA(set, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if lda.Components() != 1 {
		t.Errorf("2 classes allow only 1 component, got %d", lda.Components())
	}
}

func TestLDAValidation(t *testing.T) {
	if _, err := FitLDA(&trace.Set{}, 1, 0); err == nil {
		t.Error("empty set should fail")
	}
	one := &trace.Set{}
	one.Append(trace.Trace{1, 2}, 0)
	if _, err := FitLDA(one, 1, 0); err == nil {
		t.Error("single class should fail")
	}
	set := synthSet(64, []int{0, 1}, 10, 12, 0.05)
	if _, err := FitLDA(set, 0, 0); err == nil {
		t.Error("0 components should fail")
	}
	lda, err := FitLDA(set, 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lda.Transform(trace.Trace{1}); err == nil {
		t.Error("wrong-length trace should fail")
	}
}
