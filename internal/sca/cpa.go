package sca

import (
	"fmt"
	"math"

	"reveal/internal/trace"
)

// Correlation power analysis (CPA) — the classic *multi-trace* attack the
// paper contrasts itself with (§I: multi-trace attacks "do not work by
// default on the encryption but can instead be useful when targeting
// decryption", because encryption randomness is fresh per run while the
// decryption key repeats). It is included as a baseline: CPA recovers a
// repeating secret from many traces, and demonstrably fails given the
// single trace RevEAL gets.

// CPAResult ranks hypotheses by their best (positive) Pearson correlation
// against any trace sample. Positive correlation is the right statistic
// for a Hamming-weight model: more bits set means more power, and using
// |corr| would tie every hypothesis with its bitwise complement.
type CPAResult struct {
	// Scores[h] is the peak correlation of hypothesis h.
	Scores []float64
	// BestHypothesis is the index of the winning hypothesis.
	BestHypothesis int
	// BestSample is the sample index where the winner peaked.
	BestSample int
}

// CPA correlates each hypothesis's predicted leakage (one prediction per
// trace) with the measured samples. traces must be equal length; for each
// hypothesis h, predictions[h][k] is the model output (e.g. Hamming
// weight) for trace k under hypothesis h.
func CPA(traces []trace.Trace, predictions [][]float64) (*CPAResult, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("sca: CPA needs at least 2 traces, got %d", len(traces))
	}
	nSamples := len(traces[0])
	for i, tr := range traces {
		if len(tr) != nSamples {
			return nil, fmt.Errorf("sca: trace %d has %d samples, want %d", i, len(tr), nSamples)
		}
	}
	if len(predictions) == 0 {
		return nil, fmt.Errorf("sca: no hypotheses")
	}
	nTraces := len(traces)
	for h, p := range predictions {
		if len(p) != nTraces {
			return nil, fmt.Errorf("sca: hypothesis %d has %d predictions, want %d", h, len(p), nTraces)
		}
	}

	// Precompute per-sample means and norms of the measurements.
	sampleMean := make([]float64, nSamples)
	for _, tr := range traces {
		for t, v := range tr {
			sampleMean[t] += v
		}
	}
	for t := range sampleMean {
		sampleMean[t] /= float64(nTraces)
	}
	sampleNorm := make([]float64, nSamples)
	for _, tr := range traces {
		for t, v := range tr {
			d := v - sampleMean[t]
			sampleNorm[t] += d * d
		}
	}

	res := &CPAResult{Scores: make([]float64, len(predictions)), BestHypothesis: -1}
	bestScore := math.Inf(-1)
	for h, pred := range predictions {
		pm := 0.0
		for _, v := range pred {
			pm += v
		}
		pm /= float64(nTraces)
		pNorm := 0.0
		for _, v := range pred {
			pNorm += (v - pm) * (v - pm)
		}
		if pNorm == 0 {
			// Constant prediction correlates with nothing.
			res.Scores[h] = 0
			continue
		}
		peak, peakAt := math.Inf(-1), 0
		for t := 0; t < nSamples; t++ {
			if sampleNorm[t] == 0 {
				continue
			}
			cov := 0.0
			for k, tr := range traces {
				cov += (pred[k] - pm) * (tr[t] - sampleMean[t])
			}
			c := cov / math.Sqrt(pNorm*sampleNorm[t])
			if c > peak {
				peak, peakAt = c, t
			}
		}
		if math.IsInf(peak, -1) {
			peak = 0
		}
		res.Scores[h] = peak
		if peak > bestScore {
			bestScore, res.BestHypothesis, res.BestSample = peak, h, peakAt
		}
	}
	if res.BestHypothesis < 0 {
		return nil, fmt.Errorf("sca: all hypotheses degenerate")
	}
	return res, nil
}

// HWPredictions builds the standard CPA leakage model: for each candidate
// value, the predicted leakage of every trace is the Hamming weight of
// modelFn(candidate, k). modelFn receives the candidate and the trace
// index (so known per-trace inputs can be mixed in).
func HWPredictions(candidates []uint32, nTraces int, modelFn func(candidate uint32, traceIdx int) uint32) [][]float64 {
	out := make([][]float64, len(candidates))
	for h, c := range candidates {
		out[h] = make([]float64, nTraces)
		for k := 0; k < nTraces; k++ {
			v := modelFn(c, k)
			hw := 0
			for ; v != 0; v &= v - 1 {
				hw++
			}
			out[h][k] = float64(hw)
		}
	}
	return out
}
