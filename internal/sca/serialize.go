package sca

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"reveal/internal/linalg"
)

// Binary serialization of trained templates, so a profiling campaign can
// be run once and reused across attack sessions (the paper's profiling
// cost was 220,000 device executions — worth persisting).

const (
	templatesMagic = "SCTM"
	// templatesVersion 2 adds the precomputed inverse covariance and keeps
	// the log-determinant, so loading a template never re-inverts a matrix.
	// Version-1 streams lack those fields and are rejected with
	// ErrStaleTemplateVersion.
	templatesVersion = 2
)

// ErrStaleTemplateVersion marks a template stream written by an older
// format that predates the precomputed scoring structures. Re-run
// profiling to regenerate the templates.
var ErrStaleTemplateVersion = errors.New("sca: stale template version (re-run profiling to regenerate with precomputed inverse covariance)")

// WriteTemplates serializes a trained template set, including the
// precomputed inverse covariance and log-determinant of each class.
func WriteTemplates(w io.Writer, t *Templates) error {
	if t == nil || len(t.classes) == 0 {
		return fmt.Errorf("sca: cannot serialize empty templates")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(templatesMagic); err != nil {
		return err
	}
	pooled := uint32(0)
	if t.pooled {
		pooled = 1
	}
	d := len(t.POIs)
	header := []uint32{templatesVersion, pooled, uint32(d), uint32(len(t.classes))}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range t.POIs {
		if err := binary.Write(bw, binary.LittleEndian, int32(p)); err != nil {
			return err
		}
	}
	writeFloats := func(fs []float64) error {
		for _, f := range fs {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(f)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range t.classes {
		if err := binary.Write(bw, binary.LittleEndian, int32(c.label)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(c.count)); err != nil {
			return err
		}
		if err := writeFloats(c.mean); err != nil {
			return err
		}
		if err := writeFloats(c.chol.Data); err != nil {
			return err
		}
		if err := writeFloats(c.invCov.Data); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(c.logDet)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTemplates deserializes a template set written by WriteTemplates. The
// cached triangular-solve structures are rebuilt from the stored Cholesky
// factor; the inverse covariance and log-determinant are loaded as written,
// so a round-tripped template scores bitwise identically to the original.
func ReadTemplates(r io.Reader) (*Templates, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sca: reading magic: %w", err)
	}
	if string(magic) != templatesMagic {
		return nil, fmt.Errorf("sca: bad magic %q", magic)
	}
	var version, pooled, d, nClasses uint32
	for _, p := range []*uint32{&version, &pooled, &d, &nClasses} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != templatesVersion {
		if version < templatesVersion {
			return nil, fmt.Errorf("%w (got version %d, want %d)", ErrStaleTemplateVersion, version, templatesVersion)
		}
		return nil, fmt.Errorf("sca: unsupported version %d", version)
	}
	if d == 0 || d > 4096 || nClasses == 0 || nClasses > 4096 {
		return nil, fmt.Errorf("sca: implausible header d=%d classes=%d", d, nClasses)
	}
	t := &Templates{POIs: make([]int, d), pooled: pooled == 1}
	for i := range t.POIs {
		var p int32
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return nil, err
		}
		if p < 0 {
			return nil, fmt.Errorf("sca: negative POI %d", p)
		}
		t.POIs[i] = int(p)
	}
	readFloats := func(n int) ([]float64, error) {
		out := make([]float64, n)
		for i := range out {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(bits)
		}
		return out, nil
	}
	for c := uint32(0); c < nClasses; c++ {
		var label int32
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &label); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		mean, err := readFloats(int(d))
		if err != nil {
			return nil, err
		}
		cholData, err := readFloats(int(d * d))
		if err != nil {
			return nil, err
		}
		invData, err := readFloats(int(d * d))
		if err != nil {
			return nil, err
		}
		var ldBits uint64
		if err := binary.Read(br, binary.LittleEndian, &ldBits); err != nil {
			return nil, err
		}
		chol := &linalg.Matrix{Rows: int(d), Cols: int(d), Data: cholData}
		invCov := &linalg.Matrix{Rows: int(d), Cols: int(d), Data: invData}
		t.classes = append(t.classes, classTemplate{
			label: int(label), count: int(count), mean: mean,
			chol: chol, fact: linalg.CholFactorOf(chol), invCov: invCov,
			logDet: math.Float64frombits(ldBits),
		})
	}
	return t, nil
}
