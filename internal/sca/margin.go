package sca

// TopMargin returns P(top1) − P(top2) of one posterior probability table —
// the per-measurement confidence signal the campaign results aggregate
// (mean margin drops before accuracy does). ok is false for an empty
// table, which contributes nothing to an aggregate.
func TopMargin(probs map[int]float64) (margin float64, ok bool) {
	if len(probs) == 0 {
		return 0, false
	}
	var top1, top2 float64
	for _, p := range probs {
		if p > top1 {
			top1, top2 = p, top1
		} else if p > top2 {
			top2 = p
		}
	}
	return top1 - top2, true
}
