package sca

import (
	"fmt"
	"math"

	"reveal/internal/linalg"
	"reveal/internal/trace"
)

// Fisher linear discriminant analysis: a supervised projection that
// maximizes between-class over within-class scatter. The paper's related
// work ([20], [36]) uses machine-learned profiling to beat raw-POI
// templates, especially cross-device; LDA is the classical instance of
// that idea and composes with the template machinery here (project, then
// build templates on the components).
type LDA struct {
	// GlobalMean is subtracted before projecting.
	GlobalMean []float64
	// Proj is the d×k projection matrix (columns = discriminant axes).
	Proj *linalg.Matrix
}

// FitLDA learns up to `components` discriminant directions from a labeled
// set. ridge stabilizes the within-class scatter inversion.
func FitLDA(set *trace.Set, components int, ridge float64) (*LDA, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("sca: empty set")
	}
	if components < 1 {
		return nil, fmt.Errorf("sca: need at least 1 component")
	}
	d := len(set.Traces[0])
	groups := set.ByLabel()
	if len(groups) < 2 {
		return nil, fmt.Errorf("sca: LDA needs at least 2 classes")
	}
	if components > len(groups)-1 {
		components = len(groups) - 1
	}

	// Class and global means.
	global := make([]float64, d)
	classMeans := map[int][]float64{}
	for label, idxs := range groups {
		mean := make([]float64, d)
		for _, idx := range idxs {
			for t, v := range set.Traces[idx] {
				mean[t] += v
			}
		}
		for t := range mean {
			mean[t] /= float64(len(idxs))
			global[t] += mean[t] * float64(len(idxs))
		}
		classMeans[label] = mean
	}
	total := float64(set.Len())
	for t := range global {
		global[t] /= total
	}

	// Scatter matrices.
	sw := linalg.NewMatrix(d, d)
	sb := linalg.NewMatrix(d, d)
	for label, idxs := range groups {
		mean := classMeans[label]
		for _, idx := range idxs {
			tr := set.Traces[idx]
			for i := 0; i < d; i++ {
				di := tr[i] - mean[i]
				if di == 0 {
					continue
				}
				for j := 0; j < d; j++ {
					sw.Set(i, j, sw.At(i, j)+di*(tr[j]-mean[j]))
				}
			}
		}
		nc := float64(len(idxs))
		for i := 0; i < d; i++ {
			bi := mean[i] - global[i]
			for j := 0; j < d; j++ {
				sb.Set(i, j, sb.At(i, j)+nc*bi*(mean[j]-global[j]))
			}
		}
	}
	linalg.RegularizeSPD(sw, ridge+1e-12)

	// Whiten Sw: W = V λ^{-1/2} Vᵀ.
	swVals, swVecs, err := linalg.EigSym(sw, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("sca: within-class scatter: %w", err)
	}
	inv := linalg.NewMatrix(d, d)
	for i, v := range swVals {
		if v <= 0 {
			return nil, fmt.Errorf("sca: within-class scatter not PD (eigenvalue %v)", v)
		}
		inv.Set(i, i, 1/math.Sqrt(v))
	}
	tmp, err := swVecs.Mul(inv)
	if err != nil {
		return nil, err
	}
	w, err := tmp.Mul(swVecs.Transpose())
	if err != nil {
		return nil, err
	}

	// Eigen-decompose the whitened between-class scatter.
	wsb, err := w.Mul(sb)
	if err != nil {
		return nil, err
	}
	m, err := wsb.Mul(w)
	if err != nil {
		return nil, err
	}
	// Symmetrize against rounding before EigSym.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			avg := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	_, mVecs, err := linalg.EigSym(m, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("sca: between-class scatter: %w", err)
	}
	// Proj = W · U_k (top-k whitened directions mapped back).
	uk := linalg.NewMatrix(d, components)
	for i := 0; i < d; i++ {
		for j := 0; j < components; j++ {
			uk.Set(i, j, mVecs.At(i, j))
		}
	}
	proj, err := w.Mul(uk)
	if err != nil {
		return nil, err
	}
	return &LDA{GlobalMean: global, Proj: proj}, nil
}

// Components returns the projection dimensionality.
func (l *LDA) Components() int { return l.Proj.Cols }

// Transform projects a trace onto the discriminant axes.
func (l *LDA) Transform(tr trace.Trace) ([]float64, error) {
	if len(tr) != len(l.GlobalMean) {
		return nil, fmt.Errorf("sca: trace length %d, LDA trained on %d", len(tr), len(l.GlobalMean))
	}
	centered := make([]float64, len(tr))
	for i, v := range tr {
		centered[i] = v - l.GlobalMean[i]
	}
	out := make([]float64, l.Proj.Cols)
	for j := 0; j < l.Proj.Cols; j++ {
		s := 0.0
		for i := 0; i < l.Proj.Rows; i++ {
			s += l.Proj.At(i, j) * centered[i]
		}
		out[j] = s
	}
	return out, nil
}

// TransformSet projects every trace, producing a reduced-dimension set on
// which templates can be trained with POIs = all components.
func (l *LDA) TransformSet(set *trace.Set) (*trace.Set, error) {
	out := &trace.Set{}
	for i, tr := range set.Traces {
		f, err := l.Transform(tr)
		if err != nil {
			return nil, err
		}
		out.Append(trace.Trace(f), set.Labels[i])
	}
	return out, nil
}

// AllPOIs returns [0, 1, …, k−1], the POI list for template building on
// LDA components.
func (l *LDA) AllPOIs() []int {
	out := make([]int, l.Proj.Cols)
	for i := range out {
		out[i] = i
	}
	return out
}
