package sca

import (
	"fmt"
	"math"

	"reveal/internal/linalg"
	"reveal/internal/trace"
)

// Stochastic-model profiling (Schindler et al.): instead of estimating one
// template per value, fit a *linear* leakage model per sample,
//
//	L_t(v) ≈ β_t,0 + Σ_i β_t,i · basis_i(v),
//
// by least squares over the profiling set. The model needs far fewer
// traces than one-template-per-value and — because it fits physical basis
// functions (bit lines) rather than raw class means — is the classical
// answer to the cross-device portability problem the paper raises in
// §V-B. Classification picks the candidate whose predicted leakage is
// nearest (weighted by per-sample residual variance).
type StochasticModel struct {
	// Basis maps a candidate label to its feature vector (without the
	// constant term, which the model adds internally).
	Basis func(label int) []float64
	// Beta is (basisDim+1) × nSamples: per-sample regression coefficients.
	Beta *linalg.Matrix
	// ResidVar is the per-sample residual variance (noise estimate).
	ResidVar []float64
	// POIs are the samples used for classification, picked by explained
	// variance.
	POIs []int
	// Labels are the candidate labels this model can classify into.
	Labels []int
}

// FitStochastic fits the model on a labeled set.
func FitStochastic(set *trace.Set, basis func(label int) []float64, poiCount int) (*StochasticModel, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() < 4 {
		return nil, fmt.Errorf("sca: stochastic fit needs at least 4 traces")
	}
	if basis == nil {
		return nil, fmt.Errorf("sca: nil basis")
	}
	distinct := map[int]bool{}
	for _, l := range set.Labels {
		distinct[l] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("sca: stochastic fit needs at least 2 distinct labels, got %d", len(distinct))
	}
	if poiCount < 1 {
		return nil, fmt.Errorf("sca: poiCount must be positive")
	}
	nTr := set.Len()
	nS := len(set.Traces[0])
	d := len(basis(set.Labels[0])) + 1 // + constant term
	if nTr <= d {
		return nil, fmt.Errorf("sca: %d traces cannot fit %d coefficients", nTr, d)
	}

	// Design matrix X (nTr × d) shared across samples.
	x := linalg.NewMatrix(nTr, d)
	for k := 0; k < nTr; k++ {
		x.Set(k, 0, 1)
		f := basis(set.Labels[k])
		if len(f) != d-1 {
			return nil, fmt.Errorf("sca: basis dimension changed across labels")
		}
		for i, v := range f {
			x.Set(k, i+1, v)
		}
	}
	// Normal equations: (XᵀX) B = Xᵀ Y, solved column-by-column of Y.
	xt := x.Transpose()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, err
	}
	linalg.RegularizeSPD(xtx, 1e-9)
	chol, err := linalg.Cholesky(xtx)
	if err != nil {
		return nil, fmt.Errorf("sca: design matrix degenerate (labels not diverse enough): %w", err)
	}

	beta := linalg.NewMatrix(d, nS)
	residVar := make([]float64, nS)
	y := make([]float64, nTr)
	for t := 0; t < nS; t++ {
		for k := 0; k < nTr; k++ {
			y[k] = set.Traces[k][t]
		}
		xty, err := xt.MulVec(y)
		if err != nil {
			return nil, err
		}
		b, err := linalg.SolveCholesky(chol, xty)
		if err != nil {
			return nil, err
		}
		var ssr float64
		for k := 0; k < nTr; k++ {
			pred := b[0]
			for i := 1; i < d; i++ {
				pred += b[i] * x.At(k, i)
			}
			r := y[k] - pred
			ssr += r * r
		}
		for i := 0; i < d; i++ {
			beta.Set(i, t, b[i])
		}
		residVar[t] = ssr/float64(nTr-d) + 1e-12
	}

	// Distinct labels.
	seen := map[int]bool{}
	var labels []int
	for _, l := range set.Labels {
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}

	m := &StochasticModel{Basis: basis, Beta: beta, ResidVar: residVar, Labels: labels}
	// POIs: samples where the model explains the most variance relative to
	// noise — score = Var_labels(pred_t) / residVar_t.
	scores := make([]float64, nS)
	for t := 0; t < nS; t++ {
		var mean, m2 float64
		for i, l := range labels {
			p := m.predict(l, t)
			delta := p - mean
			mean += delta / float64(i+1)
			m2 += delta * (p - mean)
		}
		scores[t] = m2 / float64(len(labels)) / residVar[t]
	}
	m.POIs = SelectPOIs(scores, poiCount, 1)
	if len(m.POIs) == 0 {
		return nil, fmt.Errorf("sca: no informative samples")
	}
	return m, nil
}

// predict returns the modeled leakage of label at sample t.
func (m *StochasticModel) predict(label int, t int) float64 {
	f := m.Basis(label)
	p := m.Beta.At(0, t)
	for i, v := range f {
		p += m.Beta.At(i+1, t) * v
	}
	return p
}

// Classify returns the candidate whose predicted leakage best matches the
// trace (Gaussian log-likelihood with per-sample variances).
func (m *StochasticModel) Classify(tr trace.Trace) (int, error) {
	ll, err := m.LogLikelihoods(tr)
	if err != nil {
		return 0, err
	}
	best, bestLL := 0, math.Inf(-1)
	first := true
	for _, l := range m.Labels {
		if first || ll[l] > bestLL {
			best, bestLL = l, ll[l]
			first = false
		}
	}
	return best, nil
}

// LogLikelihoods scores every candidate label.
func (m *StochasticModel) LogLikelihoods(tr trace.Trace) (map[int]float64, error) {
	if len(tr) <= m.POIs[len(m.POIs)-1] {
		return nil, fmt.Errorf("sca: trace of %d samples shorter than POI range", len(tr))
	}
	out := make(map[int]float64, len(m.Labels))
	for _, l := range m.Labels {
		s := 0.0
		for _, t := range m.POIs {
			r := tr[t] - m.predict(l, t)
			s -= r * r / (2 * m.ResidVar[t])
		}
		out[l] = s
	}
	return out, nil
}

// BitBasis returns a basis function mapping a label to the bits of
// valueFn(label) — the canonical stochastic-model basis for Hamming-style
// leakage on a width-bit bus.
func BitBasis(width int, valueFn func(label int) uint32) func(int) []float64 {
	return func(label int) []float64 {
		v := valueFn(label)
		f := make([]float64, width)
		for b := 0; b < width; b++ {
			f[b] = float64((v >> b) & 1)
		}
		return f
	}
}
