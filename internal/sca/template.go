package sca

import (
	"fmt"
	"math"
	"sort"

	"reveal/internal/linalg"
	"reveal/internal/obs"
	"reveal/internal/trace"
)

// TemplateOptions configures template construction.
type TemplateOptions struct {
	// POICount is how many points of interest to keep.
	POICount int
	// MinSpacing is the minimum distance between selected POIs.
	MinSpacing int
	// Ridge is added to the covariance diagonal for numerical stability.
	Ridge float64
	// Pooled uses one covariance matrix shared by all classes (the usual
	// practical choice); otherwise each class estimates its own.
	Pooled bool
	// Selector chooses the POI score ("sosd" — the paper's method — or
	// "sost"). Empty means "sosd".
	Selector string
}

// DefaultTemplateOptions mirror the paper's setup: SOSD-selected POIs,
// pooled covariance.
func DefaultTemplateOptions() TemplateOptions {
	return TemplateOptions{POICount: 12, MinSpacing: 2, Ridge: 1e-6, Pooled: true, Selector: "sosd"}
}

// classTemplate is the per-label multivariate Gaussian.
type classTemplate struct {
	label  int
	count  int
	mean   []float64
	chol   *linalg.Matrix // Cholesky factor of the covariance
	logDet float64
}

// Templates is a trained template attack.
type Templates struct {
	POIs    []int
	classes []classTemplate
	pooled  bool
}

// BuildTemplates trains templates from a labeled profiling set (the
// 220,000-trace campaign of §IV-B, at whatever scale the caller chose).
func BuildTemplates(set *trace.Set, opts TemplateOptions) (*Templates, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("sca: empty profiling set")
	}
	if opts.POICount <= 0 {
		return nil, fmt.Errorf("sca: POICount must be positive")
	}
	psp := obs.StartSpan("poi")
	var scores []float64
	var err error
	switch opts.Selector {
	case "", "sosd":
		scores, err = SOSD(set)
	case "sost":
		scores, err = SOST(set)
	default:
		err = fmt.Errorf("sca: unknown POI selector %q", opts.Selector)
	}
	if err != nil {
		psp.End()
		return nil, err
	}
	pois := SelectPOIs(scores, opts.POICount, opts.MinSpacing)
	psp.AddItems(len(pois))
	psp.End()
	if len(pois) == 0 {
		return nil, fmt.Errorf("sca: no POIs selected")
	}
	tsp := obs.StartSpan("template")
	tsp.AddItems(set.Len())
	defer tsp.End()
	return BuildTemplatesAtPOIs(set, pois, opts)
}

// BuildTemplatesAtPOIs trains templates using caller-chosen POIs.
func BuildTemplatesAtPOIs(set *trace.Set, pois []int, opts TemplateOptions) (*Templates, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	for _, p := range pois {
		if p < 0 || (set.Len() > 0 && p >= len(set.Traces[0])) {
			return nil, fmt.Errorf("sca: POI %d out of range", p)
		}
	}
	d := len(pois)
	groups := set.ByLabel()
	labels := make([]int, 0, len(groups))
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	if len(labels) < 2 {
		return nil, fmt.Errorf("sca: need at least 2 classes, got %d", len(labels))
	}

	// Per-class means.
	means := map[int][]float64{}
	for _, l := range labels {
		mean := make([]float64, d)
		for _, idx := range groups[l] {
			f := Extract(set.Traces[idx], pois)
			for i, v := range f {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(groups[l]))
		}
		means[l] = mean
	}

	// Covariances: pooled or per class.
	newCov := func() *linalg.Matrix { return linalg.NewMatrix(d, d) }
	accumulate := func(cov *linalg.Matrix, idxs []int, mean []float64) int {
		for _, idx := range idxs {
			f := Extract(set.Traces[idx], pois)
			for i := 0; i < d; i++ {
				di := f[i] - mean[i]
				for j := 0; j < d; j++ {
					cov.Set(i, j, cov.At(i, j)+di*(f[j]-mean[j]))
				}
			}
		}
		return len(idxs)
	}
	finalize := func(cov *linalg.Matrix, n int) (*linalg.Matrix, float64, error) {
		if n < 2 {
			n = 2
		}
		cov = cov.Scale(1 / float64(n-1))
		linalg.RegularizeSPD(cov, opts.Ridge)
		chol, err := linalg.Cholesky(cov)
		if err != nil {
			return nil, 0, fmt.Errorf("sca: covariance not PD (add ridge): %w", err)
		}
		logDet := 0.0
		for i := 0; i < d; i++ {
			logDet += 2 * math.Log(chol.At(i, i))
		}
		return chol, logDet, nil
	}

	t := &Templates{POIs: append([]int(nil), pois...), pooled: opts.Pooled}
	if opts.Pooled {
		cov := newCov()
		total := 0
		for _, l := range labels {
			total += accumulate(cov, groups[l], means[l])
		}
		chol, logDet, err := finalize(cov, total)
		if err != nil {
			return nil, err
		}
		for _, l := range labels {
			t.classes = append(t.classes, classTemplate{
				label: l, count: len(groups[l]), mean: means[l], chol: chol, logDet: logDet,
			})
		}
	} else {
		for _, l := range labels {
			cov := newCov()
			n := accumulate(cov, groups[l], means[l])
			chol, logDet, err := finalize(cov, n)
			if err != nil {
				return nil, fmt.Errorf("sca: class %d: %w", l, err)
			}
			t.classes = append(t.classes, classTemplate{
				label: l, count: n, mean: means[l], chol: chol, logDet: logDet,
			})
		}
	}
	return t, nil
}

// Labels returns the class labels in ascending order.
func (t *Templates) Labels() []int {
	out := make([]int, len(t.classes))
	for i, c := range t.classes {
		out[i] = c.label
	}
	return out
}

// LogLikelihoods returns the Gaussian log-density of the trace under each
// class, keyed by label.
func (t *Templates) LogLikelihoods(tr trace.Trace) (map[int]float64, error) {
	if len(tr) <= t.POIs[len(t.POIs)-1] {
		return nil, fmt.Errorf("sca: trace of %d samples shorter than POI range", len(tr))
	}
	f := Extract(tr, t.POIs)
	out := make(map[int]float64, len(t.classes))
	d := float64(len(t.POIs))
	resid := make([]float64, len(f))
	for _, c := range t.classes {
		for i := range f {
			resid[i] = f[i] - c.mean[i]
		}
		// Mahalanobis distance via the Cholesky solve.
		x, err := linalg.SolveCholesky(c.chol, resid)
		if err != nil {
			return nil, err
		}
		mahal := linalg.Dot(resid, x)
		out[c.label] = -0.5 * (mahal + c.logDet + d*math.Log(2*math.Pi))
	}
	return out, nil
}

// Classify returns the maximum-likelihood label.
func (t *Templates) Classify(tr trace.Trace) (int, error) {
	ll, err := t.LogLikelihoods(tr)
	if err != nil {
		return 0, err
	}
	best, bestLL := 0, math.Inf(-1)
	first := true
	for _, c := range t.classes { // iterate classes for deterministic ties
		v := ll[c.label]
		if first || v > bestLL {
			best, bestLL = c.label, v
			first = false
		}
	}
	return best, nil
}

// Probabilities converts log-likelihoods into a posterior over labels via
// a numerically-stable softmax (uniform prior), the per-measurement score
// table that Table II reports and the DBDD hints consume.
func (t *Templates) Probabilities(tr trace.Trace) (map[int]float64, error) {
	ll, err := t.LogLikelihoods(tr)
	if err != nil {
		return nil, err
	}
	max := math.Inf(-1)
	for _, v := range ll {
		if v > max {
			max = v
		}
	}
	// Accumulate in class order, not map order: float addition is not
	// associative, so a map-order sum would make repeated classifications of
	// the same trace differ in the last bits.
	sum := 0.0
	out := make(map[int]float64, len(ll))
	for _, c := range t.classes {
		e := math.Exp(ll[c.label] - max)
		out[c.label] = e
		sum += e
	}
	for l := range out {
		out[l] /= sum
	}
	return out, nil
}

// CombineProbabilities multiplies independent posteriors (e.g. the V2 value
// template and the V3 negation template) and renormalizes — the paper's
// combination of the second and third vulnerability.
func CombineProbabilities(ps ...map[int]float64) map[int]float64 {
	if len(ps) == 0 {
		return nil
	}
	labels := make([]int, 0, len(ps[0]))
	out := map[int]float64{}
	for l, v := range ps[0] {
		labels = append(labels, l)
		out[l] = v
	}
	sort.Ints(labels)
	for _, p := range ps[1:] {
		for l := range out {
			out[l] *= p[l]
		}
	}
	// Label-order accumulation keeps the normalization deterministic (float
	// addition is order-sensitive; map order is not).
	sum := 0.0
	for _, l := range labels {
		sum += out[l]
	}
	if sum <= 0 {
		// Degenerate: fall back to uniform over the label set.
		u := 1.0 / float64(len(out))
		for l := range out {
			out[l] = u
		}
		return out
	}
	for l := range out {
		out[l] /= sum
	}
	return out
}
