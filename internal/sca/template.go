package sca

import (
	"fmt"
	"math"
	"sort"

	"reveal/internal/linalg"
	"reveal/internal/obs"
	"reveal/internal/trace"
)

// TemplateOptions configures template construction.
type TemplateOptions struct {
	// POICount is how many points of interest to keep.
	POICount int
	// MinSpacing is the minimum distance between selected POIs.
	MinSpacing int
	// Ridge is added to the covariance diagonal for numerical stability.
	Ridge float64
	// Pooled uses one covariance matrix shared by all classes (the usual
	// practical choice); otherwise each class estimates its own.
	Pooled bool
	// Selector chooses the POI score ("sosd" — the paper's method — or
	// "sost"). Empty means "sosd".
	Selector string
}

// DefaultTemplateOptions mirror the paper's setup: SOSD-selected POIs,
// pooled covariance.
func DefaultTemplateOptions() TemplateOptions {
	return TemplateOptions{POICount: 12, MinSpacing: 2, Ridge: 1e-6, Pooled: true, Selector: "sosd"}
}

// classTemplate is the per-label multivariate Gaussian. Everything needed
// to score a sub-trace — the cached triangular-solve structures, the
// inverse covariance, and the log-determinant — is precomputed once at
// training time (and carried through serialization), so classification
// never re-factors or re-inverts a covariance.
type classTemplate struct {
	label  int
	count  int
	mean   []float64
	chol   *linalg.Matrix     // Cholesky factor of the covariance
	fact   *linalg.CholFactor // cached solve structures over chol
	invCov *linalg.Matrix     // precomputed inverse covariance Σ⁻¹
	logDet float64
}

// Templates is a trained template attack.
type Templates struct {
	POIs    []int
	classes []classTemplate
	pooled  bool
}

// BuildTemplates trains templates from a labeled profiling set (the
// 220,000-trace campaign of §IV-B, at whatever scale the caller chose).
func BuildTemplates(set *trace.Set, opts TemplateOptions) (*Templates, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("sca: empty profiling set")
	}
	if opts.POICount <= 0 {
		return nil, fmt.Errorf("sca: POICount must be positive")
	}
	psp := obs.StartSpan("poi")
	var scores []float64
	var err error
	switch opts.Selector {
	case "", "sosd":
		scores, err = SOSD(set)
	case "sost":
		scores, err = SOST(set)
	default:
		err = fmt.Errorf("sca: unknown POI selector %q", opts.Selector)
	}
	if err != nil {
		psp.End()
		return nil, err
	}
	pois := SelectPOIs(scores, opts.POICount, opts.MinSpacing)
	psp.AddItems(len(pois))
	psp.End()
	if len(pois) == 0 {
		return nil, fmt.Errorf("sca: no POIs selected")
	}
	tsp := obs.StartSpan("template")
	tsp.AddItems(set.Len())
	defer tsp.End()
	return BuildTemplatesAtPOIs(set, pois, opts)
}

// BuildTemplatesAtPOIs trains templates using caller-chosen POIs.
func BuildTemplatesAtPOIs(set *trace.Set, pois []int, opts TemplateOptions) (*Templates, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	for _, p := range pois {
		if p < 0 || (set.Len() > 0 && p >= len(set.Traces[0])) {
			return nil, fmt.Errorf("sca: POI %d out of range", p)
		}
	}
	d := len(pois)
	groups := set.ByLabel()
	labels := make([]int, 0, len(groups))
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	if len(labels) < 2 {
		return nil, fmt.Errorf("sca: need at least 2 classes, got %d", len(labels))
	}

	// Per-class means, over one reusable feature buffer.
	f := make([]float64, d)
	means := map[int][]float64{}
	for _, l := range labels {
		mean := make([]float64, d)
		for _, idx := range groups[l] {
			ExtractInto(f, set.Traces[idx], pois)
			for i, v := range f {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(groups[l]))
		}
		means[l] = mean
	}

	// Covariances: pooled or per class. The scatter update works on row
	// slices with the centered features computed once per trace — the same
	// f[j]−mean[j] and di·diff[j] operations, in the same order, as the
	// historical element-wise At/Set loop.
	newCov := func() *linalg.Matrix { return linalg.NewMatrix(d, d) }
	diff := make([]float64, d)
	accumulate := func(cov *linalg.Matrix, idxs []int, mean []float64) int {
		for _, idx := range idxs {
			ExtractInto(f, set.Traces[idx], pois)
			for j := 0; j < d; j++ {
				diff[j] = f[j] - mean[j]
			}
			for i := 0; i < d; i++ {
				di := diff[i]
				row := cov.Data[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					row[j] += di * diff[j]
				}
			}
		}
		return len(idxs)
	}
	// finalize turns an accumulated scatter matrix into the scoring
	// structures: Cholesky factor, cached solver, inverse covariance and
	// log-determinant — all computed once here, at training time.
	finalize := func(cov *linalg.Matrix, n int) (*linalg.Matrix, *linalg.CholFactor, *linalg.Matrix, error) {
		if n < 2 {
			n = 2
		}
		cov = cov.Scale(1 / float64(n-1))
		linalg.RegularizeSPD(cov, opts.Ridge)
		chol, err := linalg.Cholesky(cov)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sca: covariance not PD (add ridge): %w", err)
		}
		fact := linalg.CholFactorOf(chol)
		return chol, fact, fact.Inverse(), nil
	}

	t := &Templates{POIs: append([]int(nil), pois...), pooled: opts.Pooled}
	if opts.Pooled {
		cov := newCov()
		total := 0
		for _, l := range labels {
			total += accumulate(cov, groups[l], means[l])
		}
		// One covariance shared by every class: factor and invert once.
		chol, fact, invCov, err := finalize(cov, total)
		if err != nil {
			return nil, err
		}
		for _, l := range labels {
			t.classes = append(t.classes, classTemplate{
				label: l, count: len(groups[l]), mean: means[l],
				chol: chol, fact: fact, invCov: invCov, logDet: fact.LogDet(),
			})
		}
	} else {
		for _, l := range labels {
			cov := newCov()
			n := accumulate(cov, groups[l], means[l])
			chol, fact, invCov, err := finalize(cov, n)
			if err != nil {
				return nil, fmt.Errorf("sca: class %d: %w", l, err)
			}
			t.classes = append(t.classes, classTemplate{
				label: l, count: n, mean: means[l],
				chol: chol, fact: fact, invCov: invCov, logDet: fact.LogDet(),
			})
		}
	}
	return t, nil
}

// Labels returns the class labels in ascending order.
func (t *Templates) Labels() []int {
	out := make([]int, len(t.classes))
	for i, c := range t.classes {
		out[i] = c.label
	}
	return out
}

// InverseCovariance returns the precomputed inverse covariance Σ⁻¹ of the
// class with the given label, or nil if the label is unknown. The matrix is
// shared with the template (and, for pooled templates, across all classes):
// treat it as read-only.
func (t *Templates) InverseCovariance(label int) *linalg.Matrix {
	for i := range t.classes {
		if t.classes[i].label == label {
			return t.classes[i].invCov
		}
	}
	return nil
}

// ClassLogDet returns the precomputed covariance log-determinant of the
// class with the given label (NaN if the label is unknown).
func (t *Templates) ClassLogDet(label int) float64 {
	for i := range t.classes {
		if t.classes[i].label == label {
			return t.classes[i].logDet
		}
	}
	return math.NaN()
}

// LogLikelihoods returns the Gaussian log-density of the trace under each
// class, keyed by label. It routes through a one-shot Scorer, so the
// arithmetic — cached-factor Cholesky solve, identical operation order — is
// exactly what the batch scoring path computes.
func (t *Templates) LogLikelihoods(tr trace.Trace) (map[int]float64, error) {
	s := t.NewScorer()
	ll, err := s.ScoreTrace(tr)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(t.classes))
	for ci := range t.classes {
		out[t.classes[ci].label] = ll[ci]
	}
	return out, nil
}

// Classify returns the maximum-likelihood label.
func (t *Templates) Classify(tr trace.Trace) (int, error) {
	s := t.NewScorer()
	ll, err := s.ScoreTrace(tr)
	if err != nil {
		return 0, err
	}
	return s.ArgMaxLabel(ll), nil
}

// Probabilities converts log-likelihoods into a posterior over labels via
// a numerically-stable softmax (uniform prior), the per-measurement score
// table that Table II reports and the DBDD hints consume.
func (t *Templates) Probabilities(tr trace.Trace) (map[int]float64, error) {
	s := t.NewScorer()
	ll, err := s.ScoreTrace(tr)
	if err != nil {
		return nil, err
	}
	return s.Posteriors(ll), nil
}

// CombineProbabilities multiplies independent posteriors (e.g. the V2 value
// template and the V3 negation template) and renormalizes — the paper's
// combination of the second and third vulnerability.
func CombineProbabilities(ps ...map[int]float64) map[int]float64 {
	if len(ps) == 0 {
		return nil
	}
	labels := make([]int, 0, len(ps[0]))
	out := map[int]float64{}
	for l, v := range ps[0] {
		labels = append(labels, l)
		out[l] = v
	}
	sort.Ints(labels)
	for _, p := range ps[1:] {
		for l := range out {
			out[l] *= p[l]
		}
	}
	// Label-order accumulation keeps the normalization deterministic (float
	// addition is order-sensitive; map order is not).
	sum := 0.0
	for _, l := range labels {
		sum += out[l]
	}
	if sum <= 0 {
		// Degenerate: fall back to uniform over the label set.
		u := 1.0 / float64(len(out))
		for l := range out {
			out[l] = u
		}
		return out
	}
	for l := range out {
		out[l] /= sum
	}
	return out
}
