package sca

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion accumulates a confusion matrix over (true label, predicted
// label) pairs — the structure of Table I.
type Confusion struct {
	counts map[int]map[int]int
}

// NewConfusion creates an empty confusion matrix.
func NewConfusion() *Confusion {
	return &Confusion{counts: map[int]map[int]int{}}
}

// Add records one classification outcome.
func (c *Confusion) Add(trueLabel, predicted int) {
	row, ok := c.counts[trueLabel]
	if !ok {
		row = map[int]int{}
		c.counts[trueLabel] = row
	}
	row[predicted]++
}

// Labels returns all labels seen (as truth or prediction), sorted.
func (c *Confusion) Labels() []int {
	seen := map[int]bool{}
	for t, row := range c.counts {
		seen[t] = true
		for p := range row {
			seen[p] = true
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Total returns the number of recorded outcomes for a true label.
func (c *Confusion) Total(trueLabel int) int {
	n := 0
	for _, v := range c.counts[trueLabel] {
		n += v
	}
	return n
}

// Rate returns the fraction of trueLabel outcomes predicted as predicted
// (0 when the label was never seen).
func (c *Confusion) Rate(trueLabel, predicted int) float64 {
	n := c.Total(trueLabel)
	if n == 0 {
		return 0
	}
	return float64(c.counts[trueLabel][predicted]) / float64(n)
}

// Accuracy returns the per-label success rate (diagonal of Table I).
func (c *Confusion) Accuracy(label int) float64 { return c.Rate(label, label) }

// OverallAccuracy returns the micro-averaged accuracy.
func (c *Confusion) OverallAccuracy() float64 {
	correct, total := 0, 0
	for t, row := range c.counts {
		for p, n := range row {
			total += n
			if p == t {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// FormatTable renders the matrix in the paper's Table I layout: rows are
// predicted labels, columns are true labels, entries are percentages of the
// column's trials. Labels outside [minLabel, maxLabel] are clipped, like
// the paper's "−7..7 for brevity".
func (c *Confusion) FormatTable(minLabel, maxLabel int) string {
	var cols []int
	for _, l := range c.Labels() {
		if l >= minLabel && l <= maxLabel {
			cols = append(cols, l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "pred\\t")
	for _, col := range cols {
		fmt.Fprintf(&b, "%7d", col)
	}
	b.WriteByte('\n')
	for _, row := range cols {
		fmt.Fprintf(&b, "%6d", row)
		for _, col := range cols {
			// Table I convention: column = true value, row = prediction.
			fmt.Fprintf(&b, "%7.1f", 100*c.Rate(col, row))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Counts returns a deep copy of the raw (true label → predicted label →
// count) matrix, for machine-readable exports.
func (c *Confusion) Counts() map[int]map[int]int {
	out := make(map[int]map[int]int, len(c.counts))
	for t, row := range c.counts {
		cp := make(map[int]int, len(row))
		for p, n := range row {
			cp[p] = n
		}
		out[t] = cp
	}
	return out
}

// ConfusionSummary is the compact machine-readable view of a confusion
// matrix: the headline rates plus the per-label diagonal, as written into
// run manifests and -json output.
type ConfusionSummary struct {
	OverallAccuracy  float64         `json:"overall_accuracy"`
	SignAccuracy     float64         `json:"sign_accuracy"`
	PerLabelAccuracy map[int]float64 `json:"per_label_accuracy"`
	PerLabelTotal    map[int]int     `json:"per_label_total"`
}

// Summary builds the compact view.
func (c *Confusion) Summary() ConfusionSummary {
	s := ConfusionSummary{
		OverallAccuracy:  c.OverallAccuracy(),
		SignAccuracy:     c.SignAccuracy(),
		PerLabelAccuracy: map[int]float64{},
		PerLabelTotal:    map[int]int{},
	}
	for t := range c.counts {
		s.PerLabelAccuracy[t] = c.Accuracy(t)
		s.PerLabelTotal[t] = c.Total(t)
	}
	return s
}

// SignOf maps a coefficient value to its sign class: -1, 0, +1. Used for
// the paper's claim that sign recovery is 100%.
func SignOf(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// SignAccuracy collapses the matrix to sign classes and returns the
// accuracy of sign recovery.
func (c *Confusion) SignAccuracy() float64 {
	correct, total := 0, 0
	for t, row := range c.counts {
		for p, n := range row {
			total += n
			if SignOf(t) == SignOf(p) {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
