// Package sca implements the template-attack statistics of the paper:
// point-of-interest selection via the sum-of-squared-differences method
// (SOSD, [30] in the paper) and its normalized variant SOST, multivariate
// Gaussian templates with pooled covariance (Chari et al., [28]),
// maximum-likelihood classification, score calibration into the per-value
// probabilities the DBDD hint integration consumes, and confusion-matrix
// bookkeeping for Table I.
package sca

import (
	"fmt"
	"math"
	"sort"

	"reveal/internal/trace"
)

// classStats holds per-class per-sample mean and variance.
type classStats struct {
	label int
	count int
	mean  []float64
	m2    []float64 // sum of squared deviations (Welford)
}

func computeClassStats(set *trace.Set) ([]classStats, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("sca: empty trace set")
	}
	n := len(set.Traces[0])
	byLabel := map[int]*classStats{}
	var order []int
	for i, tr := range set.Traces {
		l := set.Labels[i]
		cs, ok := byLabel[l]
		if !ok {
			cs = &classStats{label: l, mean: make([]float64, n), m2: make([]float64, n)}
			byLabel[l] = cs
			order = append(order, l)
		}
		cs.count++
		invN := 1.0 / float64(cs.count)
		for t, v := range tr {
			d := v - cs.mean[t]
			cs.mean[t] += d * invN
			cs.m2[t] += d * (v - cs.mean[t])
		}
	}
	sort.Ints(order)
	out := make([]classStats, 0, len(order))
	for _, l := range order {
		out = append(out, *byLabel[l])
	}
	return out, nil
}

func (cs *classStats) variance(t int) float64 {
	if cs.count < 2 {
		return 0
	}
	return cs.m2[t] / float64(cs.count-1)
}

// SOSD returns the sum-of-squared-differences score per sample index:
// Σ_{a<b} (μ_a[t] − μ_b[t])², the POI selection method the paper uses.
func SOSD(set *trace.Set) ([]float64, error) {
	stats, err := computeClassStats(set)
	if err != nil {
		return nil, err
	}
	if len(stats) < 2 {
		return nil, fmt.Errorf("sca: SOSD needs at least 2 classes, got %d", len(stats))
	}
	n := len(stats[0].mean)
	scores := make([]float64, n)
	for a := 0; a < len(stats); a++ {
		for b := a + 1; b < len(stats); b++ {
			for t := 0; t < n; t++ {
				d := stats[a].mean[t] - stats[b].mean[t]
				scores[t] += d * d
			}
		}
	}
	return scores, nil
}

// SOST returns the normalized variant: Σ_{a<b} (μ_a−μ_b)² / (σ²_a/n_a + σ²_b/n_b).
func SOST(set *trace.Set) ([]float64, error) {
	stats, err := computeClassStats(set)
	if err != nil {
		return nil, err
	}
	if len(stats) < 2 {
		return nil, fmt.Errorf("sca: SOST needs at least 2 classes, got %d", len(stats))
	}
	n := len(stats[0].mean)
	scores := make([]float64, n)
	const eps = 1e-12
	for a := 0; a < len(stats); a++ {
		for b := a + 1; b < len(stats); b++ {
			for t := 0; t < n; t++ {
				d := stats[a].mean[t] - stats[b].mean[t]
				denom := stats[a].variance(t)/float64(stats[a].count) +
					stats[b].variance(t)/float64(stats[b].count) + eps
				scores[t] += d * d / denom
			}
		}
	}
	return scores, nil
}

// TTest returns Welch's t statistic (absolute value) per sample between the
// two given labels, a standard leakage-assessment curve.
func TTest(set *trace.Set, labelA, labelB int) ([]float64, error) {
	stats, err := computeClassStats(set)
	if err != nil {
		return nil, err
	}
	var a, b *classStats
	for i := range stats {
		if stats[i].label == labelA {
			a = &stats[i]
		}
		if stats[i].label == labelB {
			b = &stats[i]
		}
	}
	if a == nil || b == nil {
		return nil, fmt.Errorf("sca: labels %d/%d not present", labelA, labelB)
	}
	n := len(a.mean)
	out := make([]float64, n)
	const eps = 1e-12
	for t := 0; t < n; t++ {
		denom := a.variance(t)/float64(a.count) + b.variance(t)/float64(b.count) + eps
		out[t] = math.Abs((a.mean[t] - b.mean[t]) / math.Sqrt(denom))
	}
	return out, nil
}

// SelectPOIs picks up to count sample indices with the highest scores while
// enforcing a minimum spacing (the paper's practicality constraint: using
// the full trace as a template is impractical [29]).
func SelectPOIs(scores []float64, count, minSpacing int) []int {
	if count <= 0 {
		return nil
	}
	if minSpacing < 1 {
		minSpacing = 1
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pois []int
	for _, i := range idx {
		ok := true
		for _, p := range pois {
			d := i - p
			if d < 0 {
				d = -d
			}
			if d < minSpacing {
				ok = false
				break
			}
		}
		if ok {
			pois = append(pois, i)
			if len(pois) == count {
				break
			}
		}
	}
	sort.Ints(pois)
	return pois
}

// Extract gathers the POI samples of a trace into a feature vector.
func Extract(tr trace.Trace, pois []int) []float64 {
	return ExtractInto(make([]float64, len(pois)), tr, pois)
}

// ExtractInto gathers the POI samples of a trace into a caller-provided
// feature buffer (which must have len(pois) entries) and returns it.
func ExtractInto(dst []float64, tr trace.Trace, pois []int) []float64 {
	for i, p := range pois {
		dst[i] = tr[p]
	}
	return dst
}

// SecondOrderPreprocess computes centered-product features for
// second-order analysis of masked implementations: for every pair of
// sample indices (i, j) with 0 < j−i ≤ window, feature = (x_i − μ_i)·(x_j
// − μ_j), with μ the per-sample mean over the population. First-order
// statistics on a (properly) masked implementation are flat; the centered
// products recombine the shares and expose the joint leakage.
func SecondOrderPreprocess(traces []trace.Trace, window int) ([]trace.Trace, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("sca: second-order preprocessing needs at least 2 traces")
	}
	if window < 1 {
		return nil, fmt.Errorf("sca: window must be at least 1")
	}
	n := len(traces[0])
	for i, tr := range traces {
		if len(tr) != n {
			return nil, fmt.Errorf("sca: trace %d has %d samples, want %d", i, len(tr), n)
		}
	}
	mean := make([]float64, n)
	for _, tr := range traces {
		for t, v := range tr {
			mean[t] += v
		}
	}
	for t := range mean {
		mean[t] /= float64(len(traces))
	}
	// Feature layout: for each i, pairs (i, i+1) .. (i, i+window).
	var nFeat int
	for i := 0; i < n; i++ {
		hi := i + window
		if hi >= n {
			hi = n - 1
		}
		nFeat += hi - i
	}
	out := make([]trace.Trace, len(traces))
	for k, tr := range traces {
		f := make(trace.Trace, 0, nFeat)
		for i := 0; i < n; i++ {
			hi := i + window
			if hi >= n {
				hi = n - 1
			}
			ci := tr[i] - mean[i]
			for j := i + 1; j <= hi; j++ {
				f = append(f, ci*(tr[j]-mean[j]))
			}
		}
		out[k] = f
	}
	return out, nil
}
