// Machine-readable views of the experiment results: the -json output of
// revealctl and the results section of run manifests are built from these
// structures instead of the human-oriented Format* tables.
package experiments

import (
	"encoding/json"
	"io"

	"reveal/internal/sca"
)

// Table1Report is the machine-readable form of Table I.
type Table1Report struct {
	Coefficients int                  `json:"coefficients"`
	SignAccuracy float64              `json:"sign_accuracy"`
	ZeroAccuracy float64              `json:"zero_accuracy"`
	Confusion    sca.ConfusionSummary `json:"confusion"`
	// Matrix is the raw (true → predicted → count) confusion matrix.
	Matrix map[int]map[int]int `json:"matrix"`
}

// Report builds the machine-readable view of a Table I result.
func (r *Table1Result) Report() Table1Report {
	return Table1Report{
		Coefficients: r.Coefficients,
		SignAccuracy: r.SignAccuracy,
		ZeroAccuracy: r.ZeroAccuracy,
		Confusion:    r.Confusion.Summary(),
		Matrix:       r.Confusion.Counts(),
	}
}

// Table2Report is the machine-readable form of Table II.
type Table2Report struct {
	Rows []Table2ReportRow `json:"rows"`
}

// Table2ReportRow is one measurement's probability table.
type Table2ReportRow struct {
	Secret   int             `json:"secret"`
	Probs    map[int]float64 `json:"probs"`
	Centered float64         `json:"centered"`
	Variance float64         `json:"variance"`
}

// ReportTable2 converts Table II rows to the machine-readable form.
func ReportTable2(rows []Table2Row) Table2Report {
	out := Table2Report{Rows: make([]Table2ReportRow, len(rows))}
	for i, r := range rows {
		out.Rows[i] = Table2ReportRow{
			Secret: r.Secret, Probs: r.Probs,
			Centered: r.Centered, Variance: r.Variance,
		}
	}
	return out
}

// WriteJSON writes v as indented JSON followed by a newline — the -json
// output convention of the cmd/ tools.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
