// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each Run* function is self-contained: it builds the
// device, runs the campaign at the configured scale, and returns the
// structures the paper reports. The cmd/ tools and the benchmark harness
// are thin wrappers around these functions.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"reveal/internal/bfv"
	"reveal/internal/core"
	"reveal/internal/dbdd"
	"reveal/internal/obs"
	"reveal/internal/sampler"
	"reveal/internal/sca"
	"reveal/internal/trace"
)

// Config scales the campaigns. The paper used 220,000 profiling runs and
// 25,000 attack measurements; the defaults here reproduce the structure at
// a laptop-friendly scale and can be raised arbitrarily.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// ProfileTracesPerValue is the number of profiling sub-traces per
	// coefficient value (paper ≈ 220000/83 per value).
	ProfileTracesPerValue int
	// AttackEncryptions is how many single-trace attacks to run; each
	// classifies 2·n coefficients (e1 and e2).
	AttackEncryptions int
	// LowNoise selects the favourable measurement setup used for the
	// end-to-end recovery demonstration.
	LowNoise bool
}

// DefaultConfig returns the test-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, ProfileTracesPerValue: 40, AttackEncryptions: 3}
}

// Session holds a profiled attack setup reused across experiments.
type Session struct {
	Config     Config
	Device     *core.Device
	Classifier *core.CoefficientClassifier
	Params     *bfv.Parameters
	SecretKey  *bfv.SecretKey
	PublicKey  *bfv.PublicKey
	Encryptor  *bfv.Encryptor
}

// NewSession profiles the device and prepares the BFV instance with the
// paper's parameters (n=1024, q=132120577, σ=3.19, t=256).
func NewSession(cfg Config) (*Session, error) {
	var dev *core.Device
	var popts core.ProfileOptions
	if cfg.LowNoise {
		dev = core.NewLowNoiseDevice(cfg.Seed)
		popts = core.HighAccuracyProfileOptions()
	} else {
		dev = core.NewDevice(cfg.Seed)
		popts = core.DefaultProfileOptions()
	}
	if cfg.ProfileTracesPerValue > 0 {
		popts.TracesPerValue = cfg.ProfileTracesPerValue
	}
	obs.Log().Info("session setup",
		"seed", cfg.Seed, "low_noise", cfg.LowNoise,
		"profile_traces_per_value", popts.TracesPerValue)
	profStart := time.Now()
	cls, err := core.Profile(dev, popts)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling: %w", err)
	}
	obs.Log().Info("profiling done",
		"duration", time.Since(profStart), "subtrace_length", cls.Length)
	params := bfv.PaperParameters()
	prng := sampler.NewXoshiro256(cfg.Seed ^ 0xABCD)
	kg := bfv.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(params, pk, prng)
	return &Session{
		Config: cfg, Device: dev, Classifier: cls,
		Params: params, SecretKey: sk, PublicKey: pk, Encryptor: enc,
	}, nil
}

// Table1Result carries the confusion matrix of the template attack plus
// the two headline rates.
type Table1Result struct {
	Confusion    *sca.Confusion
	SignAccuracy float64
	ZeroAccuracy float64
	Coefficients int
	// LastOutcome and LastCapture let downstream experiments (Table II-IV)
	// reuse the final attack.
	LastOutcome *core.AttackOutcome
	LastCapture *core.EncryptionCapture
}

// RunTable1 reproduces Table I: attack success percentages per coefficient
// value over repeated single-trace attacks.
func (s *Session) RunTable1() (*Table1Result, error) {
	conf := sca.NewConfusion()
	res := &Table1Result{Confusion: conf}
	signOK, total := 0, 0
	zeroOK, zeroTotal := 0, 0
	for run := 0; run < s.Config.AttackEncryptions; run++ {
		pt := s.Params.NewPlaintext()
		pt.Coeffs[0] = uint64(run) % s.Params.T
		cap, err := core.CaptureEncryption(s.Device, s.Params, s.Encryptor, pt)
		if err != nil {
			return nil, err
		}
		out, err := s.Classifier.Attack(cap, s.Params.N)
		if err != nil {
			return nil, err
		}
		score := func(r *core.AttackResult, truth []int64) {
			for i, v := range r.Values {
				tv := int(truth[i])
				conf.Add(tv, v)
				total++
				if r.Signs[i] == sca.SignOf(tv) {
					signOK++
				}
				if tv == 0 {
					zeroTotal++
					if v == 0 {
						zeroOK++
					}
				}
			}
		}
		score(out.E1, cap.Truth.E1)
		score(out.E2, cap.Truth.E2)
		core.EmitOutcomeEvents(out, cap)
		res.LastOutcome = out
		res.LastCapture = cap
		obs.Log().Debug("attack encryption done",
			"run", run+1, "of", s.Config.AttackEncryptions,
			"coefficients_scored", total)
	}
	res.Coefficients = total
	if total > 0 {
		res.SignAccuracy = float64(signOK) / float64(total)
	}
	if zeroTotal > 0 {
		res.ZeroAccuracy = float64(zeroOK) / float64(zeroTotal)
	}
	return res, nil
}

// Table2Row is one row of Table II: a measurement's probability table with
// the centered mean and variance columns.
type Table2Row struct {
	Secret   int
	Probs    map[int]float64
	Centered float64
	Variance float64
}

// RunTable2 reproduces Table II: for each secret value in [-2, 2] it finds
// a measurement of that value in the attack output and reports its
// probability table (the paper's "guessing probabilities derived from
// selected measurements").
func RunTable2(out *core.AttackResult, truth []int64) ([]Table2Row, error) {
	wanted := []int{0, 1, -1, 2, -2}
	var rows []Table2Row
	for _, w := range wanted {
		found := false
		for i, tv := range truth {
			if int(tv) != w {
				continue
			}
			h := dbdd.HintFromProbabilities(out.Probs[i])
			rows = append(rows, Table2Row{
				Secret: w, Probs: out.Probs[i], Centered: h.Mean, Variance: h.Variance,
			})
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("experiments: no measurement of secret %d in this attack", w)
		}
	}
	return rows, nil
}

// Table3Result carries the Table III numbers.
type Table3Result struct {
	WithoutHintsBikz float64
	WithHintsBikz    float64
	WithoutHintsBits float64
	WithHintsBits    float64
}

// RunTable3 reproduces Table III: the primal-attack cost without hints and
// with the attack's full per-coefficient hints, for SEAL-128
// (q=132120577, n=1024, σ=3.2).
func RunTable3(params *bfv.Parameters, res *core.AttackResult) (*Table3Result, error) {
	loss, err := core.EstimateFullHints(params, res)
	if err != nil {
		return nil, err
	}
	return &Table3Result{
		WithoutHintsBikz: loss.BaselineBikz,
		WithHintsBikz:    loss.HintedBikz,
		WithoutHintsBits: loss.BaselineBits,
		WithHintsBits:    loss.HintedBits,
	}, nil
}

// Table4Result carries the Table IV numbers.
type Table4Result struct {
	WithoutHintsBikz   float64
	WithHintsBikz      float64
	WithGuessesBikz    float64
	NumberOfGuesses    int
	SuccessProbability float64
}

// RunTable4 reproduces Table IV: the branch-only adversary (signs and
// zeroes only), plus one guess on the most confident remaining coordinate.
func RunTable4(params *bfv.Parameters, res *core.AttackResult) (*Table4Result, error) {
	loss, err := core.EstimateSignOnly(params, res)
	if err != nil {
		return nil, err
	}
	guessBikz, guess, err := core.SignOnlyWithGuess(params, res)
	if err != nil {
		return nil, err
	}
	return &Table4Result{
		WithoutHintsBikz:   loss.BaselineBikz,
		WithHintsBikz:      loss.HintedBikz,
		WithGuessesBikz:    guessBikz,
		NumberOfGuesses:    1,
		SuccessProbability: guess.SuccessProb,
	}, nil
}

// Fig3Result carries the Fig. 3 data: the full trace portion over three
// coefficient samplings (a) and the per-branch sub-traces (b).
type Fig3Result struct {
	Full      trace.Trace
	Zero      trace.Trace
	Positive  trace.Trace
	Negative  trace.Trace
	PeakCount int
}

// RunFig3 reproduces Fig. 3: a trace portion with one positive, one
// negative, and one zero coefficient sampling, segmented by the visible
// peaks.
func RunFig3(seed uint64) (*Fig3Result, error) {
	dev := core.NewDevice(seed)
	// Three coefficients (+ sentinel): noise > 0, noise < 0, noise = 0.
	values := []int64{3, -3, 0, 0}
	src, err := core.FirmwareSource(len(values), bfv.PaperQ)
	if err != nil {
		return nil, err
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	cn := sampler.DefaultClippedNormal()
	metas := core.SyntheticMetas(sampler.NewXoshiro256(seed^0x33), cn, len(values))
	tr, segs, err := dev.SegmentCapture(fw, values, metas)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Full:      tr,
		Positive:  segs[0].Samples,
		Negative:  segs[1].Samples,
		Zero:      segs[2].Samples,
		PeakCount: len(segs),
	}, nil
}

// FormatTable1 renders the Table I layout.
func FormatTable1(r *Table1Result, lo, hi int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — attack success percentages (%d coefficients)\n", r.Coefficients)
	fmt.Fprintf(&b, "sign accuracy: %.1f%%   zero accuracy: %.1f%%\n",
		100*r.SignAccuracy, 100*r.ZeroAccuracy)
	b.WriteString(r.Confusion.FormatTable(lo, hi))
	return b.String()
}

// FormatTable2 renders Table II.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II — guessing probabilities from selected measurements\n")
	fmt.Fprintf(&b, "%7s", "secret")
	for v := -2; v <= 2; v++ {
		fmt.Fprintf(&b, "%12d", v)
	}
	fmt.Fprintf(&b, "%12s%12s\n", "centered", "variance")
	for _, row := range rows {
		fmt.Fprintf(&b, "%7d", row.Secret)
		for v := -2; v <= 2; v++ {
			fmt.Fprintf(&b, "%12.3g", row.Probs[v])
		}
		fmt.Fprintf(&b, "%12.4g%12.4g\n", row.Centered, row.Variance)
	}
	return b.String()
}

// FormatTable3 renders Table III next to the paper's numbers.
func FormatTable3(r *Table3Result) string {
	var b strings.Builder
	b.WriteString("Table III — cost of attack with/without hints (SEAL-128)\n")
	fmt.Fprintf(&b, "%-32s %10s %14s\n", "", "measured", "paper")
	fmt.Fprintf(&b, "%-32s %10.2f %14s\n", "attack without hints (bikz)", r.WithoutHintsBikz, "382.25")
	fmt.Fprintf(&b, "%-32s %10.2f %14s\n", "attack with hints (bikz)", r.WithHintsBikz, "12.2")
	fmt.Fprintf(&b, "%-32s %10.1f %14s\n", "security without hints (bits)", r.WithoutHintsBits, "128")
	fmt.Fprintf(&b, "%-32s %10.1f %14s\n", "security with hints (bits)", r.WithHintsBits, "4.4")
	return b.String()
}

// FormatTable4 renders Table IV next to the paper's numbers.
func FormatTable4(r *Table4Result) string {
	var b strings.Builder
	b.WriteString("Table IV — branch-only adversary (SEAL-128)\n")
	fmt.Fprintf(&b, "%-36s %10s %14s\n", "", "measured", "paper")
	fmt.Fprintf(&b, "%-36s %10.2f %14s\n", "attack without hints (bikz)", r.WithoutHintsBikz, "382.25")
	fmt.Fprintf(&b, "%-36s %10.2f %14s\n", "attack with hints (bikz)", r.WithHintsBikz, "253.29")
	fmt.Fprintf(&b, "%-36s %10.2f %14s\n", "attack with hints & guesses (bikz)", r.WithGuessesBikz, "252.83")
	fmt.Fprintf(&b, "%-36s %10d %14s\n", "number of guesses", r.NumberOfGuesses, "1")
	fmt.Fprintf(&b, "%-36s %9.0f%% %14s\n", "success probability", 100*r.SuccessProbability, "20%")
	return b.String()
}

// SortedLabels lists the labels of a probability map in ascending order
// (rendering helper).
func SortedLabels(p map[int]float64) []int {
	out := make([]int, 0, len(p))
	for v := range p {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// CrossDeviceResult quantifies template portability: profile on device A,
// attack device A (baseline) and a process-variation sibling B (§V-B of
// the paper: "we limit our attack to a single device; cross-device attacks
// may need a more complicated, machine-learning-based profiling").
type CrossDeviceResult struct {
	SameDeviceValueAcc  float64
	CrossDeviceValueAcc float64
	SameDeviceSignAcc   float64
	CrossDeviceSignAcc  float64
}

// RunCrossDevice profiles on one device and attacks both it and a sibling
// whose leakage coefficients differ by ±spread.
func RunCrossDevice(cfg Config, spread float64) (*CrossDeviceResult, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	sibling := s.Device.Perturb(cfg.Seed^0xDEAD, spread)

	attack := func(dev *core.Device) (valueAcc, signAcc float64, err error) {
		pt := s.Params.NewPlaintext()
		cap, err := core.CaptureEncryption(dev, s.Params, s.Encryptor, pt)
		if err != nil {
			return 0, 0, err
		}
		out, err := s.Classifier.Attack(cap, s.Params.N)
		if err != nil {
			return 0, 0, err
		}
		return out.E2.Accuracy(cap.Truth.E2)
	}
	res := &CrossDeviceResult{}
	if res.SameDeviceValueAcc, res.SameDeviceSignAcc, err = attack(s.Device); err != nil {
		return nil, err
	}
	if res.CrossDeviceValueAcc, res.CrossDeviceSignAcc, err = attack(sibling); err != nil {
		return nil, err
	}
	return res, nil
}

// SweepRow is one parameter set in the security sweep.
type SweepRow struct {
	N             int
	LogQ          int
	BaselineBikz  float64
	FullHintsBikz float64
	SignHintsBikz float64
	BaselineBits  float64
	FullHintsBits float64
}

// RunSecuritySweep estimates the attack's impact across the SEAL default
// parameter sets (the paper: "our attack is applicable to all security
// levels and values of n"). Hints are modeled at the paper's quality:
// perfect values for the full attack, half-normal conditioning for signs.
func RunSecuritySweep(degrees []int, seed uint64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, n := range degrees {
		params, err := bfv.DefaultParameters(n, 256)
		if err != nil {
			return nil, err
		}
		q := 1.0
		logQ := 0
		for _, m := range params.Moduli {
			q *= float64(m)
		}
		logQ = params.Q().BitLen()
		sigma := params.Sigma

		fresh := func() (*dbdd.Instance, error) {
			return dbdd.NewLWEInstance(n, n, q, 2.0/3.0, sigma*sigma)
		}
		base, err := fresh()
		if err != nil {
			return nil, err
		}
		baseBikz, err := base.EstimateBikz()
		if err != nil {
			return nil, err
		}
		cn, err := sampler.NewClippedNormal(sigma, 12.8*sigma)
		if err != nil {
			return nil, err
		}
		errs, _ := cn.SamplePoly(sampler.NewXoshiro256(seed^uint64(n)), n)

		full, err := fresh()
		if err != nil {
			return nil, err
		}
		signs, err := fresh()
		if err != nil {
			return nil, err
		}
		for i, e := range errs {
			if err := full.PerfectHint(n+i, float64(e)); err != nil {
				return nil, err
			}
			s := 0
			if e > 0 {
				s = 1
			} else if e < 0 {
				s = -1
			}
			if err := signs.SignHint(n+i, s); err != nil {
				return nil, err
			}
		}
		fullBikz, err := full.EstimateBikz()
		if err != nil {
			return nil, err
		}
		signBikz, err := signs.EstimateBikz()
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			N: n, LogQ: logQ,
			BaselineBikz:  baseBikz,
			FullHintsBikz: fullBikz,
			SignHintsBikz: signBikz,
			BaselineBits:  dbdd.BikzToBits(baseBikz),
			FullHintsBits: dbdd.BikzToBits(fullBikz),
		})
	}
	return rows, nil
}

// FormatSweep renders the sweep as a table.
func FormatSweep(rows []SweepRow) string {
	var b strings.Builder
	b.WriteString("Security sweep across SEAL default parameter sets\n")
	fmt.Fprintf(&b, "%6s %6s %14s %14s %14s\n", "n", "logQ", "baseline", "sign hints", "full hints")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %9.1f bikz %9.1f bikz %9.1f bikz\n",
			r.N, r.LogQ, r.BaselineBikz, r.SignHintsBikz, r.FullHintsBikz)
	}
	return b.String()
}

// TimingResult quantifies §III-C's time-variance claim: the distribution
// of per-coefficient segment lengths across one sampling run. Fixed-stride
// windowing would require all lengths equal; the rejection sampling makes
// them vary.
type TimingResult struct {
	Lengths   []int
	Min, Max  int
	Mean      float64
	DistinctN int
}

// RunTimingVariance captures one n-coefficient sampling run and reports
// the per-segment length statistics.
func RunTimingVariance(n int, seed uint64) (*TimingResult, error) {
	dev := core.NewDevice(seed)
	src, err := core.FirmwareSource(n, bfv.PaperQ)
	if err != nil {
		return nil, err
	}
	fw, err := core.AssembleFirmware(src)
	if err != nil {
		return nil, err
	}
	cn := sampler.DefaultClippedNormal()
	prng := sampler.NewXoshiro256(seed ^ 0xA5)
	values, metas := cn.SamplePoly(prng, n)
	_, segs, err := dev.SegmentCapture(fw, values, metas)
	if err != nil {
		return nil, err
	}
	res := &TimingResult{Min: int(^uint(0) >> 1)}
	distinct := map[int]bool{}
	total := 0
	for _, s := range segs[:len(segs)-1] { // last segment includes the tail
		l := len(s.Samples)
		res.Lengths = append(res.Lengths, l)
		if l < res.Min {
			res.Min = l
		}
		if l > res.Max {
			res.Max = l
		}
		distinct[l] = true
		total += l
	}
	res.Mean = float64(total) / float64(len(res.Lengths))
	res.DistinctN = len(distinct)
	return res, nil
}
