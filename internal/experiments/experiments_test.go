package experiments

import (
	"strings"
	"testing"
)

// One shared session keeps the test suite fast; the experiments are
// deterministic for a fixed config.
func testSession(t *testing.T) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ProfileTracesPerValue = 30
	cfg.AttackEncryptions = 1
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTables1Through4(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	s := testSession(t)
	t1, err := s.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if t1.SignAccuracy != 1.0 {
		t.Errorf("sign accuracy %.3f, paper claims 100%%", t1.SignAccuracy)
	}
	if t1.ZeroAccuracy != 1.0 {
		t.Errorf("zero accuracy %.3f, paper claims 100%%", t1.ZeroAccuracy)
	}
	if t1.Coefficients != 2*1024*s.Config.AttackEncryptions {
		t.Errorf("coefficient count %d", t1.Coefficients)
	}
	// Negative values must be classified better than positive ones.
	negAvg, posAvg, n := 0.0, 0.0, 0
	for v := 1; v <= 4; v++ {
		if t1.Confusion.Total(v) > 10 && t1.Confusion.Total(-v) > 10 {
			posAvg += t1.Confusion.Accuracy(v)
			negAvg += t1.Confusion.Accuracy(-v)
			n++
		}
	}
	if n > 0 && negAvg <= posAvg {
		t.Errorf("negatives (%.3f) should beat positives (%.3f)", negAvg/float64(n), posAvg/float64(n))
	}
	text := FormatTable1(t1, -7, 7)
	if !strings.Contains(text, "Table I") {
		t.Error("Table I formatting broken")
	}

	// Tables II and III need the measurement quality the paper reports
	// (posteriors ≈ 1, its Table II): the low-noise session.
	cfgLN := DefaultConfig()
	cfgLN.LowNoise = true
	cfgLN.AttackEncryptions = 1
	sLN, err := NewSession(cfgLN)
	if err != nil {
		t.Fatal(err)
	}
	t1LN, err := sLN.RunTable1()
	if err != nil {
		t.Fatal(err)
	}

	rows, err := RunTable2(t1LN.LastOutcome.E2, t1LN.LastCapture.Truth.E2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table II rows: %d", len(rows))
	}
	for _, r := range rows {
		// The true value should carry (most of) the probability mass, as
		// in the paper's Table II where posteriors round to ≈1.
		if r.Probs[r.Secret] < 0.5 {
			t.Errorf("secret %d has posterior %.3f on the truth", r.Secret, r.Probs[r.Secret])
		}
		if r.Variance < 0 {
			t.Errorf("negative variance for secret %d", r.Secret)
		}
	}
	if !strings.Contains(FormatTable2(rows), "centered") {
		t.Error("Table II formatting broken")
	}

	t3, err := RunTable3(sLN.Params, t1LN.LastOutcome.E2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.WithoutHintsBikz < 300 || t3.WithoutHintsBikz > 460 {
		t.Errorf("baseline bikz %.2f outside the paper's regime (382.25)", t3.WithoutHintsBikz)
	}
	if t3.WithHintsBikz > 60 {
		t.Errorf("with-hints bikz %.2f: expected a (near) break (paper 12.2)", t3.WithHintsBikz)
	}
	if !strings.Contains(FormatTable3(t3), "382.25") {
		t.Error("Table III formatting broken")
	}

	t4, err := RunTable4(s.Params, t1.LastOutcome.E2)
	if err != nil {
		t.Fatal(err)
	}
	if t4.WithHintsBikz <= t3.WithHintsBikz {
		t.Error("sign-only hints must leave more hardness than full hints")
	}
	if t4.WithHintsBikz >= t4.WithoutHintsBikz {
		t.Error("sign hints must reduce hardness")
	}
	if t4.WithGuessesBikz > t4.WithHintsBikz {
		t.Error("a guess must not increase hardness")
	}
	if t4.SuccessProbability <= 0 || t4.SuccessProbability > 1 {
		t.Errorf("guess success probability %v", t4.SuccessProbability)
	}
	if !strings.Contains(FormatTable4(t4), "253.29") {
		t.Error("Table IV formatting broken")
	}
}

func TestFig3(t *testing.T) {
	r, err := RunFig3(77)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakCount != 4 { // 3 coefficients + sentinel
		t.Errorf("peaks=%d want 4", r.PeakCount)
	}
	if len(r.Full) == 0 || len(r.Zero) == 0 || len(r.Positive) == 0 || len(r.Negative) == 0 {
		t.Fatal("empty figure series")
	}
	// The three branch sub-traces must be pairwise distinct (V1 visible).
	same := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(r.Zero, r.Positive) || same(r.Zero, r.Negative) || same(r.Positive, r.Negative) {
		t.Error("branch sub-traces are identical — no control-flow leakage")
	}
	// The negative branch executes two more instructions than the positive
	// one, so its segment is longer at equal port wait... compare against
	// zero (shortest body): negative must be the longest fixed tail.
	if len(r.Negative) <= len(r.Zero)-12 {
		t.Error("negative branch sub-trace suspiciously short")
	}
}

func TestSortedLabels(t *testing.T) {
	got := SortedLabels(map[int]float64{3: 1, -1: 1, 0: 1})
	if len(got) != 3 || got[0] != -1 || got[2] != 3 {
		t.Errorf("labels=%v", got)
	}
}

func TestRunCrossDevice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProfileTracesPerValue = 30
	cfg.AttackEncryptions = 1
	res, err := RunCrossDevice(cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Templates must transfer worse to the perturbed sibling (§V-B).
	if res.CrossDeviceValueAcc >= res.SameDeviceValueAcc {
		t.Errorf("cross-device value accuracy %.3f not below same-device %.3f",
			res.CrossDeviceValueAcc, res.SameDeviceValueAcc)
	}
	if res.SameDeviceSignAcc != 1.0 {
		t.Errorf("same-device sign accuracy %.3f, want 100%%", res.SameDeviceSignAcc)
	}
}

func TestSecuritySweep(t *testing.T) {
	rows, err := RunSecuritySweep([]int{1024, 2048, 4096}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.FullHintsBikz >= r.SignHintsBikz {
			t.Errorf("n=%d: full hints (%.1f) must beat sign hints (%.1f)",
				r.N, r.FullHintsBikz, r.SignHintsBikz)
		}
		if r.SignHintsBikz >= r.BaselineBikz {
			t.Errorf("n=%d: sign hints (%.1f) must beat baseline (%.1f)",
				r.N, r.SignHintsBikz, r.BaselineBikz)
		}
		// Full hints break every parameter set (the paper's "applicable to
		// all security levels" claim): error coordinates all eliminated.
		if r.FullHintsBits > 40 {
			t.Errorf("n=%d: full-hints security %.1f bits — not a break", r.N, r.FullHintsBits)
		}
	}
	if !strings.Contains(FormatSweep(rows), "Security sweep") {
		t.Error("sweep formatting broken")
	}
}

func TestRunTimingVariance(t *testing.T) {
	res, err := RunTimingVariance(128, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lengths) != 127 {
		t.Fatalf("lengths=%d want 127", len(res.Lengths))
	}
	// §III-C: the duration must actually vary (rejection sampling).
	if res.DistinctN < 3 {
		t.Errorf("only %d distinct segment lengths — no time variance?", res.DistinctN)
	}
	if res.Min >= res.Max {
		t.Error("min/max wrong")
	}
	if res.Mean < float64(res.Min) || res.Mean > float64(res.Max) {
		t.Error("mean outside [min,max]")
	}
}
