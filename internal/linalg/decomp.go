package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with m = L L^T. m must be
// symmetric positive definite.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// LogDetSPD returns log(det(m)) for a symmetric positive definite matrix
// via its Cholesky factor (numerically stable for tiny determinants).
func LogDetSPD(m *Matrix) (float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum, nil
}

// SolveCholesky solves m x = b given the Cholesky factor L of m.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LU holds an LU factorization with partial pivoting: P m = L U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// NewLU factors m (square) with partial pivoting.
func NewLU(m *Matrix) (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: LU needs square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	lu := m.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, maxAbs := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > maxAbs {
				p, maxAbs = r, a
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		inv := 1.0 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Set(r, j, lu.At(r, j)-f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves m x = b using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward: L y = Pb (unit diagonal).
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
	}
	// Back: U x = y.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns m^-1 via LU factorization.
func Inverse(m *Matrix) (*Matrix, error) {
	f, err := NewLU(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Solve solves m x = b directly.
func Solve(m *Matrix, b []float64) ([]float64, error) {
	f, err := NewLU(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det returns det(m).
func Det(m *Matrix) (float64, error) {
	f, err := NewLU(m)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}

// RegularizeSPD adds ridge*I to the diagonal of a covariance matrix in
// place and returns it; used to repair near-singular pooled covariances
// estimated from finite trace sets.
func RegularizeSPD(m *Matrix, ridge float64) *Matrix {
	for i := 0; i < m.Rows && i < m.Cols; i++ {
		m.Set(i, i, m.At(i, i)+ridge)
	}
	return m
}
