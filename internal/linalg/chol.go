package linalg

import (
	"fmt"
	"math"
)

// CholFactor is a cached Cholesky factorization of a symmetric positive
// definite matrix, prepared once and reused across many solves — the shape
// of the template-attack hot path, where one pooled covariance is solved
// against every classified sub-trace. Besides the lower factor L it keeps a
// row-major copy of L^T (so back substitution walks memory sequentially
// instead of striding down a column), the diagonal, and the log-determinant.
//
// Every solve performs exactly the floating-point operations of
// SolveCholesky in the same order, so results are bitwise identical to a
// fresh factor-and-solve; the caching is purely a throughput optimization.
type CholFactor struct {
	n      int
	lower  []float64 // row-major n×n lower-triangular factor L
	upper  []float64 // row-major n×n L^T: row i holds column i of L
	diag   []float64
	logDet float64
}

// NewCholFactor factors m (symmetric positive definite) and prepares the
// cached solve structures.
func NewCholFactor(m *Matrix) (*CholFactor, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return CholFactorOf(l), nil
}

// CholFactorOf wraps an existing lower-triangular Cholesky factor (as
// produced by Cholesky) without re-factoring.
func CholFactorOf(l *Matrix) *CholFactor {
	n := l.Rows
	f := &CholFactor{
		n:     n,
		lower: append([]float64(nil), l.Data...),
		upper: make([]float64, n*n),
		diag:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		f.diag[i] = l.Data[i*n+i]
		f.logDet += 2 * math.Log(f.diag[i])
		for k := 0; k <= i; k++ {
			f.upper[k*n+i] = l.Data[i*n+k]
		}
	}
	return f
}

// N returns the dimension of the factored matrix.
func (f *CholFactor) N() int { return f.n }

// LogDet returns log(det(m)) of the factored matrix.
func (f *CholFactor) LogDet() float64 { return f.logDet }

// Lower returns a copy of the lower-triangular factor as a Matrix.
func (f *CholFactor) Lower() *Matrix {
	m := NewMatrix(f.n, f.n)
	copy(m.Data, f.lower)
	return m
}

// SolveInto solves m x = b into caller-owned buffers: x receives the
// solution, y is forward-substitution scratch. x, y and b must all have
// length n (x and y may not alias b). No allocation happens on this path,
// and the arithmetic matches SolveCholesky operation for operation.
func (f *CholFactor) SolveInto(x, y, b []float64) error {
	n := f.n
	if len(b) != n {
		return fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if len(x) != n || len(y) != n {
		return fmt.Errorf("linalg: solve buffers %d/%d, want %d", len(x), len(y), n)
	}
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := f.lower[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / f.diag[i]
	}
	// Back substitution L^T x = y, reading L^T rows sequentially.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		row := f.upper[i*n+i+1 : (i+1)*n]
		for k, v := range row {
			s -= v * x[i+1+k]
		}
		x[i] = s / f.diag[i]
	}
	return nil
}

// Solve solves m x = b, allocating fresh buffers.
func (f *CholFactor) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	y := make([]float64, f.n)
	if err := f.SolveInto(x, y, b); err != nil {
		return nil, err
	}
	return x, nil
}

// Inverse returns m^-1, computed column by column through the cached
// factor. Intended for train-time precomputation (the inverse covariance a
// template serializes), not for per-classification use.
func (f *CholFactor) Inverse() *Matrix {
	n := f.n
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		// The factor is known-good, buffers are sized: SolveInto cannot fail.
		_ = f.SolveInto(x, y, e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
		e[j] = 0
	}
	return inv
}
