package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite matrix A A^T + I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	at := a.Transpose()
	spd, _ := a.Mul(at)
	return RegularizeSPD(spd, 1)
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 20} {
		m := randomSPD(rng, n)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lt := l.Transpose()
		recon, _ := l.Mul(lt)
		if d := MaxAbsDiff(recon, m); d > 1e-9*float64(n) {
			t.Errorf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(m); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("want ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
}

func TestLogDetSPD(t *testing.T) {
	m, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	ld, err := LogDetSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld-math.Log(36)) > 1e-12 {
		t.Errorf("logdet=%v want %v", ld, math.Log(36))
	}
	// Tiny determinant must not underflow to -Inf erroneously.
	tiny := Identity(100).Scale(1e-30)
	ld, err = LogDetSPD(tiny)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * math.Log(1e-30)
	if math.Abs(ld-want) > 1e-6*math.Abs(want) {
		t.Errorf("tiny logdet=%v want %v", ld, want)
	}
}

func TestSolveCholeskyAgainstLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 10} {
		m := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		x1, err := SolveCholesky(l, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := Solve(m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				t.Errorf("n=%d: solutions disagree at %d: %v vs %v", n, i, x1[i], x2[i])
			}
		}
		if _, err := SolveCholesky(l, make([]float64, n+1)); err == nil {
			t.Error("rhs length mismatch should fail")
		}
	}
}

func TestLUSolveResidual(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(m, b)
		if err != nil {
			// Singular random matrices are measure-zero; accept the error path.
			return errors.Is(err, ErrSingular)
		}
		ax, _ := m.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDetKnown(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	d, err := Det(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("det=%v want -2", d)
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	d, err = Det(sing)
	if err != nil || d != 0 {
		t.Errorf("singular det=%v err=%v want 0, nil", d, err)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 6} {
		m := randomSPD(rng, n)
		inv, err := Inverse(m)
		if err != nil {
			t.Fatal(err)
		}
		prod, _ := m.Mul(inv)
		if d := MaxAbsDiff(prod, Identity(n)); d > 1e-8 {
			t.Errorf("n=%d: m*m^-1 differs from I by %g", n, d)
		}
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(sing); !errors.Is(err, ErrSingular) {
		t.Errorf("singular inverse: want ErrSingular, got %v", err)
	}
	if _, err := NewLU(NewMatrix(2, 3)); err == nil {
		t.Error("non-square LU should fail")
	}
}

func TestDetSignFromPivoting(t *testing.T) {
	// A permutation matrix with one swap has determinant -1.
	m, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	d, err := Det(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-1)) > 1e-12 {
		t.Errorf("det(swap)=%v want -1", d)
	}
}

func TestRegularizeSPD(t *testing.T) {
	m := NewMatrix(2, 2)
	RegularizeSPD(m, 0.5)
	if m.At(0, 0) != 0.5 || m.At(1, 1) != 0.5 || m.At(0, 1) != 0 {
		t.Errorf("RegularizeSPD wrong: %v", m.Data)
	}
}

func TestEigSymDiagonal(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigSym(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("eigenvalues=%v", vals)
	}
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-9 {
		t.Errorf("first eigenvector=%v", vecs.Data)
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 5, 12} {
		m := randomSPD(rng, n)
		vals, vecs, err := EigSym(m, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V diag(λ) Vᵀ.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
			if vals[i] <= 0 {
				t.Errorf("SPD matrix has non-positive eigenvalue %v", vals[i])
			}
			if i > 0 && vals[i] > vals[i-1]+1e-12 {
				t.Error("eigenvalues not sorted descending")
			}
		}
		vd, _ := vecs.Mul(d)
		recon, _ := vd.Mul(vecs.Transpose())
		if diff := MaxAbsDiff(recon, m); diff > 1e-8*float64(n) {
			t.Errorf("n=%d: reconstruction error %g", n, diff)
		}
		// Orthonormal eigenvectors: VᵀV = I.
		vtv, _ := vecs.Transpose().Mul(vecs)
		if diff := MaxAbsDiff(vtv, Identity(n)); diff > 1e-9*float64(n) {
			t.Errorf("n=%d: eigenvectors not orthonormal (%g)", n, diff)
		}
	}
}

func TestEigSymMatchesDeterminantAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomSPD(rng, 6)
	vals, _, err := EigSym(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	prodEig, sumEig := 1.0, 0.0
	for _, v := range vals {
		prodEig *= v
		sumEig += v
	}
	det, err := Det(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det-prodEig)/math.Abs(det) > 1e-8 {
		t.Errorf("det %v vs eigen product %v", det, prodEig)
	}
	tr := 0.0
	for i := 0; i < 6; i++ {
		tr += m.At(i, i)
	}
	if math.Abs(tr-sumEig) > 1e-8*math.Abs(tr) {
		t.Errorf("trace %v vs eigen sum %v", tr, sumEig)
	}
}

func TestEigSymValidation(t *testing.T) {
	if _, _, err := EigSym(NewMatrix(2, 3), 0, 0); err == nil {
		t.Error("non-square should fail")
	}
	asym, _ := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, _, err := EigSym(asym, 0, 0); err == nil {
		t.Error("asymmetric should fail")
	}
}
