package linalg

import "testing"

// Layer benchmarks for the dense kernels on the template-attack hot path:
// matrix product (LDA, covariance work), matrix-vector product (DBDD
// covariance updates), and the Cholesky solve (Mahalanobis distances),
// cached versus fresh.
//
//	go test -bench . ./internal/linalg

func benchmarkMul(b *testing.B, n int) {
	a := seededSPD(n, 1)
	c := seededSPD(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Mul(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul12(b *testing.B)  { benchmarkMul(b, 12) }
func BenchmarkMul128(b *testing.B) { benchmarkMul(b, 128) }

func benchmarkMulVec(b *testing.B, n int) {
	m := seededSPD(n, 3)
	v := seededVec(n, 4)
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVecInto(dst, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVec24(b *testing.B)   { benchmarkMulVec(b, 24) }
func BenchmarkMulVec1024(b *testing.B) { benchmarkMulVec(b, 1024) }

// BenchmarkSolveFresh is the pre-optimization scoring pattern: factor and
// allocate on every solve.
func BenchmarkSolveFresh(b *testing.B) {
	m := seededSPD(24, 5)
	rhs := seededVec(24, 6)
	l, err := Cholesky(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCholesky(l, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCached is the cached-factor path with reusable buffers.
func BenchmarkSolveCached(b *testing.B) {
	m := seededSPD(24, 5)
	rhs := seededVec(24, 6)
	f, err := NewCholFactor(m)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 24)
	y := make([]float64, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.SolveInto(x, y, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyFactor24(b *testing.B) {
	m := seededSPD(24, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(m); err != nil {
			b.Fatal(err)
		}
	}
}
