package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method: m = V diag(λ) Vᵀ, eigenvalues sorted descending
// with matching eigenvector columns. Robust and dependency-free; intended
// for the moderate dimensions of template/LDA work.
func EigSym(m *Matrix, tol float64, maxSweeps int) (values []float64, vectors *Matrix, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("linalg: EigSym needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if !m.IsSymmetric(1e-9 * (1 + maxAbs(m))) {
		return nil, nil, fmt.Errorf("linalg: EigSym needs a symmetric matrix")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	n := m.Rows
	a := m.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return math.Sqrt(s)
	}
	scale := 1 + maxAbs(m)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= tol*scale/float64(n*n) {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of a.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the rotation into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := range pairs {
		pairs[i] = pair{a.At(i, i), i}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].val > pairs[y].val })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for col, p := range pairs {
		values[col] = p.val
		for row := 0; row < n; row++ {
			vectors.Set(row, col, v.At(row, p.idx))
		}
	}
	return values, vectors, nil
}

func maxAbs(m *Matrix) float64 {
	out := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > out {
			out = a
		}
	}
	return out
}
