// Package linalg implements the dense float64 linear algebra needed by the
// side-channel template machinery (covariance estimation, multivariate
// Gaussian log-likelihoods) and the DBDD security estimator (covariance
// conditioning, log-determinants). It is deliberately small: row-major
// matrices, Gaussian elimination with partial pivoting, and Cholesky/LDL
// factorizations for symmetric positive (semi)definite systems.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out, nil
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= other.Data[i]
	}
	return out, nil
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// mulBlock is the k-panel width of the blocked matrix product: B rows
// touched inside a panel stay cache-resident across the i sweep.
const mulBlock = 64

// Mul returns the matrix product m * other. The product is blocked over
// panels of k and unrolled over j; every output element still accumulates
// its k terms in ascending order, so results are bitwise identical to the
// naive i-k-j loop.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	nc := other.Cols
	if nc == 0 || m.Rows == 0 {
		return out, nil
	}
	for k0 := 0; k0 < m.Cols; k0 += mulBlock {
		k1 := k0 + mulBlock
		if k1 > m.Cols {
			k1 = m.Cols
		}
		for i := 0; i < m.Rows; i++ {
			rowOut := out.Data[i*nc : (i+1)*nc]
			rowA := m.Data[i*m.Cols : (i+1)*m.Cols]
			for k := k0; k < k1; k++ {
				a := rowA[k]
				if a == 0 {
					// Skipping preserves the historical semantics: a zero
					// coefficient contributes nothing, even against ±Inf/NaN.
					continue
				}
				rowB := other.Data[k*nc : (k+1)*nc]
				j := 0
				for ; j+4 <= nc; j += 4 {
					rowOut[j] += a * rowB[j]
					rowOut[j+1] += a * rowB[j+1]
					rowOut[j+2] += a * rowB[j+2]
					rowOut[j+3] += a * rowB[j+3]
				}
				for ; j < nc; j++ {
					rowOut[j] += a * rowB[j]
				}
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	out := make([]float64, m.Rows)
	if err := m.MulVecInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes m * v into dst without allocating. dst must have
// length m.Rows. The row dot products are unrolled but keep a single
// accumulator in index order, so results are bitwise identical to MulVec's
// historical loop.
func (m *Matrix) MulVecInto(dst, v []float64) error {
	if m.Cols != len(v) {
		return fmt.Errorf("linalg: cannot multiply %dx%d by vector of length %d", m.Rows, m.Cols, len(v))
	}
	if len(dst) != m.Rows {
		return fmt.Errorf("linalg: destination length %d, want %d", len(dst), m.Rows)
	}
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : (i+1)*n]
		sum := 0.0
		j := 0
		for ; j+4 <= n; j += 4 {
			sum += row[j] * v[j]
			sum += row[j+1] * v[j+1]
			sum += row[j+2] * v[j+2]
			sum += row[j+3] * v[j+3]
		}
		for ; j < n; j++ {
			sum += row[j] * v[j]
		}
		dst[i] = sum
	}
	return nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// OuterProduct returns the matrix a b^T.
func OuterProduct(a, b []float64) *Matrix {
	m := NewMatrix(len(a), len(b))
	for i, ai := range a {
		for j, bj := range b {
			m.Set(i, j, ai*bj)
		}
	}
	return m
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two matrices of the same shape, or +Inf on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
