package linalg

import (
	"math"
	"testing"
)

// seededSPD builds a deterministic symmetric positive definite matrix:
// A A^T + n·I over a cheap LCG fill.
func seededSPD(n int, seed uint64) *Matrix {
	a := NewMatrix(n, n)
	s := seed
	for i := range a.Data {
		s = s*6364136223846793005 + 1442695040888963407
		a.Data[i] = float64(int64(s>>33))/float64(1<<30) - 0.5
	}
	at := a.Transpose()
	spd, err := a.Mul(at)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

func seededVec(n int, seed uint64) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>33)) / float64(1<<31)
	}
	return v
}

// TestCholFactorSolveBitwiseIdentical: the cached factor's solve must agree
// with a fresh Cholesky + SolveCholesky to exact float equality — the
// determinism contract the template scorer and the replay selftest rely on.
func TestCholFactorSolveBitwiseIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 12, 24, 33} {
		m := seededSPD(n, uint64(n)*977)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		f, err := NewCholFactor(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for rep := 0; rep < 3; rep++ {
			b := seededVec(n, uint64(n*100+rep))
			want, err := SolveCholesky(l, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, n)
			y := make([]float64, n)
			if err := f.SolveInto(x, y, b); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("n=%d rep=%d: Solve[%d] = %x, want %x", n, rep, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
				if math.Float64bits(want[i]) != math.Float64bits(x[i]) {
					t.Fatalf("n=%d rep=%d: SolveInto[%d] = %x, want %x", n, rep, i,
						math.Float64bits(x[i]), math.Float64bits(want[i]))
				}
			}
		}
		// The cached log-determinant must match the per-index accumulation
		// the template trainer historically used.
		wantLD := 0.0
		for i := 0; i < n; i++ {
			wantLD += 2 * math.Log(l.At(i, i))
		}
		if math.Float64bits(f.LogDet()) != math.Float64bits(wantLD) {
			t.Fatalf("n=%d: LogDet %v, want %v", n, f.LogDet(), wantLD)
		}
	}
}

func TestCholFactorSolveShapeErrors(t *testing.T) {
	f, err := NewCholFactor(seededSPD(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 5)); err == nil {
		t.Fatal("want rhs length error")
	}
	if err := f.SolveInto(make([]float64, 3), make([]float64, 4), make([]float64, 4)); err == nil {
		t.Fatal("want buffer length error")
	}
	if _, err := NewCholFactor(NewMatrix(3, 3)); err == nil {
		t.Fatal("want not-positive-definite error for the zero matrix")
	}
}

func TestCholFactorInverse(t *testing.T) {
	for _, n := range []int{1, 4, 12} {
		m := seededSPD(n, uint64(n)+5)
		f, err := NewCholFactor(m)
		if err != nil {
			t.Fatal(err)
		}
		inv := f.Inverse()
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(prod, Identity(n)); d > 1e-9 {
			t.Fatalf("n=%d: |m·inv − I| = %g", n, d)
		}
		// Against the LU-based general inverse.
		luInv, err := Inverse(m)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(inv, luInv); d > 1e-9 {
			t.Fatalf("n=%d: Cholesky inverse deviates from LU inverse by %g", n, d)
		}
	}
}

func TestCholFactorLowerRoundTrip(t *testing.T) {
	m := seededSPD(6, 42)
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	f := CholFactorOf(l)
	got := f.Lower()
	if d := MaxAbsDiff(got, l); d != 0 {
		t.Fatalf("Lower() deviates from the wrapped factor by %g", d)
	}
}

// TestMulVecIntoMatchesMulVec: the unrolled kernel must be bitwise equal to
// the plain index-order loop.
func TestMulVecIntoMatchesMulVec(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {7, 4}, {12, 12}, {5, 33}} {
		rows, cols := shape[0], shape[1]
		m := NewMatrix(rows, cols)
		s := uint64(rows*31 + cols)
		for i := range m.Data {
			s = s*6364136223846793005 + 1442695040888963407
			m.Data[i] = float64(int64(s>>33)) / float64(1<<31)
		}
		v := seededVec(cols, uint64(cols))
		// Reference: the historical simple loop.
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			sum := 0.0
			for j := 0; j < cols; j++ {
				sum += m.At(i, j) * v[j]
			}
			want[i] = sum
		}
		got, err := m.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("%dx%d: MulVec[%d] = %x, want %x", rows, cols, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		if err := m.MulVecInto(make([]float64, rows+1), v); err == nil {
			t.Fatal("want destination length error")
		}
	}
}

// TestMulBlockedMatchesNaive: the blocked product must match the naive
// i-k-j accumulation bit for bit, including the zero-skip semantics.
func TestMulBlockedMatchesNaive(t *testing.T) {
	for _, shape := range [][3]int{{1, 1, 1}, {3, 4, 5}, {12, 12, 12}, {9, 70, 6}, {5, 130, 7}} {
		ra, ca, cb := shape[0], shape[1], shape[2]
		a := NewMatrix(ra, ca)
		b := NewMatrix(ca, cb)
		s := uint64(ra*7 + ca*11 + cb)
		fill := func(m *Matrix) {
			for i := range m.Data {
				s = s*6364136223846793005 + 1442695040888963407
				if s%17 == 0 {
					m.Data[i] = 0 // exercise the zero-skip path
					continue
				}
				m.Data[i] = float64(int64(s>>33)) / float64(1<<31)
			}
		}
		fill(a)
		fill(b)
		want := NewMatrix(ra, cb)
		for i := 0; i < ra; i++ {
			for k := 0; k < ca; k++ {
				av := a.At(i, k)
				if av == 0 {
					continue
				}
				for j := 0; j < cb; j++ {
					want.Set(i, j, want.At(i, j)+av*b.At(k, j))
				}
			}
		}
		got, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("%v: Mul data[%d] = %x, want %x", shape, i,
					math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
	}
}
