package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	id := Identity(3)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(m, got) != 0 {
		t.Errorf("m*I != m: %v", got.Data)
	}
	if _, err := m.Mul(Identity(2)); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestMulKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Errorf("got %v want %v", got.Data, want.Data)
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{5, 5}, {5, 5}})
	if MaxAbsDiff(sum, want) != 0 {
		t.Error("Add wrong")
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(diff, a) != 0 {
		t.Error("Sub wrong")
	}
	if MaxAbsDiff(a.Scale(2), mustFromRows(t, [][]float64{{2, 4}, {6, 8}})) != 0 {
		t.Error("Scale wrong")
	}
	if _, err := a.Add(Identity(3)); err == nil {
		t.Error("Add shape mismatch should fail")
	}
	if _, err := a.Sub(Identity(3)); err == nil {
		t.Error("Sub shape mismatch should fail")
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return MaxAbsDiff(m.Transpose().Transpose(), m) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec got %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestDotNormOuter(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	op := OuterProduct([]float64{1, 2}, []float64{3, 4})
	want := [][]float64{{3, 4}, {6, 8}}
	for i := range want {
		for j := range want[i] {
			if op.At(i, j) != want[i][j] {
				t.Errorf("Outer(%d,%d)=%v", i, j, op.At(i, j))
			}
		}
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should fail")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows should give 0x0")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := mustFromRows(t, [][]float64{{2, 1}, {1, 3}})
	if !s.IsSymmetric(0) {
		t.Error("should be symmetric")
	}
	a := mustFromRows(t, [][]float64{{2, 1}, {0, 3}})
	if a.IsSymmetric(0.5) {
		t.Error("should not be symmetric")
	}
	if mustFromRows(t, [][]float64{{1, 2, 3}}).IsSymmetric(0) {
		t.Error("non-square is never symmetric")
	}
}

func TestRowClone(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row must return a copy")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must be deep")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if !math.IsInf(MaxAbsDiff(Identity(2), Identity(3)), 1) {
		t.Error("shape mismatch should give +Inf")
	}
}
