package modular

// Property tests for the production reduction kernels the RNS backend is
// built on: Montgomery multiplication against math/big over random large
// primes, Barrett exactness at the classic boundary values, and the lazy
// Shoup product's range/congruence contract.

import (
	"math/big"
	"math/rand"
	"testing"
)

// randomPrimes draws NTT-friendly primes of assorted widths up to the
// supported maximum (61 bits) via the same generator the ladder uses.
func randomPrimes(t *testing.T) []uint64 {
	t.Helper()
	var primes []uint64
	for _, bitSize := range []int{20, 31, 43, 54, MaxModulusBits} {
		ps, err := GeneratePrimes(bitSize, 2048, 2)
		if err != nil {
			t.Fatalf("GeneratePrimes(%d): %v", bitSize, err)
		}
		primes = append(primes, ps...)
	}
	return primes
}

// TestMontgomeryMatchesBigInt: MulMod through the Montgomery domain must
// equal math/big multiplication mod p for random operands over random
// large primes, and To/FromMont must be inverse bijections.
func TestMontgomeryMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6019))
	for _, q := range randomPrimes(t) {
		m, err := NewMontgomery(q)
		if err != nil {
			t.Fatalf("NewMontgomery(%d): %v", q, err)
		}
		bq := new(big.Int).SetUint64(q)
		prod := new(big.Int)
		for iter := 0; iter < 200; iter++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := prod.Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)).
				Mod(prod, bq).Uint64()
			if got := m.MulMod(a, b); got != want {
				t.Fatalf("q=%d: Montgomery MulMod(%d, %d) = %d, big.Int %d", q, a, b, got, want)
			}
			if rt := m.FromMont(m.ToMont(a)); rt != a {
				t.Fatalf("q=%d: FromMont(ToMont(%d)) = %d", q, a, rt)
			}
		}
	}
}

// TestBarrettBoundaryExactness: Reduce must be exact at the reduction
// boundaries 0, p-1, p, p+1, 2p-1, 2p and the top of the input range, and
// MulMod must match math/big at boundary operand pairs.
func TestBarrettBoundaryExactness(t *testing.T) {
	for _, q := range randomPrimes(t) {
		br, err := NewBarrett(q)
		if err != nil {
			t.Fatalf("NewBarrett(%d): %v", q, err)
		}
		inputs := []uint64{0, 1, q - 1, q, q + 1, 2*q - 1, 2 * q, 3 * q, ^uint64(0)}
		for _, x := range inputs {
			if got, want := br.Reduce(x), x%q; got != want {
				t.Fatalf("q=%d: Barrett Reduce(%d) = %d, want %d", q, x, got, want)
			}
		}
		bq := new(big.Int).SetUint64(q)
		ops := []uint64{0, 1, 2, q - 2, q - 1}
		prod := new(big.Int)
		for _, a := range ops {
			for _, b := range ops {
				want := prod.Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)).
					Mod(prod, bq).Uint64()
				if got := br.MulMod(a, b); got != want {
					t.Fatalf("q=%d: Barrett MulMod(%d, %d) = %d, want %d", q, a, b, got, want)
				}
			}
		}
	}
}

// TestMulShoupLazyContract: the lazy product must be congruent to a*b mod q
// and stay strictly below 2q for any multiplicand x (including the lazy
// NTT's up-to-4q operands), and one conditional subtraction must equal
// MulShoup exactly.
func TestMulShoupLazyContract(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1A2))
	for _, q := range randomPrimes(t) {
		for iter := 0; iter < 200; iter++ {
			y := rng.Uint64() % q
			yPre := ShoupPrecon(y, q)
			// x ranges over the full lazy domain, not just [0, q).
			x := rng.Uint64()
			if iter%4 == 0 {
				x %= 4 * q
			}
			r := MulShoupLazy(x, y, yPre, q)
			if r >= 2*q {
				t.Fatalf("q=%d: MulShoupLazy(%d, %d) = %d ≥ 2q", q, x, y, r)
			}
			if r%q != Mul(x%q, y, q) {
				t.Fatalf("q=%d: MulShoupLazy(%d, %d) ≡ %d, want %d", q, x, y, r%q, Mul(x%q, y, q))
			}
			strict := r
			if strict >= q {
				strict -= q
			}
			if got := MulShoup(x, y, yPre, q); got != strict {
				t.Fatalf("q=%d: MulShoup(%d, %d) = %d, lazy+sub = %d", q, x, y, got, strict)
			}
		}
	}
}
