package modular

import (
	"fmt"
	"math/bits"
)

// IsPrime reports whether n is prime using a deterministic Miller-Rabin
// test with a witness set proven exhaustive for all n < 2^64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 as d * 2^s.
	d := n - 1
	s := uint(0)
	for d&1 == 0 {
		d >>= 1
		s++
	}
	// This witness set is deterministic for n < 2^64 (Sorenson & Webster).
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := Exp(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for r := uint(1); r < s; r++ {
			x = Mul(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GeneratePrimes returns count primes of exactly bitSize bits that are
// congruent to 1 modulo m (so that an m-th root of unity exists mod each
// prime). Primes are returned in decreasing order starting just below
// 2^bitSize. This mirrors SEAL's CoeffModulus::Create.
func GeneratePrimes(bitSize int, m uint64, count int) ([]uint64, error) {
	if bitSize < 2 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("modular: prime bit size %d out of range [2,%d]", bitSize, MaxModulusBits)
	}
	if m == 0 {
		return nil, fmt.Errorf("modular: congruence modulus must be nonzero")
	}
	if count <= 0 {
		return nil, fmt.Errorf("modular: prime count %d must be positive", count)
	}
	primes := make([]uint64, 0, count)
	upper := uint64(1) << uint(bitSize)
	// Largest candidate below 2^bitSize congruent to 1 mod m.
	candidate := upper - 1
	candidate -= (candidate - 1) % m // now candidate ≡ 1 (mod m)
	for candidate >= (uint64(1)<<uint(bitSize-1)) && len(primes) < count {
		if IsPrime(candidate) {
			primes = append(primes, candidate)
		}
		if candidate < m {
			break
		}
		candidate -= m
	}
	if len(primes) < count {
		return nil, fmt.Errorf("modular: found only %d of %d primes with %d bits ≡ 1 mod %d",
			len(primes), count, bitSize, m)
	}
	return primes, nil
}

// PrimitiveRoot returns a generator of the multiplicative group mod prime q.
// q must be prime; the function factors q-1 by trial division (fine for the
// ≤61-bit NTT primes used here).
func PrimitiveRoot(q uint64) (uint64, error) {
	if !IsPrime(q) {
		return 0, fmt.Errorf("modular: %d is not prime", q)
	}
	if q == 2 {
		return 1, nil
	}
	factors := distinctPrimeFactors(q - 1)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, f := range factors {
			if Exp(g, (q-1)/f, q) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("modular: no primitive root found for %d", q)
}

// MinimalPrimitiveNthRoot returns the smallest primitive n-th root of unity
// modulo prime q. n must be a power of two dividing q-1.
func MinimalPrimitiveNthRoot(n, q uint64) (uint64, error) {
	if n == 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("modular: n=%d must be a power of two", n)
	}
	if (q-1)%n != 0 {
		return 0, fmt.Errorf("modular: %d does not divide %d-1", n, q)
	}
	g, err := PrimitiveRoot(q)
	if err != nil {
		return 0, err
	}
	root := Exp(g, (q-1)/n, q)
	// Scan the n/2 odd powers (all primitive n-th roots) for the minimum.
	min := root
	cur := root
	sq := Mul(root, root, q)
	for i := uint64(1); i < n/2; i++ {
		cur = Mul(cur, sq, q)
		if cur < min {
			min = cur
		}
	}
	if Exp(min, n, q) != 1 || (n > 1 && Exp(min, n/2, q) == 1) {
		return 0, fmt.Errorf("modular: internal error: %d is not a primitive %d-th root mod %d", min, n, q)
	}
	return min, nil
}

// distinctPrimeFactors returns the distinct prime factors of n by trial
// division.
func distinctPrimeFactors(n uint64) []uint64 {
	var factors []uint64
	for _, p := range []uint64{2, 3, 5} {
		if n%p == 0 {
			factors = append(factors, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	// Wheel over 6k±1.
	for f := uint64(7); f*f <= n; {
		for _, step := range []uint64{0, 4} { // f, f+4 covers 6k+1, 6k+5
			cand := f + step
			if cand*cand > n {
				break
			}
			if n%cand == 0 {
				factors = append(factors, cand)
				for n%cand == 0 {
					n /= cand
				}
			}
		}
		f += 6
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}

// CenteredRep maps a residue x mod q to its centered representative in
// (-q/2, q/2].
func CenteredRep(x, q uint64) int64 {
	if x > q/2 {
		return int64(x) - int64(q)
	}
	return int64(x)
}

// FromCentered maps a signed value v with |v| < q into its residue mod q.
func FromCentered(v int64, q uint64) uint64 {
	if v >= 0 {
		return uint64(v) % q
	}
	neg := uint64(-v) % q
	return Neg(neg, q)
}

// Log2Floor returns floor(log2(x)) for x > 0 and 0 for x == 0.
func Log2Floor(x uint64) int {
	if x == 0 {
		return 0
	}
	return bits.Len64(x) - 1
}
