// Package modular provides 64-bit modular arithmetic primitives used by the
// polynomial ring and BFV layers: addition, subtraction, multiplication via
// 128-bit intermediates, Barrett reduction, exponentiation, inversion,
// primality testing, and primitive root finding for NTT-friendly primes.
//
// All moduli are required to be in (1, 2^62) so that sums of two reduced
// operands never overflow a uint64. This matches Microsoft SEAL's
// SmallModulus constraint (at most 61 bits).
package modular

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width in bits.
const MaxModulusBits = 61

// Add returns (a + b) mod q. Both operands must already be reduced mod q.
func Add(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// Sub returns (a - b) mod q. Both operands must already be reduced mod q.
func Sub(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// Neg returns (-a) mod q for a already reduced mod q.
func Neg(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// Mul returns (a * b) mod q using a 128-bit intermediate product.
func Mul(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%q, lo, q)
	return rem
}

// Reduce returns a mod q for arbitrary a.
func Reduce(a, q uint64) uint64 { return a % q }

// Exp returns a^e mod q by square-and-multiply.
func Exp(a, e, q uint64) uint64 {
	if q == 1 {
		return 0
	}
	result := uint64(1)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base, q)
		}
		base = Mul(base, base, q)
		e >>= 1
	}
	return result
}

// Inverse returns a^-1 mod q and reports whether the inverse exists
// (i.e. gcd(a, q) == 1). It uses the extended Euclidean algorithm.
func Inverse(a, q uint64) (uint64, bool) {
	if q == 0 {
		return 0, false
	}
	a %= q
	if a == 0 {
		return 0, false
	}
	// Extended Euclid on (a, q) tracking only the coefficient of a.
	// Signed arithmetic is safe: coefficients are bounded by q < 2^62.
	var t0, t1 int64 = 0, 1
	r0, r1 := q, a
	for r1 != 0 {
		quot := r0 / r1
		r0, r1 = r1, r0-quot*r1
		t0, t1 = t1, t0-int64(quot)*t1
	}
	if r0 != 1 {
		return 0, false
	}
	if t0 < 0 {
		t0 += int64(q)
	}
	return uint64(t0), true
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ValidateModulus reports an error when q is unusable as a coefficient
// modulus (zero, one, or wider than MaxModulusBits bits).
func ValidateModulus(q uint64) error {
	if q <= 1 {
		return fmt.Errorf("modular: modulus %d must be greater than 1", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return fmt.Errorf("modular: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	return nil
}

// Barrett holds precomputed state for Barrett reduction modulo a fixed q.
// It computes x mod q for x < 2^64 without a hardware divide on the hot
// path, the same trick SEAL uses for its SmallModulus type.
type Barrett struct {
	q     uint64
	ratio [2]uint64 // floor(2^128 / q), low and high words
}

// NewBarrett precomputes the Barrett constant for q. q must satisfy
// ValidateModulus.
func NewBarrett(q uint64) (Barrett, error) {
	if err := ValidateModulus(q); err != nil {
		return Barrett{}, err
	}
	// Compute floor(2^128 / q) as a 128-bit value (hi, lo).
	// First floor(2^128 / q) = (2^64 / q) * 2^64 + floor((2^64 mod q)*2^64 / q).
	hiQuot, hiRem := bits.Div64(1, 0, q) // 2^64 = hiQuot*q + hiRem
	loQuot, _ := bits.Div64(hiRem, 0, q)
	return Barrett{q: q, ratio: [2]uint64{loQuot, hiQuot}}, nil
}

// Modulus returns the modulus this Barrett state reduces by.
func (b Barrett) Modulus() uint64 { return b.q }

// Reduce returns x mod q using Barrett reduction.
func (b Barrett) Reduce(x uint64) uint64 {
	// Estimate quotient: floor(x * ratio / 2^128), where ratio ~ 2^128/q.
	hi1, _ := bits.Mul64(x, b.ratio[0])
	hi2, lo2 := bits.Mul64(x, b.ratio[1])
	carry := uint64(0)
	_, c := bits.Add64(lo2, hi1, 0)
	carry = c
	quot := hi2 + carry
	r := x - quot*b.q
	for r >= b.q {
		r -= b.q
	}
	return r
}

// MulMod returns (x*y) mod q using 128-bit multiply followed by a
// 128-bit Barrett reduction.
func (b Barrett) MulMod(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return b.reduce128(hi, lo)
}

// reduce128 reduces the 128-bit value (hi, lo) modulo q.
func (b Barrett) reduce128(hi, lo uint64) uint64 {
	// quot = floor(((hi*2^64 + lo) * ratio) / 2^128) where ratio is 128-bit.
	// Expand the 256-bit product and keep the top 128 bits.
	// x = hi*2^64 + lo, r = r1*2^64 + r0.
	r0, r1 := b.ratio[0], b.ratio[1]

	// lo*r0 contributes its high word at position 2^64.
	h00, _ := bits.Mul64(lo, r0)
	// lo*r1 and hi*r0 contribute at 2^64 (low) and 2^128 (high).
	h01, l01 := bits.Mul64(lo, r1)
	h10, l10 := bits.Mul64(hi, r0)
	// hi*r1 contributes at 2^128 (low word) and 2^192 (high word).
	h11, l11 := bits.Mul64(hi, r1)

	// Sum the 2^64 column.
	mid, c1 := bits.Add64(h00, l01, 0)
	_, c2 := bits.Add64(mid, l10, 0)
	carryTo128 := c1 + c2

	// Sum the 2^128 column (this is the low word of the quotient).
	q0, c3 := bits.Add64(h01, h10, 0)
	q0, c4 := bits.Add64(q0, l11, 0)
	q0, c5 := bits.Add64(q0, carryTo128, 0)
	_ = h11 + c3 + c4 + c5 // 2^192 column, unused: quotient < 2^128 needed only mod 2^64 below

	// The true quotient fits in 128 bits; the remainder computation only
	// needs quot mod 2^64 since x < 2^128 and q < 2^62.
	r := lo - q0*b.q
	for r >= b.q {
		r -= b.q
	}
	return r
}

// MulShoup returns (x*y) mod q where yPrecon = floor(y * 2^64 / q) has been
// precomputed (Shoup multiplication). This is the hot-path primitive in the
// NTT butterfly. y must be reduced mod q.
func MulShoup(x, y, yPrecon, q uint64) uint64 {
	hi, _ := bits.Mul64(x, yPrecon)
	r := x*y - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// MulShoupLazy is MulShoup without the final conditional subtraction: the
// result is only guaranteed to lie in [0, 2q), congruent to x*y mod q. It
// is the butterfly primitive of the lazy-reduction NTT, where operands are
// themselves allowed to drift up to 4q before being brought back down.
// y must be reduced mod q; x may be any uint64.
func MulShoupLazy(x, y, yPrecon, q uint64) uint64 {
	hi, _ := bits.Mul64(x, yPrecon)
	return x*y - hi*q
}

// ShoupPrecon returns floor(y * 2^64 / q) for use with MulShoup.
func ShoupPrecon(y, q uint64) uint64 {
	quot, _ := bits.Div64(y, 0, q)
	return quot
}
