package modular

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testModuli covers small, medium, and SEAL-realistic moduli, including the
// paper's q = 132120577.
var testModuli = []uint64{2, 3, 17, 257, 65537, 132120577, 1152921504606584833, (1 << 61) - 1}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		for _, a := range []uint64{0, 1, q / 2, q - 1} {
			for _, b := range []uint64{0, 1, q / 3, q - 1} {
				got := Add(a, b, q)
				want := (a + b) % q
				if got != want {
					t.Errorf("Add(%d,%d,%d)=%d want %d", a, b, q, got, want)
				}
				if Sub(Add(a, b, q), b, q) != a {
					t.Errorf("Sub(Add(%d,%d),%d) mod %d != %d", a, b, b, q, a)
				}
				if Add(a, Neg(a, q), q) != 0 {
					t.Errorf("a + (-a) != 0 mod %d for a=%d", q, a)
				}
			}
		}
	}
}

func TestMulSmallCases(t *testing.T) {
	cases := []struct{ a, b, q, want uint64 }{
		{0, 0, 7, 0},
		{3, 4, 7, 5},
		{6, 6, 7, 1},
		{132120576, 132120576, 132120577, 1}, // (-1)*(-1) = 1
		{1 << 60, 1 << 60, (1 << 61) - 1, 1 << 59}, // 2^120 = 2^(61+59) ≡ 2^59 (mod 2^61-1)
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b, c.q); got != c.want {
			t.Errorf("Mul(%d,%d,%d)=%d want %d", c.a, c.b, c.q, got, c.want)
		}
	}
}

func TestExp(t *testing.T) {
	// Fermat's little theorem: a^(q-1) = 1 mod prime q for a != 0.
	for _, q := range []uint64{7, 257, 65537, 132120577} {
		for _, a := range []uint64{1, 2, 3, q - 1} {
			if got := Exp(a, q-1, q); got != 1 {
				t.Errorf("Exp(%d,%d,%d)=%d want 1", a, q-1, q, got)
			}
		}
	}
	if Exp(5, 0, 7) != 1 {
		t.Error("a^0 should be 1")
	}
	if Exp(5, 1, 7) != 5 {
		t.Error("a^1 should be a")
	}
}

func TestInverse(t *testing.T) {
	for _, q := range []uint64{7, 257, 65537, 132120577} {
		for a := uint64(1); a < 100 && a < q; a++ {
			inv, ok := Inverse(a, q)
			if !ok {
				t.Fatalf("Inverse(%d,%d) should exist", a, q)
			}
			if Mul(a, inv, q) != 1 {
				t.Errorf("a*a^-1 != 1 for a=%d q=%d", a, q)
			}
		}
	}
	if _, ok := Inverse(0, 7); ok {
		t.Error("Inverse(0) should not exist")
	}
	if _, ok := Inverse(6, 9); ok {
		t.Error("Inverse(6,9) should not exist (gcd 3)")
	}
	if inv, ok := Inverse(4, 9); !ok || Mul(4, inv, 9) != 1 {
		t.Error("Inverse(4,9) should exist")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {17, 13, 1}, {48, 36, 12},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValidateModulus(t *testing.T) {
	if err := ValidateModulus(0); err == nil {
		t.Error("modulus 0 should be rejected")
	}
	if err := ValidateModulus(1); err == nil {
		t.Error("modulus 1 should be rejected")
	}
	if err := ValidateModulus(1 << 62); err == nil {
		t.Error("62-bit modulus should be rejected")
	}
	if err := ValidateModulus(132120577); err != nil {
		t.Errorf("paper modulus rejected: %v", err)
	}
}

func TestBarrettMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range []uint64{3, 257, 132120577, (1 << 61) - 1} {
		b, err := NewBarrett(q)
		if err != nil {
			t.Fatal(err)
		}
		if b.Modulus() != q {
			t.Fatalf("Modulus()=%d want %d", b.Modulus(), q)
		}
		for i := 0; i < 2000; i++ {
			x := rng.Uint64()
			if got, want := b.Reduce(x), x%q; got != want {
				t.Fatalf("Barrett(%d).Reduce(%d)=%d want %d", q, x, got, want)
			}
			y := rng.Uint64() % q
			xr := x % q
			if got, want := b.MulMod(xr, y), Mul(xr, y, q); got != want {
				t.Fatalf("Barrett(%d).MulMod(%d,%d)=%d want %d", q, xr, y, got, want)
			}
		}
	}
}

func TestShoupMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range []uint64{257, 132120577, 1152921504606584833} {
		for i := 0; i < 2000; i++ {
			x := rng.Uint64() % q
			y := rng.Uint64() % q
			pre := ShoupPrecon(y, q)
			if got, want := MulShoup(x, y, pre, q), Mul(x, y, q); got != want {
				t.Fatalf("MulShoup(%d,%d) mod %d = %d want %d", x, y, q, got, want)
			}
		}
	}
}

// Property: Mul is commutative, associative, and distributes over Add.
func TestMulPropertiesQuick(t *testing.T) {
	const q = 132120577
	commutative := func(a, b uint64) bool {
		a, b = a%q, b%q
		return Mul(a, b, q) == Mul(b, a, q)
	}
	associative := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		return Mul(Mul(a, b, q), c, q) == Mul(a, Mul(b, c, q), q)
	}
	distributive := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		return Mul(a, Add(b, c, q), q) == Add(Mul(a, b, q), Mul(a, c, q), q)
	}
	for name, prop := range map[string]any{
		"commutative": commutative, "associative": associative, "distributive": distributive,
	} {
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Exp(a, e1+e2) == Exp(a,e1)*Exp(a,e2).
func TestExpHomomorphismQuick(t *testing.T) {
	const q = 65537
	prop := func(a uint64, e1, e2 uint16) bool {
		a %= q
		lhs := Exp(a, uint64(e1)+uint64(e2), q)
		rhs := Mul(Exp(a, uint64(e1), q), Exp(a, uint64(e2), q), q)
		return lhs == rhs
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCenteredRepRoundTrip(t *testing.T) {
	const q = 132120577
	prop := func(x uint64) bool {
		x %= q
		c := CenteredRep(x, q)
		if c > int64(q)/2 || c < -int64(q)/2 {
			return false
		}
		return FromCentered(c, q) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFromCenteredLargeMagnitude(t *testing.T) {
	const q = 17
	if FromCentered(-1, q) != 16 {
		t.Error("FromCentered(-1) wrong")
	}
	if FromCentered(-17, q) != 0 {
		t.Error("FromCentered(-q) wrong")
	}
	if FromCentered(35, q) != 1 {
		t.Error("FromCentered(2q+1) wrong")
	}
}

func BenchmarkMul(b *testing.B) {
	const q = 132120577
	x, y := uint64(987654321), uint64(123456789)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y, q)
	}
	sink = x
}

func BenchmarkBarrettMulMod(b *testing.B) {
	const q = 132120577
	br, _ := NewBarrett(q)
	x, y := uint64(987654)%q, uint64(123456789)%q
	for i := 0; i < b.N; i++ {
		x = br.MulMod(x, y)
	}
	sink = x
}

func BenchmarkMulShoup(b *testing.B) {
	const q = 132120577
	y := uint64(123456789) % q
	pre := ShoupPrecon(y, q)
	x := uint64(987654) % q
	for i := 0; i < b.N; i++ {
		x = MulShoup(x, y, pre, q)
	}
	sink = x
}

var sink uint64

func TestMontgomeryMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, q := range []uint64{3, 257, 12289, 132120577, (1 << 61) - 1} {
		m, err := NewMontgomery(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if m.Modulus() != q {
			t.Fatal("modulus accessor wrong")
		}
		for i := 0; i < 3000; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := m.MulMod(a, b), Mul(a, b, q); got != want {
				t.Fatalf("q=%d: MulMod(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
		// Form conversions round-trip.
		for _, a := range []uint64{0, 1, q - 1, q / 2} {
			if m.FromMont(m.ToMont(a)) != a {
				t.Fatalf("q=%d: Montgomery round trip failed for %d", q, a)
			}
		}
	}
}

func TestMontgomeryRejectsEvenModulus(t *testing.T) {
	if _, err := NewMontgomery(1 << 20); err == nil {
		t.Error("even modulus should fail")
	}
	if _, err := NewMontgomery(0); err == nil {
		t.Error("zero modulus should fail")
	}
}

// Property: Montgomery-form multiplication is associative and matches the
// plain product after conversion.
func TestMontgomeryPropertiesQuick(t *testing.T) {
	const q = 132120577
	m, err := NewMontgomery(q)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		am, bm, cm := m.ToMont(a), m.ToMont(b), m.ToMont(c)
		lhs := m.MulMont(m.MulMont(am, bm), cm)
		rhs := m.MulMont(am, m.MulMont(bm, cm))
		if lhs != rhs {
			return false
		}
		return m.FromMont(lhs) == Mul(Mul(a, b, q), c, q)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMontgomeryMulMont(b *testing.B) {
	const q = 132120577
	m, _ := NewMontgomery(q)
	x := m.ToMont(987654)
	y := m.ToMont(123456789 % q)
	for i := 0; i < b.N; i++ {
		x = m.MulMont(x, y)
	}
	sink = x
}
