package modular

import (
	"testing"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true, 6: false,
		7: true, 9: false, 11: true, 25: false, 97: true, 100: false,
		65537: true, 65539: true, 65541: false,
		132120577: true, // the paper's q
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestIsPrimeLarge(t *testing.T) {
	// Known 61-bit NTT primes and near-misses.
	if !IsPrime((1 << 61) - 1) { // Mersenne prime M61
		t.Error("2^61-1 should be prime")
	}
	if IsPrime((1 << 61) - 3) {
		t.Error("2^61-3 is composite (divisible by 5)")
	}
	// Carmichael numbers must be rejected.
	for _, c := range []uint64{561, 1105, 1729, 2465, 2821, 6601, 8911} {
		if IsPrime(c) {
			t.Errorf("Carmichael number %d misclassified as prime", c)
		}
	}
}

func TestGeneratePrimes(t *testing.T) {
	// NTT-friendly primes for n=1024 (need ≡ 1 mod 2n = 2048).
	primes, err := GeneratePrimes(27, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 3 {
		t.Fatalf("want 3 primes, got %d", len(primes))
	}
	seen := map[uint64]bool{}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("%d is not prime", p)
		}
		if (p-1)%2048 != 0 {
			t.Errorf("%d is not ≡ 1 mod 2048", p)
		}
		if p>>26 != 1 {
			t.Errorf("%d is not a 27-bit prime", p)
		}
		if seen[p] {
			t.Errorf("duplicate prime %d", p)
		}
		seen[p] = true
	}
}

func TestGeneratePrimesErrors(t *testing.T) {
	if _, err := GeneratePrimes(1, 2, 1); err == nil {
		t.Error("bit size 1 should fail")
	}
	if _, err := GeneratePrimes(62, 2, 1); err == nil {
		t.Error("bit size 62 should fail")
	}
	if _, err := GeneratePrimes(27, 0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := GeneratePrimes(27, 2048, 0); err == nil {
		t.Error("count=0 should fail")
	}
	// Impossible: too many primes requested from a tiny window.
	if _, err := GeneratePrimes(4, 8, 10); err == nil {
		t.Error("should fail when window has too few primes")
	}
}

func TestPrimitiveRoot(t *testing.T) {
	for _, q := range []uint64{3, 5, 7, 257, 65537, 132120577} {
		g, err := PrimitiveRoot(q)
		if err != nil {
			t.Fatalf("PrimitiveRoot(%d): %v", q, err)
		}
		// g^(q-1) == 1 and g^((q-1)/f) != 1 for each prime factor f.
		if Exp(g, q-1, q) != 1 {
			t.Errorf("g^(q-1) != 1 for q=%d", q)
		}
		for _, f := range distinctPrimeFactors(q - 1) {
			if Exp(g, (q-1)/f, q) == 1 {
				t.Errorf("g=%d has order dividing (q-1)/%d for q=%d", g, f, q)
			}
		}
	}
	if _, err := PrimitiveRoot(8); err == nil {
		t.Error("composite modulus should fail")
	}
}

func TestMinimalPrimitiveNthRoot(t *testing.T) {
	const q = 132120577 // q-1 = 2^21 * 63
	for _, n := range []uint64{2, 4, 1024, 2048, 1 << 21} {
		w, err := MinimalPrimitiveNthRoot(n, q)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if Exp(w, n, q) != 1 {
			t.Errorf("w^n != 1 for n=%d", n)
		}
		if n > 1 && Exp(w, n/2, q) != q-1 {
			t.Errorf("w^(n/2) != -1 for n=%d (not primitive)", n)
		}
	}
	if _, err := MinimalPrimitiveNthRoot(3, q); err == nil {
		t.Error("non-power-of-two n should fail")
	}
	if _, err := MinimalPrimitiveNthRoot(1<<22, q); err == nil {
		t.Error("n not dividing q-1 should fail")
	}
}

func TestDistinctPrimeFactors(t *testing.T) {
	cases := []struct {
		n    uint64
		want []uint64
	}{
		{2, []uint64{2}},
		{12, []uint64{2, 3}},
		{132120576, []uint64{2, 3, 7}}, // 2^21 * 3^2 * 7
		{97, []uint64{97}},
		{49, []uint64{7}},
	}
	for _, c := range cases {
		got := distinctPrimeFactors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("factors(%d)=%v want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("factors(%d)=%v want %v", c.n, got, c.want)
			}
		}
	}
}

func TestLog2Floor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := Log2Floor(n); got != want {
			t.Errorf("Log2Floor(%d)=%d want %d", n, got, want)
		}
	}
}
