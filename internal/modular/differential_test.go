package modular_test

// Differential tests: the fast uint64 arithmetic against the slow math/big
// reference in internal/testkit, plus a committed golden vector pinning the
// exact outputs of every scalar operation (regenerate with -update).

import (
	"testing"

	"reveal/internal/modular"
	"reveal/internal/testkit"
)

// testModuli spans the sizes the attack uses: a tiny prime, the paper's
// q = 132120577, the 14-bit NTT prime used in small tests, and a 61-bit
// NTT prime near the top of the supported range.
var testModuli = []uint64{97, 12289, 132120577, 0x1fffffffffe00001}

func TestScalarOpsDifferential(t *testing.T) {
	r := testkit.NewRNG(2024)
	for _, q := range testModuli {
		br, err := modular.NewBarrett(q)
		if err != nil {
			t.Fatalf("NewBarrett(%d): %v", q, err)
		}
		mont, err := modular.NewMontgomery(q)
		if err != nil {
			t.Fatalf("NewMontgomery(%d): %v", q, err)
		}
		for i := 0; i < 2000; i++ {
			a, b := r.Uint64Below(q), r.Uint64Below(q)
			if got, want := modular.Add(a, b, q), testkit.RefAddMod(a, b, q); got != want {
				t.Fatalf("Add(%d,%d,%d) = %d, ref %d", a, b, q, got, want)
			}
			if got, want := modular.Sub(a, b, q), testkit.RefSubMod(a, b, q); got != want {
				t.Fatalf("Sub(%d,%d,%d) = %d, ref %d", a, b, q, got, want)
			}
			if got, want := modular.Neg(a, q), testkit.RefSubMod(0, a, q); got != want {
				t.Fatalf("Neg(%d,%d) = %d, ref %d", a, q, got, want)
			}
			if got, want := modular.Mul(a, b, q), testkit.RefMulMod(a, b, q); got != want {
				t.Fatalf("Mul(%d,%d,%d) = %d, ref %d", a, b, q, got, want)
			}
			if got, want := br.MulMod(a, b), testkit.RefMulMod(a, b, q); got != want {
				t.Fatalf("Barrett.MulMod(%d,%d) mod %d = %d, ref %d", a, b, q, got, want)
			}
			if got, want := mont.MulMod(a, b), testkit.RefMulMod(a, b, q); got != want {
				t.Fatalf("Montgomery.MulMod(%d,%d) mod %d = %d, ref %d", a, b, q, got, want)
			}
			pre := modular.ShoupPrecon(b, q)
			if got, want := modular.MulShoup(a, b, pre, q), testkit.RefMulMod(a, b, q); got != want {
				t.Fatalf("MulShoup(%d,%d) mod %d = %d, ref %d", a, b, q, got, want)
			}
			// Barrett.Reduce takes any uint64, not just residues.
			x := r.Uint64()
			if got, want := br.Reduce(x), x%q; got != want {
				t.Fatalf("Barrett.Reduce(%d) mod %d = %d, ref %d", x, q, got, want)
			}
		}
	}
}

func TestExpInverseDifferential(t *testing.T) {
	r := testkit.NewRNG(77)
	for _, q := range testModuli {
		for i := 0; i < 300; i++ {
			a := r.Uint64Below(q)
			e := r.Uint64Below(1 << 20)
			if got, want := modular.Exp(a, e, q), testkit.RefExpMod(a, e, q); got != want {
				t.Fatalf("Exp(%d,%d,%d) = %d, ref %d", a, e, q, got, want)
			}
			inv, ok := modular.Inverse(a, q)
			refInv, refOK := testkit.RefInverse(a, q)
			if ok != refOK || (ok && inv != refInv) {
				t.Fatalf("Inverse(%d,%d) = %d,%v; ref %d,%v", a, q, inv, ok, refInv, refOK)
			}
		}
	}
	// Non-invertible residues of a composite modulus must be rejected
	// identically by both implementations.
	const comp = uint64(12288) // 2^12 * 3
	for i := uint64(0); i < 200; i++ {
		inv, ok := modular.Inverse(i, comp)
		refInv, refOK := testkit.RefInverse(i, comp)
		if ok != refOK || (ok && inv != refInv) {
			t.Fatalf("Inverse(%d,%d) = %d,%v; ref %d,%v", i, comp, inv, ok, refInv, refOK)
		}
	}
}

func TestCenteredRepDifferential(t *testing.T) {
	r := testkit.NewRNG(5)
	for _, q := range testModuli {
		bigQ := testkit.Big(q)
		for i := 0; i < 500; i++ {
			x := r.Uint64Below(q)
			want := testkit.RefCenter(testkit.Big(x), bigQ).Int64()
			if got := modular.CenteredRep(x, q); got != want {
				t.Fatalf("CenteredRep(%d,%d) = %d, ref %d", x, q, got, want)
			}
			if back := modular.FromCentered(modular.CenteredRep(x, q), q); back != x {
				t.Fatalf("FromCentered(CenteredRep(%d)) = %d mod %d", x, back, q)
			}
		}
	}
}

func TestPrimeGenerationDifferential(t *testing.T) {
	primes, err := modular.GeneratePrimes(20, 2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			t.Fatalf("duplicate prime %d", q)
		}
		seen[q] = true
		if !testkit.RefIsPrime(q) {
			t.Fatalf("GeneratePrimes returned composite %d", q)
		}
		if q%2048 != 1 {
			t.Fatalf("prime %d is not 1 mod 2048", q)
		}
		// A primitive 2048th root must exist and have exact order 2048.
		w, err := modular.MinimalPrimitiveNthRoot(2048, q)
		if err != nil {
			t.Fatalf("MinimalPrimitiveNthRoot(2048, %d): %v", q, err)
		}
		if testkit.RefExpMod(w, 2048, q) != 1 {
			t.Fatalf("omega^2048 != 1 mod %d", q)
		}
		if testkit.RefExpMod(w, 1024, q) == 1 {
			t.Fatalf("omega has order < 2048 mod %d", q)
		}
	}
}

// goldenArithEntry pins one scalar operation result in the golden file.
type goldenArithEntry struct {
	Op     string `json:"op"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
	Q      uint64 `json:"q"`
	Result uint64 `json:"result"`
}

// TestGoldenArith pins exact outputs of the scalar ops on a fixed seeded
// input set, so a silent behavior change (e.g. a different reduction
// strategy that is wrong only on edge inputs) diffs against the repo.
func TestGoldenArith(t *testing.T) {
	r := testkit.NewRNG(0xA17)
	var entries []goldenArithEntry
	for _, q := range testModuli {
		for i := 0; i < 8; i++ {
			a, b := r.Uint64Below(q), r.Uint64Below(q)
			entries = append(entries,
				goldenArithEntry{"add", a, b, q, modular.Add(a, b, q)},
				goldenArithEntry{"sub", a, b, q, modular.Sub(a, b, q)},
				goldenArithEntry{"mul", a, b, q, modular.Mul(a, b, q)},
				goldenArithEntry{"exp", a, b % 4096, q, modular.Exp(a, b%4096, q)},
			)
		}
		// Edge inputs the random sweep is unlikely to hit.
		for _, pair := range [][2]uint64{{0, 0}, {q - 1, q - 1}, {q - 1, 1}, {1, q - 1}} {
			a, b := pair[0], pair[1]
			entries = append(entries,
				goldenArithEntry{"add", a, b, q, modular.Add(a, b, q)},
				goldenArithEntry{"mul", a, b, q, modular.Mul(a, b, q)},
			)
		}
	}
	// Cross-check every entry against the reference before pinning: the
	// golden file must never encode a wrong value.
	for _, e := range entries {
		var want uint64
		switch e.Op {
		case "add":
			want = testkit.RefAddMod(e.A, e.B, e.Q)
		case "sub":
			want = testkit.RefSubMod(e.A, e.B, e.Q)
		case "mul":
			want = testkit.RefMulMod(e.A, e.B, e.Q)
		case "exp":
			want = testkit.RefExpMod(e.A, e.B, e.Q)
		}
		if e.Result != want {
			t.Fatalf("%s(%d,%d) mod %d = %d, ref %d", e.Op, e.A, e.B, e.Q, e.Result, want)
		}
	}
	testkit.Golden(t, "testdata/golden_arith.json", entries)
}
