package modular

import (
	"fmt"
	"math/bits"
)

// Montgomery holds precomputed state for Montgomery multiplication modulo
// an odd q < 2^62: products are computed in the residue representation
// aR mod q with R = 2^64, trading the division in Barrett reduction for
// two multiplications and a shift — the other classic NTT hot-path
// primitive.
type Montgomery struct {
	q    uint64
	qInv uint64 // -q^-1 mod 2^64
	r2   uint64 // R² mod q, converts into Montgomery form
}

// NewMontgomery precomputes constants for odd q.
func NewMontgomery(q uint64) (Montgomery, error) {
	if err := ValidateModulus(q); err != nil {
		return Montgomery{}, err
	}
	if q&1 == 0 {
		return Montgomery{}, fmt.Errorf("modular: Montgomery requires an odd modulus, got %d", q)
	}
	// Newton iteration for q^-1 mod 2^64.
	inv := q // correct mod 2^3
	for i := 0; i < 5; i++ {
		inv *= 2 - q*inv
	}
	// r2 = 2^128 mod q via two reductions of 2^64 mod q.
	rModQ := (^uint64(0))%q + 1 // 2^64 mod q
	r2 := Mul(rModQ, rModQ, q)
	return Montgomery{q: q, qInv: -inv, r2: r2}, nil
}

// Modulus returns q.
func (m Montgomery) Modulus() uint64 { return m.q }

// reduce computes (hi·2^64 + lo)·R⁻¹ mod q (the REDC step). The input must
// satisfy hi < q (true for products of reduced operands).
func (m Montgomery) reduce(hi, lo uint64) uint64 {
	u := lo * m.qInv
	h, _ := bits.Mul64(u, m.q)
	// low(u·q) == −lo (mod 2^64) by construction, so lo + low(u·q) carries
	// exactly when lo != 0; the low word is always zero.
	t := hi + h
	if lo != 0 {
		t++
	}
	if t >= m.q {
		t -= m.q
	}
	return t
}

// ToMont converts a into Montgomery form aR mod q.
func (m Montgomery) ToMont(a uint64) uint64 {
	hi, lo := bits.Mul64(a%m.q, m.r2)
	return m.reduce(hi, lo)
}

// FromMont converts out of Montgomery form.
func (m Montgomery) FromMont(a uint64) uint64 {
	return m.reduce(0, a)
}

// MulMont multiplies two values already in Montgomery form, returning a
// Montgomery-form product.
func (m Montgomery) MulMont(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.reduce(hi, lo)
}

// MulMod multiplies two plain residues using the Montgomery machinery
// (convert, multiply, convert back); a drop-in replacement for Mul used in
// cross-checking tests and benchmarks.
func (m Montgomery) MulMod(a, b uint64) uint64 {
	return m.FromMont(m.MulMont(m.ToMont(a), m.ToMont(b)))
}
