package rv32

import (
	"fmt"
	"strings"
)

// abiNames are the canonical ABI register names used by the disassembler.
var abiNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
	"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
	"t3", "t4", "t5", "t6",
}

// Disasm renders a decoded instruction as assembler text using ABI
// register names. Branch and jump targets are shown as relative offsets;
// use DisasmAt to render re-assemblable absolute targets.
func (in Instr) Disasm() string {
	return in.disasm(nil)
}

// DisasmAt renders the instruction as it sits at address pc: branch and
// jump targets become absolute addresses, so the output re-assembles to
// the identical encoding.
func (in Instr) DisasmAt(pc uint32) string {
	return in.disasm(&pc)
}

func (in Instr) disasm(pc *uint32) string {
	rd := abiNames[in.Rd]
	rs1 := abiNames[in.Rs1]
	rs2 := abiNames[in.Rs2]
	target := func() string {
		if pc == nil {
			return fmt.Sprintf("%+d", in.Imm)
		}
		return fmt.Sprintf("%#x", *pc+uint32(in.Imm))
	}
	switch in.Op {
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%-6s %s, %#x", in.Op, rd, uint32(in.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("%-6s %s, %s", in.Op, rd, target())
	case OpJALR:
		return fmt.Sprintf("%-6s %s, %d(%s)", in.Op, rd, in.Imm, rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%-6s %s, %s, %s", in.Op, rs1, rs2, target())
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%-6s %s, %d(%s)", in.Op, rd, in.Imm, rs1)
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%-6s %s, %d(%s)", in.Op, rs2, in.Imm, rs1)
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%-6s %s, %s, %d", in.Op, rd, rs1, in.Imm)
	case OpECALL, OpEBREAK:
		return in.Op.String()
	default: // register-register ALU and M extension
		return fmt.Sprintf("%-6s %s, %s, %s", in.Op, rd, rs1, rs2)
	}
}

// DisasmImage disassembles a binary image (4-byte little-endian words)
// loaded at base, one line per word. Undecodable words are rendered as
// ".word 0x…" so data sections stay readable.
func DisasmImage(img []byte, base uint32) string {
	var b strings.Builder
	for off := 0; off+4 <= len(img); off += 4 {
		word := uint32(img[off]) | uint32(img[off+1])<<8 |
			uint32(img[off+2])<<16 | uint32(img[off+3])<<24
		fmt.Fprintf(&b, "%08x:  %08x  ", base+uint32(off), word)
		if in, err := Decode(word); err == nil {
			b.WriteString(in.DisasmAt(base + uint32(off)))
		} else {
			fmt.Fprintf(&b, ".word  %#x", word)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
