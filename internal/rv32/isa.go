// Package rv32 implements an RV32IM instruction-set simulator in the style
// of the PicoRV32 core the paper runs SEAL on, together with a small
// assembler. The simulator emits one event per executed instruction
// (register writes, memory traffic, cycle counts), which the power package
// turns into synthetic side-channel traces.
package rv32

import "fmt"

// Op enumerates the RV32IM operations the simulator supports.
type Op int

// RV32I base + M extension opcodes.
const (
	OpInvalid Op = iota
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpECALL
	OpEBREAK
)

var opNames = map[Op]string{
	OpLUI: "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpECALL: "ecall", OpEBREAK: "ebreak",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class groups operations for the power model's per-class base cost.
type Class int

// Instruction classes.
const (
	ClassALU Class = iota
	ClassALUImm
	ClassBranch
	ClassJump
	ClassLoad
	ClassStore
	ClassMulDiv
	ClassSystem
)

// Class returns the instruction class of o.
func (o Op) Class() Class {
	switch o {
	case OpLUI, OpAUIPC, OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND:
		return ClassALU
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return ClassALUImm
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR:
		return ClassJump
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return ClassLoad
	case OpSB, OpSH, OpSW:
		return ClassStore
	case OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		return ClassMulDiv
	default:
		return ClassSystem
	}
}

// Cycles returns the cycle cost of the instruction class on a PicoRV32-like
// multi-cycle core (no pipeline): regular ops take a handful of cycles,
// memory a few more, and mul/div go through the sequential multiplier.
func (o Op) Cycles() int {
	switch o.Class() {
	case ClassALU, ClassALUImm:
		return 3
	case ClassBranch:
		return 3
	case ClassJump:
		return 4
	case ClassLoad:
		return 5
	case ClassStore:
		return 5
	case ClassMulDiv:
		return 36
	default:
		return 3
	}
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  int
	Rs1 int
	Rs2 int
	Imm int32
	Raw uint32
}

// Decode decodes a 32-bit instruction word.
func Decode(word uint32) (Instr, error) {
	opcode := word & 0x7f
	rd := int((word >> 7) & 0x1f)
	funct3 := (word >> 12) & 0x7
	rs1 := int((word >> 15) & 0x1f)
	rs2 := int((word >> 20) & 0x1f)
	funct7 := (word >> 25) & 0x7f

	in := Instr{Rd: rd, Rs1: rs1, Rs2: rs2, Raw: word}
	switch opcode {
	case 0x37:
		in.Op = OpLUI
		in.Imm = int32(word & 0xfffff000)
	case 0x17:
		in.Op = OpAUIPC
		in.Imm = int32(word & 0xfffff000)
	case 0x6f:
		in.Op = OpJAL
		in.Imm = immJ(word)
	case 0x67:
		if funct3 != 0 {
			return in, fmt.Errorf("rv32: bad JALR funct3 %d", funct3)
		}
		in.Op = OpJALR
		in.Imm = immI(word)
	case 0x63:
		ops := map[uint32]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
		op, ok := ops[funct3]
		if !ok {
			return in, fmt.Errorf("rv32: bad branch funct3 %d", funct3)
		}
		in.Op = op
		in.Imm = immB(word)
	case 0x03:
		ops := map[uint32]Op{0: OpLB, 1: OpLH, 2: OpLW, 4: OpLBU, 5: OpLHU}
		op, ok := ops[funct3]
		if !ok {
			return in, fmt.Errorf("rv32: bad load funct3 %d", funct3)
		}
		in.Op = op
		in.Imm = immI(word)
	case 0x23:
		ops := map[uint32]Op{0: OpSB, 1: OpSH, 2: OpSW}
		op, ok := ops[funct3]
		if !ok {
			return in, fmt.Errorf("rv32: bad store funct3 %d", funct3)
		}
		in.Op = op
		in.Imm = immS(word)
	case 0x13:
		switch funct3 {
		case 0:
			in.Op = OpADDI
		case 2:
			in.Op = OpSLTI
		case 3:
			in.Op = OpSLTIU
		case 4:
			in.Op = OpXORI
		case 6:
			in.Op = OpORI
		case 7:
			in.Op = OpANDI
		case 1:
			if funct7 != 0 {
				return in, fmt.Errorf("rv32: bad SLLI funct7 %#x", funct7)
			}
			in.Op = OpSLLI
			in.Imm = int32(rs2)
			return in, nil
		case 5:
			switch funct7 {
			case 0:
				in.Op = OpSRLI
			case 0x20:
				in.Op = OpSRAI
			default:
				return in, fmt.Errorf("rv32: bad shift funct7 %#x", funct7)
			}
			in.Imm = int32(rs2)
			return in, nil
		}
		in.Imm = immI(word)
	case 0x33:
		if funct7 == 1 {
			ops := map[uint32]Op{0: OpMUL, 1: OpMULH, 2: OpMULHSU, 3: OpMULHU,
				4: OpDIV, 5: OpDIVU, 6: OpREM, 7: OpREMU}
			in.Op = ops[funct3]
			return in, nil
		}
		switch funct3 {
		case 0:
			switch funct7 {
			case 0:
				in.Op = OpADD
			case 0x20:
				in.Op = OpSUB
			default:
				return in, fmt.Errorf("rv32: bad ADD/SUB funct7 %#x", funct7)
			}
		case 1:
			in.Op = OpSLL
		case 2:
			in.Op = OpSLT
		case 3:
			in.Op = OpSLTU
		case 4:
			in.Op = OpXOR
		case 5:
			switch funct7 {
			case 0:
				in.Op = OpSRL
			case 0x20:
				in.Op = OpSRA
			default:
				return in, fmt.Errorf("rv32: bad SRL/SRA funct7 %#x", funct7)
			}
		case 6:
			in.Op = OpOR
		case 7:
			in.Op = OpAND
		}
	case 0x73:
		switch word {
		case 0x00000073:
			in.Op = OpECALL
		case 0x00100073:
			in.Op = OpEBREAK
		default:
			return in, fmt.Errorf("rv32: unsupported system instruction %#x", word)
		}
	default:
		return in, fmt.Errorf("rv32: unsupported opcode %#x", opcode)
	}
	return in, nil
}

func immI(w uint32) int32 { return int32(w) >> 20 }

func immS(w uint32) int32 {
	return int32(w&0xfe000000)>>20 | int32((w>>7)&0x1f)
}

func immB(w uint32) int32 {
	imm := ((w>>31)&1)<<12 | ((w>>7)&1)<<11 | ((w>>25)&0x3f)<<5 | ((w>>8)&0xf)<<1
	return int32(imm<<19) >> 19
}

func immJ(w uint32) int32 {
	imm := ((w>>31)&1)<<20 | ((w>>12)&0xff)<<12 | ((w>>20)&1)<<11 | ((w>>21)&0x3ff)<<1
	return int32(imm<<11) >> 11
}
