package rv32

import (
	"fmt"
)

// Event describes one executed instruction, with everything the power
// model needs: the instruction word, the register write (old and new
// value), memory traffic, and cycle accounting.
type Event struct {
	PC     uint32
	Instr  Instr
	Cycle  uint64 // cycle at which the instruction started
	Cycles int    // how many cycles it took

	RegWrite bool
	RegDst   int
	RegOld   uint32
	RegNew   uint32

	MemAccess bool
	MemWrite  bool
	MemAddr   uint32
	MemValue  uint32 // value read or written
	MemOld    uint32 // previous memory content on writes (bus HD)
}

// MMIOHandler services loads/stores in a memory-mapped device region.
type MMIOHandler interface {
	// Read returns the 32-bit value at the given offset within the region
	// and the number of extra wait cycles the access stalls the core.
	Read(offset uint32) (value uint32, waitCycles int)
	// Write stores a 32-bit value at the given offset.
	Write(offset uint32, value uint32) (waitCycles int)
}

type mmioRegion struct {
	base, size uint32
	handler    MMIOHandler
}

// CPU is an RV32IM hart with flat RAM and optional MMIO regions.
type CPU struct {
	Regs  [32]uint32
	PC    uint32
	Mem   []byte
	Cycle uint64

	mmio []mmioRegion

	// OnEvent, when non-nil, receives every executed instruction.
	OnEvent func(Event)

	// Halted is set when EBREAK executes.
	Halted bool
}

// NewCPU allocates a CPU with memSize bytes of zeroed RAM.
func NewCPU(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize)}
}

// MapMMIO registers a device at [base, base+size).
func (c *CPU) MapMMIO(base, size uint32, h MMIOHandler) {
	c.mmio = append(c.mmio, mmioRegion{base: base, size: size, handler: h})
}

// Load copies a program image into RAM at addr and sets PC there.
func (c *CPU) Load(image []byte, addr uint32) error {
	if int(addr)+len(image) > len(c.Mem) {
		return fmt.Errorf("rv32: image of %d bytes at %#x exceeds %d-byte RAM", len(image), addr, len(c.Mem))
	}
	copy(c.Mem[addr:], image)
	c.PC = addr
	return nil
}

func (c *CPU) findMMIO(addr uint32) *mmioRegion {
	for i := range c.mmio {
		r := &c.mmio[i]
		if addr >= r.base && addr < r.base+r.size {
			return r
		}
	}
	return nil
}

func (c *CPU) read32(addr uint32) (uint32, int, error) {
	if r := c.findMMIO(addr); r != nil {
		v, wait := r.handler.Read(addr - r.base)
		return v, wait, nil
	}
	if int(addr)+4 > len(c.Mem) {
		return 0, 0, fmt.Errorf("rv32: load at %#x out of bounds", addr)
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 |
		uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24, 0, nil
}

func (c *CPU) write32(addr, v uint32) (old uint32, wait int, err error) {
	if r := c.findMMIO(addr); r != nil {
		wait = r.handler.Write(addr-r.base, v)
		return 0, wait, nil
	}
	if int(addr)+4 > len(c.Mem) {
		return 0, 0, fmt.Errorf("rv32: store at %#x out of bounds", addr)
	}
	old = uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 |
		uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
	c.Mem[addr+2] = byte(v >> 16)
	c.Mem[addr+3] = byte(v >> 24)
	return old, 0, nil
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("rv32: CPU is halted")
	}
	if c.PC&3 != 0 {
		return fmt.Errorf("rv32: misaligned PC %#x", c.PC)
	}
	word, _, err := c.read32(c.PC)
	if err != nil {
		return fmt.Errorf("rv32: fetch: %w", err)
	}
	in, err := Decode(word)
	if err != nil {
		return fmt.Errorf("rv32: at %#x: %w", c.PC, err)
	}

	ev := Event{PC: c.PC, Instr: in, Cycle: c.Cycle, Cycles: in.Op.Cycles()}
	nextPC := c.PC + 4
	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]

	setRd := func(v uint32) {
		ev.RegWrite = true
		ev.RegDst = in.Rd
		ev.RegOld = c.Regs[in.Rd]
		ev.RegNew = v
		if in.Rd != 0 {
			c.Regs[in.Rd] = v
		} else {
			ev.RegNew = 0
		}
	}

	switch in.Op {
	case OpLUI:
		setRd(uint32(in.Imm))
	case OpAUIPC:
		setRd(c.PC + uint32(in.Imm))
	case OpJAL:
		setRd(c.PC + 4)
		nextPC = c.PC + uint32(in.Imm)
	case OpJALR:
		t := (rs1 + uint32(in.Imm)) &^ 1
		setRd(c.PC + 4)
		nextPC = t
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		taken := false
		switch in.Op {
		case OpBEQ:
			taken = rs1 == rs2
		case OpBNE:
			taken = rs1 != rs2
		case OpBLT:
			taken = int32(rs1) < int32(rs2)
		case OpBGE:
			taken = int32(rs1) >= int32(rs2)
		case OpBLTU:
			taken = rs1 < rs2
		case OpBGEU:
			taken = rs1 >= rs2
		}
		if taken {
			nextPC = c.PC + uint32(in.Imm)
			ev.Cycles++ // taken branches refill the fetch unit
		}
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		addr := rs1 + uint32(in.Imm)
		aligned := addr &^ 3
		wordVal, wait, err := c.read32(aligned)
		if err != nil {
			return err
		}
		ev.Cycles += wait
		shift := (addr & 3) * 8
		var v uint32
		switch in.Op {
		case OpLW:
			if addr&3 != 0 {
				return fmt.Errorf("rv32: misaligned LW at %#x", addr)
			}
			v = wordVal
		case OpLB:
			v = uint32(int32(int8(wordVal >> shift)))
		case OpLBU:
			v = (wordVal >> shift) & 0xff
		case OpLH:
			if addr&1 != 0 {
				return fmt.Errorf("rv32: misaligned LH at %#x", addr)
			}
			v = uint32(int32(int16(wordVal >> shift)))
		case OpLHU:
			if addr&1 != 0 {
				return fmt.Errorf("rv32: misaligned LHU at %#x", addr)
			}
			v = (wordVal >> shift) & 0xffff
		}
		ev.MemAccess = true
		ev.MemAddr = addr
		ev.MemValue = v
		setRd(v)
	case OpSB, OpSH, OpSW:
		addr := rs1 + uint32(in.Imm)
		var old uint32
		var wait int
		switch in.Op {
		case OpSW:
			if addr&3 != 0 {
				return fmt.Errorf("rv32: misaligned SW at %#x", addr)
			}
			old, wait, err = c.write32(addr, rs2)
			if err != nil {
				return err
			}
			ev.MemValue = rs2
		case OpSB:
			aligned := addr &^ 3
			cur, _, err := c.read32(aligned)
			if err != nil {
				return err
			}
			shift := (addr & 3) * 8
			nv := cur&^(0xff<<shift) | (rs2&0xff)<<shift
			old, wait, err = c.write32(aligned, nv)
			if err != nil {
				return err
			}
			ev.MemValue = rs2 & 0xff
		case OpSH:
			if addr&1 != 0 {
				return fmt.Errorf("rv32: misaligned SH at %#x", addr)
			}
			aligned := addr &^ 3
			cur, _, err := c.read32(aligned)
			if err != nil {
				return err
			}
			shift := (addr & 3) * 8
			nv := cur&^(0xffff<<shift) | (rs2&0xffff)<<shift
			old, wait, err = c.write32(aligned, nv)
			if err != nil {
				return err
			}
			ev.MemValue = rs2 & 0xffff
		}
		ev.Cycles += wait
		ev.MemAccess = true
		ev.MemWrite = true
		ev.MemAddr = addr
		ev.MemOld = old
	case OpADDI:
		setRd(rs1 + uint32(in.Imm))
	case OpSLTI:
		setRd(boolToU32(int32(rs1) < in.Imm))
	case OpSLTIU:
		setRd(boolToU32(rs1 < uint32(in.Imm)))
	case OpXORI:
		setRd(rs1 ^ uint32(in.Imm))
	case OpORI:
		setRd(rs1 | uint32(in.Imm))
	case OpANDI:
		setRd(rs1 & uint32(in.Imm))
	case OpSLLI:
		setRd(rs1 << uint(in.Imm&31))
	case OpSRLI:
		setRd(rs1 >> uint(in.Imm&31))
	case OpSRAI:
		setRd(uint32(int32(rs1) >> uint(in.Imm&31)))
	case OpADD:
		setRd(rs1 + rs2)
	case OpSUB:
		setRd(rs1 - rs2)
	case OpSLL:
		setRd(rs1 << (rs2 & 31))
	case OpSLT:
		setRd(boolToU32(int32(rs1) < int32(rs2)))
	case OpSLTU:
		setRd(boolToU32(rs1 < rs2))
	case OpXOR:
		setRd(rs1 ^ rs2)
	case OpSRL:
		setRd(rs1 >> (rs2 & 31))
	case OpSRA:
		setRd(uint32(int32(rs1) >> (rs2 & 31)))
	case OpOR:
		setRd(rs1 | rs2)
	case OpAND:
		setRd(rs1 & rs2)
	case OpMUL:
		setRd(rs1 * rs2)
	case OpMULH:
		setRd(uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32))
	case OpMULHSU:
		setRd(uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32))
	case OpMULHU:
		setRd(uint32(uint64(rs1) * uint64(rs2) >> 32))
	case OpDIV:
		switch {
		case rs2 == 0:
			setRd(0xffffffff)
		case rs1 == 0x80000000 && rs2 == 0xffffffff:
			setRd(0x80000000)
		default:
			setRd(uint32(int32(rs1) / int32(rs2)))
		}
	case OpDIVU:
		if rs2 == 0 {
			setRd(0xffffffff)
		} else {
			setRd(rs1 / rs2)
		}
	case OpREM:
		switch {
		case rs2 == 0:
			setRd(rs1)
		case rs1 == 0x80000000 && rs2 == 0xffffffff:
			setRd(0)
		default:
			setRd(uint32(int32(rs1) % int32(rs2)))
		}
	case OpREMU:
		if rs2 == 0 {
			setRd(rs1)
		} else {
			setRd(rs1 % rs2)
		}
	case OpECALL:
		// Treated as a no-op hook in this bare-metal simulator.
	case OpEBREAK:
		c.Halted = true
	default:
		return fmt.Errorf("rv32: unhandled op %v", in.Op)
	}

	c.PC = nextPC
	c.Cycle += uint64(ev.Cycles)
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
	return nil
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Run executes until EBREAK or until maxInstrs instructions have retired.
// It returns the number of instructions executed.
func (c *CPU) Run(maxInstrs int) (int, error) {
	for n := 0; n < maxInstrs; n++ {
		if c.Halted {
			return n, nil
		}
		if err := c.Step(); err != nil {
			return n, err
		}
	}
	if !c.Halted {
		return maxInstrs, fmt.Errorf("rv32: instruction budget %d exhausted at PC %#x", maxInstrs, c.PC)
	}
	return maxInstrs, nil
}

// ReadWord reads RAM directly (test/debug helper, no MMIO).
func (c *CPU) ReadWord(addr uint32) (uint32, error) {
	if int(addr)+4 > len(c.Mem) {
		return 0, fmt.Errorf("rv32: ReadWord at %#x out of bounds", addr)
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 |
		uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24, nil
}

// WriteWord writes RAM directly (test/debug helper, no MMIO).
func (c *CPU) WriteWord(addr, v uint32) error {
	if int(addr)+4 > len(c.Mem) {
		return fmt.Errorf("rv32: WriteWord at %#x out of bounds", addr)
	}
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
	c.Mem[addr+2] = byte(v >> 16)
	c.Mem[addr+3] = byte(v >> 24)
	return nil
}
