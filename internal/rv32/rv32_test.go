package rv32

import (
	"strings"
	"testing"
)

func assembleRun(t *testing.T, src string, maxInstrs int) *CPU {
	t.Helper()
	img, _, err := Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cpu := NewCPU(1 << 16)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(maxInstrs); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu
}

func TestArithmeticProgram(t *testing.T) {
	cpu := assembleRun(t, `
		li   a0, 7
		li   a1, 5
		add  a2, a0, a1     # 12
		sub  a3, a0, a1     # 2
		mul  a4, a0, a1     # 35
		div  a5, a0, a1     # 1
		rem  a6, a0, a1     # 2
		ebreak
	`, 100)
	want := map[int]uint32{12: 12, 13: 2, 14: 35, 15: 1, 16: 2}
	for reg, v := range want {
		if cpu.Regs[reg] != v {
			t.Errorf("x%d = %d want %d", reg, cpu.Regs[reg], v)
		}
	}
}

func TestLiLargeConstant(t *testing.T) {
	cpu := assembleRun(t, `
		li a0, 132120577
		li a1, -42
		li a2, 0x7fffffff
		li a3, 2047
		li a4, -2048
		ebreak
	`, 100)
	if cpu.Regs[10] != 132120577 {
		t.Errorf("a0=%d want 132120577", cpu.Regs[10])
	}
	if int32(cpu.Regs[11]) != -42 {
		t.Errorf("a1=%d want -42", int32(cpu.Regs[11]))
	}
	if cpu.Regs[12] != 0x7fffffff {
		t.Errorf("a2=%#x", cpu.Regs[12])
	}
	if cpu.Regs[13] != 2047 || int32(cpu.Regs[14]) != -2048 {
		t.Error("12-bit edge immediates wrong")
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu := assembleRun(t, `
		li   a0, 0      # sum
		li   a1, 1      # i
		li   a2, 10
	loop:
		add  a0, a0, a1
		addi a1, a1, 1
		bge  a2, a1, loop
		ebreak
	`, 1000)
	if cpu.Regs[10] != 55 {
		t.Errorf("sum=%d want 55", cpu.Regs[10])
	}
}

func TestAllBranchKinds(t *testing.T) {
	cpu := assembleRun(t, `
		li t0, 5
		li t1, -3
		li a0, 0
		beq  t0, t0, L1
		ebreak
	L1:	addi a0, a0, 1
		bne  t0, t1, L2
		ebreak
	L2:	addi a0, a0, 1
		blt  t1, t0, L3      # signed: -3 < 5
		ebreak
	L3:	addi a0, a0, 1
		bge  t0, t1, L4
		ebreak
	L4:	addi a0, a0, 1
		bltu t0, t1, L5      # unsigned: 5 < 0xfffffffd
		ebreak
	L5:	addi a0, a0, 1
		bgeu t1, t0, L6
		ebreak
	L6:	addi a0, a0, 1
		ebreak
	`, 1000)
	if cpu.Regs[10] != 6 {
		t.Errorf("passed %d/6 branch checks", cpu.Regs[10])
	}
}

func TestLoadStore(t *testing.T) {
	cpu := assembleRun(t, `
		li   t0, 0x1000
		li   t1, 0x12345678
		sw   t1, 0(t0)
		lw   a0, 0(t0)
		lb   a1, 0(t0)      # 0x78
		lbu  a2, 3(t0)      # 0x12
		lh   a3, 0(t0)      # 0x5678
		lhu  a4, 2(t0)      # 0x1234
		sb   t1, 8(t0)
		lbu  a5, 8(t0)      # 0x78
		sh   t1, 12(t0)
		lhu  a6, 12(t0)     # 0x5678
		ebreak
	`, 100)
	checks := map[int]uint32{
		10: 0x12345678, 11: 0x78, 12: 0x12, 13: 0x5678, 14: 0x1234,
		15: 0x78, 16: 0x5678,
	}
	for reg, v := range checks {
		if cpu.Regs[reg] != v {
			t.Errorf("x%d=%#x want %#x", reg, cpu.Regs[reg], v)
		}
	}
}

func TestSignExtensionLoads(t *testing.T) {
	cpu := assembleRun(t, `
		li  t0, 0x1000
		li  t1, 0xff80
		sw  t1, 0(t0)
		lb  a0, 0(t0)    # 0x80 -> -128
		lh  a1, 0(t0)    # 0xff80 -> -128
		ebreak
	`, 100)
	if int32(cpu.Regs[10]) != -128 {
		t.Errorf("lb sign extension: %d", int32(cpu.Regs[10]))
	}
	if int32(cpu.Regs[11]) != -128 {
		t.Errorf("lh sign extension: %d", int32(cpu.Regs[11]))
	}
}

func TestFunctionCall(t *testing.T) {
	cpu := assembleRun(t, `
		li   a0, 21
		call double
		ebreak
	double:
		add  a0, a0, a0
		ret
	`, 100)
	if cpu.Regs[10] != 42 {
		t.Errorf("a0=%d want 42", cpu.Regs[10])
	}
}

func TestJalAndJalr(t *testing.T) {
	cpu := assembleRun(t, `
		jal  ra, target
		ebreak
	target:
		li   a0, 9
		jr   ra
	`, 100)
	if cpu.Regs[10] != 9 {
		t.Errorf("a0=%d want 9", cpu.Regs[10])
	}
}

func TestShiftsAndLogic(t *testing.T) {
	cpu := assembleRun(t, `
		li   t0, 0xf0
		li   t1, 4
		sll  a0, t0, t1    # 0xf00
		srl  a1, t0, t1    # 0xf
		li   t2, -16
		sra  a2, t2, t1    # -1
		srl  a3, t2, t1    # 0x0ffffff f
		slli a4, t0, 8
		srai a5, t2, 2     # -4
		xor  a6, t0, t0    # 0
		ebreak
	`, 100)
	if cpu.Regs[10] != 0xf00 || cpu.Regs[11] != 0xf {
		t.Error("shift left/right wrong")
	}
	if int32(cpu.Regs[12]) != -1 {
		t.Errorf("sra=%d want -1", int32(cpu.Regs[12]))
	}
	if cpu.Regs[13] != 0x0fffffff {
		t.Errorf("srl of negative=%#x", cpu.Regs[13])
	}
	if cpu.Regs[14] != 0xf000 || int32(cpu.Regs[15]) != -4 || cpu.Regs[16] != 0 {
		t.Error("slli/srai/xor wrong")
	}
}

func TestMulhVariants(t *testing.T) {
	cpu := assembleRun(t, `
		li   t0, -2
		li   t1, 3
		mulh   a0, t0, t1    # high of -6 = -1
		mulhu  a1, t0, t1    # high of (2^32-2)*3
		mulhsu a2, t0, t1    # high of -2 * 3 unsigned rs2 = -1
		ebreak
	`, 100)
	if int32(cpu.Regs[10]) != -1 {
		t.Errorf("mulh=%d", int32(cpu.Regs[10]))
	}
	if cpu.Regs[11] != 2 { // (2^32-2)*3 = 3·2^32 - 6 -> high word 2
		t.Errorf("mulhu=%d want 2", cpu.Regs[11])
	}
	if int32(cpu.Regs[12]) != -1 {
		t.Errorf("mulhsu=%d", int32(cpu.Regs[12]))
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	cpu := assembleRun(t, `
		li   t0, 7
		li   t1, 0
		div  a0, t0, t1      # -1
		divu a1, t0, t1      # 0xffffffff
		rem  a2, t0, t1      # 7
		remu a3, t0, t1      # 7
		li   t2, 0x80000000
		li   t3, -1
		div  a4, t2, t3      # overflow: 0x80000000
		rem  a5, t2, t3      # 0
		ebreak
	`, 100)
	if cpu.Regs[10] != 0xffffffff || cpu.Regs[11] != 0xffffffff {
		t.Error("division by zero wrong")
	}
	if cpu.Regs[12] != 7 || cpu.Regs[13] != 7 {
		t.Error("remainder by zero wrong")
	}
	if cpu.Regs[14] != 0x80000000 || cpu.Regs[15] != 0 {
		t.Error("signed overflow division wrong")
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	cpu := assembleRun(t, `
		li   x0, 55
		addi x0, x0, 3
		mv   a0, x0
		ebreak
	`, 100)
	if cpu.Regs[10] != 0 || cpu.Regs[0] != 0 {
		t.Error("x0 must stay zero")
	}
}

func TestPseudoInstructions(t *testing.T) {
	cpu := assembleRun(t, `
		li   t0, 10
		mv   a0, t0
		neg  a1, t0
		not  a2, t0
		seqz a3, zero
		snez a4, t0
		nop
		ebreak
	`, 100)
	if cpu.Regs[10] != 10 || int32(cpu.Regs[11]) != -10 || cpu.Regs[12] != ^uint32(10) {
		t.Error("mv/neg/not wrong")
	}
	if cpu.Regs[13] != 1 || cpu.Regs[14] != 1 {
		t.Error("seqz/snez wrong")
	}
}

func TestWordDirectiveAndLa(t *testing.T) {
	img, labels, err := Assemble(`
		la   t0, data
		lw   a0, 0(t0)
		lw   a1, 4(t0)
		ebreak
	data:
		.word 0xdeadbeef, 42
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := labels["data"]; !ok {
		t.Fatal("label data missing")
	}
	cpu := NewCPU(1 << 16)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[10] != 0xdeadbeef || cpu.Regs[11] != 42 {
		t.Errorf("a0=%#x a1=%d", cpu.Regs[10], cpu.Regs[11])
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate a0, a1",
		"addi a0, a1",         // missing arg
		"addi a0, a1, 5000",   // imm out of range
		"lw a0, a1",           // bad memory operand
		"add a0, a1, notareg", // bad register
		"beq a0, a1, nolabel", // unknown label
		"slli a0, a1, 99",     // shift out of range
		"dup: nop\ndup: nop",  // duplicate label
	}
	for _, src := range bad {
		if _, _, err := Assemble(src, 0); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, w := range []uint32{0x00000000, 0xffffffff, 0x0000007f} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#x) should fail", w)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Assemble each instruction and decode it back.
	cases := []struct {
		src string
		op  Op
	}{
		{"add a0, a1, a2", OpADD}, {"sub s0, s1, s2", OpSUB},
		{"addi t0, t1, -7", OpADDI}, {"lui a0, 0x12345", OpLUI},
		{"lw a0, 8(sp)", OpLW}, {"sw a0, -4(sp)", OpSW},
		{"mul a0, a1, a2", OpMUL}, {"divu a0, a1, a2", OpDIVU},
		{"srai a0, a1, 3", OpSRAI}, {"ebreak", OpEBREAK},
	}
	for _, c := range cases {
		img, _, err := Assemble(c.src, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		word := uint32(img[0]) | uint32(img[1])<<8 | uint32(img[2])<<16 | uint32(img[3])<<24
		in, err := Decode(word)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.src, err)
		}
		if in.Op != c.op {
			t.Errorf("%s decoded to %v want %v", c.src, in.Op, c.op)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	img, _, err := Assemble(`
		li t0, 0x1000
		li t1, 0xab
		sw t1, 0(t0)
		lw t2, 0(t0)
		ebreak
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(1 << 16)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	var events []Event
	cpu.OnEvent = func(e Event) { events = append(events, e) }
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	// li 0x1000 expands to lui+addi, so 6 instructions total.
	if len(events) != 6 {
		t.Fatalf("got %d events want 6", len(events))
	}
	// The store event must carry the value and old memory content.
	var stores, loads int
	for _, e := range events {
		if e.MemWrite {
			stores++
			if e.MemValue != 0xab || e.MemOld != 0 {
				t.Errorf("store event value=%#x old=%#x", e.MemValue, e.MemOld)
			}
		} else if e.MemAccess {
			loads++
			if e.MemValue != 0xab {
				t.Errorf("load event value=%#x", e.MemValue)
			}
		}
		if e.Cycles <= 0 {
			t.Error("event missing cycle cost")
		}
	}
	if stores != 1 || loads != 1 {
		t.Errorf("stores=%d loads=%d", stores, loads)
	}
	// Cycles must be monotonically increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle <= events[i-1].Cycle {
			t.Error("event cycles not increasing")
		}
	}
}

type fakeDevice struct {
	reads, writes int
	lastWrite     uint32
	value         uint32
	wait          int
}

func (d *fakeDevice) Read(offset uint32) (uint32, int) {
	d.reads++
	return d.value + offset, d.wait
}

func (d *fakeDevice) Write(offset uint32, v uint32) int {
	d.writes++
	d.lastWrite = v
	return d.wait
}

func TestMMIO(t *testing.T) {
	img, _, err := Assemble(`
		li t0, 0x8000
		lw a0, 0(t0)
		lw a1, 4(t0)
		li t1, 77
		sw t1, 0(t0)
		ebreak
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(1 << 16)
	dev := &fakeDevice{value: 1000, wait: 7}
	cpu.MapMMIO(0x8000, 0x100, dev)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	var memCycles []int
	cpu.OnEvent = func(e Event) {
		if e.MemAccess {
			memCycles = append(memCycles, e.Cycles)
		}
	}
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[10] != 1000 || cpu.Regs[11] != 1004 {
		t.Errorf("MMIO reads: a0=%d a1=%d", cpu.Regs[10], cpu.Regs[11])
	}
	if dev.reads != 2 || dev.writes != 1 || dev.lastWrite != 77 {
		t.Errorf("device saw reads=%d writes=%d last=%d", dev.reads, dev.writes, dev.lastWrite)
	}
	// Wait cycles must show up in the events.
	for _, cyc := range memCycles {
		if cyc < 5+7 {
			t.Errorf("MMIO access took %d cycles, want >= 12 (base+wait)", cyc)
		}
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	img, _, err := Assemble(`
	spin:	j spin
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(1 << 12)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(10); err == nil {
		t.Error("infinite loop should exhaust the budget with an error")
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	img, _, err := Assemble(`
		li t0, 0x100000
		lw a0, 0(t0)
		ebreak
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(1 << 12)
	if err := cpu.Load(img, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(100); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("want out-of-bounds error, got %v", err)
	}
}

func TestLoadImageTooBig(t *testing.T) {
	cpu := NewCPU(8)
	if err := cpu.Load(make([]byte, 100), 0); err == nil {
		t.Error("oversized image should fail")
	}
}

func TestHaltedCPURefusesToStep(t *testing.T) {
	cpu := assembleRun(t, "ebreak", 10)
	if !cpu.Halted {
		t.Fatal("CPU should be halted")
	}
	if err := cpu.Step(); err == nil {
		t.Error("stepping a halted CPU should fail")
	}
}

func TestNegativeBranchOffsets(t *testing.T) {
	// Backward branch over more than one instruction.
	cpu := assembleRun(t, `
		li   a0, 0
		li   a1, 3
		j    check
	body:
		addi a0, a0, 10
		addi a1, a1, -1
	check:
		bnez a1, body
		ebreak
	`, 1000)
	if cpu.Regs[10] != 30 {
		t.Errorf("a0=%d want 30", cpu.Regs[10])
	}
}

func BenchmarkCPUStep(b *testing.B) {
	img, _, err := Assemble(`
	loop:
		addi t0, t0, 1
		mul  t1, t0, t0
		j    loop
	`, 0)
	if err != nil {
		b.Fatal(err)
	}
	cpu := NewCPU(1 << 12)
	if err := cpu.Load(img, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cpu.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"add a0, a1, a2", "add    a0, a1, a2"},
		{"addi t0, t1, -7", "addi   t0, t1, -7"},
		{"lw a0, 8(sp)", "lw     a0, 8(sp)"},
		{"sw a0, -4(sp)", "sw     a0, -4(sp)"},
		{"ebreak", "ebreak"},
		{"mul s2, s3, s4", "mul    s2, s3, s4"},
	}
	for _, c := range cases {
		img, _, err := Assemble(c.src, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		word := uint32(img[0]) | uint32(img[1])<<8 | uint32(img[2])<<16 | uint32(img[3])<<24
		in, err := Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.Disasm(); got != c.want {
			t.Errorf("Disasm(%s) = %q want %q", c.src, got, c.want)
		}
	}
}

// Assemble → disassemble → re-assemble must produce identical binaries
// (stability of the assembler/disassembler pair).
func TestDisasmRoundTrip(t *testing.T) {
	src := `
		li   a0, 7
		add  a1, a0, a0
		sw   a1, 16(sp)
		lw   a2, 16(sp)
		beq  a1, a2, 8
		mul  a3, a1, a2
		ebreak
	`
	img1, _, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	listing := DisasmImage(img1, 0)
	// Re-assemble each disassembled line (strip address/word columns).
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(listing), "\n") {
		parts := strings.SplitN(line, "  ", 3)
		if len(parts) != 3 {
			t.Fatalf("bad listing line %q", line)
		}
		lines = append(lines, strings.TrimSpace(parts[2]))
	}
	img2, _, err := Assemble(strings.Join(lines, "\n"), 0)
	if err != nil {
		t.Fatalf("reassembly failed: %v\nlisting:\n%s", err, listing)
	}
	if len(img1) != len(img2) {
		t.Fatalf("round trip changed size: %d vs %d", len(img1), len(img2))
	}
	for i := range img1 {
		if img1[i] != img2[i] {
			t.Fatalf("round trip changed byte %d", i)
		}
	}
}

func TestDisasmImageHandlesData(t *testing.T) {
	img, _, err := Assemble(".word 0xffffffff", 0)
	if err != nil {
		t.Fatal(err)
	}
	out := DisasmImage(img, 0x100)
	if !strings.Contains(out, ".word") || !strings.Contains(out, "00000100") {
		t.Errorf("data listing wrong: %q", out)
	}
}

// Smoke wrapper around the shared decode property (see fuzz_test.go); the
// native FuzzDecode target explores the same invariant coverage-guided.
func TestDecodeFuzzQuick(t *testing.T) {
	if err := quickDecodeSmoke(5000); err != nil {
		t.Error(err)
	}
}
